// FIG2 — "Depth-first and breadth-first CAPS tree traversal" (paper
// Fig 2) and the Algorithm 2 control flow. Renders the recursion tree's
// per-level BFS/DFS decision for the paper's configuration, and
// validates the schedule against a real instrumented CAPS run's
// traversal statistics.
#include "bench_common.hpp"
#include "capow/capsalg/caps.hpp"
#include "capow/capsalg/cost_model.hpp"
#include "capow/linalg/random.hpp"
#include "capow/strassen/strassen.hpp"

namespace {

using namespace capow;

void print_reproduction() {
  bench::banner("FIG 2 / ALG 2",
                "CAPS breadth-first vs depth-first tree traversal");

  constexpr std::size_t kN = 4096;
  constexpr std::size_t kCutoff = 64;
  constexpr std::size_t kBfsDepth = 4;  // the paper's CUTOFF_DEPTH
  const std::size_t levels = strassen::recursion_levels(kN, kCutoff);

  std::printf(
      "\nAlgorithm 2:  if DEPTH < CUTOFF_DEPTH then BFS else DFS\n"
      "configuration: n = %zu, base cutoff = %zu, CUTOFF_DEPTH = %zu\n\n",
      kN, kCutoff, kBfsDepth);

  std::printf("  depth  nodes     sub-dim  mode  schedule\n");
  double nodes = 1.0;
  for (std::size_t l = 0; l < levels; ++l) {
    const std::size_t dim = kN >> l;
    const bool bfs = l < kBfsDepth;
    std::printf("  %5zu  %8.0f  %7zu  %-4s  %s\n", l, nodes, dim,
                bfs ? "BFS" : "DFS",
                bfs ? "7 sub-products in parallel, operands buffered"
                    : "7 sub-products in sequence, all workers share each");
    nodes *= 7.0;
  }
  std::printf("  %5zu  %8.0f  %7zu  base  dense kernel\n", levels, nodes,
              kN >> levels);

  // Validate the schedule against a real run (scaled down so it
  // executes quickly; the level split is depth-determined, not
  // size-determined, so it transfers).
  linalg::Matrix a = linalg::random_square(256, 1);
  linalg::Matrix b = linalg::random_square(256, 2);
  linalg::Matrix c(256, 256);
  capsalg::CapsOptions opts;
  opts.base_cutoff = 16;  // 4 levels at n = 256
  opts.bfs_cutoff_depth = 2;
  capsalg::CapsStats stats;
  capsalg::multiply(a.view(), b.view(), c.view(), opts, nullptr,
                         &stats);
  std::printf(
      "\nmeasured traversal at n=256, cutoff 16, CUTOFF_DEPTH 2:\n"
      "  BFS nodes %llu (expect 1 + 7 = 8)\n"
      "  DFS nodes %llu (expect 49 + 343 = 392)\n"
      "  base products %llu (expect 7^4 = 2401)\n"
      "  peak buffer high-water %s (the BFS memory-for-communication "
      "trade)\n",
      static_cast<unsigned long long>(stats.bfs_nodes),
      static_cast<unsigned long long>(stats.dfs_nodes),
      static_cast<unsigned long long>(stats.base_products),
      harness::fmt_si(static_cast<double>(stats.peak_buffer_bytes), 2)
          .c_str());

  capsalg::CapsCostOptions cost;
  cost.base_cutoff = 16;
  cost.bfs_cutoff_depth = 2;
  std::printf("  model's predicted peak: %s\n",
              harness::fmt_si(capsalg::caps_peak_buffer_bytes(256, cost), 2)
                  .c_str());
}

void BM_CapsTraversalBookkeeping(benchmark::State& state) {
  // Cost of one full traversal with stats collection, excluding the
  // arithmetic (tiny base case).
  auto a = linalg::random_square(64, 1);
  auto b = linalg::random_square(64, 2);
  linalg::Matrix c(64, 64);
  capsalg::CapsOptions opts;
  opts.base_cutoff = 8;
  opts.bfs_cutoff_depth = state.range(0);
  for (auto _ : state) {
    capsalg::CapsStats stats;
    capsalg::multiply(a.view(), b.view(), c.view(), opts, nullptr,
                           &stats);
    benchmark::DoNotOptimize(stats.peak_buffer_bytes);
  }
}
BENCHMARK(BM_CapsTraversalBookkeeping)->Arg(0)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
