// ABL8 — overhead of ABFT checksum protection on the blocked GEMM.
// Huang–Abraham checksums are admissible exactly because they are
// asymptotically free: guard construction streams the operands once
// (~3n^2 flops + 2n^2 reads) and verification streams C once against
// two k-length dot products per axis (~4n^2), against the multiply's
// 2n^3 flops — a 4/n relative cost, ~0.2% at the paper's n = 2048. The
// acceptance bar for this PR is < 5% end-to-end in detect mode at
// N = 2048. A guarded multiply is guard construction + the *identical*
// pinned gemm + one verification, so the checksum tax is measured
// directly: best-of-reps guard construction and verification against a
// best-of-reps plain gemm on the same operands. (An end-to-end
// guarded-vs-plain comparison measures the same quantity in principle,
// but on a shared host the per-rep load noise is +-10% of a 2048
// multiply — an order of magnitude larger than the effect — while the
// tax itself is small enough to min-estimate tightly.)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "capow/abft/abft.hpp"
#include "capow/abft/checksum.hpp"
#include "capow/blas/blocked_gemm.hpp"
#include "capow/linalg/random.hpp"

namespace {

using namespace capow;

// Best-of-reps plain gemm vs best-of-reps guard work (construction +
// one verification) on the same operands, same arena, same resolved
// kernel and blocking.
void time_gemm_pair(std::size_t n, int reps, double* plain,
                    double* guard_tax) {
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  blas::WorkspaceArena arena;
  blas::GemmOptions opts;
  opts.arena = &arena;
  blas::gemm(a.view(), b.view(), c.view(), opts);            // warm-up
  const auto timed = [&](auto&& body) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };
  *plain = 1e300;
  *guard_tax = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double p = timed(
        [&] { blas::gemm(a.view(), b.view(), c.view(), opts); });
    if (p < *plain) *plain = p;
    const double g = timed([&] {
      abft::AbftGuard guard(a.view(), b.view(), arena, 1e-7);
      benchmark::DoNotOptimize(guard.verify(c.view()).ok);
    });
    if (g < *guard_tax) *guard_tax = g;
  }
}

void print_reproduction() {
  bench::banner("ABL 8", "ABFT checksum-protection overhead");

  struct Row {
    std::size_t n;
    int reps;
  };
  const Row rows[] = {{512, 30}, {1024, 16}, {2048, 10}};

  std::printf(
      "\nblocked GEMM, detect-mode checksum tax vs plain, "
      "best-of-reps:\n");
  harness::TextTable table(
      {"n", "plain s", "guard s", "overhead", "model 4/n"});
  double overhead_2048 = 0.0;
  for (const Row& row : rows) {
    double plain = 0.0, guard_tax = 0.0;
    time_gemm_pair(row.n, row.reps, &plain, &guard_tax);
    const double pct = plain > 0.0 ? (guard_tax / plain) * 100.0 : 0.0;
    if (row.n == 2048) overhead_2048 = pct;
    table.add_row({std::to_string(row.n), harness::fmt(plain, 4),
                   harness::fmt(guard_tax, 4),
                   harness::fmt(pct, 2) + "%",
                   harness::fmt(400.0 / static_cast<double>(row.n), 2) +
                       "%"});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nacceptance: detect-mode overhead at n=2048 < 5%% "
              "(measured %.2f%%)%s\n",
              overhead_2048,
              overhead_2048 < 5.0 ? "" : " — EXCEEDED");
}

// The checksum primitives the guard is built from, at guard-relevant
// shapes: snapshot (col_sums + row_sums over A/B) and one verification
// sweep cost scale as n^2.
void BM_GuardConstruct(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto a = linalg::random_square(n, 3);
  auto b = linalg::random_square(n, 4);
  blas::WorkspaceArena arena;
  for (auto _ : state) {
    abft::AbftGuard guard(a.view(), b.view(), arena, 1e-7);
    benchmark::DoNotOptimize(guard.tolerance());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n));
}
BENCHMARK(BM_GuardConstruct)->Arg(256)->Arg(1024);

void BM_GuardVerify(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto a = linalg::random_square(n, 5);
  auto b = linalg::random_square(n, 6);
  linalg::Matrix c(n, n);
  blas::WorkspaceArena arena;
  blas::GemmOptions opts;
  opts.arena = &arena;
  blas::gemm(a.view(), b.view(), c.view(), opts);
  abft::AbftGuard guard(a.view(), b.view(), arena, 1e-7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(guard.verify(c.view()).ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_GuardVerify)->Arg(256)->Arg(1024);

void BM_PayloadChecksum(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  std::vector<double> data(count, 1.0 / 3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        abft::payload_checksum(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(double)));
}
BENCHMARK(BM_PayloadChecksum)->Arg(1 << 10)->Arg(1 << 16);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
