// EQ9 — the Strassen/blocked crossover point n = 480*y/z (paper Eq 9,
// after Wadleigh & Crawford): sweep over platform balances, evaluate the
// paper's platform, and contrast the formula's prediction with the
// simulated head-to-head crossover.
#include "bench_common.hpp"
#include "capow/blas/cost_model.hpp"
#include "capow/core/crossover.hpp"
#include "capow/sim/executor.hpp"
#include "capow/strassen/cost_model.hpp"

namespace {

using namespace capow;

void print_reproduction() {
  bench::banner("EQ 9", "Strassen/blocked crossover n = 480*y/z");

  std::printf("\nformula sweep (y MFLOP/s down, z MB/s across):\n");
  harness::TextTable sweep({"y \\ z", "3200", "12800", "51200", "204800"});
  for (double y : {10000.0, 60000.0, 86016.0, 200000.0}) {
    std::vector<std::string> row{harness::fmt(y, 0)};
    for (double z : {3200.0, 12800.0, 51200.0, 204800.0}) {
      row.push_back(
          harness::fmt(core::strassen_crossover_dimension(y, z), 0));
    }
    sweep.add_row(row);
  }
  std::printf("%s\n", sweep.str().c_str());

  const auto haswell = machine::haswell_e3_1225();
  const auto quad = machine::haswell_quad_channel();
  const double n_haswell =
      core::strassen_crossover_dimension(haswell, blas::kTunedGemmEfficiency);
  const double n_quad =
      core::strassen_crossover_dimension(quad, blas::kTunedGemmEfficiency);
  std::printf("machine-derived crossovers:\n");
  std::printf("  %-42s n = %7.0f (fits in memory: %s)\n",
              haswell.name.c_str(), n_haswell,
              core::crossover_fits_in_memory(haswell, n_haswell) ? "yes"
                                                                 : "no");
  std::printf("  %-42s n = %7.0f (fits in memory: %s)\n", quad.name.c_str(),
              n_quad,
              core::crossover_fits_in_memory(quad, n_quad) ? "yes" : "no");

  // The *empirical* crossover under the full cost models: smallest
  // power-of-two n at which simulated Strassen beats blocked DGEMM.
  std::printf(
      "\nsimulated head-to-head (4 threads): smallest n where Strassen "
      "wins:\n");
  for (const auto* m : {&haswell, &quad}) {
    std::size_t winner = 0;
    for (std::size_t n = 512; n <= 65536; n *= 2) {
      const auto blas_run =
          sim::simulate(*m, blas::blocked_gemm_profile(n, *m, 4), 4);
      const auto str_run =
          sim::simulate(*m, strassen::strassen_profile(n, *m, 4), 4);
      if (str_run.seconds < blas_run.seconds) {
        winner = n;
        break;
      }
    }
    if (winner != 0) {
      std::printf("  %-42s n = %zu\n", m->name.c_str(), winner);
    } else {
      std::printf("  %-42s beyond 65536 — the BOTS base kernel's ~10%%\n"
                  "  %-42s efficiency pushes the practical crossover far\n"
                  "  %-42s past Eq 9's tuned-kernel prediction (the paper\n"
                  "  %-42s saw the same: Strassen lost at every size)\n",
                  m->name.c_str(), "", "", "");
    }
  }
  std::printf(
      "\npaper-vs-ours: the paper reports it could not reach the crossover\n"
      "within 4 GB of memory; Eq 9 with the tuned-GEMM rate predicts\n"
      "n ~ %.0f for its platform, while the end-to-end models (which account\n"
      "for the Strassen base kernel's efficiency) agree with the paper's\n"
      "empirical finding that no measurable size crosses over.\n",
      n_haswell);
}

void BM_CrossoverFormula(benchmark::State& state) {
  double y = 60000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::strassen_crossover_dimension(y, 12800.0));
    y += 1e-6;
  }
}
BENCHMARK(BM_CrossoverFormula);

void BM_HeadToHeadSimulation(benchmark::State& state) {
  const auto m = machine::haswell_e3_1225();
  const std::size_t n = state.range(0);
  for (auto _ : state) {
    const auto blas_run =
        sim::simulate(m, blas::blocked_gemm_profile(n, m, 4), 4);
    const auto str_run =
        sim::simulate(m, strassen::strassen_profile(n, m, 4), 4);
    benchmark::DoNotOptimize(blas_run.seconds - str_run.seconds);
  }
}
BENCHMARK(BM_HeadToHeadSimulation)->Arg(1024)->Arg(8192);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
