// ABL5 — validating the cost models' DRAM classification against a
// set-associative LRU cache simulator. The Strassen/CAPS cost models
// decide per level whether addition traffic streams from DRAM using
// closed-form working-set rules; here the exact serial access structure
// is replayed through a simulated L1/L2/LLC hierarchy and the measured
// DRAM traffic is compared with the models' serial estimates.
#include "bench_common.hpp"
#include "capow/cachesim/cache.hpp"
#include "capow/cachesim/locality_trace.hpp"
#include "capow/capsalg/cost_model.hpp"
#include "capow/strassen/cost_model.hpp"

namespace {

using namespace capow;

void print_reproduction() {
  bench::banner("ABL 5",
                "cost-model DRAM classification vs LRU cache simulation");
  const auto m = machine::haswell_e3_1225();

  std::printf(
      "\nserial replays on the %zu KiB L1 / %zu KiB L2 / %zu MiB LLC "
      "hierarchy:\n",
      m.caches[0].capacity_bytes / 1024, m.caches[1].capacity_bytes / 1024,
      m.caches[2].capacity_bytes / (1024 * 1024));

  harness::TextTable table({"algorithm", "n", "logical", "sim DRAM",
                            "model DRAM", "model/sim", "L1 miss", "LLC miss"});
  for (std::size_t n : {256u, 512u, 1024u}) {
    {
      const auto sim_r = cachesim::strassen_locality(n, 64, m);
      const auto wp = strassen::strassen_profile(n, m, 1);
      const double model = wp.total_dram_bytes();
      table.add_row(
          {"Strassen", std::to_string(n),
           harness::fmt_si(static_cast<double>(sim_r.logical_bytes), 2),
           harness::fmt_si(static_cast<double>(sim_r.dram_bytes), 2),
           harness::fmt_si(model, 2),
           sim_r.dram_bytes > 0
               ? harness::fmt(model / static_cast<double>(sim_r.dram_bytes),
                              2)
               : "-",
           harness::fmt(sim_r.levels[0].miss_ratio() * 100.0, 1) + "%",
           harness::fmt(sim_r.levels.back().miss_ratio() * 100.0, 1) +
               "%"});
    }
    {
      const auto sim_r = cachesim::caps_locality(n, 64, 4, m);
      const auto wp = capsalg::caps_profile(n, m, 1);
      const double model = wp.total_dram_bytes();
      table.add_row(
          {"CAPS", std::to_string(n),
           harness::fmt_si(static_cast<double>(sim_r.logical_bytes), 2),
           harness::fmt_si(static_cast<double>(sim_r.dram_bytes), 2),
           harness::fmt_si(model, 2),
           sim_r.dram_bytes > 0
               ? harness::fmt(model / static_cast<double>(sim_r.dram_bytes),
                              2)
               : "-",
           harness::fmt(sim_r.levels[0].miss_ratio() * 100.0, 1) + "%",
           harness::fmt(sim_r.levels.back().miss_ratio() * 100.0, 1) +
               "%"});
    }
  }
  std::printf("\n%s", table.str().c_str());
  std::printf(
      "\nreading: at LLC-resident sizes the simulator confirms the models'\n"
      "'cache-resident' calls (DRAM traffic stays near the compulsory\n"
      "operand footprint — the models' zero plus cold misses). Once the\n"
      "working set leaves the LLC (n = 1024), the measured streaming\n"
      "traffic and the models' serial DRAM estimates agree within a small\n"
      "factor. The multi-thread live-window rule cannot be validated by a\n"
      "serial replay and remains a modeling assumption (see DESIGN.md).\n");
}

void BM_LruCacheAccess(benchmark::State& state) {
  cachesim::LruCache cache(cachesim::CacheConfig{
      .capacity_bytes = 32 * 1024, .associativity = 8, .line_bytes = 64});
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr));
    addr += 64;
    if (addr > 64 * 1024) addr = 0;
  }
}
BENCHMARK(BM_LruCacheAccess);

void BM_StrassenLocalityReplay(benchmark::State& state) {
  const auto m = machine::haswell_e3_1225();
  const std::size_t n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cachesim::strassen_locality(n, 64, m).dram_bytes);
  }
}
BENCHMARK(BM_StrassenLocalityReplay)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
