// TAB3 — "Average power by thread count" (paper Table III; its caption
// repeats Table II's by mistake, but the body is watts per algorithm per
// thread count averaged over problem sizes).
#include "power_fig_common.hpp"

#include "capow/rapl/papi.hpp"
#include "capow/sim/executor.hpp"

namespace {

using namespace capow;
using harness::Algorithm;

constexpr double kPaper[3][4] = {
    {20.2, 30.9, 40.98, 49.13},    // OpenBLAS
    {21.1, 26.25, 30.4, 31.9},     // Strassen
    {17.7, 25.75, 30.175, 33.175}  // CAPS
};
constexpr double kPaperAvg[3] = {35.3, 27.41, 26.7};

void print_reproduction() {
  auto& runner = bench::paper_runner();
  bench::banner("TABLE III", "average package power (W) by thread count");

  harness::TextTable table({"Num Threads", "1", "2", "3", "4", "Average"});
  for (Algorithm a : harness::kAllAlgorithms) {
    std::vector<std::string> row{harness::algorithm_name(a)};
    double sum = 0.0;
    for (unsigned t = 1; t <= 4; ++t) {
      const double w = runner.average_power(a, t);
      sum += w;
      row.push_back(harness::fmt(w, 2));
    }
    row.push_back(harness::fmt(sum / 4.0, 2));
    table.add_row(row);
  }
  std::printf("\n%s\n", table.str().c_str());

  std::printf("paper-vs-ours:\n");
  for (std::size_t ai = 0; ai < 3; ++ai) {
    const Algorithm a = harness::kAllAlgorithms[ai];
    for (unsigned t = 1; t <= 4; ++t) {
      bench::compare_line(std::string(harness::algorithm_name(a)) + " @" +
                              std::to_string(t) + " threads",
                          kPaper[ai][t - 1], runner.average_power(a, t));
    }
    double avg = 0.0;
    for (unsigned t = 1; t <= 4; ++t) avg += runner.average_power(a, t);
    bench::compare_line(std::string(harness::algorithm_name(a)) + " average",
                        kPaperAvg[ai], avg / 4.0);
  }

  // The headline deltas the paper derives from this table.
  double caps_avg = 0.0, str_avg = 0.0;
  for (unsigned t = 1; t <= 4; ++t) {
    caps_avg += runner.average_power(Algorithm::kCaps, t);
    str_avg += runner.average_power(Algorithm::kStrassen, t);
  }
  std::printf(
      "\nCAPS vs Strassen average power delta: paper -2.59%%, ours %+.2f%%\n",
      (caps_avg / str_avg - 1.0) * 100.0);

  // The physically robust form of the same claim: total energy to
  // solution. Our CAPS finishes sooner at similar energy, so its
  // *average power* reads higher while its *energy* is lower — see
  // EXPERIMENTS.md for the reconciliation with the paper's numbers.
  const double caps_j =
      runner.find(Algorithm::kCaps, 4096, 4).package_energy_j;
  const double str_j =
      runner.find(Algorithm::kStrassen, 4096, 4).package_energy_j;
  std::printf(
      "CAPS vs Strassen energy-to-solution delta at n=4096, 4 threads: "
      "ours %+.2f%%\n(communication avoidance pays off where it matters — "
      "full parallelism with the\nworking set out of cache; at "
      "cache-resident or serial configurations CAPS's\nextra operand "
      "copies cost it energy instead)\n",
      (caps_j / str_j - 1.0) * 100.0);
}

// Microbenchmark the measurement path itself: how fast can a PAPI-style
// client poll the simulated RAPL device?
void BM_RaplPoll(benchmark::State& state) {
  rapl::SimulatedMsrDevice msr;
  rapl::EventSet events(msr);
  events.add_event(rapl::kEventPackageEnergy);
  events.add_event(rapl::kEventPp0Energy);
  events.start();
  double joules = 0.01;
  for (auto _ : state) {
    msr.deposit(machine::PowerPlane::kPackage, joules);
    msr.deposit(machine::PowerPlane::kPP0, joules * 0.7);
    benchmark::DoNotOptimize(events.read());
  }
}
BENCHMARK(BM_RaplPoll);

void BM_SimulateFullMatrixConfig(benchmark::State& state) {
  const auto m = machine::haswell_e3_1225();
  for (auto _ : state) {
    const auto wp = capow::bench::profile_for(
        harness::Algorithm::kStrassen, 4096, m, 4);
    benchmark::DoNotOptimize(sim::simulate(m, wp, 4).seconds);
  }
}
BENCHMARK(BM_SimulateFullMatrixConfig);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
