// EXT — elastic recovery: what surviving a rank death costs. The
// recovery-latency lane times the full respawn pipeline (detect the
// kill, flush stale traffic, agree on the failed set, restore the dead
// rank's panels from its buddy, recompute) against the fault-free
// baseline of the identical resilient kernel; the degraded-throughput
// lane measures what a shrink recovery's smaller survivor set does to
// sustained multiply throughput. Counters land in the bench JSONL so
// capow-bench-diff gates recovery-latency regressions like any other
// lane.
#include <chrono>
#include <memory>

#include "bench_common.hpp"
#include "capow/blas/gemm_ref.hpp"
#include "capow/dist/comm.hpp"
#include "capow/dist/dist_caps.hpp"
#include "capow/dist/recovery.hpp"
#include "capow/dist/summa.hpp"
#include "capow/fault/fault.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"

namespace {

using namespace capow;

struct ElasticRun {
  dist::RecoveryReport report;
  double seconds = 0.0;
  bool correct = false;
};

/// One resilient SUMMA execution under `policy`; when `faults` is
/// non-empty the spec is armed for the run (a fresh World each call, so
/// the generation-0 kill fires every time).
ElasticRun run_summa_elastic(int ranks, std::size_t n,
                             dist::RecoveryPolicy policy,
                             const std::string& faults,
                             const linalg::Matrix& a, const linalg::Matrix& b,
                             const linalg::Matrix& expect) {
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<fault::FaultScope> scope;
  if (!faults.empty()) {
    injector =
        std::make_unique<fault::FaultInjector>(fault::FaultPlan::parse(faults));
    scope = std::make_unique<fault::FaultScope>(*injector);
  }
  linalg::Matrix c(n, n);
  dist::World world(ranks);
  dist::RecoveryOptions opts;
  opts.policy = policy;
  dist::PanelCacheSet cache(ranks);
  cache.enabled = policy == dist::RecoveryPolicy::kRespawn;

  ElasticRun out;
  const auto t0 = std::chrono::steady_clock::now();
  out.report = world.run_elastic(
      opts, [&](dist::Communicator& comm, const dist::RecoveryContext& ctx) {
        linalg::Matrix empty;
        const bool root = comm.rank() == 0;
        dist::summa_multiply_resilient(comm, ctx, cache,
                                       root ? a.view() : empty.view(),
                                       root ? b.view() : empty.view(),
                                       root ? c.view() : empty.view());
      });
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  out.correct = linalg::allclose(c.view(), expect.view(), 1e-9, 1e-9);
  return out;
}

void print_reproduction() {
  bench::banner("EXT (robustness)",
                "elastic recovery: surviving rank death online");
  const int ranks = 4;
  const std::size_t n = 96;
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix expect(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  std::printf("\nworkload: resilient SUMMA, %d ranks, n=%zu, victim rank 2\n\n",
              ranks, n);

  harness::TextTable table({"scenario", "policy", "recoveries", "failed",
                            "recovery (ms)", "total (ms)", "correct"});
  const auto add = [&](const char* scenario, dist::RecoveryPolicy policy,
                       const std::string& faults) {
    const ElasticRun run =
        run_summa_elastic(ranks, n, policy, faults, a, b, expect);
    std::string failed;
    for (int r : run.report.failed_ranks) {
      if (!failed.empty()) failed += ",";
      failed += std::to_string(r);
    }
    table.add_row({scenario, dist::recovery_policy_name(policy),
                   std::to_string(run.report.recoveries),
                   failed.empty() ? "-" : failed,
                   harness::fmt(static_cast<double>(run.report.recovery_ns) /
                                    1e6,
                                3),
                   harness::fmt(run.seconds * 1e3, 2),
                   run.correct ? "yes" : "NO"});
  };
  add("fault-free", dist::RecoveryPolicy::kRespawn, "");
  add("kill rank 2", dist::RecoveryPolicy::kRespawn,
      "rank.kill=2/4@5,seed=42");
  add("kill rank 2", dist::RecoveryPolicy::kShrink, "rank.kill=2/4@5,seed=42");
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nreading: respawn pays one detection + panel-restore round and\n"
      "recomputes on the full grid (bit-identical output); shrink skips\n"
      "the restore but recomputes on fewer ranks — the degraded-\n"
      "throughput lane below prices that loss per multiply.\n");
}

// Recovery latency: full respawn pipeline per iteration. The JSONL
// counters are the regression surface — recovery_ms is the span from
// the generation-0 abort to the start of the recomputation.
void BM_RecoveryLatency(benchmark::State& state) {
  const int ranks = 4;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix expect(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  std::uint64_t recovery_ns = 0, recoveries = 0;
  for (auto _ : state) {
    const ElasticRun run = run_summa_elastic(
        ranks, n, dist::RecoveryPolicy::kRespawn, "rank.kill=2/4@5,seed=42",
        a, b, expect);
    if (!run.correct || run.report.recoveries != 1) {
      state.SkipWithError("recovery did not complete correctly");
      break;
    }
    recovery_ns += run.report.recovery_ns;
    recoveries += static_cast<std::uint64_t>(run.report.recoveries);
  }
  state.counters["recovery_ms"] = benchmark::Counter(
      static_cast<double>(recovery_ns) / 1e6, benchmark::Counter::kAvgIterations);
  state.counters["recoveries"] = benchmark::Counter(
      static_cast<double>(recoveries), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RecoveryLatency)->Arg(48)->Arg(96)
    ->Unit(benchmark::kMillisecond);

// Degraded throughput: sustained multiply rate on the membership a
// shrink recovery leaves behind (range(0) = surviving ranks) vs the
// full world. Runs the plain resilient kernel fault-free on a world of
// that size — exactly the steady state after the recovery transition.
void BM_ShrinkDegradedThroughput(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t n = 96;
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix expect(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  for (auto _ : state) {
    const ElasticRun run = run_summa_elastic(
        ranks, n, dist::RecoveryPolicy::kShrink, "", a, b, expect);
    if (!run.correct) {
      state.SkipWithError("multiply incorrect");
      break;
    }
  }
  state.counters["ranks"] =
      benchmark::Counter(static_cast<double>(ranks));
  state.counters["multiplies_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShrinkDegradedThroughput)->Arg(4)->Arg(3)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
