// ABL1 — ablation of CAPS's BFS/DFS cutoff depth. The paper fixes
// CUTOFF_DEPTH = 4 "after much empirical testing"; this bench sweeps the
// depth and reports the simulated time/power/EP and the measured buffer
// high-water mark — the memory-for-communication trade Algorithm 2
// navigates.
#include "bench_common.hpp"
#include "capow/capsalg/caps.hpp"
#include "capow/capsalg/cost_model.hpp"
#include "capow/linalg/random.hpp"
#include "capow/sim/executor.hpp"

namespace {

using namespace capow;

void print_reproduction() {
  bench::banner("ABL 1", "CAPS BFS/DFS cutoff-depth sweep (paper fixes 4)");
  const auto m = machine::haswell_e3_1225();

  for (std::size_t n : {2048u, 4096u}) {
    std::printf("\nn = %zu, 4 threads:\n", n);
    harness::TextTable table({"cutoff depth", "sim time (s)", "pkg W",
                              "EP (W/s)", "peak buffers"});
    for (std::size_t depth : {0u, 1u, 2u, 3u, 4u, 5u, 6u}) {
      capsalg::CapsCostOptions opts;
      opts.bfs_cutoff_depth = depth;
      const auto run = sim::simulate(m, capsalg::caps_profile(n, m, 4, opts), 4);
      const double w = run.avg_power_w(machine::PowerPlane::kPackage);
      table.add_row({std::to_string(depth), harness::fmt(run.seconds, 3),
                     harness::fmt(w, 2),
                     harness::fmt(w / run.seconds, 2),
                     harness::fmt_si(
                         capsalg::caps_peak_buffer_bytes(n, opts), 2) + "B"});
    }
    std::printf("%s", table.str().c_str());
  }
  std::printf(
      "\nreading: deeper BFS buys parallel, pinned sub-trees (time falls,\n"
      "then flattens once every level above the cache boundary is BFS)\n"
      "at the cost of a geometrically growing buffer high-water mark —\n"
      "the paper's depth-4 choice sits at the knee for its 4 GB node.\n");
}

void BM_CapsRealCutoffDepth(benchmark::State& state) {
  const std::size_t n = 256;
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  capsalg::CapsOptions opts;
  opts.base_cutoff = 32;
  opts.bfs_cutoff_depth = state.range(0);
  for (auto _ : state) {
    capsalg::multiply(a.view(), b.view(), c.view(), opts);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_CapsRealCutoffDepth)->DenseRange(0, 3);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
