// EXT2 — the paper's second Section VIII thread: energy performance
// scaling of sparse storage techniques. Generates synthetic irregular
// operators across densities, runs the EP model over the three formats'
// SpMV profiles, and cross-checks with real instrumented kernels.
#include "bench_common.hpp"
#include "capow/core/ep_model.hpp"
#include "capow/linalg/random.hpp"
#include "capow/sim/executor.hpp"
#include "capow/sparse/cost_model.hpp"
#include "capow/sparse/formats.hpp"
#include "capow/sparse/spmm.hpp"
#include "capow/sparse/spmv.hpp"

namespace {

using namespace capow;
using sparse::Format;

void print_reproduction() {
  bench::banner("EXT 2 (paper SVIII)",
                "EP scaling of sparse storage formats (CSR/COO/ELL)");
  const auto m = machine::haswell_e3_1225();
  constexpr std::size_t kN = 16384;
  constexpr std::size_t kIters = 50;  // a solver's SpMV inner loop

  for (double density : {0.001, 0.01}) {
    const auto csr = sparse::random_sparse(kN, kN, density, 7);
    const auto shape = sparse::shape_of(csr);
    std::printf("\nn = %zu, density = %.3f (nnz = %zu, ell width = %zu):\n",
                kN, density, shape.nnz, shape.ell_width);
    harness::TextTable table({"format", "bytes", "T@1 (s)", "T@4 (s)",
                              "W@1", "W@4", "S(4) (Eq 5)", "class"});
    for (Format f : sparse::kAllFormats) {
      const auto r1 = sim::simulate(
          m, sparse::spmv_profile(f, shape, m, 1, kIters), 1);
      const auto r4 = sim::simulate(
          m, sparse::spmv_profile(f, shape, m, 4, kIters), 4);
      const double w1 = r1.avg_power_w(machine::PowerPlane::kPackage);
      const double w4 = r4.avg_power_w(machine::PowerPlane::kPackage);
      const std::vector<std::pair<unsigned, double>> samples{
          {1u, w1 / r1.seconds}, {4u, w4 / r4.seconds}};
      const auto series = core::scaling_series(samples);
      double storage = 0.0;
      switch (f) {
        case Format::kCsr:
          storage = static_cast<double>(csr.bytes());
          break;
        case Format::kCoo:
          storage = static_cast<double>(sparse::coo_from_csr(csr).bytes());
          break;
        case Format::kEll:
          storage = static_cast<double>(sparse::ell_from_csr(csr).bytes());
          break;
      }
      table.add_row({sparse::format_name(f), harness::fmt_si(storage, 2),
                     harness::fmt(r1.seconds, 4), harness::fmt(r4.seconds, 4),
                     harness::fmt(w1, 1), harness::fmt(w4, 1),
                     harness::fmt(series.back().s, 2),
                     core::to_string(core::classify_scaling(series, 0.05))});
    }
    std::printf("%s", table.str().c_str());
  }
  std::printf(
      "\nreading: SpMV is bandwidth-bound, so every format's power scaling\n"
      "is strongly sublinear (the Strassen side of Fig 7, not the OpenBLAS\n"
      "side). Format choice shifts the *absolute* EP: COO's serial scatter\n"
      "and extra index stream cost it both time and energy; ELL's padding\n"
      "burns traffic in proportion to row irregularity.\n");

  // SpMM: widening the right-hand side climbs out of the bandwidth-bound
  // regime — the sparse analogue of the dense compute/memory divide that
  // separates Figs 4 and 5.
  {
    const auto csr = sparse::random_sparse(kN, kN, 0.01, 7);
    const auto shape = sparse::shape_of(csr);
    std::printf("\nSpMM (CSR, %zu RHS sweep, n = %zu, density 0.01):\n",
                std::size_t{5}, kN);
    harness::TextTable table({"k (RHS)", "flops/byte", "T@4 (s)", "pkg W",
                              "GF/s", "S(4) (Eq 5)"});
    for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
      const auto r1 = sim::simulate(
          m, sparse::spmm_profile(shape, k, m, 1, kIters), 1);
      const auto r4 = sim::simulate(
          m, sparse::spmm_profile(shape, k, m, 4, kIters), 4);
      const double w1 = r1.avg_power_w(machine::PowerPlane::kPackage);
      const double w4 = r4.avg_power_w(machine::PowerPlane::kPackage);
      const std::vector<std::pair<unsigned, double>> samples{
          {1u, w1 / r1.seconds}, {4u, w4 / r4.seconds}};
      table.add_row(
          {std::to_string(k),
           harness::fmt(sparse::spmm_flops(shape, k) /
                            sparse::spmm_traffic_bytes(shape, k),
                        3),
           harness::fmt(r4.seconds, 4), harness::fmt(w4, 1),
           harness::fmt(sparse::spmm_flops(shape, k) * kIters /
                            r4.seconds / 1e9,
                        2),
           harness::fmt(core::scaling_series(samples).back().s, 2)});
    }
    std::printf("%s", table.str().c_str());
    std::printf(
        "\nreading: each added right-hand side amortizes the index streams\n"
        "over more flops; power scaling drifts from sublinear (SpMV-like)\n"
        "toward the superlinear compute-bound regime as k grows.\n");
  }
}

void BM_RealSpmv(benchmark::State& state) {
  const auto csr = sparse::random_sparse(4096, 4096, 0.01, 3);
  std::vector<double> x(4096, 1.0), y(4096);
  const auto coo = sparse::coo_from_csr(csr);
  const auto ell = sparse::ell_from_csr(csr);
  for (auto _ : state) {
    switch (state.range(0)) {
      case 0:
        sparse::spmv(csr, x, y);
        break;
      case 1:
        sparse::spmv(coo, x, y);
        break;
      default:
        sparse::spmv(ell, x, y);
        break;
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * csr.nnz());
}
BENCHMARK(BM_RealSpmv)->Arg(0)->Arg(1)->Arg(2);

void BM_FormatConversion(benchmark::State& state) {
  const auto csr = sparse::random_sparse(4096, 4096, 0.01, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::ell_from_csr(csr).values.data());
  }
}
BENCHMARK(BM_FormatConversion);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
