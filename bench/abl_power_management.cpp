// ABL4 — the three power-management axes head to head. The paper's
// Section II frames DVFS and power capping as the established levers and
// proposes algorithm choice as a third; this bench quantifies all three
// under the same facility power budget: what is the fastest way to
// finish a 4096^2 multiply without ever exceeding N package watts?
//
//   axis 1 (DVFS):        downclock OpenBLAS until it fits the cap
//   axis 2 (RAPL cap):    let the PL1 limit throttle OpenBLAS
//   axis 3 (algorithm):   switch to Strassen/CAPS, full frequency
#include "power_fig_common.hpp"

#include "capow/blas/cost_model.hpp"
#include "capow/machine/dvfs.hpp"
#include "capow/rapl/msr.hpp"

namespace {

using namespace capow;
using harness::Algorithm;

void print_reproduction() {
  bench::banner("ABL 4",
                "DVFS vs RAPL capping vs algorithm choice under a power cap");
  const auto m = machine::haswell_e3_1225();
  constexpr std::size_t kN = 4096;

  for (double cap : {45.0, 35.0, 28.0}) {
    std::printf("\nbudget: %.0f W package, n = %zu, 4 threads\n", cap, kN);
    harness::TextTable table(
        {"strategy", "time (s)", "pkg W", "energy (J)", "slowdown"});

    const auto blas_profile = blas::blocked_gemm_profile(kN, m, 4);
    const auto free_run = sim::simulate(m, blas_profile, 4);
    const double base_time = free_run.seconds;

    const auto add_row = [&](const std::string& name,
                             const sim::RunResult& run, bool fits) {
      table.add_row({name, harness::fmt(run.seconds, 3),
                     harness::fmt(
                         run.avg_power_w(machine::PowerPlane::kPackage), 2) +
                         (fits ? "" : " (!)"),
                     harness::fmt(run.energy(machine::PowerPlane::kPackage),
                                  1),
                     harness::fmt(run.seconds / base_time, 2) + "x"});
    };
    add_row("OpenBLAS unconstrained (reference)", free_run,
            free_run.avg_power_w(machine::PowerPlane::kPackage) <= cap);

    // Axis 1: DVFS — largest P-state that keeps the tuned GEMM under
    // cap, reserving the measured non-core overhead (memory + LLC
    // power) from the uncapped run.
    const double overhead =
        free_run.avg_power_w(machine::PowerPlane::kPackage) -
        free_run.avg_power_w(machine::PowerPlane::kPP0) -
        m.power.uncore_static_w;
    const double s = machine::max_frequency_scale_under_cap(
        m, blas::kTunedGemmEfficiency, cap, std::max(overhead, 0.0));
    if (s > 0.0) {
      const auto scaled = machine::scale_frequency(m, s);
      const auto run = sim::simulate(
          scaled, blas::blocked_gemm_profile(kN, scaled, 4), 4);
      add_row("axis 1: DVFS OpenBLAS @" + harness::fmt(s * 3.2, 2) + " GHz",
              run, true);
    } else {
      table.add_row({"axis 1: DVFS OpenBLAS", "-", "-", "-",
                     "cap below static floor"});
    }

    // Axis 2: RAPL PL1 throttling, programmed through the MSR like a
    // real power-capping agent.
    rapl::SimulatedMsrDevice msr;
    msr.set_package_power_limit(cap);
    const auto throttled = sim::simulate_capped(
        m, blas_profile, 4, msr.package_power_limit_w(), &msr);
    add_row("axis 2: RAPL PL1 cap on OpenBLAS", throttled, true);

    // Axis 3: algorithm choice at full frequency.
    for (Algorithm a : {Algorithm::kStrassen, Algorithm::kCaps}) {
      const auto run =
          sim::simulate(m, bench::profile_for(a, kN, m, 4), 4);
      const bool fits =
          run.avg_power_w(machine::PowerPlane::kPackage) <= cap;
      add_row(std::string("axis 3: ") + harness::algorithm_name(a) +
                  ", full speed",
              run, fits);
    }
    std::printf("%s", table.str().c_str());
  }

  std::printf(
      "\nreading: at mild caps the throttled/downclocked tuned GEMM still\n"
      "wins — its per-flop efficiency is unbeatable. As the cap tightens\n"
      "toward the Strassen family's natural operating point, axis 3\n"
      "becomes competitive and eventually dominant, with *lower total\n"
      "energy* than a GEMM stretched by throttling: the paper's thesis —\n"
      "algorithmic complexity is a power-scaling lever in its own right.\n");
}

void BM_SimulateCapped(benchmark::State& state) {
  const auto m = machine::haswell_e3_1225();
  const auto wp = blas::blocked_gemm_profile(4096, m, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate_capped(m, wp, 4, 35.0).seconds);
  }
}
BENCHMARK(BM_SimulateCapped);

void BM_DvfsSearch(benchmark::State& state) {
  const auto m = machine::haswell_e3_1225();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        machine::max_frequency_scale_under_cap(m, 0.42, 35.0));
  }
}
BENCHMARK(BM_DvfsSearch);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
