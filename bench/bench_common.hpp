// Shared support for the per-table/per-figure bench binaries.
//
// Every binary in bench/ regenerates one artifact of the paper's
// evaluation (a table or a figure) and then runs a small set of real
// google-benchmark microbenchmarks of the kernels that artifact rests
// on. The reproduction section prints first so `for b in build/bench/*;
// do $b; done` yields the full paper reproduction in one sweep.
// Alongside the stdout tables, every bench emits one machine-readable
// JSON line per benchmark result (see JsonlReporter below); set
// CAPOW_BENCH_JSONL=FILE to append them to a file instead.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "capow/harness/experiment.hpp"
#include "capow/harness/table.hpp"
#include "capow/telemetry/export.hpp"

namespace capow::bench {

/// The paper's full evaluation matrix, computed once per process.
inline harness::ExperimentRunner& paper_runner() {
  static harness::ExperimentRunner runner{harness::ExperimentConfig{}};
  runner.run();
  return runner;
}

/// Prints a banner for the reproduction section of a bench binary.
inline void banner(const std::string& artifact, const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), title.c_str());
  std::printf("machine: %s\n",
              paper_runner().config().machine.name.c_str());
  std::printf("==============================================================\n");
}

/// Prints "paper reports X, we measure Y" comparison lines.
inline void compare_line(const std::string& what, double paper,
                         double measured, int precision = 2) {
  std::printf("  %-46s paper %10s   ours %10s\n", what.c_str(),
              harness::fmt(paper, precision).c_str(),
              harness::fmt(measured, precision).c_str());
}

/// A minimal fixed-width ASCII chart for "figure" benches: one row per
/// x value, bars scaled to the maximum.
inline void ascii_series(const std::string& label,
                         const std::vector<std::pair<double, double>>& xy,
                         double max_value, int width = 48) {
  std::printf("  %s\n", label.c_str());
  for (const auto& [x, y] : xy) {
    const int bar =
        max_value > 0.0
            ? static_cast<int>(y / max_value * width + 0.5)
            : 0;
    std::printf("    %8.5g | %s %s\n", x,
                std::string(std::max(bar, 0), '#').c_str(),
                harness::fmt(y, 2).c_str());
  }
}

/// Companion benchmark reporter: one JSON object per line per run
/// (name, iterations, real/cpu time, time unit, user counters), written
/// to the stream it is constructed with. Structured twin of the console
/// table — pipe it into jq or a dashboard instead of scraping stdout.
/// Wrapped around the ConsoleReporter by bench_main below so it rides
/// the display-reporter slot (the file-reporter slot demands
/// --benchmark_out on the benchmark versions we support).
class JsonlReporter : public ::benchmark::BenchmarkReporter {
 public:
  explicit JsonlReporter(std::ostream& os) : os_(&os) {}

  bool ReportContext(const Context&) override { return true; }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      telemetry::JsonObject o;
      o.field("name", run.benchmark_name())
          .field("iterations",
                 static_cast<std::int64_t>(run.iterations))
          .field("real_time", run.GetAdjustedRealTime())
          .field("cpu_time", run.GetAdjustedCPUTime())
          .field("time_unit",
                 ::benchmark::GetTimeUnitString(run.time_unit));
      if (run.error_occurred) {
        o.field("error", true).field("error_message", run.error_message);
      }
      for (const auto& [name, counter] : run.counters) {
        o.field(name, static_cast<double>(counter.value));
      }
      *os_ << o.str() << '\n';
    }
    os_->flush();
  }

 private:
  std::ostream* os_;
};

/// Display reporter that forwards every callback to the console and
/// mirrors each run into a JsonlReporter.
class ConsolePlusJsonlReporter : public ::benchmark::ConsoleReporter {
 public:
  explicit ConsolePlusJsonlReporter(std::ostream& jsonl_os)
      : jsonl_(jsonl_os) {}

  bool ReportContext(const Context& context) override {
    jsonl_.ReportContext(context);
    return ::benchmark::ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    ::benchmark::ConsoleReporter::ReportRuns(runs);
    jsonl_.ReportRuns(runs);
  }

  void Finalize() override {
    ::benchmark::ConsoleReporter::Finalize();
    jsonl_.Finalize();
  }

 private:
  JsonlReporter jsonl_;
};

/// Runs the reproduction printer then the registered microbenchmarks.
/// Results go to the console reporter as usual plus a JsonlReporter:
/// to the file named by $CAPOW_BENCH_JSONL (appended) when set,
/// otherwise inline on stdout.
/// Usage in each binary:
///   int main(int argc, char** argv) {
///     return capow::bench::bench_main(argc, argv, print_reproduction);
///   }
template <typename Repro>
int bench_main(int argc, char** argv, Repro&& print_reproduction) {
  print_reproduction();
  std::printf("\n-- microbenchmarks ------------------------------------------\n");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  std::ofstream jsonl_file;
  if (const char* path = std::getenv("CAPOW_BENCH_JSONL");
      path != nullptr && path[0] != '\0') {
    jsonl_file.open(path, std::ios::app);
    if (!jsonl_file) {
      std::fprintf(stderr, "cannot open CAPOW_BENCH_JSONL file '%s'\n",
                   path);
      return 1;
    }
  }
  ConsolePlusJsonlReporter reporter(
      jsonl_file.is_open() ? static_cast<std::ostream&>(jsonl_file)
                           : std::cout);
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace capow::bench
