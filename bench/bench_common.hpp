// Shared support for the per-table/per-figure bench binaries.
//
// Every binary in bench/ regenerates one artifact of the paper's
// evaluation (a table or a figure) and then runs a small set of real
// google-benchmark microbenchmarks of the kernels that artifact rests
// on. The reproduction section prints first so `for b in build/bench/*;
// do $b; done` yields the full paper reproduction in one sweep.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "capow/harness/experiment.hpp"
#include "capow/harness/table.hpp"

namespace capow::bench {

/// The paper's full evaluation matrix, computed once per process.
inline harness::ExperimentRunner& paper_runner() {
  static harness::ExperimentRunner runner{harness::ExperimentConfig{}};
  runner.run();
  return runner;
}

/// Prints a banner for the reproduction section of a bench binary.
inline void banner(const std::string& artifact, const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), title.c_str());
  std::printf("machine: %s\n",
              paper_runner().config().machine.name.c_str());
  std::printf("==============================================================\n");
}

/// Prints "paper reports X, we measure Y" comparison lines.
inline void compare_line(const std::string& what, double paper,
                         double measured, int precision = 2) {
  std::printf("  %-46s paper %10s   ours %10s\n", what.c_str(),
              harness::fmt(paper, precision).c_str(),
              harness::fmt(measured, precision).c_str());
}

/// A minimal fixed-width ASCII chart for "figure" benches: one row per
/// x value, bars scaled to the maximum.
inline void ascii_series(const std::string& label,
                         const std::vector<std::pair<double, double>>& xy,
                         double max_value, int width = 48) {
  std::printf("  %s\n", label.c_str());
  for (const auto& [x, y] : xy) {
    const int bar =
        max_value > 0.0
            ? static_cast<int>(y / max_value * width + 0.5)
            : 0;
    std::printf("    %8.5g | %s %s\n", x,
                std::string(std::max(bar, 0), '#').c_str(),
                harness::fmt(y, 2).c_str());
  }
}

/// Runs the reproduction printer then the registered microbenchmarks.
/// Usage in each binary:
///   int main(int argc, char** argv) {
///     return capow::bench::bench_main(argc, argv, print_reproduction);
///   }
template <typename Repro>
int bench_main(int argc, char** argv, Repro&& print_reproduction) {
  print_reproduction();
  std::printf("\n-- microbenchmarks ------------------------------------------\n");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace capow::bench
