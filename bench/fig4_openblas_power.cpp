// FIG4 — OpenBLAS power scaling (paper Fig 4 + Table III column).
#include "power_fig_common.hpp"

#include "capow/blas/blocked_gemm.hpp"
#include "capow/linalg/random.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace {

using namespace capow;

// Paper Table III, OpenBLAS row.
constexpr double kPaperAvg[4] = {20.2, 30.9, 40.98, 49.13};

void print_reproduction() {
  bench::print_power_figure(harness::Algorithm::kOpenBlas, "FIG 4",
                            kPaperAvg);
}

// Real kernel behind the figure: the packed blocked DGEMM, serial and
// through the work-sharing pool.
void BM_BlockedGemmThreads(benchmark::State& state) {
  const std::size_t n = 256;
  const unsigned workers = state.range(0);
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  tasking::ThreadPool pool(workers);
  blas::GemmOptions opts;
  opts.pool = workers > 0 ? &pool : nullptr;
  for (auto _ : state) {
    blas::gemm(a.view(), b.view(), c.view(), opts);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_BlockedGemmThreads)->Arg(0)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
