// EXT1 — the paper's Section VIII next step: distributed-memory CAPS
// with interconnect-aware power accounting. Real mini-MPI runs provide
// the communication volumes; the cluster energy model projects time,
// power and EP across rank counts for CAPS vs the broadcast-B classical
// baseline.
#include "bench_common.hpp"
#include "capow/dist/comm.hpp"
#include "capow/dist/dist_caps.hpp"
#include "capow/dist/energy.hpp"
#include "capow/linalg/random.hpp"
#include "capow/strassen/cost_model.hpp"
#include "capow/trace/counters.hpp"

namespace {

using namespace capow;

struct MeasuredRun {
  std::uint64_t message_bytes = 0;
  std::uint64_t messages = 0;
  double max_rank_flops = 0.0;
};

MeasuredRun measure(int ranks, std::size_t n, bool use_caps) {
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  trace::Recorder rec;
  trace::RecordingScope scope(rec);
  dist::World world(ranks);
  dist::DistCapsOptions opts;
  opts.local.base_cutoff = 32;
  world.run([&](dist::Communicator& comm) {
    linalg::Matrix empty;
    const bool root = comm.rank() == 0;
    if (use_caps) {
      dist::dist_caps_multiply(comm, root ? a.view() : empty.view(),
                               root ? b.view() : empty.view(),
                               root ? c.view() : empty.view(), opts);
    } else {
      dist::dist_block_gemm(comm, root ? a.view() : empty.view(),
                            root ? b.view() : empty.view(),
                            root ? c.view() : empty.view());
    }
  });
  MeasuredRun out;
  out.message_bytes = rec.total().message_bytes;
  out.messages = rec.total().messages;
  // Critical-path local work: max flops over the per-rank slots plus the
  // root's sequential slot.
  out.max_rank_flops = static_cast<double>(rec.max_parallel_flops());
  out.max_rank_flops = std::max(
      out.max_rank_flops, static_cast<double>(rec.slot(0).flops) /
                              std::max(1, ranks));
  if (out.max_rank_flops == 0.0) {
    out.max_rank_flops = static_cast<double>(rec.total().flops) / ranks;
  }
  return out;
}

void print_reproduction() {
  bench::banner("EXT 1 (paper SVIII)",
                "distributed CAPS vs classical baseline on the cluster model");
  dist::DistMachineSpec cluster;  // Haswell nodes on 10 GbE
  std::printf(
      "\ncluster: %u-core nodes, link %.2f GB/s, %.1f nJ/B, NIC %.1f W\n",
      cluster.node.core_count, cluster.link_bandwidth_bytes_per_s / 1e9,
      cluster.link_energy_per_byte_nj, cluster.nic_static_w);

  const std::size_t n = 256;  // real runs at container scale
  std::printf("problem: %zu x %zu (real mini-MPI executions)\n\n", n, n);

  harness::TextTable table({"algorithm", "ranks", "comm bytes", "msgs",
                            "est time (s)", "est W", "EP (W/s)"});
  for (bool use_caps : {true, false}) {
    for (int ranks : {1, 2, 4, 7, 49}) {
      const MeasuredRun run = measure(ranks, n, use_caps);
      const auto est = dist::estimate_distributed_run(
          cluster, ranks, run.max_rank_flops,
          strassen::kBotsBaseKernelEfficiency,
          static_cast<double>(run.message_bytes), run.messages);
      table.add_row({use_caps ? "dist-CAPS" : "classical",
                     std::to_string(ranks),
                     harness::fmt_si(static_cast<double>(run.message_bytes), 2),
                     std::to_string(run.messages),
                     harness::fmt(est.seconds, 4),
                     harness::fmt(est.avg_power_w(), 1),
                     harness::fmt(est.avg_power_w() / est.seconds, 1)});
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nreading: CAPS ships ~3 quadrant buffers per remote sub-product\n"
      "while the classical baseline broadcasts all of B per rank, so the\n"
      "CAPS interconnect volume — and with it the link-plane energy the\n"
      "paper's SVIII wants measured — grows far slower with rank count.\n");
}

void BM_DistCapsReal(benchmark::State& state) {
  const int ranks = state.range(0);
  const std::size_t n = 128;
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  dist::DistCapsOptions opts;
  opts.local.base_cutoff = 32;
  for (auto _ : state) {
    dist::World world(ranks);
    world.run([&](dist::Communicator& comm) {
      linalg::Matrix empty;
      const bool root = comm.rank() == 0;
      dist::dist_caps_multiply(comm, root ? a.view() : empty.view(),
                               root ? b.view() : empty.view(),
                               root ? c.view() : empty.view(), opts);
    });
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_DistCapsReal)->Arg(1)->Arg(4)->Arg(7)
    ->Unit(benchmark::kMillisecond);

// Cost of the per-edge CommStats collector (dist/comm_stats.hpp) on the
// same workload: range(0) toggles WorldOptions::comm_stats. The two
// lanes differ only in plain per-rank counter writes on cache-owned
// blocks, so collector-on must stay within noise (<= 2%) of off —
// compare the two JSONL rows with capow-bench-diff.
void BM_DistCapsCommStatsOverhead(benchmark::State& state) {
  const bool collect = state.range(0) != 0;
  state.SetLabel(collect ? "collector on" : "collector off");
  const int ranks = 7;
  const std::size_t n = 128;
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  dist::DistCapsOptions opts;
  opts.local.base_cutoff = 32;
  dist::WorldOptions world_opts;
  world_opts.comm_stats = collect;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    dist::World world(ranks, world_opts);
    world.run([&](dist::Communicator& comm) {
      linalg::Matrix empty;
      const bool root = comm.rank() == 0;
      dist::dist_caps_multiply(comm, root ? a.view() : empty.view(),
                               root ? b.view() : empty.view(),
                               root ? c.view() : empty.view(), opts);
    });
    bytes = world.comm_stats().total_payload_bytes();
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["collector"] = benchmark::Counter(collect ? 1.0 : 0.0);
  state.counters["payload_bytes"] =
      benchmark::Counter(static_cast<double>(bytes));
}
BENCHMARK(BM_DistCapsCommStatsOverhead)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
