// EQ8 — the CAPS communication bound
//   W = max(n^w0 / (P M^(w0/2-1)), n^2 / P^(2/w0))
// evaluated against (a) the classical cubic bound and (b) *measured*
// interconnect traffic from real distributed runs on the mini-MPI
// runtime (distributed CAPS vs the broadcast-B classical baseline).
#include "bench_common.hpp"
#include "capow/core/comm_bounds.hpp"
#include "capow/dist/comm.hpp"
#include "capow/dist/dist_caps.hpp"
#include "capow/dist/summa.hpp"
#include "capow/harness/comm_audit.hpp"
#include "capow/linalg/random.hpp"
#include "capow/trace/counters.hpp"

namespace {

using namespace capow;

std::uint64_t measured_comm_bytes(int ranks, std::size_t n, bool use_caps) {
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  trace::Recorder rec;
  trace::RecordingScope scope(rec);
  dist::World world(ranks);
  dist::DistCapsOptions opts;
  opts.local.base_cutoff = 32;
  world.run([&](dist::Communicator& comm) {
    linalg::Matrix empty;
    const bool root = comm.rank() == 0;
    if (use_caps) {
      dist::dist_caps_multiply(comm, root ? a.view() : empty.view(),
                               root ? b.view() : empty.view(),
                               root ? c.view() : empty.view(), opts);
    } else {
      dist::dist_block_gemm(comm, root ? a.view() : empty.view(),
                            root ? b.view() : empty.view(),
                            root ? c.view() : empty.view());
    }
  });
  return rec.total().message_bytes;
}

void print_reproduction() {
  bench::banner("EQ 8", "communication bounds and measured traffic");
  const auto m = machine::haswell_e3_1225();
  const double m_words = core::fast_memory_words_per_core(m);

  std::printf("\nlower bounds in words (M = %.0f words/core):\n",
              m_words);
  harness::TextTable bounds({"n", "P", "Strassen bound (Eq 8)",
                             "classical bound", "ratio"});
  for (std::size_t n : {512u, 1024u, 2048u, 4096u, 16384u}) {
    for (unsigned p : {4u, 49u}) {
      const double s = core::caps_communication_bound_words(n, p, m_words);
      const double c =
          core::classical_communication_bound_words(n, p, m_words);
      bounds.add_row({std::to_string(n), std::to_string(p),
                      harness::fmt_si(s, 2), harness::fmt_si(c, 2),
                      harness::fmt(c / s, 2)});
    }
  }
  std::printf("%s\n", bounds.str().c_str());

  std::printf("measured interconnect bytes (mini-MPI, real runs):\n");
  harness::TextTable meas({"n", "ranks", "dist-CAPS bytes",
                           "classical bytes", "CAPS saves"});
  for (std::size_t n : {128u, 256u}) {
    for (int ranks : {4, 7}) {
      const auto caps = measured_comm_bytes(ranks, n, true);
      const auto classical = measured_comm_bytes(ranks, n, false);
      meas.add_row({std::to_string(n), std::to_string(ranks),
                    harness::fmt_si(static_cast<double>(caps), 2),
                    harness::fmt_si(static_cast<double>(classical), 2),
                    harness::fmt((1.0 - static_cast<double>(caps) /
                                            static_cast<double>(classical)) *
                                     100.0,
                                 1) +
                        "%"});
    }
  }
  std::printf("%s\n", meas.str().c_str());

  // The classical communication-avoiding comparators (paper ref [16]):
  // SUMMA and its 2.5D replication, measured on the same runtime.
  std::printf(
      "classical communication-avoiding comparators (n = 256, real "
      "runs):\n");
  harness::TextTable classical({"algorithm", "ranks", "total bytes",
                                "bytes/rank"});
  const auto measure_grid = [&](const char* name, const dist::GridSpec& g,
                                bool use_25d) {
    auto a = linalg::random_square(256, 1);
    auto b = linalg::random_square(256, 2);
    linalg::Matrix c(256, 256);
    trace::Recorder rec;
    trace::RecordingScope scope(rec);
    dist::World world(g.ranks());
    world.run([&](dist::Communicator& comm) {
      linalg::Matrix empty;
      const bool root = comm.rank() == 0;
      if (use_25d) {
        dist::multiply_25d(comm, g, root ? a.view() : empty.view(),
                           root ? b.view() : empty.view(),
                           root ? c.view() : empty.view());
      } else {
        dist::summa_multiply(comm, g, root ? a.view() : empty.view(),
                             root ? b.view() : empty.view(),
                             root ? c.view() : empty.view());
      }
    });
    const double bytes = static_cast<double>(rec.total().message_bytes);
    classical.add_row({name, std::to_string(g.ranks()),
                       harness::fmt_si(bytes, 2),
                       harness::fmt_si(bytes / g.ranks(), 2)});
  };
  measure_grid("SUMMA 2x2", dist::GridSpec{2, 2, 1}, false);
  measure_grid("SUMMA 4x4", dist::GridSpec{4, 4, 1}, false);
  measure_grid("2.5D 4x4x2", dist::GridSpec{4, 4, 2}, true);
  std::printf("%s\n", classical.str().c_str());

  // The audit join: the same (algorithm, n, P) points capow-report
  // --comm covers, but driven from the per-edge CommStats collector
  // (dist/comm_stats.hpp) instead of the trace recorder — busiest-rank
  // words against each algorithm's own bound.
  std::printf("measured vs Eq 8 bound (CommStats collector, real runs):\n");
  std::vector<harness::CommAuditRecord> audits;
  for (const auto& point : harness::default_comm_audit_points()) {
    audits.push_back(harness::run_comm_audit(point, harness::CommAuditOptions{}));
  }
  std::printf("%s\n", harness::comm_bound_table(audits).str().c_str());

  std::printf(
      "shape check (paper Eq 8): the Strassen exponent w0 = %.3f < 3 makes\n"
      "the CAPS bound grow strictly slower than the classical bound — the\n"
      "ratio column widens with n, the measured CAPS traffic undercuts the\n"
      "broadcast baseline everywhere, and 2.5D replication cuts *per-rank*\n"
      "bytes versus plain SUMMA exactly as its sqrt(c) theory promises.\n",
      core::strassen_exponent());
}

void BM_CommBoundEvaluation(benchmark::State& state) {
  const auto m = machine::haswell_e3_1225();
  const double m_words = core::fast_memory_words_per_core(m);
  std::size_t n = 512;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::caps_communication_bound_words(n, 4, m_words));
    n = n == 512 ? 4096 : 512;
  }
}
BENCHMARK(BM_CommBoundEvaluation);

// Measured-traffic audit as a gated benchmark: each run re-executes one
// default audit point with the CommStats collector and reports the
// byte-exact measured traffic and its bound ratio as user counters.
// Those land in the bench JSONL (bench_common.hpp), so capow-bench-diff
// flags any change in wire bytes — a comm regression gate, not just a
// speed one.
void BM_Eq8MeasuredVsBound(benchmark::State& state) {
  const auto points = capow::harness::default_comm_audit_points();
  const auto& point = points[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(point.algorithm + "/n=" + std::to_string(point.n) +
                 "/P=" + std::to_string(point.ranks));
  harness::CommAuditRecord rec;
  for (auto _ : state) {
    rec = harness::run_comm_audit(point, harness::CommAuditOptions{});
    double measured = rec.measured_max_rank_words;
    benchmark::DoNotOptimize(measured);
  }
  state.counters["measured_bytes"] = benchmark::Counter(
      static_cast<double>(rec.matrix.total_payload_bytes()));
  state.counters["measured_max_rank_words"] =
      benchmark::Counter(rec.measured_max_rank_words);
  state.counters["bound_words"] = benchmark::Counter(
      rec.bound_kind == "strassen" ? rec.strassen_bound_words
                                   : rec.classical_bound_words);
  state.counters["ratio_to_bound"] = benchmark::Counter(rec.ratio_to_bound);
}
BENCHMARK(BM_Eq8MeasuredVsBound)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_MiniMpiPingPong(benchmark::State& state) {
  const std::size_t words = state.range(0);
  for (auto _ : state) {
    dist::World world(2);
    world.run([&](dist::Communicator& comm) {
      std::vector<double> buf(words, 1.0);
      if (comm.rank() == 0) {
        comm.send(1, 0, buf);
        benchmark::DoNotOptimize(comm.recv(1, 1).payload.data());
      } else {
        auto msg = comm.recv(0, 0);
        comm.send(0, 1, msg.payload);
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * words * sizeof(double) * 2);
}
BENCHMARK(BM_MiniMpiPingPong)->Arg(1024)->Arg(65536);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
