// Shared reproduction printer for the power-scaling figures
// (Fig 4 OpenBLAS, Fig 5 Strassen, Fig 6 CAPS): package power versus
// thread count, one series per problem size, plus a sampled power trace
// through the simulated RAPL measurement loop.
#pragma once

#include "bench_common.hpp"
#include "capow/blas/cost_model.hpp"
#include "capow/capsalg/cost_model.hpp"
#include "capow/sim/executor.hpp"
#include "capow/strassen/cost_model.hpp"

namespace capow::bench {

inline sim::WorkProfile profile_for(harness::Algorithm a, std::size_t n,
                                    const machine::MachineSpec& m,
                                    unsigned threads) {
  switch (a) {
    case harness::Algorithm::kOpenBlas:
      return blas::blocked_gemm_profile(n, m, threads);
    case harness::Algorithm::kStrassen:
      return strassen::strassen_profile(n, m, threads);
    case harness::Algorithm::kCaps:
      return capsalg::caps_profile(n, m, threads);
  }
  throw std::invalid_argument("profile_for: bad algorithm");
}

/// Prints the power-vs-threads table and ASCII figure for one algorithm,
/// comparing the average row against the paper's Table III column.
inline void print_power_figure(harness::Algorithm a,
                               const char* fig_name,
                               const double paper_avg_by_threads[4]) {
  auto& runner = paper_runner();
  banner(fig_name, std::string(harness::algorithm_name(a)) +
                       " power scaling (package watts vs threads)");

  harness::TextTable table({"N", "1", "2", "3", "4"});
  for (std::size_t n : {512u, 1024u, 2048u, 4096u}) {
    std::vector<std::string> row{std::to_string(n)};
    for (unsigned t = 1; t <= 4; ++t) {
      row.push_back(harness::fmt(runner.find(a, n, t).package_watts, 2));
    }
    table.add_row(row);
  }
  std::printf("\n%s\n", table.str().c_str());

  std::printf("average across sizes vs paper Table III:\n");
  for (unsigned t = 1; t <= 4; ++t) {
    compare_line("avg package watts @" + std::to_string(t) + " threads",
                 paper_avg_by_threads[t - 1], runner.average_power(a, t));
  }

  std::printf("\npower series (n = 4096):\n");
  std::vector<std::pair<double, double>> xy;
  double peak = 0.0;
  for (unsigned t = 1; t <= 4; ++t) {
    const double w = runner.find(a, 4096, t).package_watts;
    xy.emplace_back(t, w);
    peak = std::max(peak, w);
  }
  ascii_series("package watts vs threads", xy, peak);

  // A sampled trace through the simulated PAPI/RAPL measurement loop —
  // what a power monitor polling during the run would log.
  const auto& m = runner.config().machine;
  sim::RunResult agg;
  const auto samples = sim::simulate_with_sampling(
      m, profile_for(a, 4096, m, 4), 4, /*dt=*/0.05, &agg);
  std::printf("\nsampled RAPL trace (n = 4096, 4 threads, 50 ms poll):\n");
  const std::size_t stride = std::max<std::size_t>(1, samples.size() / 8);
  for (std::size_t i = 0; i < samples.size(); i += stride) {
    std::printf("    t=%7.3fs  PACKAGE=%6.2f W  PP0=%6.2f W\n",
                samples[i].t_seconds, samples[i].package_w,
                samples[i].pp0_w);
  }
}

}  // namespace capow::bench
