// FIG1 — "Ideal and superlinear energy performance scaling" (paper
// Fig 1): the conceptual illustration of the EP model. We synthesize the
// two canonical curves the figure sketches and run them through the
// classifier, then chart them against the linear threshold.
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "capow/core/ep_model.hpp"

namespace {

using namespace capow;

void print_reproduction() {
  bench::banner("FIG 1", "ideal vs superlinear energy performance scaling");

  // An ideal algorithm: power grows no faster than speedup (S <= p);
  // a superlinear one: power outgrows the speedup (S > p).
  std::vector<std::pair<unsigned, double>> ideal;
  std::vector<std::pair<unsigned, double>> super;
  for (unsigned p = 1; p <= 8; ++p) {
    ideal.emplace_back(p, 10.0 * (0.4 + 0.6 * p));     // sublinear EP growth
    super.emplace_back(p, 10.0 * p * (0.6 + 0.4 * p)); // superlinear
  }
  const auto ideal_series = core::scaling_series(ideal);
  const auto super_series = core::scaling_series(super);

  std::printf("\n  p   linear   ideal-curve S   superlinear-curve S\n");
  for (std::size_t i = 0; i < ideal_series.size(); ++i) {
    std::printf("  %u   %6.2f   %13.2f   %19.2f\n",
                ideal_series[i].parallelism,
                static_cast<double>(ideal_series[i].parallelism),
                ideal_series[i].s, super_series[i].s);
  }
  std::printf("\n  classifier: ideal-curve -> %s, superlinear-curve -> %s\n",
              core::to_string(core::classify_scaling(ideal_series)).c_str(),
              core::to_string(core::classify_scaling(super_series)).c_str());

  std::vector<std::pair<double, double>> chart;
  for (const auto& pt : super_series) {
    chart.emplace_back(pt.parallelism, pt.s);
  }
  bench::ascii_series("superlinear S(p) (above the # = p line)", chart,
                      super_series.back().s);
}

void BM_ScalingSeries(benchmark::State& state) {
  std::vector<std::pair<unsigned, double>> samples;
  for (unsigned p = 1; p <= static_cast<unsigned>(state.range(0)); ++p) {
    samples.emplace_back(p, 3.0 * p);
  }
  for (auto _ : state) {
    auto series = core::scaling_series(samples);
    benchmark::DoNotOptimize(series.data());
  }
}
BENCHMARK(BM_ScalingSeries)->Arg(8)->Arg(64)->Arg(512);

void BM_ClassifyScaling(benchmark::State& state) {
  std::vector<core::ScalingPoint> series;
  for (unsigned p = 1; p <= 128; ++p) {
    series.push_back({p, 1.0 * p, 0.9 * p});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::classify_scaling(series));
  }
}
BENCHMARK(BM_ClassifyScaling);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
