// FIG7 — "Energy Performance Scaling": S = EP_p / EP_1 (Eq 5) across
// degrees of parallelism and problem sizes, against the linear
// threshold of Fig 1. The paper's headline reading: OpenBLAS is
// decisively superlinear; the Strassen family sits at or near the
// linear scale.
#include "bench_common.hpp"
#include "capow/core/ep_model.hpp"

namespace {

using namespace capow;
using harness::Algorithm;

void print_reproduction() {
  auto& runner = bench::paper_runner();
  bench::banner("FIG 7", "energy performance scaling S = EP_p / EP_1 (Eq 5)");

  for (std::size_t n : {512u, 1024u, 2048u, 4096u}) {
    std::printf("\nn = %zu   (linear threshold: S(p) = p)\n", n);
    harness::TextTable table({"Algorithm", "S(1)", "S(2)", "S(3)", "S(4)",
                              "class (2% tol)", "class (15% tol)"});
    for (Algorithm a : harness::kAllAlgorithms) {
      const auto series = runner.ep_scaling(a, n);
      std::vector<std::string> row{harness::algorithm_name(a)};
      for (const auto& pt : series) row.push_back(harness::fmt(pt.s, 2));
      row.push_back(core::to_string(core::classify_scaling(series, 0.02)));
      row.push_back(core::to_string(core::classify_scaling(series, 0.15)));
      table.add_row(row);
    }
    std::printf("%s", table.str().c_str());
  }

  std::printf(
      "\npaper-vs-ours (qualitative):\n"
      "  paper: OpenBLAS 'falls well beyond the linear scale'        "
      "-> ours: S(4) ~ %.1f vs threshold 4 at n=4096\n"
      "  paper: Strassen/CAPS 'ideal or nearly ideal scaling curves' "
      "-> ours: Strassen S(4) ~ %.1f, CAPS S(4) ~ %.1f at n=4096\n"
      "  (see EXPERIMENTS.md for why the paper's own Tables II/III and\n"
      "   Fig 7 cannot be satisfied simultaneously; ours follow the\n"
      "   measured power/runtime ratios.)\n",
      runner.ep_scaling(Algorithm::kOpenBlas, 4096).back().s,
      runner.ep_scaling(Algorithm::kStrassen, 4096).back().s,
      runner.ep_scaling(Algorithm::kCaps, 4096).back().s);

  std::printf("\nS(p) at n = 4096:\n");
  for (Algorithm a : harness::kAllAlgorithms) {
    std::vector<std::pair<double, double>> xy;
    for (const auto& pt : runner.ep_scaling(a, 4096)) {
      xy.emplace_back(pt.parallelism, pt.s);
    }
    bench::ascii_series(harness::algorithm_name(a), xy,
                        runner.ep_scaling(Algorithm::kOpenBlas, 4096)
                            .back()
                            .s);
  }
}

void BM_FullExperimentMatrix(benchmark::State& state) {
  // Cost of regenerating the entire 48-configuration matrix from
  // scratch (cost models -> simulator -> RAPL -> EP).
  for (auto _ : state) {
    harness::ExperimentRunner runner{harness::ExperimentConfig{}};
    benchmark::DoNotOptimize(runner.run().size());
  }
}
BENCHMARK(BM_FullExperimentMatrix)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
