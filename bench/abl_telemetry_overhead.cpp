// ABL6 — overhead of the telemetry span tracer. The observability layer
// is only admissible if it does not perturb what it observes: target is
// under 2% added runtime on a real kernel while tracing, and exactly
// zero when compiled out (CAPOW_TELEMETRY=OFF turns every CAPOW_T*
// macro into nothing). This bench times blocked DGEMM with and without
// an installed tracer and reports the span-site costs directly.
#include <chrono>

#include "bench_common.hpp"
#include "capow/blas/blocked_gemm.hpp"
#include "capow/linalg/random.hpp"
#include "capow/tasking/thread_pool.hpp"
#include "capow/telemetry/telemetry.hpp"
#include "capow/telemetry/tracer.hpp"

namespace {

using namespace capow;

double time_gemm_seconds(std::size_t n, int reps) {
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  blas::gemm(a.view(), b.view(), c.view());  // warm-up
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    blas::gemm(a.view(), b.view(), c.view());
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() /
         static_cast<double>(reps);
}

void print_reproduction() {
  bench::banner("ABL 6", "telemetry span-tracer overhead");
#if CAPOW_TELEMETRY_ENABLED
  std::printf("\nbuild: CAPOW_TELEMETRY=ON (macros compiled in)\n");
#else
  std::printf(
      "\nbuild: CAPOW_TELEMETRY=OFF — every CAPOW_T* macro expands to\n"
      "nothing, so the 'traced' and 'untraced' columns below must match\n"
      "to measurement noise.\n");
#endif

  const std::size_t n = 512;
  const int reps = 6;
  const double untraced = time_gemm_seconds(n, reps);
  double traced = 0.0;
  std::size_t events = 0;
  {
    telemetry::Tracer tracer;
    telemetry::TracingScope scope(tracer);
    traced = time_gemm_seconds(n, reps);
    events = tracer.collect().size();
  }
  const double overhead_pct =
      untraced > 0.0 ? (traced / untraced - 1.0) * 100.0 : 0.0;
  std::printf("\nblocked DGEMM n=%zu, %d reps:\n", n, reps);
  harness::TextTable table(
      {"configuration", "seconds/run", "overhead", "events"});
  table.add_row({"tracer off", harness::fmt(untraced, 6), "-", "0"});
  table.add_row({"tracer on", harness::fmt(traced, 6),
                 harness::fmt(overhead_pct, 2) + "%",
                 std::to_string(events)});
  std::printf("%s", table.str().c_str());
  std::printf("\ntarget: < 2%% while tracing; 0%% compiled out.\n");
}

// Span cost at an instrumented call site with NO tracer installed — the
// tax every kernel pays all the time (one relaxed atomic load).
void BM_SpanSiteInactive(benchmark::State& state) {
  for (auto _ : state) {
    CAPOW_TSPAN("bench.span", "bench");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanSiteInactive);

// Full span cost with an installed tracer: two clock reads + one ring
// push.
void BM_SpanSiteActive(benchmark::State& state) {
  telemetry::Tracer tracer;
  telemetry::TracingScope scope(tracer);
  for (auto _ : state) {
    CAPOW_TSPAN_ARGS2("bench.span", "bench", "i", 1, "j", 2);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanSiteActive);

// The end-to-end comparison as a benchmark pair (real kernel work).
void BM_GemmUntraced(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    blas::gemm(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.view().row(0));
  }
}
BENCHMARK(BM_GemmUntraced)->Arg(256);

void BM_GemmTraced(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  telemetry::Tracer tracer;
  telemetry::TracingScope scope(tracer);
  for (auto _ : state) {
    blas::gemm(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.view().row(0));
  }
}
BENCHMARK(BM_GemmTraced)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
