// ABL10 — overhead of the backend dispatch seam. PR 8 routed every
// matmul() through BackendRegistry::dispatch + BackendScope before the
// algorithm runs; the seam is only admissible if the facade stays
// indistinguishable from calling the kernel directly. Target: < 1%
// added runtime at n=1024 for matmul(backend=cpu) vs a direct
// blas::gemm call, and nanosecond-scale costs for the dispatch
// decision itself (native and fallback paths).
#include <chrono>

#include "bench_common.hpp"
#include "capow/api/matmul.hpp"
#include "capow/backend/backend.hpp"
#include "capow/blas/blocked_gemm.hpp"
#include "capow/linalg/random.hpp"

namespace {

using namespace capow;

double time_direct_seconds(std::size_t n, int reps) {
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  blas::gemm(a.view(), b.view(), c.view());  // warm-up (arena + caches)
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    blas::gemm(a.view(), b.view(), c.view());
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() /
         static_cast<double>(reps);
}

double time_facade_seconds(std::size_t n, int reps) {
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  MatmulOptions opts;
  opts.backend = backend::BackendId::kCpu;
  matmul(a.view(), b.view(), c.view(), opts);  // warm-up
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    matmul(a.view(), b.view(), c.view(), opts);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() /
         static_cast<double>(reps);
}

void print_reproduction() {
  bench::banner("ABL 10", "backend dispatch-seam overhead");
  std::printf(
      "\nmatmul() now resolves a backend, consults the registry for a\n"
      "fallback decision, and installs a device guard before the kernel\n"
      "runs. All of that is per-call constant work, so it must vanish\n"
      "against an n=1024 GEMM (~2.1 GFLOP).\n");

  const std::size_t n = 1024;
  const int reps = 3;
  const double direct = time_direct_seconds(n, reps);
  const double facade = time_facade_seconds(n, reps);
  const double overhead_pct =
      direct > 0.0 ? (facade / direct - 1.0) * 100.0 : 0.0;

  std::printf("\nDGEMM n=%zu, %d reps:\n", n, reps);
  harness::TextTable table({"path", "seconds/run", "overhead"});
  table.add_row({"blas::gemm (direct)", harness::fmt(direct, 6), "-"});
  table.add_row({"matmul backend=cpu", harness::fmt(facade, 6),
                 harness::fmt(overhead_pct, 2) + "%"});
  std::printf("%s", table.str().c_str());
  std::printf("\ntarget: < 1%% through the seam at n=1024.\n");
}

// The facade pair at full size — the numbers behind the target above.
void BM_DirectGemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    blas::gemm(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.view().row(0));
  }
}
BENCHMARK(BM_DirectGemm)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_MatmulCpuBackend(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  MatmulOptions opts;
  opts.backend = backend::BackendId::kCpu;
  for (auto _ : state) {
    matmul(a.view(), b.view(), c.view(), opts);
    benchmark::DoNotOptimize(c.view().row(0));
  }
}
BENCHMARK(BM_MatmulCpuBackend)->Arg(1024)->Unit(benchmark::kMillisecond);

// The decision itself, isolated: native placement is a capability check
// plus a table read.
void BM_DispatchNative(benchmark::State& state) {
  backend::BackendRegistry& reg = backend::BackendRegistry::instance();
  for (auto _ : state) {
    auto dec =
        reg.dispatch(backend::BackendId::kCpu, core::AlgorithmId::kOpenBlas);
    benchmark::DoNotOptimize(dec);
  }
}
BENCHMARK(BM_DispatchNative);

// Fallback placement adds the counter bump and the telemetry instant —
// still nanoseconds, and only paid by ops the device lacks.
void BM_DispatchFallback(benchmark::State& state) {
  backend::BackendRegistry& reg = backend::BackendRegistry::instance();
  for (auto _ : state) {
    auto dec = reg.dispatch(backend::BackendId::kSimAccel,
                            core::AlgorithmId::kCaps);
    benchmark::DoNotOptimize(dec);
  }
  reg.reset_fallbacks();  // keep the bench loop out of the process total
}
BENCHMARK(BM_DispatchFallback);

// Backend resolution (explicit > CAPOW_BACKEND > host): the env lookup
// is parsed once per process, so this is a branch and a load.
void BM_ResolveBackend(benchmark::State& state) {
  for (auto _ : state) {
    auto id = backend::resolve_backend(std::nullopt);
    benchmark::DoNotOptimize(id);
  }
}
BENCHMARK(BM_ResolveBackend);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
