// FIG6 — CAPS power scaling (paper Fig 6 + Table III column).
#include "power_fig_common.hpp"

#include "capow/capsalg/caps.hpp"
#include "capow/linalg/random.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace {

using namespace capow;

// Paper Table III, CAPS row.
constexpr double kPaperAvg[4] = {17.7, 25.75, 30.175, 33.175};

void print_reproduction() {
  bench::print_power_figure(harness::Algorithm::kCaps, "FIG 6", kPaperAvg);
}

void BM_CapsThreads(benchmark::State& state) {
  const std::size_t n = 256;
  const unsigned workers = state.range(0);
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  tasking::ThreadPool pool(workers);
  capsalg::CapsOptions opts;
  opts.base_cutoff = 64;
  for (auto _ : state) {
    capsalg::multiply(a.view(), b.view(), c.view(), opts,
                           workers > 0 ? &pool : nullptr);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_CapsThreads)->Arg(0)->Arg(2)->Arg(4);

void BM_CapsBfsDepth(benchmark::State& state) {
  const std::size_t n = 256;
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  capsalg::CapsOptions opts;
  opts.base_cutoff = 32;
  opts.bfs_cutoff_depth = state.range(0);
  for (auto _ : state) {
    capsalg::multiply(a.view(), b.view(), c.view(), opts);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_CapsBfsDepth)->Arg(0)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
