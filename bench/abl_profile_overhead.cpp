// ABL9 — cost of energy attribution (src/capow/profile). Attribution is
// an *offline* analysis: it consumes a collected trace plus a power
// timeline after the measured region has ended, so its cost budget is
// about analyst patience, not kernel perturbation. This bench (a) times
// attribute() on a synthetic 500k-event trace to show the offline cost
// is linear-ish and bounded, and (b) re-measures the hot-path side —
// traced vs untraced DGEMM — to demonstrate that adding the profile
// module changed nothing about the < 2% tracing budget (attribution
// never runs inside the measured region).
#include <chrono>
#include <cstdint>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "capow/blas/blocked_gemm.hpp"
#include "capow/linalg/random.hpp"
#include "capow/profile/attribution.hpp"
#include "capow/telemetry/telemetry.hpp"
#include "capow/telemetry/tracer.hpp"

namespace {

using namespace capow;

// Synthetic trace: `threads` threads, each an alternation of a parent
// span with two children plus an inter-span gap, laid end to end until
// `total_events` records exist. Power: a flat two-plane timeline
// sampled every `slice_ns`.
profile::AttributionInput synthetic_input(std::size_t total_events,
                                          std::uint64_t threads,
                                          std::uint64_t slice_ns) {
  profile::AttributionInput in;
  in.events.reserve(total_events);
  const std::uint64_t span_ns = 40'000;  // 40 us parent spans
  std::uint64_t horizon = 0;
  std::uint64_t tid = 0;
  std::vector<std::uint64_t> cursor(threads, 0);
  while (in.events.size() < total_events) {
    std::uint64_t& t = cursor[tid];
    const std::uint64_t b = t;
    const std::uint64_t e = b + span_ns;
    telemetry::EventRecord parent;
    parent.name = "phase";
    parent.category = "bench";
    parent.t_begin_ns = b;
    parent.t_end_ns = e;
    in.events.push_back({tid, parent});
    telemetry::EventRecord child = parent;
    child.name = "child-a";
    child.t_begin_ns = b + span_ns / 8;
    child.t_end_ns = b + span_ns / 2;
    in.events.push_back({tid, child});
    child.name = "child-b";
    child.t_begin_ns = b + span_ns / 2;
    child.t_end_ns = e - span_ns / 8;
    in.events.push_back({tid, child});
    t = e + span_ns / 4;  // untracked gap between parents
    horizon = std::max(horizon, t);
    tid = (tid + 1) % threads;
  }
  for (std::uint64_t t = 0; t < horizon + slice_ns; t += slice_ns) {
    profile::PowerSlice s;
    s.t_begin_ns = t;
    s.t_end_ns = t + slice_ns;
    s.watts[static_cast<std::size_t>(profile::Plane::kPackage)] = 25.0;
    s.watts[static_cast<std::size_t>(profile::Plane::kPp0)] = 17.0;
    in.slices.push_back(s);
  }
  return in;
}

double time_gemm_seconds(std::size_t n, int reps) {
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  blas::gemm(a.view(), b.view(), c.view());  // warm-up
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    blas::gemm(a.view(), b.view(), c.view());
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() /
         static_cast<double>(reps);
}

void print_reproduction() {
  bench::banner("ABL 9", "energy attribution cost (offline analysis)");

  const std::size_t kEvents = 500'000;
  const auto in = synthetic_input(kEvents, 8, 100'000);
  const auto t0 = std::chrono::steady_clock::now();
  const profile::Profile prof = profile::attribute(in);
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();

  const auto pkg = static_cast<std::size_t>(profile::Plane::kPackage);
  std::printf(
      "\nsynthetic trace: %zu events across 8 threads, %zu power slices\n"
      "attribute(): %.3f s (%.0f events/s)\n",
      in.events.size(), in.slices.size(), seconds,
      static_cast<double>(in.events.size()) / seconds);
  const double integrated = prof.plane_total_j[pkg];
  const double attributed = prof.attributed_j(profile::Plane::kPackage);
  std::printf(
      "conservation (package): integrated %.6f J, attributed %.6f J, "
      "untracked %.6f J, |error| %.3g J\n",
      integrated, attributed, prof.untracked_j[pkg],
      std::abs(integrated - attributed));

  // The hot-path side of the claim: attribution runs offline, so the
  // traced-kernel overhead budget is the tracer's alone.
  const std::size_t n = 512;
  const int reps = 6;
  const double untraced = time_gemm_seconds(n, reps);
  double traced = 0.0;
  {
    telemetry::Tracer tracer;
    telemetry::TracingScope scope(tracer);
    traced = time_gemm_seconds(n, reps);
  }
  const double overhead_pct =
      untraced > 0.0 ? (traced / untraced - 1.0) * 100.0 : 0.0;
  harness::TextTable table({"configuration", "seconds/run", "overhead"});
  table.add_row({"untraced DGEMM", harness::fmt(untraced, 6), "-"});
  table.add_row({"traced DGEMM", harness::fmt(traced, 6),
                 harness::fmt(overhead_pct, 2) + "%"});
  std::printf("\nhot path, blocked DGEMM n=%zu (attribution NOT in loop):\n%s",
              n, table.str().c_str());
  std::printf(
      "\ntarget: hot-path overhead < 2%% (tracing budget); attribution is\n"
      "offline-only, so its cost above never lands on the measured region.\n");
}

// Offline attribution cost vs trace size.
void BM_Attribute(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  const auto in = synthetic_input(events, 8, 100'000);
  for (auto _ : state) {
    profile::Profile p = profile::attribute(in);
    benchmark::DoNotOptimize(p.root.total_ns);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_Attribute)->Arg(50'000)->Arg(500'000);

// Collapsed-stack export cost on an attributed profile.
void BM_FoldedExport(benchmark::State& state) {
  const auto in = synthetic_input(50'000, 8, 100'000);
  const profile::Profile p = profile::attribute(in);
  for (auto _ : state) {
    std::ostringstream os;
    profile::write_folded(p, os, profile::FoldedWeight::kMillijoules);
    benchmark::DoNotOptimize(os.str().size());
  }
}
BENCHMARK(BM_FoldedExport);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
