// ABL3 — ablation of the blocked DGEMM's cache blocking. Algorithm 1's
// performance rests on "determining what the best blocking factor is for
// the platform based upon cache hierarchy"; this bench compares the
// machine-derived blocking against fixed alternatives, in modeled
// traffic and in real executions.
#include "bench_common.hpp"
#include "capow/blas/blocked_gemm.hpp"
#include "capow/blas/cost_model.hpp"
#include "capow/blas/gemm_ref.hpp"
#include "capow/blas/microkernel.hpp"
#include "capow/blas/workspace.hpp"
#include "capow/linalg/random.hpp"

namespace {

using namespace capow;

void print_reproduction() {
  bench::banner("ABL 3", "blocked DGEMM blocking-parameter sweep");
  const auto m = machine::haswell_e3_1225();
  const auto selected = blas::select_blocking(m);
  std::printf(
      "\nmachine-selected blocking for '%s':\n"
      "  mc=%zu kc=%zu nc=%zu (mr=%zu x nr=%zu microkernel)\n",
      m.name.c_str(), selected.mc, selected.kc, selected.nc, selected.mr,
      selected.nr);

  std::printf("\nmodeled streaming traffic at n = 4096 (lower is better):\n");
  harness::TextTable table({"blocking", "traffic (GB)", "vs selected"});
  const double sel_traffic =
      blas::blocked_gemm_traffic_bytes(4096, 4096, 4096, selected);
  const auto add = [&](const std::string& name,
                       const blas::BlockingParams& bp) {
    const double t = blas::blocked_gemm_traffic_bytes(4096, 4096, 4096, bp);
    table.add_row({name, harness::fmt(t / 1e9, 2),
                   harness::fmt(t / sel_traffic, 2) + "x"});
  };
  add("machine-selected", selected);
  add("tiny (32/32/64)",
      blas::BlockingParams{.mc = 32, .kc = 32, .nc = 64, .mr = 4, .nr = 4});
  add("L1-only (64/64/128)",
      blas::BlockingParams{.mc = 64, .kc = 64, .nc = 128, .mr = 4, .nr = 4});
  add("square-256 (256/256/256)", blas::BlockingParams{.mc = 256,
                                                       .kc = 256,
                                                       .nc = 256,
                                                       .mr = 4,
                                                       .nr = 4});
  add("paper-naive (one-level, 8/8/8)",
      blas::BlockingParams{.mc = 8, .kc = 8, .nc = 8, .mr = 4, .nr = 4});
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nreading: the cache-derived blocking minimizes streaming traffic;\n"
      "degenerate blockings re-stream A and C many times over — the\n"
      "difference Algorithm 1's blocking-factor selection exists to avoid.\n");

  std::printf("\nregistered microkernels (BM_KernelGflops sweeps these):\n");
  harness::TextTable kernels({"kernel", "tile", "supported"});
  for (const auto& k : blas::kernel_registry()) {
    kernels.add_row({k.name,
                     std::to_string(k.mr) + "x" + std::to_string(k.nr),
                     k.supported() ? "yes" : "no"});
  }
  std::printf("%s", kernels.str().c_str());
}

// Per-kernel single-thread throughput at the paper's N=1024 working
// size. The `gflops` user counter lands in the bench JSONL; the arena
// counters show the packing buffers pooling (hit rate -> 1 after the
// first iteration).
void BM_KernelGflops(benchmark::State& state) {
  const auto& kern =
      blas::kernel_registry()[static_cast<std::size_t>(state.range(0))];
  if (!kern.supported()) {
    state.SkipWithError("kernel not supported on this CPU");
    return;
  }
  const std::size_t n = 1024;
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  blas::GemmOptions opts;
  opts.kernel = kern.id;
  blas::gemm(a.view(), b.view(), c.view(), opts);  // warm the arena
  auto& arena = blas::WorkspaceArena::process_arena();
  const blas::ArenaStats before = arena.stats();
  for (auto _ : state) {
    blas::gemm(a.view(), b.view(), c.view(), opts);
    benchmark::DoNotOptimize(c.data());
  }
  const blas::ArenaStats after = arena.stats();
  const double flops = 2.0 * n * n * n;
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(flops));
  state.SetLabel(kern.name);
  state.counters["gflops"] = benchmark::Counter(
      flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  const double acquires =
      static_cast<double>(after.acquires - before.acquires);
  state.counters["arena_hit_rate"] =
      acquires > 0.0
          ? static_cast<double>(after.hits - before.hits) / acquires
          : 0.0;
}
BENCHMARK(BM_KernelGflops)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_RealGemmBlocking(benchmark::State& state) {
  const std::size_t n = 256;
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  blas::BlockingParams bp;
  switch (state.range(0)) {
    case 0:
      bp = blas::select_blocking(machine::haswell_e3_1225());
      break;
    case 1:
      bp = blas::BlockingParams{.mc = 32, .kc = 32, .nc = 64, .mr = 4,
                                .nr = 4};
      break;
    default:
      bp = blas::BlockingParams{.mc = 8, .kc = 8, .nc = 8, .mr = 4, .nr = 4};
      break;
  }
  blas::GemmOptions opts;
  opts.blocking = bp;
  for (auto _ : state) {
    blas::gemm(a.view(), b.view(), c.view(), opts);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_RealGemmBlocking)->Arg(0)->Arg(1)->Arg(2);

void BM_ReferenceGemm(benchmark::State& state) {
  const std::size_t n = 128;
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    blas::gemm_reference(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_ReferenceGemm);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
