// ABL2 — ablation of the Strassen base-case cutoff. The paper settles on
// 64 ("after executing several empirical tests"); this bench sweeps the
// cutoff in the cost model (time/EP at 4096) and in real executions at a
// container-scale size.
#include "bench_common.hpp"
#include "capow/linalg/random.hpp"
#include "capow/sim/executor.hpp"
#include "capow/strassen/cost_model.hpp"
#include "capow/strassen/strassen.hpp"

namespace {

using namespace capow;

void print_reproduction() {
  bench::banner("ABL 2", "Strassen base-case cutoff sweep (paper fixes 64)");
  const auto m = machine::haswell_e3_1225();

  std::printf("\nn = 4096, 4 threads (simulated):\n");
  harness::TextTable table({"cutoff", "levels", "total GF", "sim time (s)",
                            "pkg W", "EP (W/s)"});
  for (std::size_t cutoff : {16u, 32u, 64u, 128u, 256u, 512u}) {
    strassen::StrassenCostOptions opts;
    opts.base_cutoff = cutoff;
    const auto run =
        sim::simulate(m, strassen::strassen_profile(4096, m, 4, opts), 4);
    const double w = run.avg_power_w(machine::PowerPlane::kPackage);
    table.add_row(
        {std::to_string(cutoff),
         std::to_string(strassen::recursion_levels(4096, cutoff)),
         harness::fmt(strassen::strassen_total_flops(4096, opts) / 1e9, 1),
         harness::fmt(run.seconds, 3), harness::fmt(w, 2),
         harness::fmt(w / run.seconds, 2)});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nreading: small cutoffs shave flops (more Strassen levels) but\n"
      "multiply the O(n^2) addition traffic; large cutoffs hand more work\n"
      "to the slow dense base kernel. The optimum sits in the middle —\n"
      "consistent with the paper's empirically chosen 64.\n");
}

void BM_StrassenRealCutoff(benchmark::State& state) {
  const std::size_t n = 256;
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  strassen::StrassenOptions opts;
  opts.base_cutoff = state.range(0);
  for (auto _ : state) {
    strassen::multiply(a.view(), b.view(), c.view(), opts);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_StrassenRealCutoff)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_WinogradVsClassic(benchmark::State& state) {
  const std::size_t n = 256;
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  strassen::StrassenOptions opts;
  opts.base_cutoff = 32;
  opts.winograd = state.range(0) != 0;
  for (auto _ : state) {
    strassen::multiply(a.view(), b.view(), c.view(), opts);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_WinogradVsClassic)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
