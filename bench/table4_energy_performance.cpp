// TAB4 — "Average energy performance at problem size = N" (Table IV):
// EP = EAvg / T (Eq 1, W/s) per algorithm per size, averaged over
// thread counts.
#include "bench_common.hpp"
#include "capow/core/ep_model.hpp"

namespace {

using namespace capow;
using harness::Algorithm;

constexpr std::size_t kSizes[] = {512, 1024, 2048, 4096};
constexpr double kPaper[3][4] = {
    {6356.33, 1052.34, 136.38, 19.53},  // OpenBLAS
    {1912.76, 239.27, 24.60, 4.70},     // Strassen
    {1961.28, 244.57, 25.32, 4.86}      // CAPS
};

void print_reproduction() {
  auto& runner = bench::paper_runner();
  bench::banner("TABLE IV", "average energy performance EP = EAvg/T (W/s)");

  harness::TextTable table(
      {"Algorithm", "512", "1024", "2048", "4096", "Average"});
  for (Algorithm a : harness::kAllAlgorithms) {
    std::vector<std::string> row{harness::algorithm_name(a)};
    double sum = 0.0;
    for (std::size_t n : kSizes) {
      const double ep = runner.average_ep(a, n);
      sum += ep;
      row.push_back(harness::fmt(ep, 2));
    }
    row.push_back(harness::fmt(sum / 4.0, 2));
    table.add_row(row);
  }
  std::printf("\n%s\n", table.str().c_str());

  std::printf("paper-vs-ours:\n");
  for (std::size_t ai = 0; ai < 3; ++ai) {
    const Algorithm a = harness::kAllAlgorithms[ai];
    for (std::size_t si = 0; si < 4; ++si) {
      bench::compare_line(std::string(harness::algorithm_name(a)) + " @n=" +
                              std::to_string(kSizes[si]),
                          kPaper[ai][si], runner.average_ep(a, kSizes[si]));
    }
  }

  std::printf(
      "\nshape check: EP falls ~x6-8 per size doubling for every "
      "algorithm,\nand OpenBLAS EP dominates the Strassen family at every "
      "size — both hold:\n");
  for (Algorithm a : harness::kAllAlgorithms) {
    std::printf("  %-9s ratios:", harness::algorithm_name(a));
    for (std::size_t si = 1; si < 4; ++si) {
      std::printf(" %5.1fx", runner.average_ep(a, kSizes[si - 1]) /
                                 runner.average_ep(a, kSizes[si]));
    }
    std::printf("\n");
  }
}

void BM_Eq1EnergyPerformance(benchmark::State& state) {
  double w = 35.0, t = 1.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::energy_performance(w, t));
    w += 1e-9;
  }
}
BENCHMARK(BM_Eq1EnergyPerformance);

void BM_Eq2MixedTotal(benchmark::State& state) {
  core::MixedMeasurement m;
  m.sequential = core::UnitMeasurement{{5.0, 1.0}, 0.5};
  for (int i = 0; i < 64; ++i) {
    m.parallel_units.push_back(
        core::UnitMeasurement{{20.0 + i, 2.0}, 3.0 + i * 0.01});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::energy_performance_total(m));
  }
}
BENCHMARK(BM_Eq2MixedTotal);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
