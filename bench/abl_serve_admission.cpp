// ABL — what capowd's admission control costs, and what it buys.
//
// The serve layer is only admissible under the same contract as every
// other robustness layer: the unloaded path must be free. serve_one()
// with an idle bucket forwards to capow::matmul() bit-identically, so
// the admission tax (memoized prediction + token-bucket debit + a
// decision record) has to vanish against the multiply it guards. The
// reproduction section prices that tax end to end, then re-runs the
// ISSUE's fixed-seed overload study to show the other side of the
// trade: under a 50 mW contract against a few-watt open-loop trace the
// ladder sheds only best-effort traffic, the guaranteed tier keeps its
// SLO, and the achieved watts land inside the budget.
#include <chrono>
#include <cstring>

#include "bench_common.hpp"
#include "capow/api/matmul.hpp"
#include "capow/linalg/random.hpp"
#include "capow/serve/server.hpp"

namespace {

using namespace capow;

// Direct matmul vs the full serve_one() admission path, interleaved
// best-of so OS jitter cannot masquerade as admission overhead.
void time_serve_pair(int reps, double* direct_s, double* served_s,
                     bool* identical) {
  const std::size_t n = 256;
  const auto a = linalg::random_matrix(n, n, 1);
  const auto b = linalg::random_matrix(n, n, 2);
  linalg::Matrix via_direct(n, n);
  linalg::Matrix via_serve(n, n);

  MatmulOptions mo;
  mo.algorithm = core::AlgorithmId::kOpenBlas;
  mo.abft.mode = abft::AbftMode::kOff;

  serve::Server server{serve::ServeOptions{}};
  serve::Request req;
  req.id = 1;
  req.n = n;
  req.tier = serve::QosTier::kGuaranteed;
  req.algorithm = core::AlgorithmId::kOpenBlas;

  matmul(a.view(), b.view(), via_direct.view(), mo);
  server.serve_one(req, a.view(), b.view(), via_serve.view());

  *direct_s = 1e300;
  *served_s = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    matmul(a.view(), b.view(), via_direct.view(), mo);
    auto t1 = std::chrono::steady_clock::now();
    const double d = std::chrono::duration<double>(t1 - t0).count();
    if (d < *direct_s) *direct_s = d;

    t0 = std::chrono::steady_clock::now();
    server.serve_one(req, a.view(), b.view(), via_serve.view());
    t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (s < *served_s) *served_s = s;
  }
  *identical = std::memcmp(via_direct.data(), via_serve.data(),
                           n * n * sizeof(double)) == 0;
}

void print_reproduction() {
  bench::banner("ABL serve", "capowd admission control: cost and effect");

  const int reps = 20;
  double direct_s = 0.0, served_s = 0.0;
  bool identical = false;
  time_serve_pair(reps, &direct_s, &served_s, &identical);
  const double overhead_pct =
      direct_s > 0.0 ? (served_s / direct_s - 1.0) * 100.0 : 0.0;

  std::printf("\nunloaded path, n=256 OpenBLAS, interleaved best of %d:\n",
              reps);
  harness::TextTable tax({"path", "seconds/run", "overhead"});
  tax.add_row({"capow::matmul direct", harness::fmt(direct_s, 6), "-"});
  tax.add_row({"serve_one (idle bucket)", harness::fmt(served_s, 6),
               harness::fmt(overhead_pct, 2) + "%"});
  std::printf("%s", tax.str().c_str());
  std::printf("result bit-identical to the direct call: %s\n",
              identical ? "yes" : "NO — transparency contract violated");

  // The ISSUE's overload study: a few-watt seeded trace against a
  // 50 mW contract. Virtual-time engine, so this re-runs in
  // milliseconds regardless of the trace's 20 s horizon.
  serve::LoadGenOptions lg;
  lg.seed = 7;
  serve::ServeOptions so;
  so.budget.budget_w = 0.05;
  serve::Server server(so);
  const serve::ServeReport report = server.run(serve::generate_trace(lg));

  std::printf("\noverload study (seed %llu, budget %.2f W):\n",
              static_cast<unsigned long long>(lg.seed),
              so.budget.budget_w);
  harness::TextTable study(
      {"tier", "submitted", "completed", "shed", "p99_s"});
  for (std::size_t i = 0; i < serve::kTierCount; ++i) {
    const auto& t = report.tiers[i];
    study.add_row(
        {serve::tier_name(static_cast<serve::QosTier>(i)),
         std::to_string(t.submitted), std::to_string(t.completed),
         std::to_string(t.rejected_for(serve::RejectReason::kShedding)),
         harness::fmt(t.p99_s, 4)});
  }
  std::printf("%s", study.str().c_str());
  std::printf("achieved %.4f W vs budget %.2f W; SLO %s, budget %s\n",
              report.achieved_w, report.budget_w,
              report.slo_met ? "met" : "MISSED",
              report.budget_met ? "met" : "BLOWN");
}

// One admission-path model evaluation after warm-up: the memoized
// lookup every repeated shape pays.
void BM_PredictMemoized(benchmark::State& state) {
  serve::CostPredictor predictor(machine::haswell_e3_1225(), 4);
  predictor.predict(core::AlgorithmId::kOpenBlas, 224);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        predictor.predict(core::AlgorithmId::kOpenBlas, 224));
  }
}
BENCHMARK(BM_PredictMemoized);

// A debit/refund round trip on the token bucket — the arithmetic core
// of every admission decision.
void BM_BucketDebitRefund(benchmark::State& state) {
  serve::EnergyBudgetOptions opts;
  opts.budget_w = 10.0;
  serve::EnergyBudget bucket(opts);
  for (auto _ : state) {
    bucket.try_debit(0.5, serve::QosTier::kBestEffort);
    bucket.refund(0.5);
    benchmark::DoNotOptimize(bucket.fill_j());
  }
}
BENCHMARK(BM_BucketDebitRefund);

// The whole virtual-time engine over the overload trace: decisions per
// second of the discrete-event core.
void BM_ServeEngineOverloadTrace(benchmark::State& state) {
  serve::LoadGenOptions lg;
  lg.seed = 7;
  const auto trace = serve::generate_trace(lg);
  serve::ServeOptions so;
  so.budget.budget_w = 0.05;
  serve::Server server(so);
  std::size_t decisions = 0;
  for (auto _ : state) {
    decisions += server.run(trace).decisions.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(decisions));
}
BENCHMARK(BM_ServeEngineOverloadTrace);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
