// TAB2 / FIG3 — "Average Strassen slowdown at problem size = N"
// (Table II) and the slowdown scaling chart (Fig 3). Regenerated from
// the full 48-configuration experiment matrix, then cross-checked with a
// real execution of all three algorithms at a laptop-scale size.
#include <chrono>

#include "bench_common.hpp"
#include "capow/blas/blocked_gemm.hpp"
#include "capow/capsalg/caps.hpp"
#include "capow/linalg/random.hpp"
#include "capow/strassen/strassen.hpp"

namespace {

using namespace capow;
using harness::Algorithm;

constexpr std::size_t kSizes[] = {512, 1024, 2048, 4096};

// Table II of the paper.
constexpr double kPaperStrassen[] = {2.872, 3.477, 2.874, 2.637};
constexpr double kPaperCaps[] = {2.840, 2.942, 2.809, 2.561};

void print_reproduction() {
  auto& runner = bench::paper_runner();
  bench::banner("TABLE II + FIG 3", "average Strassen/CAPS slowdown vs OpenBLAS");

  harness::TextTable table(
      {"Avg Slowdown", "512", "1024", "2048", "4096", "Average"});
  for (Algorithm a : {Algorithm::kStrassen, Algorithm::kCaps}) {
    std::vector<std::string> row{harness::algorithm_name(a)};
    double sum = 0.0;
    for (std::size_t n : kSizes) {
      const double s = runner.average_slowdown(a, n);
      sum += s;
      row.push_back(harness::fmt(s, 3));
    }
    row.push_back(harness::fmt(sum / 4.0, 3));
    table.add_row(row);
  }
  std::printf("\n%s\n", table.str().c_str());

  std::printf("paper-vs-ours per size:\n");
  for (std::size_t i = 0; i < 4; ++i) {
    bench::compare_line(
        "Strassen slowdown @" + std::to_string(kSizes[i]), kPaperStrassen[i],
        runner.average_slowdown(Algorithm::kStrassen, kSizes[i]), 3);
    bench::compare_line(
        "CAPS slowdown @" + std::to_string(kSizes[i]), kPaperCaps[i],
        runner.average_slowdown(Algorithm::kCaps, kSizes[i]), 3);
  }

  // Fig 3: slowdown per thread count (series per algorithm, n = 4096).
  std::printf("\nFIG 3 series (n = 4096, slowdown vs threads):\n");
  for (Algorithm a : {Algorithm::kStrassen, Algorithm::kCaps}) {
    std::vector<std::pair<double, double>> xy;
    for (unsigned t = 1; t <= 4; ++t) {
      xy.emplace_back(t, runner.find(a, 4096, t).seconds /
                             runner.find(Algorithm::kOpenBlas, 4096, t).seconds);
    }
    bench::ascii_series(harness::algorithm_name(a), xy, 4.0);
  }
}

// Real executions at a size this container can handle: the measured
// wall-clock ordering must match the reproduced table's ordering.
void BM_RealBlockedGemm(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    blas::gemm(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_RealBlockedGemm)->Arg(128)->Arg(256);

void BM_RealStrassen(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  strassen::StrassenOptions opts;
  opts.base_cutoff = 64;
  for (auto _ : state) {
    strassen::multiply(a.view(), b.view(), c.view(), opts);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_RealStrassen)->Arg(128)->Arg(256);

void BM_RealCaps(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  capsalg::CapsOptions opts;
  opts.base_cutoff = 64;
  for (auto _ : state) {
    capsalg::multiply(a.view(), b.view(), c.view(), opts);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_RealCaps)->Arg(128)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
