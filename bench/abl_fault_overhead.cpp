// ABL7 — overhead of the fault-injection hooks when no faults are
// configured. The robustness layer is only admissible if the no-fault
// path is free: with CAPOW_FAULTS unset the experiment matrix must be
// bit-identical to a build that never heard of fault injection, and
// under 2% slower end to end. Every hook site pays one relaxed atomic
// load (FaultInjector::active()); this bench measures that tax on the
// full experiment harness and at the individual draw sites.
#include <chrono>
#include <cstdint>

#include "bench_common.hpp"
#include "capow/fault/fault.hpp"
#include "capow/linalg/random.hpp"
#include "capow/strassen/strassen.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace {

using namespace capow;

// Task-spawning Strassen drives the densest gate site — the thread
// pool's per-task stall hook — hundreds of times per multiply, so it is
// the honest end-to-end workload for the no-fault tax. The pool is
// inline (0 workers: submit runs tasks immediately, still through the
// hook), the clean/gated configurations are interleaved so warm-up and
// frequency drift hit both equally, and each side keeps its best rep —
// OS jitter cannot masquerade as gate overhead.
void time_strassen_pair(int reps, double* clean, double* gated) {
  const std::size_t n = 512;
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  tasking::ThreadPool pool(0);
  strassen::multiply(a.view(), b.view(), c.view(), {}, &pool);
  const auto one_rep = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    strassen::multiply(a.view(), b.view(), c.view(), {}, &pool);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };
  *clean = 1e300;
  *gated = 1e300;
  fault::FaultInjector inj{fault::FaultPlan{}};
  for (int r = 0; r < reps; ++r) {
    const double c0 = one_rep();
    if (c0 < *clean) *clean = c0;
    // Installed injector, empty plan: every gate is taken, every
    // probability is zero — the worst no-fault case.
    fault::FaultScope scope(inj);
    const double g0 = one_rep();
    if (g0 < *gated) *gated = g0;
  }
}

void print_reproduction() {
  bench::banner("ABL 7", "fault-injection hot-path overhead");

  const int reps = 20;
  double clean = 0.0, gated = 0.0;
  time_strassen_pair(reps, &clean, &gated);

  // Bit-identical experiment records are the other half of the
  // contract: with no faults configured, an installed injector must
  // not perturb the measurement pipeline at all.
  harness::ExperimentConfig cfg;
  cfg.sizes = {512, 1024};
  cfg.thread_counts = {1, 2, 4};
  cfg.quiesce_seconds = 1.0;
  harness::ExperimentRunner a(cfg);
  a.run();
  bool identical = true;
  {
    fault::FaultInjector inj{fault::FaultPlan{}};
    fault::FaultScope scope(inj);
    harness::ExperimentRunner b(cfg);
    b.run();
    for (std::size_t i = 0; i < a.run().size(); ++i) {
      const auto& ra = a.run()[i];
      const auto& rb = b.run()[i];
      identical = identical && ra.seconds == rb.seconds &&
                  ra.package_watts == rb.package_watts &&
                  ra.pp0_watts == rb.pp0_watts && ra.ep == rb.ep &&
                  ra.status == rb.status;
    }
  }

  const double overhead_pct =
      clean > 0.0 ? (gated / clean - 1.0) * 100.0 : 0.0;
  std::printf(
      "\ntask-spawning Strassen n=512, inline pool, interleaved best of "
      "%d:\n",
      reps);
  harness::TextTable table({"configuration", "seconds/run", "overhead"});
  table.add_row({"no injector", harness::fmt(clean, 6), "-"});
  table.add_row({"injector installed, empty plan", harness::fmt(gated, 6),
                 harness::fmt(overhead_pct, 2) + "%"});
  std::printf("%s", table.str().c_str());
  std::printf("\nexperiment records bit-identical with empty plan: %s\n",
              identical ? "yes" : "NO — contract violated");
  std::printf("target: < 2%% overhead; identical records.\n");
}

// The tax every hook site pays with NO injector installed: one relaxed
// atomic load + branch.
void BM_GateNoInjector(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::FaultInjector::active());
  }
}
BENCHMARK(BM_GateNoInjector);

// Hook-site cost with an installed injector whose plan is empty: the
// comm path additionally checks any_comm() before drawing.
void BM_GateEmptyPlan(benchmark::State& state) {
  fault::FaultInjector inj{fault::FaultPlan{}};
  fault::FaultScope scope(inj);
  for (auto _ : state) {
    fault::FaultInjector* active = fault::FaultInjector::active();
    bool armed = active != nullptr && active->plan().any_comm();
    benchmark::DoNotOptimize(armed);
  }
}
BENCHMARK(BM_GateEmptyPlan);

// A full keyed draw (three splitmix64 rounds) at an armed site.
void BM_FireDraw(benchmark::State& state) {
  fault::FaultPlan plan;
  plan.comm_drop = 0.01;
  fault::FaultInjector inj(plan);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inj.fire(fault::Site::kCommDrop, ++k));
  }
}
BENCHMARK(BM_FireDraw);

// A sequenced draw: one atomic fetch_add on top of the keyed draw.
void BM_FireNextDraw(benchmark::State& state) {
  fault::FaultPlan plan;
  plan.rapl_fail = 0.01;
  fault::FaultInjector inj(plan);
  for (auto _ : state) {
    benchmark::DoNotOptimize(inj.fire_next(fault::Site::kRaplFail));
  }
}
BENCHMARK(BM_FireNextDraw);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
