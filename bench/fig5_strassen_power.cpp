// FIG5 — Strassen power scaling (paper Fig 5 + Table III column).
#include "power_fig_common.hpp"

#include "capow/linalg/random.hpp"
#include "capow/strassen/strassen.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace {

using namespace capow;

// Paper Table III, Strassen row.
constexpr double kPaperAvg[4] = {21.1, 26.25, 30.4, 31.9};

void print_reproduction() {
  bench::print_power_figure(harness::Algorithm::kStrassen, "FIG 5",
                            kPaperAvg);
}

void BM_StrassenThreads(benchmark::State& state) {
  const std::size_t n = 256;
  const unsigned workers = state.range(0);
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  tasking::ThreadPool pool(workers);
  strassen::StrassenOptions opts;
  opts.base_cutoff = 64;
  for (auto _ : state) {
    strassen::multiply(a.view(), b.view(), c.view(), opts,
                                workers > 0 ? &pool : nullptr);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_StrassenThreads)->Arg(0)->Arg(2)->Arg(4);

void BM_StrassenWinograd(benchmark::State& state) {
  const std::size_t n = 256;
  auto a = linalg::random_square(n, 1);
  auto b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);
  strassen::StrassenOptions opts;
  opts.base_cutoff = 64;
  opts.winograd = true;
  for (auto _ : state) {
    strassen::multiply(a.view(), b.view(), c.view(), opts);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_StrassenWinograd);

}  // namespace

int main(int argc, char** argv) {
  return capow::bench::bench_main(argc, argv, print_reproduction);
}
