// Tests for the microkernel registry (runtime SIMD dispatch) and the
// pooled packing workspace arena behind the matmul hot paths.
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "capow/abft/abft.hpp"
#include "capow/blas/blocked_gemm.hpp"
#include "capow/blas/blocking.hpp"
#include "capow/blas/cost_model.hpp"
#include "capow/blas/gemm_ref.hpp"
#include "capow/blas/microkernel.hpp"
#include "capow/blas/workspace.hpp"
#include "capow/capsalg/caps.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"
#include "capow/strassen/strassen.hpp"
#include "capow/trace/counters.hpp"

namespace capow::blas {
namespace {

using linalg::allclose;
using linalg::Matrix;
using linalg::random_matrix;

// The acceptance tolerance from the kernel contract: every variant must
// agree with the reference triple loop within 64 * n * ulp.
double kernel_tolerance(std::size_t n) {
  return 64.0 * static_cast<double>(n) *
         std::numeric_limits<double>::epsilon();
}

TEST(KernelRegistry, HasAllThreeVariants) {
  const auto kernels = kernel_registry();
  ASSERT_EQ(kernels.size(), 3u);
  EXPECT_EQ(kernels[0].id, MicroKernelId::kGeneric);
  EXPECT_STREQ(kernels[0].name, "generic");
  EXPECT_EQ(kernels[1].id, MicroKernelId::kAvx2);
  EXPECT_STREQ(kernels[1].name, "avx2");
  EXPECT_EQ(kernels[2].id, MicroKernelId::kFma);
  EXPECT_STREQ(kernels[2].name, "fma");
  // The scalar fallback must run anywhere.
  EXPECT_TRUE(kernels[0].supported());
}

TEST(KernelRegistry, LookupByIdNameAndTile) {
  EXPECT_STREQ(find_kernel(MicroKernelId::kGeneric)->name, "generic");
  const MicroKernel* fma = find_kernel("fma");
  ASSERT_NE(fma, nullptr);
  EXPECT_EQ(fma->mr, 6u);
  EXPECT_EQ(fma->nr, 8u);
  EXPECT_EQ(find_kernel("no-such-kernel"), nullptr);

  const MicroKernel* by_tile = find_kernel_for_tile(4, 4);
  ASSERT_NE(by_tile, nullptr);
  EXPECT_EQ(by_tile->id, MicroKernelId::kGeneric);
  EXPECT_EQ(find_kernel_for_tile(8, 8), nullptr);
}

TEST(KernelRegistry, SelectKernelHonorsExplicitRequest) {
  const MicroKernel& k = select_kernel(MicroKernelId::kGeneric);
  EXPECT_EQ(k.id, MicroKernelId::kGeneric);
  // Unconstrained selection picks something this CPU can run.
  EXPECT_TRUE(select_kernel().supported());
}

TEST(KernelRegistry, BlockingDerivedFromKernelTile) {
  for (const auto& k : kernel_registry()) {
    const BlockingParams bp = default_blocking_for(k);
    EXPECT_EQ(bp.mr, k.mr) << k.name;
    EXPECT_EQ(bp.nr, k.nr) << k.name;
    EXPECT_EQ(bp.mc % k.mr, 0u) << k.name;
    EXPECT_EQ(bp.nc % k.nr, 0u) << k.name;
  }
}

struct KernelCase {
  MicroKernelId id;
  std::size_t m, k, n;
};

class KernelVariantTest : public ::testing::TestWithParam<KernelCase> {};

// The kernel-variant matrix: every registered kernel, on square and
// awkward rectangular shapes, agrees with the reference triple loop.
TEST_P(KernelVariantTest, AgreesWithReferenceWithinUlpBound) {
  const auto p = GetParam();
  const MicroKernel& kern = *find_kernel(p.id);
  if (!kern.supported()) {
    GTEST_SKIP() << kern.name << " not supported on this CPU";
  }
  Matrix a = random_matrix(p.m, p.k, 17);
  Matrix b = random_matrix(p.k, p.n, 18);
  Matrix expect(p.m, p.n), got(p.m, p.n);
  gemm_reference(a.view(), b.view(), expect.view());
  GemmOptions opts;
  opts.kernel = p.id;
  gemm(a.view(), b.view(), got.view(), opts);
  const double err = linalg::relative_error(got.view(), expect.view());
  EXPECT_LT(err, kernel_tolerance(p.k))
      << kern.name << " " << p.m << "x" << p.k << "x" << p.n;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, KernelVariantTest,
    ::testing::Values(
        KernelCase{MicroKernelId::kGeneric, 64, 64, 64},
        KernelCase{MicroKernelId::kGeneric, 129, 67, 55},
        KernelCase{MicroKernelId::kGeneric, 1, 100, 1},
        KernelCase{MicroKernelId::kAvx2, 64, 64, 64},
        KernelCase{MicroKernelId::kAvx2, 129, 67, 55},
        KernelCase{MicroKernelId::kAvx2, 256, 256, 256},
        KernelCase{MicroKernelId::kAvx2, 1, 100, 1},
        KernelCase{MicroKernelId::kFma, 64, 64, 64},
        KernelCase{MicroKernelId::kFma, 129, 67, 55},
        KernelCase{MicroKernelId::kFma, 256, 256, 256},
        KernelCase{MicroKernelId::kFma, 1, 100, 1},
        KernelCase{MicroKernelId::kFma, 130, 7, 65}));

// All supported kernels produce the same logical trace counts — the
// cost model is kernel-shape independent by construction.
TEST(KernelVariants, TrafficAccountingIdenticalAcrossKernels) {
  const std::size_t n = 96;
  const BlockingParams bp{.mc = 32, .kc = 32, .nc = 64, .mr = 4, .nr = 4};
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  Matrix c(n, n);
  for (const auto& kern : kernel_registry()) {
    if (!kern.supported() || kern.mr != bp.mr || kern.nr != bp.nr) continue;
    trace::Recorder rec;
    {
      trace::RecordingScope scope(rec);
      GemmOptions opts;
      opts.blocking = bp;
      opts.kernel = kern.id;
      gemm(a.view(), b.view(), c.view(), opts);
    }
    EXPECT_EQ(static_cast<double>(rec.total().dram_bytes()),
              blocked_gemm_traffic_bytes(n, n, n, bp))
        << kern.name;
  }
}

TEST(Workspace, CheckoutRoundTripAndStats) {
  WorkspaceArena arena;
  {
    WorkspaceCheckout lease = arena.acquire(100);
    ASSERT_TRUE(lease.valid());
    EXPECT_GE(lease.capacity(), 100u);
    const ArenaStats s = arena.stats();
    EXPECT_EQ(s.acquires, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_GT(s.outstanding_bytes, 0u);
  }
  const ArenaStats s = arena.stats();
  EXPECT_EQ(s.outstanding_bytes, 0u);
  EXPECT_GT(s.pooled_bytes, 0u);
}

TEST(Workspace, RepeatAcquireIsAHit) {
  WorkspaceArena arena;
  arena.acquire(1000);  // released immediately
  WorkspaceCheckout again = arena.acquire(1000);
  const ArenaStats s = arena.stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(Workspace, SizeClassesShareBuffers) {
  // 4 KiB classes: 100 and 500 doubles both round to 4096 bytes, so the
  // second acquire reuses the first buffer despite the different count.
  WorkspaceArena arena;
  arena.acquire(100);
  arena.acquire(500);
  const ArenaStats s = arena.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.allocated_bytes, 4096u);
}

TEST(Workspace, TrimDropsIdleBuffers) {
  WorkspaceArena arena;
  arena.acquire(5000);
  EXPECT_GT(arena.stats().pooled_bytes, 0u);
  arena.trim();
  EXPECT_EQ(arena.stats().pooled_bytes, 0u);
  // Next acquire allocates fresh again.
  arena.acquire(5000);
  EXPECT_EQ(arena.stats().misses, 2u);
}

TEST(Workspace, TrimLeavesOutstandingCheckoutsUntouched) {
  WorkspaceArena arena;
  arena.acquire(5000);  // released immediately: one idle pooled buffer
  WorkspaceCheckout held = arena.acquire(9000);
  ASSERT_TRUE(held.valid());
  held.data()[0] = 42.0;
  held.data()[held.capacity() - 1] = 7.0;

  arena.trim();  // frees only the idle buffer
  EXPECT_EQ(arena.stats().pooled_bytes, 0u);
  EXPECT_GT(arena.stats().outstanding_bytes, 0u);
  EXPECT_TRUE(held.valid());
  EXPECT_EQ(held.data()[0], 42.0);
  EXPECT_EQ(held.data()[held.capacity() - 1], 7.0);

  // Releasing after the trim returns the buffer to the pool intact.
  held.release();
  EXPECT_EQ(arena.stats().outstanding_bytes, 0u);
  EXPECT_GT(arena.stats().pooled_bytes, 0u);
  WorkspaceCheckout again = arena.acquire(9000);
  EXPECT_EQ(arena.stats().hits, 1u);
}

TEST(Workspace, ArenaMatrixShapesAndAliasing) {
  WorkspaceArena arena;
  ArenaMatrix m(arena, 3, 5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 5u);
  m(2, 4) = 7.5;
  EXPECT_EQ(m.view()(2, 4), 7.5);

  auto batch = make_arena_matrices<7>(arena, 4, 4);
  for (auto& q : batch) q(0, 0) = 1.0;
  // Distinct leases: writing one does not alias another.
  batch[0](0, 0) = 42.0;
  EXPECT_EQ(batch[1](0, 0), 1.0);
}

// The headline property: after one warm-up call, repeat GEMMs never
// allocate — every packing-buffer checkout is a pool hit.
TEST(Workspace, GemmWarmRerunsHitEveryTime) {
  WorkspaceArena arena;
  const std::size_t n = 128;
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  Matrix c(n, n);
  GemmOptions opts;
  opts.arena = &arena;
  gemm(a.view(), b.view(), c.view(), opts);  // warm-up
  const ArenaStats cold = arena.stats();
  for (int i = 0; i < 3; ++i) gemm(a.view(), b.view(), c.view(), opts);
  const ArenaStats warm = arena.stats();
  EXPECT_EQ(warm.misses, cold.misses) << "warm rerun allocated";
  EXPECT_GT(warm.acquires, cold.acquires);
  EXPECT_EQ(warm.hits - cold.hits, warm.acquires - cold.acquires);
  EXPECT_EQ(warm.allocated_bytes, cold.allocated_bytes);
}

// ABFT's checksum snapshots and verification scratch lease from the
// same arena as the packing buffers, so a warm guarded rerun — guard
// construction, gemm, verify — allocates nothing either.
TEST(Workspace, AbftGuardedGemmAllocatesNothingWhenWarm) {
  WorkspaceArena arena;
  const std::size_t n = 128;
  Matrix a = random_matrix(n, n, 7), b = random_matrix(n, n, 8);
  Matrix c(n, n);
  GemmOptions opts;
  opts.arena = &arena;
  abft::AbftConfig cfg;
  cfg.mode = abft::AbftMode::kDetect;
  abft::guarded_gemm(a.view(), b.view(), c.view(), opts, cfg);  // warm-up
  const ArenaStats cold = arena.stats();
  for (int i = 0; i < 3; ++i) {
    abft::guarded_gemm(a.view(), b.view(), c.view(), opts, cfg);
  }
  const ArenaStats warm = arena.stats();
  EXPECT_EQ(warm.misses, cold.misses) << "warm ABFT rerun allocated";
  EXPECT_EQ(warm.allocated_bytes, cold.allocated_bytes);
  EXPECT_GT(warm.acquires, cold.acquires);
  EXPECT_EQ(warm.hits - cold.hits, warm.acquires - cold.acquires);
}

TEST(Workspace, StrassenRecursionAllocatesNothingWhenWarm) {
  WorkspaceArena arena;
  const std::size_t n = 160;  // padded: exercises the pad path too
  Matrix a = random_matrix(n, n, 3), b = random_matrix(n, n, 4);
  Matrix c(n, n);
  strassen::StrassenOptions opts;
  opts.base_cutoff = 32;
  opts.arena = &arena;
  strassen::multiply(a.view(), b.view(), c.view(), opts);  // warm-up
  const ArenaStats cold = arena.stats();
  strassen::multiply(a.view(), b.view(), c.view(), opts);
  const ArenaStats warm = arena.stats();
  EXPECT_EQ(warm.misses, cold.misses)
      << "strassen recursion allocated on the warm rerun";
  EXPECT_EQ(warm.allocated_bytes, cold.allocated_bytes);
}

TEST(Workspace, CapsTraversalAllocatesNothingWhenWarm) {
  WorkspaceArena arena;
  const std::size_t n = 128;
  Matrix a = random_matrix(n, n, 5), b = random_matrix(n, n, 6);
  Matrix c(n, n);
  capsalg::CapsOptions opts;
  opts.base_cutoff = 16;
  opts.bfs_cutoff_depth = 2;
  opts.arena = &arena;
  capsalg::multiply(a.view(), b.view(), c.view(), opts);  // warm-up
  const ArenaStats cold = arena.stats();
  capsalg::multiply(a.view(), b.view(), c.view(), opts);
  const ArenaStats warm = arena.stats();
  EXPECT_EQ(warm.misses, cold.misses)
      << "CAPS traversal allocated on the warm rerun";
  EXPECT_EQ(warm.allocated_bytes, cold.allocated_bytes);
}

TEST(SmallGemm, MatchesReferenceAndCountsExactly) {
  WorkspaceArena arena;
  const std::size_t n = 48;
  Matrix a = random_matrix(n, n, 9), b = random_matrix(n, n, 10);
  Matrix expect(n, n), got(n, n);
  gemm_reference(a.view(), b.view(), expect.view());
  trace::Recorder rec;
  {
    trace::RecordingScope scope(rec);
    small_gemm(a.view(), b.view(), got.view(), select_kernel(), arena);
  }
  EXPECT_TRUE(allclose(got.view(), expect.view(), 1e-12, 1e-12));
  // Same convention as strassen::base_gemm, so swapping it into the
  // base case is cost-model neutral.
  EXPECT_EQ(rec.total().flops, 2u * n * n * n);
  EXPECT_EQ(rec.total().dram_read_bytes, 2u * n * n * 8);
  EXPECT_EQ(rec.total().dram_write_bytes, n * n * 8);
}

TEST(SmallGemm, AccumulateVariant) {
  WorkspaceArena arena;
  Matrix a = random_matrix(16, 16, 1), b = random_matrix(16, 16, 2);
  Matrix c(16, 16, 0.0), expect(16, 16, 0.0);
  gemm_reference_accumulate(a.view(), b.view(), expect.view());
  gemm_reference_accumulate(a.view(), b.view(), expect.view());
  const MicroKernel& kern = select_kernel();
  small_gemm(a.view(), b.view(), c.view(), kern, arena, true);
  small_gemm(a.view(), b.view(), c.view(), kern, arena, true);
  EXPECT_TRUE(allclose(c.view(), expect.view(), 1e-12, 1e-12));
}

// Strassen with a packed base kernel still matches the reference.
TEST(StrassenBaseKernel, PackedBaseCaseMatchesReference) {
  const std::size_t n = 160;
  Matrix a = random_matrix(n, n, 21), b = random_matrix(n, n, 22);
  Matrix expect(n, n), got(n, n);
  gemm_reference(a.view(), b.view(), expect.view());
  strassen::StrassenOptions opts;
  opts.base_cutoff = 32;
  opts.base_kernel = select_kernel().id;
  strassen::multiply(a.view(), b.view(), got.view(), opts);
  EXPECT_TRUE(allclose(got.view(), expect.view(), 1e-9, 1e-9));
}

TEST(CapsBaseKernel, PackedBaseCaseMatchesReference) {
  const std::size_t n = 128;
  Matrix a = random_matrix(n, n, 23), b = random_matrix(n, n, 24);
  Matrix expect(n, n), got(n, n);
  gemm_reference(a.view(), b.view(), expect.view());
  capsalg::CapsOptions opts;
  opts.base_cutoff = 16;
  opts.bfs_cutoff_depth = 2;
  opts.base_kernel = select_kernel().id;
  capsalg::multiply(a.view(), b.view(), got.view(), opts);
  EXPECT_TRUE(allclose(got.view(), expect.view(), 1e-9, 1e-9));
}

}  // namespace
}  // namespace capow::blas
