// Cross-module property tests: invariants that must hold over swept
// parameter grids rather than single hand-picked points.
#include <cmath>

#include <gtest/gtest.h>

#include "capow/blas/blocked_gemm.hpp"
#include "capow/blas/cost_model.hpp"
#include "capow/capsalg/cost_model.hpp"
#include "capow/core/ep_model.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"
#include "capow/machine/dvfs.hpp"
#include "capow/sim/executor.hpp"
#include "capow/strassen/cost_model.hpp"
#include "capow/strassen/strassen.hpp"

namespace capow {
namespace {

const machine::MachineSpec kHaswell = machine::haswell_e3_1225();

// ---- Simulator invariants over (algorithm profile, n, threads) grids.

struct SimCase {
  std::size_t n;
  unsigned threads;
};

class SimulatorInvariants : public ::testing::TestWithParam<SimCase> {
 protected:
  static std::vector<sim::WorkProfile> profiles(std::size_t n,
                                                unsigned threads) {
    return {blas::blocked_gemm_profile(n, kHaswell, threads),
            strassen::strassen_profile(n, kHaswell, threads),
            capsalg::caps_profile(n, kHaswell, threads)};
  }
};

TEST_P(SimulatorInvariants, EnergyEqualsIntegralOfPower) {
  const auto [n, threads] = GetParam();
  for (const auto& wp : profiles(n, threads)) {
    const auto run = sim::simulate(kHaswell, wp, threads);
    for (std::size_t pl = 0; pl < machine::kPowerPlaneCount; ++pl) {
      double sum = 0.0;
      for (const auto& ph : run.phases) {
        sum += ph.power_w[pl] * ph.seconds;
      }
      EXPECT_NEAR(run.energy_j[pl], sum, 1e-9 * (1.0 + sum)) << wp.name;
    }
  }
}

TEST_P(SimulatorInvariants, PlaneHierarchyHolds) {
  const auto [n, threads] = GetParam();
  for (const auto& wp : profiles(n, threads)) {
    const auto run = sim::simulate(kHaswell, wp, threads);
    for (const auto& ph : run.phases) {
      const auto pkg = static_cast<int>(machine::PowerPlane::kPackage);
      const auto pp0 = static_cast<int>(machine::PowerPlane::kPP0);
      EXPECT_GE(ph.power_w[pkg],
                ph.power_w[pp0] + kHaswell.power.uncore_static_w - 1e-9)
          << wp.name << "/" << ph.label;
      EXPECT_GE(ph.power_w[pp0], kHaswell.power.pp0_static_w - 1e-9);
      EXPECT_LE(ph.utilization, 1.0 + 1e-12);
      EXPECT_GE(ph.utilization, 0.0);
    }
  }
}

TEST_P(SimulatorInvariants, MoreThreadsNeverSlower) {
  const auto [n, threads] = GetParam();
  if (threads >= 4) return;
  // Weak monotonicity: adding workers must not increase modeled time.
  const auto at = [&](unsigned t) {
    double total = 0.0;
    for (const auto& wp : profiles(n, t)) {
      total += sim::simulate(kHaswell, wp, t).seconds;
    }
    return total;
  };
  EXPECT_LE(at(threads + 1), at(threads) * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimulatorInvariants,
    ::testing::Values(SimCase{512, 1}, SimCase{512, 2}, SimCase{512, 4},
                      SimCase{1024, 1}, SimCase{1024, 3},
                      SimCase{2048, 2}, SimCase{2048, 4},
                      SimCase{4096, 1}, SimCase{4096, 4},
                      SimCase{8192, 4}));

// ---- EP model algebra over random inputs.

TEST(EpAlgebra, ScalingOfBaseIsAlwaysOne) {
  linalg::Xoshiro256 rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::pair<unsigned, double>> samples;
    for (unsigned p = 1; p <= 8; ++p) {
      samples.emplace_back(p, rng.uniform(0.1, 100.0));
    }
    const auto series = core::scaling_series(samples);
    EXPECT_DOUBLE_EQ(series.front().s, 1.0);
    // S is EP normalized: S_p * EP_1 == EP_p.
    for (const auto& pt : series) {
      EXPECT_NEAR(pt.s * series.front().ep, pt.ep,
                  1e-12 * (1.0 + pt.ep));
    }
  }
}

TEST(EpAlgebra, Eq2DominatedByCriticalUnit) {
  // Adding a parallel unit that is neither the power nor the time
  // maximum never changes EP_t.
  linalg::Xoshiro256 rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    core::MixedMeasurement m;
    m.sequential = core::UnitMeasurement{{rng.uniform(1.0, 10.0)},
                                         rng.uniform(0.1, 2.0)};
    m.parallel_units.push_back(
        core::UnitMeasurement{{50.0}, 10.0});  // dominates both axes
    const double base = core::energy_performance_total(m);
    m.parallel_units.push_back(
        core::UnitMeasurement{{rng.uniform(0.0, 49.0)},
                              rng.uniform(0.01, 9.9)});
    EXPECT_DOUBLE_EQ(core::energy_performance_total(m), base);
  }
}

TEST(EpAlgebra, EpScalesLinearlyInPower) {
  linalg::Xoshiro256 rng(29);
  for (int trial = 0; trial < 100; ++trial) {
    const double w = rng.uniform(1.0, 100.0);
    const double t = rng.uniform(0.01, 10.0);
    const double k = rng.uniform(0.1, 5.0);
    EXPECT_NEAR(core::energy_performance(k * w, t),
                k * core::energy_performance(w, t), 1e-9);
  }
}

// ---- Algorithm algebra: distributivity through the fast multipliers.

TEST(AlgorithmAlgebra, StrassenDistributesOverAddition) {
  // (A + B) * C == A*C + B*C, computed entirely via Strassen.
  const std::size_t n = 96;
  const auto a = linalg::random_square(n, 1);
  const auto b = linalg::random_square(n, 2);
  const auto c = linalg::random_square(n, 3);
  strassen::StrassenOptions opts;
  opts.base_cutoff = 16;

  linalg::Matrix sum(n, n);
  linalg::add(a.view(), b.view(), sum.view());
  linalg::Matrix lhs(n, n);
  strassen::multiply(sum.view(), c.view(), lhs.view(), opts);

  linalg::Matrix ac(n, n), bc(n, n), rhs(n, n);
  strassen::multiply(a.view(), c.view(), ac.view(), opts);
  strassen::multiply(b.view(), c.view(), bc.view(), opts);
  linalg::add(ac.view(), bc.view(), rhs.view());

  EXPECT_TRUE(linalg::allclose(lhs.view(), rhs.view(), 1e-9, 1e-9));
}

TEST(AlgorithmAlgebra, IdentityIsNeutralForAllCutoffs) {
  const std::size_t n = 64;
  const auto a = linalg::random_square(n, 5);
  const auto id = linalg::Matrix::identity(n);
  for (std::size_t cutoff : {8u, 16u, 32u}) {
    strassen::StrassenOptions opts;
    opts.base_cutoff = cutoff;
    linalg::Matrix out(n, n);
    strassen::multiply(a.view(), id.view(), out.view(), opts);
    EXPECT_TRUE(linalg::allclose(out.view(), a.view(), 1e-10, 1e-10))
        << cutoff;
  }
}

// ---- Cost-model conservation across option grids.

TEST(CostConservation, StrassenFlopsDecreaseWithDepth) {
  // More recursion levels always trade multiplications for additions:
  // total flops strictly decrease with smaller cutoffs at large n.
  strassen::StrassenCostOptions opts;
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t cutoff : {1024u, 512u, 256u, 128u, 64u}) {
    opts.base_cutoff = cutoff;
    const double flops = strassen::strassen_total_flops(8192, opts);
    EXPECT_LT(flops, prev) << cutoff;
    prev = flops;
  }
}

TEST(CostConservation, CapsTrafficMonotoneInProblemSize) {
  capsalg::CapsCostOptions opts;
  double prev = 0.0;
  for (std::size_t n : {256u, 512u, 1024u, 2048u, 4096u}) {
    const double t = capsalg::caps_total_traffic_bytes(n, opts);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

// ---- DVFS continuity: EP under a frequency sweep is smooth and the
// time/power trade is monotone.

TEST(DvfsSweep, MonotoneTradeAcrossPStates) {
  const auto wp = blas::blocked_gemm_profile(2048, kHaswell, 4);
  double prev_time = 0.0;
  double prev_power = 1e9;
  for (int i = 40; i <= 120; i += 10) {
    const double s = i / 100.0;
    const auto m = machine::scale_frequency(kHaswell, s);
    const auto run = sim::simulate(m, blas::blocked_gemm_profile(2048, m, 4), 4);
    EXPECT_LT(run.seconds, prev_time == 0.0 ? 1e18 : prev_time * 1.0001)
        << s;  // faster clock, shorter time (weakly)
    (void)prev_power;
    prev_time = run.seconds;
  }
}

}  // namespace
}  // namespace capow
