#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "capow/core/ep_model.hpp"
#include "capow/harness/experiment.hpp"
#include "capow/harness/telemetry_export.hpp"
#include "capow/profile/attribution.hpp"
#include "capow/profile/ep_phases.hpp"
#include "capow/telemetry/tracer.hpp"

namespace {

using namespace capow;
using profile::AttributionInput;
using profile::attribute;
using profile::Plane;
using profile::PowerSlice;
using profile::Profile;
using profile::ProfileNode;

constexpr auto kPkg = static_cast<std::size_t>(Plane::kPackage);
constexpr auto kPp0 = static_cast<std::size_t>(Plane::kPp0);

telemetry::TraceEvent span(std::uint64_t tid, const char* name,
                           std::uint64_t begin_ns, std::uint64_t end_ns) {
  telemetry::TraceEvent e;
  e.tid = tid;
  e.rec.name = name;
  e.rec.category = "test";
  e.rec.t_begin_ns = begin_ns;
  e.rec.t_end_ns = end_ns;
  e.rec.kind = telemetry::EventKind::kSpan;
  return e;
}

PowerSlice slice(std::uint64_t begin_ns, std::uint64_t end_ns,
                 double package_w, double pp0_w) {
  PowerSlice s;
  s.t_begin_ns = begin_ns;
  s.t_end_ns = end_ns;
  s.watts[kPkg] = package_w;
  s.watts[kPp0] = pp0_w;
  return s;
}

/// Conservation: Σ self + untracked == integrated timeline, per plane,
/// within an ulp-scaled tolerance.
void expect_conserved(const Profile& p) {
  for (std::size_t pl = 0; pl < profile::kPlaneCount; ++pl) {
    const double integrated = p.plane_total_j[pl];
    const double attributed = p.attributed_j(static_cast<Plane>(pl));
    const double tol = 1e-12 * std::max(1.0, std::abs(integrated));
    EXPECT_NEAR(attributed, integrated, tol)
        << "plane " << profile::plane_name(static_cast<Plane>(pl));
  }
}

// ---------------------------------------------------------------------------
// attribute(): core math

TEST(Attribution, SingleSpanFullyCoveredGetsWholeIntegral) {
  AttributionInput in;
  in.events.push_back(span(0, "work", 0, 1'000'000));  // 1 ms
  in.slices.push_back(slice(0, 1'000'000, 20.0, 12.0));
  const Profile p = attribute(in);

  ASSERT_EQ(p.root.children.size(), 1u);
  const ProfileNode& w = p.root.children[0];
  EXPECT_EQ(w.name, "work");
  EXPECT_EQ(w.count, 1u);
  EXPECT_EQ(w.self_ns, 1'000'000u);
  EXPECT_EQ(w.total_ns, 1'000'000u);
  // 20 W * 1 ms = 20 mJ package, 12 mJ pp0.
  EXPECT_NEAR(w.self_j[kPkg], 0.020, 1e-15);
  EXPECT_NEAR(w.self_j[kPp0], 0.012, 1e-15);
  EXPECT_DOUBLE_EQ(p.untracked_j[kPkg], 0.0);
  EXPECT_EQ(p.untracked_ns, 0u);
  expect_conserved(p);
}

TEST(Attribution, NestedSpansSplitSelfAndTotal) {
  AttributionInput in;
  in.events.push_back(span(0, "parent", 0, 1000));
  in.events.push_back(span(0, "child", 250, 750));
  in.slices.push_back(slice(0, 1000, 10.0, 5.0));
  const Profile p = attribute(in);

  const ProfileNode* parent = p.root.child("parent");
  ASSERT_NE(parent, nullptr);
  const ProfileNode* child = parent->child("child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(parent->self_ns, 500u);
  EXPECT_EQ(parent->total_ns, 1000u);
  EXPECT_EQ(child->self_ns, 500u);
  // 10 W over 1 us total = 1e-5 J; half each.
  EXPECT_NEAR(child->self_j[kPkg], 5e-6, 1e-18);
  EXPECT_NEAR(parent->self_j[kPkg], 5e-6, 1e-18);
  EXPECT_NEAR(parent->total_j[kPkg], 1e-5, 1e-18);
  expect_conserved(p);
}

TEST(Attribution, OverlappingSpansAcrossThreadsSplitEqually) {
  // Two threads fully overlapped for [0, 1000), one alone for
  // [1000, 2000). Package power flat at 30 W.
  AttributionInput in;
  in.events.push_back(span(0, "a", 0, 2000));
  in.events.push_back(span(1, "b", 0, 1000));
  in.slices.push_back(slice(0, 2000, 30.0, 0.0));
  const Profile p = attribute(in);

  const ProfileNode* a = p.root.child("a");
  const ProfileNode* b = p.root.child("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Total integral: 30 W * 2 us = 6e-5 J. During the overlap each
  // thread gets half of 30 W * 1 us = 1.5e-5; thread 0 alone gets the
  // full 3e-5 of the second microsecond.
  EXPECT_NEAR(b->self_j[kPkg], 1.5e-5, 1e-18);
  EXPECT_NEAR(a->self_j[kPkg], 4.5e-5, 1e-18);
  // ns are thread-time, not split.
  EXPECT_EQ(a->self_ns, 2000u);
  EXPECT_EQ(b->self_ns, 1000u);
  expect_conserved(p);
}

TEST(Attribution, ThreeWaySplitIsExactThirds) {
  AttributionInput in;
  for (std::uint64_t t = 0; t < 3; ++t) {
    in.events.push_back(span(t, "w", 0, 900));
  }
  in.slices.push_back(slice(0, 900, 21.0, 0.0));
  const Profile p = attribute(in);
  const ProfileNode* w = p.root.child("w");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->count, 3u);
  // All three instances share one node; 21 W * 0.9 us, split 3 ways,
  // re-summed = the whole thing.
  EXPECT_NEAR(w->self_j[kPkg], 21.0 * 900e-9, 1e-15);
  expect_conserved(p);
}

TEST(Attribution, UntrackedBucketCollectsUnspannedTime) {
  AttributionInput in;
  in.events.push_back(span(0, "work", 400, 600));
  in.slices.push_back(slice(0, 1000, 10.0, 4.0));
  const Profile p = attribute(in);

  // Span covers 200 of 1000 ns: 2e-6 J to the span, 8e-6 untracked.
  EXPECT_NEAR(p.root.child("work")->self_j[kPkg], 10.0 * 200e-9, 1e-18);
  EXPECT_NEAR(p.untracked_j[kPkg], 10.0 * 800e-9, 1e-18);
  EXPECT_NEAR(p.untracked_j[kPp0], 4.0 * 800e-9, 1e-18);
  EXPECT_EQ(p.untracked_ns, 800u);
  expect_conserved(p);
}

TEST(Attribution, SpanStraddlingFirstAndLastSampleAccruesNoUncoveredJoules) {
  // Power timeline covers [1000, 2000) only; the span runs [0, 3000).
  AttributionInput in;
  in.events.push_back(span(0, "long", 0, 3000));
  in.slices.push_back(slice(1000, 2000, 50.0, 25.0));
  const Profile p = attribute(in);

  const ProfileNode* l = p.root.child("long");
  ASSERT_NE(l, nullptr);
  // Full duration in ns...
  EXPECT_EQ(l->self_ns, 3000u);
  // ...but only the covered microsecond in joules.
  EXPECT_NEAR(l->self_j[kPkg], 50.0 * 1000e-9, 1e-18);
  EXPECT_NEAR(l->self_j[kPp0], 25.0 * 1000e-9, 1e-18);
  EXPECT_DOUBLE_EQ(p.untracked_j[kPkg], 0.0);
  expect_conserved(p);
}

TEST(Attribution, ZeroSampleRunYieldsNsOnlyProfile) {
  AttributionInput in;
  in.events.push_back(span(0, "work", 0, 5000));
  const Profile p = attribute(in);

  EXPECT_EQ(p.root.child("work")->self_ns, 5000u);
  EXPECT_DOUBLE_EQ(p.root.child("work")->self_j[kPkg], 0.0);
  EXPECT_DOUBLE_EQ(p.plane_total_j[kPkg], 0.0);
  EXPECT_EQ(p.slice_stats.count, 0u);
  expect_conserved(p);
}

TEST(Attribution, ZeroEventsStillIntegratesTimelineIntoUntracked) {
  AttributionInput in;
  in.slices.push_back(slice(0, 1'000'000, 15.0, 7.0));
  const Profile p = attribute(in);
  EXPECT_TRUE(p.root.children.empty());
  EXPECT_NEAR(p.untracked_j[kPkg], 0.015, 1e-15);
  EXPECT_NEAR(p.plane_total_j[kPp0], 0.007, 1e-15);
  expect_conserved(p);
}

TEST(Attribution, InstantsAndCountersAreIgnored) {
  AttributionInput in;
  auto instant = span(0, "mark", 500, 500);
  instant.rec.kind = telemetry::EventKind::kInstant;
  auto counter = span(0, "gauge", 600, 600);
  counter.rec.kind = telemetry::EventKind::kCounter;
  in.events.push_back(instant);
  in.events.push_back(counter);
  in.events.push_back(span(0, "work", 0, 1000));
  in.slices.push_back(slice(0, 1000, 10.0, 1.0));
  const Profile p = attribute(in);
  ASSERT_EQ(p.root.children.size(), 1u);
  EXPECT_EQ(p.root.children[0].name, "work");
  expect_conserved(p);
}

TEST(Attribution, RepeatedSpanNamesAggregate) {
  AttributionInput in;
  in.events.push_back(span(0, "iter", 0, 100));
  in.events.push_back(span(0, "iter", 200, 300));
  in.events.push_back(span(0, "iter", 400, 500));
  in.slices.push_back(slice(0, 500, 10.0, 0.0));
  const Profile p = attribute(in);
  const ProfileNode* iter = p.root.child("iter");
  ASSERT_NE(iter, nullptr);
  EXPECT_EQ(iter->count, 3u);
  EXPECT_EQ(iter->total_ns, 300u);
  EXPECT_NEAR(iter->self_j[kPkg], 10.0 * 300e-9, 1e-18);
  expect_conserved(p);
}

TEST(Attribution, MalformedChildOverlapIsClampedIntoParent) {
  // Child claims to outlive its parent; attribution clamps it.
  AttributionInput in;
  in.events.push_back(span(0, "parent", 0, 1000));
  in.events.push_back(span(0, "child", 500, 2000));
  in.slices.push_back(slice(0, 2000, 10.0, 0.0));
  const Profile p = attribute(in);
  const ProfileNode* parent = p.root.child("parent");
  ASSERT_NE(parent, nullptr);
  const ProfileNode* child = parent->child("child");
  ASSERT_NE(child, nullptr);
  // Child energy stops at the parent's end; [1000, 2000) is untracked.
  EXPECT_NEAR(child->self_j[kPkg], 10.0 * 500e-9, 1e-18);
  EXPECT_NEAR(p.untracked_j[kPkg], 10.0 * 1000e-9, 1e-18);
  expect_conserved(p);
}

TEST(Attribution, VaryingPowerIntegratesPerSlice) {
  AttributionInput in;
  in.events.push_back(span(0, "work", 0, 3000));
  in.slices.push_back(slice(0, 1000, 10.0, 5.0));
  in.slices.push_back(slice(1000, 2000, 20.0, 10.0));
  in.slices.push_back(slice(2000, 3000, 30.0, 15.0));
  const Profile p = attribute(in);
  EXPECT_NEAR(p.root.child("work")->self_j[kPkg], (10 + 20 + 30) * 1000e-9,
              1e-15);
  EXPECT_NEAR(p.peak_w[kPkg], 30.0, 0.0);
  EXPECT_EQ(p.slice_stats.count, 3u);
  EXPECT_NEAR(p.slice_stats.mean_seconds, 1e-6, 1e-18);
  expect_conserved(p);
}

TEST(Attribution, ConservationHoldsUnderRandomizedLoad) {
  // Fuzz: random spans on random threads, random power, seeded.
  std::mt19937 rng(20260805);
  std::uniform_int_distribution<std::uint64_t> tid_d(0, 5);
  std::uniform_int_distribution<std::uint64_t> t_d(0, 1'000'000);
  std::uniform_real_distribution<double> w_d(1.0, 80.0);
  for (int round = 0; round < 5; ++round) {
    AttributionInput in;
    for (int i = 0; i < 400; ++i) {
      const std::uint64_t b = t_d(rng);
      const std::uint64_t e = b + 1 + t_d(rng) % 50'000;
      const char* name = (i % 3 == 0) ? "alpha" : (i % 3 == 1) ? "beta"
                                                               : "gamma";
      in.events.push_back(span(tid_d(rng), name, b, e));
    }
    std::uint64_t t = 0;
    while (t < 1'100'000) {
      const std::uint64_t step = 1000 + t_d(rng) % 20'000;
      in.slices.push_back(slice(t, t + step, w_d(rng), w_d(rng)));
      t += step;
    }
    const Profile p = attribute(in);
    expect_conserved(p);
    EXPECT_GT(p.plane_total_j[kPkg], 0.0);
  }
}

// ---------------------------------------------------------------------------
// slices_from_samples

TEST(SlicesFromSamples, BuildsContiguousSlicesWithBaseOffset) {
  std::vector<profile::TimelinePoint> pts = {
      {0.001, 20.0, 10.0}, {0.002, 30.0, 15.0}};
  const auto slices = profile::slices_from_samples(pts, 500);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].t_begin_ns, 500u);
  EXPECT_EQ(slices[0].t_end_ns, 1'000'500u);
  EXPECT_EQ(slices[1].t_begin_ns, 1'000'500u);
  EXPECT_EQ(slices[1].t_end_ns, 2'000'500u);
  EXPECT_DOUBLE_EQ(slices[0].watts[kPkg], 20.0);
  EXPECT_DOUBLE_EQ(slices[1].watts[kPp0], 15.0);
}

TEST(SlicesFromSamples, SkipsNonIncreasingTimestamps) {
  std::vector<profile::TimelinePoint> pts = {
      {0.001, 20.0, 10.0}, {0.001, 99.0, 99.0}, {0.002, 30.0, 15.0}};
  const auto slices = profile::slices_from_samples(pts);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_DOUBLE_EQ(slices[1].watts[kPkg], 30.0);
}

// ---------------------------------------------------------------------------
// write_folded / write_text

TEST(FoldedOutput, EmitsStacksWithMillijouleWeights) {
  AttributionInput in;
  in.events.push_back(span(0, "parent", 0, 2'000'000));
  in.events.push_back(span(0, "child", 0, 1'000'000));
  in.slices.push_back(slice(0, 2'000'000, 10.0, 0.0));
  const Profile p = attribute(in);

  std::ostringstream os;
  profile::write_folded(p, os, profile::FoldedWeight::kMillijoules);
  // 10 W over 2 ms = 20 mJ, split 10/10 between parent-self and child.
  EXPECT_EQ(os.str(), "parent 10\nparent;child 10\n");
}

TEST(FoldedOutput, NanosecondWeightsAndPrefix) {
  AttributionInput in;
  in.events.push_back(span(0, "work", 0, 1500));
  const Profile p = attribute(in);

  std::ostringstream os;
  profile::write_folded(p, os, profile::FoldedWeight::kNanoseconds,
                        Plane::kPackage, "run1");
  EXPECT_EQ(os.str(), "run1;work 1500\n");
}

TEST(FoldedOutput, UntrackedEnergyAppearsAsTopLevelFrame) {
  AttributionInput in;
  in.events.push_back(span(0, "work", 0, 500'000));
  in.slices.push_back(slice(0, 1'000'000, 10.0, 0.0));
  const Profile p = attribute(in);

  std::ostringstream os;
  profile::write_folded(p, os, profile::FoldedWeight::kMillijoules);
  const std::string out = os.str();
  EXPECT_NE(out.find("work 5\n"), std::string::npos);
  EXPECT_NE(out.find("<untracked> 5\n"), std::string::npos);
}

TEST(FoldedOutput, ZeroWeightFramesAreSkipped) {
  AttributionInput in;
  in.events.push_back(span(0, "work", 0, 1000));
  const Profile p = attribute(in);  // no power -> zero mJ everywhere
  std::ostringstream os;
  profile::write_folded(p, os, profile::FoldedWeight::kMillijoules);
  EXPECT_TRUE(os.str().empty());
}

TEST(TextOutput, ContainsLedgerSamplingAndSpanRows) {
  AttributionInput in;
  in.events.push_back(span(0, "work", 400, 600));
  in.slices.push_back(slice(0, 1000, 10.0, 4.0));
  const Profile p = attribute(in);

  std::ostringstream os;
  profile::write_text(p, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("plane"), std::string::npos);
  EXPECT_NE(out.find("package"), std::string::npos);
  EXPECT_NE(out.find("pp0"), std::string::npos);
  EXPECT_NE(out.find("sampling:"), std::string::npos);
  EXPECT_NE(out.find("work"), std::string::npos);
  EXPECT_NE(out.find("<untracked>"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ep_phases

TEST(EpPhases, PhaseEnergiesComputeEqOneFromSelfTimeAndEnergy) {
  AttributionInput in;
  in.events.push_back(span(0, "compute", 0, 1'000'000));
  in.events.push_back(span(0, "comm", 1'000'000, 3'000'000));
  in.slices.push_back(slice(0, 3'000'000, 12.0, 6.0));
  const Profile p = attribute(in);

  const auto phases = profile::phase_energies(p, Plane::kPackage);
  ASSERT_EQ(phases.size(), 2u);
  // Sorted by name: comm, compute.
  EXPECT_EQ(phases[0].phase, "comm");
  EXPECT_EQ(phases[1].phase, "compute");
  EXPECT_NEAR(phases[1].seconds, 1e-3, 1e-12);
  EXPECT_NEAR(phases[1].watts, 12.0, 1e-9);
  EXPECT_NEAR(phases[1].ep, 12.0 / 1e-3, 1e-6);
  EXPECT_NEAR(phases[0].ep, 12.0 / 2e-3, 1e-6);
}

TEST(EpPhases, ScalingFlagsSuperlinearPhase) {
  // Hand-build a 1-thread and 4-thread profile of the same two phases.
  // "good" halves EP gain with p (sublinear EP growth ~ p: ideal);
  // "hot" speeds up 4x AND draws more power: superlinear.
  auto make = [](double hot_seconds, double hot_w, double good_seconds,
                 double good_w) {
    AttributionInput in;
    const auto hot_ns = static_cast<std::uint64_t>(hot_seconds * 1e9);
    const auto good_ns = static_cast<std::uint64_t>(good_seconds * 1e9);
    in.events.push_back(span(0, "hot", 0, hot_ns));
    in.events.push_back(span(0, "good", hot_ns, hot_ns + good_ns));
    in.slices.push_back(slice(0, hot_ns, hot_w, 0.0));
    in.slices.push_back(slice(hot_ns, hot_ns + good_ns, good_w, 0.0));
    return attribute(in);
  };
  const Profile p1 = make(0.004, 20.0, 0.002, 20.0);
  // hot: 4x faster, 2x power -> EP_p/EP_1 = (2*4) = 8 > 4 superlinear.
  // good: 4x faster at equal power -> S = 4 = p, ideal.
  const Profile p4 = make(0.001, 40.0, 0.0005, 20.0);

  std::vector<std::pair<unsigned, const Profile*>> sweep = {{1u, &p1},
                                                            {4u, &p4}};
  const auto scaling = profile::phase_ep_scaling(sweep, Plane::kPackage);
  ASSERT_EQ(scaling.size(), 2u);
  EXPECT_EQ(scaling[0].phase, "good");
  EXPECT_FALSE(scaling[0].superlinear());
  EXPECT_EQ(scaling[1].phase, "hot");
  EXPECT_TRUE(scaling[1].superlinear());
  ASSERT_EQ(scaling[1].series.size(), 2u);
  EXPECT_NEAR(scaling[1].series[1].s, 8.0, 1e-6);
}

TEST(EpPhases, PhaseWithoutBaseProfileIsDropped) {
  AttributionInput in;
  in.events.push_back(span(0, "only-at-4", 0, 1000));
  in.slices.push_back(slice(0, 1000, 10.0, 0.0));
  const Profile p4 = attribute(in);
  const Profile p1 = attribute(AttributionInput{});  // empty base

  std::vector<std::pair<unsigned, const Profile*>> sweep = {{1u, &p1},
                                                            {4u, &p4}};
  EXPECT_TRUE(profile::phase_ep_scaling(sweep, Plane::kPackage).empty());
}

// ---------------------------------------------------------------------------
// Harness integration: the simulated experiment matrix profiles
// deterministically and conserves energy per configuration.

TEST(HarnessProfile, RunAttributionProfileConservesEnergy) {
  harness::ExperimentConfig config;
  for (auto algorithm : harness::kAllAlgorithms) {
    const auto p = harness::run_attribution_profile(config, algorithm, 256, 2);
    EXPECT_GT(p.plane_total_j[kPkg], 0.0);
    EXPECT_FALSE(p.root.children.empty());
    for (std::size_t pl = 0; pl < profile::kPlaneCount; ++pl) {
      const double integrated = p.plane_total_j[pl];
      const double attributed = p.attributed_j(static_cast<Plane>(pl));
      EXPECT_NEAR(attributed, integrated,
                  1e-12 * std::max(1.0, std::abs(integrated)));
    }
  }
}

TEST(HarnessProfile, ExportsAreDeterministic) {
  const auto render = [] {
    harness::ExperimentConfig config;
    config.sizes = {256};
    config.thread_counts = {1, 2};
    harness::ExperimentRunner runner(config);
    runner.run();
    std::ostringstream prof, flame, ep;
    harness::export_profile(runner, prof);
    harness::export_flamegraph(runner, flame,
                               profile::FoldedWeight::kMillijoules);
    harness::export_ep_phases(runner, ep);
    return prof.str() + "\x1f" + flame.str() + "\x1f" + ep.str();
  };
  const std::string a = render();
  const std::string b = render();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("blocked-dgemm"), std::string::npos);
  EXPECT_NE(a.find("base-products"), std::string::npos);
  EXPECT_NE(a.find("\"superlinear\""), std::string::npos);
}

TEST(HarnessProfile, MetricsExportCarriesPhaseFamilies) {
  harness::ExperimentConfig config;
  config.sizes = {256};
  config.thread_counts = {1, 2};
  harness::ExperimentRunner runner(config);
  runner.run();
  std::ostringstream os;
  harness::export_metrics(runner, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("capow_phase_energy_joules{"), std::string::npos);
  EXPECT_NE(out.find("capow_phase_ep_scaling{"), std::string::npos);
  EXPECT_NE(out.find("capow_trace_dropped_events_total"), std::string::npos);
  EXPECT_NE(out.find("plane=\"pp0\""), std::string::npos);
}

}  // namespace
