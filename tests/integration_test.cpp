// Integration tests: real instrumented executions of all three
// algorithms flow through the measured-profile path into the simulator
// and the EP model — the full pipeline the paper's methodology implies,
// at sizes small enough to execute for real.
#include <gtest/gtest.h>

#include "capow/api/matmul.hpp"
#include "capow/blas/cost_model.hpp"
#include "capow/capsalg/caps.hpp"
#include "capow/capsalg/cost_model.hpp"
#include "capow/core/ep_model.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"
#include "capow/rapl/papi.hpp"
#include "capow/sim/executor.hpp"
#include "capow/strassen/cost_model.hpp"
#include "capow/strassen/strassen.hpp"
#include "capow/trace/counters.hpp"

namespace capow {
namespace {

using linalg::Matrix;
using linalg::random_matrix;

// Runs one real multiply under instrumentation and returns the recorder
// (heap-allocated: Recorder is large and intentionally non-movable).
template <typename Fn>
std::unique_ptr<trace::Recorder> instrumented(Fn&& fn) {
  auto rec = std::make_unique<trace::Recorder>();
  trace::RecordingScope scope(*rec);
  fn();
  return rec;
}

TEST(Integration, AllThreeAlgorithmsAgreeNumerically) {
  const std::size_t n = 192;
  Matrix a = random_matrix(n, n, 100), b = random_matrix(n, n, 101);
  Matrix c_blas(n, n), c_str(n, n), c_caps(n, n);
  matmul(a.view(), b.view(), c_blas.view());
  MatmulOptions sopts;
  sopts.algorithm = core::AlgorithmId::kStrassen;
  sopts.strassen.base_cutoff = 32;
  matmul(a.view(), b.view(), c_str.view(), sopts);
  MatmulOptions copts;
  copts.algorithm = core::AlgorithmId::kCaps;
  copts.caps.base_cutoff = 32;
  copts.caps.bfs_cutoff_depth = 1;
  matmul(a.view(), b.view(), c_caps.view(), copts);
  EXPECT_TRUE(linalg::allclose(c_str.view(), c_blas.view(), 1e-9, 1e-9));
  EXPECT_TRUE(linalg::allclose(c_caps.view(), c_blas.view(), 1e-9, 1e-9));
}

TEST(Integration, MeasuredProfileThroughSimulatorGivesFiniteRun) {
  const std::size_t n = 128;
  const auto m = machine::haswell_e3_1225();
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  Matrix c(n, n);
  tasking::ThreadPool pool(2);
  const auto rec = instrumented([&] {
    MatmulOptions opts;
    opts.algorithm = core::AlgorithmId::kStrassen;
    opts.strassen.base_cutoff = 32;
    opts.pool = &pool;
    matmul(a.view(), b.view(), c.view(), opts);
  });
  const auto profile = sim::profile_from_recorder(
      *rec, "measured-strassen", strassen::kBotsBaseKernelEfficiency);
  const auto run = sim::simulate(m, profile, 2);
  EXPECT_GT(run.seconds, 0.0);
  EXPECT_GT(run.avg_power_w(machine::PowerPlane::kPackage), 0.0);
  EXPECT_LT(run.avg_power_w(machine::PowerPlane::kPackage), 120.0);
}

TEST(Integration, MeasuredFlopsTrackAnalyticModelAcrossAlgorithms) {
  const std::size_t n = 160;  // padded by the Strassen family
  Matrix a = random_matrix(n, n, 5), b = random_matrix(n, n, 6);
  Matrix c(n, n);

  const auto blas_rec = instrumented(
      [&] { matmul(a.view(), b.view(), c.view()); });
  EXPECT_EQ(static_cast<double>(blas_rec->total().flops),
            blas::gemm_flops(n, n, n));

  MatmulOptions sopts;
  sopts.algorithm = core::AlgorithmId::kStrassen;
  sopts.strassen.base_cutoff = 32;
  const auto str_rec = instrumented([&] {
    matmul(a.view(), b.view(), c.view(), sopts);
  });
  strassen::StrassenCostOptions scost;
  scost.base_cutoff = 32;
  EXPECT_EQ(static_cast<double>(str_rec->total().flops),
            strassen::strassen_total_flops(n, scost));

  MatmulOptions copts;
  copts.algorithm = core::AlgorithmId::kCaps;
  copts.caps.base_cutoff = 32;
  copts.caps.bfs_cutoff_depth = 2;
  const auto caps_rec = instrumented([&] {
    matmul(a.view(), b.view(), c.view(), copts);
  });
  capsalg::CapsCostOptions ccost;
  ccost.base_cutoff = 32;
  ccost.bfs_cutoff_depth = 2;
  EXPECT_EQ(static_cast<double>(caps_rec->total().flops),
            capsalg::caps_total_flops(n, ccost));
}

TEST(Integration, StrassenMovesMoreAdditionTrafficThanBlas) {
  // The causal core of the paper: the Strassen family trades O(n^3)
  // multiplication work for O(n^2)-per-level streaming traffic. At equal
  // n the measured Strassen traffic per flop must exceed blocked
  // DGEMM's.
  const std::size_t n = 256;
  Matrix a = random_matrix(n, n, 9), b = random_matrix(n, n, 10);
  Matrix c(n, n);
  const auto blas_rec = instrumented(
      [&] { matmul(a.view(), b.view(), c.view()); });
  MatmulOptions sopts;
  sopts.algorithm = core::AlgorithmId::kStrassen;
  sopts.strassen.base_cutoff = 32;
  const auto str_rec = instrumented([&] {
    matmul(a.view(), b.view(), c.view(), sopts);
  });
  const double blas_intensity =
      static_cast<double>(blas_rec->total().flops) /
      static_cast<double>(blas_rec->total().dram_bytes());
  const double str_intensity =
      static_cast<double>(str_rec->total().flops) /
      static_cast<double>(str_rec->total().dram_bytes());
  EXPECT_LT(str_intensity, blas_intensity);
}

TEST(Integration, FullMeasurementPathEndToEnd) {
  // Instrumented run -> measured profile -> simulate into MSR -> read
  // through the PAPI-style event set -> Eq (1).
  const std::size_t n = 128;
  const auto m = machine::haswell_e3_1225();
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  Matrix c(n, n);
  const auto rec = instrumented(
      [&] { matmul(a.view(), b.view(), c.view()); });
  const auto profile = sim::profile_from_recorder(
      *rec, "measured-gemm", blas::kTunedGemmEfficiency);

  rapl::SimulatedMsrDevice msr;
  rapl::EventSet events(msr);
  events.add_event(rapl::kEventPackageEnergy);
  events.start();
  const auto run = sim::simulate(m, profile, 1, &msr);
  const auto nj = events.stop();

  const double watts = static_cast<double>(nj[0]) * 1e-9 / run.seconds;
  const double ep = core::energy_performance(watts, run.seconds);
  EXPECT_GT(ep, 0.0);
  EXPECT_NEAR(watts, run.avg_power_w(machine::PowerPlane::kPackage), 0.1);
}

TEST(Integration, MiniExperimentMatrixShapesHold) {
  // A reduced experiment matrix driven by *analytic* profiles must show
  // the same ordering the real executions show above: Strassen family
  // slower but lower-power at full thread count.
  const auto m = machine::haswell_e3_1225();
  for (std::size_t n : {1024u, 2048u}) {
    const auto blas_run = sim::simulate(m, blas::blocked_gemm_profile(n, m, 4), 4);
    const auto str_run =
        sim::simulate(m, strassen::strassen_profile(n, m, 4), 4);
    const auto caps_run =
        sim::simulate(m, capsalg::caps_profile(n, m, 4), 4);
    EXPECT_LT(blas_run.seconds, str_run.seconds);
    EXPECT_LT(blas_run.seconds, caps_run.seconds);
    EXPECT_GT(blas_run.avg_power_w(machine::PowerPlane::kPackage),
              str_run.avg_power_w(machine::PowerPlane::kPackage));
    EXPECT_GT(blas_run.avg_power_w(machine::PowerPlane::kPackage),
              caps_run.avg_power_w(machine::PowerPlane::kPackage));
  }
}

TEST(Integration, CapsBuffersExceedStrassenWorkspaceStory) {
  // CAPS's BFS levels trade memory for communication; verify the
  // measured peak buffer grows when more levels run BFS.
  const std::size_t n = 256;
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  Matrix c(n, n);
  MatmulOptions opts;
  opts.algorithm = core::AlgorithmId::kCaps;
  opts.caps.base_cutoff = 32;
  std::uint64_t prev = 0;
  for (std::size_t depth : {0u, 1u, 2u, 3u}) {
    opts.caps.bfs_cutoff_depth = depth;
    capsalg::CapsStats stats;
    opts.caps_stats = &stats;
    matmul(a.view(), b.view(), c.view(), opts);
    EXPECT_GE(stats.peak_buffer_bytes, prev) << "depth=" << depth;
    prev = stats.peak_buffer_bytes;
  }
}

}  // namespace
}  // namespace capow
