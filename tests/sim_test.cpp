// Tests for the roofline-with-contention execution model.
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "capow/machine/machine.hpp"
#include "capow/sim/cost_profile.hpp"
#include "capow/sim/executor.hpp"
#include "capow/tasking/parallel_for.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace capow::sim {
namespace {

using machine::MachineSpec;
using machine::PowerPlane;

MachineSpec haswell() { return machine::haswell_e3_1225(); }

WorkProfile compute_profile(double flops, unsigned parallelism = 4,
                            double efficiency = 1.0) {
  WorkProfile wp;
  wp.name = "compute";
  wp.add(PhaseCost{.label = "c",
                   .flops = flops,
                   .parallelism = parallelism,
                   .efficiency = efficiency});
  return wp;
}

WorkProfile memory_profile(double bytes) {
  WorkProfile wp;
  wp.name = "memory";
  wp.add(PhaseCost{.label = "m",
                   .flops = 1.0,  // negligible compute
                   .dram_bytes = bytes,
                   .parallelism = 4,
                   .efficiency = 1.0});
  return wp;
}

TEST(WorkProfile, Totals) {
  WorkProfile wp;
  wp.add(PhaseCost{.label = "a", .flops = 10, .dram_bytes = 5,
                   .sync_events = 1})
      .add(PhaseCost{.label = "b", .flops = 3, .dram_bytes = 2,
                     .sync_events = 2});
  EXPECT_DOUBLE_EQ(wp.total_flops(), 13.0);
  EXPECT_DOUBLE_EQ(wp.total_dram_bytes(), 7.0);
  EXPECT_EQ(wp.total_syncs(), 3u);
}

TEST(Simulate, ComputeBoundTimeMatchesHandCalc) {
  const MachineSpec m = haswell();
  // 51.2e9 flops on one core at efficiency 1 = exactly 1 second.
  const RunResult r = simulate(m, compute_profile(51.2e9, 1), 1);
  EXPECT_NEAR(r.seconds, 1.0, 1e-12);
  EXPECT_NEAR(r.phases[0].utilization, 1.0, 1e-12);
  EXPECT_EQ(r.phases[0].active_cores, 1u);
}

TEST(Simulate, ParallelismShrinksComputeTime) {
  const MachineSpec m = haswell();
  const RunResult r1 = simulate(m, compute_profile(204.8e9, 4), 1);
  const RunResult r4 = simulate(m, compute_profile(204.8e9, 4), 4);
  EXPECT_NEAR(r1.seconds / r4.seconds, 4.0, 1e-9);
}

TEST(Simulate, ThreadsCappedByPhaseParallelism) {
  const MachineSpec m = haswell();
  const RunResult r = simulate(m, compute_profile(51.2e9, 2), 4);
  EXPECT_EQ(r.phases[0].active_cores, 2u);
}

TEST(Simulate, MemoryBoundTimeMatchesBandwidth) {
  const MachineSpec m = haswell();
  const RunResult r = simulate(m, memory_profile(10.3e9), 4);
  EXPECT_NEAR(r.seconds, 1.0, 1e-6);
  EXPECT_LT(r.phases[0].utilization, 0.01);
}

TEST(Simulate, MemoryTimeDoesNotScaleWithThreads) {
  // Bandwidth is shared: adding workers cannot shrink a DRAM-bound phase.
  const MachineSpec m = haswell();
  const RunResult r1 = simulate(m, memory_profile(20.6e9), 1);
  const RunResult r4 = simulate(m, memory_profile(20.6e9), 4);
  EXPECT_NEAR(r1.seconds, r4.seconds, 1e-9);
}

TEST(Simulate, EnergyEqualsPowerTimesTime) {
  const MachineSpec m = haswell();
  const RunResult r = simulate(m, compute_profile(1e11, 4), 3);
  for (std::size_t p = 0; p < machine::kPowerPlaneCount; ++p) {
    double phase_sum = 0.0;
    for (const auto& ph : r.phases) phase_sum += ph.energy_j[p];
    EXPECT_NEAR(r.energy_j[p], phase_sum, 1e-9);
  }
  EXPECT_NEAR(r.energy(PowerPlane::kPackage),
              r.avg_power_w(PowerPlane::kPackage) * r.seconds, 1e-9);
}

TEST(Simulate, PackageDominatesPp0DominatesNothingNegative) {
  const MachineSpec m = haswell();
  const RunResult r = simulate(m, memory_profile(5e9), 2);
  EXPECT_GT(r.energy(PowerPlane::kPackage), r.energy(PowerPlane::kPP0));
  EXPECT_GE(r.energy(PowerPlane::kDram), 0.0);
}

TEST(Simulate, ComputeBoundPowerMatchesCalibration) {
  // Full-efficiency, fully-parallel compute: package power is
  // statics + idle + p * (busy + fma) + zero memory power.
  const MachineSpec m = haswell();
  const RunResult r = simulate(m, compute_profile(2.048e11, 4, 1.0), 4);
  const double expected_pp0 =
      m.power.pp0_static_w + 4.0 * (m.core.busy_power_w + m.core.fma_power_w);
  EXPECT_NEAR(r.avg_power_w(PowerPlane::kPP0), expected_pp0, 1e-6);
  EXPECT_NEAR(r.avg_power_w(PowerPlane::kPackage),
              expected_pp0 + m.power.uncore_static_w, 1e-6);
}

TEST(Simulate, IdleCoresDrawIdleFloor) {
  const MachineSpec m = haswell();
  const RunResult r1 = simulate(m, compute_profile(51.2e9, 1, 1.0), 1);
  const double expected_pp0 = m.power.pp0_static_w +
                              (m.core.busy_power_w + m.core.fma_power_w) +
                              3.0 * m.core.idle_power_w;
  EXPECT_NEAR(r1.avg_power_w(PowerPlane::kPP0), expected_pp0, 1e-6);
}

TEST(Simulate, LowerEfficiencyKernelDrawsLessPower) {
  const MachineSpec m = haswell();
  const RunResult hi = simulate(m, compute_profile(1e11, 4, 0.9), 4);
  const RunResult lo = simulate(m, compute_profile(1e11, 4, 0.1), 4);
  EXPECT_GT(hi.avg_power_w(PowerPlane::kPP0),
            lo.avg_power_w(PowerPlane::kPP0));
  // ... while the low-efficiency kernel takes longer and burns more total
  // core-plane energy.
  EXPECT_GT(lo.seconds, hi.seconds);
}

TEST(Simulate, OverheadsAddTime) {
  const MachineSpec m = haswell();
  WorkProfile wp;
  wp.add(PhaseCost{.label = "o",
                   .flops = 1.0,
                   .parallelism = 1,
                   .efficiency = 1.0,
                   .sync_events = 1000,
                   .spawn_events = 1000});
  const RunResult r = simulate(m, wp, 1);
  EXPECT_NEAR(r.seconds,
              1000.0 * m.sync_overhead_s + 1000.0 * m.task_spawn_overhead_s,
              1e-6);
}

TEST(Simulate, DepositsIntoMsr) {
  const MachineSpec m = haswell();
  rapl::SimulatedMsrDevice msr;
  const RunResult r = simulate(m, compute_profile(1e11), 4, &msr);
  EXPECT_NEAR(msr.total_joules(PowerPlane::kPackage),
              r.energy(PowerPlane::kPackage), 1e-6);
  EXPECT_NEAR(msr.total_joules(PowerPlane::kPP0),
              r.energy(PowerPlane::kPP0), 1e-6);
}

TEST(Simulate, ImbalanceStretchesComputeTime) {
  const MachineSpec m = haswell();
  WorkProfile wp;
  wp.add(PhaseCost{.label = "i",
                   .flops = 204.8e9,
                   .parallelism = 4,
                   .efficiency = 1.0,
                   .imbalance = 2.0});
  const RunResult r = simulate(m, wp, 4);
  EXPECT_NEAR(r.seconds, 2.0, 1e-9);
}

// Validation failures, parameterized.
using ProfileMutator = void (*)(PhaseCost&);
class SimulateValidationTest
    : public ::testing::TestWithParam<ProfileMutator> {};

TEST_P(SimulateValidationTest, RejectsBadPhase) {
  PhaseCost ph{.label = "bad", .flops = 1.0, .parallelism = 1,
               .efficiency = 1.0};
  GetParam()(ph);
  WorkProfile wp;
  wp.add(ph);
  EXPECT_THROW(simulate(haswell(), wp, 1), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulateValidationTest,
    ::testing::Values(+[](PhaseCost& p) { p.flops = -1.0; },
                      +[](PhaseCost& p) { p.dram_bytes = -1.0; },
                      +[](PhaseCost& p) { p.cache_bytes = -1.0; },
                      +[](PhaseCost& p) { p.efficiency = 0.0; },
                      +[](PhaseCost& p) { p.efficiency = 1.5; },
                      +[](PhaseCost& p) { p.imbalance = 0.9; },
                      +[](PhaseCost& p) { p.parallelism = 0; }));

TEST(Simulate, ZeroThreadsThrows) {
  EXPECT_THROW(simulate(haswell(), compute_profile(1.0), 0),
               std::invalid_argument);
}

TEST(SimulateIdle, DepositsStaticPowerOnly) {
  const MachineSpec m = haswell();
  rapl::SimulatedMsrDevice msr;
  simulate_idle(m, 60.0, msr);
  EXPECT_NEAR(msr.total_joules(PowerPlane::kPP0),
              m.power.pp0_static_w * 60.0, 1e-6);
  EXPECT_NEAR(msr.total_joules(PowerPlane::kPackage),
              (m.power.pp0_static_w + m.power.uncore_static_w) * 60.0,
              1e-6);
  EXPECT_THROW(simulate_idle(m, -1.0, msr), std::invalid_argument);
}

TEST(Sampling, SamplesIntegrateToRunEnergy) {
  const MachineSpec m = haswell();
  RunResult agg;
  const auto samples =
      simulate_with_sampling(m, compute_profile(2.048e10, 4), 2, 1e-3, &agg);
  ASSERT_FALSE(samples.empty());
  // Power samples during a single homogeneous phase are constant and
  // equal to the aggregate average (within MSR count resolution).
  EXPECT_NEAR(samples.front().package_w,
              agg.avg_power_w(PowerPlane::kPackage), 0.5);
  EXPECT_NEAR(samples.back().t_seconds, agg.seconds, 1e-9);
  EXPECT_THROW(simulate_with_sampling(m, compute_profile(1.0), 1, 0.0),
               std::invalid_argument);
}

TEST(Sampling, MultiPhasePowerSteps) {
  const MachineSpec m = haswell();
  WorkProfile wp;
  wp.add(PhaseCost{.label = "hot", .flops = 2.048e10, .parallelism = 4,
                   .efficiency = 1.0});
  wp.add(PhaseCost{.label = "cold", .flops = 1.0, .dram_bytes = 1.03e9,
                   .parallelism = 4, .efficiency = 1.0});
  RunResult agg;
  const auto samples = simulate_with_sampling(m, wp, 4, 1e-3, &agg);
  ASSERT_GE(samples.size(), 4u);
  // First phase draws far more power than the second.
  EXPECT_GT(samples.front().package_w, samples.back().package_w + 10.0);
}

TEST(ProfileFromRecorder, SequentialAndParallelSplit) {
  trace::Recorder rec;
  rec.add_flops(100);        // slot 0 (this thread)
  rec.add_dram_read(800);
  {
    tasking::ThreadPool pool(2);
    trace::RecordingScope scope(rec);
    tasking::parallel_for_each(pool, 0, 10, [&](std::size_t) {
      trace::count_flops(50);
      trace::count_dram_write(80);
    });
  }
  const WorkProfile wp = profile_from_recorder(rec, "measured", 0.5);
  // The helping scheduler may run some chunks on the main thread, so the
  // sequential/parallel split can vary — the totals cannot.
  ASSERT_GE(wp.phases.size(), 1u);
  ASSERT_LE(wp.phases.size(), 2u);
  EXPECT_EQ(wp.phases[0].label, "sequential");
  EXPECT_DOUBLE_EQ(wp.total_flops(), 600.0);
  EXPECT_DOUBLE_EQ(wp.total_dram_bytes(), 1600.0);
  for (const auto& ph : wp.phases) {
    EXPECT_GE(ph.imbalance, 1.0);
    EXPECT_DOUBLE_EQ(ph.efficiency, 0.5);
  }
}

TEST(ProfileFromRecorder, EmptyRecorderYieldsEmptyProfile) {
  trace::Recorder rec;
  const WorkProfile wp = profile_from_recorder(rec, "empty", 0.5);
  EXPECT_TRUE(wp.phases.empty());
}

TEST(ProfileFromRecorderPhases, OnePhaseCostPairPerRecordedPhase) {
  trace::Recorder rec;
  rec.add_flops(100);
  rec.add_dram_read(800);
  {
    trace::PhaseScope phase(rec, "adds");
    rec.add_flops(30);
    rec.add_dram_write(160);
  }
  {
    trace::PhaseScope phase(rec, "products");
    rec.add_flops(500);
  }
  const WorkProfile wp = profile_from_recorder_phases(rec, "staged", 0.25);
  ASSERT_EQ(wp.phases.size(), 3u);  // default + adds + products (seq only)
  EXPECT_EQ(wp.phases[0].label, "sequential");
  EXPECT_EQ(wp.phases[1].label, "adds/sequential");
  EXPECT_EQ(wp.phases[2].label, "products/sequential");
  EXPECT_DOUBLE_EQ(wp.phases[1].flops, 30.0);
  EXPECT_DOUBLE_EQ(wp.phases[1].dram_bytes, 160.0);
  EXPECT_DOUBLE_EQ(wp.total_flops(), 630.0);
  // Totals conserved vs the phase-blind variant.
  const WorkProfile flat = profile_from_recorder(rec, "flat", 0.25);
  EXPECT_DOUBLE_EQ(flat.total_flops(), wp.total_flops());
  EXPECT_DOUBLE_EQ(flat.total_dram_bytes(), wp.total_dram_bytes());
}

TEST(ProfileFromRecorderPhases, SimulatesPhasesIndependently) {
  // A compute-heavy phase and a memory-heavy phase must keep their
  // distinct roofline behaviour through the phase-aware path.
  trace::Recorder rec;
  {
    trace::PhaseScope phase(rec, "compute");
    rec.add_flops(51'200'000'000ull);  // 1 s at one Haswell core
  }
  {
    trace::PhaseScope phase(rec, "stream");
    rec.add_flops(1);
    rec.add_dram_read(10'300'000'000ull);  // 1 s at full bandwidth
  }
  const WorkProfile wp = profile_from_recorder_phases(rec, "mix", 1.0);
  const auto run = simulate(machine::haswell_e3_1225(), wp, 1);
  EXPECT_NEAR(run.seconds, 2.0, 0.01);
  // One phase near-full utilization, the other near zero.
  double max_u = 0.0, min_u = 1.0;
  for (const auto& ph : run.phases) {
    max_u = std::max(max_u, ph.utilization);
    min_u = std::min(min_u, ph.utilization);
  }
  EXPECT_GT(max_u, 0.99);
  EXPECT_LT(min_u, 0.01);
}

}  // namespace
}  // namespace capow::sim
