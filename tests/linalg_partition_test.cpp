// Tests for quadrant partitioning.
#include "capow/linalg/partition.hpp"

#include <gtest/gtest.h>

#include "capow/linalg/ops.hpp"

namespace capow::linalg {
namespace {

TEST(Partition, QuadrantAnchors) {
  Matrix m = Matrix::zeros(4);
  double v = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) m(i, j) = v++;
  }
  auto q = partition(m.view());
  EXPECT_EQ(q.q11(0, 0), m(0, 0));
  EXPECT_EQ(q.q12(0, 0), m(0, 2));
  EXPECT_EQ(q.q21(0, 0), m(2, 0));
  EXPECT_EQ(q.q22(1, 1), m(3, 3));
  EXPECT_EQ(q.q11.rows(), 2u);
  EXPECT_EQ(q.q11.ld(), 4u);
}

TEST(Partition, WritesThroughQuadrants) {
  Matrix m = Matrix::zeros(6);
  auto q = partition(m.view());
  q.q22.fill(4.0);
  EXPECT_EQ(m(3, 3), 4.0);
  EXPECT_EQ(m(5, 5), 4.0);
  EXPECT_EQ(m(2, 2), 0.0);
}

TEST(Partition, ConstOverload) {
  Matrix m = Matrix::identity(4);
  const Matrix& cm = m;
  auto q = partition(cm.view());
  EXPECT_EQ(q.q11(1, 1), 1.0);
  EXPECT_EQ(q.q22(0, 0), 1.0);
  EXPECT_EQ(q.q12(0, 0), 0.0);
}

TEST(Partition, OddDimensionThrows) {
  Matrix m = Matrix::zeros(5);
  EXPECT_THROW(partition(m.view()), std::invalid_argument);
}

TEST(Partition, ZeroDimensionThrows) {
  Matrix m;
  EXPECT_THROW(partition(m.view()), std::invalid_argument);
}

TEST(Partition, RectangularEvenOk) {
  Matrix m = Matrix::zeros(4, 6);
  auto q = partition(m.view());
  EXPECT_EQ(q.q11.rows(), 2u);
  EXPECT_EQ(q.q11.cols(), 3u);
}

TEST(Partition, SplittablePredicate) {
  Matrix even = Matrix::zeros(4);
  Matrix odd = Matrix::zeros(3);
  Matrix tiny = Matrix::zeros(1, 4);
  EXPECT_TRUE(splittable(even.view()));
  EXPECT_FALSE(splittable(odd.view()));
  EXPECT_FALSE(splittable(tiny.view()));
}

TEST(Partition, NestedPartitionReachesElements) {
  Matrix m = Matrix::zeros(8);
  m(6, 6) = 3.0;  // inside q22 of q22
  auto q = partition(m.view());
  auto qq = partition(q.q22);
  EXPECT_EQ(qq.q22(0, 0), 3.0);
}

}  // namespace
}  // namespace capow::linalg
