// Tests for the cost-instrumentation recorder.
#include "capow/trace/counters.hpp"

#include <gtest/gtest.h>

#include "capow/tasking/parallel_for.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace capow::trace {
namespace {

TEST(CostCounters, Accumulate) {
  CostCounters a{.flops = 10, .dram_read_bytes = 100};
  CostCounters b{.flops = 5, .dram_write_bytes = 7, .syncs = 2};
  a += b;
  EXPECT_EQ(a.flops, 15u);
  EXPECT_EQ(a.dram_read_bytes, 100u);
  EXPECT_EQ(a.dram_write_bytes, 7u);
  EXPECT_EQ(a.dram_bytes(), 107u);
  EXPECT_EQ(a.syncs, 2u);
}

TEST(Recorder, MainThreadRecordsIntoSlotZero) {
  Recorder rec;
  rec.add_flops(42);
  rec.add_dram_read(64);
  rec.add_dram_write(32);
  rec.add_cache_traffic(16);
  rec.add_message(8);
  rec.add_task_spawn(3);
  rec.add_sync();
  EXPECT_EQ(rec.slot(0).flops, 42u);
  EXPECT_EQ(rec.slot(0).dram_read_bytes, 64u);
  EXPECT_EQ(rec.slot(0).dram_write_bytes, 32u);
  EXPECT_EQ(rec.slot(0).cache_bytes, 16u);
  EXPECT_EQ(rec.slot(0).messages, 1u);
  EXPECT_EQ(rec.slot(0).message_bytes, 8u);
  EXPECT_EQ(rec.slot(0).tasks_spawned, 3u);
  EXPECT_EQ(rec.slot(0).syncs, 1u);
  EXPECT_TRUE(rec.parallel_slots().empty());
}

TEST(Recorder, ResetClears) {
  Recorder rec;
  rec.add_flops(1);
  rec.reset();
  EXPECT_EQ(rec.total(), CostCounters{});
}

TEST(Recorder, WorkersRecordIntoTheirSlots) {
  Recorder rec;
  tasking::ThreadPool pool(2);
  tasking::parallel_for_each(pool, 0, 1000, [&](std::size_t) {
    rec.add_flops(1);
  });
  EXPECT_EQ(rec.total().flops, 1000u);
  // All recorded flops live in parallel slots (workers executed the body;
  // the main thread may have helped via TaskGroup::wait, landing in slot
  // 0 — allow that split but require the sum).
  std::uint64_t par = 0;
  for (const auto& s : rec.parallel_slots()) par += s.flops;
  EXPECT_EQ(par + rec.slot(0).flops, 1000u);
  EXPECT_GE(rec.max_parallel_flops(), par > 0 ? 1u : 0u);
}

TEST(RecordingScope, FreeFunctionsNoopWithoutScope) {
  EXPECT_EQ(RecordingScope::current(), nullptr);
  count_flops(5);  // must not crash
  count_dram_read(1);
  count_sync();
}

TEST(RecordingScope, InstallAndRestore) {
  Recorder rec;
  {
    RecordingScope scope(rec);
    EXPECT_EQ(RecordingScope::current(), &rec);
    count_flops(7);
    count_dram_read(3);
    count_dram_write(4);
    count_cache_traffic(2);
    count_message(10);
    count_task_spawn(2);
    count_sync(3);
  }
  EXPECT_EQ(RecordingScope::current(), nullptr);
  EXPECT_EQ(rec.slot(0).flops, 7u);
  EXPECT_EQ(rec.slot(0).dram_bytes(), 7u);
  EXPECT_EQ(rec.slot(0).cache_bytes, 2u);
  EXPECT_EQ(rec.slot(0).messages, 1u);
  EXPECT_EQ(rec.slot(0).message_bytes, 10u);
  EXPECT_EQ(rec.slot(0).tasks_spawned, 2u);
  EXPECT_EQ(rec.slot(0).syncs, 3u);
}

TEST(RecordingScope, NestedScopesRestorePrevious) {
  Recorder outer, inner;
  RecordingScope s1(outer);
  {
    RecordingScope s2(inner);
    count_flops(1);
  }
  count_flops(2);
  EXPECT_EQ(inner.total().flops, 1u);
  EXPECT_EQ(outer.total().flops, 2u);
}

TEST(Recorder, MaxParallelFlopsIgnoresSequentialSlot) {
  Recorder rec;
  rec.add_flops(1000);  // slot 0
  EXPECT_EQ(rec.max_parallel_flops(), 0u);
}

TEST(Recorder, PhasesPartitionCounts) {
  Recorder rec;
  rec.add_flops(10);  // default phase
  {
    PhaseScope phase(rec, "assemble");
    rec.add_flops(3);
    rec.add_dram_read(100);
  }
  {
    PhaseScope phase(rec, "solve");
    rec.add_flops(7);
  }
  {
    PhaseScope phase(rec, "assemble");  // re-enter accumulates
    rec.add_flops(2);
  }
  ASSERT_EQ(rec.phase_count(), 3u);
  EXPECT_EQ(rec.phase_name(0), "");
  EXPECT_EQ(rec.phase_name(1), "assemble");
  EXPECT_EQ(rec.phase_name(2), "solve");
  EXPECT_EQ(rec.phase_total(0).flops, 10u);
  EXPECT_EQ(rec.phase_total(1).flops, 5u);
  EXPECT_EQ(rec.phase_total(1).dram_read_bytes, 100u);
  EXPECT_EQ(rec.phase_total(2).flops, 7u);
  // Aggregates still see everything.
  EXPECT_EQ(rec.total().flops, 22u);
  EXPECT_EQ(rec.slot(0).flops, 22u);
}

TEST(PhaseScope, NestedScopesRestoreParentPhase) {
  Recorder rec;
  {
    PhaseScope outer(rec, "outer");
    rec.add_flops(1);
    {
      PhaseScope inner(rec, "inner");
      rec.add_flops(10);
    }
    // Back in "outer", not the default phase.
    rec.add_flops(2);
  }
  rec.add_flops(100);  // default phase again
  ASSERT_EQ(rec.phase_count(), 3u);
  EXPECT_EQ(rec.phase_total(1).flops, 3u);    // outer: before + after inner
  EXPECT_EQ(rec.phase_total(2).flops, 10u);   // inner
  EXPECT_EQ(rec.phase_total(0).flops, 100u);  // default
}

TEST(PhaseScope, DeeplyNestedScopesUnwindInOrder) {
  Recorder rec;
  PhaseScope a(rec, "a");
  {
    PhaseScope b(rec, "b");
    {
      PhaseScope c(rec, "c");
      EXPECT_EQ(rec.active_phase_index(), 3u);
    }
    EXPECT_EQ(rec.active_phase_index(), 2u);
  }
  EXPECT_EQ(rec.active_phase_index(), 1u);
}

TEST(PhaseScope, OverflowScopesRouteToDefaultAndStayBounded) {
  Recorder rec;
  for (std::size_t i = 0; i < Recorder::kMaxPhases + 10; ++i) {
    std::string name = "scope";
    name += std::to_string(i);
    PhaseScope phase(rec, name);
    rec.add_flops(1);
  }
  // Registry stays bounded; announcements beyond the capacity landed in
  // the default phase, and every scope exit restored the default.
  EXPECT_EQ(rec.phase_count(), Recorder::kMaxPhases);
  EXPECT_EQ(rec.active_phase_index(), 0u);
  EXPECT_EQ(rec.phase_total(0).flops, 11u);
  EXPECT_EQ(rec.total().flops, Recorder::kMaxPhases + 10);
}

TEST(Recorder, RestorePhaseClampsOutOfRangeToDefault) {
  Recorder rec;
  rec.begin_phase("x");
  rec.restore_phase(Recorder::kMaxPhases + 3);
  EXPECT_EQ(rec.active_phase_index(), 0u);
}

TEST(Recorder, PhaseOverflowFallsBackToDefault) {
  Recorder rec;
  for (std::size_t i = 0; i < Recorder::kMaxPhases + 5; ++i) {
    // Built via append rather than operator+ to dodge GCC 12's
    // -Wrestrict false positive at -O3.
    std::string name = "p";
    name += std::to_string(i);
    rec.begin_phase(name);
    rec.add_flops(1);
  }
  rec.end_phase();
  EXPECT_EQ(rec.phase_count(), Recorder::kMaxPhases);
  EXPECT_EQ(rec.total().flops, Recorder::kMaxPhases + 5);
  // The registry holds the default phase plus kMaxPhases-1 named ones;
  // the remaining 6 announcements landed in the default phase.
  EXPECT_EQ(rec.phase_total(0).flops, 6u);
}

TEST(Recorder, ResetClearsPhases) {
  Recorder rec;
  rec.begin_phase("x");
  rec.add_flops(1);
  rec.reset();
  EXPECT_EQ(rec.phase_count(), 1u);
  EXPECT_EQ(rec.total(), CostCounters{});
}

TEST(Recorder, WorkersRecordIntoActivePhase) {
  Recorder rec;
  tasking::ThreadPool pool(2);
  {
    PhaseScope phase(rec, "hot");
    tasking::parallel_for_each(pool, 0, 100,
                               [&](std::size_t) { rec.add_flops(1); });
  }
  tasking::parallel_for_each(pool, 0, 50,
                             [&](std::size_t) { rec.add_flops(1); });
  EXPECT_EQ(rec.phase_total(1).flops, 100u);
  EXPECT_EQ(rec.phase_total(0).flops, 50u);
}

TEST(Recorder, TotalSumsAllSlots) {
  Recorder rec;
  tasking::ThreadPool pool(3);
  RecordingScope scope(rec);
  tasking::parallel_for_each(pool, 0, 300, [&](std::size_t) {
    count_flops(2);
    count_dram_read(8);
  });
  count_flops(5);
  EXPECT_EQ(rec.total().flops, 605u);
  EXPECT_EQ(rec.total().dram_read_bytes, 2400u);
}

}  // namespace
}  // namespace capow::trace
