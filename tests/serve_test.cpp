// Tests for capowd, the overload-safe matmul service (src/capow/serve):
// the joules token bucket and degradation ladder, the bounded two-tier
// queue, the memoized cost predictor, the seeded load generator, and
// the serve engine's determinism / deadline / fault-injection contracts.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "capow/api/matmul.hpp"
#include "capow/fault/fault.hpp"
#include "capow/linalg/matrix.hpp"
#include "capow/linalg/random.hpp"
#include "capow/serve/server.hpp"
#include "capow/tasking/thread_pool.hpp"
#include "capow/telemetry/export.hpp"

namespace capow::serve {
namespace {

// ---------------------------------------------------------------------------
// EnergyBudget: the joules token bucket

EnergyBudgetOptions bucket_opts() {
  EnergyBudgetOptions o;
  o.budget_w = 10.0;  // capacity defaults to 2 s of budget = 20 J
  return o;
}

TEST(EnergyBudget, DisabledBucketAdmitsEverything) {
  EnergyBudget b(EnergyBudgetOptions{});  // budget_w == 0
  EXPECT_FALSE(b.enabled());
  EXPECT_TRUE(b.try_debit(1e9, QosTier::kBestEffort));
  EXPECT_DOUBLE_EQ(b.fill_ratio(), 1.0);
  EXPECT_EQ(b.level(), DegradeLevel::kNone);
}

TEST(EnergyBudget, RefillsAtBudgetRateUpToCapacity) {
  EnergyBudget b(bucket_opts());
  EXPECT_DOUBLE_EQ(b.capacity_j(), 20.0);
  ASSERT_TRUE(b.try_debit(10.0, QosTier::kGuaranteed));
  EXPECT_DOUBLE_EQ(b.fill_j(), 10.0);
  b.advance(0.5);  // +5 J
  EXPECT_DOUBLE_EQ(b.fill_j(), 15.0);
  b.advance(0.3);  // earlier than the bucket clock: ignored
  EXPECT_DOUBLE_EQ(b.fill_j(), 15.0);
  b.advance(10.0);  // refill saturates at capacity
  EXPECT_DOUBLE_EQ(b.fill_j(), 20.0);
}

TEST(EnergyBudget, ReserveIsReadableOnlyByGuaranteedTraffic) {
  EnergyBudget b(bucket_opts());
  EXPECT_DOUBLE_EQ(b.reserve_j(), 5.0);  // 0.25 * 20 J
  // Best-effort may not take the fill below the reserve...
  EXPECT_FALSE(b.try_debit(16.0, QosTier::kBestEffort));
  EXPECT_DOUBLE_EQ(b.fill_j(), 20.0);  // refused debit leaves no trace
  EXPECT_TRUE(b.try_debit(15.0, QosTier::kBestEffort));
  EXPECT_DOUBLE_EQ(b.fill_j(), 5.0);
  // ...while guaranteed draws straight through it.
  EXPECT_TRUE(b.try_debit(8.0, QosTier::kGuaranteed));
  EXPECT_DOUBLE_EQ(b.fill_j(), -3.0);
}

TEST(EnergyBudget, GuaranteedOverdraftIsBoundedAtMinusCapacity) {
  EnergyBudget b(bucket_opts());
  ASSERT_TRUE(b.try_debit(23.0, QosTier::kGuaranteed));
  EXPECT_DOUBLE_EQ(b.fill_j(), -3.0);
  EXPECT_FALSE(b.try_debit(18.0, QosTier::kGuaranteed));  // -21 < -20
  EXPECT_TRUE(b.try_debit(17.0, QosTier::kGuaranteed));   // lands on -20
  EXPECT_DOUBLE_EQ(b.fill_j(), -20.0);
  EXPECT_DOUBLE_EQ(b.fill_ratio(), 0.0);
  EXPECT_EQ(b.level(), DegradeLevel::kShed);
}

TEST(EnergyBudget, LadderEscalatesImmediatelyAndRecoversWithHysteresis) {
  EnergyBudget b(bucket_opts());  // thresholds 0.60 / 0.40 / 0.20, h 0.05
  ASSERT_TRUE(b.try_debit(9.0, QosTier::kGuaranteed));  // ratio 0.55
  EXPECT_EQ(b.level(), DegradeLevel::kEco);
  ASSERT_TRUE(b.try_debit(3.5, QosTier::kGuaranteed));  // ratio 0.375
  EXPECT_EQ(b.level(), DegradeLevel::kAbftRelax);
  ASSERT_TRUE(b.try_debit(4.5, QosTier::kGuaranteed));  // ratio 0.15
  EXPECT_EQ(b.level(), DegradeLevel::kShed);
  // De-escalation re-arms only past threshold + hysteresis, one rung at
  // a time: 0.255 clears shed's 0.25 gate but not abft_relax's 0.45.
  b.refund(2.1);
  EXPECT_EQ(b.level(), DegradeLevel::kAbftRelax);
  b.refund(4.0);  // ratio 0.455 > 0.45
  EXPECT_EQ(b.level(), DegradeLevel::kEco);
  b.refund(4.0);  // ratio 0.655 > 0.65
  EXPECT_EQ(b.level(), DegradeLevel::kNone);
  // Escalation skips rungs when the drop is deep enough.
  EnergyBudget b2(bucket_opts());
  ASSERT_TRUE(b2.try_debit(17.0, QosTier::kGuaranteed));  // ratio 0.15
  EXPECT_EQ(b2.level(), DegradeLevel::kShed);
}

TEST(EnergyBudget, RejectsInconsistentOptions) {
  EnergyBudgetOptions bad = bucket_opts();
  bad.reserve_fraction = 1.0;
  EXPECT_THROW(EnergyBudget{bad}, std::invalid_argument);
  bad = bucket_opts();
  bad.shed_below = 0.5;  // above abft_relax_below
  EXPECT_THROW(EnergyBudget{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// TierQueue: bounded, guaranteed-first

QueuedRequest queued(std::uint64_t id, QosTier tier, double arrival_s = 0.0,
                     double deadline_s = 0.0) {
  QueuedRequest qr;
  qr.request.id = id;
  qr.request.tier = tier;
  qr.request.arrival_s = arrival_s;
  qr.request.deadline_s = deadline_s;
  return qr;
}

TEST(TierQueue, EachTierIsBoundedIndependently) {
  TierQueue q(2);
  EXPECT_TRUE(q.push(queued(1, QosTier::kBestEffort)));
  EXPECT_TRUE(q.push(queued(2, QosTier::kBestEffort)));
  EXPECT_FALSE(q.push(queued(3, QosTier::kBestEffort)));
  // The guaranteed lane still has room.
  EXPECT_TRUE(q.push(queued(4, QosTier::kGuaranteed)));
  EXPECT_EQ(q.total_size(), 3u);
}

TEST(TierQueue, PopIsGuaranteedFirstThenFifo) {
  TierQueue q(8);
  q.push(queued(1, QosTier::kBestEffort));
  q.push(queued(2, QosTier::kGuaranteed));
  q.push(queued(3, QosTier::kBestEffort));
  q.push(queued(4, QosTier::kGuaranteed));
  std::vector<std::uint64_t> order;
  while (auto qr = q.pop()) order.push_back(qr->request.id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 4, 1, 3}));
}

TEST(TierQueue, TakeExpiredRemovesOnlyDueEntries) {
  TierQueue q(8);
  q.push(queued(1, QosTier::kBestEffort, 0.0, 1.0));  // due at t=1
  q.push(queued(2, QosTier::kBestEffort, 0.0, 5.0));  // due at t=5
  q.push(queued(3, QosTier::kGuaranteed, 0.0, 0.0));  // no deadline
  const auto expired = q.take_expired(2.0);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].request.id, 1u);
  EXPECT_EQ(q.total_size(), 2u);
}

// ---------------------------------------------------------------------------
// CostPredictor: Eq (9) gate and eco objective

TEST(CostPredictor, NormalChoiceAppliesTheCrossoverGate) {
  CostPredictor p(machine::haswell_e3_1225(), 4);
  ASSERT_GT(p.crossover_n(), 96.0);
  // Below the Eq (9) crossover the recursive algorithms are gated out.
  EXPECT_EQ(p.choose(96, /*eco=*/false).algorithm,
            core::AlgorithmId::kOpenBlas);
}

TEST(CostPredictor, EcoChoiceMinimizesPredictedJoules) {
  CostPredictor p(machine::haswell_e3_1225(), 4);
  for (const std::size_t n : {96u, 224u, 1024u}) {
    const AlgorithmChoice c = p.choose(n, /*eco=*/true);
    for (const auto& info : core::algorithm_registry()) {
      EXPECT_LE(c.prediction.package_j, p.predict(info.id, n).package_j)
          << "n=" << n;
    }
  }
}

TEST(CostPredictor, PredictionsAreMemoizedAndValidated) {
  CostPredictor p(machine::haswell_e3_1225(), 4);
  const Prediction& a = p.predict(core::AlgorithmId::kStrassen, 224);
  EXPECT_GT(a.seconds, 0.0);
  EXPECT_GT(a.package_j, 0.0);
  // Memoized: the second lookup is the same cache entry.
  EXPECT_EQ(&a, &p.predict(core::AlgorithmId::kStrassen, 224));
  EXPECT_THROW(p.predict(core::AlgorithmId::kOpenBlas, 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Load generator: the seeded trace

TEST(LoadGen, SplitMix64MatchesTheReferenceStream) {
  // Published splitmix64 test vector for seed 0 — pins the exact
  // constants the decision-log determinism chain starts from.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454fULL);
}

TEST(LoadGen, TraceIsDeterministicAndWellFormed) {
  LoadGenOptions opts;
  opts.seed = 7;
  const auto a = generate_trace(opts);
  const auto b = generate_trace(opts);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].n, b[i].n);
    EXPECT_EQ(a[i].tier, b[i].tier);
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
    // ids 1..N in arrival order; arrivals sorted within the horizon.
    EXPECT_EQ(a[i].id, i + 1);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_s, a[i - 1].arrival_s);
    }
    EXPECT_LT(a[i].arrival_s, opts.duration_s);
    const bool known_shape =
        std::find(opts.shapes.begin(), opts.shapes.end(), a[i].n) !=
        opts.shapes.end();
    EXPECT_TRUE(known_shape) << "n=" << a[i].n;
    if (a[i].tier == QosTier::kGuaranteed) {
      EXPECT_DOUBLE_EQ(a[i].deadline_s, opts.guaranteed_deadline_s);
      EXPECT_EQ(a[i].abft, opts.guaranteed_abft);
    } else {
      EXPECT_DOUBLE_EQ(a[i].deadline_s, opts.best_effort_deadline_s);
      EXPECT_EQ(a[i].abft, abft::AbftMode::kOff);
    }
  }
}

TEST(LoadGen, BurstWindowMultipliesTheArrivalRate) {
  LoadGenOptions opts;  // burst x6 over [8, 12)
  opts.seed = 3;
  std::size_t in_burst = 0, before_burst = 0;
  for (const auto& r : generate_trace(opts)) {
    if (r.arrival_s >= opts.burst_start_s &&
        r.arrival_s < opts.burst_start_s + opts.burst_len_s) {
      ++in_burst;
    } else if (r.arrival_s < opts.burst_start_s) {
      ++before_burst;
    }
  }
  const double burst_rate = static_cast<double>(in_burst) / opts.burst_len_s;
  const double base_rate =
      static_cast<double>(before_burst) / opts.burst_start_s;
  EXPECT_GT(base_rate, 0.0);
  EXPECT_GT(burst_rate, 2.0 * base_rate);
}

TEST(LoadGen, RejectsInvalidOptions) {
  LoadGenOptions bad;
  bad.rate_hz = 0.0;
  EXPECT_THROW(generate_trace(bad), std::invalid_argument);
  bad = LoadGenOptions{};
  bad.shapes.clear();
  EXPECT_THROW(generate_trace(bad), std::invalid_argument);
  bad = LoadGenOptions{};
  bad.guaranteed_fraction = 1.5;
  EXPECT_THROW(generate_trace(bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Server: the ISSUE's overload study as an executable assertion

TEST(Server, OverloadedRunProtectsGuaranteedAndHoldsTheBudget) {
  LoadGenOptions lg;
  lg.seed = 7;
  ServeOptions so;
  so.budget.budget_w = 0.05;  // a few-watt trace vs a 50 mW contract
  Server server(so);
  const ServeReport report = server.run(generate_trace(lg));

  const TierStats& g = report.tier(QosTier::kGuaranteed);
  const TierStats& be = report.tier(QosTier::kBestEffort);
  ASSERT_GT(g.submitted, 0u);
  ASSERT_GT(be.submitted, 0u);
  // The ladder engaged all the way to shedding...
  EXPECT_GT(report.degrade_entries[static_cast<std::size_t>(
                DegradeLevel::kShed)],
            0u);
  EXPECT_GT(report.degrade_transitions, 0u);
  // ...only best-effort traffic paid for it...
  EXPECT_EQ(g.rejected_for(RejectReason::kShedding), 0u);
  EXPECT_EQ(g.expired, 0u);
  EXPECT_EQ(g.cancelled, 0u);
  EXPECT_GT(be.rejected_for(RejectReason::kShedding), 0u);
  // ...the SLO and the energy contract both held...
  EXPECT_TRUE(report.slo_met);
  EXPECT_TRUE(report.budget_met);
  EXPECT_LE(report.achieved_w,
            so.budget.budget_w * (1.0 + so.budget_tolerance));
  // ...and the predicted spend reconciles with the RAPL read-back.
  EXPECT_GT(report.predicted_joules, 0.0);
  EXPECT_NEAR(report.measured_joules, report.predicted_joules, 1e-2);
  EXPECT_FALSE(report.rapl_degraded);
}

TEST(Server, DecisionLogIsByteReproducible) {
  LoadGenOptions lg;
  lg.seed = 7;
  const auto trace = generate_trace(lg);
  ServeOptions so;
  so.budget.budget_w = 0.05;
  Server server(so);
  const std::string first = server.run(trace).decision_log();
  ASSERT_FALSE(first.empty());
  // Same Server re-run (exercises reset) and a fresh instance both
  // reproduce the exact bytes the serve-smoke CI job diffs.
  EXPECT_EQ(server.run(trace).decision_log(), first);
  Server other(so);
  EXPECT_EQ(other.run(trace).decision_log(), first);
}

TEST(Server, QueuedDeadlinesExpireAndRefundTheirJoules) {
  ServeOptions so;
  so.slots = 1;
  so.budget.budget_w = 100.0;
  CostPredictor model(so.machine, so.threads);
  const std::size_t n = 224;
  const double service_s =
      model.predict(core::AlgorithmId::kOpenBlas, n).seconds;
  std::vector<Request> trace;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    Request r;
    r.id = id;
    r.arrival_s = 0.0;
    r.n = n;
    r.tier = QosTier::kBestEffort;
    // Shorter than one service time: whatever queues behind the single
    // slot is already dead when the first completion advances the clock.
    r.deadline_s = 0.5 * service_s;
    trace.push_back(r);
  }
  Server server(so);
  const ServeReport report = server.run(trace);
  const TierStats& be = report.tier(QosTier::kBestEffort);
  EXPECT_EQ(be.completed, 1u);
  EXPECT_EQ(be.expired, 5u);
  std::size_t expire_decisions = 0;
  for (const auto& d : report.decisions) {
    if (d.kind != Decision::Kind::kExpire) continue;
    ++expire_decisions;
    EXPECT_GT(d.joules, 0.0);  // the admission debit came back
  }
  EXPECT_EQ(expire_decisions, 5u);
  // Refunds restored the bucket: barely one request's energy is gone.
  EXPECT_GT(report.final_fill_ratio, 0.99);
}

std::vector<Request> spaced_trace(std::size_t count, std::size_t n,
                                  double spacing_s) {
  std::vector<Request> trace;
  for (std::uint64_t id = 1; id <= count; ++id) {
    Request r;
    r.id = id;
    r.arrival_s = static_cast<double>(id - 1) * spacing_s;
    r.n = n;
    r.tier = (id % 2 == 1) ? QosTier::kGuaranteed : QosTier::kBestEffort;
    trace.push_back(r);
  }
  return trace;
}

TEST(Server, StallPastTheWatchdogIsCancelledAndAccounted) {
  fault::FaultInjector inj(
      fault::FaultPlan::parse("serve.stall=1,serve.stall_ms=400,seed=1"));
  fault::FaultScope scope(inj);
  ServeOptions so;  // watchdog_s = 0.25 < 0.4 s stall
  Server server(so);
  const ServeReport report = server.run(spaced_trace(4, 96, 1.0));
  EXPECT_EQ(report.stalls, 4u);
  const TierStats& g = report.tier(QosTier::kGuaranteed);
  const TierStats& be = report.tier(QosTier::kBestEffort);
  EXPECT_EQ(g.cancelled, 2u);
  EXPECT_EQ(be.cancelled, 2u);
  EXPECT_EQ(g.completed + be.completed, 0u);
  // Cancelled work is spent energy, not forgiven energy.
  EXPECT_GT(report.predicted_joules, 0.0);
  EXPECT_FALSE(report.slo_met);  // guaranteed cancellations break the SLO
  std::size_t cancels = 0;
  for (const auto& d : report.decisions) {
    cancels += d.kind == Decision::Kind::kCancel ? 1 : 0;
  }
  EXPECT_EQ(cancels, 4u);
}

TEST(Server, StallWithinTheGraceWindowOnlyDelays) {
  fault::FaultInjector inj(
      fault::FaultPlan::parse("serve.stall=1,serve.stall_ms=100,seed=1"));
  fault::FaultScope scope(inj);
  ServeOptions so;  // 0.1 s stall < 0.25 s watchdog
  Server server(so);
  const ServeReport report = server.run(spaced_trace(4, 96, 1.0));
  EXPECT_EQ(report.stalls, 4u);
  const TierStats& g = report.tier(QosTier::kGuaranteed);
  const TierStats& be = report.tier(QosTier::kBestEffort);
  EXPECT_EQ(g.cancelled + be.cancelled, 0u);
  EXPECT_EQ(g.completed + be.completed, 4u);
  // The stall shows up as latency instead.
  EXPECT_GE(g.p50_s, 0.1);
  EXPECT_GE(be.p50_s, 0.1);
}

TEST(Server, BurstFaultAmplifiesArrivalsWithCloneIds) {
  fault::FaultInjector inj(
      fault::FaultPlan::parse("serve.burst=1,seed=2"));  // 3 copies default
  fault::FaultScope scope(inj);
  ServeOptions so;
  so.queue_capacity = 32;
  so.slots = 4;
  Server server(so);
  const ServeReport report = server.run(spaced_trace(3, 96, 2.0));
  EXPECT_EQ(report.bursts, 3u);
  const std::uint64_t submitted =
      report.tier(QosTier::kGuaranteed).submitted +
      report.tier(QosTier::kBestEffort).submitted;
  EXPECT_EQ(submitted, 12u);  // each arrival plus three clones
  bool saw_clone = false;
  for (const auto& d : report.decisions) {
    saw_clone = saw_clone || d.request_id == 1000001u;
  }
  EXPECT_TRUE(saw_clone);
}

TEST(Server, ExecuteModeNeverPerturbsTheDecisionLog) {
  LoadGenOptions lg;
  lg.seed = 5;
  lg.duration_s = 3.0;
  lg.rate_hz = 2.0;
  lg.burst_factor = 1.0;
  lg.shapes = {64};
  const auto trace = generate_trace(lg);
  ASSERT_FALSE(trace.empty());

  ServeOptions virtual_only;
  Server a(virtual_only);
  const ServeReport ra = a.run(trace);

  tasking::ThreadPool pool(2);
  ServeOptions real = virtual_only;
  real.execute = true;
  real.pool = &pool;
  Server b(real);
  const ServeReport rb = b.run(trace);

  EXPECT_EQ(ra.executed, 0u);
  EXPECT_EQ(rb.executed, rb.tier(QosTier::kGuaranteed).completed +
                             rb.tier(QosTier::kBestEffort).completed);
  EXPECT_GT(rb.executed, 0u);
  // Wall-clock execution is one-way decoupled from virtual decisions.
  EXPECT_EQ(rb.decision_log(), ra.decision_log());
}

TEST(Server, ExecuteModeDrivesTheRealCancelPath) {
  fault::FaultInjector inj(
      fault::FaultPlan::parse("serve.stall=1,serve.stall_ms=400,seed=1"));
  fault::FaultScope scope(inj);
  tasking::ThreadPool pool(2);
  ServeOptions so;
  so.execute = true;
  so.pool = &pool;
  Server server(so);
  const ServeReport report = server.run(spaced_trace(2, 64, 1.0));
  EXPECT_EQ(report.tier(QosTier::kGuaranteed).cancelled +
                report.tier(QosTier::kBestEffort).cancelled,
            2u);
  EXPECT_EQ(report.cancel_drills, 2u);
}

TEST(Server, RaplFailureDegradesTheBudgetReadback) {
  fault::FaultInjector inj(fault::FaultPlan::parse("rapl.fail=1,seed=3"));
  fault::FaultScope scope(inj);
  ServeOptions so;
  Server server(so);
  const ServeReport report = server.run(spaced_trace(2, 96, 1.0));
  EXPECT_TRUE(report.rapl_degraded);
  EXPECT_DOUBLE_EQ(report.measured_joules, 0.0);
  // The virtual accounting is untouched by the read-back failure.
  EXPECT_GT(report.predicted_joules, 0.0);
}

// ---------------------------------------------------------------------------
// serve_one: the unloaded synchronous path

Request one_request(std::size_t n) {
  Request r;
  r.id = 1;
  r.n = n;
  r.tier = QosTier::kGuaranteed;
  r.algorithm = core::AlgorithmId::kOpenBlas;
  return r;
}

TEST(ServeOne, UnloadedServiceIsBitIdenticalToDirectMatmul) {
  const std::size_t n = 64;
  const linalg::Matrix a = linalg::random_matrix(n, n, 11);
  const linalg::Matrix b = linalg::random_matrix(n, n, 12);
  linalg::Matrix via_service(n, n);
  linalg::Matrix direct(n, n);

  Server server(ServeOptions{});
  ASSERT_EQ(server.serve_one(one_request(n), a.view(), b.view(),
                             via_service.view()),
            Outcome::kCompleted);

  MatmulOptions mo;
  mo.algorithm = core::AlgorithmId::kOpenBlas;
  mo.abft.mode = abft::AbftMode::kOff;
  matmul(a.view(), b.view(), direct.view(), mo);

  EXPECT_EQ(std::memcmp(via_service.data(), direct.data(),
                        n * n * sizeof(double)),
            0);
}

TEST(ServeOne, RejectsOversizedAndMismatchedRequests) {
  Server server(ServeOptions{});
  const linalg::Matrix a = linalg::random_matrix(32, 32, 1);
  const linalg::Matrix b = linalg::random_matrix(32, 32, 2);
  linalg::Matrix c(32, 32);

  Request too_big = one_request(server.options().max_n + 1);
  EXPECT_EQ(server.serve_one(too_big, a.view(), b.view(), c.view()),
            Outcome::kRejected);
  EXPECT_EQ(server.last_reject_reason(), RejectReason::kOversized);

  Request mismatched = one_request(64);  // views are 32x32
  EXPECT_EQ(server.serve_one(mismatched, a.view(), b.view(), c.view()),
            Outcome::kRejected);
  EXPECT_EQ(server.last_reject_reason(), RejectReason::kOversized);
}

TEST(ServeOne, BudgetShortfallAndSheddingAreTypedRejections) {
  const std::size_t n = 128;
  CostPredictor model(machine::haswell_e3_1225(), 4);
  const double request_j =
      model.predict(core::AlgorithmId::kOpenBlas, n).package_j;
  const linalg::Matrix a = linalg::random_matrix(n, n, 1);
  const linalg::Matrix b = linalg::random_matrix(n, n, 2);
  linalg::Matrix c(n, n);
  const double sentinel = -7.25;
  c.view().data()[0] = sentinel;

  // A bucket holding half a request: best-effort bounces on the budget,
  // and a rejected request leaves the output untouched.
  ServeOptions starved;
  starved.budget.budget_w = 1e-6;
  starved.budget.capacity_j = 0.5 * request_j;
  Server scarce(starved);
  Request be = one_request(n);
  be.tier = QosTier::kBestEffort;
  EXPECT_EQ(scarce.serve_one(be, a.view(), b.view(), c.view()),
            Outcome::kRejected);
  EXPECT_EQ(scarce.last_reject_reason(), RejectReason::kEnergyBudget);
  EXPECT_DOUBLE_EQ(c.view().data()[0], sentinel);

  // A guaranteed request that drains the bucket below the shed rung
  // pulls the ladder down; the next best-effort request is shed.
  ServeOptions tight;
  tight.budget.budget_w = 1e-6;
  tight.budget.capacity_j = 1.2 * request_j;
  Server shedding(tight);
  Request g = one_request(n);
  EXPECT_EQ(shedding.serve_one(g, a.view(), b.view(), c.view()),
            Outcome::kCompleted);
  EXPECT_EQ(shedding.serve_one(be, a.view(), b.view(), c.view()),
            Outcome::kRejected);
  EXPECT_EQ(shedding.last_reject_reason(), RejectReason::kShedding);
}

// ---------------------------------------------------------------------------
// ServeOptions::from_env: the strict CAPOW_SERVE_* grammar

/// Scoped setenv so a failing assertion can't leak the variable into
/// later tests.
class EnvVar {
 public:
  EnvVar(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvVar() { ::unsetenv(name_); }
  EnvVar(const EnvVar&) = delete;
  EnvVar& operator=(const EnvVar&) = delete;

 private:
  const char* name_;
};

TEST(ServeOptionsEnv, AppliesNumericOverridesOnTopOfDefaults) {
  EnvVar budget("CAPOW_SERVE_BUDGET_W", "7.5");
  EnvVar cap("CAPOW_SERVE_QUEUE_CAP", "32");
  EnvVar slots("CAPOW_SERVE_SLOTS", "3");
  EnvVar watchdog("CAPOW_SERVE_WATCHDOG_MS", "500");
  const ServeOptions opts = ServeOptions::from_env();
  EXPECT_DOUBLE_EQ(opts.budget.budget_w, 7.5);
  EXPECT_EQ(opts.queue_capacity, 32u);
  EXPECT_EQ(opts.slots, 3u);
  EXPECT_DOUBLE_EQ(opts.watchdog_s, 0.5);
}

TEST(ServeOptionsEnv, UnsetVariablesLeaveTheBaseUntouched) {
  ServeOptions base;
  base.slots = 9;
  const ServeOptions opts = ServeOptions::from_env(base);
  EXPECT_EQ(opts.slots, 9u);
  EXPECT_DOUBLE_EQ(opts.budget.budget_w, base.budget.budget_w);
}

TEST(ServeOptionsEnv, MalformedValueNamesTheVariable) {
  EnvVar budget("CAPOW_SERVE_BUDGET_W", "fast");
  try {
    (void)ServeOptions::from_env();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("CAPOW_SERVE_BUDGET_W"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Telemetry export and the decision-log rendering contract

TEST(ServeMetrics, ExportEmitsTheServeFamilies) {
  LoadGenOptions lg;
  lg.seed = 7;
  ServeOptions so;
  so.budget.budget_w = 0.05;
  Server server(so);
  const ServeReport report = server.run(generate_trace(lg));

  telemetry::MetricsRegistry registry;
  export_serve_metrics(report, registry);
  std::ostringstream os;
  registry.write(os);
  const std::string text = os.str();
  for (const char* needle :
       {"capow_serve_requests_total", "capow_serve_rejected_total",
        "capow_serve_shed_total", "capow_serve_degraded_total",
        "capow_serve_latency_seconds{tier=\"guaranteed\",quantile=\"0.99\"}",
        "capow_serve_energy_joules{kind=\"predicted\"}",
        "capow_serve_budget_watts", "capow_serve_rapl_degraded"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(DecisionFormat, RendersStableBytes) {
  Decision admit;
  admit.kind = Decision::Kind::kAdmit;
  admit.t_s = 1.5;
  admit.request_id = 42;
  admit.tier = QosTier::kGuaranteed;
  admit.level = DegradeLevel::kEco;
  admit.algorithm = core::AlgorithmId::kOpenBlas;
  admit.joules = 0.25;
  EXPECT_EQ(format_decision(admit),
            "t=1.500000 admit id=42 tier=guaranteed level=eco "
            "alg=openblas j=0.250");

  Decision reject;
  reject.kind = Decision::Kind::kReject;
  reject.request_id = 7;
  reject.tier = QosTier::kBestEffort;
  reject.level = DegradeLevel::kShed;
  reject.reason = RejectReason::kShedding;
  EXPECT_EQ(format_decision(reject),
            "t=0.000000 reject id=7 tier=best_effort level=shed "
            "reason=shedding");

  Decision degrade;
  degrade.kind = Decision::Kind::kDegrade;
  degrade.t_s = 2.0;
  degrade.level = DegradeLevel::kShed;
  EXPECT_EQ(format_decision(degrade), "t=2.000000 degrade level=shed");
}

}  // namespace
}  // namespace capow::serve
