// Tests for CAPS: correctness across BFS/DFS splits, traversal and
// buffer statistics, instrumentation vs closed forms, parallel
// determinism.
#include <cmath>

#include <gtest/gtest.h>

#include "capow/blas/gemm_ref.hpp"
#include "capow/capsalg/caps.hpp"
#include "capow/capsalg/cost_model.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"
#include "capow/trace/counters.hpp"

namespace capow::capsalg {
namespace {

using linalg::allclose;
using linalg::Matrix;
using linalg::random_matrix;

struct CapsCase {
  std::size_t n;
  std::size_t cutoff;
  std::size_t bfs_depth;
};

class CapsCorrectnessTest : public ::testing::TestWithParam<CapsCase> {};

TEST_P(CapsCorrectnessTest, MatchesReference) {
  const auto p = GetParam();
  Matrix a = random_matrix(p.n, p.n, p.n + 1);
  Matrix b = random_matrix(p.n, p.n, p.n + 2);
  Matrix expect(p.n, p.n), got(p.n, p.n, -7.0);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  CapsOptions opts;
  opts.base_cutoff = p.cutoff;
  opts.bfs_cutoff_depth = p.bfs_depth;
  multiply(a.view(), b.view(), got.view(), opts);
  EXPECT_TRUE(allclose(got.view(), expect.view(), 1e-10, 1e-10))
      << "n=" << p.n << " cutoff=" << p.cutoff << " bfs=" << p.bfs_depth;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CapsCorrectnessTest,
    ::testing::Values(CapsCase{1, 8, 4},      // base case directly
                      CapsCase{8, 8, 4},
                      CapsCase{16, 8, 4},     // one BFS level
                      CapsCase{16, 8, 0},     // pure DFS
                      CapsCase{64, 8, 0},     // deep pure DFS
                      CapsCase{64, 8, 1},     // BFS then DFS
                      CapsCase{64, 8, 2},
                      CapsCase{64, 8, 9},     // pure BFS
                      CapsCase{100, 16, 1},   // padded, mixed
                      CapsCase{128, 16, 2},
                      CapsCase{129, 32, 4},   // padded
                      CapsCase{256, 64, 4},
                      CapsCase{256, 32, 1}));

TEST(Caps, ParallelMatchesSerialBitwise) {
  const std::size_t n = 128;
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  Matrix serial(n, n), parallel(n, n);
  CapsOptions opts;
  opts.base_cutoff = 16;
  opts.bfs_cutoff_depth = 2;
  opts.dfs_parallel_threshold = 16;  // exercise work-shared DFS adds
  multiply(a.view(), b.view(), serial.view(), opts);
  tasking::ThreadPool pool(3);
  multiply(a.view(), b.view(), parallel.view(), opts, &pool);
  EXPECT_TRUE(allclose(parallel.view(), serial.view(), 0.0, 0.0));
}

TEST(Caps, NonSquareThrows) {
  Matrix a(4, 6), b(6, 4), c(4, 4);
  EXPECT_THROW(multiply(a.view(), b.view(), c.view()),
               std::invalid_argument);
}

TEST(Caps, ZeroCutoffThrows) {
  Matrix a(4, 4), b(4, 4), c(4, 4);
  CapsOptions opts;
  opts.base_cutoff = 0;
  EXPECT_THROW(multiply(a.view(), b.view(), c.view(), opts),
               std::invalid_argument);
}

TEST(Caps, EmptyIsNoop) {
  Matrix a, b, c;
  CapsStats stats;
  EXPECT_NO_THROW(multiply(a.view(), b.view(), c.view(), {}, nullptr,
                                &stats));
  EXPECT_EQ(stats.base_products, 0u);
}

TEST(CapsStats, NodeCountsFollowAlgorithm2) {
  // n=256, cutoff 16 -> 4 levels; bfs_cutoff_depth=2: levels 0,1 BFS
  // (1 + 7 nodes), levels 2,3 DFS (49 + 343 nodes), 7^4 base products.
  Matrix a = random_matrix(256, 256, 1), b = random_matrix(256, 256, 2);
  Matrix c(256, 256);
  CapsOptions opts;
  opts.base_cutoff = 16;
  opts.bfs_cutoff_depth = 2;
  CapsStats stats;
  multiply(a.view(), b.view(), c.view(), opts, nullptr, &stats);
  EXPECT_EQ(stats.bfs_nodes, 1u + 7u);
  EXPECT_EQ(stats.dfs_nodes, 49u + 343u);
  EXPECT_EQ(stats.base_products, 2401u);
}

TEST(CapsStats, PureBfsAndPureDfs) {
  Matrix a = random_matrix(64, 64, 1), b = random_matrix(64, 64, 2);
  Matrix c(64, 64);
  CapsOptions opts;
  opts.base_cutoff = 8;  // 3 levels

  opts.bfs_cutoff_depth = 99;
  CapsStats bfs;
  multiply(a.view(), b.view(), c.view(), opts, nullptr, &bfs);
  EXPECT_EQ(bfs.bfs_nodes, 1u + 7u + 49u);
  EXPECT_EQ(bfs.dfs_nodes, 0u);

  opts.bfs_cutoff_depth = 0;
  CapsStats dfs;
  multiply(a.view(), b.view(), c.view(), opts, nullptr, &dfs);
  EXPECT_EQ(dfs.bfs_nodes, 0u);
  EXPECT_EQ(dfs.dfs_nodes, 1u + 7u + 49u);
}

TEST(CapsStats, SerialPeakBufferMatchesModelExactly) {
  for (const auto& cse :
       {CapsCase{128, 16, 1}, CapsCase{128, 16, 3}, CapsCase{256, 32, 2},
        CapsCase{64, 8, 0}}) {
    Matrix a = random_matrix(cse.n, cse.n, 1);
    Matrix b = random_matrix(cse.n, cse.n, 2);
    Matrix c(cse.n, cse.n);
    CapsOptions opts;
    opts.base_cutoff = cse.cutoff;
    opts.bfs_cutoff_depth = cse.bfs_depth;
    CapsStats stats;
    multiply(a.view(), b.view(), c.view(), opts, nullptr, &stats);
    CapsCostOptions cost;
    cost.base_cutoff = cse.cutoff;
    cost.bfs_cutoff_depth = cse.bfs_depth;
    EXPECT_EQ(static_cast<double>(stats.peak_buffer_bytes),
              caps_peak_buffer_bytes(cse.n, cost))
        << "n=" << cse.n << " bfs=" << cse.bfs_depth;
  }
}

TEST(CapsStats, BfsTradesMemoryForCommunication) {
  // The paper: "The BFS approach requires additional buffer memory".
  Matrix a = random_matrix(128, 128, 1), b = random_matrix(128, 128, 2);
  Matrix c(128, 128);
  CapsOptions opts;
  opts.base_cutoff = 16;

  opts.bfs_cutoff_depth = 99;
  CapsStats bfs;
  multiply(a.view(), b.view(), c.view(), opts, nullptr, &bfs);

  opts.bfs_cutoff_depth = 0;
  CapsStats dfs;
  multiply(a.view(), b.view(), c.view(), opts, nullptr, &dfs);

  EXPECT_GT(bfs.peak_buffer_bytes, 3 * dfs.peak_buffer_bytes);
}

class CapsCountTest : public ::testing::TestWithParam<CapsCase> {};

TEST_P(CapsCountTest, InstrumentedCountsMatchClosedForm) {
  const auto p = GetParam();
  Matrix a = random_matrix(p.n, p.n, 1), b = random_matrix(p.n, p.n, 2);
  Matrix c(p.n, p.n);
  CapsOptions opts;
  opts.base_cutoff = p.cutoff;
  opts.bfs_cutoff_depth = p.bfs_depth;

  trace::Recorder rec;
  {
    trace::RecordingScope scope(rec);
    multiply(a.view(), b.view(), c.view(), opts);
  }
  CapsCostOptions cost;
  cost.base_cutoff = p.cutoff;
  cost.bfs_cutoff_depth = p.bfs_depth;
  EXPECT_EQ(static_cast<double>(rec.total().flops),
            caps_total_flops(p.n, cost));
  EXPECT_EQ(static_cast<double>(rec.total().dram_bytes()),
            caps_total_traffic_bytes(p.n, cost));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CapsCountTest,
    ::testing::Values(CapsCase{32, 8, 4}, CapsCase{32, 8, 0},
                      CapsCase{64, 8, 1}, CapsCase{100, 16, 2},
                      CapsCase{128, 32, 4}, CapsCase{64, 64, 4},
                      CapsCase{48, 8, 2}));

TEST(Caps, MoreFlopsThanStrassenButSameProducts) {
  // CAPS pays extra O(n^2) work (operand copies / DFS accumulation) for
  // its communication structure; the 7^L multiplication count is
  // identical.
  CapsCostOptions cost;
  cost.base_cutoff = 32;
  cost.bfs_cutoff_depth = 4;
  const double caps = caps_total_flops(256, cost);
  const double classical_products = 2.0 * 32 * 32 * 32 * 343;  // 7^3 bases
  EXPECT_GT(caps, classical_products);
}

TEST(Caps, DfsThresholdControlsWorkSharing) {
  // With a huge threshold DFS adds never work-share; results identical.
  Matrix a = random_matrix(64, 64, 1), b = random_matrix(64, 64, 2);
  Matrix c1(64, 64), c2(64, 64);
  tasking::ThreadPool pool(2);
  CapsOptions opts;
  opts.base_cutoff = 8;
  opts.bfs_cutoff_depth = 0;
  opts.dfs_parallel_threshold = 8;
  multiply(a.view(), b.view(), c1.view(), opts, &pool);
  opts.dfs_parallel_threshold = 1u << 30;
  multiply(a.view(), b.view(), c2.view(), opts, &pool);
  EXPECT_TRUE(allclose(c1.view(), c2.view(), 0.0, 0.0));
}

}  // namespace
}  // namespace capow::capsalg
