// Tests for the Strassen and CAPS simulator profiles: conservation of
// totals, DRAM classification behaviour, and the live-window mechanism.
#include <gtest/gtest.h>

#include "capow/capsalg/cost_model.hpp"
#include "capow/sim/executor.hpp"
#include "capow/strassen/cost_model.hpp"

namespace capow::strassen {
namespace {

const machine::MachineSpec kHaswell = machine::haswell_e3_1225();

double profile_traffic(const sim::WorkProfile& wp) {
  double t = 0.0;
  for (const auto& ph : wp.phases) t += ph.dram_bytes + ph.cache_bytes;
  return t;
}

TEST(StrassenProfile, ConservesFlopsAndTraffic) {
  for (std::size_t n : {512u, 1024u, 2048u, 4096u}) {
    for (unsigned t : {1u, 4u}) {
      const auto wp = strassen_profile(n, kHaswell, t);
      StrassenCostOptions cost;
      EXPECT_DOUBLE_EQ(wp.total_flops(), strassen_total_flops(n, cost))
          << n << "/" << t;
      EXPECT_DOUBLE_EQ(profile_traffic(wp),
                       strassen_total_traffic_bytes(n, cost))
          << n << "/" << t;
    }
  }
}

TEST(StrassenProfile, PhaseStructure) {
  // n=512, cutoff 64: 3 levels => 3 operand phases + base + 3 combines.
  const auto wp = strassen_profile(512, kHaswell, 4);
  ASSERT_EQ(wp.phases.size(), 7u);
  EXPECT_EQ(wp.phases[0].label, "operands@L0");
  EXPECT_EQ(wp.phases[3].label, "base-products");
  EXPECT_EQ(wp.phases[6].label, "combine@L0");
}

TEST(StrassenProfile, PaddedDimensionAddsPaddingPhase) {
  const auto wp = strassen_profile(500, kHaswell, 1);
  ASSERT_FALSE(wp.phases.empty());
  EXPECT_EQ(wp.phases[0].label, "padding");
}

TEST(StrassenProfile, BaseCaseOnlyBelowCutoff) {
  const auto wp = strassen_profile(64, kHaswell, 4);
  ASSERT_EQ(wp.phases.size(), 1u);
  EXPECT_EQ(wp.phases[0].label, "base-gemm");
}

TEST(StrassenProfile, UntiedWindowMovesTrafficToDramUnderThreads) {
  // The live-window mechanism: multi-threaded untied-task execution
  // pushes mid-level addition traffic to DRAM that a serial traversal
  // keeps in cache.
  const auto serial = strassen_profile(4096, kHaswell, 1);
  const auto parallel = strassen_profile(4096, kHaswell, 4);
  EXPECT_GT(parallel.total_dram_bytes(), 1.5 * serial.total_dram_bytes());
}

TEST(StrassenProfile, PinnedSchedulingMovesLessTraffic) {
  StrassenCostOptions untied;
  StrassenCostOptions pinned;
  pinned.untied_task_interleaving = false;
  const auto u = strassen_profile(4096, kHaswell, 4, untied);
  const auto p = strassen_profile(4096, kHaswell, 4, pinned);
  EXPECT_GT(u.total_dram_bytes(), p.total_dram_bytes());
}

TEST(StrassenProfile, SimulatedTimeShrinksWithThreadsSublinearly) {
  const auto t1 =
      sim::simulate(kHaswell, strassen_profile(2048, kHaswell, 1), 1);
  const auto t4 =
      sim::simulate(kHaswell, strassen_profile(2048, kHaswell, 4), 4);
  const double speedup = t1.seconds / t4.seconds;
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 3.6);  // memory-bound adds cap the scaling
}

TEST(StrassenProfile, WinogradProfileCheaper) {
  StrassenCostOptions classic;
  StrassenCostOptions wino;
  wino.winograd = true;
  const auto c = strassen_profile(1024, kHaswell, 4, classic);
  const auto w = strassen_profile(1024, kHaswell, 4, wino);
  EXPECT_LT(profile_traffic(w), profile_traffic(c));
}

}  // namespace
}  // namespace capow::strassen

namespace capow::capsalg {
namespace {

const machine::MachineSpec kHaswell = machine::haswell_e3_1225();

double profile_traffic(const sim::WorkProfile& wp) {
  double t = 0.0;
  for (const auto& ph : wp.phases) t += ph.dram_bytes + ph.cache_bytes;
  return t;
}

TEST(CapsProfile, ConservesFlopsAndTraffic) {
  for (std::size_t n : {512u, 1024u, 2048u, 4096u}) {
    for (unsigned t : {1u, 4u}) {
      const auto wp = caps_profile(n, kHaswell, t);
      CapsCostOptions cost;
      EXPECT_DOUBLE_EQ(wp.total_flops(), caps_total_flops(n, cost))
          << n << "/" << t;
      EXPECT_DOUBLE_EQ(profile_traffic(wp),
                       caps_total_traffic_bytes(n, cost))
          << n << "/" << t;
    }
  }
}

TEST(CapsProfile, MovesLessDramTrafficThanUntiedStrassenWhenParallel) {
  // The communication-avoidance claim, in model terms.
  const auto caps = caps_profile(4096, kHaswell, 4);
  const auto strassen = strassen::strassen_profile(4096, kHaswell, 4);
  EXPECT_LT(caps.total_dram_bytes(), strassen.total_dram_bytes());
}

TEST(CapsProfile, SimulatedFasterThanStrassenAtFullThreads) {
  for (std::size_t n : {2048u, 4096u}) {
    const auto caps =
        sim::simulate(kHaswell, caps_profile(n, kHaswell, 4), 4);
    const auto strassen = sim::simulate(
        kHaswell, strassen::strassen_profile(n, kHaswell, 4), 4);
    EXPECT_LT(caps.seconds, strassen.seconds) << n;
  }
}

TEST(CapsProfile, MixedBfsDfsPhaseLabels) {
  // n=4096, cutoff 64 => 6 levels; bfs depth 4 => levels 0-3 BFS, 4-5 DFS.
  const auto wp = caps_profile(4096, kHaswell, 4);
  bool saw_bfs = false;
  bool saw_dfs = false;
  for (const auto& ph : wp.phases) {
    if (ph.label.rfind("bfs-", 0) == 0) saw_bfs = true;
    if (ph.label.rfind("dfs-", 0) == 0) saw_dfs = true;
  }
  EXPECT_TRUE(saw_bfs);
  EXPECT_TRUE(saw_dfs);
}

TEST(CapsProfile, PureDfsWhenCutoffZero) {
  CapsCostOptions opts;
  opts.bfs_cutoff_depth = 0;
  const auto wp = caps_profile(1024, kHaswell, 4, opts);
  for (const auto& ph : wp.phases) {
    EXPECT_EQ(ph.label.rfind("bfs-", 0), std::string::npos) << ph.label;
  }
}

TEST(CapsProfile, PeakBufferGrowsWithBfsDepth) {
  CapsCostOptions opts;
  double prev = 0.0;
  for (std::size_t d : {0u, 1u, 2u, 4u}) {
    opts.bfs_cutoff_depth = d;
    const double peak = caps_peak_buffer_bytes(2048, opts);
    EXPECT_GE(peak, prev);
    prev = peak;
  }
}

}  // namespace
}  // namespace capow::capsalg
