// Tests for the EP model algebra, communication bounds, and crossover.
#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "capow/core/comm_bounds.hpp"
#include "capow/core/crossover.hpp"
#include "capow/core/ep_model.hpp"

namespace capow::core {
namespace {

TEST(EpModel, Eq1Basic) {
  EXPECT_DOUBLE_EQ(energy_performance(30.0, 2.0), 15.0);
  EXPECT_THROW(energy_performance(30.0, 0.0), std::invalid_argument);
  EXPECT_THROW(energy_performance(-1.0, 1.0), std::invalid_argument);
}

TEST(EpModel, Eq3PlaneSum) {
  const std::vector<double> planes{10.0, 5.5, 0.5};
  EXPECT_DOUBLE_EQ(plane_sum(planes), 16.0);
  const std::vector<double> bad{1.0, -0.5};
  EXPECT_THROW(plane_sum(bad), std::invalid_argument);
  EXPECT_DOUBLE_EQ(plane_sum(std::vector<double>{}), 0.0);
}

TEST(EpModel, Eq2MaxOverParallelUnits) {
  MixedMeasurement m;
  m.sequential = UnitMeasurement{{5.0}, 1.0};
  m.parallel_units = {
      UnitMeasurement{{20.0, 2.0}, 3.0},   // 22 W, 3 s
      UnitMeasurement{{25.0, 1.0}, 2.5},   // 26 W, 2.5 s
      UnitMeasurement{{10.0}, 4.0},        // 10 W, 4 s  (time critical path)
  };
  // EP_t = (5 + max(22,26,10)) / (1 + max(3,2.5,4)) = 31 / 5.
  EXPECT_DOUBLE_EQ(energy_performance_total(m), 31.0 / 5.0);
}

TEST(EpModel, Eq2ReducesToEq1WithoutSequentialPart) {
  MixedMeasurement m;
  m.parallel_units = {UnitMeasurement{{40.0}, 2.0}};
  EXPECT_DOUBLE_EQ(energy_performance_total(m),
                   energy_performance(40.0, 2.0));
}

TEST(EpModel, Eq2RejectsEmptyMeasurement) {
  MixedMeasurement m;  // zero time everywhere
  EXPECT_THROW(energy_performance_total(m), std::invalid_argument);
}

TEST(EpModel, Eq5ScalingRatio) {
  EXPECT_DOUBLE_EQ(scaling_ratio(30.0, 10.0), 3.0);
  EXPECT_THROW(scaling_ratio(1.0, 0.0), std::invalid_argument);
}

TEST(EpModel, ScalingSeriesSortsAndNormalizes) {
  const std::vector<std::pair<unsigned, double>> samples{
      {4, 40.0}, {1, 10.0}, {2, 18.0}, {3, 33.0}};
  const auto series = scaling_series(samples);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0].parallelism, 1u);
  EXPECT_DOUBLE_EQ(series[0].s, 1.0);
  EXPECT_DOUBLE_EQ(series[1].s, 1.8);
  EXPECT_DOUBLE_EQ(series[2].s, 3.3);
  EXPECT_DOUBLE_EQ(series[3].s, 4.0);
}

TEST(EpModel, ScalingSeriesRequiresBase) {
  const std::vector<std::pair<unsigned, double>> no_base{{2, 5.0}, {4, 9.0}};
  EXPECT_THROW(scaling_series(no_base), std::invalid_argument);
  const std::vector<std::pair<unsigned, double>> bad_ep{{1, 0.0}};
  EXPECT_THROW(scaling_series(bad_ep), std::invalid_argument);
}

TEST(EpModel, ClassifyIdealVsSuperlinear) {
  // Fig 1: below the linear threshold = ideal, above = superlinear.
  std::vector<ScalingPoint> ideal{
      {1, 10, 1.0}, {2, 19, 1.9}, {4, 38, 3.8}};
  EXPECT_EQ(classify_scaling(ideal), ScalingClass::kIdeal);

  std::vector<ScalingPoint> super{
      {1, 10, 1.0}, {2, 25, 2.5}, {4, 60, 6.0}};
  EXPECT_EQ(classify_scaling(super), ScalingClass::kSuperlinear);

  std::vector<ScalingPoint> mixed{
      {1, 10, 1.0}, {2, 25, 2.5}, {4, 38, 3.8}};
  EXPECT_EQ(classify_scaling(mixed), ScalingClass::kMixed);
}

TEST(EpModel, ClassifyToleranceAbsorbsNoise) {
  std::vector<ScalingPoint> barely{{1, 10, 1.0}, {4, 40.4, 4.04}};
  EXPECT_EQ(classify_scaling(barely, 0.02), ScalingClass::kIdeal);
  EXPECT_EQ(classify_scaling(barely, 0.001), ScalingClass::kSuperlinear);
}

TEST(EpModel, ScalingClassNames) {
  EXPECT_EQ(to_string(ScalingClass::kIdeal), "ideal");
  EXPECT_EQ(to_string(ScalingClass::kSuperlinear), "superlinear");
  EXPECT_EQ(to_string(ScalingClass::kMixed), "mixed");
}

TEST(CommBounds, StrassenExponent) {
  EXPECT_NEAR(strassen_exponent(), 2.807, 1e-3);
}

TEST(CommBounds, HandComputedPoint) {
  // With M = n^2 the memory term is n^w0 / (P * n^(w0-2)) = n^2 / P.
  const double n = 1024.0;
  const double w = caps_communication_bound_words(1024, 4, n * n);
  const double memory_term = n * n / 4.0;
  const double bandwidth_term = n * n / std::pow(4.0, 2.0 / strassen_exponent());
  EXPECT_NEAR(w, std::max(memory_term, bandwidth_term), 1e-6);
}

TEST(CommBounds, StrassenBeatsClassicalForLargeProblems) {
  const double m_words = 1 << 20;
  EXPECT_LT(caps_communication_bound_words(8192, 4, m_words),
            classical_communication_bound_words(8192, 4, m_words));
}

TEST(CommBounds, MonotoneInProblemSize) {
  const double m_words = 1 << 17;
  double prev = 0.0;
  for (std::size_t n : {512u, 1024u, 2048u, 4096u}) {
    const double w = caps_communication_bound_words(n, 4, m_words);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(CommBounds, MoreMemoryNeverHurts) {
  EXPECT_GE(caps_communication_bound_words(4096, 4, 1 << 16),
            caps_communication_bound_words(4096, 4, 1 << 20));
}

TEST(CommBounds, Validation) {
  EXPECT_THROW(caps_communication_bound_words(0, 4, 100.0),
               std::invalid_argument);
  EXPECT_THROW(caps_communication_bound_words(64, 0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(classical_communication_bound_words(64, 4, 0.0),
               std::invalid_argument);
}

TEST(CommBounds, FastMemoryPerCore) {
  const auto m = machine::haswell_e3_1225();
  // 8 MB LLC over 4 cores = 2 MB = 262144 doubles.
  EXPECT_DOUBLE_EQ(fast_memory_words_per_core(m), 262144.0);
}

TEST(Crossover, Eq9Formula) {
  // n = 480 * y / z.
  EXPECT_DOUBLE_EQ(strassen_crossover_dimension(1000.0, 100.0), 4800.0);
  EXPECT_THROW(strassen_crossover_dimension(0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(strassen_crossover_dimension(1.0, -1.0),
               std::invalid_argument);
}

TEST(Crossover, PaperPlatformCrossoverNearLargestMeasuredSize) {
  // On the paper's compute-rich platform Eq 9 places the crossover near
  // n ~ 4000 — at/above every size whose Strassen slowdown the paper
  // measured. (The *empirical* crossover lies further out because Eq 9
  // assumes the recursing multiplier runs at the tuned-GEMM rate; see
  // EXPERIMENTS.md.)
  const auto m = machine::haswell_e3_1225();
  const double n = strassen_crossover_dimension(m, 0.42);
  EXPECT_GT(n, 2048.0);
  EXPECT_LT(n, 16384.0);
  EXPECT_TRUE(crossover_fits_in_memory(m, n));
  EXPECT_FALSE(crossover_fits_in_memory(m, 16384.0));
}

TEST(Crossover, BandwidthRichMachineCrossesEarlier) {
  const double base =
      strassen_crossover_dimension(machine::haswell_e3_1225(), 0.42);
  const double quad =
      strassen_crossover_dimension(machine::haswell_quad_channel(), 0.42);
  EXPECT_NEAR(quad, base / 4.0, 1e-9);
}

TEST(Crossover, EfficiencyValidation) {
  const auto m = machine::haswell_e3_1225();
  EXPECT_THROW(strassen_crossover_dimension(m, 0.0), std::invalid_argument);
  EXPECT_THROW(strassen_crossover_dimension(m, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace capow::core
