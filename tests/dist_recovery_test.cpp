// Tests for elastic recovery: rank.kill scheduling, the three
// RecoveryPolicy modes, failed-set agreement, conservation with
// discard accounting, determinism of the recovered surface, and the
// harness-facing kRecovered plumbing.
#include <cstring>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "capow/blas/gemm_ref.hpp"
#include "capow/dist/comm.hpp"
#include "capow/dist/dist_caps.hpp"
#include "capow/dist/recovery.hpp"
#include "capow/dist/summa.hpp"
#include "capow/fault/fault.hpp"
#include "capow/harness/checkpoint.hpp"
#include "capow/harness/experiment.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"

namespace capow::dist {
namespace {

using linalg::Matrix;
using linalg::random_matrix;

bool bit_identical(const Matrix& x, const Matrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         std::memcmp(x.data(), y.data(),
                     x.rows() * x.cols() * sizeof(double)) == 0;
}

struct SummaRun {
  Matrix c;
  RecoveryReport report;
  CommMatrix cumulative;
  CommMatrix final_generation;
  /// ctx.failed_ranks each physical rank observed in its last recovered
  /// generation (empty for ranks that never ran a recovered generation).
  std::vector<std::vector<int>> observed_failed;
};

/// Resilient SUMMA under `policy`, optionally with a fault spec armed.
SummaRun run_summa(int ranks, std::size_t n, RecoveryPolicy policy,
                   const std::string& faults, const Matrix& a,
                   const Matrix& b) {
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<fault::FaultScope> scope;
  if (!faults.empty()) {
    injector = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::parse(faults));
    scope = std::make_unique<fault::FaultScope>(*injector);
  }
  SummaRun out;
  out.c = Matrix(n, n);
  out.observed_failed.resize(static_cast<std::size_t>(ranks));
  std::mutex observed_mutex;

  World world(ranks);
  RecoveryOptions opts;
  opts.policy = policy;
  PanelCacheSet cache(ranks);
  cache.enabled = policy == RecoveryPolicy::kRespawn;

  out.report = world.run_elastic(
      opts, [&](Communicator& comm, const RecoveryContext& ctx) {
        if (ctx.recovered()) {
          const std::lock_guard<std::mutex> lock(observed_mutex);
          out.observed_failed[static_cast<std::size_t>(comm.phys())] =
              ctx.failed_ranks;
        }
        Matrix empty;
        const bool root = comm.rank() == 0;
        summa_multiply_resilient(comm, ctx, cache,
                                 root ? a.view() : empty.view(),
                                 root ? b.view() : empty.view(),
                                 root ? out.c.view() : empty.view());
      });
  out.cumulative = world.comm_stats();
  out.final_generation = world.final_generation_stats();
  return out;
}

Matrix run_dist_caps(int ranks, std::size_t n, RecoveryPolicy policy,
                     const std::string& faults, const Matrix& a,
                     const Matrix& b, RecoveryReport* report = nullptr) {
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<fault::FaultScope> scope;
  if (!faults.empty()) {
    injector = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::parse(faults));
    scope = std::make_unique<fault::FaultScope>(*injector);
  }
  Matrix c(n, n);
  World world(ranks);
  RecoveryOptions opts;
  opts.policy = policy;
  DistCapsOptions copts;
  copts.local.base_cutoff = 16;
  const RecoveryReport rep = world.run_elastic(
      opts, [&](Communicator& comm, const RecoveryContext& ctx) {
        Matrix empty;
        const bool root = comm.rank() == 0;
        dist_caps_multiply_resilient(comm, ctx, root ? a.view() : empty.view(),
                                     root ? b.view() : empty.view(),
                                     root ? c.view() : empty.view(), copts);
      });
  if (report != nullptr) *report = rep;
  return c;
}

// --- WorldOptions validation (constructor-time policy checks) --------

TEST(WorldOptions, RejectsNonPositiveKnobs) {
  WorldOptions bad_timeout;
  bad_timeout.recv_timeout_seconds = 0.0;
  EXPECT_THROW(World(2, bad_timeout), std::invalid_argument);
  bad_timeout.recv_timeout_seconds = -1.0;
  EXPECT_THROW(World(2, bad_timeout), std::invalid_argument);

  WorldOptions bad_attempts;
  bad_attempts.max_send_attempts = 0;
  EXPECT_THROW(World(2, bad_attempts), std::invalid_argument);
  bad_attempts.max_send_attempts = -3;
  EXPECT_THROW(World(2, bad_attempts), std::invalid_argument);

  WorldOptions bad_backoff;
  bad_backoff.retry_backoff_us = 0.0;
  EXPECT_THROW(World(2, bad_backoff), std::invalid_argument);
  bad_backoff.retry_backoff_us = -50.0;
  EXPECT_THROW(World(2, bad_backoff), std::invalid_argument);

  EXPECT_NO_THROW(World(2, WorldOptions{}));
}

// --- abort: run() semantics are preserved ----------------------------

TEST(RankKill, PlainRunSurfacesRankKilledAsRootCause) {
  fault::FaultInjector injector(
      fault::FaultPlan::parse("rank.kill=1/3@2,seed=5"));
  fault::FaultScope scope(injector);
  World world(3);
  try {
    world.run([](Communicator& comm) {
      comm.barrier();  // epoch 1 everywhere
      comm.barrier();  // rank 1 dies here; peers get CommError
    });
    FAIL() << "expected RankKilled";
  } catch (const RankKilled& e) {
    // The kill is the root cause; the secondary CommErrors it triggered
    // in the blocked peers must not shadow it.
    EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos);
  }
  EXPECT_EQ(world.failed_ranks(), std::vector<int>{1});
  EXPECT_EQ(injector.count(fault::Event::kRankKill), 1u);
}

TEST(RankKill, AbortPolicyRethrowsLikeRun) {
  const std::size_t n = 48;
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  EXPECT_THROW(
      run_summa(4, n, RecoveryPolicy::kAbort, "rank.kill=2/4@5,seed=42", a, b),
      RankKilled);
}

TEST(RankKill, MultiVictimAbortPicksLowestRankRootCause) {
  // Two ranks die at the same epoch; the rethrown root cause must be
  // rank 1's (lowest physical rank), deterministically — not whichever
  // thread lost the race.
  fault::FaultInjector injector(fault::FaultPlan::parse(
      "rank.kill=1/4@2,rank.kill=2/4@2,seed=5"));
  fault::FaultScope scope(injector);
  for (int attempt = 0; attempt < 5; ++attempt) {
    World world(4);
    try {
      world.run([](Communicator& comm) {
        comm.barrier();
        comm.barrier();
      });
      FAIL() << "expected RankKilled";
    } catch (const RankKilled& e) {
      EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos)
          << e.what();
    }
    EXPECT_EQ(world.failed_ranks(), (std::vector<int>{1, 2}));
  }
}

// --- respawn: bit-identical recovery ---------------------------------

TEST(Respawn, SummaRecoversBitIdenticalToFaultFree) {
  const std::size_t n = 48;
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  const SummaRun baseline =
      run_summa(4, n, RecoveryPolicy::kRespawn, "", a, b);
  ASSERT_FALSE(baseline.report.recovered);

  reset_recovery_counters();
  const SummaRun chaos = run_summa(4, n, RecoveryPolicy::kRespawn,
                                   "rank.kill=2/4@5,seed=42", a, b);
  EXPECT_TRUE(chaos.report.recovered);
  EXPECT_EQ(chaos.report.recoveries, 1);
  EXPECT_EQ(chaos.report.failed_ranks, std::vector<int>{2});
  EXPECT_TRUE(bit_identical(chaos.c, baseline.c));
  EXPECT_TRUE(chaos.cumulative.conserved());
  EXPECT_EQ(rank_failures_total(), 1u);
  EXPECT_EQ(recoveries_total(), 1u);
  // Every survivor (and the respawned rank) agreed on the same failed
  // set through the in-band bitmap round.
  for (const auto& observed : chaos.observed_failed) {
    EXPECT_EQ(observed, std::vector<int>{2});
  }
}

TEST(Respawn, DistCapsRecoversBitIdenticalEvenWhenRootDies) {
  const std::size_t n = 64;
  Matrix a = random_matrix(n, n, 3), b = random_matrix(n, n, 4);
  const Matrix baseline =
      run_dist_caps(4, n, RecoveryPolicy::kRespawn, "", a, b);
  RecoveryReport report;
  const Matrix chaos = run_dist_caps(4, n, RecoveryPolicy::kRespawn,
                                     "rank.kill=0/4@3,seed=7", a, b, &report);
  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(report.failed_ranks, std::vector<int>{0});
  EXPECT_TRUE(bit_identical(chaos, baseline));
}

TEST(Respawn, AdjacentVictimsFallBackToRescatterAndStayBitIdentical) {
  // Victims 1 and 2 are buddies (1's replica lives on 2), so the panel
  // cache cannot cover the failed set; the resilient kernel must fall
  // back to a full re-scatter — and still recompute bit-identically.
  const std::size_t n = 48;
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  const SummaRun baseline =
      run_summa(4, n, RecoveryPolicy::kRespawn, "", a, b);
  const SummaRun chaos =
      run_summa(4, n, RecoveryPolicy::kRespawn,
                "rank.kill=1/4@5,rank.kill=2/4@5,seed=42", a, b);
  EXPECT_TRUE(chaos.report.recovered);
  EXPECT_EQ(chaos.report.failed_ranks, (std::vector<int>{1, 2}));
  EXPECT_TRUE(bit_identical(chaos.c, baseline.c));
  EXPECT_TRUE(chaos.cumulative.conserved());
}

// --- shrink: correct on the survivors --------------------------------

TEST(Shrink, SummaCorrectOnSurvivors) {
  const std::size_t n = 48;
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  Matrix expect(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());

  const SummaRun chaos = run_summa(4, n, RecoveryPolicy::kShrink,
                                   "rank.kill=1/4@5,seed=42", a, b);
  EXPECT_TRUE(chaos.report.recovered);
  EXPECT_EQ(chaos.report.failed_ranks, std::vector<int>{1});
  EXPECT_TRUE(linalg::allclose(chaos.c.view(), expect.view(), 1e-9, 1e-9));
  EXPECT_TRUE(chaos.cumulative.conserved());
  // The dead rank never observes a recovered generation; the survivors
  // all agreed on {1}.
  EXPECT_TRUE(chaos.observed_failed[1].empty());
  for (int phys : {0, 2, 3}) {
    EXPECT_EQ(chaos.observed_failed[static_cast<std::size_t>(phys)],
              std::vector<int>{1})
        << "phys " << phys;
  }
}

TEST(Shrink, DistCapsRecoversWhenRootDies) {
  const std::size_t n = 64;
  Matrix a = random_matrix(n, n, 3), b = random_matrix(n, n, 4);
  Matrix expect(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  RecoveryReport report;
  const Matrix chaos = run_dist_caps(4, n, RecoveryPolicy::kShrink,
                                     "rank.kill=0/4@3,seed=7", a, b, &report);
  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(report.failed_ranks, std::vector<int>{0});
  EXPECT_TRUE(linalg::allclose(chaos.view(), expect.view(), 1e-9, 1e-9));
}

TEST(Shrink, MultiVictimFailedSetAndFinalSurfaceAreDeterministic) {
  // Satellite 4: fixed seed, two independent executions -> identical
  // agreed failed set, identical final-generation comm matrix, and
  // bit-identical output.
  const std::size_t n = 48;
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  const auto execute = [&] {
    return run_summa(4, n, RecoveryPolicy::kShrink,
                     "rank.kill=1/4@5,rank.kill=3/4@5,seed=42", a, b);
  };
  const SummaRun first = execute();
  const SummaRun second = execute();
  EXPECT_EQ(first.report.failed_ranks, (std::vector<int>{1, 3}));
  EXPECT_EQ(second.report.failed_ranks, first.report.failed_ranks);
  EXPECT_TRUE(bit_identical(first.c, second.c));
  EXPECT_TRUE(
      first.final_generation.deterministic_equal(second.final_generation));
  EXPECT_EQ(first.observed_failed, second.observed_failed);
}

// --- conservation with discard accounting ----------------------------

TEST(Recovery, FlushedStaleTrafficKeepsConservation) {
  // Rank 1 delivers one message to rank 0 (who never receives it) and
  // dies at its second operation. The recovery flush must account the
  // orphaned delivery as discarded so the cumulative matrix still
  // closes: delivered == received + discarded, dead rank's row retained.
  fault::FaultInjector injector(
      fault::FaultPlan::parse("rank.kill=1/4@2,seed=5"));
  fault::FaultScope scope(injector);
  World world(4);
  RecoveryOptions opts;
  opts.policy = RecoveryPolicy::kShrink;
  world.run_elastic(opts, [](Communicator& comm, const RecoveryContext& ctx) {
    if (ctx.recovered()) return;
    if (comm.rank() == 1) {
      comm.send(0, 77, std::vector<double>{1.0, 2.0, 3.0});  // epoch 1
    }
    comm.barrier();  // rank 1 dies at epoch 2; rank 0 never recvs 77
  });
  const CommMatrix& m = world.comm_stats();
  EXPECT_EQ(m.edge(1, 0).messages, 1u);
  EXPECT_EQ(m.edge(1, 0).recv_messages, 0u);
  EXPECT_EQ(m.edge(1, 0).discarded_messages, 1u);
  EXPECT_EQ(m.edge(1, 0).discarded_bytes, 3u * sizeof(double));
  EXPECT_TRUE(m.conserved());
  EXPECT_EQ(world.failed_ranks(), std::vector<int>{1});
}

// --- satellite 2: send backoff aborts on world death -----------------

TEST(Recovery, SendBackoffAbortsWhenWorldDies) {
  // Every delivery drops, so the send enters its retry ladder — with
  // this backoff the full schedule would sleep for minutes. Rank 1
  // fails immediately; the sender must observe the poisoned world
  // during its backoff sleep and abort in ~milliseconds, not sleep the
  // ladder out.
  fault::FaultInjector injector(
      fault::FaultPlan::parse("comm.drop=1,seed=3"));
  fault::FaultScope scope(injector);
  WorldOptions options;
  options.retry_backoff_us = 500000.0;  // 0.5 s first step, doubling
  World world(2, options);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(world.run([](Communicator& comm) {
                 if (comm.rank() == 0) {
                   comm.send(1, 9, std::vector<double>{1.0});
                 } else {
                   throw std::runtime_error("rank1 dies");
                 }
               }),
               std::runtime_error);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(seconds, 5.0) << "sender slept out its backoff ladder";
}

// --- clean elastic runs ----------------------------------------------

TEST(Recovery, CleanElasticRunReportsNoRecovery) {
  const std::size_t n = 48;
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  const SummaRun run = run_summa(4, n, RecoveryPolicy::kRespawn, "", a, b);
  EXPECT_FALSE(run.report.recovered);
  EXPECT_EQ(run.report.recoveries, 0);
  EXPECT_TRUE(run.report.failed_ranks.empty());
  EXPECT_EQ(run.report.recovery_ns, 0u);

  Matrix expect(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  EXPECT_TRUE(linalg::allclose(run.c.view(), expect.view(), 1e-9, 1e-9));
}

TEST(RecoveryPolicy, NamesRoundTrip) {
  for (RecoveryPolicy p : {RecoveryPolicy::kAbort, RecoveryPolicy::kShrink,
                           RecoveryPolicy::kRespawn}) {
    EXPECT_EQ(parse_recovery_policy(recovery_policy_name(p)), p);
  }
  EXPECT_THROW(parse_recovery_policy("bogus"), std::invalid_argument);
}

// --- harness plumbing: kRecovered and checkpoint fields --------------

TEST(RecoveryHarness, RunStatusNameAndCheckpointRoundTrip) {
  EXPECT_STREQ(harness::to_string(harness::RunStatus::kRecovered),
               "recovered");

  harness::ResultRecord r;
  r.algorithm = harness::Algorithm::kCaps;
  r.n = 512;
  r.threads = 2;
  r.seconds = 1.5;
  r.status = harness::RunStatus::kRecovered;
  r.attempts = 1;
  r.failed_ranks = {1, 3};
  r.recovery_ns = 123456789;
  const std::string line = harness::checkpoint_line(r);
  const auto parsed = harness::parse_checkpoint_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, harness::RunStatus::kRecovered);
  EXPECT_EQ(parsed->failed_ranks, (std::vector<int>{1, 3}));
  EXPECT_EQ(parsed->recovery_ns, 123456789u);

  // Records that never recovered serialize without the new fields, so
  // pre-recovery checkpoints stay byte-compatible.
  harness::ResultRecord plain;
  plain.algorithm = harness::Algorithm::kOpenBlas;
  plain.n = 512;
  plain.threads = 1;
  const std::string plain_line = harness::checkpoint_line(plain);
  EXPECT_EQ(plain_line.find("failed_ranks"), std::string::npos);
  EXPECT_EQ(plain_line.find("recovery_ns"), std::string::npos);
  ASSERT_TRUE(harness::parse_checkpoint_line(plain_line).has_value());
}

}  // namespace
}  // namespace capow::dist
