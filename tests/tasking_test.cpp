// Tests for the tasking runtime (pool, task groups, parallel_for).
#include <atomic>
#include <functional>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "capow/tasking/parallel_for.hpp"
#include "capow/tasking/task_group.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace capow::tasking {
namespace {

TEST(ThreadPool, InlinePoolExecutesImmediately) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  EXPECT_EQ(pool.concurrency(), 1u);
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, WorkerPoolExecutesSubmissions) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.worker_count(), 2u);
  std::atomic<int> count{0};
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) {
    group.run([&] { count.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WorkerIndexInsideAndOutside) {
  EXPECT_EQ(ThreadPool::worker_index(), -1);
  ThreadPool pool(2);
  std::atomic<bool> ok{true};
  std::atomic<int> on_worker{0};
  TaskGroup group(pool);
  for (int i = 0; i < 16; ++i) {
    group.run([&] {
      // Tasks run on a pool worker (index in [0, 2)) or on the waiting
      // main thread when it helps (-1).
      const int w = ThreadPool::worker_index();
      if (w >= 2) ok = false;
      if (w >= 0) on_worker.fetch_add(1);
    });
  }
  group.wait();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(ThreadPool::worker_index(), -1);
}

TEST(ThreadPool, TryRunOneFromExternalThread) {
  // A pool with workers kept busy still lets outsiders help.
  ThreadPool pool(0);
  EXPECT_FALSE(pool.try_run_one());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    TaskGroup group(pool);
    for (int i = 0; i < 50; ++i) group.run([&] { count.fetch_add(1); });
    group.wait();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(TaskGroup, WaitIsReusable) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  std::atomic<int> count{0};
  group.run([&] { count.fetch_add(1); });
  group.wait();
  group.run([&] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(TaskGroup, PropagatesFirstException) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.run([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // After the throw the group is clean and reusable.
  group.run([] {});
  EXPECT_NO_THROW(group.wait());
}

TEST(TaskGroup, ExceptionDoesNotCancelSiblings) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  std::atomic<int> count{0};
  group.run([] { throw std::logic_error("x"); });
  for (int i = 0; i < 10; ++i) group.run([&] { count.fetch_add(1); });
  EXPECT_THROW(group.wait(), std::logic_error);
  EXPECT_EQ(count.load(), 10);
}

TEST(TaskGroup, ManualCancelSkipsPollingTasks) {
  ThreadPool pool(0);  // inline pool: deterministic execution order
  TaskGroup group(pool);
  int executed = 0;
  group.run([&] { ++executed; });
  EXPECT_FALSE(group.cancelled());
  group.cancel();
  EXPECT_TRUE(group.cancelled());
  // A polling task sees the flag and skips its work; a non-polling task
  // keeps its exact pre-cancellation semantics (it still runs).
  group.run([&] {
    if (group.cancelled()) return;
    ++executed;
  });
  group.run([&] { ++executed; });
  group.wait();
  EXPECT_EQ(executed, 2);
  EXPECT_FALSE(group.cancelled());  // wait() re-arms the group
}

TEST(TaskGroup, ThrowingTaskCancelsCooperatively) {
  ThreadPool pool(0);
  TaskGroup group(pool);
  group.run([] { throw std::runtime_error("boom"); });
  // The inline pool already ran (and captured) the throwing task, so
  // the cancellation flag is visible before wait().
  EXPECT_TRUE(group.cancelled());
  int skipped = 0;
  group.run([&] {
    if (group.cancelled()) ++skipped;
  });
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(skipped, 1);
  EXPECT_FALSE(group.cancelled());  // cleared even on the throwing path
}

TEST(TaskGroup, CancelIsVisibleAcrossWorkers) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.cancel();
  std::atomic<int> saw{0};
  for (int i = 0; i < 16; ++i) {
    group.run([&] {
      if (group.cancelled()) saw.fetch_add(1);
    });
  }
  group.wait();
  EXPECT_EQ(saw.load(), 16);
}

// The critical property for Strassen: nested spawn/wait must complete on
// a 1-worker pool (the waiting parent helps run its children).
TEST(TaskGroup, NestedRecursionOnSingleWorker) {
  ThreadPool pool(1);
  std::atomic<int> leaves{0};
  // 3-level, 7-ary recursion mimicking the Strassen task tree.
  std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    TaskGroup group(pool);
    for (int i = 0; i < 7; ++i) {
      group.run([&, depth] { recurse(depth - 1); });
    }
    group.wait();
  };
  recurse(3);
  EXPECT_EQ(leaves.load(), 343);
}

TEST(TaskGroup, NestedRecursionOnMultipleWorkers) {
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    TaskGroup group(pool);
    for (int i = 0; i < 4; ++i) {
      group.run([&, depth] { recurse(depth - 1); });
    }
    group.wait();
  };
  recurse(4);
  EXPECT_EQ(leaves.load(), 256);
}

TEST(TaskGroup, InlinePoolRunsEagerly) {
  ThreadPool pool(0);
  TaskGroup group(pool);
  int order = 0;
  int first = -1;
  group.run([&] { first = order++; });
  EXPECT_EQ(first, 0);  // already executed
  group.wait();
}

struct ParallelForCase {
  unsigned workers;
  std::size_t begin;
  std::size_t end;
  std::size_t grain;
  Schedule schedule;
};

class ParallelForTest : public ::testing::TestWithParam<ParallelForCase> {};

TEST_P(ParallelForTest, CoversRangeExactlyOnce) {
  const auto p = GetParam();
  ThreadPool pool(p.workers);
  std::vector<std::atomic<int>> hits(p.end > p.begin ? p.end - p.begin : 0);
  parallel_for(
      pool, p.begin, p.end,
      [&](std::size_t lo, std::size_t hi) {
        ASSERT_LE(lo, hi);
        for (std::size_t i = lo; i < hi; ++i) {
          hits[i - p.begin].fetch_add(1);
        }
      },
      p.grain, p.schedule);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i + p.begin;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelForTest,
    ::testing::Values(
        ParallelForCase{0, 0, 100, 1, Schedule::kStatic},
        ParallelForCase{1, 0, 100, 1, Schedule::kStatic},
        ParallelForCase{2, 0, 100, 1, Schedule::kStatic},
        ParallelForCase{4, 0, 1000, 1, Schedule::kStatic},
        ParallelForCase{4, 5, 17, 1, Schedule::kStatic},
        ParallelForCase{4, 0, 3, 1, Schedule::kStatic},
        ParallelForCase{3, 0, 100, 16, Schedule::kStatic},
        ParallelForCase{2, 0, 100, 1, Schedule::kDynamic},
        ParallelForCase{4, 0, 1000, 7, Schedule::kDynamic},
        ParallelForCase{4, 10, 11, 4, Schedule::kDynamic},
        ParallelForCase{4, 0, 64, 64, Schedule::kDynamic}));

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 5, 5, [&](std::size_t, std::size_t) { ran = true; });
  parallel_for(pool, 7, 3, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, ZeroGrainTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  parallel_for(
      pool, 0, 10,
      [&](std::size_t lo, std::size_t hi) { total.fetch_add(hi - lo); }, 0);
  EXPECT_EQ(total.load(), 10u);
}

TEST(ParallelFor, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t lo, std::size_t) {
                     if (lo == 0) throw std::runtime_error("body");
                   }),
      std::runtime_error);
}

TEST(ParallelForEach, VisitsEveryIndex) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  parallel_for_each(pool, 0, 64, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, DynamicScheduleBalancesUnevenWork) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  parallel_for(
      pool, 0, 100,
      [&](std::size_t lo, std::size_t hi) { total.fetch_add(hi - lo); }, 3,
      Schedule::kDynamic);
  EXPECT_EQ(total.load(), 100u);
}

}  // namespace
}  // namespace capow::tasking
