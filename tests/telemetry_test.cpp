#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <thread>

#include "capow/harness/telemetry_export.hpp"
#include "capow/machine/machine.hpp"
#include "capow/rapl/msr.hpp"
#include "capow/tasking/parallel_for.hpp"
#include "capow/tasking/thread_pool.hpp"
#include "capow/telemetry/export.hpp"
#include "capow/telemetry/power_sampler.hpp"
#include "capow/telemetry/ring.hpp"
#include "capow/telemetry/telemetry.hpp"
#include "capow/telemetry/tracer.hpp"

namespace {

using namespace capow;
using telemetry::EventKind;
using telemetry::EventRecord;
using telemetry::EventRing;
using telemetry::SpanScope;
using telemetry::TraceEvent;
using telemetry::Tracer;
using telemetry::TracingScope;

EventRecord make_record(const char* name, std::uint64_t t) {
  EventRecord r;
  r.name = name;
  r.category = "test";
  r.t_begin_ns = t;
  r.t_end_ns = t + 1;
  return r;
}

TEST(EventRing, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(1).capacity(), 8u);
  EXPECT_EQ(EventRing(9).capacity(), 16u);
  EXPECT_EQ(EventRing(64).capacity(), 64u);
}

TEST(EventRing, RetainsAllWhenUnderCapacity) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) ring.push(make_record("e", i));
  EXPECT_EQ(ring.pushed(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(snap[i].t_begin_ns, i);
  }
}

TEST(EventRing, WraparoundKeepsNewestAndCountsDropped) {
  EventRing ring(8);  // capacity exactly 8
  for (std::uint64_t i = 0; i < 20; ++i) ring.push(make_record("e", i));
  EXPECT_EQ(ring.pushed(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Oldest retained first: records 12..19.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(snap[i].t_begin_ns, 12 + i);
  }
}

TEST(Interning, SameStringSamePointer) {
  const char* a = telemetry::intern("telemetry_test.interned");
  const char* b = telemetry::intern(std::string("telemetry_test.intern") +
                                    "ed");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "telemetry_test.interned");
  EXPECT_NE(a, telemetry::intern("telemetry_test.other"));
}

TEST(SpanScope, InactiveWithoutTracer) {
  ASSERT_EQ(Tracer::active(), nullptr);
  SpanScope span("telemetry_test.orphan", "test");
  EXPECT_FALSE(span.active());
}

TEST(Tracer, CollectsSpansInstantsAndCounters) {
  Tracer tracer;
  {
    TracingScope scope(tracer);
    {
      SpanScope span("telemetry_test.outer", "test", "depth",
                     std::int64_t{1});
      SpanScope inner("telemetry_test.inner", "test");
      EXPECT_TRUE(span.active());
      EXPECT_TRUE(inner.active());
    }
    telemetry::instant("telemetry_test.mark", "test");
    telemetry::counter("telemetry_test.value", 42.5);
  }
  const auto events = tracer.collect();
  bool saw_outer = false, saw_inner = false, saw_mark = false,
       saw_counter = false;
  for (const auto& e : events) {
    const std::string name = e.rec.name;
    if (name == "telemetry_test.outer") {
      saw_outer = true;
      EXPECT_EQ(e.rec.kind, EventKind::kSpan);
      EXPECT_GE(e.rec.t_end_ns, e.rec.t_begin_ns);
      ASSERT_STREQ(e.rec.arg_name[0], "depth");
      EXPECT_EQ(e.rec.arg[0], 1);
    } else if (name == "telemetry_test.inner") {
      saw_inner = true;
    } else if (name == "telemetry_test.mark") {
      saw_mark = true;
      EXPECT_EQ(e.rec.kind, EventKind::kInstant);
    } else if (name == "telemetry_test.value") {
      saw_counter = true;
      EXPECT_EQ(e.rec.kind, EventKind::kCounter);
      EXPECT_DOUBLE_EQ(e.rec.value, 42.5);
    }
  }
  EXPECT_TRUE(saw_outer && saw_inner && saw_mark && saw_counter);
}

TEST(Tracer, NestedSpansCloseInOrder) {
  Tracer tracer;
  {
    TracingScope scope(tracer);
    SpanScope outer("telemetry_test.nest_outer", "test");
    {
      SpanScope inner("telemetry_test.nest_inner", "test");
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  const auto events = tracer.collect();
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const auto& e : events) {
    const std::string name = e.rec.name;
    if (name == "telemetry_test.nest_outer") outer = &e;
    if (name == "telemetry_test.nest_inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Inner nests inside outer on the timeline.
  EXPECT_LE(outer->rec.t_begin_ns, inner->rec.t_begin_ns);
  EXPECT_GE(outer->rec.t_end_ns, inner->rec.t_end_ns);
}

TEST(Tracer, MultiThreadSpansCarryDistinctTidsAndSortByTime) {
  Tracer tracer;
  {
    TracingScope scope(tracer);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([] {
        for (int i = 0; i < 16; ++i) {
          SpanScope span("telemetry_test.mt_work", "test");
          std::this_thread::yield();
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const auto events = tracer.collect();
  std::set<std::uint64_t> tids;
  std::uint64_t last_begin = 0;
  std::size_t work_spans = 0;
  for (const auto& e : events) {
    EXPECT_GE(e.rec.t_begin_ns, tracer.start_ns());
    EXPECT_GE(e.rec.t_begin_ns, last_begin);  // sorted by begin time
    last_begin = e.rec.t_begin_ns;
    if (std::string(e.rec.name) == "telemetry_test.mt_work") {
      ++work_spans;
      tids.insert(e.tid);
    }
  }
  EXPECT_EQ(work_spans, 64u);
  EXPECT_EQ(tids.size(), 4u);  // one ring per thread, distinct ids
}

TEST(Tracer, SessionFiltersOutEarlierEvents) {
  {
    Tracer first;
    TracingScope scope(first);
    SpanScope span("telemetry_test.stale", "test");
  }
  Tracer second;
  {
    TracingScope scope(second);
    SpanScope span("telemetry_test.fresh", "test");
  }
  bool saw_stale = false, saw_fresh = false;
  for (const auto& e : second.collect()) {
    const std::string name = e.rec.name;
    if (name == "telemetry_test.stale") saw_stale = true;
    if (name == "telemetry_test.fresh") saw_fresh = true;
  }
  EXPECT_FALSE(saw_stale);
  EXPECT_TRUE(saw_fresh);
}

#if CAPOW_TELEMETRY_ENABLED
TEST(TelemetryMacros, EmitSpansUnderActiveTracer) {
  Tracer tracer;
  {
    TracingScope scope(tracer);
    {
      CAPOW_TSPAN("telemetry_test.macro_span", "test");
      CAPOW_TSPAN_ARGS2("telemetry_test.macro_args", "test", "a", 3, "b",
                        4);
    }
    CAPOW_TINSTANT("telemetry_test.macro_instant", "test");
    CAPOW_TCOUNTER("telemetry_test.macro_counter", 7.0);
  }
  std::set<std::string> names;
  for (const auto& e : tracer.collect()) names.insert(e.rec.name);
  EXPECT_TRUE(names.count("telemetry_test.macro_span"));
  EXPECT_TRUE(names.count("telemetry_test.macro_args"));
  EXPECT_TRUE(names.count("telemetry_test.macro_instant"));
  EXPECT_TRUE(names.count("telemetry_test.macro_counter"));
}

TEST(TelemetryMacros, ThreadPoolTasksAreTraced) {
  Tracer tracer;
  {
    TracingScope scope(tracer);
    tasking::ThreadPool pool(2);
    tasking::TaskGroup group(pool);
    for (int i = 0; i < 8; ++i) {
      group.run([] {});
    }
    group.wait();
  }
  std::size_t runs = 0, waits = 0;
  for (const auto& e : tracer.collect()) {
    const std::string name = e.rec.name;
    if (name == "task.run" || name == "task.run.help") ++runs;
    if (name == "taskgroup.wait") ++waits;
  }
  EXPECT_GE(runs, 8u);
  EXPECT_GE(waits, 1u);
}
#endif  // CAPOW_TELEMETRY_ENABLED

TEST(JsonObject, FieldTypesAndEscaping) {
  telemetry::JsonObject o;
  o.field("s", "a\"b\\c\n")
      .field("d", 1.5)
      .field("i", std::int64_t{-3})
      .field("u", std::uint64_t{7})
      .field("b", true)
      .raw("arr", "[1,2]");
  EXPECT_EQ(o.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\",\"d\":1.5,\"i\":-3,\"u\":7,"
            "\"b\":true,\"arr\":[1,2]}");
}

TEST(JsonEscape, ControlCharacters) {
  EXPECT_EQ(telemetry::json_escape(std::string_view("a\x01z", 3)),
            "a\\u0001z");
  EXPECT_EQ(telemetry::json_escape("t\tr\r"), "t\\tr\\r");
}

TEST(ChromeTraceWriter, EmitsWellFormedEventObjects) {
  telemetry::ChromeTraceWriter w;
  w.set_process_name(1, "proc");
  w.set_thread_name(1, 2, "thr");
  w.add_complete(1, 2, "span", "cat", 10.0, 5.0, {{"x", 1.0}});
  w.add_instant(1, 2, "mark", "cat", 11.0);
  w.add_counter(1, "power", 12.0, {{"package", 30.0}, {"pp0", 20.0}});
  EXPECT_EQ(w.event_count(), 5u);
  const std::string out = w.str();
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(out.find("\"dur\":5.000"), std::string::npos);
  EXPECT_NE(out.find("\"args\":{\"package\":30,\"pp0\":20}"),
            std::string::npos);
  EXPECT_NE(out.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(ChromeTraceWriter, ConvertsCollectedTracerEvents) {
  Tracer tracer;
  {
    TracingScope scope(tracer);
    SpanScope span("telemetry_test.exported", "test", "n",
                   std::int64_t{256});
    telemetry::counter("telemetry_test.exported_counter", 9.0);
  }
  telemetry::ChromeTraceWriter w;
  w.add_events(tracer.collect(), 1, tracer.start_ns());
  const std::string out = w.str();
  EXPECT_NE(out.find("telemetry_test.exported"), std::string::npos);
  EXPECT_NE(out.find("\"n\":256"), std::string::npos);
  EXPECT_NE(out.find("\"value\":9"), std::string::npos);
}

TEST(MetricsRegistry, TextExpositionShape) {
  telemetry::MetricsRegistry reg;
  reg.family("capow_test_metric", "A test metric", "gauge")
      .sample({{"algorithm", "CAPS"}, {"n", "512"}}, 1.25)
      .sample({{"algorithm", "CAPS"}, {"n", "1024"}}, 2.5);
  reg.set("capow_test_total", "A counter", {}, 3.0, "counter");
  const std::string text = reg.to_text();
  EXPECT_NE(text.find("# HELP capow_test_metric A test metric"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE capow_test_metric gauge"),
            std::string::npos);
  EXPECT_NE(
      text.find("capow_test_metric{algorithm=\"CAPS\",n=\"512\"} 1.25"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE capow_test_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("capow_test_total 3"), std::string::npos);
}

TEST(MetricsRegistry, LaterSampleOverwrites) {
  telemetry::MetricsRegistry reg;
  reg.family("m", "").sample({{"k", "v"}}, 1.0).sample({{"k", "v"}}, 2.0);
  EXPECT_NE(reg.to_text().find("m{k=\"v\"} 2"), std::string::npos);
  EXPECT_EQ(reg.to_text().find("m{k=\"v\"} 1"), std::string::npos);
}

TEST(PowerSampler, SamplesDepositedEnergyAsWatts) {
  rapl::SimulatedMsrDevice msr;
  telemetry::PowerSampler::Options opts;
  opts.interval = std::chrono::microseconds(200);
  telemetry::PowerSampler sampler(msr, opts);
  sampler.start();
  EXPECT_TRUE(sampler.running());
  EXPECT_THROW(sampler.start(), std::logic_error);
  // Deposit energy while the monitor polls; it should see nonzero
  // average power on both planes.
  for (int i = 0; i < 25; ++i) {
    msr.deposit(machine::PowerPlane::kPackage, 0.02);
    msr.deposit(machine::PowerPlane::kPP0, 0.01);
    std::this_thread::sleep_for(std::chrono::microseconds(400));
  }
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  const auto samples = sampler.samples();
  ASSERT_GE(samples.size(), 3u);
  double peak_pkg = 0.0, peak_pp0 = 0.0, last_t = -1.0;
  for (const auto& s : samples) {
    EXPECT_GT(s.t_seconds, last_t);  // strictly increasing timeline
    last_t = s.t_seconds;
    peak_pkg = std::max(peak_pkg, s.package_w);
    peak_pp0 = std::max(peak_pp0, s.pp0_w);
  }
  EXPECT_GT(peak_pkg, 0.0);
  EXPECT_GT(peak_pp0, 0.0);
}

TEST(PowerSampler, EmitsCounterEventsIntoActiveTracer) {
  Tracer tracer;
  rapl::SimulatedMsrDevice msr;
  telemetry::PowerSampler::Options opts;
  opts.interval = std::chrono::microseconds(200);
  telemetry::PowerSampler sampler(msr, opts);
  {
    TracingScope scope(tracer);
    sampler.start();
    for (int i = 0; i < 10; ++i) {
      msr.deposit(machine::PowerPlane::kPackage, 0.02);
      std::this_thread::sleep_for(std::chrono::microseconds(400));
    }
    sampler.stop();
  }
  std::size_t pkg = 0, pp0 = 0;
  for (const auto& e : tracer.collect()) {
    if (e.rec.kind != EventKind::kCounter) continue;
    const std::string name = e.rec.name;
    if (name == "package_w") ++pkg;
    if (name == "pp0_w") ++pp0;
  }
  EXPECT_GE(pkg, 1u);
  EXPECT_GE(pp0, 1u);
}

harness::ExperimentConfig small_config() {
  harness::ExperimentConfig cfg;
  cfg.sizes = {64, 128};
  cfg.thread_counts = {1, 2};
  cfg.quiesce_seconds = 0.0;
  return cfg;
}

TEST(HarnessExport, WorkProfileMatchesRunOneSwitch) {
  const auto cfg = small_config();
  for (auto a : harness::kAllAlgorithms) {
    const auto profile = harness::work_profile_for(cfg, a, 128, 2);
    EXPECT_FALSE(profile.phases.empty());
    EXPECT_GT(profile.total_flops(), 0.0);
  }
}

TEST(HarnessExport, ChromeTraceCoversEveryRunWithPowerTrack) {
  harness::ExperimentRunner runner(small_config());
  std::ostringstream os;
  harness::export_chrome_trace(runner, os);
  const std::string out = os.str();
  // 3 algorithms x 2 sizes x 2 thread counts = 12 run processes.
  for (const char* alg : {"OpenBLAS", "Strassen", "CAPS"}) {
    for (const char* n : {"64", "128"}) {
      for (const char* t : {"1", "2"}) {
        const std::string label =
            std::string(alg) + " n=" + n + " t=" + t;
        EXPECT_NE(out.find(label), std::string::npos) << label;
      }
    }
  }
  EXPECT_NE(out.find("\"cat\":\"phase\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"power_w\""), std::string::npos);
  EXPECT_NE(out.find("\"package\":"), std::string::npos);
  EXPECT_NE(out.find("\"pp0\":"), std::string::npos);
}

TEST(HarnessExport, JsonlHasOneRecordPerRun) {
  harness::ExperimentRunner runner(small_config());
  std::ostringstream os;
  harness::export_jsonl(runner, os);
  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"algorithm\":"), std::string::npos);
    EXPECT_NE(line.find("\"ep_w_per_s\":"), std::string::npos);
  }
  EXPECT_EQ(lines, 12u);
}

TEST(HarnessExport, MetricsLabelEveryConfiguration) {
  harness::ExperimentRunner runner(small_config());
  std::ostringstream os;
  harness::export_metrics(runner, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE capow_run_seconds gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE capow_flops_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("capow_package_watts{algorithm=\"Strassen\","
                      "n=\"128\",threads=\"2\"}"),
            std::string::npos);
  EXPECT_NE(text.find("capow_ep_watts_per_second{algorithm=\"CAPS\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// CAPOW_POWER_PERIOD_US / sampling jitter / dropped-event accounting

/// Scoped setenv so a failing assertion can't leak the variable into
/// later tests.
class EnvVar {
 public:
  EnvVar(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvVar() { ::unsetenv(name_); }
  EnvVar(const EnvVar&) = delete;
  EnvVar& operator=(const EnvVar&) = delete;

 private:
  const char* name_;
};

TEST(PowerSamplerPeriod, EnvOverridesDefaultPeriod) {
  EnvVar env("CAPOW_POWER_PERIOD_US", "2000");
  EXPECT_EQ(telemetry::PowerSampler::resolve_period(
                telemetry::PowerSampler::kDefaultPeriod),
            std::chrono::microseconds(2000));
  rapl::SimulatedMsrDevice msr;
  telemetry::PowerSampler sampler(msr);
  EXPECT_EQ(sampler.period(), std::chrono::microseconds(2000));
}

TEST(PowerSamplerPeriod, ExplicitIntervalBeatsEnv) {
  EnvVar env("CAPOW_POWER_PERIOD_US", "2000");
  telemetry::PowerSampler::Options opts;
  opts.interval = std::chrono::microseconds(300);
  rapl::SimulatedMsrDevice msr;
  telemetry::PowerSampler sampler(msr, opts);
  EXPECT_EQ(sampler.period(), std::chrono::microseconds(300));
}

TEST(PowerSamplerPeriod, EnvValuesAreClampedToValidRange) {
  {
    EnvVar env("CAPOW_POWER_PERIOD_US", "10");  // below 50 us floor
    EXPECT_EQ(telemetry::PowerSampler::resolve_period(
                  telemetry::PowerSampler::kDefaultPeriod),
              telemetry::PowerSampler::kMinPeriod);
  }
  {
    EnvVar env("CAPOW_POWER_PERIOD_US", "5000000");  // above 1 s cap
    EXPECT_EQ(telemetry::PowerSampler::resolve_period(
                  telemetry::PowerSampler::kDefaultPeriod),
              telemetry::PowerSampler::kMaxPeriod);
  }
}

TEST(PowerSamplerPeriod, InvalidEnvValuesFallBackToDefault) {
  for (const char* bad : {"abc", "12x", "-5", "0", ""}) {
    EnvVar env("CAPOW_POWER_PERIOD_US", bad);
    EXPECT_EQ(telemetry::PowerSampler::resolve_period(
                  telemetry::PowerSampler::kDefaultPeriod),
              telemetry::PowerSampler::kDefaultPeriod)
        << "value: '" << bad << "'";
  }
}

TEST(PowerSamplerPeriod, ExplicitIntervalIsClampedToo) {
  telemetry::PowerSampler::Options opts;
  opts.interval = std::chrono::microseconds(1);
  rapl::SimulatedMsrDevice msr;
  telemetry::PowerSampler sampler(msr, opts);
  EXPECT_EQ(sampler.period(), telemetry::PowerSampler::kMinPeriod);
}

TEST(PowerSamplerJitter, ObservedGapsAreConsistent) {
  rapl::SimulatedMsrDevice msr;
  telemetry::PowerSampler::Options opts;
  opts.interval = std::chrono::microseconds(200);
  telemetry::PowerSampler sampler(msr, opts);
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sampler.stop();

  const auto samples = sampler.samples();
  const auto jitter = sampler.jitter();
  ASSERT_GE(samples.size(), 2u);
  // One gap per sample: the session start is the zeroth timeline point.
  EXPECT_EQ(jitter.intervals, samples.size());
  EXPECT_GT(jitter.min_seconds, 0.0);
  EXPECT_LE(jitter.min_seconds, jitter.mean_seconds);
  EXPECT_LE(jitter.mean_seconds, jitter.max_seconds);
  // The scheduler can only make gaps longer than the period, never
  // (meaningfully) shorter.
  EXPECT_GE(jitter.max_seconds, 150e-6);
}

TEST(PowerSamplerJitter, RestartResetsTheStats) {
  rapl::SimulatedMsrDevice msr;
  telemetry::PowerSampler::Options opts;
  opts.interval = std::chrono::microseconds(200);
  telemetry::PowerSampler sampler(msr, opts);
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.stop();
  ASSERT_GE(sampler.jitter().intervals, 1u);
  sampler.start();
  sampler.stop();
  EXPECT_LT(sampler.jitter().intervals, 5u);  // fresh session, not summed
}

TEST(DroppedEvents, TotalGrowsWhenARingWrapsAndIsMonotonic) {
  const std::uint64_t before = telemetry::total_dropped_events();

  Tracer tracer(Tracer::Options{.ring_capacity = 8});
  std::uint64_t session_dropped = 0;
  {
    TracingScope scope(tracer);
    // A fresh thread registers its buffer under the session's tiny
    // capacity; pushing far more spans than 8 slots must shed.
    std::thread worker([] {
      for (int i = 0; i < 100; ++i) {
        telemetry::SpanScope span("drop.me", "test");
      }
    });
    worker.join();
    session_dropped = tracer.dropped();
  }

  const std::uint64_t after = telemetry::total_dropped_events();
  EXPECT_GE(session_dropped, 92u - 8u);  // at least pushed - capacity
  EXPECT_GE(after - before, session_dropped);
  EXPECT_GE(telemetry::total_dropped_events(), after);  // monotonic
}

}  // namespace
