// Stress and failure-injection tests: the runtime substrates under
// hostile load — deep nesting, exception storms, message floods, MSR
// accounting across many wraps.
#include <atomic>
#include <functional>
#include <stdexcept>

#include <gtest/gtest.h>

#include "capow/dist/comm.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"
#include "capow/rapl/msr.hpp"
#include "capow/strassen/strassen.hpp"
#include "capow/tasking/parallel_for.hpp"
#include "capow/tasking/task_group.hpp"
#include "capow/trace/counters.hpp"

namespace capow {
namespace {

TEST(Stress, DeepUnbalancedTaskRecursion) {
  // A lopsided spawn tree (one heavy child per level, many light ones)
  // on a tiny pool: completion proves the helping scheduler never
  // deadlocks regardless of shape.
  tasking::ThreadPool pool(2);
  std::atomic<int> leaves{0};
  std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    tasking::TaskGroup group(pool);
    group.run([&, depth] { recurse(depth - 1); });  // heavy spine
    for (int i = 0; i < 3; ++i) {
      group.run([&] { leaves.fetch_add(1); });
    }
    group.wait();
  };
  recurse(64);
  EXPECT_EQ(leaves.load(), 64 * 3 + 1);
}

TEST(Stress, ExceptionStormStillCompletesAllWork) {
  tasking::ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int round = 0; round < 20; ++round) {
    tasking::TaskGroup group(pool);
    for (int i = 0; i < 50; ++i) {
      group.run([&, i] {
        ran.fetch_add(1);
        if (i % 7 == 0) throw std::runtime_error("storm");
      });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
  }
  EXPECT_EQ(ran.load(), 20 * 50);
}

TEST(Stress, NestedParallelForInsideTasks) {
  tasking::ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  tasking::TaskGroup group(pool);
  for (int t = 0; t < 8; ++t) {
    group.run([&] {
      tasking::parallel_for(pool, 0, 200,
                            [&](std::size_t lo, std::size_t hi) {
                              total.fetch_add(hi - lo);
                            });
    });
  }
  group.wait();
  EXPECT_EQ(total.load(), 8u * 200u);
}

TEST(Stress, ConcurrentStrassenRunsShareOnePool) {
  // Two independent multiplies interleaving their task trees through a
  // shared pool must not corrupt each other.
  tasking::ThreadPool pool(3);
  const std::size_t n = 128;
  auto a1 = linalg::random_square(n, 1), b1 = linalg::random_square(n, 2);
  auto a2 = linalg::random_square(n, 3), b2 = linalg::random_square(n, 4);
  linalg::Matrix c1(n, n), c2(n, n), e1(n, n), e2(n, n);
  strassen::StrassenOptions opts;
  opts.base_cutoff = 32;
  strassen::multiply(a1.view(), b1.view(), e1.view(), opts);
  strassen::multiply(a2.view(), b2.view(), e2.view(), opts);

  tasking::TaskGroup group(pool);
  group.run([&] {
    strassen::multiply(a1.view(), b1.view(), c1.view(), opts,
                                &pool);
  });
  group.run([&] {
    strassen::multiply(a2.view(), b2.view(), c2.view(), opts,
                                &pool);
  });
  group.wait();
  EXPECT_TRUE(linalg::allclose(c1.view(), e1.view(), 0.0, 0.0));
  EXPECT_TRUE(linalg::allclose(c2.view(), e2.view(), 0.0, 0.0));
}

TEST(Stress, AllToAllMessageFlood) {
  constexpr int kRanks = 6;
  constexpr int kRounds = 40;
  dist::World world(kRanks);
  world.run([&](dist::Communicator& comm) {
    for (int round = 0; round < kRounds; ++round) {
      // Everyone sends to everyone (distinct tags per round), then
      // receives in reverse order — exercises mailbox tag selection
      // under load.
      for (int dest = 0; dest < kRanks; ++dest) {
        if (dest == comm.rank()) continue;
        comm.send(dest, round,
                  std::vector<double>{
                      static_cast<double>(comm.rank() * 1000 + round)});
      }
      for (int src = kRanks - 1; src >= 0; --src) {
        if (src == comm.rank()) continue;
        const auto msg = comm.recv(src, round);
        EXPECT_DOUBLE_EQ(msg.payload.at(0),
                         static_cast<double>(src * 1000 + round));
      }
      comm.barrier();
    }
  });
}

TEST(Stress, MsrAccountingAcrossManyWraps) {
  // ESU 6 => counter wraps every 2^32 / 2^6 = 67108864 J; deposit far
  // beyond several wraps in irregular chunks and verify the reader's
  // accumulated total tracks ground truth.
  rapl::SimulatedMsrDevice msr(6);
  rapl::RaplReader reader(msr);
  linalg::Xoshiro256 rng(99);
  double ground_truth = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double j = rng.uniform(1e5, 4e7);
    msr.deposit(machine::PowerPlane::kPackage, j);
    ground_truth += j;
    // Poll often enough that no interval spans a full wrap.
    const double read = reader.energy_joules(machine::PowerPlane::kPackage);
    EXPECT_NEAR(read, ground_truth, ground_truth * 1e-9 + 1.0);
  }
  EXPECT_GT(ground_truth, 4.0 * 67108864.0);  // really crossed wraps
}

TEST(Stress, ManyRecordersInterleaved) {
  // Alternating recording scopes under a worker pool: counts must land
  // in exactly the active recorder.
  tasking::ThreadPool pool(2);
  trace::Recorder a, b;
  for (int i = 0; i < 50; ++i) {
    trace::Recorder& target = (i % 2 == 0) ? a : b;
    trace::RecordingScope scope(target);
    tasking::parallel_for_each(pool, 0, 10,
                               [&](std::size_t) { trace::count_flops(1); });
  }
  EXPECT_EQ(a.total().flops, 250u);
  EXPECT_EQ(b.total().flops, 250u);
}

}  // namespace
}  // namespace capow
