// Tests for SUMMA and 2.5D distributed multiplication.
#include <gtest/gtest.h>

#include "capow/blas/gemm_ref.hpp"
#include "capow/dist/summa.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"
#include "capow/trace/counters.hpp"

namespace capow::dist {
namespace {

using linalg::Matrix;
using linalg::random_matrix;

void run_collective(const GridSpec& grid, std::size_t /*n*/, bool use_25d,
                    Matrix& got, const Matrix& a, const Matrix& b) {
  World world(grid.ranks());
  world.run([&](Communicator& comm) {
    Matrix empty;
    const bool root = comm.rank() == 0;
    if (use_25d) {
      multiply_25d(comm, grid, root ? a.view() : empty.view(),
                   root ? b.view() : empty.view(),
                   root ? got.view() : empty.view());
    } else {
      summa_multiply(comm, grid, root ? a.view() : empty.view(),
                     root ? b.view() : empty.view(),
                     root ? got.view() : empty.view());
    }
  });
}

TEST(GridSpec, Validation) {
  EXPECT_NO_THROW((GridSpec{2, 2, 1}).validate());
  EXPECT_NO_THROW((GridSpec{2, 2, 2}).validate());
  EXPECT_THROW((GridSpec{0, 1, 1}).validate(), std::invalid_argument);
  EXPECT_THROW((GridSpec{2, 3, 1}).validate(), std::invalid_argument);
  EXPECT_THROW((GridSpec{3, 3, 2}).validate(), std::invalid_argument);
  EXPECT_EQ((GridSpec{2, 2, 2}).ranks(), 8);
}

struct SummaCase {
  GridSpec grid;
  std::size_t n;
  bool use_25d;
};

class SummaTest : public ::testing::TestWithParam<SummaCase> {};

TEST_P(SummaTest, MatchesReference) {
  const auto p = GetParam();
  Matrix a = random_matrix(p.n, p.n, 80);
  Matrix b = random_matrix(p.n, p.n, 81);
  Matrix expect(p.n, p.n), got(p.n, p.n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  run_collective(p.grid, p.n, p.use_25d, got, a, b);
  EXPECT_TRUE(linalg::allclose(got.view(), expect.view(), 1e-10, 1e-10))
      << "grid " << p.grid.rows << "x" << p.grid.cols << "x"
      << p.grid.layers << " n=" << p.n << " 25d=" << p.use_25d;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SummaTest,
    ::testing::Values(SummaCase{{1, 1, 1}, 32, false},
                      SummaCase{{2, 2, 1}, 64, false},
                      SummaCase{{3, 3, 1}, 96, false},
                      SummaCase{{4, 4, 1}, 64, false},
                      SummaCase{{1, 1, 1}, 32, true},   // degenerate 2.5D
                      SummaCase{{2, 2, 2}, 64, true},
                      SummaCase{{2, 2, 1}, 64, true},   // c = 1 == SUMMA
                      SummaCase{{4, 4, 2}, 64, true},
                      SummaCase{{4, 4, 4}, 64, true}));

TEST(Summa, RejectsBadConfigurations) {
  Matrix a = random_matrix(8, 8, 1), b = random_matrix(8, 8, 2);
  Matrix c(8, 8);
  // Wrong comm size.
  World world(2);
  EXPECT_THROW(world.run([&](Communicator& comm) {
                 summa_multiply(comm, GridSpec{2, 2, 1}, a.view(), b.view(),
                                c.view());
               }),
               std::invalid_argument);
  // Layers in summa_multiply.
  World world8(8);
  EXPECT_THROW(world8.run([&](Communicator& comm) {
                 summa_multiply(comm, GridSpec{2, 2, 2}, a.view(), b.view(),
                                c.view());
               }),
               std::invalid_argument);
}

TEST(Summa, IndivisibleDimensionThrowsOnEveryRank) {
  // 10 is not divisible by a 3x3 grid; the dimension negotiation must
  // abort every rank (not deadlock the non-roots in recv).
  Matrix a = random_matrix(10, 10, 1), b = random_matrix(10, 10, 2);
  Matrix c(10, 10);
  EXPECT_THROW(run_collective(GridSpec{3, 3, 1}, 10, false, c, a, b),
               std::invalid_argument);
  EXPECT_THROW(run_collective(GridSpec{3, 3, 3}, 10, true, c, a, b),
               std::invalid_argument);
}

std::uint64_t comm_bytes(const GridSpec& grid, std::size_t n, bool use_25d) {
  Matrix a = random_matrix(n, n, 9), b = random_matrix(n, n, 10);
  Matrix got(n, n);
  trace::Recorder rec;
  trace::RecordingScope scope(rec);
  run_collective(grid, n, use_25d, got, a, b);
  return rec.total().message_bytes;
}

TEST(Summa, TwoPointFiveDReducesPerRankCommunication) {
  // The 2.5D promise: per-rank communication shrinks ~sqrt(c)-fold at
  // c-fold memory. Compare per-rank bytes at the same plane grid.
  const std::size_t n = 64;
  const auto summa = comm_bytes(GridSpec{4, 4, 1}, n, false);
  const auto d25 = comm_bytes(GridSpec{4, 4, 2}, n, true);
  const double per_rank_summa = static_cast<double>(summa) / 16.0;
  const double per_rank_25d = static_cast<double>(d25) / 32.0;
  EXPECT_LT(per_rank_25d, per_rank_summa);
}

TEST(Summa, StepBroadcastVolumeScalesWithGrid) {
  // Total SUMMA traffic grows with sqrt(P) at fixed n (each of the p
  // steps broadcasts 2 p-block panels).
  const std::size_t n = 48;
  const auto p2 = comm_bytes(GridSpec{2, 2, 1}, n, false);
  const auto p4 = comm_bytes(GridSpec{4, 4, 1}, n, false);
  EXPECT_GT(p4, p2);
}

}  // namespace
}  // namespace capow::dist
