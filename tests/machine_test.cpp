// Tests for the machine model and presets.
#include "capow/machine/machine.hpp"

#include <gtest/gtest.h>

namespace capow::machine {
namespace {

TEST(Machine, HaswellPresetValidates) {
  const MachineSpec m = haswell_e3_1225();
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.core_count, 4u);
  // 3.2 GHz * 16 flops/cycle = 51.2 GF per core, 204.8 GF socket.
  EXPECT_DOUBLE_EQ(m.per_core_peak_flops(), 51.2e9);
  EXPECT_DOUBLE_EQ(m.peak_flops(), 204.8e9);
  EXPECT_EQ(m.llc_capacity_bytes(), 8u * 1024 * 1024);
  EXPECT_EQ(m.caches.size(), 3u);
  EXPECT_TRUE(m.caches.back().shared);
}

TEST(Machine, HaswellIsComputeRich) {
  // The paper: "relatively high compute-to-memory ratio". Peak flops per
  // DRAM byte is ~20, far above the ~1-2 of a balanced machine.
  const MachineSpec m = haswell_e3_1225();
  EXPECT_GT(m.flops_per_byte(), 10.0);
}

TEST(Machine, QuadChannelVariantLowersBalance) {
  const MachineSpec base = haswell_e3_1225();
  const MachineSpec quad = haswell_quad_channel();
  EXPECT_NO_THROW(quad.validate());
  EXPECT_DOUBLE_EQ(quad.flops_per_byte(), base.flops_per_byte() / 4.0);
}

TEST(Machine, CompactPresetValidates) {
  const MachineSpec m = compact_dual_core();
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.core_count, 2u);
}

TEST(Machine, CacheCapacityLookup) {
  const MachineSpec m = haswell_e3_1225();
  EXPECT_EQ(m.cache_capacity_bytes(0), 32u * 1024);
  EXPECT_EQ(m.cache_capacity_bytes(1), 256u * 1024);
  EXPECT_EQ(m.cache_capacity_bytes(2), 8u * 1024 * 1024);
  EXPECT_EQ(m.cache_capacity_bytes(9), 0u);
}

TEST(Machine, ActivePowerScalesWithEfficiency) {
  const CoreSpec c = haswell_e3_1225().core;
  EXPECT_DOUBLE_EQ(c.active_power_w(0.0), c.busy_power_w);
  EXPECT_DOUBLE_EQ(c.active_power_w(1.0), c.busy_power_w + c.fma_power_w);
  EXPECT_GT(c.active_power_w(0.5), c.active_power_w(0.1));
}

TEST(Machine, PresetRegistry) {
  for (const auto& name : preset_names()) {
    EXPECT_NO_THROW(preset_by_name(name).validate()) << name;
  }
  EXPECT_EQ(preset_by_name("haswell").core_count, 4u);
  EXPECT_EQ(preset_by_name("compact").core_count, 2u);
  EXPECT_THROW(preset_by_name("skylake"), std::invalid_argument);
  EXPECT_THROW(preset_by_name(""), std::invalid_argument);
}

TEST(Machine, PowerPlaneNames) {
  EXPECT_STREQ(power_plane_name(PowerPlane::kPackage), "PACKAGE");
  EXPECT_STREQ(power_plane_name(PowerPlane::kPP0), "PP0");
  EXPECT_STREQ(power_plane_name(PowerPlane::kDram), "DRAM");
}

// Parameterized invalid-spec sweep: each mutator must trip validate().
using Mutator = void (*)(MachineSpec&);
class MachineValidateTest : public ::testing::TestWithParam<Mutator> {};

TEST_P(MachineValidateTest, RejectsInvalidSpec) {
  MachineSpec m = haswell_e3_1225();
  GetParam()(m);
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MachineValidateTest,
    ::testing::Values(
        +[](MachineSpec& m) { m.core_count = 0; },
        +[](MachineSpec& m) { m.core.frequency_hz = 0.0; },
        +[](MachineSpec& m) { m.core.flops_per_cycle = -1.0; },
        +[](MachineSpec& m) { m.core.busy_power_w = 0.1; },  // < stall
        +[](MachineSpec& m) { m.core.stall_power_w = -0.5; },
        +[](MachineSpec& m) { m.core.fma_power_w = -1.0; },
        +[](MachineSpec& m) { m.core.idle_power_w = 100.0; },  // > stall
        +[](MachineSpec& m) { m.memory.bandwidth_bytes_per_s = 0.0; },
        +[](MachineSpec& m) { m.memory.energy_per_byte_nj = -0.1; },
        +[](MachineSpec& m) { m.power.pp0_static_w = -1.0; },
        +[](MachineSpec& m) { m.power.uncore_static_w = -1.0; },
        +[](MachineSpec& m) { m.caches[0].line_bytes = 0; },
        +[](MachineSpec& m) {
          // L1 bigger than (private) L2 is inconsistent.
          m.caches[0].capacity_bytes = 1024u * 1024;
        }));

}  // namespace
}  // namespace capow::machine
