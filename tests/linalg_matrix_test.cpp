// Unit tests for capow::linalg Matrix and views.
#include "capow/linalg/matrix.hpp"

#include <cstdint>
#include <utility>

#include <gtest/gtest.h>

namespace capow::linalg {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.data(), nullptr);
}

TEST(Matrix, SizedConstruction) {
  Matrix m(3, 5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_EQ(m.size(), 15u);
  EXPECT_FALSE(m.empty());
  EXPECT_FALSE(m.square());
}

TEST(Matrix, InitValueConstruction) {
  Matrix m(2, 2, 7.5);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) EXPECT_EQ(m(i, j), 7.5);
  }
}

TEST(Matrix, ZerosFactory) {
  Matrix m = Matrix::zeros(4);
  EXPECT_TRUE(m.square());
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(Matrix, RectangularZeros) {
  Matrix m = Matrix::zeros(2, 6);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 6u);
  EXPECT_EQ(m(1, 5), 0.0);
}

TEST(Matrix, Identity) {
  Matrix m = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(m(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, DataIsCacheLineAligned) {
  for (std::size_t n : {1u, 3u, 7u, 64u, 100u}) {
    Matrix m(n, n);
    const auto addr = reinterpret_cast<std::uintptr_t>(m.data());
    EXPECT_EQ(addr % kMatrixAlignment, 0u) << "n=" << n;
  }
}

TEST(Matrix, ElementWriteAndRead) {
  Matrix m = Matrix::zeros(3);
  m(1, 2) = 42.0;
  EXPECT_EQ(m(1, 2), 42.0);
  EXPECT_EQ(m(2, 1), 0.0);
}

TEST(Matrix, RowMajorLayout) {
  Matrix m = Matrix::zeros(2, 3);
  m(1, 0) = 5.0;
  EXPECT_EQ(m.data()[3], 5.0);
}

TEST(Matrix, CopyConstructorDeepCopies) {
  Matrix a(2, 2, 1.0);
  Matrix b(a);
  b(0, 0) = 9.0;
  EXPECT_EQ(a(0, 0), 1.0);
  EXPECT_EQ(b(0, 0), 9.0);
}

TEST(Matrix, CopyAssignmentDeepCopies) {
  Matrix a(2, 2, 3.0);
  Matrix b;
  b = a;
  EXPECT_EQ(b(1, 1), 3.0);
  a(1, 1) = 0.0;
  EXPECT_EQ(b(1, 1), 3.0);
}

TEST(Matrix, SelfAssignmentIsSafe) {
  Matrix a(2, 2, 4.0);
  Matrix& ref = a;
  a = ref;
  EXPECT_EQ(a(0, 0), 4.0);
}

TEST(Matrix, MoveTransfersStorage) {
  Matrix a(2, 2, 6.0);
  const double* p = a.data();
  Matrix b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b(0, 1), 6.0);
}

TEST(Matrix, FillOverwritesEverything) {
  Matrix m(3, 3, 1.0);
  m.fill(2.5);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(m.data()[i], 2.5);
}

TEST(MatrixView, WholeMatrixView) {
  Matrix m(3, 4, 1.0);
  MatrixView v = m.view();
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 4u);
  EXPECT_EQ(v.ld(), 4u);
  EXPECT_TRUE(v.packed());
  v(2, 3) = 8.0;
  EXPECT_EQ(m(2, 3), 8.0);
}

TEST(MatrixView, BlockIsStrided) {
  Matrix m = Matrix::zeros(4);
  MatrixView b = m.block(1, 1, 2, 2);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.ld(), 4u);
  EXPECT_FALSE(b.packed());
  b(0, 0) = 3.0;
  EXPECT_EQ(m(1, 1), 3.0);
}

TEST(MatrixView, NestedBlocks) {
  Matrix m = Matrix::zeros(8);
  MatrixView outer = m.block(2, 2, 4, 4);
  MatrixView inner = outer.block(1, 1, 2, 2);
  inner(0, 0) = 1.0;
  EXPECT_EQ(m(3, 3), 1.0);
}

TEST(MatrixView, BlockOutOfRangeThrows) {
  Matrix m = Matrix::zeros(4);
  EXPECT_THROW(m.block(2, 2, 3, 1), std::out_of_range);
  EXPECT_THROW(m.block(0, 3, 1, 2), std::out_of_range);
  EXPECT_THROW((void)m.view().block(4, 0, 1, 1), std::out_of_range);
}

TEST(MatrixView, FillRespectsStride) {
  Matrix m = Matrix::zeros(4);
  m.block(1, 1, 2, 2).fill(5.0);
  EXPECT_EQ(m(1, 1), 5.0);
  EXPECT_EQ(m(2, 2), 5.0);
  EXPECT_EQ(m(0, 0), 0.0);
  EXPECT_EQ(m(3, 3), 0.0);
  EXPECT_EQ(m(1, 0), 0.0);
}

TEST(ConstMatrixView, ImplicitFromMutable) {
  Matrix m(2, 2, 1.5);
  MatrixView v = m.view();
  ConstMatrixView cv = v;
  EXPECT_EQ(cv(1, 1), 1.5);
  EXPECT_EQ(cv.ld(), v.ld());
}

TEST(ConstMatrixView, ConstBlockReads) {
  Matrix m = Matrix::identity(4);
  const Matrix& cm = m;
  ConstMatrixView b = cm.block(1, 1, 2, 2);
  EXPECT_EQ(b(0, 0), 1.0);
  EXPECT_EQ(b(0, 1), 0.0);
}

TEST(ConstMatrixView, RowPointerArithmetic) {
  Matrix m = Matrix::zeros(3, 5);
  m(2, 4) = 11.0;
  ConstMatrixView v = m.view();
  EXPECT_EQ(v.row(2)[4], 11.0);
}

TEST(Matrix, ZeroSizedOperationsAreSafe) {
  Matrix m(0, 0);
  m.fill(1.0);
  EXPECT_TRUE(m.view().empty());
  EXPECT_NO_THROW(m.block(0, 0, 0, 0));
}

}  // namespace
}  // namespace capow::linalg
