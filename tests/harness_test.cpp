// Tests for the experiment runner and table formatting — including the
// paper's qualitative claims as executable assertions.
#include <gtest/gtest.h>

#include "capow/harness/experiment.hpp"
#include "capow/harness/table.hpp"

namespace capow::harness {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.sizes = {256, 512};
  cfg.thread_counts = {1, 2, 4};
  cfg.quiesce_seconds = 1.0;
  return cfg;
}

TEST(Experiment, ProducesFullMatrix) {
  ExperimentRunner runner(small_config());
  const auto& results = runner.run();
  EXPECT_EQ(results.size(), 3u * 2u * 3u);
  // Idempotent.
  EXPECT_EQ(&runner.run(), &results);
}

TEST(Experiment, FindLocatesAndThrows) {
  ExperimentRunner runner(small_config());
  runner.run();
  const auto& r = runner.find(Algorithm::kCaps, 512, 4);
  EXPECT_EQ(r.n, 512u);
  EXPECT_EQ(r.threads, 4u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_THROW(runner.find(Algorithm::kCaps, 999, 4), std::out_of_range);
}

TEST(Experiment, RejectsEmptyConfig) {
  ExperimentConfig cfg = small_config();
  cfg.sizes.clear();
  EXPECT_THROW(ExperimentRunner{cfg}, std::invalid_argument);
}

TEST(Experiment, EpFollowsEq1) {
  ExperimentRunner runner(small_config());
  runner.run();
  for (const auto& r : runner.run()) {
    EXPECT_NEAR(r.ep, r.package_watts / r.seconds, 1e-9);
    EXPECT_GT(r.package_watts, r.pp0_watts);
    EXPECT_GT(r.pp0_watts, 0.0);
  }
}

TEST(Experiment, QuiesceDoesNotPolluteMeasurement) {
  ExperimentConfig with = small_config();
  ExperimentConfig without = small_config();
  without.quiesce_seconds = 0.0;
  ExperimentRunner a(with), b(without);
  a.run();
  b.run();
  const auto& ra = a.find(Algorithm::kOpenBlas, 512, 2);
  const auto& rb = b.find(Algorithm::kOpenBlas, 512, 2);
  // The event set baselines after the idle period, so energy/power are
  // unchanged (up to MSR count quantization over a short run).
  EXPECT_NEAR(ra.package_watts, rb.package_watts, 0.05);
}

TEST(Experiment, AveragesMatchManualComputation) {
  ExperimentRunner runner(small_config());
  runner.run();
  double sum = 0.0;
  for (unsigned t : {1u, 2u, 4u}) {
    sum += runner.find(Algorithm::kStrassen, 256, t).seconds /
           runner.find(Algorithm::kOpenBlas, 256, t).seconds;
  }
  EXPECT_NEAR(runner.average_slowdown(Algorithm::kStrassen, 256), sum / 3.0,
              1e-12);

  double power = 0.0;
  for (std::size_t n : {256u, 512u}) {
    power += runner.find(Algorithm::kCaps, n, 2).package_watts;
  }
  EXPECT_NEAR(runner.average_power(Algorithm::kCaps, 2), power / 2.0, 1e-12);
}

// ---- The paper's qualitative claims, as assertions on the full matrix.
class PaperClaimsTest : public ::testing::Test {
 protected:
  static ExperimentRunner& runner() {
    static ExperimentRunner r{ExperimentConfig{}};
    r.run();
    return r;
  }
};

TEST_F(PaperClaimsTest, OpenBlasIsFastestEverywhere) {
  for (std::size_t n : {512u, 1024u, 2048u, 4096u}) {
    for (unsigned t = 1; t <= 4; ++t) {
      const double blas = runner().find(Algorithm::kOpenBlas, n, t).seconds;
      EXPECT_LT(blas, runner().find(Algorithm::kStrassen, n, t).seconds);
      EXPECT_LT(blas, runner().find(Algorithm::kCaps, n, t).seconds);
    }
  }
}

TEST_F(PaperClaimsTest, SlowdownsInPaperBand) {
  // Table II: Strassen averages 2.965x, CAPS 2.788x across the matrix.
  // Require the reproduction to land within ~20% of those averages.
  double strassen = 0.0, caps = 0.0;
  for (std::size_t n : {512u, 1024u, 2048u, 4096u}) {
    strassen += runner().average_slowdown(Algorithm::kStrassen, n);
    caps += runner().average_slowdown(Algorithm::kCaps, n);
  }
  strassen /= 4.0;
  caps /= 4.0;
  EXPECT_NEAR(strassen, 2.965, 0.6);
  EXPECT_NEAR(caps, 2.788, 0.6);
}

TEST_F(PaperClaimsTest, CapsFasterThanStrassenOnAverage) {
  // "The CAPS implementation performed better than the traditional
  // Strassen test in nearly all cases" — on average per size here.
  for (std::size_t n : {2048u, 4096u}) {
    EXPECT_LT(runner().average_slowdown(Algorithm::kCaps, n),
              runner().average_slowdown(Algorithm::kStrassen, n))
        << "n=" << n;
  }
}

TEST_F(PaperClaimsTest, OpenBlasDrawsTheMostPower) {
  // Section VI-C: "the OpenBLAS implementation recorded the highest
  // power utilization on all variations of all tests" (multi-threaded).
  for (unsigned t = 2; t <= 4; ++t) {
    const double blas = runner().average_power(Algorithm::kOpenBlas, t);
    EXPECT_GT(blas, runner().average_power(Algorithm::kStrassen, t));
    EXPECT_GT(blas, runner().average_power(Algorithm::kCaps, t));
  }
}

TEST_F(PaperClaimsTest, StrassenPowerSaturates) {
  // Fig 5: sublinear power growth. The 3->4 thread increment must be
  // clearly smaller than the 1->2 increment.
  const double p1 = runner().average_power(Algorithm::kStrassen, 1);
  const double p2 = runner().average_power(Algorithm::kStrassen, 2);
  const double p3 = runner().average_power(Algorithm::kStrassen, 3);
  const double p4 = runner().average_power(Algorithm::kStrassen, 4);
  EXPECT_LT(p4 - p3, p2 - p1);
}

TEST_F(PaperClaimsTest, OpenBlasPowerNearLinear) {
  // Fig 4: each added thread costs roughly the same increment.
  const double p1 = runner().average_power(Algorithm::kOpenBlas, 1);
  const double p2 = runner().average_power(Algorithm::kOpenBlas, 2);
  const double p4 = runner().average_power(Algorithm::kOpenBlas, 4);
  const double inc12 = p2 - p1;
  const double inc24 = (p4 - p2) / 2.0;
  EXPECT_NEAR(inc24 / inc12, 1.0, 0.25);
}

TEST_F(PaperClaimsTest, EpOrderingMatchesTableIV) {
  // Table IV: OpenBLAS EP >> Strassen/CAPS EP at every size, and EP
  // decreases steeply with problem size.
  for (std::size_t n : {512u, 1024u, 2048u, 4096u}) {
    const double blas = runner().average_ep(Algorithm::kOpenBlas, n);
    EXPECT_GT(blas, 2.0 * runner().average_ep(Algorithm::kStrassen, n));
    EXPECT_GT(blas, 2.0 * runner().average_ep(Algorithm::kCaps, n));
  }
  EXPECT_GT(runner().average_ep(Algorithm::kOpenBlas, 512),
            runner().average_ep(Algorithm::kOpenBlas, 4096) * 100.0);
}

TEST_F(PaperClaimsTest, Fig7OpenBlasSuperlinearStrassenFamilyNearLinear) {
  for (std::size_t n : {1024u, 4096u}) {
    const auto blas = runner().ep_scaling(Algorithm::kOpenBlas, n);
    const auto strassen = runner().ep_scaling(Algorithm::kStrassen, n);
    const auto caps = runner().ep_scaling(Algorithm::kCaps, n);
    // OpenBLAS is strongly superlinear: S(4) at least 1.5x the threshold.
    EXPECT_GT(blas.back().s, 6.0);
    // The Strassen family stays far below OpenBLAS.
    EXPECT_LT(strassen.back().s, 0.7 * blas.back().s);
    EXPECT_LT(caps.back().s, 0.8 * blas.back().s);
  }
  // At the largest size classic Strassen sits within ~15% of the ideal
  // line (the paper's "ideal or nearly ideal scaling curves").
  EXPECT_LT(runner().ep_scaling(Algorithm::kStrassen, 4096).back().s,
            4.0 * 1.15);
  EXPECT_EQ(runner().scaling_class(Algorithm::kOpenBlas, 4096),
            core::ScalingClass::kSuperlinear);
}

// ---- Table formatting.

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Algorithm", "N", "Watts"});
  t.add_row({"OpenBLAS", "512", "20.20"});
  t.add_row({"CAPS", "4096", "33.18"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Algorithm"), std::string::npos);
  EXPECT_NE(s.find("OpenBLAS"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, RejectsMismatchedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Format, FixedAndSi) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_si(12.8e9, 1), "12.8G");
  EXPECT_EQ(fmt_si(0.000061, 1), "61.0u");
  EXPECT_EQ(fmt_si(0.0, 1), "0.0");
  EXPECT_EQ(fmt_si(1536.0, 2), "1.54k");
}

TEST(AlgorithmNames, AllNamed) {
  EXPECT_STREQ(algorithm_name(Algorithm::kOpenBlas), "OpenBLAS");
  EXPECT_STREQ(algorithm_name(Algorithm::kStrassen), "Strassen");
  EXPECT_STREQ(algorithm_name(Algorithm::kCaps), "CAPS");
}

}  // namespace
}  // namespace capow::harness
