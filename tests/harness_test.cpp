// Tests for the experiment runner and table formatting — including the
// paper's qualitative claims as executable assertions, and the harness's
// fault-tolerance envelope (retry/degrade/fail statuses, watchdog,
// checkpoint/resume).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "capow/fault/fault.hpp"
#include "capow/harness/checkpoint.hpp"
#include "capow/harness/comm_audit.hpp"
#include "capow/harness/experiment.hpp"
#include "capow/harness/table.hpp"

namespace capow::harness {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.sizes = {256, 512};
  cfg.thread_counts = {1, 2, 4};
  cfg.quiesce_seconds = 1.0;
  return cfg;
}

TEST(Experiment, ProducesFullMatrix) {
  ExperimentRunner runner(small_config());
  const auto& results = runner.run();
  EXPECT_EQ(results.size(), 3u * 2u * 3u);
  // Idempotent.
  EXPECT_EQ(&runner.run(), &results);
}

TEST(Experiment, FindLocatesAndThrows) {
  ExperimentRunner runner(small_config());
  runner.run();
  const auto& r = runner.find(Algorithm::kCaps, 512, 4);
  EXPECT_EQ(r.n, 512u);
  EXPECT_EQ(r.threads, 4u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_THROW(runner.find(Algorithm::kCaps, 999, 4), std::out_of_range);
}

TEST(Experiment, RejectsEmptyConfig) {
  ExperimentConfig cfg = small_config();
  cfg.sizes.clear();
  EXPECT_THROW(ExperimentRunner{cfg}, std::invalid_argument);
}

TEST(Experiment, EpFollowsEq1) {
  ExperimentRunner runner(small_config());
  runner.run();
  for (const auto& r : runner.run()) {
    EXPECT_NEAR(r.ep, r.package_watts / r.seconds, 1e-9);
    EXPECT_GT(r.package_watts, r.pp0_watts);
    EXPECT_GT(r.pp0_watts, 0.0);
  }
}

TEST(Experiment, QuiesceDoesNotPolluteMeasurement) {
  ExperimentConfig with = small_config();
  ExperimentConfig without = small_config();
  without.quiesce_seconds = 0.0;
  ExperimentRunner a(with), b(without);
  a.run();
  b.run();
  const auto& ra = a.find(Algorithm::kOpenBlas, 512, 2);
  const auto& rb = b.find(Algorithm::kOpenBlas, 512, 2);
  // The event set baselines after the idle period, so energy/power are
  // unchanged (up to MSR count quantization over a short run).
  EXPECT_NEAR(ra.package_watts, rb.package_watts, 0.05);
}

TEST(Experiment, AveragesMatchManualComputation) {
  ExperimentRunner runner(small_config());
  runner.run();
  double sum = 0.0;
  for (unsigned t : {1u, 2u, 4u}) {
    sum += runner.find(Algorithm::kStrassen, 256, t).seconds /
           runner.find(Algorithm::kOpenBlas, 256, t).seconds;
  }
  EXPECT_NEAR(runner.average_slowdown(Algorithm::kStrassen, 256), sum / 3.0,
              1e-12);

  double power = 0.0;
  for (std::size_t n : {256u, 512u}) {
    power += runner.find(Algorithm::kCaps, n, 2).package_watts;
  }
  EXPECT_NEAR(runner.average_power(Algorithm::kCaps, 2), power / 2.0, 1e-12);
}

// ---- The paper's qualitative claims, as assertions on the full matrix.
class PaperClaimsTest : public ::testing::Test {
 protected:
  static ExperimentRunner& runner() {
    static ExperimentRunner r{ExperimentConfig{}};
    r.run();
    return r;
  }
};

TEST_F(PaperClaimsTest, OpenBlasIsFastestEverywhere) {
  for (std::size_t n : {512u, 1024u, 2048u, 4096u}) {
    for (unsigned t = 1; t <= 4; ++t) {
      const double blas = runner().find(Algorithm::kOpenBlas, n, t).seconds;
      EXPECT_LT(blas, runner().find(Algorithm::kStrassen, n, t).seconds);
      EXPECT_LT(blas, runner().find(Algorithm::kCaps, n, t).seconds);
    }
  }
}

TEST_F(PaperClaimsTest, SlowdownsInPaperBand) {
  // Table II: Strassen averages 2.965x, CAPS 2.788x across the matrix.
  // Require the reproduction to land within ~20% of those averages.
  double strassen = 0.0, caps = 0.0;
  for (std::size_t n : {512u, 1024u, 2048u, 4096u}) {
    strassen += runner().average_slowdown(Algorithm::kStrassen, n);
    caps += runner().average_slowdown(Algorithm::kCaps, n);
  }
  strassen /= 4.0;
  caps /= 4.0;
  EXPECT_NEAR(strassen, 2.965, 0.6);
  EXPECT_NEAR(caps, 2.788, 0.6);
}

TEST_F(PaperClaimsTest, CapsFasterThanStrassenOnAverage) {
  // "The CAPS implementation performed better than the traditional
  // Strassen test in nearly all cases" — on average per size here.
  for (std::size_t n : {2048u, 4096u}) {
    EXPECT_LT(runner().average_slowdown(Algorithm::kCaps, n),
              runner().average_slowdown(Algorithm::kStrassen, n))
        << "n=" << n;
  }
}

TEST_F(PaperClaimsTest, OpenBlasDrawsTheMostPower) {
  // Section VI-C: "the OpenBLAS implementation recorded the highest
  // power utilization on all variations of all tests" (multi-threaded).
  for (unsigned t = 2; t <= 4; ++t) {
    const double blas = runner().average_power(Algorithm::kOpenBlas, t);
    EXPECT_GT(blas, runner().average_power(Algorithm::kStrassen, t));
    EXPECT_GT(blas, runner().average_power(Algorithm::kCaps, t));
  }
}

TEST_F(PaperClaimsTest, StrassenPowerSaturates) {
  // Fig 5: sublinear power growth. The 3->4 thread increment must be
  // clearly smaller than the 1->2 increment.
  const double p1 = runner().average_power(Algorithm::kStrassen, 1);
  const double p2 = runner().average_power(Algorithm::kStrassen, 2);
  const double p3 = runner().average_power(Algorithm::kStrassen, 3);
  const double p4 = runner().average_power(Algorithm::kStrassen, 4);
  EXPECT_LT(p4 - p3, p2 - p1);
}

TEST_F(PaperClaimsTest, OpenBlasPowerNearLinear) {
  // Fig 4: each added thread costs roughly the same increment.
  const double p1 = runner().average_power(Algorithm::kOpenBlas, 1);
  const double p2 = runner().average_power(Algorithm::kOpenBlas, 2);
  const double p4 = runner().average_power(Algorithm::kOpenBlas, 4);
  const double inc12 = p2 - p1;
  const double inc24 = (p4 - p2) / 2.0;
  EXPECT_NEAR(inc24 / inc12, 1.0, 0.25);
}

TEST_F(PaperClaimsTest, EpOrderingMatchesTableIV) {
  // Table IV: OpenBLAS EP >> Strassen/CAPS EP at every size, and EP
  // decreases steeply with problem size.
  for (std::size_t n : {512u, 1024u, 2048u, 4096u}) {
    const double blas = runner().average_ep(Algorithm::kOpenBlas, n);
    EXPECT_GT(blas, 2.0 * runner().average_ep(Algorithm::kStrassen, n));
    EXPECT_GT(blas, 2.0 * runner().average_ep(Algorithm::kCaps, n));
  }
  EXPECT_GT(runner().average_ep(Algorithm::kOpenBlas, 512),
            runner().average_ep(Algorithm::kOpenBlas, 4096) * 100.0);
}

TEST_F(PaperClaimsTest, Fig7OpenBlasSuperlinearStrassenFamilyNearLinear) {
  for (std::size_t n : {1024u, 4096u}) {
    const auto blas = runner().ep_scaling(Algorithm::kOpenBlas, n);
    const auto strassen = runner().ep_scaling(Algorithm::kStrassen, n);
    const auto caps = runner().ep_scaling(Algorithm::kCaps, n);
    // OpenBLAS is strongly superlinear: S(4) at least 1.5x the threshold.
    EXPECT_GT(blas.back().s, 6.0);
    // The Strassen family stays far below OpenBLAS.
    EXPECT_LT(strassen.back().s, 0.7 * blas.back().s);
    EXPECT_LT(caps.back().s, 0.8 * blas.back().s);
  }
  // At the largest size classic Strassen sits within ~15% of the ideal
  // line (the paper's "ideal or nearly ideal scaling curves").
  EXPECT_LT(runner().ep_scaling(Algorithm::kStrassen, 4096).back().s,
            4.0 * 1.15);
  EXPECT_EQ(runner().scaling_class(Algorithm::kOpenBlas, 4096),
            core::ScalingClass::kSuperlinear);
}

// ---- Fault-tolerance envelope: statuses, watchdog, determinism.

ExperimentConfig fault_config() {
  ExperimentConfig cfg;
  cfg.sizes = {256};
  cfg.thread_counts = {1, 2};
  cfg.quiesce_seconds = 0.0;
  return cfg;
}

TEST(ExperimentFault, CleanRunDefaultsToOkStatus) {
  ExperimentRunner runner(fault_config());
  for (const auto& r : runner.run()) {
    EXPECT_EQ(r.status, RunStatus::kOk);
    EXPECT_EQ(r.attempts, 1);
    EXPECT_TRUE(r.error.empty());
  }
}

TEST(ExperimentFault, EmptyPlanInjectorLeavesResultsBitIdentical) {
  ExperimentRunner clean(fault_config());
  clean.run();
  fault::FaultInjector inj{fault::FaultPlan{}};
  fault::FaultScope scope(inj);
  ExperimentRunner gated(fault_config());
  gated.run();
  ASSERT_EQ(clean.run().size(), gated.run().size());
  for (std::size_t i = 0; i < clean.run().size(); ++i) {
    const auto& a = clean.run()[i];
    const auto& b = gated.run()[i];
    EXPECT_EQ(a.seconds, b.seconds);            // bitwise: same simulation
    EXPECT_EQ(a.package_watts, b.package_watts);
    EXPECT_EQ(a.pp0_watts, b.pp0_watts);
    EXPECT_EQ(a.ep, b.ep);
    EXPECT_EQ(a.status, b.status);
  }
  EXPECT_EQ(inj.counters().total(), 0u);
}

TEST(ExperimentFault, TransientRunFailuresAreRetried) {
  fault::FaultPlan plan = fault::FaultPlan::parse("run.fail=0.3,seed=42");
  fault::FaultInjector inj(plan);
  fault::FaultScope scope(inj);
  ExperimentRunner runner(fault_config());
  int ok = 0, retried = 0;
  for (const auto& r : runner.run()) {
    if (r.status == RunStatus::kOk) ++ok;
    if (r.status == RunStatus::kRetried) {
      ++retried;
      EXPECT_GT(r.attempts, 1);
      EXPECT_GT(r.seconds, 0.0);  // retried runs still carry real data
      EXPECT_TRUE(r.error.empty());
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(retried, 0);
  EXPECT_GT(inj.count(fault::Event::kRunRetry), 0u);
}

TEST(ExperimentFault, ExhaustedAttemptsYieldFailedRecordNotThrow) {
  fault::FaultPlan plan = fault::FaultPlan::parse("run.fail=1,seed=1");
  fault::FaultInjector inj(plan);
  fault::FaultScope scope(inj);
  ExperimentConfig cfg = fault_config();
  cfg.max_run_attempts = 2;
  ExperimentRunner runner(cfg);
  for (const auto& r : runner.run()) {
    EXPECT_EQ(r.status, RunStatus::kFailed);
    EXPECT_EQ(r.attempts, 2);
    EXPECT_FALSE(r.error.empty());
    EXPECT_EQ(r.seconds, 0.0);  // failed records carry zeroed metrics
    EXPECT_EQ(r.package_watts, 0.0);
  }
  EXPECT_EQ(inj.count(fault::Event::kRunFailure), runner.run().size());
  // Aggregation must survive an all-failed matrix: NaN, not a crash.
  EXPECT_TRUE(std::isnan(runner.average_power(Algorithm::kOpenBlas, 1)));
  EXPECT_TRUE(std::isnan(runner.average_ep(Algorithm::kCaps, 256)));
  EXPECT_TRUE(runner.ep_scaling(Algorithm::kStrassen, 256).empty());
}

TEST(ExperimentFault, DegradedRaplReadsDowngradeStatus) {
  fault::FaultPlan plan = fault::FaultPlan::parse("rapl.fail=1,seed=3");
  fault::FaultInjector inj(plan);
  fault::FaultScope scope(inj);
  ExperimentRunner runner(fault_config());
  for (const auto& r : runner.run()) {
    // The measurement completes (degraded beats discarded) but the
    // record is honest about its quality.
    EXPECT_EQ(r.status, RunStatus::kDegraded);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_TRUE(r.error.empty());
  }
  EXPECT_GT(inj.count(fault::Event::kRaplDegradedRead), 0u);
  EXPECT_EQ(inj.count(fault::Event::kRunDegraded), runner.run().size());
}

TEST(ExperimentFault, WatchdogTurnsStallsIntoFailedRecords) {
  fault::FaultPlan plan =
      fault::FaultPlan::parse("run.stall=1,run.stall_ms=400,seed=5");
  fault::FaultInjector inj(plan);
  fault::FaultScope scope(inj);
  ExperimentConfig cfg = fault_config();
  cfg.sizes = {256};
  cfg.thread_counts = {1};
  cfg.max_run_attempts = 2;
  cfg.run_timeout_seconds = 0.05;
  ExperimentRunner runner(cfg);
  for (const auto& r : runner.run()) {
    EXPECT_EQ(r.status, RunStatus::kFailed);
    EXPECT_NE(r.error.find("watchdog"), std::string::npos) << r.error;
  }
  // 3 algorithms x 2 attempts, every attempt stalled past the budget.
  EXPECT_EQ(inj.count(fault::Event::kRunTimeout), 6u);
}

TEST(ExperimentFault, WrapInjectionPreservesMeasurements) {
  ExperimentRunner clean(fault_config());
  clean.run();
  fault::FaultPlan plan = fault::FaultPlan::parse("rapl.wrap=1,seed=9");
  fault::FaultInjector inj(plan);
  fault::FaultScope scope(inj);
  ExperimentRunner wrapped(fault_config());
  wrapped.run();
  ASSERT_EQ(clean.run().size(), wrapped.run().size());
  EXPECT_GT(inj.count(fault::Event::kRaplWrap), 0u);
  for (std::size_t i = 0; i < clean.run().size(); ++i) {
    const auto& a = clean.run()[i];
    const auto& b = wrapped.run()[i];
    EXPECT_EQ(b.status, RunStatus::kOk);
    EXPECT_EQ(a.seconds, b.seconds);
    // Wrap-corrected energy matches the clean run up to MSR count
    // quantization (the pre-wrap deposit realigns counter phase).
    EXPECT_NEAR(a.package_watts, b.package_watts, 0.05);
    EXPECT_NEAR(a.pp0_watts, b.pp0_watts, 0.05);
  }
}

TEST(ExperimentFault, InjectedMatrixIsDeterministicForFixedSeed) {
  const fault::FaultPlan plan =
      fault::FaultPlan::parse("run.fail=0.3,rapl.fail=0.5,seed=11");
  const auto run_once = [&plan](fault::FaultCounters* out) {
    fault::FaultInjector inj(plan);
    fault::FaultScope scope(inj);
    ExperimentRunner runner(fault_config());
    runner.run();
    *out = inj.counters();
    return runner.run();
  };
  fault::FaultCounters ca, cb;
  const std::vector<ResultRecord> a = run_once(&ca);
  const std::vector<ResultRecord> b = run_once(&cb);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status);
    EXPECT_EQ(a[i].attempts, b[i].attempts);
    EXPECT_EQ(a[i].seconds, b[i].seconds);
    EXPECT_EQ(a[i].package_watts, b[i].package_watts);
    EXPECT_EQ(a[i].ep, b[i].ep);
    EXPECT_EQ(a[i].error, b[i].error);
  }
  for (std::size_t i = 0; i < fault::kEventCount; ++i) {
    EXPECT_EQ(ca.by_event[i], cb.by_event[i]);
  }
}

// ---- Checkpoint/resume.

ResultRecord sample_record() {
  ResultRecord r;
  r.algorithm = Algorithm::kStrassen;
  r.n = 1024;
  r.threads = 3;
  r.seconds = 1.0 / 3.0;           // not representable in decimal
  r.package_watts = 0.1 + 0.2;     // classic round-trip trap
  r.pp0_watts = 17.25;
  r.package_energy_j = 6.0221408e23;
  r.ep = 2.2250738585072014e-308;  // smallest normal double
  r.status = RunStatus::kDegraded;
  r.attempts = 2;
  return r;
}

TEST(Checkpoint, LineRoundTripsEveryFieldExactly) {
  const ResultRecord r = sample_record();
  const auto parsed = parse_checkpoint_line(checkpoint_line(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->algorithm, r.algorithm);
  EXPECT_EQ(parsed->n, r.n);
  EXPECT_EQ(parsed->threads, r.threads);
  EXPECT_EQ(parsed->seconds, r.seconds);  // %.17g: bitwise round-trip
  EXPECT_EQ(parsed->package_watts, r.package_watts);
  EXPECT_EQ(parsed->pp0_watts, r.pp0_watts);
  EXPECT_EQ(parsed->package_energy_j, r.package_energy_j);
  EXPECT_EQ(parsed->ep, r.ep);
  EXPECT_EQ(parsed->status, r.status);
  EXPECT_EQ(parsed->attempts, r.attempts);
  EXPECT_EQ(parsed->error, r.error);
}

TEST(Checkpoint, CorrectedStatusRoundTrips) {
  EXPECT_STREQ(to_string(RunStatus::kCorrected), "corrected");
  ResultRecord r = sample_record();
  r.status = RunStatus::kCorrected;
  const auto parsed = parse_checkpoint_line(checkpoint_line(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, RunStatus::kCorrected);
}

TEST(Checkpoint, ErrorStringsSurviveJsonEscaping) {
  ResultRecord r = sample_record();
  r.status = RunStatus::kFailed;
  r.error = "say \"hi\"\\path\nnewline\ttab";
  const auto parsed = parse_checkpoint_line(checkpoint_line(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->error, r.error);
}

TEST(Checkpoint, TornAndCorruptLinesAreRejected) {
  const std::string line = checkpoint_line(sample_record());
  EXPECT_FALSE(parse_checkpoint_line("").has_value());
  EXPECT_FALSE(parse_checkpoint_line("garbage").has_value());
  EXPECT_FALSE(parse_checkpoint_line(line.substr(0, line.size() / 2))
                   .has_value());
  EXPECT_FALSE(
      parse_checkpoint_line("{\"algorithm\":\"NoSuchAlgo\",\"n\":4}")
          .has_value());
}

TEST(Checkpoint, AlgorithmNamesRoundTrip) {
  for (Algorithm a : kAllAlgorithms) {
    const auto back = algorithm_from_name(algorithm_name(a));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, a);
  }
  EXPECT_FALSE(algorithm_from_name("DGEMM").has_value());
}

TEST(Checkpoint, LoadDedupsByConfigAndSkipsTornTail) {
  const std::string path =
      ::testing::TempDir() + "capow_ckpt_dedup.jsonl";
  std::remove(path.c_str());
  ResultRecord first = sample_record();
  ResultRecord second = sample_record();
  second.algorithm = Algorithm::kCaps;
  ResultRecord rerun = sample_record();  // same config as `first`
  rerun.seconds = 9.5;
  rerun.status = RunStatus::kOk;
  {
    CheckpointWriter w(path, /*append=*/false);
    ASSERT_TRUE(w.active());
    w.append(first);
    w.append(second);
    w.append(rerun);
  }
  {
    // Simulate a crash mid-write: torn final line with no newline.
    std::ofstream os(path, std::ios::app);
    os << "{\"algorithm\":\"CAPS\",\"n\":51";
  }
  const auto records = load_checkpoint(path);
  ASSERT_EQ(records.size(), 2u);  // last-wins dedup, torn line skipped
  bool saw_rerun = false;
  for (const auto& r : records) {
    if (r.algorithm == first.algorithm && r.n == first.n &&
        r.threads == first.threads) {
      EXPECT_EQ(r.seconds, 9.5);
      EXPECT_EQ(r.status, RunStatus::kOk);
      saw_rerun = true;
    }
  }
  EXPECT_TRUE(saw_rerun);
  EXPECT_TRUE(load_checkpoint(path + ".missing").empty());
  std::remove(path.c_str());
}

TEST(Checkpoint, LoadCountsTheCorruptLinesItSkips) {
  const std::string path =
      ::testing::TempDir() + "capow_ckpt_corrupt.jsonl";
  std::remove(path.c_str());
  ResultRecord first = sample_record();
  ResultRecord second = sample_record();
  second.algorithm = Algorithm::kCaps;
  {
    std::ofstream os(path, std::ios::trunc);
    os << checkpoint_line(first) << '\n';
    os << "{\"algorithm\":\"Strassen\",\"n\":garbage}" << '\n';
    os << checkpoint_line(second) << '\n';
    os << "{\"algorithm\":\"CAPS\",\"n\":51";  // torn tail, no newline
  }
  std::size_t skipped = 0;
  const auto records = load_checkpoint(path, &skipped);
  EXPECT_EQ(records.size(), 2u);  // the intact records still load
  EXPECT_EQ(skipped, 2u);
  EXPECT_EQ(load_checkpoint(path).size(), 2u);  // count is optional
  std::remove(path.c_str());
}

TEST(CommAudit, LineRoundTripsEveryFieldExactly) {
  const CommAuditRecord original =
      run_comm_audit({"summa", 64, 4}, CommAuditOptions{});
  ASSERT_TRUE(original.completed());

  CommAuditRecord parsed;
  ASSERT_TRUE(parse_comm_audit_line(comm_audit_line(original), parsed));
  EXPECT_EQ(parsed.algorithm, original.algorithm);
  EXPECT_EQ(parsed.n, original.n);
  EXPECT_EQ(parsed.ranks, original.ranks);
  EXPECT_EQ(parsed.m_words, original.m_words);
  EXPECT_EQ(parsed.strassen_bound_words, original.strassen_bound_words);
  EXPECT_EQ(parsed.classical_bound_words, original.classical_bound_words);
  EXPECT_EQ(parsed.measured_max_rank_words, original.measured_max_rank_words);
  EXPECT_EQ(parsed.ratio_to_bound, original.ratio_to_bound);
  EXPECT_EQ(parsed.bound_kind, original.bound_kind);
  EXPECT_EQ(parsed.error, original.error);
  // The matrix round-trips in full — counters and clocks — so a
  // resumed report (matrix, critical path, bound tables) is
  // bit-identical to the live one.
  EXPECT_TRUE(parsed.matrix.deterministic_equal(original.matrix));
  for (int src = 0; src < 4; ++src) {
    EXPECT_EQ(parsed.matrix.rank(src).recv_wait_ns,
              original.matrix.rank(src).recv_wait_ns);
    EXPECT_EQ(parsed.matrix.rank(src).active_ns,
              original.matrix.rank(src).active_ns);
    for (int dst = 0; dst < 4; ++dst) {
      EXPECT_EQ(parsed.matrix.edge(src, dst).send_block_ns,
                original.matrix.edge(src, dst).send_block_ns);
    }
  }

  EXPECT_FALSE(parse_comm_audit_line("", parsed));
  EXPECT_FALSE(parse_comm_audit_line("garbage", parsed));
  const std::string line = comm_audit_line(original);
  EXPECT_FALSE(parse_comm_audit_line(line.substr(0, line.size() / 2), parsed));
  // Experiment records are a different kind, not a comm audit.
  EXPECT_FALSE(parse_comm_audit_line(checkpoint_line(sample_record()), parsed));
}

TEST(CommAudit, SharesCheckpointFilesWithExperimentRecords) {
  // The two record kinds coexist in one JSONL file: each loader takes
  // its own lines and skips the other's without counting them corrupt.
  const std::string path = ::testing::TempDir() + "capow_ckpt_mixed.jsonl";
  std::remove(path.c_str());
  const CommAuditRecord audit =
      run_comm_audit({"dist_caps", 128, 2}, CommAuditOptions{});
  {
    std::ofstream os(path, std::ios::trunc);
    os << checkpoint_line(sample_record()) << '\n';
    os << comm_audit_line(audit) << '\n';
  }
  std::size_t skipped = 0;
  EXPECT_EQ(load_checkpoint(path, &skipped).size(), 1u);
  EXPECT_EQ(skipped, 0u);
  const auto audits = load_comm_audits(path);
  ASSERT_EQ(audits.size(), 1u);
  EXPECT_TRUE(audits[0].matrix.deterministic_equal(audit.matrix));
  std::remove(path.c_str());
}

TEST(CommAudit, LoadDedupsByPointLastWins) {
  const std::string path = ::testing::TempDir() + "capow_ckpt_comm_dedup.jsonl";
  std::remove(path.c_str());
  CommAuditRecord first = run_comm_audit({"summa", 64, 4}, CommAuditOptions{});
  CommAuditRecord rerun = first;
  rerun.error = "poisoned on the second pass";
  {
    std::ofstream os(path, std::ios::trunc);
    os << comm_audit_line(first) << '\n';
    os << comm_audit_line(rerun) << '\n';
  }
  const auto audits = load_comm_audits(path);
  ASSERT_EQ(audits.size(), 1u);
  EXPECT_EQ(audits[0].error, rerun.error);
  EXPECT_TRUE(load_comm_audits(path + ".missing").empty());
  std::remove(path.c_str());
}

TEST(CommAudit, RejectsUnsupportedPoints) {
  EXPECT_THROW(run_comm_audit({"cannon", 64, 4}, CommAuditOptions{}),
               std::invalid_argument);
  EXPECT_THROW(run_comm_audit({"summa", 64, 3}, CommAuditOptions{}),
               std::invalid_argument);  // 3 is not a square grid
  EXPECT_THROW(run_comm_audit({"summa", 0, 4}, CommAuditOptions{}),
               std::invalid_argument);
}

TEST(CommAudit, DefaultPointsBeatTheirBoundsAndScrapeDeterministically) {
  // The acceptance bar of the audit feature itself: every default
  // point's busiest rank measures at or above its algorithm's lower
  // bound, and the Prometheus exposition — deterministic fields only —
  // is identical across two independent runs (the CI determinism gate
  // diffs exactly this).
  std::vector<CommAuditRecord> first, second;
  for (const auto& point : default_comm_audit_points()) {
    first.push_back(run_comm_audit(point, CommAuditOptions{}));
    second.push_back(run_comm_audit(point, CommAuditOptions{}));
  }
  for (const auto& r : first) {
    EXPECT_TRUE(r.completed()) << r.algorithm << " n=" << r.n;
    EXPECT_GE(r.ratio_to_bound, 1.0) << r.algorithm << " n=" << r.n;
    EXPECT_TRUE(r.matrix.conserved()) << r.algorithm << " n=" << r.n;
  }
  telemetry::MetricsRegistry a, b;
  export_comm_metrics(a, first);
  export_comm_metrics(b, second);
  EXPECT_EQ(a.to_text(), b.to_text());
  EXPECT_NE(a.to_text().find("capow_comm_bound_ratio"), std::string::npos);
}

TEST(CommAudit, TraceHasOneLanePerRankAndFlowArrows) {
#if !CAPOW_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out: no spans to trace";
#endif
  CommAuditOptions opts;
  opts.collect_trace = true;
  std::vector<telemetry::TraceEvent> events;
  std::uint64_t start_ns = 0;
  const CommAuditRecord rec =
      run_comm_audit({"summa", 64, 4}, opts, &events, &start_ns);
  ASSERT_TRUE(rec.completed());
  ASSERT_FALSE(events.empty());

  std::ostringstream os;
  export_comm_trace(events, rec.ranks, start_ns, os);
  const std::string json = os.str();
  // One lane (tid) per rank, named via thread_name metadata.
  for (int r = 0; r < 4; ++r) {
    EXPECT_NE(json.find("rank " + std::to_string(r)), std::string::npos);
  }
  // Matched send/recv pairs become flow arrows: starts and finishes
  // both present, and at least one arrow per posted message.
  const auto count = [&](const std::string& needle) {
    std::size_t hits = 0;
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + needle.size())) {
      ++hits;
    }
    return hits;
  };
  EXPECT_EQ(count("\"ph\":\"s\""), count("\"ph\":\"f\""));
  EXPECT_GE(count("\"ph\":\"s\""), rec.matrix.total_messages());
}

// Truncates `src` into `dst`, keeping `lines` complete lines plus a torn
// fragment of the next — the on-disk state a kill -9 leaves behind.
void truncate_checkpoint(const std::string& src, const std::string& dst,
                         std::size_t lines) {
  std::ifstream in(src);
  std::ofstream out(dst, std::ios::trunc);
  std::string line;
  std::size_t kept = 0;
  while (kept < lines && std::getline(in, line)) {
    out << line << '\n';
    ++kept;
  }
  if (std::getline(in, line)) {
    out << line.substr(0, line.size() / 2);  // torn, no newline
  }
}

TEST(Checkpoint, ResumeCompletesOnlyMissingConfigsIdentically) {
  const std::string full_path =
      ::testing::TempDir() + "capow_ckpt_full.jsonl";
  const std::string torn_path =
      ::testing::TempDir() + "capow_ckpt_torn.jsonl";
  std::remove(full_path.c_str());
  std::remove(torn_path.c_str());

  ExperimentConfig cfg = fault_config();
  cfg.checkpoint_path = full_path;
  ExperimentRunner uninterrupted(cfg);
  uninterrupted.run();

  truncate_checkpoint(full_path, torn_path, 3);
  ExperimentConfig rcfg = fault_config();
  rcfg.checkpoint_path = torn_path;
  rcfg.resume = true;
  ExperimentRunner resumed(rcfg);
  resumed.run();

  ASSERT_EQ(resumed.run().size(), uninterrupted.run().size());
  for (std::size_t i = 0; i < resumed.run().size(); ++i) {
    const auto& a = uninterrupted.run()[i];
    const auto& b = resumed.run()[i];
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.threads, b.threads);
    EXPECT_EQ(a.seconds, b.seconds);  // replay + rerun, both bitwise
    EXPECT_EQ(a.package_watts, b.package_watts);
    EXPECT_EQ(a.pp0_watts, b.pp0_watts);
    EXPECT_EQ(a.package_energy_j, b.package_energy_j);
    EXPECT_EQ(a.ep, b.ep);
    EXPECT_EQ(a.status, b.status);
  }
  // The resumed run's checkpoint is itself complete and loadable, and
  // the runner reports the torn line it skipped (capow-report surfaces
  // this count so a damaged checkpoint never goes unnoticed).
  EXPECT_EQ(load_checkpoint(torn_path).size(), resumed.run().size());
  EXPECT_EQ(resumed.skipped_checkpoint_lines(), 1u);
  EXPECT_EQ(uninterrupted.skipped_checkpoint_lines(), 0u);
  std::remove(full_path.c_str());
  std::remove(torn_path.c_str());
}

TEST(Checkpoint, FaultedResumeReproducesTheOriginalSchedule) {
  const std::string full_path =
      ::testing::TempDir() + "capow_ckpt_fault_full.jsonl";
  const std::string torn_path =
      ::testing::TempDir() + "capow_ckpt_fault_torn.jsonl";
  std::remove(full_path.c_str());
  std::remove(torn_path.c_str());
  const fault::FaultPlan plan =
      fault::FaultPlan::parse("run.fail=0.3,rapl.fail=0.5,seed=13");

  ExperimentConfig cfg = fault_config();
  cfg.checkpoint_path = full_path;
  std::vector<ResultRecord> original;
  {
    fault::FaultInjector inj(plan);
    fault::FaultScope scope(inj);
    ExperimentRunner runner(cfg);
    original = runner.run();
  }

  truncate_checkpoint(full_path, torn_path, 2);
  ExperimentConfig rcfg = fault_config();
  rcfg.checkpoint_path = torn_path;
  rcfg.resume = true;
  std::vector<ResultRecord> resumed;
  {
    fault::FaultInjector inj(plan);
    fault::FaultScope scope(inj);
    ExperimentRunner runner(rcfg);
    resumed = runner.run();
  }

  // Fault draws are keyed by matrix position, not execution history, so
  // the rerun configurations see the exact schedule the original saw.
  ASSERT_EQ(resumed.size(), original.size());
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(original[i].status, resumed[i].status);
    EXPECT_EQ(original[i].attempts, resumed[i].attempts);
    EXPECT_EQ(original[i].seconds, resumed[i].seconds);
    EXPECT_EQ(original[i].package_watts, resumed[i].package_watts);
    EXPECT_EQ(original[i].error, resumed[i].error);
  }
  std::remove(full_path.c_str());
  std::remove(torn_path.c_str());
}

// ---- Table formatting.

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Algorithm", "N", "Watts"});
  t.add_row({"OpenBLAS", "512", "20.20"});
  t.add_row({"CAPS", "4096", "33.18"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Algorithm"), std::string::npos);
  EXPECT_NE(s.find("OpenBLAS"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, RejectsMismatchedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Format, FixedAndSi) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_si(12.8e9, 1), "12.8G");
  EXPECT_EQ(fmt_si(0.000061, 1), "61.0u");
  EXPECT_EQ(fmt_si(0.0, 1), "0.0");
  EXPECT_EQ(fmt_si(1536.0, 2), "1.54k");
}

TEST(AlgorithmNames, AllNamed) {
  EXPECT_STREQ(algorithm_name(Algorithm::kOpenBlas), "OpenBLAS");
  EXPECT_STREQ(algorithm_name(Algorithm::kStrassen), "Strassen");
  EXPECT_STREQ(algorithm_name(Algorithm::kCaps), "CAPS");
}

}  // namespace
}  // namespace capow::harness
