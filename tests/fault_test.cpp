// Tests for the deterministic fault-injection subsystem: spec parsing,
// the counter-based draw function's determinism and distribution, and
// the process-global install scope.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "capow/fault/fault.hpp"
#include "capow/harness/experiment.hpp"

namespace capow::fault {
namespace {

TEST(FaultPlan, DefaultInjectsNothing) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.any());
  EXPECT_FALSE(plan.any_comm());
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    EXPECT_EQ(plan.probability(static_cast<Site>(i)), 0.0);
  }
}

TEST(FaultPlan, ParsesFullSpec) {
  const FaultPlan plan = FaultPlan::parse(
      "comm.drop=0.01,comm.delay=0.5,comm.delay_ms=2.5,comm.corrupt=0.02,"
      "rapl.fail=0.05,rapl.wrap=1,task.stall=0.1,task.stall_ms=3,"
      "run.fail=0.2,run.stall=0.3,run.stall_ms=40,seed=42");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.comm_drop, 0.01);
  EXPECT_DOUBLE_EQ(plan.comm_delay, 0.5);
  EXPECT_DOUBLE_EQ(plan.comm_delay_ms, 2.5);
  EXPECT_DOUBLE_EQ(plan.comm_corrupt, 0.02);
  EXPECT_DOUBLE_EQ(plan.rapl_fail, 0.05);
  EXPECT_TRUE(plan.rapl_wrap);
  EXPECT_DOUBLE_EQ(plan.task_stall, 0.1);
  EXPECT_DOUBLE_EQ(plan.task_stall_ms, 3.0);
  EXPECT_DOUBLE_EQ(plan.run_fail, 0.2);
  EXPECT_DOUBLE_EQ(plan.run_stall, 0.3);
  EXPECT_DOUBLE_EQ(plan.run_stall_ms, 40.0);
  EXPECT_TRUE(plan.any());
  EXPECT_TRUE(plan.any_comm());
}

TEST(FaultPlan, SpecRoundTrips) {
  const FaultPlan plan =
      FaultPlan::parse("comm.drop=0.01,rapl.fail=0.05,seed=7");
  const FaultPlan again = FaultPlan::parse(plan.spec());
  EXPECT_EQ(again.seed, plan.seed);
  EXPECT_DOUBLE_EQ(again.comm_drop, plan.comm_drop);
  EXPECT_DOUBLE_EQ(again.rapl_fail, plan.rapl_fail);
  EXPECT_EQ(again.spec(), plan.spec());
}

TEST(FaultPlan, ToleratesEmptySegments) {
  const FaultPlan plan = FaultPlan::parse(",comm.drop=0.5,,seed=3,");
  EXPECT_DOUBLE_EQ(plan.comm_drop, 0.5);
  EXPECT_EQ(plan.seed, 3u);
  EXPECT_TRUE(FaultPlan::parse("").any() == false);
}

TEST(FaultPlan, ParsesFlipSites) {
  const FaultPlan plan =
      FaultPlan::parse("mem.flip=0.001,compute.flip=0.002,seed=11");
  EXPECT_DOUBLE_EQ(plan.mem_flip, 0.001);
  EXPECT_DOUBLE_EQ(plan.compute_flip, 0.002);
  EXPECT_TRUE(plan.any());
  EXPECT_TRUE(plan.any_flip());
  EXPECT_FALSE(plan.any_comm());
  EXPECT_DOUBLE_EQ(plan.probability(Site::kMemFlip), 0.001);
  EXPECT_DOUBLE_EQ(plan.probability(Site::kComputeFlip), 0.002);

  const FaultPlan again = FaultPlan::parse(plan.spec());
  EXPECT_DOUBLE_EQ(again.mem_flip, plan.mem_flip);
  EXPECT_DOUBLE_EQ(again.compute_flip, plan.compute_flip);
  EXPECT_EQ(again.spec(), plan.spec());
}

TEST(FaultPlan, UnknownKeyErrorListsValidSites) {
  try {
    FaultPlan::parse("mem.flp=0.1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown key 'mem.flp'"), std::string::npos) << msg;
    // The message enumerates every valid key, canonical-site table plus
    // the magnitude/seed extras, so typos are self-diagnosing.
    for (const char* key :
         {"comm.drop", "comm.delay", "comm.corrupt", "rapl.fail",
          "task.stall", "run.fail", "run.stall", "mem.flip", "compute.flip",
          "rank.kill", "comm.delay_ms", "rapl.wrap", "task.stall_ms",
          "run.stall_ms", "seed"}) {
      EXPECT_NE(msg.find(key), std::string::npos)
          << "missing '" << key << "' in: " << msg;
    }
  }
}

TEST(FaultPlan, ParsesRankKill) {
  const FaultPlan plan = FaultPlan::parse("rank.kill=2/4@5,seed=42");
  ASSERT_EQ(plan.rank_kills.size(), 1u);
  EXPECT_EQ(plan.rank_kills[0].victim, 2);
  EXPECT_EQ(plan.rank_kills[0].world, 4);
  EXPECT_EQ(plan.rank_kills[0].epoch, 5u);
  EXPECT_TRUE(plan.any());
  // rank.kill is a schedule, not a probability: it must not put the
  // comm sites into their randomized path.
  EXPECT_FALSE(plan.any_comm());
  EXPECT_DOUBLE_EQ(plan.probability(Site::kRankKill), 0.0);
}

TEST(FaultPlan, RankKillEpochDefaultsToFirstOperation) {
  const FaultPlan plan = FaultPlan::parse("rank.kill=0/2");
  ASSERT_EQ(plan.rank_kills.size(), 1u);
  EXPECT_EQ(plan.rank_kills[0].epoch, 1u);
}

TEST(FaultPlan, RankKillAccumulatesRepeatedKeys) {
  // Multi-victim chaos schedules repeat the key; each occurrence is one
  // more kill, not an overwrite.
  const FaultPlan plan =
      FaultPlan::parse("rank.kill=1/4@3,rank.kill=2/4@7,seed=9");
  ASSERT_EQ(plan.rank_kills.size(), 2u);
  EXPECT_EQ(plan.rank_kills[0], (RankKillSpec{1, 4, 3}));
  EXPECT_EQ(plan.rank_kills[1], (RankKillSpec{2, 4, 7}));
}

TEST(FaultPlan, RankKillSpecRoundTrips) {
  const FaultPlan plan =
      FaultPlan::parse("rank.kill=1/4@3,rank.kill=0/2,seed=13");
  const FaultPlan again = FaultPlan::parse(plan.spec());
  EXPECT_EQ(again.rank_kills, plan.rank_kills);
  EXPECT_EQ(again.spec(), plan.spec());
}

TEST(FaultPlan, RankKillRejectsImpossibleVictimAtParseTime) {
  // A victim >= world size would silently never fire; the grammar
  // carries the world size precisely so this typo dies at parse time.
  EXPECT_THROW(FaultPlan::parse("rank.kill=4/4"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("rank.kill=7/4@2"), std::invalid_argument);
  try {
    FaultPlan::parse("rank.kill=4/4");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("victim"), std::string::npos) << msg;
    EXPECT_NE(msg.find("world size"), std::string::npos) << msg;
  }
}

TEST(FaultPlan, RankKillRejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("rank.kill=2"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("rank.kill=-1/4"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("rank.kill=0/0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("rank.kill=1/4@0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("rank.kill=a/4"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("rank.kill=1/b"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("rank.kill=1/4@x"), std::invalid_argument);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("bogus.key=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("comm.drop"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("=0.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("comm.drop=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("comm.drop=-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("comm.drop=abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("comm.drop=0.5x"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("comm.delay_ms=-1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("rapl.wrap=2"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("seed=12a"), std::invalid_argument);
}

TEST(FaultPlan, FromEnvReadsCapowFaults) {
  ::setenv("CAPOW_FAULTS", "comm.drop=0.25,seed=9", 1);
  const auto plan = FaultPlan::from_env();
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->comm_drop, 0.25);
  EXPECT_EQ(plan->seed, 9u);

  ::setenv("CAPOW_FAULTS", "", 1);
  EXPECT_FALSE(FaultPlan::from_env().has_value());
  ::unsetenv("CAPOW_FAULTS");
  EXPECT_FALSE(FaultPlan::from_env().has_value());
}

TEST(FaultInjector, FireIsDeterministicPerKey) {
  FaultPlan plan;
  plan.comm_drop = 0.5;
  plan.seed = 123;
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(a.fire(Site::kCommDrop, k), b.fire(Site::kCommDrop, k));
  }
}

TEST(FaultInjector, DifferentSeedsGiveDifferentSchedules) {
  FaultPlan p1, p2;
  p1.comm_drop = p2.comm_drop = 0.5;
  p1.seed = 1;
  p2.seed = 2;
  const FaultInjector a(p1);
  const FaultInjector b(p2);
  int differing = 0;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    if (a.fire(Site::kCommDrop, k) != b.fire(Site::kCommDrop, k)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 100);  // ~50% expected
}

TEST(FaultInjector, FireRateTracksProbability) {
  FaultPlan plan;
  plan.rapl_fail = 0.1;
  plan.seed = 99;
  const FaultInjector inj(plan);
  int fired = 0;
  constexpr int kDraws = 20000;
  for (std::uint64_t k = 0; k < kDraws; ++k) {
    if (inj.fire(Site::kRaplFail, k)) ++fired;
  }
  const double rate = static_cast<double>(fired) / kDraws;
  EXPECT_NEAR(rate, 0.1, 0.02);
}

TEST(FaultInjector, ZeroAndOneProbabilitiesAreExact) {
  FaultPlan plan;
  plan.comm_drop = 1.0;
  const FaultInjector inj(plan);
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE(inj.fire(Site::kCommDrop, k));
    EXPECT_FALSE(inj.fire(Site::kCommDelay, k));  // p = 0
  }
}

TEST(FaultInjector, BeginRunNamespacesDraws) {
  FaultPlan plan;
  plan.comm_drop = 0.5;
  FaultInjector inj(plan);
  inj.begin_run(1);
  std::vector<bool> run1;
  for (std::uint64_t k = 0; k < 200; ++k) {
    run1.push_back(inj.fire(Site::kCommDrop, k));
  }
  inj.begin_run(2);
  std::vector<bool> run2;
  for (std::uint64_t k = 0; k < 200; ++k) {
    run2.push_back(inj.fire(Site::kCommDrop, k));
  }
  EXPECT_NE(run1, run2);  // different run contexts, different schedules
  inj.begin_run(1);
  std::vector<bool> run1_again;
  for (std::uint64_t k = 0; k < 200; ++k) {
    run1_again.push_back(inj.fire(Site::kCommDrop, k));
  }
  EXPECT_EQ(run1, run1_again);  // same run context, same schedule
}

TEST(FaultInjector, FireNextSequenceResetsPerRun) {
  FaultPlan plan;
  plan.rapl_fail = 0.5;
  FaultInjector inj(plan);
  inj.begin_run(7);
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) first.push_back(inj.fire_next(Site::kRaplFail));
  inj.begin_run(7);
  std::vector<bool> second;
  for (int i = 0; i < 100; ++i) {
    second.push_back(inj.fire_next(Site::kRaplFail));
  }
  EXPECT_EQ(first, second);
}

TEST(FaultInjector, FireNextMultisetIsThreadInvariant) {
  // Concurrent fire_next draws may interleave arbitrarily, but the
  // *multiset* of outcomes (= total fire count over N draws) is fixed:
  // each draw consumes a unique sequence number in [0, N).
  FaultPlan plan;
  plan.task_stall = 0.3;
  plan.seed = 5;

  const auto count_fires = [&plan](int threads) {
    FaultInjector inj(plan);
    inj.begin_run(1);
    std::atomic<int> fires{0};
    std::vector<std::thread> pool;
    constexpr int kPerThread = 400;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&inj, &fires] {
        for (int i = 0; i < kPerThread; ++i) {
          if (inj.fire_next(Site::kTaskStall)) fires.fetch_add(1);
        }
      });
    }
    for (auto& t : pool) t.join();
    // Normalize total draws across thread counts: 4 threads * 400 draws
    // vs 1 thread * 1600 draws cover the same sequence range.
    return fires.load();
  };

  FaultInjector serial(plan);
  serial.begin_run(1);
  int serial_fires = 0;
  for (int i = 0; i < 1600; ++i) {
    if (serial.fire_next(Site::kTaskStall)) ++serial_fires;
  }
  EXPECT_EQ(count_fires(4), serial_fires);
}

TEST(FaultInjector, CountersRecordAndReset) {
  FaultInjector inj(FaultPlan{});
  EXPECT_EQ(inj.counters().total(), 0u);
  inj.record(Event::kCommDrop);
  inj.record(Event::kCommDrop);
  inj.record(Event::kRaplWrap, 3);
  EXPECT_EQ(inj.count(Event::kCommDrop), 2u);
  EXPECT_EQ(inj.count(Event::kRaplWrap), 3u);
  EXPECT_EQ(inj.counters().total(), 5u);
  EXPECT_EQ(inj.counters()[Event::kRaplWrap], 3u);
  inj.reset_counters();
  EXPECT_EQ(inj.counters().total(), 0u);
}

TEST(FaultScope, InstallsAndRestores) {
  EXPECT_EQ(FaultInjector::active(), nullptr);
  FaultInjector outer{FaultPlan{}};
  {
    FaultScope scope(outer);
    EXPECT_EQ(FaultInjector::active(), &outer);
    FaultInjector inner{FaultPlan{}};
    {
      FaultScope nested(inner);
      EXPECT_EQ(FaultInjector::active(), &inner);
    }
    EXPECT_EQ(FaultInjector::active(), &outer);
  }
  EXPECT_EQ(FaultInjector::active(), nullptr);
}

TEST(FaultNames, SiteAndEventNamesAreStable) {
  EXPECT_STREQ(site_name(Site::kCommDrop), "comm.drop");
  EXPECT_STREQ(site_name(Site::kRunStall), "run.stall");
  EXPECT_STREQ(site_name(Site::kMemFlip), "mem.flip");
  EXPECT_STREQ(site_name(Site::kComputeFlip), "compute.flip");
  EXPECT_STREQ(event_name(Event::kCommDrop), "comm_drops");
  EXPECT_STREQ(event_name(Event::kRunTimeout), "run_timeouts");
  EXPECT_STREQ(event_name(Event::kMemFlip), "mem_flips");
  EXPECT_STREQ(event_name(Event::kComputeFlip), "compute_flips");
}

TEST(FaultFlip, FlipValueIsAlwaysALargePerturbation) {
  for (double v : {1.0, -3.5, 1e-30, 0.0, 123456.789, -1e12}) {
    const double f = flip_value(v);
    EXPECT_NE(f, v);
    // >= 25% relative change (or an absolute +1 for tiny values): far
    // above rounding noise, so a flip can never hide inside tolerance.
    const double rel =
        std::fabs(f - v) / std::max(std::fabs(v), 1.0);
    EXPECT_GE(rel, 0.25) << "v=" << v << " f=" << f;
  }
}

TEST(FaultFlip, MaybeFlipIsDeterministicAndKeyedOnCoordinates) {
  FaultPlan plan;
  plan.mem_flip = 0.05;
  plan.seed = 7;

  std::vector<double> m1(64 * 64, 1.0), m2(64 * 64, 1.0);
  {
    FaultInjector inj(plan);
    FaultScope scope(inj);
    const std::size_t flips =
        maybe_flip(Site::kMemFlip, key(1, 2), m1.data(), 64, 64, 64);
    EXPECT_GT(flips, 0u);
    EXPECT_EQ(inj.count(Event::kMemFlip), flips);
  }
  {
    FaultInjector inj(plan);
    FaultScope scope(inj);
    maybe_flip(Site::kMemFlip, key(1, 2), m2.data(), 64, 64, 64);
  }
  EXPECT_EQ(m1, m2);  // same plan + same block key => same flips

  // Without an installed injector (or with the site unarmed) the data
  // is untouched.
  std::vector<double> clean(16, 2.0);
  EXPECT_EQ(maybe_flip(Site::kMemFlip, key(1, 2), clean.data(), 4, 4, 4),
            0u);
  EXPECT_EQ(clean, std::vector<double>(16, 2.0));
}

// The harness watchdog's retry path end-to-end. Seed 40 is chosen so
// that run.stall fires on attempt 1 and stays quiet on attempt 2 for
// every run_index in this 3-record matrix: each record's first attempt
// stalls past the watchdog, is abandoned to its detached thread, and
// the retry succeeds. It lives in this binary (not harness_test)
// because the TSan CI leg runs fault_test — the watchdog/attempt-thread
// handoff is exactly the race that leg exists to guard.
TEST(HarnessWatchdog, StalledAttemptTimesOutThenRetrySucceeds) {
  FaultInjector inj(
      FaultPlan::parse("run.stall=0.5,run.stall_ms=2000,seed=40"));
  FaultScope scope(inj);

  harness::ExperimentConfig cfg;
  cfg.sizes = {64};
  cfg.thread_counts = {1};
  cfg.quiesce_seconds = 0.0;
  cfg.max_run_attempts = 3;
  cfg.run_timeout_seconds = 0.5;
  harness::ExperimentRunner runner(cfg);
  const auto& results = runner.run();
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_EQ(r.status, harness::RunStatus::kRetried);
    EXPECT_EQ(r.attempts, 2);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_TRUE(r.error.empty()) << r.error;
  }
  EXPECT_EQ(inj.count(Event::kRunTimeout), 3u);
  EXPECT_EQ(inj.count(Event::kRunRetry), 3u);
}

TEST(FaultKey, MixesAllCoordinates) {
  EXPECT_NE(key(1, 2, 3), key(1, 2, 4));
  EXPECT_NE(key(1, 2), key(2, 1));
  EXPECT_NE(key(1), key(2));
  EXPECT_EQ(key(5, 6, 7), key(5, 6, 7));
}

}  // namespace
}  // namespace capow::fault
