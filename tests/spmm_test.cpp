// Tests for sparse-times-dense multiplication (SpMM).
#include <gtest/gtest.h>

#include "capow/blas/gemm_ref.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"
#include "capow/sim/executor.hpp"
#include "capow/sparse/spmm.hpp"
#include "capow/trace/counters.hpp"

namespace capow::sparse {
namespace {

using linalg::Matrix;

class SpmmTest
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(SpmmTest, MatchesDenseReference) {
  const auto [density, k] = GetParam();
  const std::size_t m = 70, n = 50;
  const CsrMatrix a = random_sparse(m, n, density, 31);
  const Matrix b = linalg::random_matrix(n, k, 32);
  const Matrix a_dense = csr_to_dense(a);

  Matrix expect(m, k), got(m, k, -5.0);
  blas::gemm_reference(a_dense.view(), b.view(), expect.view());
  spmm(a, b.view(), got.view());
  EXPECT_TRUE(linalg::allclose(got.view(), expect.view(), 1e-12, 1e-12))
      << "density=" << density << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpmmTest,
    ::testing::Combine(::testing::Values(0.02, 0.1, 0.5),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{17})));

TEST(Spmm, ParallelMatchesSerial) {
  const CsrMatrix a = random_sparse(300, 200, 0.05, 41);
  const Matrix b = linalg::random_matrix(200, 8, 42);
  Matrix serial(300, 8), parallel(300, 8);
  tasking::ThreadPool pool(3);
  spmm(a, b.view(), serial.view());
  spmm(a, b.view(), parallel.view(), &pool);
  EXPECT_TRUE(linalg::allclose(parallel.view(), serial.view(), 0.0, 0.0));
}

TEST(Spmm, DimensionMismatchThrows) {
  const CsrMatrix a = random_sparse(8, 8, 0.5, 1);
  Matrix b(7, 3), c(8, 3);
  EXPECT_THROW(spmm(a, b.view(), c.view()), std::invalid_argument);
  Matrix b2(8, 3), c2(8, 4);
  EXPECT_THROW(spmm(a, b2.view(), c2.view()), std::invalid_argument);
}

TEST(Spmm, InstrumentedCountsMatchModelExactly) {
  const CsrMatrix a = random_sparse(120, 90, 0.07, 51);
  const SpmvShape shape = shape_of(a);
  for (std::size_t k : {1u, 6u}) {
    const Matrix b = linalg::random_matrix(90, k, 52);
    Matrix c(120, k);
    trace::Recorder rec;
    {
      trace::RecordingScope scope(rec);
      spmm(a, b.view(), c.view());
    }
    EXPECT_EQ(static_cast<double>(rec.total().flops), spmm_flops(shape, k));
    EXPECT_EQ(static_cast<double>(rec.total().dram_bytes()),
              spmm_traffic_bytes(shape, k));
  }
}

TEST(Spmm, WiderRhsRaisesArithmeticIntensity) {
  const CsrMatrix a = random_sparse(1000, 1000, 0.01, 61);
  const SpmvShape shape = shape_of(a);
  const double i1 = spmm_flops(shape, 1) / spmm_traffic_bytes(shape, 1);
  const double i16 = spmm_flops(shape, 16) / spmm_traffic_bytes(shape, 16);
  EXPECT_GT(i16, 1.5 * i1);
}

TEST(Spmm, ProfileBehaviour) {
  const auto m = machine::haswell_e3_1225();
  const CsrMatrix a = random_sparse(8192, 8192, 0.004, 71);
  const SpmvShape shape = shape_of(a);

  // Wider SpMM completes more useful flops per second (better EP basis).
  const auto k1 = sim::simulate(m, spmm_profile(shape, 1, m, 4, 10), 4);
  const auto k8 = sim::simulate(m, spmm_profile(shape, 8, m, 4, 10), 4);
  const double rate1 = spmm_flops(shape, 1) * 10 / k1.seconds;
  const double rate8 = spmm_flops(shape, 8) * 10 / k8.seconds;
  EXPECT_GT(rate8, 2.0 * rate1);

  EXPECT_THROW(spmm_profile(shape, 0, m, 4, 1), std::invalid_argument);
  EXPECT_THROW(spmm_profile(shape, 4, m, 4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace capow::sparse
