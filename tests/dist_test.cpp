// Tests for the mini-MPI runtime, distributed CAPS, and the
// interconnect energy model.
#include <atomic>
#include <numeric>

#include <gtest/gtest.h>

#include "capow/blas/gemm_ref.hpp"
#include "capow/dist/comm.hpp"
#include "capow/dist/dist_caps.hpp"
#include "capow/dist/energy.hpp"
#include "capow/dist/summa.hpp"
#include "capow/fault/fault.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"
#include "capow/trace/counters.hpp"

namespace capow::dist {
namespace {

using linalg::Matrix;
using linalg::random_matrix;

TEST(World, RejectsZeroRanks) {
  EXPECT_THROW(World{0}, std::invalid_argument);
}

TEST(World, RunsEveryRank) {
  World world(4);
  std::atomic<int> mask{0};
  world.run([&](Communicator& comm) {
    mask.fetch_or(1 << comm.rank());
    EXPECT_EQ(comm.size(), 4);
  });
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(World, PropagatesRankExceptions) {
  World world(2);
  EXPECT_THROW(world.run([](Communicator& comm) {
                 comm.barrier();  // both ranks reach here first
                 if (comm.rank() == 1) throw std::runtime_error("rank1");
               }),
               std::runtime_error);
}

TEST(Comm, PointToPointRoundTrip) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> payload{1.0, 2.0, 3.0};
      comm.send(1, 7, payload);
      const Message echo = comm.recv(1, 8);
      EXPECT_EQ(echo.payload, payload);
      EXPECT_EQ(echo.source, 1);
      EXPECT_EQ(echo.tag, 8);
    } else {
      Message m = comm.recv(0, 7);
      comm.send(0, 8, m.payload);
    }
  });
}

TEST(Comm, TagsAreSelective) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<double>{1.0});
      comm.send(1, 2, std::vector<double>{2.0});
    } else {
      // Receive out of send order by tag.
      EXPECT_EQ(comm.recv(0, 2).payload[0], 2.0);
      EXPECT_EQ(comm.recv(0, 1).payload[0], 1.0);
    }
  });
}

TEST(Comm, SameTagPreservesOrder) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      for (double v : {1.0, 2.0, 3.0}) {
        comm.send(1, 5, std::vector<double>{v});
      }
    } else {
      for (double v : {1.0, 2.0, 3.0}) {
        EXPECT_EQ(comm.recv(0, 5).payload[0], v);
      }
    }
  });
}

TEST(Comm, InvalidRanksThrow) {
  World world(2);
  world.run([](Communicator& comm) {
    EXPECT_THROW(comm.send(5, 0, std::vector<double>{}),
                 std::out_of_range);
    EXPECT_THROW(comm.recv(-1, 0), std::out_of_range);
  });
}

TEST(Comm, BarrierSynchronizesRepeatedly) {
  World world(3);
  std::atomic<int> phase{0};
  world.run([&](Communicator& comm) {
    for (int round = 0; round < 5; ++round) {
      phase.fetch_add(1);
      comm.barrier();
      // After the barrier all 3 increments of this round are visible.
      EXPECT_GE(phase.load(), 3 * (round + 1));
      comm.barrier();
    }
  });
  EXPECT_EQ(phase.load(), 15);
}

TEST(Comm, Broadcast) {
  World world(4);
  world.run([](Communicator& comm) {
    std::vector<double> data;
    if (comm.rank() == 2) data = {4.0, 5.0};
    comm.broadcast(2, data);
    ASSERT_EQ(data.size(), 2u);
    EXPECT_EQ(data[0], 4.0);
    EXPECT_EQ(data[1], 5.0);
  });
}

TEST(Comm, ReduceSum) {
  World world(4);
  world.run([](Communicator& comm) {
    std::vector<double> data{static_cast<double>(comm.rank() + 1)};
    comm.reduce_sum(0, data);
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(data[0], 10.0);  // 1+2+3+4
    }
  });
}

TEST(Comm, GatherInRankOrder) {
  World world(3);
  world.run([](Communicator& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank() * 10)};
    std::vector<std::vector<double>> out;
    comm.gather(0, mine, out);
    if (comm.rank() == 0) {
      ASSERT_EQ(out.size(), 3u);
      EXPECT_EQ(out[0][0], 0.0);
      EXPECT_EQ(out[1][0], 10.0);
      EXPECT_EQ(out[2][0], 20.0);
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST(Comm, MessageBytesAreCounted) {
  trace::Recorder rec;
  trace::RecordingScope scope(rec);
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::vector<double>(100, 1.0));
    } else {
      comm.recv(0, 0);
    }
  });
  EXPECT_EQ(rec.total().messages, 1u);
  EXPECT_EQ(rec.total().message_bytes, 800u);
}

// ---- fault tolerance ----------------------------------------------------

WorldOptions fast_timeouts() {
  WorldOptions o;
  o.recv_timeout_seconds = 0.25;
  o.retry_backoff_us = 1.0;
  return o;
}

// Regression: recv() from a peer that exited without sending used to
// block forever on the mailbox condition variable; it must throw.
TEST(CommFault, RecvFromExitedPeerThrows) {
  World world(2, fast_timeouts());
  EXPECT_THROW(world.run([](Communicator& comm) {
                 if (comm.rank() == 1) comm.recv(0, 42);
                 // rank 0 exits immediately without sending.
               }),
               CommError);
}

TEST(CommFault, RecvTimesOut) {
  // Both ranks recv from each other but nobody sends: neither exits, so
  // only the timeout can unblock them.
  World world(2, fast_timeouts());
  EXPECT_THROW(world.run([](Communicator& comm) {
                 comm.recv(1 - comm.rank(), 0);
               }),
               CommError);
}

TEST(CommFault, PoisonedWorldUnblocksPeersAndKeepsRootCause) {
  // Rank 0 dies with a logic_error while rank 1 is blocked in recv.
  // Rank 1 must be woken with CommError, and run() must rethrow the
  // root cause, not the secondary CommError.
  World world(2, fast_timeouts());
  EXPECT_THROW(world.run([](Communicator& comm) {
                 if (comm.rank() == 0) throw std::logic_error("root cause");
                 comm.recv(0, 0);
               }),
               std::logic_error);
}

TEST(CommFault, BarrierUnblocksWhenPeerExits) {
  World world(2, fast_timeouts());
  EXPECT_THROW(world.run([](Communicator& comm) {
                 if (comm.rank() == 1) comm.barrier();
                 // rank 0 never arrives.
               }),
               CommError);
}

TEST(CommFault, SendRetriesThroughDroppedDeliveries) {
  fault::FaultPlan plan;
  plan.comm_drop = 0.4;
  plan.seed = 11;
  fault::FaultInjector inj(plan);
  fault::FaultScope scope(inj);

  World world(2, fast_timeouts());
  std::vector<double> received;
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        comm.send(1, i, std::vector<double>{static_cast<double>(i)});
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        received.push_back(comm.recv(0, i).payload.at(0));
      }
    }
  });
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(received[static_cast<std::size_t>(i)], i);
  }
  // With p=0.4 over 50 messages some drops are statistically certain;
  // every drop must be matched by a retry that got the message through.
  EXPECT_GT(inj.count(fault::Event::kCommDrop), 0u);
  EXPECT_GE(inj.count(fault::Event::kCommRetry),
            inj.count(fault::Event::kCommDrop));
  EXPECT_EQ(inj.count(fault::Event::kCommSendFailure), 0u);
}

TEST(CommFault, SendFailsAfterExhaustingAttempts) {
  fault::FaultPlan plan;
  plan.comm_drop = 1.0;  // every delivery attempt is lost
  fault::FaultInjector inj(plan);
  fault::FaultScope scope(inj);

  WorldOptions opts = fast_timeouts();
  opts.max_send_attempts = 3;
  World world(2, opts);
  EXPECT_THROW(world.run([](Communicator& comm) {
                 if (comm.rank() == 0) {
                   comm.send(1, 0, std::vector<double>{1.0});
                 } else {
                   comm.recv(0, 0);
                 }
               }),
               CommError);
  EXPECT_EQ(inj.count(fault::Event::kCommSendFailure), 1u);
  EXPECT_EQ(inj.count(fault::Event::kCommDrop), 3u);
}

TEST(CommFault, CorruptedDeliveriesAreRetransmitted) {
  fault::FaultPlan plan;
  plan.comm_corrupt = 0.5;
  plan.seed = 21;
  fault::FaultInjector inj(plan);
  fault::FaultScope scope(inj);

  World world(2, fast_timeouts());
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 40; ++i) {
        comm.send(1, i, std::vector<double>{3.14});
      }
    } else {
      for (int i = 0; i < 40; ++i) {
        EXPECT_DOUBLE_EQ(comm.recv(0, i).payload.at(0), 3.14);
      }
    }
  });
  EXPECT_GT(inj.count(fault::Event::kCommCorrupt), 0u);
  EXPECT_EQ(inj.count(fault::Event::kCommSendFailure), 0u);
}

TEST(CommFault, InjectedPingPongIsDeterministic) {
  // Same seed, two independent worlds: identical fault counters even
  // though thread interleavings differ between runs.
  const auto run_once = [](std::uint64_t seed) {
    fault::FaultPlan plan;
    plan.comm_drop = 0.2;
    plan.comm_corrupt = 0.1;
    plan.seed = seed;
    fault::FaultInjector inj(plan);
    fault::FaultScope scope(inj);
    World world(2, fast_timeouts());
    world.run([](Communicator& comm) {
      for (int i = 0; i < 30; ++i) {
        if (comm.rank() == 0) {
          comm.send(1, i, std::vector<double>{1.0});
          comm.recv(1, i);
        } else {
          comm.recv(0, i);
          comm.send(0, i, std::vector<double>{2.0});
        }
      }
    });
    return inj.counters();
  };
  const fault::FaultCounters first = run_once(77);
  const fault::FaultCounters second = run_once(77);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.total(), 0u);
}

TEST(CommFault, WorldRejectsBadOptions) {
  WorldOptions bad_timeout;
  bad_timeout.recv_timeout_seconds = 0.0;
  EXPECT_THROW(World(2, bad_timeout), std::invalid_argument);
  WorldOptions bad_attempts;
  bad_attempts.max_send_attempts = 0;
  EXPECT_THROW(World(2, bad_attempts), std::invalid_argument);
}

class DistCapsTest : public ::testing::TestWithParam<int> {};

TEST_P(DistCapsTest, MatchesReferenceAcrossRankCounts) {
  const int ranks = GetParam();
  const std::size_t n = 128;
  Matrix a = random_matrix(n, n, 50), b = random_matrix(n, n, 51);
  Matrix expect(n, n), got(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());

  World world(ranks);
  DistCapsOptions opts;
  opts.local.base_cutoff = 16;
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      dist_caps_multiply(comm, a.view(), b.view(), got.view(), opts);
    } else {
      Matrix empty;
      dist_caps_multiply(comm, empty.view(), empty.view(), empty.view(),
                         opts);
    }
  });
  EXPECT_TRUE(linalg::allclose(got.view(), expect.view(), 1e-10, 1e-10))
      << "ranks=" << ranks;
}

INSTANTIATE_TEST_SUITE_P(RankSweep, DistCapsTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 10, 14));

TEST(DistCaps, TwoTreeLevelsAcross49Ranks) {
  // 49 ranks exercise two genuine distributed BFS levels (7 sub-groups
  // of 7), with leaf solves at the 64-dimension threshold.
  const std::size_t n = 256;
  Matrix a = random_matrix(n, n, 90), b = random_matrix(n, n, 91);
  Matrix expect(n, n), got(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  World world(49);
  DistCapsOptions opts;
  opts.local.base_cutoff = 32;
  world.run([&](Communicator& comm) {
    Matrix empty;
    const bool root = comm.rank() == 0;
    dist_caps_multiply(comm, root ? a.view() : empty.view(),
                       root ? b.view() : empty.view(),
                       root ? got.view() : empty.view(), opts);
  });
  EXPECT_TRUE(linalg::allclose(got.view(), expect.view(), 1e-10, 1e-10));
}

TEST(DistCaps, DistributionLevelCapForcesLocalSolve) {
  const std::size_t n = 128;
  Matrix a = random_matrix(n, n, 95), b = random_matrix(n, n, 96);
  Matrix expect(n, n), got(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  World world(7);
  DistCapsOptions opts;
  opts.local.base_cutoff = 16;
  opts.max_distribution_levels = 0;  // never distribute

  trace::Recorder rec;
  trace::RecordingScope scope(rec);
  world.run([&](Communicator& comm) {
    Matrix empty;
    const bool root = comm.rank() == 0;
    dist_caps_multiply(comm, root ? a.view() : empty.view(),
                       root ? b.view() : empty.view(),
                       root ? got.view() : empty.view(), opts);
  });
  EXPECT_TRUE(linalg::allclose(got.view(), expect.view(), 1e-10, 1e-10));
  // Only the shape broadcast crossed the wire.
  EXPECT_EQ(rec.total().message_bytes, 6u * 8);
}

TEST(DistCaps, SmallProblemSolvedLocally) {
  const std::size_t n = 32;
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  Matrix expect(n, n), got(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  World world(4);
  DistCapsOptions opts;
  opts.local.base_cutoff = 16;
  opts.distribute_threshold = 64;

  trace::Recorder rec;
  trace::RecordingScope scope(rec);
  world.run([&](Communicator& comm) {
    Matrix empty;
    if (comm.rank() == 0) {
      dist_caps_multiply(comm, a.view(), b.view(), got.view(), opts);
    } else {
      dist_caps_multiply(comm, empty.view(), empty.view(), empty.view(),
                         opts);
    }
  });
  EXPECT_TRUE(linalg::allclose(got.view(), expect.view(), 1e-11, 1e-11));
  // Only the shape broadcast crossed the wire.
  EXPECT_EQ(rec.total().message_bytes, 3u * 8);
}

TEST(DistBlockGemm, MatchesReference) {
  for (int ranks : {1, 2, 3, 5}) {
    const std::size_t m = 45, k = 30, n = 27;
    Matrix a = random_matrix(m, k, 60), b = random_matrix(k, n, 61);
    Matrix expect(m, n), got(m, n);
    blas::gemm_reference(a.view(), b.view(), expect.view());
    World world(ranks);
    world.run([&](Communicator& comm) {
      Matrix empty;
      if (comm.rank() == 0) {
        dist_block_gemm(comm, a.view(), b.view(), got.view());
      } else {
        dist_block_gemm(comm, empty.view(), empty.view(), empty.view());
      }
    });
    EXPECT_TRUE(linalg::allclose(got.view(), expect.view(), 1e-11, 1e-11))
        << "ranks=" << ranks;
  }
}

TEST(DistComparison, CapsMovesFewerBytesThanBroadcastBaseline) {
  // The Eq (8) story at system level: CAPS ships 3 quadrant-sized
  // buffers per remote sub-product; the classical baseline broadcasts
  // all of B to every rank.
  const std::size_t n = 128;
  Matrix a = random_matrix(n, n, 70), b = random_matrix(n, n, 71);
  Matrix c(n, n);

  const auto run_counted = [&](auto&& fn) {
    trace::Recorder rec;
    trace::RecordingScope scope(rec);
    World world(7);
    world.run(fn);
    return rec.total().message_bytes;
  };

  DistCapsOptions opts;
  opts.local.base_cutoff = 16;
  const auto caps_bytes = run_counted([&](Communicator& comm) {
    Matrix empty;
    if (comm.rank() == 0) {
      dist_caps_multiply(comm, a.view(), b.view(), c.view(), opts);
    } else {
      dist_caps_multiply(comm, empty.view(), empty.view(), empty.view(),
                         opts);
    }
  });
  const auto classical_bytes = run_counted([&](Communicator& comm) {
    Matrix empty;
    if (comm.rank() == 0) {
      dist_block_gemm(comm, a.view(), b.view(), c.view());
    } else {
      dist_block_gemm(comm, empty.view(), empty.view(), empty.view());
    }
  });
  EXPECT_LT(caps_bytes, classical_bytes);
}

TEST(World, RankThreadsRecordIntoDistinctTraceSlots) {
  // Rank threads are parallel units: each claims trace slot rank + 1
  // (ScopedRecorderSlot), so concurrent ranks never race on the
  // sequential slot 0 and no counter update is lost.
  trace::Recorder rec;
  trace::RecordingScope scope(rec);
  const int ranks = 5;
  World world(ranks);
  world.run([](Communicator& comm) {
    trace::count_flops(static_cast<std::uint64_t>(comm.rank()) + 1);
  });
  for (int r = 0; r < ranks; ++r) {
    EXPECT_EQ(rec.slot(static_cast<std::size_t>(r) + 1).flops,
              static_cast<std::uint64_t>(r) + 1);
  }
  EXPECT_EQ(rec.slot(0).flops, 0u);
  EXPECT_EQ(rec.total().flops, 15u);
}

// ---- per-edge CommStats accounting (comm_stats.hpp) ----

TEST(CommStats, SummaMatrixIsByteExact) {
  // 2x2 grid, n = 64: every block is 32x32 doubles = 8192 bytes, the
  // dimension negotiation is one 8-byte send per non-root rank. Per
  // edge that gives (scatter + per-step broadcasts + gather):
  //   0->1: nego 8 + A 8192 + B 8192 + row-bcast k=0 8192 = 24584
  //   0->2: nego 8 + A 8192 + B 8192 + col-bcast k=0 8192 = 24584
  //   0->3: nego 8 + A 8192 + B 8192                      = 16392
  //   1->0: row-bcast k=1 8192 + gather C 8192            = 16384
  //   2->0: col-bcast k=1 8192 + gather C 8192            = 16384
  //   3->0: gather C 8192; 1->3, 2->3, 3->1, 3->2: one bcast each.
  const std::size_t n = 64;
  Matrix a = random_matrix(n, n, 80);
  Matrix b = random_matrix(n, n, 81);
  Matrix c(n, n);
  abft::AbftConfig abft_cfg;
  abft_cfg.mode = abft::AbftMode::kOff;
  World world(4);
  world.run([&](Communicator& comm) {
    Matrix empty;
    const bool root = comm.rank() == 0;
    summa_multiply(comm, GridSpec{2, 2, 1}, root ? a.view() : empty.view(),
                   root ? b.view() : empty.view(),
                   root ? c.view() : empty.view(), abft_cfg);
  });

  const CommMatrix& m = world.comm_stats();
  ASSERT_EQ(m.ranks(), 4);
  const std::uint64_t expect[4][4] = {
      {0, 24584, 24584, 16392},
      {16384, 0, 0, 8192},
      {16384, 0, 0, 8192},
      {8192, 8192, 8192, 0},
  };
  for (int src = 0; src < 4; ++src) {
    for (int dst = 0; dst < 4; ++dst) {
      EXPECT_EQ(m.edge(src, dst).payload_bytes, expect[src][dst])
          << "edge " << src << "->" << dst;
    }
  }
  // Conservation: every posted byte was consumed by its receiver.
  EXPECT_TRUE(m.conserved());
  EXPECT_EQ(m.total_retransmits(), 0u);
  EXPECT_EQ(m.total_corruptions(), 0u);
}

TEST(CommStats, DistCapsMatrixIsByteExact) {
  // P = 2, n = 128, distribute threshold 64: one BFS level, h = 64.
  // Round-robin ownership gives rank 1 three of the seven
  // sub-products; each ships A and B quadrants out (2 * 64^2 doubles)
  // and one C quadrant back (64^2 doubles), plus one 8-byte shape
  // broadcast from the root.
  const std::size_t n = 128;
  Matrix a = random_matrix(n, n, 80);
  Matrix b = random_matrix(n, n, 81);
  Matrix c(n, n);
  World world(2);
  world.run([&](Communicator& comm) {
    Matrix empty;
    const bool root = comm.rank() == 0;
    dist_caps_multiply(comm, root ? a.view() : empty.view(),
                       root ? b.view() : empty.view(),
                       root ? c.view() : empty.view());
  });

  const CommMatrix& m = world.comm_stats();
  ASSERT_EQ(m.ranks(), 2);
  EXPECT_EQ(m.edge(0, 1).payload_bytes, 8u + 3u * 2u * 64u * 64u * 8u);
  EXPECT_EQ(m.edge(1, 0).payload_bytes, 3u * 64u * 64u * 8u);
  EXPECT_TRUE(m.conserved());
  EXPECT_EQ(m.bytes_sent_by(0), m.edge(0, 1).payload_bytes);
  EXPECT_EQ(m.bytes_received_by(0), m.edge(1, 0).payload_bytes);
}

TEST(CommStats, DisabledCollectorLeavesMatrixEmpty) {
  WorldOptions opts;
  opts.comm_stats = false;
  World world(2, opts);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::vector<double>{1.0});
    } else {
      comm.recv(0, 0);
    }
  });
  EXPECT_TRUE(world.comm_stats().empty());
}

TEST(CommStats, DeterministicUnderFixedFaultSeed) {
  // Same seed, two independent worlds: byte-identical matrices on the
  // deterministic fields (messages, bytes, retransmits, corruptions),
  // even though wall-clock waits differ run to run.
  const auto run_once = [](std::uint64_t seed) {
    fault::FaultPlan plan;
    plan.comm_drop = 0.2;
    plan.comm_corrupt = 0.1;
    plan.seed = seed;
    fault::FaultInjector inj(plan);
    fault::FaultScope scope(inj);
    const std::size_t n = 128;
    Matrix a = random_matrix(n, n, 80);
    Matrix b = random_matrix(n, n, 81);
    Matrix c(n, n);
    World world(2, fast_timeouts());
    world.run([&](Communicator& comm) {
      Matrix empty;
      const bool root = comm.rank() == 0;
      dist_caps_multiply(comm, root ? a.view() : empty.view(),
                         root ? b.view() : empty.view(),
                         root ? c.view() : empty.view());
    });
    return world.comm_stats();
  };
  const CommMatrix first = run_once(42);
  const CommMatrix second = run_once(42);
  EXPECT_TRUE(first.deterministic_equal(second));
  EXPECT_GT(first.total_retransmits(), 0u);
}

TEST(CommStats, PoisonedWorldStillMergesCounters) {
  // Every delivery attempt lost: send() exhausts its 3 attempts and
  // poisons the world. The teardown merge runs before the rethrow, so
  // the retransmit/failure counters written up to the crash survive
  // into comm_stats() instead of being dropped with the world.
  fault::FaultPlan plan;
  plan.comm_drop = 1.0;
  fault::FaultInjector inj(plan);
  fault::FaultScope scope(inj);

  WorldOptions opts = fast_timeouts();
  opts.max_send_attempts = 3;
  World world(2, opts);
  EXPECT_THROW(world.run([](Communicator& comm) {
                 if (comm.rank() == 0) {
                   comm.send(1, 0, std::vector<double>{1.0});
                 } else {
                   comm.recv(0, 0);
                 }
               }),
               CommError);

  const CommMatrix& m = world.comm_stats();
  ASSERT_EQ(m.ranks(), 2);
  EXPECT_EQ(m.edge(0, 1).messages, 0u);
  EXPECT_EQ(m.edge(0, 1).payload_bytes, 0u);
  EXPECT_EQ(m.edge(0, 1).retransmits, 2u);  // attempts 1..2 re-sent
  EXPECT_EQ(m.rank(0).send_failures, 1u);
  EXPECT_FALSE(m.empty());
}

TEST(DistEnergy, EstimateBehaviour) {
  DistMachineSpec spec;
  // Compute-dominated run.
  const auto comp = estimate_distributed_run(spec, 4, 51.2e9, 1.0, 1e6, 10);
  EXPECT_NEAR(comp.seconds, 1.0, 1e-3);
  EXPECT_GT(comp.node_energy_j, 0.0);
  EXPECT_GT(comp.link_energy_j, 0.0);
  EXPECT_NEAR(comp.avg_power_w(),
              comp.total_energy_j() / comp.seconds, 1e-9);

  // Communication-dominated run: doubling bytes doubles time.
  const auto c1 = estimate_distributed_run(spec, 2, 1.0, 1.0, 1.25e9, 1);
  const auto c2 = estimate_distributed_run(spec, 2, 1.0, 1.0, 2.5e9, 1);
  EXPECT_NEAR(c2.seconds / c1.seconds, 2.0, 0.01);

  // More ranks = more node + NIC energy at fixed work.
  const auto r2 = estimate_distributed_run(spec, 2, 1e9, 0.5, 1e6, 1);
  const auto r8 = estimate_distributed_run(spec, 8, 1e9, 0.5, 1e6, 1);
  EXPECT_GT(r8.node_energy_j, r2.node_energy_j);
}

TEST(DistEnergy, Validation) {
  DistMachineSpec spec;
  EXPECT_THROW(estimate_distributed_run(spec, 0, 1.0, 1.0, 1.0, 0),
               std::invalid_argument);
  EXPECT_THROW(estimate_distributed_run(spec, 1, 1.0, 0.0, 1.0, 0),
               std::invalid_argument);
  EXPECT_THROW(estimate_distributed_run(spec, 1, -1.0, 1.0, 1.0, 0),
               std::invalid_argument);
  spec.link_bandwidth_bytes_per_s = 0.0;
  EXPECT_THROW(estimate_distributed_run(spec, 1, 1.0, 1.0, 1.0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace capow::dist
