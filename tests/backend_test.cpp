// Tests for the capow::backend device seam: registry identity, parse /
// env / resolve rules, fallback-aware dispatch (with the golden
// bit-identity + counter contract), the per-device allocator registry,
// the ambient-arena scope machinery, and the heterogeneous EP study.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "capow/api/matmul.hpp"
#include "capow/backend/backend.hpp"
#include "capow/backend/memory.hpp"
#include "capow/backend/sim_accel.hpp"
#include "capow/core/crossover.hpp"
#include "capow/harness/backend_study.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"

namespace capow {
namespace {

using backend::AllocatorRegistry;
using backend::BackendId;
using backend::BackendRegistry;
using core::AlgorithmId;
using linalg::allclose;
using linalg::Matrix;
using linalg::random_matrix;

TEST(BackendRegistry, TwoDeviceClassesRegistered) {
  BackendRegistry& reg = BackendRegistry::instance();
  ASSERT_EQ(reg.all().size(), backend::kBackendCount);
  backend::Backend* cpu = reg.find(BackendId::kCpu);
  backend::Backend* sim = reg.find(BackendId::kSimAccel);
  ASSERT_NE(cpu, nullptr);
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(cpu->id(), BackendId::kCpu);
  EXPECT_STREQ(cpu->name(), "cpu");
  EXPECT_EQ(sim->id(), BackendId::kSimAccel);
  EXPECT_STREQ(sim->name(), "sim_accel");
  EXPECT_EQ(&reg.host(), cpu);
}

TEST(BackendRegistry, FindByName) {
  BackendRegistry& reg = BackendRegistry::instance();
  EXPECT_EQ(reg.find("cpu"), reg.find(BackendId::kCpu));
  EXPECT_EQ(reg.find("sim_accel"), reg.find(BackendId::kSimAccel));
  EXPECT_EQ(reg.find("gpu"), nullptr);
}

TEST(BackendRegistry, CapabilitiesMatchTheDesign) {
  BackendRegistry& reg = BackendRegistry::instance();
  backend::Backend& cpu = *reg.find(BackendId::kCpu);
  backend::Backend& sim = *reg.find(BackendId::kSimAccel);
  // Host runs everything; the accelerator only dense GEMM.
  for (AlgorithmId a : {AlgorithmId::kOpenBlas, AlgorithmId::kStrassen,
                        AlgorithmId::kCaps}) {
    EXPECT_TRUE(cpu.supports(a));
  }
  EXPECT_TRUE(sim.supports(AlgorithmId::kOpenBlas));
  EXPECT_FALSE(sim.supports(AlgorithmId::kStrassen));
  EXPECT_FALSE(sim.supports(AlgorithmId::kCaps));
  // Power-plane binding: socket for the host, compute die for the card.
  EXPECT_EQ(cpu.power_plane(), machine::PowerPlane::kPackage);
  EXPECT_EQ(sim.power_plane(), machine::PowerPlane::kPP0);
}

TEST(BackendRegistry, HostArenaIsTheProcessArena) {
  backend::Backend& cpu = BackendRegistry::instance().host();
  EXPECT_EQ(&cpu.arena(), &blas::WorkspaceArena::process_arena());
  backend::Backend& sim =
      *BackendRegistry::instance().find(BackendId::kSimAccel);
  EXPECT_NE(&sim.arena(), &cpu.arena());
}

TEST(BackendParse, NamesAutoAndUnknown) {
  EXPECT_EQ(backend::parse_backend("cpu"), BackendId::kCpu);
  EXPECT_EQ(backend::parse_backend("sim_accel"), BackendId::kSimAccel);
  EXPECT_EQ(backend::parse_backend("auto"), std::nullopt);
  EXPECT_EQ(backend::parse_backend(""), std::nullopt);
  try {
    backend::parse_backend("tpu");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    // The message lists what *is* registered.
    EXPECT_NE(msg.find("cpu"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sim_accel"), std::string::npos) << msg;
  }
}

TEST(BackendParse, ResolvePrecedence) {
  // Explicit request always wins; with neither request nor env (the
  // suite runs without CAPOW_BACKEND unless the CI matrix pins it) the
  // host is the default.
  EXPECT_EQ(backend::resolve_backend(BackendId::kSimAccel),
            BackendId::kSimAccel);
  EXPECT_EQ(backend::resolve_backend(BackendId::kCpu), BackendId::kCpu);
  const auto env = backend::env_backend_override();
  EXPECT_EQ(backend::resolve_backend(std::nullopt),
            env.value_or(BackendId::kCpu));
}

TEST(BackendDispatch, NativeOpsStayPut) {
  BackendRegistry& reg = BackendRegistry::instance();
  const std::uint64_t before = reg.fallbacks_total();
  const auto cpu_all = reg.dispatch(BackendId::kCpu, AlgorithmId::kStrassen);
  EXPECT_FALSE(cpu_all.fell_back);
  EXPECT_EQ(cpu_all.chosen, reg.find(BackendId::kCpu));
  const auto sim_gemm =
      reg.dispatch(BackendId::kSimAccel, AlgorithmId::kOpenBlas);
  EXPECT_FALSE(sim_gemm.fell_back);
  EXPECT_EQ(sim_gemm.chosen, reg.find(BackendId::kSimAccel));
  EXPECT_EQ(reg.fallbacks_total(), before);
}

TEST(BackendDispatch, UnsupportedOpFallsBackToHostAndCounts) {
  BackendRegistry& reg = BackendRegistry::instance();
  const std::uint64_t before = reg.fallbacks_total();
  const auto dec = reg.dispatch(BackendId::kSimAccel, AlgorithmId::kCaps);
  EXPECT_TRUE(dec.fell_back);
  EXPECT_EQ(dec.requested, reg.find(BackendId::kSimAccel));
  EXPECT_EQ(dec.chosen, &reg.host());
  EXPECT_EQ(reg.fallbacks_total(), before + 1);
}

// The fallback golden contract: an unsupported op requested on
// sim_accel runs on the host, produces a bit-identical result to an
// explicit cpu-backend run, and moves the fallback counter by exactly
// one dispatch.
TEST(BackendDispatch, FallbackGoldenBitIdenticalWithCounterOne) {
  const std::size_t n = 128;
  Matrix a = random_matrix(n, n, 21), b = random_matrix(n, n, 22);
  Matrix on_cpu(n, n), via_fallback(n, n);

  MatmulOptions opts;
  opts.algorithm = AlgorithmId::kStrassen;
  opts.strassen.base_cutoff = 32;
  opts.backend = BackendId::kCpu;
  matmul(a.view(), b.view(), on_cpu.view(), opts);

  BackendRegistry::instance().reset_fallbacks();
  opts.backend = BackendId::kSimAccel;
  matmul(a.view(), b.view(), via_fallback.view(), opts);
  EXPECT_EQ(BackendRegistry::instance().fallbacks_total(), 1u);
  EXPECT_TRUE(allclose(via_fallback.view(), on_cpu.view(), 0.0, 0.0));
}

TEST(BackendDispatch, SimAccelGemmLeasesFromItsOwnArena) {
  blas::WorkspaceArena& device_arena =
      AllocatorRegistry::instance().arena_for(BackendId::kSimAccel);
  const blas::ArenaStats dev_before = device_arena.stats();
  const blas::ArenaStats host_before =
      blas::WorkspaceArena::process_arena().stats();

  const std::size_t n = 192;
  Matrix a = random_matrix(n, n, 51), b = random_matrix(n, n, 52);
  Matrix c(n, n);
  MatmulOptions opts;
  opts.backend = BackendId::kSimAccel;  // dense GEMM: native, no fallback
  matmul(a.view(), b.view(), c.view(), opts);

  const blas::ArenaStats dev_after = device_arena.stats();
  const blas::ArenaStats host_after =
      blas::WorkspaceArena::process_arena().stats();
  EXPECT_GT(dev_after.acquires, dev_before.acquires);
  // Packing buffers went to device memory, not the host pool.
  EXPECT_EQ(host_after.acquires, host_before.acquires);
  // Everything returned: no leases outlive the call.
  EXPECT_EQ(dev_after.outstanding_bytes, 0u);
}

TEST(BackendDispatch, ExplicitArenaStillOverridesTheDevicePool) {
  blas::WorkspaceArena mine;
  const std::size_t n = 96;
  Matrix a = random_matrix(n, n, 61), b = random_matrix(n, n, 62);
  Matrix c(n, n);
  MatmulOptions opts;
  opts.backend = BackendId::kSimAccel;
  opts.arena = &mine;  // deprecated alias, still honored for one release
  matmul(a.view(), b.view(), c.view(), opts);
  EXPECT_GT(mine.stats().acquires, 0u);
}

TEST(ArenaScopes, ActiveArenaDefaultsToProcessArena) {
  EXPECT_EQ(&blas::active_arena(), &blas::WorkspaceArena::process_arena());
  blas::WorkspaceArena other;
  {
    blas::ArenaScope scope(other);
    EXPECT_EQ(&blas::active_arena(), &other);
    blas::WorkspaceArena inner;
    {
      blas::ArenaScope nested(inner);
      EXPECT_EQ(&blas::active_arena(), &inner);
    }
    EXPECT_EQ(&blas::active_arena(), &other);
  }
  EXPECT_EQ(&blas::active_arena(), &blas::WorkspaceArena::process_arena());
}

TEST(ArenaScopes, BackendScopeInstallsDeviceArenaAndIdentity) {
  backend::Backend& sim =
      *BackendRegistry::instance().find(BackendId::kSimAccel);
  EXPECT_EQ(&backend::current_backend(), &BackendRegistry::instance().host());
  {
    backend::BackendScope scope(sim);
    EXPECT_EQ(&backend::current_backend(), &sim);
    EXPECT_EQ(&blas::active_arena(), &sim.arena());
  }
  EXPECT_EQ(&backend::current_backend(), &BackendRegistry::instance().host());
  EXPECT_EQ(&blas::active_arena(), &blas::WorkspaceArena::process_arena());
}

TEST(ArenaScopes, ScopeIsPerThread) {
  backend::Backend& sim =
      *BackendRegistry::instance().find(BackendId::kSimAccel);
  backend::BackendScope scope(sim);
  std::atomic<bool> other_thread_saw_host{false};
  std::thread t([&] {
    other_thread_saw_host =
        &backend::current_backend() == &BackendRegistry::instance().host() &&
        &blas::active_arena() == &blas::WorkspaceArena::process_arena();
  });
  t.join();
  EXPECT_TRUE(other_thread_saw_host.load());
}

// Allocator-registry stress: concurrent checkouts across both device
// pools stay consistent, and — the PR-4 arena guarantee, preserved
// through the seam — a warmed pool serves the steady state without a
// single fresh allocation.
TEST(AllocatorRegistryStress, ConcurrentCheckoutsAcrossTwoBackends) {
  AllocatorRegistry& reg = AllocatorRegistry::instance();
  blas::WorkspaceArena& host = reg.arena_for(BackendId::kCpu);
  blas::WorkspaceArena& dev = reg.arena_for(BackendId::kSimAccel);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kIters = 200;
  const std::size_t sizes[] = {512, 4096, 16384};

  // Warm both pools with every size class each worker will request.
  std::vector<blas::WorkspaceCheckout> warm;
  for (std::size_t s : sizes) {
    for (std::size_t i = 0; i < kThreads; ++i) {
      warm.push_back(host.acquire(s));
      warm.push_back(dev.acquire(s));
    }
  }
  warm.clear();
  host.reset_stats();
  dev.reset_stats();

  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (std::size_t i = 0; i < kIters; ++i) {
        const std::size_t s = sizes[(w + i) % 3];
        blas::WorkspaceCheckout a = host.acquire(s);
        blas::WorkspaceCheckout b = dev.acquire(s);
        a.data()[0] = static_cast<double>(w);
        b.data()[s - 1] = static_cast<double>(i);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  const blas::ArenaStats hs = host.stats();
  const blas::ArenaStats ds = dev.stats();
  EXPECT_EQ(hs.acquires, kThreads * kIters);
  EXPECT_EQ(ds.acquires, kThreads * kIters);
  // Zero warm-path allocations: every steady-state checkout was a hit.
  EXPECT_EQ(hs.misses, 0u);
  EXPECT_EQ(ds.misses, 0u);
  EXPECT_EQ(hs.outstanding_bytes, 0u);
  EXPECT_EQ(ds.outstanding_bytes, 0u);
}

TEST(AllocatorRegistryApi, StatsAndTrimCoverEveryBackend) {
  AllocatorRegistry& reg = AllocatorRegistry::instance();
  { blas::WorkspaceCheckout c = reg.arena_for(BackendId::kSimAccel).acquire(64); }
  const auto stats = reg.stats();
  ASSERT_EQ(stats.size(), backend::kAllocatorCount);
  EXPECT_GT(stats[static_cast<int>(BackendId::kSimAccel)].acquires, 0u);
  reg.trim_all();
  EXPECT_EQ(reg.arena_for(BackendId::kSimAccel).stats().pooled_bytes, 0u);
}

TEST(SimAccel, SpecValidatesAndInvertsTheMachineBalance) {
  const machine::MachineSpec spec = backend::sim_accel_spec();
  EXPECT_NO_THROW(spec.validate());
  const machine::MachineSpec host = machine::haswell_e3_1225();
  // The design point: more compute, *much* more bandwidth — so the
  // flops-per-byte balance is far below the paper's platform.
  EXPECT_GT(spec.peak_flops(), host.peak_flops());
  EXPECT_LT(spec.flops_per_byte(), host.flops_per_byte() / 5.0);
}

TEST(SimAccel, CrossoverLandsOnDeviceUnlikeTheHost) {
  const auto rows = harness::backend_crossover_rows();
  ASSERT_EQ(rows.size(), backend::kBackendCount);
  const auto& cpu = rows[static_cast<int>(BackendId::kCpu)];
  const auto& sim = rows[static_cast<int>(BackendId::kSimAccel)];
  EXPECT_EQ(cpu.id, BackendId::kCpu);
  EXPECT_EQ(sim.id, BackendId::kSimAccel);
  // Bandwidth-rich balance pulls Eq (9) down by about an order of
  // magnitude; the accelerator's crossover problem trivially fits.
  EXPECT_LT(sim.crossover_n, cpu.crossover_n / 5.0);
  EXPECT_TRUE(sim.fits_in_memory);
}

TEST(BackendStudy, EmitsRowsForEveryBackendWithFallbacksMarked) {
  harness::BackendStudyConfig cfg;
  cfg.sizes = {256};
  cfg.threads = {1, 2};
  const auto rows = harness::run_backend_study(cfg);
  // 2 backends x 3 algorithms x 1 size x 2 thread counts.
  ASSERT_EQ(rows.size(), 12u);
  std::size_t native = 0, fallback = 0;
  for (const auto& r : rows) {
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.ep, 0.0);
    if (r.fell_back) {
      ++fallback;
      EXPECT_EQ(r.requested, BackendId::kSimAccel);
      EXPECT_EQ(r.chosen, BackendId::kCpu);
    } else {
      ++native;
    }
  }
  // Host: all 6 native; accelerator: 2 native GEMM rows, 4 fallbacks.
  EXPECT_EQ(native, 8u);
  EXPECT_EQ(fallback, 4u);
  // 1-thread rows base their own Eq (5): S == 1 exactly.
  for (const auto& r : rows) {
    if (r.threads == 1) {
      EXPECT_DOUBLE_EQ(r.scaling, 1.0);
    }
  }
}

TEST(BackendStudy, DeterministicAcrossRuns) {
  harness::BackendStudyConfig cfg;
  cfg.sizes = {512};
  cfg.threads = {1, 4};
  const auto first = harness::run_backend_study(cfg);
  const auto second = harness::run_backend_study(cfg);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].seconds, second[i].seconds);
    EXPECT_EQ(first[i].ep, second[i].ep);
    EXPECT_EQ(first[i].fell_back, second[i].fell_back);
  }
}

TEST(BackendStudy, TablesCarryOneRowPerMeasurement) {
  harness::BackendStudyConfig cfg;
  cfg.sizes = {256};
  cfg.threads = {1};
  const auto rows = harness::run_backend_study(cfg);
  EXPECT_EQ(harness::backend_ep_table(rows).row_count(), rows.size());
  EXPECT_EQ(
      harness::backend_crossover_table(harness::backend_crossover_rows())
          .row_count(),
      backend::kBackendCount);
}

}  // namespace
}  // namespace capow
