// Tests for the deterministic workload generator.
#include "capow/linalg/random.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "capow/linalg/ops.hpp"

namespace capow::linalg {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro, UniformRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(-3.0, 5.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(Xoshiro, UniformU64Bound) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Xoshiro, MeanRoughlyCentered) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(FillRandom, Deterministic) {
  Matrix a = random_square(16, 5);
  Matrix b = random_square(16, 5);
  EXPECT_TRUE(allclose(a.view(), b.view(), 0.0, 0.0));
}

TEST(FillRandom, SeedChangesContent) {
  Matrix a = random_square(16, 5);
  Matrix b = random_square(16, 6);
  EXPECT_FALSE(allclose(a.view(), b.view(), 0.0, 0.0));
}

TEST(FillRandom, StrideIndependentValues) {
  // A strided view of equal shape must receive identical values.
  Matrix holder = Matrix::zeros(8, 8);
  fill_random(holder.block(1, 1, 4, 4), 77);
  Matrix packed(4, 4);
  fill_random(packed.view(), 77);
  EXPECT_TRUE(
      allclose(holder.block(1, 1, 4, 4), packed.view(), 0.0, 0.0));
}

TEST(FillRandom, RespectsRange) {
  Matrix m = random_square(32, 3, 2.0, 3.0);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_GE(m(i, j), 2.0);
      EXPECT_LT(m(i, j), 3.0);
    }
  }
}

TEST(FillRandom, RectangularFactory) {
  Matrix m = random_matrix(4, 9, 21);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 9u);
}

}  // namespace
}  // namespace capow::linalg
