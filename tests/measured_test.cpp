// Tests for the measured-mode harness: real executions projected on the
// machine model vs the analytic cost models.
#include <gtest/gtest.h>

#include "capow/blas/cost_model.hpp"
#include "capow/harness/measured.hpp"

namespace capow::harness {
namespace {

const machine::MachineSpec kHaswell = machine::haswell_e3_1225();

TEST(Measured, RejectsZeroDimension) {
  EXPECT_THROW(run_measured(Algorithm::kOpenBlas, 0, 1, kHaswell),
               std::invalid_argument);
}

class MeasuredAgreementTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, unsigned>> {};

TEST_P(MeasuredAgreementTest, MeasuredCountsAndProjectionAgree) {
  const auto [a, threads] = GetParam();
  const std::size_t n = 192;
  const MeasuredRecord r = run_measured(a, n, threads, kHaswell);

  EXPECT_TRUE(r.numerically_verified) << algorithm_name(a);
  EXPECT_GT(r.measured_flops, 0.0);
  EXPECT_GT(r.measured_bytes, 0.0);
  EXPECT_GT(r.projected.seconds, 0.0);
  EXPECT_GT(r.analytic.seconds, 0.0);

  // The measured profile's flop content equals the analytic model's
  // (same code path the count tests verify); the projected time agrees
  // within a modeling band. The measured profile treats all traffic as
  // DRAM-level and collapses phase structure, so allow a wide but
  // bounded envelope.
  EXPECT_GT(r.time_ratio(), 0.3) << algorithm_name(a);
  EXPECT_LT(r.time_ratio(), 4.0) << algorithm_name(a);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MeasuredAgreementTest,
    ::testing::Combine(::testing::Values(Algorithm::kOpenBlas,
                                         Algorithm::kStrassen,
                                         Algorithm::kCaps),
                       ::testing::Values(1u, 2u)));

TEST(Measured, FlopCountsMatchAnalyticForGemm) {
  const MeasuredRecord r =
      run_measured(Algorithm::kOpenBlas, 128, 1, kHaswell);
  EXPECT_DOUBLE_EQ(r.measured_flops, blas::gemm_flops(128, 128, 128));
}

TEST(Measured, OrderingMatchesThePaperAtRealScale) {
  // Even at container scale, the measured-profile projections preserve
  // the paper's ordering: blocked DGEMM fastest, Strassen/CAPS slower.
  const std::size_t n = 256;
  const auto blas_r = run_measured(Algorithm::kOpenBlas, n, 2, kHaswell);
  const auto str_r = run_measured(Algorithm::kStrassen, n, 2, kHaswell);
  const auto caps_r = run_measured(Algorithm::kCaps, n, 2, kHaswell);
  EXPECT_LT(blas_r.projected.seconds, str_r.projected.seconds);
  EXPECT_LT(blas_r.projected.seconds, caps_r.projected.seconds);
}

}  // namespace
}  // namespace capow::harness
