// Tests for the simulated RAPL MSR device, reader, and PAPI-style events,
// including fault-tolerant reads under injected transient failures.
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "capow/fault/fault.hpp"
#include "capow/rapl/msr.hpp"
#include "capow/rapl/papi.hpp"

namespace capow::rapl {
namespace {

using machine::PowerPlane;

TEST(Msr, UnitRegisterEncoding) {
  SimulatedMsrDevice dev(14);
  const std::uint64_t unit = dev.read(kMsrRaplPowerUnit);
  EXPECT_EQ((unit >> 8) & 0x1F, 14u);   // energy status units
  EXPECT_EQ(unit & 0xF, 3u);            // power units
  EXPECT_EQ((unit >> 16) & 0xF, 10u);   // time units
  EXPECT_DOUBLE_EQ(dev.joules_per_count(), 1.0 / 16384.0);
}

TEST(Msr, RejectsOutOfRangeEsu) {
  EXPECT_THROW(SimulatedMsrDevice(40), std::invalid_argument);
}

TEST(Msr, DepositAndGroundTruth) {
  SimulatedMsrDevice dev;
  dev.deposit(PowerPlane::kPackage, 2.5);
  dev.deposit(PowerPlane::kPackage, 1.5);
  dev.deposit(PowerPlane::kPP0, 1.0);
  EXPECT_DOUBLE_EQ(dev.total_joules(PowerPlane::kPackage), 4.0);
  EXPECT_DOUBLE_EQ(dev.total_joules(PowerPlane::kPP0), 1.0);
  EXPECT_DOUBLE_EQ(dev.total_joules(PowerPlane::kDram), 0.0);
}

TEST(Msr, NegativeDepositThrows) {
  SimulatedMsrDevice dev;
  EXPECT_THROW(dev.deposit(PowerPlane::kPackage, -0.1),
               std::invalid_argument);
}

TEST(Msr, UnmappedAddressThrows) {
  SimulatedMsrDevice dev;
  EXPECT_THROW(dev.read(0x123), std::out_of_range);
}

TEST(Msr, EnergyStatusCountsMatchDeposit) {
  SimulatedMsrDevice dev(14);
  dev.deposit(PowerPlane::kPackage, 1.0);
  EXPECT_EQ(dev.read(kMsrPkgEnergyStatus), 16384u);
}

TEST(Msr, CounterResolutionFloors) {
  SimulatedMsrDevice dev(14);
  // Half a count (about 30 uJ) must not round up.
  dev.deposit(PowerPlane::kPP0, 0.5 / 16384.0);
  EXPECT_EQ(dev.read(kMsrPp0EnergyStatus), 0u);
  dev.deposit(PowerPlane::kPP0, 0.6 / 16384.0);
  EXPECT_EQ(dev.read(kMsrPp0EnergyStatus), 1u);
}

TEST(Msr, ResetZeroesCounters) {
  SimulatedMsrDevice dev;
  dev.deposit(PowerPlane::kDram, 3.0);
  dev.reset();
  EXPECT_EQ(dev.read(kMsrDramEnergyStatus), 0u);
  EXPECT_DOUBLE_EQ(dev.total_joules(PowerPlane::kDram), 0.0);
}

TEST(Msr, CounterWrapsModulo32Bits) {
  SimulatedMsrDevice dev(14);
  // 2^32 counts = 262144 J at ESU 14; one count past the wrap.
  const double wrap_joules = 4294967296.0 / 16384.0;
  dev.deposit(PowerPlane::kPackage, wrap_joules + 1.0 / 16384.0);
  EXPECT_EQ(dev.read(kMsrPkgEnergyStatus), 1u);
}

TEST(RaplReader, AccumulatesJoules) {
  SimulatedMsrDevice dev;
  RaplReader reader(dev);
  dev.deposit(PowerPlane::kPackage, 2.0);
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage), 2.0, 1e-4);
  dev.deposit(PowerPlane::kPackage, 3.0);
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage), 5.0, 1e-4);
}

TEST(RaplReader, BaselinesAtConstruction) {
  SimulatedMsrDevice dev;
  dev.deposit(PowerPlane::kPP0, 100.0);
  RaplReader reader(dev);  // energy so far must not count
  dev.deposit(PowerPlane::kPP0, 1.0);
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPP0), 1.0, 1e-4);
}

TEST(RaplReader, HandlesSingleWrapBetweenPolls) {
  SimulatedMsrDevice dev(14);
  RaplReader reader(dev);
  const double wrap_joules = 4294967296.0 / 16384.0;
  // Walk close to the wrap, poll, then step past it.
  dev.deposit(PowerPlane::kPackage, wrap_joules - 10.0);
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage),
              wrap_joules - 10.0, 1e-3);
  dev.deposit(PowerPlane::kPackage, 20.0);
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage),
              wrap_joules + 10.0, 1e-3);
}

TEST(RaplReader, ResetRebases) {
  SimulatedMsrDevice dev;
  RaplReader reader(dev);
  dev.deposit(PowerPlane::kPackage, 5.0);
  reader.energy_joules(PowerPlane::kPackage);
  reader.reset();
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage), 0.0, 1e-9);
}

TEST(RaplReader, WrapsAccessorCountsFoldedWraps) {
  SimulatedMsrDevice dev(14);
  RaplReader reader(dev);
  EXPECT_EQ(reader.wraps(), 0u);
  const double wrap_joules = 4294967296.0 / 16384.0;
  dev.deposit(PowerPlane::kPackage, wrap_joules - 5.0);
  reader.energy_joules(PowerPlane::kPackage);
  dev.deposit(PowerPlane::kPackage, 10.0);  // crosses wrap #1
  reader.energy_joules(PowerPlane::kPackage);
  EXPECT_EQ(reader.wraps(), 1u);
  // Cross wrap #2 in sub-wrap steps: the reader assumes at least one
  // poll per wrap period (a full-wrap delta between polls is invisible
  // by construction, exactly like hardware).
  dev.deposit(PowerPlane::kPackage, 0.75 * wrap_joules);
  reader.energy_joules(PowerPlane::kPackage);
  dev.deposit(PowerPlane::kPackage, 0.5 * wrap_joules);
  reader.energy_joules(PowerPlane::kPackage);
  EXPECT_EQ(reader.wraps(), 2u);
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage),
              dev.total_joules(PowerPlane::kPackage), 1e-3);
  reader.reset();
  EXPECT_EQ(reader.wraps(), 0u);
}

TEST(RaplFault, TransientFailuresAreRetriedAndRecover) {
  SimulatedMsrDevice dev;
  fault::FaultPlan plan;
  plan.rapl_fail = 0.5;
  plan.seed = 17;
  fault::FaultInjector inj(plan);
  fault::FaultScope scope(inj);

  RaplReader reader(dev);
  dev.deposit(PowerPlane::kPackage, 4.0);
  double last = 0.0;
  for (int i = 0; i < 50; ++i) {
    last = reader.energy_joules(PowerPlane::kPackage);
  }
  // At p=0.5 over 50 logical reads (4 attempts each) at least one read
  // must have needed a retry, and the retried reads still converge on
  // the true cumulative energy.
  EXPECT_GT(inj.count(fault::Event::kRaplRetry), 0u);
  EXPECT_NEAR(last, 4.0, 1e-3);
}

TEST(RaplFault, ExhaustedRetriesDegradeAndServeStaleValue) {
  SimulatedMsrDevice dev;
  RaplReader reader(dev);  // baseline latched before faults install
  dev.deposit(PowerPlane::kPackage, 1.0);
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage), 1.0, 1e-3);

  fault::FaultPlan plan;
  plan.rapl_fail = 1.0;  // every attempt fails: retry budget exhausts
  fault::FaultInjector inj(plan);
  {
    fault::FaultScope scope(inj);
    dev.deposit(PowerPlane::kPackage, 3.0);
    // Persistent failure: the reader serves the last accumulated value
    // instead of throwing, and flags itself degraded.
    EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage), 1.0, 1e-3);
    EXPECT_TRUE(reader.degraded());
    EXPECT_GT(inj.count(fault::Event::kRaplDegradedRead), 0u);
    EXPECT_EQ(inj.count(fault::Event::kRaplRetry),
              static_cast<std::uint64_t>(kRaplReadRetries) *
                  inj.count(fault::Event::kRaplDegradedRead));
  }
  // Self-heal: the counter is cumulative, so the first good read after
  // the outage recovers the full missed delta. A degraded read loses
  // timeliness, never energy.
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage), 4.0, 1e-3);
  EXPECT_TRUE(reader.degraded());  // sticky until reset()
  reader.reset();
  EXPECT_FALSE(reader.degraded());
}

TEST(RaplFault, FailedBaselineRebasesOnFirstGoodRead) {
  SimulatedMsrDevice dev;
  dev.deposit(PowerPlane::kPackage, 7.0);
  fault::FaultPlan plan;
  plan.rapl_fail = 1.0;
  fault::FaultInjector inj(plan);
  auto reader = [&] {
    fault::FaultScope scope(inj);
    return RaplReader(dev);  // baseline latch fails on every plane
  }();
  EXPECT_TRUE(reader.degraded());
  // First good read re-bases at the current counter: pre-existing energy
  // must not appear as a bogus delta.
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage), 0.0, 1e-9);
  dev.deposit(PowerPlane::kPackage, 2.0);
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage), 2.0, 1e-3);
}

TEST(RaplFault, WrapCorrectionSurvivesTransientFailures) {
  SimulatedMsrDevice dev(14);
  RaplReader reader(dev);
  const double wrap_joules = 4294967296.0 / 16384.0;
  fault::FaultPlan plan;
  plan.rapl_fail = 0.5;
  plan.seed = 23;
  fault::FaultInjector inj(plan);
  {
    fault::FaultScope scope(inj);
    dev.deposit(PowerPlane::kPackage, wrap_joules - 2.0);
    reader.energy_joules(PowerPlane::kPackage);
    dev.deposit(PowerPlane::kPackage, 4.0);  // crosses the wrap
    reader.energy_joules(PowerPlane::kPackage);
  }
  // Clean final read: cumulative energy is exact despite the outage
  // pattern, and the wrap was folded exactly once.
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage),
              wrap_joules + 2.0, 1e-3);
  EXPECT_EQ(reader.wraps(), 1u);
}

TEST(RaplFault, InjectedFailuresAreDeterministic) {
  fault::FaultPlan plan;
  plan.rapl_fail = 0.4;
  plan.seed = 101;
  const auto run_once = [&plan] {
    SimulatedMsrDevice dev;
    fault::FaultInjector inj(plan);
    fault::FaultScope scope(inj);
    RaplReader reader(dev);
    for (int i = 0; i < 30; ++i) {
      dev.deposit(PowerPlane::kPP0, 0.5);
      reader.energy_joules(PowerPlane::kPP0);
    }
    return inj.counters();
  };
  const fault::FaultCounters a = run_once();
  const fault::FaultCounters b = run_once();
  for (std::size_t i = 0; i < fault::kEventCount; ++i) {
    EXPECT_EQ(a.by_event[i], b.by_event[i]);
  }
  EXPECT_GT(a[fault::Event::kRaplReadFailure], 0u);
}

TEST(RaplFault, EventSetExposesReaderDegradation) {
  SimulatedMsrDevice dev;
  EventSet es(dev);
  es.add_event(kEventPackageEnergy);
  EXPECT_FALSE(es.degraded());
  fault::FaultPlan plan;
  plan.rapl_fail = 1.0;
  fault::FaultInjector inj(plan);
  {
    fault::FaultScope scope(inj);
    es.start();  // baseline latch degrades under total read failure
    EXPECT_TRUE(es.degraded());
    es.stop();
  }
}

TEST(PapiEvents, PlaneMapping) {
  EXPECT_EQ(plane_for_event(kEventPackageEnergy), PowerPlane::kPackage);
  EXPECT_EQ(plane_for_event(kEventPp0Energy), PowerPlane::kPP0);
  EXPECT_EQ(plane_for_event(kEventDramEnergy), PowerPlane::kDram);
  EXPECT_THROW(plane_for_event("rapl:::BOGUS"), std::invalid_argument);
}

TEST(PapiEvents, StartStopReadLifecycle) {
  SimulatedMsrDevice dev;
  EventSet es(dev);
  EXPECT_THROW(es.start(), std::logic_error);  // no events
  EXPECT_EQ(es.add_event(kEventPackageEnergy), 0u);
  EXPECT_EQ(es.add_event(kEventPp0Energy), 1u);
  EXPECT_THROW(es.stop(), std::logic_error);  // not running

  es.start();
  EXPECT_TRUE(es.running());
  EXPECT_THROW(es.add_event(kEventDramEnergy), std::logic_error);
  EXPECT_THROW(es.start(), std::logic_error);

  dev.deposit(PowerPlane::kPackage, 2.0);
  dev.deposit(PowerPlane::kPP0, 1.0);
  const auto live = es.read();
  EXPECT_NEAR(static_cast<double>(live[0]), 2.0e9, 1e6);
  EXPECT_NEAR(static_cast<double>(live[1]), 1.0e9, 1e6);

  const auto final_vals = es.stop();
  EXPECT_FALSE(es.running());
  // Deposits after stop must not change the frozen values.
  dev.deposit(PowerPlane::kPackage, 50.0);
  const auto frozen = es.read();
  EXPECT_EQ(frozen, final_vals);
}

TEST(PapiEvents, UnknownEventRejectedAtAdd) {
  SimulatedMsrDevice dev;
  EventSet es(dev);
  EXPECT_THROW(es.add_event("rapl:::PSYS"), std::invalid_argument);
  EXPECT_TRUE(es.events().empty());
}

TEST(PapiEvents, RestartRebaselines) {
  SimulatedMsrDevice dev;
  EventSet es(dev);
  es.add_event(kEventPackageEnergy);
  es.start();
  dev.deposit(PowerPlane::kPackage, 1.0);
  es.stop();
  es.start();
  dev.deposit(PowerPlane::kPackage, 0.5);
  const auto vals = es.stop();
  EXPECT_NEAR(static_cast<double>(vals[0]), 0.5e9, 1e6);
}

}  // namespace
}  // namespace capow::rapl
