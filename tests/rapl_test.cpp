// Tests for the simulated RAPL MSR device, reader, and PAPI-style events.
#include <cmath>

#include <gtest/gtest.h>

#include "capow/rapl/msr.hpp"
#include "capow/rapl/papi.hpp"

namespace capow::rapl {
namespace {

using machine::PowerPlane;

TEST(Msr, UnitRegisterEncoding) {
  SimulatedMsrDevice dev(14);
  const std::uint64_t unit = dev.read(kMsrRaplPowerUnit);
  EXPECT_EQ((unit >> 8) & 0x1F, 14u);   // energy status units
  EXPECT_EQ(unit & 0xF, 3u);            // power units
  EXPECT_EQ((unit >> 16) & 0xF, 10u);   // time units
  EXPECT_DOUBLE_EQ(dev.joules_per_count(), 1.0 / 16384.0);
}

TEST(Msr, RejectsOutOfRangeEsu) {
  EXPECT_THROW(SimulatedMsrDevice(40), std::invalid_argument);
}

TEST(Msr, DepositAndGroundTruth) {
  SimulatedMsrDevice dev;
  dev.deposit(PowerPlane::kPackage, 2.5);
  dev.deposit(PowerPlane::kPackage, 1.5);
  dev.deposit(PowerPlane::kPP0, 1.0);
  EXPECT_DOUBLE_EQ(dev.total_joules(PowerPlane::kPackage), 4.0);
  EXPECT_DOUBLE_EQ(dev.total_joules(PowerPlane::kPP0), 1.0);
  EXPECT_DOUBLE_EQ(dev.total_joules(PowerPlane::kDram), 0.0);
}

TEST(Msr, NegativeDepositThrows) {
  SimulatedMsrDevice dev;
  EXPECT_THROW(dev.deposit(PowerPlane::kPackage, -0.1),
               std::invalid_argument);
}

TEST(Msr, UnmappedAddressThrows) {
  SimulatedMsrDevice dev;
  EXPECT_THROW(dev.read(0x123), std::out_of_range);
}

TEST(Msr, EnergyStatusCountsMatchDeposit) {
  SimulatedMsrDevice dev(14);
  dev.deposit(PowerPlane::kPackage, 1.0);
  EXPECT_EQ(dev.read(kMsrPkgEnergyStatus), 16384u);
}

TEST(Msr, CounterResolutionFloors) {
  SimulatedMsrDevice dev(14);
  // Half a count (about 30 uJ) must not round up.
  dev.deposit(PowerPlane::kPP0, 0.5 / 16384.0);
  EXPECT_EQ(dev.read(kMsrPp0EnergyStatus), 0u);
  dev.deposit(PowerPlane::kPP0, 0.6 / 16384.0);
  EXPECT_EQ(dev.read(kMsrPp0EnergyStatus), 1u);
}

TEST(Msr, ResetZeroesCounters) {
  SimulatedMsrDevice dev;
  dev.deposit(PowerPlane::kDram, 3.0);
  dev.reset();
  EXPECT_EQ(dev.read(kMsrDramEnergyStatus), 0u);
  EXPECT_DOUBLE_EQ(dev.total_joules(PowerPlane::kDram), 0.0);
}

TEST(Msr, CounterWrapsModulo32Bits) {
  SimulatedMsrDevice dev(14);
  // 2^32 counts = 262144 J at ESU 14; one count past the wrap.
  const double wrap_joules = 4294967296.0 / 16384.0;
  dev.deposit(PowerPlane::kPackage, wrap_joules + 1.0 / 16384.0);
  EXPECT_EQ(dev.read(kMsrPkgEnergyStatus), 1u);
}

TEST(RaplReader, AccumulatesJoules) {
  SimulatedMsrDevice dev;
  RaplReader reader(dev);
  dev.deposit(PowerPlane::kPackage, 2.0);
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage), 2.0, 1e-4);
  dev.deposit(PowerPlane::kPackage, 3.0);
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage), 5.0, 1e-4);
}

TEST(RaplReader, BaselinesAtConstruction) {
  SimulatedMsrDevice dev;
  dev.deposit(PowerPlane::kPP0, 100.0);
  RaplReader reader(dev);  // energy so far must not count
  dev.deposit(PowerPlane::kPP0, 1.0);
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPP0), 1.0, 1e-4);
}

TEST(RaplReader, HandlesSingleWrapBetweenPolls) {
  SimulatedMsrDevice dev(14);
  RaplReader reader(dev);
  const double wrap_joules = 4294967296.0 / 16384.0;
  // Walk close to the wrap, poll, then step past it.
  dev.deposit(PowerPlane::kPackage, wrap_joules - 10.0);
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage),
              wrap_joules - 10.0, 1e-3);
  dev.deposit(PowerPlane::kPackage, 20.0);
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage),
              wrap_joules + 10.0, 1e-3);
}

TEST(RaplReader, ResetRebases) {
  SimulatedMsrDevice dev;
  RaplReader reader(dev);
  dev.deposit(PowerPlane::kPackage, 5.0);
  reader.energy_joules(PowerPlane::kPackage);
  reader.reset();
  EXPECT_NEAR(reader.energy_joules(PowerPlane::kPackage), 0.0, 1e-9);
}

TEST(PapiEvents, PlaneMapping) {
  EXPECT_EQ(plane_for_event(kEventPackageEnergy), PowerPlane::kPackage);
  EXPECT_EQ(plane_for_event(kEventPp0Energy), PowerPlane::kPP0);
  EXPECT_EQ(plane_for_event(kEventDramEnergy), PowerPlane::kDram);
  EXPECT_THROW(plane_for_event("rapl:::BOGUS"), std::invalid_argument);
}

TEST(PapiEvents, StartStopReadLifecycle) {
  SimulatedMsrDevice dev;
  EventSet es(dev);
  EXPECT_THROW(es.start(), std::logic_error);  // no events
  EXPECT_EQ(es.add_event(kEventPackageEnergy), 0u);
  EXPECT_EQ(es.add_event(kEventPp0Energy), 1u);
  EXPECT_THROW(es.stop(), std::logic_error);  // not running

  es.start();
  EXPECT_TRUE(es.running());
  EXPECT_THROW(es.add_event(kEventDramEnergy), std::logic_error);
  EXPECT_THROW(es.start(), std::logic_error);

  dev.deposit(PowerPlane::kPackage, 2.0);
  dev.deposit(PowerPlane::kPP0, 1.0);
  const auto live = es.read();
  EXPECT_NEAR(static_cast<double>(live[0]), 2.0e9, 1e6);
  EXPECT_NEAR(static_cast<double>(live[1]), 1.0e9, 1e6);

  const auto final_vals = es.stop();
  EXPECT_FALSE(es.running());
  // Deposits after stop must not change the frozen values.
  dev.deposit(PowerPlane::kPackage, 50.0);
  const auto frozen = es.read();
  EXPECT_EQ(frozen, final_vals);
}

TEST(PapiEvents, UnknownEventRejectedAtAdd) {
  SimulatedMsrDevice dev;
  EventSet es(dev);
  EXPECT_THROW(es.add_event("rapl:::PSYS"), std::invalid_argument);
  EXPECT_TRUE(es.events().empty());
}

TEST(PapiEvents, RestartRebaselines) {
  SimulatedMsrDevice dev;
  EventSet es(dev);
  es.add_event(kEventPackageEnergy);
  es.start();
  dev.deposit(PowerPlane::kPackage, 1.0);
  es.stop();
  es.start();
  dev.deposit(PowerPlane::kPackage, 0.5);
  const auto vals = es.stop();
  EXPECT_NEAR(static_cast<double>(vals[0]), 0.5e9, 1e6);
}

}  // namespace
}  // namespace capow::rapl
