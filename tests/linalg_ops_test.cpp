// Unit and property tests for the elementwise/reduction ops.
#include "capow/linalg/ops.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "capow/linalg/random.hpp"

namespace capow::linalg {
namespace {

Matrix iota(std::size_t r, std::size_t c) {
  Matrix m(r, c);
  double v = 0.0;
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = v++;
  }
  return m;
}

TEST(Ops, CopyPacked) {
  Matrix a = iota(3, 4);
  Matrix b = Matrix::zeros(3, 4);
  copy(a.view(), b.view());
  EXPECT_TRUE(allclose(b.view(), a.view(), 0.0, 0.0));
}

TEST(Ops, CopyStrided) {
  Matrix a = iota(6, 6);
  Matrix b = Matrix::zeros(6, 6);
  copy(a.block(2, 2, 3, 3), b.block(1, 1, 3, 3));
  EXPECT_EQ(b(1, 1), a(2, 2));
  EXPECT_EQ(b(3, 3), a(4, 4));
  EXPECT_EQ(b(0, 0), 0.0);
}

TEST(Ops, CopyShapeMismatchThrows) {
  Matrix a(2, 3), b(3, 2);
  EXPECT_THROW(copy(a.view(), b.view()), std::invalid_argument);
}

TEST(Ops, AddAndSub) {
  Matrix a = iota(3, 3);
  Matrix b(3, 3, 2.0);
  Matrix s = Matrix::zeros(3);
  add(a.view(), b.view(), s.view());
  EXPECT_EQ(s(1, 1), a(1, 1) + 2.0);
  sub(s.view(), b.view(), s.view());  // aliased dst is fine elementwise
  EXPECT_TRUE(allclose(s.view(), a.view()));
}

TEST(Ops, InplaceAddSubRoundTrip) {
  Matrix a = random_square(5, 1);
  Matrix orig(a);
  Matrix b = random_square(5, 2);
  add_inplace(a.view(), b.view());
  sub_inplace(a.view(), b.view());
  EXPECT_TRUE(allclose(a.view(), orig.view(), 1e-15, 1e-15));
}

TEST(Ops, Scale) {
  Matrix a(2, 2, 3.0);
  scale(a.view(), -2.0);
  EXPECT_EQ(a(1, 0), -6.0);
}

TEST(Ops, Axpy) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 10.0);
  axpy(0.5, a.view(), b.view());
  EXPECT_EQ(b(0, 0), 10.5);
}

TEST(Ops, TransposeRectangular) {
  Matrix a = iota(3, 5);
  Matrix t = Matrix::zeros(5, 3);
  transpose(a.view(), t.view());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) EXPECT_EQ(t(j, i), a(i, j));
  }
}

TEST(Ops, TransposeShapeMismatchThrows) {
  Matrix a(3, 5), t(3, 5);
  EXPECT_THROW(transpose(a.view(), t.view()), std::invalid_argument);
}

TEST(Ops, TransposeTwiceIsIdentity) {
  Matrix a = random_matrix(40, 33, 7);
  Matrix t(33, 40), tt(40, 33);
  transpose(a.view(), t.view());
  transpose(t.view(), tt.view());
  EXPECT_TRUE(allclose(tt.view(), a.view(), 0.0, 0.0));
}

TEST(Ops, FrobeniusNorm) {
  Matrix a(1, 2);
  a(0, 0) = 3.0;
  a(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(frobenius_norm(a.view()), 5.0);
}

TEST(Ops, MaxAbs) {
  Matrix a(2, 2, 0.0);
  a(1, 0) = -9.0;
  a(0, 1) = 4.0;
  EXPECT_EQ(max_abs(a.view()), 9.0);
}

TEST(Ops, MaxAbsDiff) {
  Matrix a(2, 2, 1.0), b(2, 2, 1.0);
  b(1, 1) = 1.25;
  EXPECT_DOUBLE_EQ(max_abs_diff(a.view(), b.view()), 0.25);
}

TEST(Ops, AllcloseTolerance) {
  Matrix a(1, 1, 1.0), b(1, 1, 1.0 + 1e-10);
  EXPECT_TRUE(allclose(a.view(), b.view(), 1e-9, 0.0));
  EXPECT_FALSE(allclose(a.view(), b.view(), 1e-12, 1e-13));
}

TEST(Ops, RelativeError) {
  Matrix a(1, 1, 1.01), b(1, 1, 1.0);
  EXPECT_NEAR(relative_error(a.view(), b.view()), 0.01, 1e-12);
  // Zero reference is guarded by the tiny denominator (no NaN/inf blowup
  // for a zero numerator).
  Matrix z(1, 1, 0.0);
  EXPECT_EQ(relative_error(z.view(), z.view()), 0.0);
}

TEST(Ops, CopyPaddedZeroFillsBorder) {
  Matrix src(2, 2, 5.0);
  Matrix dst(4, 4, 9.0);
  copy_padded(src.view(), dst.view());
  EXPECT_EQ(dst(1, 1), 5.0);
  EXPECT_EQ(dst(0, 2), 0.0);
  EXPECT_EQ(dst(3, 3), 0.0);
  EXPECT_EQ(dst(2, 0), 0.0);
}

TEST(Ops, CopyPaddedRejectsShrinking) {
  Matrix src(3, 3), dst(2, 4);
  EXPECT_THROW(copy_padded(src.view(), dst.view()), std::invalid_argument);
}

TEST(Ops, RoundUp) {
  EXPECT_EQ(round_up(0, 4), 0u);
  EXPECT_EQ(round_up(1, 4), 4u);
  EXPECT_EQ(round_up(4, 4), 4u);
  EXPECT_EQ(round_up(5, 4), 8u);
  EXPECT_THROW(round_up(3, 0), std::invalid_argument);
}

// pad_dimension_for_recursion: result >= n, result/2^k <= max_base,
// result is minimal of that form.
class PadDimensionTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(PadDimensionTest, ProducesMinimalRecursableDimension) {
  const auto [n, base] = GetParam();
  const std::size_t p = pad_dimension_for_recursion(n, base);
  EXPECT_GE(p, n);
  // p must be base' * 2^k with base' <= base.
  std::size_t m = p;
  while (m > base) {
    EXPECT_EQ(m % 2, 0u) << "p=" << p;
    m /= 2;
  }
  // Minimality: the next smaller dimension of the same form is < n.
  if (p > base && p >= 2) {
    std::size_t levels = 0;
    std::size_t mm = p;
    while (mm > base) {
      mm /= 2;
      ++levels;
    }
    const std::size_t smaller = (mm - 1) << levels;
    EXPECT_LT(smaller, n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PadDimensionTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 64},
                      std::pair<std::size_t, std::size_t>{64, 64},
                      std::pair<std::size_t, std::size_t>{65, 64},
                      std::pair<std::size_t, std::size_t>{100, 64},
                      std::pair<std::size_t, std::size_t>{128, 64},
                      std::pair<std::size_t, std::size_t>{129, 64},
                      std::pair<std::size_t, std::size_t>{512, 64},
                      std::pair<std::size_t, std::size_t>{1000, 64},
                      std::pair<std::size_t, std::size_t>{4096, 64},
                      std::pair<std::size_t, std::size_t>{100, 16},
                      std::pair<std::size_t, std::size_t>{31, 8},
                      std::pair<std::size_t, std::size_t>{7, 1}));

TEST(Ops, PadDimensionRejectsZeroBase) {
  EXPECT_THROW(pad_dimension_for_recursion(10, 0), std::invalid_argument);
}

// Property: add/sub on strided views equals the packed computation.
TEST(OpsProperty, StridedViewsMatchPacked) {
  Matrix big_a = random_square(10, 1), big_b = random_square(10, 2);
  auto va = big_a.block(2, 3, 5, 5);
  auto vb = big_b.block(1, 0, 5, 5);
  Matrix pa(5, 5), pb(5, 5);
  copy(va, pa.view());
  copy(vb, pb.view());

  Matrix strided_out_holder = Matrix::zeros(10, 10);
  auto vout = strided_out_holder.block(4, 4, 5, 5);
  add(va, vb, vout);
  Matrix packed_out(5, 5);
  add(pa.view(), pb.view(), packed_out.view());
  EXPECT_TRUE(allclose(vout, packed_out.view(), 0.0, 0.0));
}

}  // namespace
}  // namespace capow::linalg
