// Tests for sparse formats, SpMV kernels, and the format cost model.
#include <vector>

#include <gtest/gtest.h>

#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"
#include "capow/sim/executor.hpp"
#include "capow/sparse/cost_model.hpp"
#include "capow/sparse/formats.hpp"
#include "capow/sparse/spmv.hpp"
#include "capow/trace/counters.hpp"

namespace capow::sparse {
namespace {

using linalg::Matrix;

Matrix sample_dense() {
  Matrix m = Matrix::zeros(4, 5);
  m(0, 1) = 1.0;
  m(0, 4) = 2.0;
  m(1, 0) = 3.0;
  m(2, 2) = 4.0;
  m(2, 3) = 5.0;
  m(2, 4) = 6.0;
  // row 3 empty
  return m;
}

TEST(Formats, CsrFromToDenseRoundTrip) {
  const Matrix dense = sample_dense();
  const CsrMatrix csr = csr_from_dense(dense.view());
  EXPECT_EQ(csr.nnz(), 6u);
  EXPECT_NO_THROW(csr.validate());
  EXPECT_EQ(csr.row_ptr, (std::vector<std::uint32_t>{0, 2, 3, 6, 6}));
  const Matrix back = csr_to_dense(csr);
  EXPECT_TRUE(linalg::allclose(back.view(), dense.view(), 0.0, 0.0));
}

TEST(Formats, CooFromCsr) {
  const CsrMatrix csr = csr_from_dense(sample_dense().view());
  const CooMatrix coo = coo_from_csr(csr);
  EXPECT_NO_THROW(coo.validate());
  EXPECT_EQ(coo.nnz(), 6u);
  EXPECT_EQ(coo.row_idx, (std::vector<std::uint32_t>{0, 0, 1, 2, 2, 2}));
}

TEST(Formats, EllFromCsrPadsToMaxWidth) {
  const CsrMatrix csr = csr_from_dense(sample_dense().view());
  const EllMatrix ell = ell_from_csr(csr);
  EXPECT_NO_THROW(ell.validate());
  EXPECT_EQ(ell.width, 3u);  // row 2 has three entries
  EXPECT_EQ(ell.nnz(), 6u);
  EXPECT_EQ(ell.col_idx.size(), 4u * 3u);
  // Row 3 is all padding.
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(ell.col_idx[3 * 3 + s], EllMatrix::kEllPad);
  }
}

TEST(Formats, ValidationCatchesCorruption) {
  CsrMatrix csr = csr_from_dense(sample_dense().view());
  csr.col_idx[0] = 99;
  EXPECT_THROW(csr.validate(), std::invalid_argument);

  CooMatrix coo = coo_from_csr(csr_from_dense(sample_dense().view()));
  std::swap(coo.row_idx[0], coo.row_idx[5]);
  EXPECT_THROW(coo.validate(), std::invalid_argument);

  EllMatrix ell = ell_from_csr(csr_from_dense(sample_dense().view()));
  ell.col_idx[0] = 77;
  EXPECT_THROW(ell.validate(), std::invalid_argument);
}

TEST(Formats, StorageBytesOrdering) {
  // For a matrix with uneven rows, ELL pays padding; COO pays the extra
  // row-index array vs CSR.
  const CsrMatrix csr = random_sparse(256, 256, 0.05, 42);
  const CooMatrix coo = coo_from_csr(csr);
  const EllMatrix ell = ell_from_csr(csr);
  EXPECT_LT(csr.bytes(), coo.bytes());
  EXPECT_LT(csr.bytes(), ell.bytes());
}

TEST(Formats, RandomSparseDeterministicAndValid) {
  const CsrMatrix a = random_sparse(128, 96, 0.1, 7);
  const CsrMatrix b = random_sparse(128, 96, 0.1, 7);
  EXPECT_NO_THROW(a.validate());
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.col_idx, b.col_idx);
  // Density is approximately honored.
  EXPECT_NEAR(static_cast<double>(a.nnz()) / (128.0 * 96.0), 0.1, 0.02);
  EXPECT_THROW(random_sparse(8, 8, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(random_sparse(8, 8, 1.5, 1), std::invalid_argument);
}

class SpmvFormatTest : public ::testing::TestWithParam<double> {};

TEST_P(SpmvFormatTest, AllFormatsMatchDenseReference) {
  const double density = GetParam();
  const std::size_t rows = 120, cols = 90;
  const CsrMatrix csr = random_sparse(rows, cols, density, 99);
  const CooMatrix coo = coo_from_csr(csr);
  const EllMatrix ell = ell_from_csr(csr);
  const Matrix dense = csr_to_dense(csr);

  std::vector<double> x(cols);
  linalg::Xoshiro256 rng(5);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const std::vector<double> expect = dense_mv(dense.view(), x);

  std::vector<double> y(rows, -1.0);
  spmv(csr, x, y);
  for (std::size_t i = 0; i < rows; ++i) {
    EXPECT_NEAR(y[i], expect[i], 1e-12) << "csr row " << i;
  }
  std::fill(y.begin(), y.end(), -1.0);
  spmv(coo, x, y);
  for (std::size_t i = 0; i < rows; ++i) {
    EXPECT_NEAR(y[i], expect[i], 1e-12) << "coo row " << i;
  }
  std::fill(y.begin(), y.end(), -1.0);
  spmv(ell, x, y);
  for (std::size_t i = 0; i < rows; ++i) {
    EXPECT_NEAR(y[i], expect[i], 1e-12) << "ell row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(DensitySweep, SpmvFormatTest,
                         ::testing::Values(0.01, 0.05, 0.2, 0.5, 1.0));

TEST(Spmv, ParallelMatchesSerial) {
  const CsrMatrix csr = random_sparse(500, 400, 0.05, 11);
  const EllMatrix ell = ell_from_csr(csr);
  std::vector<double> x(400);
  linalg::Xoshiro256 rng(6);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);

  std::vector<double> serial(500), parallel(500);
  tasking::ThreadPool pool(3);
  spmv(csr, x, serial);
  spmv(csr, x, parallel, &pool);
  EXPECT_EQ(serial, parallel);  // per-row accumulation is deterministic
  spmv(ell, x, serial);
  spmv(ell, x, parallel, &pool);
  EXPECT_EQ(serial, parallel);
}

TEST(Spmv, DimensionMismatchThrows) {
  const CsrMatrix csr = random_sparse(8, 8, 0.5, 1);
  std::vector<double> x(7), y(8);
  EXPECT_THROW(spmv(csr, x, y), std::invalid_argument);
  std::vector<double> x2(8), y2(9);
  EXPECT_THROW(spmv(csr, x2, y2), std::invalid_argument);
}

TEST(SparseCost, ShapeOf) {
  const CsrMatrix csr = csr_from_dense(sample_dense().view());
  const SpmvShape s = shape_of(csr);
  EXPECT_EQ(s.rows, 4u);
  EXPECT_EQ(s.cols, 5u);
  EXPECT_EQ(s.nnz, 6u);
  EXPECT_EQ(s.ell_width, 3u);
}

class SparseTrafficTest : public ::testing::TestWithParam<Format> {};

TEST_P(SparseTrafficTest, InstrumentedCountsMatchModelExactly) {
  const Format f = GetParam();
  const CsrMatrix csr = random_sparse(200, 150, 0.08, 21);
  const SpmvShape s = shape_of(csr);
  std::vector<double> x(150, 1.0), y(200);

  trace::Recorder rec;
  {
    trace::RecordingScope scope(rec);
    switch (f) {
      case Format::kCsr:
        spmv(csr, x, y);
        break;
      case Format::kCoo:
        spmv(coo_from_csr(csr), x, y);
        break;
      case Format::kEll:
        spmv(ell_from_csr(csr), x, y);
        break;
    }
  }
  EXPECT_EQ(static_cast<double>(rec.total().flops), spmv_flops(f, s));
  EXPECT_EQ(static_cast<double>(rec.total().dram_bytes()),
            spmv_traffic_bytes(f, s));
}

INSTANTIATE_TEST_SUITE_P(Formats, SparseTrafficTest,
                         ::testing::Values(Format::kCsr, Format::kCoo,
                                           Format::kEll));

TEST(SparseCost, ProfileShapes) {
  const auto m = machine::haswell_e3_1225();
  const CsrMatrix csr = random_sparse(4096, 4096, 0.01, 3);
  const SpmvShape s = shape_of(csr);

  // COO cannot parallelize; CSR can.
  const auto coo = spmv_profile(Format::kCoo, s, m, 4, 10);
  const auto csr_wp = spmv_profile(Format::kCsr, s, m, 4, 10);
  EXPECT_EQ(coo.phases[0].parallelism, 1u);
  EXPECT_EQ(csr_wp.phases[0].parallelism, 4u);

  // Iterations scale the totals linearly.
  const auto one = spmv_profile(Format::kCsr, s, m, 4, 1);
  EXPECT_NEAR(csr_wp.total_flops(), 10.0 * one.total_flops(), 1e-6);
  EXPECT_THROW(spmv_profile(Format::kCsr, s, m, 4, 0),
               std::invalid_argument);
}

TEST(SparseCost, EpRanking) {
  // The future-work study's expected shape: at equal nnz, CSR's SpMV
  // completes sooner than COO's (less traffic + parallel rows), so its
  // EP (W/s) is higher; irregular matrices make ELL pay padding.
  const auto m = machine::haswell_e3_1225();
  const CsrMatrix csr = random_sparse(8192, 8192, 0.004, 17);
  const SpmvShape s = shape_of(csr);
  const auto t_csr =
      sim::simulate(m, spmv_profile(Format::kCsr, s, m, 4, 100), 4);
  const auto t_coo =
      sim::simulate(m, spmv_profile(Format::kCoo, s, m, 4, 100), 4);
  EXPECT_LT(t_csr.seconds, t_coo.seconds);
}

TEST(SparseCost, FormatNames) {
  EXPECT_STREQ(format_name(Format::kCsr), "CSR");
  EXPECT_STREQ(format_name(Format::kCoo), "COO");
  EXPECT_STREQ(format_name(Format::kEll), "ELL");
}

}  // namespace
}  // namespace capow::sparse
