// Tests for capow::abft: checksum primitives, guard localization, the
// guarded_gemm recovery ladder, and the central acceptance criterion —
// under deterministic mem.flip/compute.flip injection with abft=correct,
// every algorithm's output is bit-identical to its fault-free run, and
// the capow_abft_* counters replay identically across reruns.
//
// The final test prints the process counter totals as
// "capow_abft_<kind> <count>" lines; the CI fault-matrix leg runs this
// binary twice and diffs those lines to assert schedule determinism.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "capow/abft/abft.hpp"
#include "capow/abft/checksum.hpp"
#include "capow/api/matmul.hpp"
#include "capow/blas/gemm_ref.hpp"
#include "capow/dist/summa.hpp"
#include "capow/fault/fault.hpp"
#include "capow/linalg/random.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace capow::abft {
namespace {

using linalg::Matrix;
using linalg::random_matrix;

bool bits_equal(const Matrix& x, const Matrix& y) {
  if (x.view().rows() != y.view().rows() ||
      x.view().cols() != y.view().cols()) {
    return false;
  }
  for (std::size_t r = 0; r < x.view().rows(); ++r) {
    if (std::memcmp(x.view().row(r), y.view().row(r),
                    x.view().cols() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(Checksum, NeumaierAccumulatorIsExactOnHarshInput) {
  // 1 + 1e100 - 1e100 loses the 1 in naive summation.
  NeumaierAcc acc;
  acc.add(1.0);
  acc.add(1e100);
  acc.add(-1e100);
  EXPECT_EQ(acc.value(), 1.0);
}

TEST(Checksum, ColAndRowSumsMatchNaive) {
  const Matrix a = random_matrix(17, 23, 3);
  std::vector<double> col(23), col_mag(23);
  std::vector<double> row(17), row_mag(17);
  col_sums(a.view(), col.data(), col_mag.data());
  row_sums(a.view(), row.data(), row_mag.data());
  for (std::size_t j = 0; j < 23; ++j) {
    double s = 0.0, m = 0.0;
    for (std::size_t i = 0; i < 17; ++i) {
      s += a.view()(i, j);
      m += std::fabs(a.view()(i, j));
    }
    EXPECT_NEAR(col[j], s, 1e-12);
    EXPECT_NEAR(col_mag[j], m, 1e-12);
  }
  for (std::size_t i = 0; i < 17; ++i) {
    double s = 0.0, m = 0.0;
    for (std::size_t j = 0; j < 23; ++j) {
      s += a.view()(i, j);
      m += std::fabs(a.view()(i, j));
    }
    EXPECT_NEAR(row[i], s, 1e-12);
    EXPECT_NEAR(row_mag[i], m, 1e-12);
  }
}

TEST(Checksum, PayloadChecksumIsBitStableAndSensitive) {
  std::vector<double> data(301);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(static_cast<double>(i) * 0.7) * 1e3;
  }
  const double c1 = payload_checksum(data.data(), data.size());
  const double c2 = payload_checksum(data.data(), data.size());
  EXPECT_EQ(std::memcmp(&c1, &c2, sizeof(double)), 0);
  data[150] = fault::flip_value(data[150]);
  const double c3 = payload_checksum(data.data(), data.size());
  EXPECT_NE(std::memcmp(&c1, &c3, sizeof(double)), 0);
}

TEST(AbftMode, ParseAndToStringRoundTrip) {
  for (AbftMode m : {AbftMode::kOff, AbftMode::kDetect, AbftMode::kCorrect}) {
    const auto parsed = parse_mode(to_string(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(parse_mode("verify").has_value());
  EXPECT_FALSE(parse_mode("").has_value());
}

TEST(AbftMode, ResolveModePrecedence) {
  const char* saved = std::getenv("CAPOW_ABFT");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::unsetenv("CAPOW_ABFT");
  EXPECT_EQ(resolve_mode(AbftConfig{}), AbftMode::kOff);

  ::setenv("CAPOW_ABFT", "detect", 1);
  EXPECT_EQ(resolve_mode(AbftConfig{}), AbftMode::kDetect);

  // Explicit config outranks the environment.
  AbftConfig cfg;
  cfg.mode = AbftMode::kCorrect;
  EXPECT_EQ(resolve_mode(cfg), AbftMode::kCorrect);
  cfg.mode = AbftMode::kOff;
  EXPECT_EQ(resolve_mode(cfg), AbftMode::kOff);

  ::setenv("CAPOW_ABFT", "bogus", 1);
  EXPECT_THROW(resolve_mode(AbftConfig{}), std::invalid_argument);
  EXPECT_EQ(resolve_mode(cfg), AbftMode::kOff);  // explicit still wins

  if (saved != nullptr) {
    ::setenv("CAPOW_ABFT", saved_value.c_str(), 1);
  } else {
    ::unsetenv("CAPOW_ABFT");
  }
}

TEST(AbftGuard, CleanProductVerifies) {
  const std::size_t n = 48;
  const Matrix a = random_matrix(n, n, 11);
  const Matrix b = random_matrix(n, n, 12);
  Matrix c(n, n);
  blas::gemm_reference(a.view(), b.view(), c.view());

  const AbftCounters before = counters();
  const AbftGuard guard(a.view(), b.view(),
                        blas::WorkspaceArena::process_arena(), 1e-7);
  const VerifyReport rep = guard.verify(c.view());
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.bad_rows.empty());
  EXPECT_TRUE(rep.bad_cols.empty());
  EXPECT_LT(rep.max_residual, 1.0);
  const AbftCounters after = counters();
  EXPECT_EQ(after.verifications, before.verifications + 1);
  EXPECT_EQ(after.detected, before.detected);
}

TEST(AbftGuard, LocalizesASingleCorruptedElement) {
  const std::size_t n = 40;
  const Matrix a = random_matrix(n, n, 13);
  const Matrix b = random_matrix(n, n, 14);
  Matrix c(n, n);
  blas::gemm_reference(a.view(), b.view(), c.view());

  const AbftGuard guard(a.view(), b.view(),
                        blas::WorkspaceArena::process_arena(), 1e-7);
  c.view()(7, 29) = fault::flip_value(c.view()(7, 29));
  const VerifyReport rep = guard.verify(c.view());
  EXPECT_FALSE(rep.ok);
  ASSERT_EQ(rep.bad_rows.size(), 1u);
  ASSERT_EQ(rep.bad_cols.size(), 1u);
  EXPECT_EQ(rep.bad_rows[0], 7u);
  EXPECT_EQ(rep.bad_cols[0], 29u);
  EXPECT_GT(rep.max_residual, 1.0);
}

TEST(AbftGuard, RejectsMismatchedShapes) {
  const Matrix a = random_matrix(8, 6, 15);
  const Matrix b = random_matrix(5, 8, 16);  // inner dim disagrees
  EXPECT_THROW(AbftGuard(a.view(), b.view(),
                         blas::WorkspaceArena::process_arena(), 1e-7),
               std::invalid_argument);

  const Matrix b2 = random_matrix(6, 9, 17);
  const AbftGuard guard(a.view(), b2.view(),
                        blas::WorkspaceArena::process_arena(), 1e-7);
  Matrix wrong(8, 8);
  EXPECT_THROW((void)guard.verify(wrong.view()), std::invalid_argument);
}

TEST(GuardedGemm, CleanRunIsBitIdenticalToPlainGemm) {
  const std::size_t n = 96;
  const Matrix a = random_matrix(n, n, 21);
  const Matrix b = random_matrix(n, n, 22);
  Matrix plain(n, n), detect(n, n), correct(n, n);
  blas::gemm(a.view(), b.view(), plain.view());

  AbftConfig cfg;
  cfg.mode = AbftMode::kDetect;
  guarded_gemm(a.view(), b.view(), detect.view(), {}, cfg);
  cfg.mode = AbftMode::kCorrect;
  guarded_gemm(a.view(), b.view(), correct.view(), {}, cfg);
  EXPECT_TRUE(bits_equal(plain, detect));
  EXPECT_TRUE(bits_equal(plain, correct));
}

// Deterministic flip plan used by the recovery tests below. The
// probabilities are tuned so each algorithm's top-level run draws a
// handful of flips while the (fresh-salt) recovery re-runs converge.
fault::FaultPlan flip_plan(double mem, double compute, std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.mem_flip = mem;
  plan.compute_flip = compute;
  plan.seed = seed;
  return plan;
}

TEST(GuardedGemm, DetectModeThrowsUnderInjectedFlips) {
  const std::size_t n = 96;
  const Matrix a = random_matrix(n, n, 23);
  const Matrix b = random_matrix(n, n, 24);
  Matrix c(n, n);

  fault::FaultInjector inj(flip_plan(2e-4, 2e-4, 97));
  fault::FaultScope scope(inj);
  AbftConfig cfg;
  cfg.mode = AbftMode::kDetect;
  EXPECT_THROW(guarded_gemm(a.view(), b.view(), c.view(), {}, cfg),
               AbftError);
  EXPECT_GT(inj.count(fault::Event::kMemFlip) +
                inj.count(fault::Event::kComputeFlip),
            0u);
}

TEST(GuardedGemm, CorrectModeMatchesFaultFreeRunBitwise) {
  const std::size_t n = 96;
  const Matrix a = random_matrix(n, n, 25);
  const Matrix b = random_matrix(n, n, 26);
  Matrix expect(n, n), got(n, n);
  blas::gemm(a.view(), b.view(), expect.view());

  const AbftCounters before = counters();
  fault::FaultInjector inj(flip_plan(5e-5, 5e-5, 3));
  fault::FaultScope scope(inj);
  AbftConfig cfg;
  cfg.mode = AbftMode::kCorrect;
  cfg.max_retries = 6;
  guarded_gemm(a.view(), b.view(), got.view(), {}, cfg);
  const AbftCounters after = counters();

  EXPECT_TRUE(bits_equal(expect, got));
  EXPECT_GT(after.detected, before.detected);
  EXPECT_GT(after.corrected + after.recomputed + after.retried,
            before.corrected + before.recomputed + before.retried);
}

// ---- whole-algorithm recovery through the facade ------------------------

struct AlgoCase {
  core::AlgorithmId algorithm;
  std::size_t n;
  double mem_flip;
  double compute_flip;
  std::uint64_t seed;
  unsigned pool_workers;  // 0 = serial
};

class AbftAlgorithmTest : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(AbftAlgorithmTest, CorrectModeIsBitIdenticalToFaultFreeRun) {
  const AlgoCase p = GetParam();
  const Matrix a = random_matrix(p.n, p.n, 31);
  const Matrix b = random_matrix(p.n, p.n, 32);

  tasking::ThreadPool pool(p.pool_workers);
  MatmulOptions opts;
  opts.algorithm = p.algorithm;
  if (p.pool_workers > 0) opts.pool = &pool;
  opts.abft.mode = AbftMode::kOff;

  Matrix expect(p.n, p.n);
  matmul(a.view(), b.view(), expect.view(), opts);

  const AbftCounters before = counters();
  Matrix got(p.n, p.n);
  {
    fault::FaultInjector inj(flip_plan(p.mem_flip, p.compute_flip, p.seed));
    fault::FaultScope scope(inj);
    opts.abft.mode = AbftMode::kCorrect;
    opts.abft.max_retries = 6;
    matmul(a.view(), b.view(), got.view(), opts);
    EXPECT_GT(inj.count(fault::Event::kMemFlip) +
                  inj.count(fault::Event::kComputeFlip),
              0u)
        << "plan injected nothing — flip probabilities too low";
  }
  const AbftCounters after = counters();

  EXPECT_TRUE(bits_equal(expect, got))
      << "corrected output differs from the fault-free run";
  EXPECT_GT(after.detected, before.detected);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AbftAlgorithmTest,
    ::testing::Values(
        AlgoCase{core::AlgorithmId::kOpenBlas, 96, 5e-5, 5e-5, 3, 0},
        AlgoCase{core::AlgorithmId::kOpenBlas, 96, 5e-5, 5e-5, 3, 3},
        AlgoCase{core::AlgorithmId::kStrassen, 96, 5e-5, 5e-5, 1, 0},
        AlgoCase{core::AlgorithmId::kStrassen, 96, 5e-5, 5e-5, 1, 3},
        AlgoCase{core::AlgorithmId::kCaps, 96, 5e-5, 5e-5, 2, 0},
        AlgoCase{core::AlgorithmId::kCaps, 96, 5e-5, 5e-5, 2, 3}));

TEST(AbftSumma, CorrectModeIsBitIdenticalToFaultFreeRun) {
  const std::size_t n = 64;
  const dist::GridSpec grid{2, 2, 1};
  const Matrix a = random_matrix(n, n, 41);
  const Matrix b = random_matrix(n, n, 42);

  const auto run = [&](Matrix& out, const AbftConfig& cfg) {
    dist::World world(grid.ranks());
    world.run([&](dist::Communicator& comm) {
      Matrix empty;
      const bool root = comm.rank() == 0;
      dist::summa_multiply(comm, grid, root ? a.view() : empty.view(),
                           root ? b.view() : empty.view(),
                           root ? out.view() : empty.view(), cfg);
    });
  };

  AbftConfig cfg;
  cfg.mode = AbftMode::kOff;
  Matrix expect(n, n);
  run(expect, cfg);

  const AbftCounters before = counters();
  Matrix got(n, n);
  {
    fault::FaultInjector inj(flip_plan(5e-5, 5e-5, 1));
    fault::FaultScope scope(inj);
    cfg.mode = AbftMode::kCorrect;
    cfg.max_retries = 6;
    run(got, cfg);
    EXPECT_GT(inj.count(fault::Event::kMemFlip) +
                  inj.count(fault::Event::kComputeFlip),
              0u);
  }
  const AbftCounters after = counters();

  EXPECT_TRUE(bits_equal(expect, got));
  EXPECT_GT(after.detected, before.detected);
}

TEST(AbftSumma, DetectModeSurfacesMessageCorruption) {
  const std::size_t n = 64;
  const dist::GridSpec grid{2, 2, 1};
  const Matrix a = random_matrix(n, n, 43);
  const Matrix b = random_matrix(n, n, 44);
  Matrix got(n, n);

  fault::FaultInjector inj(flip_plan(5e-5, 5e-5, 1));
  fault::FaultScope scope(inj);
  AbftConfig cfg;
  cfg.mode = AbftMode::kDetect;
  dist::World world(grid.ranks());
  EXPECT_THROW(world.run([&](dist::Communicator& comm) {
    Matrix empty;
    const bool root = comm.rank() == 0;
    dist::summa_multiply(comm, grid, root ? a.view() : empty.view(),
                         root ? b.view() : empty.view(),
                         root ? got.view() : empty.view(), cfg);
  }),
               std::exception);
}

TEST(AbftCounters, DeterministicAcrossReruns) {
  const std::size_t n = 96;
  const Matrix a = random_matrix(n, n, 51);
  const Matrix b = random_matrix(n, n, 52);

  const auto one_run = [&] {
    reset_counters();
    fault::FaultInjector inj(flip_plan(5e-5, 5e-5, 3));
    fault::FaultScope scope(inj);
    MatmulOptions opts;
    opts.abft.mode = AbftMode::kCorrect;
    opts.abft.max_retries = 6;
    for (auto algorithm :
         {core::AlgorithmId::kOpenBlas, core::AlgorithmId::kStrassen,
          core::AlgorithmId::kCaps}) {
      Matrix c(n, n);
      opts.algorithm = algorithm;
      matmul(a.view(), b.view(), c.view(), opts);
    }
    return counters();
  };

  const AbftCounters first = one_run();
  const AbftCounters second = one_run();
  EXPECT_EQ(first, second);
  EXPECT_GT(first.verifications, 0u);
}

// Keep last: prints the process totals in the "capow_abft_<kind>
// <count>" form the CI fault-matrix leg greps and diffs across two
// runs of this binary. Runs one seeded correction workload of its own
// (without resetting, so a full-binary run dumps everything the suite
// accumulated) — under ctest's per-test process isolation it would
// otherwise dump all zeros.
TEST(AbftCounters, ZDumpForCiDeterminismDiff) {
  const std::size_t n = 96;
  const Matrix a = random_matrix(n, n, 51);
  const Matrix b = random_matrix(n, n, 52);
  fault::FaultInjector inj(flip_plan(5e-5, 5e-5, 3));
  fault::FaultScope scope(inj);
  MatmulOptions opts;
  opts.abft.mode = AbftMode::kCorrect;
  opts.abft.max_retries = 6;
  for (auto algorithm :
       {core::AlgorithmId::kOpenBlas, core::AlgorithmId::kStrassen,
        core::AlgorithmId::kCaps}) {
    Matrix c(n, n);
    opts.algorithm = algorithm;
    matmul(a.view(), b.view(), c.view(), opts);
  }

  const AbftCounters c = counters();
  std::printf("capow_abft_verifications %llu\n",
              static_cast<unsigned long long>(c.verifications));
  std::printf("capow_abft_detected %llu\n",
              static_cast<unsigned long long>(c.detected));
  std::printf("capow_abft_corrected %llu\n",
              static_cast<unsigned long long>(c.corrected));
  std::printf("capow_abft_recomputed %llu\n",
              static_cast<unsigned long long>(c.recomputed));
  std::printf("capow_abft_retried %llu\n",
              static_cast<unsigned long long>(c.retried));
  EXPECT_GT(c.verifications, 0u);
}

}  // namespace
}  // namespace capow::abft
