// Tests for the Strassen family: numerical correctness against the
// reference multiplier, parallel determinism, instrumentation, padding,
// and stability behaviour.
#include <cmath>

#include <gtest/gtest.h>

#include "capow/blas/gemm_ref.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"
#include "capow/strassen/base_kernel.hpp"
#include "capow/strassen/cost_model.hpp"
#include "capow/strassen/strassen.hpp"
#include "capow/trace/counters.hpp"

namespace capow::strassen {
namespace {

using linalg::allclose;
using linalg::Matrix;
using linalg::random_matrix;

TEST(BaseKernel, MatchesReference) {
  for (std::size_t n : {1u, 2u, 7u, 16u, 33u, 64u}) {
    Matrix a = random_matrix(n, n, n);
    Matrix b = random_matrix(n, n, n + 1);
    Matrix expect(n, n), got(n, n);
    blas::gemm_reference(a.view(), b.view(), expect.view());
    base_gemm(a.view(), b.view(), got.view());
    EXPECT_TRUE(allclose(got.view(), expect.view(), 1e-12, 1e-12))
        << "n=" << n;
  }
}

TEST(BaseKernel, AccumulateVariant) {
  Matrix a = random_matrix(8, 8, 1);
  Matrix b = random_matrix(8, 8, 2);
  Matrix c(8, 8, 0.0), expect(8, 8, 0.0);
  blas::gemm_reference_accumulate(a.view(), b.view(), expect.view());
  blas::gemm_reference_accumulate(a.view(), b.view(), expect.view());
  base_gemm_accumulate(a.view(), b.view(), c.view());
  base_gemm_accumulate(a.view(), b.view(), c.view());
  EXPECT_TRUE(allclose(c.view(), expect.view(), 1e-13, 1e-13));
}

TEST(BaseKernel, InstrumentationConvention) {
  trace::Recorder rec;
  Matrix a = random_matrix(16, 16, 1), b = random_matrix(16, 16, 2);
  Matrix c(16, 16);
  {
    trace::RecordingScope scope(rec);
    base_gemm(a.view(), b.view(), c.view());
  }
  EXPECT_EQ(rec.total().flops, 2u * 16 * 16 * 16);
  EXPECT_EQ(rec.total().dram_read_bytes, 2u * 16 * 16 * 8);
  EXPECT_EQ(rec.total().dram_write_bytes, 16u * 16 * 8);
}

TEST(RecursionLevels, Formula) {
  EXPECT_EQ(recursion_levels(64, 64), 0u);
  EXPECT_EQ(recursion_levels(65, 64), 1u);
  EXPECT_EQ(recursion_levels(128, 64), 1u);
  EXPECT_EQ(recursion_levels(512, 64), 3u);
  EXPECT_EQ(recursion_levels(4096, 64), 6u);
  EXPECT_EQ(recursion_levels(4096, 512), 3u);
  EXPECT_THROW(recursion_levels(64, 0), std::invalid_argument);
}

struct StrassenCase {
  std::size_t n;
  std::size_t cutoff;
  bool winograd;
};

class StrassenCorrectnessTest
    : public ::testing::TestWithParam<StrassenCase> {};

TEST_P(StrassenCorrectnessTest, MatchesReference) {
  const auto p = GetParam();
  Matrix a = random_matrix(p.n, p.n, p.n * 7 + 1);
  Matrix b = random_matrix(p.n, p.n, p.n * 7 + 2);
  Matrix expect(p.n, p.n), got(p.n, p.n, -1.0);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  StrassenOptions opts;
  opts.base_cutoff = p.cutoff;
  opts.winograd = p.winograd;
  multiply(a.view(), b.view(), got.view(), opts);
  EXPECT_TRUE(allclose(got.view(), expect.view(), 1e-10, 1e-10))
      << "n=" << p.n << " cutoff=" << p.cutoff << " wino=" << p.winograd
      << " relerr=" << linalg::relative_error(got.view(), expect.view());
}

INSTANTIATE_TEST_SUITE_P(
    Classic, StrassenCorrectnessTest,
    ::testing::Values(StrassenCase{1, 8, false}, StrassenCase{8, 8, false},
                      StrassenCase{16, 8, false}, StrassenCase{17, 8, false},
                      StrassenCase{30, 8, false}, StrassenCase{64, 16, false},
                      StrassenCase{96, 16, false},
                      StrassenCase{100, 16, false},
                      StrassenCase{128, 32, false},
                      StrassenCase{129, 32, false},
                      StrassenCase{200, 32, false},
                      StrassenCase{256, 64, false},
                      StrassenCase{320, 64, false}));

INSTANTIATE_TEST_SUITE_P(
    Winograd, StrassenCorrectnessTest,
    ::testing::Values(StrassenCase{16, 8, true}, StrassenCase{30, 8, true},
                      StrassenCase{64, 16, true}, StrassenCase{100, 16, true},
                      StrassenCase{128, 32, true},
                      StrassenCase{256, 64, true}));

TEST(Strassen, ParallelMatchesSerialBitwise) {
  const std::size_t n = 256;
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  Matrix serial(n, n), parallel(n, n);
  StrassenOptions opts;
  opts.base_cutoff = 32;
  multiply(a.view(), b.view(), serial.view(), opts);
  tasking::ThreadPool pool(3);
  multiply(a.view(), b.view(), parallel.view(), opts, &pool);
  // Task scheduling cannot change any arithmetic order.
  EXPECT_TRUE(allclose(parallel.view(), serial.view(), 0.0, 0.0));
}

TEST(Strassen, WinogradParallelMatchesSerial) {
  const std::size_t n = 128;
  Matrix a = random_matrix(n, n, 5), b = random_matrix(n, n, 6);
  Matrix serial(n, n), parallel(n, n);
  StrassenOptions opts;
  opts.base_cutoff = 16;
  opts.winograd = true;
  multiply(a.view(), b.view(), serial.view(), opts);
  tasking::ThreadPool pool(2);
  multiply(a.view(), b.view(), parallel.view(), opts, &pool);
  EXPECT_TRUE(allclose(parallel.view(), serial.view(), 0.0, 0.0));
}

TEST(Strassen, NonSquareThrows) {
  Matrix a(4, 6), b(6, 4), c(4, 4);
  EXPECT_THROW(multiply(a.view(), b.view(), c.view()),
               std::invalid_argument);
  Matrix a2(4, 4), b2(4, 4), c2(6, 6);
  EXPECT_THROW(multiply(a2.view(), b2.view(), c2.view()),
               std::invalid_argument);
}

TEST(Strassen, ZeroCutoffThrows) {
  Matrix a(4, 4), b(4, 4), c(4, 4);
  StrassenOptions opts;
  opts.base_cutoff = 0;
  EXPECT_THROW(multiply(a.view(), b.view(), c.view(), opts),
               std::invalid_argument);
}

TEST(Strassen, EmptyMatrixIsNoop) {
  Matrix a, b, c;
  EXPECT_NO_THROW(multiply(a.view(), b.view(), c.view()));
}

class StrassenCountTest : public ::testing::TestWithParam<StrassenCase> {};

// Instrumented flops and logical traffic match the closed forms exactly
// — including padded (non power-of-two) dimensions.
TEST_P(StrassenCountTest, InstrumentedCountsMatchClosedForm) {
  const auto p = GetParam();
  Matrix a = random_matrix(p.n, p.n, 1), b = random_matrix(p.n, p.n, 2);
  Matrix c(p.n, p.n);
  StrassenOptions opts;
  opts.base_cutoff = p.cutoff;
  opts.winograd = p.winograd;

  trace::Recorder rec;
  {
    trace::RecordingScope scope(rec);
    multiply(a.view(), b.view(), c.view(), opts);
  }
  StrassenCostOptions cost;
  cost.base_cutoff = p.cutoff;
  cost.winograd = p.winograd;
  EXPECT_EQ(static_cast<double>(rec.total().flops),
            strassen_total_flops(p.n, cost));
  EXPECT_EQ(static_cast<double>(rec.total().dram_bytes()),
            strassen_total_traffic_bytes(p.n, cost));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrassenCountTest,
    ::testing::Values(StrassenCase{32, 8, false},   // exact power recursion
                      StrassenCase{48, 8, false},   // base*2^k with base 6
                      StrassenCase{100, 16, false}, // padded
                      StrassenCase{128, 32, false},
                      StrassenCase{64, 64, false},  // pure base case
                      StrassenCase{33, 8, false},   // padded odd
                      StrassenCase{32, 8, true},
                      StrassenCase{100, 16, true}));

TEST(Strassen, ReducesMultiplicationFlops) {
  // One recursion level: 7/8 of the classical products plus O(n^2) adds.
  StrassenCostOptions cost;
  cost.base_cutoff = 64;
  const double classical = 2.0 * 128 * 128 * 128;
  const double strassen = strassen_total_flops(128, cost);
  const double adds = 18.0 * 64 * 64;
  EXPECT_DOUBLE_EQ(strassen, classical * 7.0 / 8.0 + adds);
}

TEST(Strassen, WinogradUsesFewerAddFlops) {
  StrassenCostOptions classic{.base_cutoff = 32, .winograd = false};
  StrassenCostOptions wino{.base_cutoff = 32, .winograd = true};
  EXPECT_LT(strassen_total_flops(256, wino),
            strassen_total_flops(256, classic));
  EXPECT_LT(strassen_total_traffic_bytes(256, wino),
            strassen_total_traffic_bytes(256, classic));
}

TEST(Strassen, StabilityWithinHighamStyleBound) {
  // Strassen's forward error grows with recursion depth but stays
  // well-behaved for moderate depth (Higham 2002, ch. 23). Check the
  // relative error against a generous depth-scaled bound.
  const std::size_t n = 256;
  Matrix a = random_matrix(n, n, 11), b = random_matrix(n, n, 12);
  Matrix expect(n, n), got(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  StrassenOptions opts;
  opts.base_cutoff = 16;  // 4 levels of recursion
  multiply(a.view(), b.view(), got.view(), opts);
  const double err = linalg::relative_error(got.view(), expect.view());
  // 12^depth * n * eps is the classic growth envelope; depth 4, n 256.
  const double bound = std::pow(12.0, 4) * n * 2.2e-16;
  EXPECT_LT(err, bound);
}

TEST(Strassen, DeeperRecursionStillAccurate) {
  const std::size_t n = 128;
  Matrix a = random_matrix(n, n, 3), b = random_matrix(n, n, 4);
  Matrix expect(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  for (std::size_t cutoff : {64u, 32u, 16u, 8u}) {
    Matrix got(n, n);
    StrassenOptions opts;
    opts.base_cutoff = cutoff;
    multiply(a.view(), b.view(), got.view(), opts);
    EXPECT_TRUE(allclose(got.view(), expect.view(), 1e-9, 1e-9))
        << "cutoff=" << cutoff;
  }
}

TEST(Strassen, TaskSpawnDepthZeroRunsSerially) {
  const std::size_t n = 64;
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  Matrix c(n, n), expect(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  StrassenOptions opts;
  opts.base_cutoff = 16;
  opts.task_spawn_depth = 0;
  tasking::ThreadPool pool(2);
  trace::Recorder rec;
  {
    trace::RecordingScope scope(rec);
    multiply(a.view(), b.view(), c.view(), opts, &pool);
  }
  EXPECT_TRUE(allclose(c.view(), expect.view(), 1e-11, 1e-11));
  EXPECT_EQ(rec.total().tasks_spawned, 0u);
}

TEST(Strassen, SpawnsSevenTasksPerNode) {
  const std::size_t n = 128;
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  Matrix c(n, n);
  StrassenOptions opts;
  opts.base_cutoff = 32;  // two levels
  opts.task_spawn_depth = 2;
  tasking::ThreadPool pool(2);
  trace::Recorder rec;
  {
    trace::RecordingScope scope(rec);
    multiply(a.view(), b.view(), c.view(), opts, &pool);
  }
  // Level 0: 7 spawns; level 1: 7 nodes x 7 spawns.
  EXPECT_EQ(rec.total().tasks_spawned, 7u + 49u);
  EXPECT_EQ(rec.total().syncs, 1u + 7u);
}

}  // namespace
}  // namespace capow::strassen
