// Tests for the DVFS model and RAPL power capping — the two established
// power-management axes the paper's algorithmic axis is compared
// against.
#include <gtest/gtest.h>

#include "capow/machine/dvfs.hpp"
#include "capow/rapl/msr.hpp"
#include "capow/sim/cost_profile.hpp"
#include "capow/sim/executor.hpp"

namespace capow {
namespace {

using machine::MachineSpec;
using machine::PowerPlane;

MachineSpec haswell() { return machine::haswell_e3_1225(); }

sim::WorkProfile compute_profile(double flops, double efficiency = 1.0) {
  sim::WorkProfile wp;
  wp.name = "compute";
  wp.add(sim::PhaseCost{.label = "c",
                        .flops = flops,
                        .parallelism = 4,
                        .efficiency = efficiency});
  return wp;
}

TEST(Dvfs, ScalesThroughputLinearlyAndPowerCubically) {
  const MachineSpec base = haswell();
  const MachineSpec half = machine::scale_frequency(base, 0.5);
  EXPECT_NO_THROW(half.validate());
  EXPECT_DOUBLE_EQ(half.peak_flops(), base.peak_flops() * 0.5);
  EXPECT_NEAR(half.core.busy_power_w, base.core.busy_power_w * 0.125,
              1e-12);
  EXPECT_NEAR(half.core.fma_power_w, base.core.fma_power_w * 0.125, 1e-12);
  // Statics and memory untouched.
  EXPECT_DOUBLE_EQ(half.power.uncore_static_w, base.power.uncore_static_w);
  EXPECT_DOUBLE_EQ(half.memory.bandwidth_bytes_per_s,
                   base.memory.bandwidth_bytes_per_s);
}

TEST(Dvfs, RejectsOutOfRangeFactors) {
  EXPECT_THROW(machine::scale_frequency(haswell(), 0.1),
               std::invalid_argument);
  EXPECT_THROW(machine::scale_frequency(haswell(), 1.5),
               std::invalid_argument);
  EXPECT_NO_THROW(machine::scale_frequency(haswell(), 1.0));
}

TEST(Dvfs, DownclockTradesTimeForPower) {
  const MachineSpec base = haswell();
  const MachineSpec slow = machine::scale_frequency(base, 0.6);
  const auto fast_run = sim::simulate(base, compute_profile(2.048e11), 4);
  const auto slow_run = sim::simulate(slow, compute_profile(2.048e11), 4);
  EXPECT_GT(slow_run.seconds, fast_run.seconds);
  EXPECT_LT(slow_run.avg_power_w(PowerPlane::kPackage),
            fast_run.avg_power_w(PowerPlane::kPackage));
}

TEST(Dvfs, MaxScaleUnderCap) {
  const MachineSpec m = haswell();
  // Full-throttle AVX GEMM at s=1.0 draws ~50 W; a 30 W cap forces a
  // downclock, a 60 W cap does not.
  const double s_tight = machine::max_frequency_scale_under_cap(m, 0.42, 30.0);
  const double s_loose = machine::max_frequency_scale_under_cap(m, 0.42, 100.0);
  EXPECT_GT(s_tight, machine::kMinFrequencyScale);
  EXPECT_LT(s_tight, 1.0);
  EXPECT_DOUBLE_EQ(s_loose, machine::kMaxFrequencyScale);
  // The search honors the overhead margin: a 2 W allowance for memory
  // power tightens the feasible scale.
  EXPECT_LT(machine::max_frequency_scale_under_cap(m, 0.42, 30.0, 2.0),
            s_tight);
  // Below the static floor nothing helps.
  EXPECT_DOUBLE_EQ(machine::max_frequency_scale_under_cap(m, 0.42, 5.0),
                   0.0);
  EXPECT_THROW(machine::max_frequency_scale_under_cap(m, 0.0, 30.0),
               std::invalid_argument);
}

TEST(PowerLimitMsr, EncodeDecodeRoundTrip) {
  rapl::SimulatedMsrDevice msr;
  EXPECT_LT(msr.package_power_limit_w(), 0.0);  // disabled by default
  msr.set_package_power_limit(35.0);
  EXPECT_DOUBLE_EQ(msr.package_power_limit_w(), 35.0);
  // 1/8 W resolution floors.
  msr.set_package_power_limit(35.06);
  EXPECT_DOUBLE_EQ(msr.package_power_limit_w(), 35.0);
  msr.set_package_power_limit(0.0);
  EXPECT_LT(msr.package_power_limit_w(), 0.0);
}

TEST(PowerLimitMsr, RawRegisterLayout) {
  rapl::SimulatedMsrDevice msr;
  msr.set_package_power_limit(40.0);
  const std::uint64_t raw = msr.read(rapl::kMsrPkgPowerLimit);
  EXPECT_EQ(raw & 0x7FFF, 320u);  // 40 W in 1/8 W units
  EXPECT_NE(raw & (1ull << 15), 0u);
  EXPECT_THROW(msr.write(rapl::kMsrPkgEnergyStatus, 1),
               std::out_of_range);
}

TEST(SimulateCapped, UncappedPhasesUnchanged) {
  const MachineSpec m = haswell();
  const auto wp = compute_profile(2.048e11, 0.42);
  const auto free_run = sim::simulate(m, wp, 4);
  const auto capped = sim::simulate_capped(m, wp, 4, 1000.0);
  EXPECT_DOUBLE_EQ(capped.seconds, free_run.seconds);
  EXPECT_DOUBLE_EQ(capped.energy(PowerPlane::kPackage),
                   free_run.energy(PowerPlane::kPackage));
}

TEST(SimulateCapped, ThrottledPhaseSitsExactlyAtCap) {
  const MachineSpec m = haswell();
  const auto wp = compute_profile(2.048e11, 0.42);  // ~50 W uncapped
  const double cap = 35.0;
  const auto free_run = sim::simulate(m, wp, 4);
  ASSERT_GT(free_run.avg_power_w(PowerPlane::kPackage), cap);

  const auto capped = sim::simulate_capped(m, wp, 4, cap);
  EXPECT_NEAR(capped.avg_power_w(PowerPlane::kPackage), cap, 1e-9);
  EXPECT_GT(capped.seconds, free_run.seconds);
  // Capping costs energy: statics burn over the stretched time.
  EXPECT_GT(capped.energy(PowerPlane::kPackage),
            free_run.energy(PowerPlane::kPackage));
  // PP0 stays below package and above its static floor.
  EXPECT_LT(capped.avg_power_w(PowerPlane::kPP0), cap);
  EXPECT_GT(capped.avg_power_w(PowerPlane::kPP0), m.power.pp0_static_w);
}

TEST(SimulateCapped, CapBelowStaticFloorThrows) {
  const MachineSpec m = haswell();
  const auto wp = compute_profile(1e10);
  EXPECT_THROW(sim::simulate_capped(m, wp, 4, 5.0), std::invalid_argument);
  EXPECT_THROW(sim::simulate_capped(m, wp, 4, 0.0), std::invalid_argument);
}

TEST(SimulateCapped, DepositsCappedEnergyIntoMsr) {
  const MachineSpec m = haswell();
  rapl::SimulatedMsrDevice msr;
  const auto capped =
      sim::simulate_capped(m, compute_profile(2.048e11, 0.42), 4, 35.0,
                           &msr);
  EXPECT_NEAR(msr.total_joules(PowerPlane::kPackage),
              capped.energy(PowerPlane::kPackage), 1e-6);
}

TEST(SimulateCapped, MixedProfileOnlyThrottlesHotPhases) {
  const MachineSpec m = haswell();
  sim::WorkProfile wp;
  wp.add(sim::PhaseCost{.label = "hot", .flops = 2.048e11,
                        .parallelism = 4, .efficiency = 0.42});
  wp.add(sim::PhaseCost{.label = "cold", .flops = 1.0,
                        .dram_bytes = 1.03e10, .parallelism = 4,
                        .efficiency = 0.42});
  const auto free_run = sim::simulate(m, wp, 4);
  const auto capped = sim::simulate_capped(m, wp, 4, 35.0);
  EXPECT_GT(capped.phases[0].seconds, free_run.phases[0].seconds);
  EXPECT_DOUBLE_EQ(capped.phases[1].seconds, free_run.phases[1].seconds);
}

}  // namespace
}  // namespace capow
