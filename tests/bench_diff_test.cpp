#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "capow/harness/bench_diff.hpp"

namespace {

using capow::harness::BenchDiffOptions;
using capow::harness::BenchRecord;
using capow::harness::diff_bench_records;
using capow::harness::parse_bench_jsonl;

std::vector<BenchRecord> parse(const std::string& text,
                               std::size_t* malformed = nullptr) {
  std::istringstream is(text);
  return parse_bench_jsonl(is, malformed);
}

// ---------------------------------------------------------------------------
// parse_bench_jsonl

TEST(BenchJsonl, ParsesRecordsInOrder) {
  const auto records = parse(
      "{\"name\":\"BM_A\",\"real_time\":10.5,\"cpu_time\":10.0}\n"
      "{\"name\":\"BM_B\",\"real_time\":20.0,\"iterations\":7}\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "BM_A");
  EXPECT_DOUBLE_EQ(records[0].metric("real_time"), 10.5);
  EXPECT_DOUBLE_EQ(records[1].metric("iterations"), 7.0);
  EXPECT_TRUE(std::isnan(records[0].metric("absent")));
}

TEST(BenchJsonl, SkipsAndCountsMalformedLines) {
  std::size_t malformed = 0;
  const auto records = parse(
      "not json at all\n"
      "{\"name\":\"BM_A\",\"real_time\":10}\n"
      "{\"real_time\":5}\n"          // no name
      "{\"name\":\"BM_B\",\"t\":1\n"  // unterminated object
      "\n"                            // blank: skipped, not malformed
      "{\"name\":\"BM_C\",\"real_time\":3}\n",
      &malformed);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "BM_A");
  EXPECT_EQ(records[1].name, "BM_C");
  EXPECT_EQ(malformed, 3u);
}

TEST(BenchJsonl, HandlesStringEscapesAndIgnoresBooleans) {
  const auto records = parse(
      "{\"name\":\"BM_quote\\\"tab\\t\",\"real_time\":1.0,"
      "\"error_occurred\":false,\"note\":null,\"big\":1.5e3}\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "BM_quote\"tab\t");
  EXPECT_DOUBLE_EQ(records[0].metric("big"), 1500.0);
  EXPECT_TRUE(std::isnan(records[0].metric("error_occurred")));
}

TEST(BenchJsonl, MergesRepeatedRunsBestOfPerMetric) {
  const auto records = parse(
      "{\"name\":\"BM_A\",\"real_time\":12.0,\"cpu_time\":9.0}\n"
      "{\"name\":\"BM_A\",\"real_time\":10.0,\"cpu_time\":11.0}\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].metric("real_time"), 10.0);
  EXPECT_DOUBLE_EQ(records[0].metric("cpu_time"), 9.0);
}

// ---------------------------------------------------------------------------
// diff_bench_records

std::vector<BenchRecord> records_with_time(double a_time, double b_time) {
  return {
      BenchRecord{"BM_A", {{"real_time", a_time}, {"cpu_time", a_time}}},
      BenchRecord{"BM_B", {{"real_time", b_time}, {"cpu_time", b_time}}},
  };
}

TEST(BenchDiff, IdenticalInputsHaveNoRegression) {
  const auto base = records_with_time(100.0, 200.0);
  const auto report = diff_bench_records(base, base, {});
  EXPECT_FALSE(report.has_regression());
  EXPECT_EQ(report.rows.size(), 4u);
  for (const auto& row : report.rows) {
    EXPECT_DOUBLE_EQ(row.ratio, 1.0);
  }
  EXPECT_TRUE(report.missing.empty());
  EXPECT_TRUE(report.added.empty());
}

TEST(BenchDiff, TwentyPercentSlowdownRegressesAtDefaultTolerance) {
  const auto base = records_with_time(100.0, 200.0);
  const auto cur = records_with_time(120.0, 200.0);  // BM_A +20%
  const auto report = diff_bench_records(base, cur, {});
  EXPECT_TRUE(report.has_regression());
  EXPECT_EQ(report.regressions(), 2u);  // real_time and cpu_time of BM_A
  EXPECT_TRUE(report.rows[0].regression);
  EXPECT_NEAR(report.rows[0].ratio, 1.2, 1e-12);
  EXPECT_FALSE(report.rows[2].regression);
}

TEST(BenchDiff, WiderToleranceAbsorbsTheSameSlowdown) {
  const auto base = records_with_time(100.0, 200.0);
  const auto cur = records_with_time(120.0, 200.0);
  BenchDiffOptions opts;
  opts.tolerance = 0.25;
  EXPECT_FALSE(diff_bench_records(base, cur, opts).has_regression());
}

TEST(BenchDiff, SpeedupIsNeverARegression) {
  const auto base = records_with_time(100.0, 200.0);
  const auto cur = records_with_time(50.0, 20.0);
  EXPECT_FALSE(diff_bench_records(base, cur, {}).has_regression());
}

TEST(BenchDiff, MissingAndAddedBenchmarksAreReportedNotFailed) {
  const std::vector<BenchRecord> base = {
      BenchRecord{"BM_gone", {{"real_time", 1.0}}}};
  const std::vector<BenchRecord> cur = {
      BenchRecord{"BM_new", {{"real_time", 1.0}}}};
  const auto report = diff_bench_records(base, cur, {});
  EXPECT_FALSE(report.has_regression());
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing[0], "BM_gone");
  ASSERT_EQ(report.added.size(), 1u);
  EXPECT_EQ(report.added[0], "BM_new");
}

TEST(BenchDiff, CustomMetricListAndAbsentMetricsSkipped) {
  const std::vector<BenchRecord> base = {
      BenchRecord{"BM_A", {{"gflops_time", 10.0}, {"real_time", 5.0}}}};
  const std::vector<BenchRecord> cur = {
      BenchRecord{"BM_A", {{"gflops_time", 20.0}, {"real_time", 5.0}}}};
  BenchDiffOptions opts;
  opts.metrics = {"gflops_time", "no_such_metric"};
  const auto report = diff_bench_records(base, cur, opts);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].metric, "gflops_time");
  EXPECT_TRUE(report.rows[0].regression);
}

TEST(BenchDiff, NonPositiveBaselineIsSkipped) {
  const std::vector<BenchRecord> base = {
      BenchRecord{"BM_A", {{"real_time", 0.0}, {"cpu_time", -1.0}}}};
  const std::vector<BenchRecord> cur = {
      BenchRecord{"BM_A", {{"real_time", 100.0}, {"cpu_time", 100.0}}}};
  EXPECT_TRUE(diff_bench_records(base, cur, {}).rows.empty());
}

}  // namespace
