// Tests for the capow::matmul() facade, the shared algorithm registry,
// and the backend-pinned equivalence the redesign guarantees.
#include <gtest/gtest.h>

#include "capow/api/matmul.hpp"
#include "capow/blas/blocked_gemm.hpp"
#include "capow/blas/gemm_ref.hpp"
#include "capow/core/algorithms.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"

namespace capow {
namespace {

using core::AlgorithmId;
using linalg::allclose;
using linalg::Matrix;
using linalg::random_matrix;

TEST(AlgorithmRegistry, ThreeAlgorithmsWithStableIdsAndKeys) {
  const auto algos = core::algorithm_registry();
  ASSERT_EQ(algos.size(), 3u);
  EXPECT_EQ(algos[0].id, AlgorithmId::kOpenBlas);
  EXPECT_STREQ(algos[0].name, "OpenBLAS");
  EXPECT_STREQ(algos[0].key, "openblas");
  EXPECT_EQ(algos[1].id, AlgorithmId::kStrassen);
  EXPECT_EQ(algos[2].id, AlgorithmId::kCaps);
}

TEST(AlgorithmRegistry, FindByNameOrKey) {
  const core::AlgorithmInfo* byname = core::find_algorithm("Strassen");
  ASSERT_NE(byname, nullptr);
  EXPECT_EQ(byname->id, AlgorithmId::kStrassen);
  const core::AlgorithmInfo* bykey = core::find_algorithm("caps");
  ASSERT_NE(bykey, nullptr);
  EXPECT_EQ(bykey->id, AlgorithmId::kCaps);
  EXPECT_EQ(core::find_algorithm("cannon"), nullptr);
}

TEST(AlgorithmRegistry, NamesMatchLegacySpelling) {
  EXPECT_STREQ(core::algorithm_name(AlgorithmId::kOpenBlas), "OpenBLAS");
  EXPECT_STREQ(core::algorithm_name(AlgorithmId::kStrassen), "Strassen");
  EXPECT_STREQ(core::algorithm_name(AlgorithmId::kCaps), "CAPS");
}

TEST(MatmulFacade, DefaultsToBlockedGemm) {
  const std::size_t n = 96;
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  Matrix expect(n, n), got(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  matmul(a.view(), b.view(), got.view());
  EXPECT_TRUE(allclose(got.view(), expect.view(), 1e-11, 1e-11));
}

TEST(MatmulFacade, ShapeErrorsPropagate) {
  Matrix a(4, 6), b(5, 4), c(4, 4);
  EXPECT_THROW(matmul(a.view(), b.view(), c.view()), std::invalid_argument);
}

TEST(MatmulFacade, ExplicitKernelSelection) {
  const std::size_t n = 80;
  Matrix a = random_matrix(n, n, 3), b = random_matrix(n, n, 4);
  Matrix expect(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  for (const auto& kern : blas::kernel_registry()) {
    if (!kern.supported()) continue;
    Matrix got(n, n);
    MatmulOptions opts;
    opts.kernel = kern.id;
    matmul(a.view(), b.view(), got.view(), opts);
    EXPECT_TRUE(allclose(got.view(), expect.view(), 1e-11, 1e-11))
        << kern.name;
  }
}

TEST(MatmulFacade, MatmulKernelReportsResolution) {
  MatmulOptions opts;
  const blas::MicroKernel* k = matmul_kernel(opts);
  ASSERT_NE(k, nullptr);  // blocked GEMM always runs a microkernel
  EXPECT_TRUE(k->supported());

  opts.algorithm = AlgorithmId::kStrassen;
  // Default Strassen base case is the BOTS-style loop kernel (null),
  // unless the CAPOW_KERNEL environment pins one for the whole stack...
  const auto env = blas::env_kernel_override();
  const blas::MicroKernel* def = matmul_kernel(opts);
  if (env) {
    ASSERT_NE(def, nullptr);
    EXPECT_EQ(def->id, *env);
  } else {
    EXPECT_EQ(def, nullptr);
  }
  // ...until a kernel is requested through the facade.
  opts.kernel = blas::MicroKernelId::kGeneric;
  const blas::MicroKernel* sk = matmul_kernel(opts);
  ASSERT_NE(sk, nullptr);
  EXPECT_EQ(sk->id, blas::MicroKernelId::kGeneric);
}

TEST(MatmulFacade, CapsStatsFlowThrough) {
  const std::size_t n = 64;
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  Matrix c(n, n);
  capsalg::CapsStats stats;
  MatmulOptions opts;
  opts.algorithm = AlgorithmId::kCaps;
  opts.caps.base_cutoff = 8;
  opts.caps.bfs_cutoff_depth = 2;
  opts.caps_stats = &stats;
  matmul(a.view(), b.view(), c.view(), opts);
  EXPECT_GT(stats.base_products, 0u);
  EXPECT_GT(stats.peak_buffer_bytes, 0u);
}

TEST(MatmulFacade, ParallelPoolThreadsThrough) {
  const std::size_t n = 192;
  Matrix a = random_matrix(n, n, 7), b = random_matrix(n, n, 8);
  Matrix serial(n, n), parallel(n, n);
  MatmulOptions opts;
  opts.algorithm = AlgorithmId::kStrassen;
  opts.strassen.base_cutoff = 32;
  matmul(a.view(), b.view(), serial.view(), opts);
  tasking::ThreadPool pool(3);
  opts.pool = &pool;
  matmul(a.view(), b.view(), parallel.view(), opts);
  EXPECT_TRUE(allclose(parallel.view(), serial.view(), 0.0, 0.0));
}

// ---------------------------------------------------------------------
// Backend-pinned equivalence. Pinning backend=cpu must be bit-identical
// to both the direct per-algorithm entry points and the default facade
// path, on the same shapes/seeds the PR-3 shim-equivalence tests used —
// the device seam adds dispatch, not arithmetic.
// ---------------------------------------------------------------------

TEST(BackendEquivalence, CpuBackendMatchesDirectGemmBitwise) {
  for (std::size_t n : {64u, 512u}) {
    Matrix a = random_matrix(n, n, n), b = random_matrix(n, n, n + 1);
    Matrix direct(n, n), facade(n, n);
    blas::gemm(a.view(), b.view(), direct.view());
    MatmulOptions opts;
    opts.backend = backend::BackendId::kCpu;
    matmul(a.view(), b.view(), facade.view(), opts);
    EXPECT_TRUE(allclose(facade.view(), direct.view(), 0.0, 0.0))
        << "n=" << n;
  }
}

TEST(BackendEquivalence, CpuBackendMatchesStrassenBitwise) {
  const std::size_t n = 256;
  Matrix a = random_matrix(n, n, 31), b = random_matrix(n, n, 32);
  Matrix direct(n, n), facade(n, n);
  strassen::StrassenOptions sopts;
  sopts.base_cutoff = 32;
  strassen::multiply(a.view(), b.view(), direct.view(), sopts);
  MatmulOptions opts;
  opts.algorithm = AlgorithmId::kStrassen;
  opts.strassen = sopts;
  opts.backend = backend::BackendId::kCpu;
  matmul(a.view(), b.view(), facade.view(), opts);
  EXPECT_TRUE(allclose(facade.view(), direct.view(), 0.0, 0.0));
}

TEST(BackendEquivalence, CpuBackendMatchesCapsBitwise) {
  const std::size_t n = 128;
  Matrix a = random_matrix(n, n, 41), b = random_matrix(n, n, 42);
  Matrix direct(n, n), facade(n, n);
  capsalg::CapsOptions copts;
  copts.base_cutoff = 16;
  copts.bfs_cutoff_depth = 1;
  capsalg::multiply(a.view(), b.view(), direct.view(), copts);
  MatmulOptions opts;
  opts.algorithm = AlgorithmId::kCaps;
  opts.caps = copts;
  opts.backend = backend::BackendId::kCpu;
  matmul(a.view(), b.view(), facade.view(), opts);
  EXPECT_TRUE(allclose(facade.view(), direct.view(), 0.0, 0.0));
}

TEST(BackendEquivalence, ExplicitCpuMatchesDefaultResolutionBitwise) {
  const std::size_t n = 96;
  Matrix a = random_matrix(n, n, 5), b = random_matrix(n, n, 6);
  Matrix by_default(n, n), pinned(n, n);
  matmul(a.view(), b.view(), by_default.view());
  MatmulOptions opts;
  opts.backend = backend::BackendId::kCpu;
  matmul(a.view(), b.view(), pinned.view(), opts);
  EXPECT_TRUE(allclose(pinned.view(), by_default.view(), 0.0, 0.0));
}

// ---------------------------------------------------------------------
// Resolve-time options validation: inconsistent kernel/blocking
// requests fail up front with the valid combinations in the message.
// ---------------------------------------------------------------------

TEST(MatmulValidation, UnknownBlockingTileRejectedWithListing) {
  MatmulOptions opts;
  opts.blocking = blas::BlockingParams{};
  opts.blocking->mr = 5;
  opts.blocking->nr = 3;
  try {
    Matrix a(8, 8), b(8, 8), c(8, 8);
    matmul(a.view(), b.view(), c.view(), opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("5x3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("generic=4x4"), std::string::npos) << msg;
  }
}

TEST(MatmulValidation, ConflictingKernelAndTileRejectedWithListing) {
  MatmulOptions opts;
  const blas::MicroKernel* generic =
      blas::find_kernel(blas::MicroKernelId::kGeneric);
  ASSERT_NE(generic, nullptr);
  opts.blocking = blas::default_blocking_for(*generic);
  opts.kernel = blas::MicroKernelId::kFma;  // 6x8 tile, not 4x4
  try {
    validate_options(opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("generic"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fma"), std::string::npos) << msg;
    EXPECT_NE(msg.find("6x8"), std::string::npos) << msg;
  }
}

TEST(MatmulValidation, ConsistentPinnedTileAccepted) {
  const blas::MicroKernel* generic =
      blas::find_kernel(blas::MicroKernelId::kGeneric);
  ASSERT_NE(generic, nullptr);
  MatmulOptions opts;
  opts.blocking = blas::default_blocking_for(*generic);
  opts.kernel = blas::MicroKernelId::kGeneric;
  EXPECT_NO_THROW(validate_options(opts));

  const std::size_t n = 48;
  Matrix a = random_matrix(n, n, 9), b = random_matrix(n, n, 10);
  Matrix expect(n, n), got(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  matmul(a.view(), b.view(), got.view(), opts);
  EXPECT_TRUE(allclose(got.view(), expect.view(), 1e-11, 1e-11));
}

}  // namespace
}  // namespace capow
