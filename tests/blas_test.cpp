// Tests for the blocked DGEMM and its cost model.
#include <gtest/gtest.h>

#include "capow/blas/blocked_gemm.hpp"
#include "capow/blas/blocking.hpp"
#include "capow/blas/cost_model.hpp"
#include "capow/blas/gemm_ref.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"
#include "capow/trace/counters.hpp"

namespace capow::blas {
namespace {

using linalg::allclose;
using linalg::Matrix;
using linalg::random_matrix;

TEST(GemmRef, TinyHandComputed) {
  Matrix a(2, 2), b(2, 2), c(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  gemm_reference(a.view(), b.view(), c.view());
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(GemmRef, IdentityIsNeutral) {
  Matrix a = random_matrix(9, 9, 3);
  Matrix id = Matrix::identity(9);
  Matrix c(9, 9);
  gemm_reference(a.view(), id.view(), c.view());
  EXPECT_TRUE(allclose(c.view(), a.view(), 0.0, 0.0));
}

TEST(GemmRef, AccumulateAddsOntoC) {
  Matrix a = random_matrix(4, 4, 1);
  Matrix b = random_matrix(4, 4, 2);
  Matrix c(4, 4, 1.0);
  Matrix expect(4, 4);
  gemm_reference(a.view(), b.view(), expect.view());
  linalg::MatrixView ev = expect.view();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) ev(i, j) += 1.0;
  }
  gemm_reference_accumulate(a.view(), b.view(), c.view());
  EXPECT_TRUE(allclose(c.view(), expect.view(), 1e-14, 1e-14));
}

TEST(GemmRef, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3), c(2, 3);
  EXPECT_THROW(gemm_reference(a.view(), b.view(), c.view()),
               std::invalid_argument);
}

TEST(Blocking, HaswellSelection) {
  const BlockingParams bp = select_blocking(machine::haswell_e3_1225());
  // mr x kc + kc x nr stripes fit half of L1.
  EXPECT_LE(bp.kc * (bp.mr + bp.nr) * 8, 32u * 1024 / 2);
  // Packed A fits half of L2.
  EXPECT_LE(bp.mc * bp.kc * 8, 256u * 1024 / 2);
  // Packed B fits half of the LLC.
  EXPECT_LE(bp.kc * bp.nc * 8, 8u * 1024 * 1024 / 2);
  EXPECT_EQ(bp.mc % bp.mr, 0u);
  EXPECT_EQ(bp.nc % bp.nr, 0u);
}

TEST(Blocking, CachelessMachineFallsBack) {
  machine::MachineSpec m = machine::haswell_e3_1225();
  m.caches.clear();
  const BlockingParams bp = select_blocking(m);
  const BlockingParams def = default_blocking();
  EXPECT_EQ(bp.mc, def.mc);
  EXPECT_EQ(bp.kc, def.kc);
}

class BlockedGemmSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlockedGemmSizeTest, MatchesReference) {
  const std::size_t n = GetParam();
  Matrix a = random_matrix(n, n, n * 3 + 1);
  Matrix b = random_matrix(n, n, n * 3 + 2);
  Matrix expect(n, n), got(n, n);
  gemm_reference(a.view(), b.view(), expect.view());
  gemm(a.view(), b.view(), got.view());
  EXPECT_TRUE(allclose(got.view(), expect.view(), 1e-12, 1e-12))
      << "n=" << n
      << " maxdiff=" << linalg::max_abs_diff(got.view(), expect.view());
}

INSTANTIATE_TEST_SUITE_P(Sweep, BlockedGemmSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 31, 33,
                                           64, 65, 100, 128, 129, 200, 256));

TEST(BlockedGemm, RectangularShapes) {
  for (auto [m, k, n] : {std::tuple<int, int, int>{5, 9, 3},
                         {64, 32, 48},
                         {1, 100, 1},
                         {130, 7, 65}}) {
    Matrix a = random_matrix(m, k, 11);
    Matrix b = random_matrix(k, n, 12);
    Matrix expect(m, n), got(m, n);
    gemm_reference(a.view(), b.view(), expect.view());
    gemm(a.view(), b.view(), got.view());
    EXPECT_TRUE(allclose(got.view(), expect.view(), 1e-12, 1e-12))
        << m << "x" << k << "x" << n;
  }
}

TEST(BlockedGemm, TinyBlockingExercisesAllEdges) {
  // Force many partial blocks.
  BlockingParams bp{.mc = 8, .kc = 8, .nc = 8, .mr = 4, .nr = 4};
  Matrix a = random_matrix(37, 29, 5);
  Matrix b = random_matrix(29, 23, 6);
  Matrix expect(37, 23), got(37, 23);
  gemm_reference(a.view(), b.view(), expect.view());
  GemmOptions opts;
  opts.blocking = bp;
  gemm(a.view(), b.view(), got.view(), opts);
  EXPECT_TRUE(allclose(got.view(), expect.view(), 1e-12, 1e-12));
}

TEST(BlockedGemm, ParallelMatchesSerialBitwise) {
  const std::size_t n = 160;
  Matrix a = random_matrix(n, n, 1);
  Matrix b = random_matrix(n, n, 2);
  Matrix serial(n, n), parallel(n, n);
  gemm(a.view(), b.view(), serial.view());
  tasking::ThreadPool pool(3);
  GemmOptions serial_opts;
  serial_opts.blocking = BlockingParams{.mc = 32, .kc = 64, .nc = 64,
                                        .mr = 4, .nr = 4};
  GemmOptions parallel_opts = serial_opts;
  parallel_opts.pool = &pool;
  gemm(a.view(), b.view(), serial.view(), serial_opts);
  gemm(a.view(), b.view(), parallel.view(), parallel_opts);
  // Identical block decomposition => identical floating point results.
  EXPECT_TRUE(allclose(parallel.view(), serial.view(), 0.0, 0.0));
}

TEST(BlockedGemm, RejectsUnsupportedMicrokernel) {
  GemmOptions opts;
  opts.blocking = BlockingParams{.mc = 8, .kc = 8, .nc = 8, .mr = 8, .nr = 8};
  Matrix a(8, 8), b(8, 8), c(8, 8);
  EXPECT_THROW(gemm(a.view(), b.view(), c.view(), opts),
               std::invalid_argument);
}

TEST(BlasCostModel, FlopCount) {
  EXPECT_DOUBLE_EQ(gemm_flops(2, 3, 4), 48.0);
}

class GemmTrafficTest : public ::testing::TestWithParam<std::size_t> {};

// The heart of the validation story: instrumented logical traffic and
// flops from a real run match the closed-form model exactly.
TEST_P(GemmTrafficTest, InstrumentedCountsMatchModelExactly) {
  const std::size_t n = GetParam();
  const BlockingParams bp{.mc = 32, .kc = 32, .nc = 64, .mr = 4, .nr = 4};
  Matrix a = random_matrix(n, n, 1);
  Matrix b = random_matrix(n, n, 2);
  Matrix c(n, n);

  trace::Recorder rec;
  {
    trace::RecordingScope scope(rec);
    GemmOptions opts;
    opts.blocking = bp;
    gemm(a.view(), b.view(), c.view(), opts);
  }
  const auto total = rec.total();
  EXPECT_EQ(static_cast<double>(total.flops), gemm_flops(n, n, n));
  EXPECT_EQ(static_cast<double>(total.dram_bytes()),
            blocked_gemm_traffic_bytes(n, n, n, bp));
}

INSTANTIATE_TEST_SUITE_P(Sweep, GemmTrafficTest,
                         ::testing::Values(16, 32, 48, 64, 96, 100, 130));

TEST(BlasCostModel, SyncCount) {
  const BlockingParams bp{.mc = 32, .kc = 32, .nc = 64, .mr = 4, .nr = 4};
  EXPECT_EQ(blocked_gemm_sync_count(128, 128, bp), 2u * 4u);
}

TEST(BlasCostModel, ProfileSmallProblemIsCacheResident) {
  const auto m = machine::haswell_e3_1225();
  const auto wp = blocked_gemm_profile(512, m, 4);
  ASSERT_EQ(wp.phases.size(), 1u);
  // 3 * 512^2 * 8 = 6.3 MB fits the 8 MB LLC: only compulsory DRAM.
  EXPECT_DOUBLE_EQ(wp.phases[0].dram_bytes, 4.0 * 512 * 512 * 8);
  EXPECT_GT(wp.phases[0].cache_bytes, 0.0);
}

TEST(BlasCostModel, ProfileLargeProblemStreamsFromDram) {
  const auto m = machine::haswell_e3_1225();
  const auto wp = blocked_gemm_profile(2048, m, 4);
  EXPECT_GT(wp.phases[0].dram_bytes, 3.0 * 2048 * 2048 * 8);
  EXPECT_DOUBLE_EQ(wp.phases[0].cache_bytes, 0.0);
}

TEST(BlasCostModel, ProfileFlopsAlwaysCubic) {
  const auto m = machine::haswell_e3_1225();
  for (std::size_t n : {256u, 512u, 1024u}) {
    EXPECT_DOUBLE_EQ(blocked_gemm_profile(n, m, 2).total_flops(),
                     gemm_flops(n, n, n));
  }
}

TEST(BlasCostModel, SerialProfileHasNoSyncs) {
  const auto m = machine::haswell_e3_1225();
  const auto wp = blocked_gemm_profile(1024, m, 1);
  EXPECT_EQ(wp.phases[0].sync_events, 0u);
  EXPECT_EQ(wp.phases[0].parallelism, 1u);
}

}  // namespace
}  // namespace capow::blas
