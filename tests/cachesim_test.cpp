// Tests for the cache simulator and the locality-trace validation of
// the cost models' DRAM classification.
#include <gtest/gtest.h>

#include "capow/cachesim/cache.hpp"
#include "capow/cachesim/locality_trace.hpp"
#include "capow/capsalg/cost_model.hpp"
#include "capow/strassen/cost_model.hpp"

namespace capow::cachesim {
namespace {

CacheConfig tiny_cache() {
  // 4 sets x 2 ways x 64 B lines = 512 B.
  return CacheConfig{.capacity_bytes = 512, .associativity = 2,
                     .line_bytes = 64};
}

TEST(CacheConfig, Validation) {
  EXPECT_NO_THROW(tiny_cache().validate());
  CacheConfig bad = tiny_cache();
  bad.line_bytes = 48;  // not a power of two
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = tiny_cache();
  bad.capacity_bytes = 500;  // not whole sets
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = tiny_cache();
  bad.associativity = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_EQ(tiny_cache().sets(), 4u);
}

TEST(LruCache, ColdMissThenHit) {
  LruCache c(tiny_cache());
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().hits, 2u);
}

TEST(LruCache, LruEvictionWithinSet) {
  LruCache c(tiny_cache());
  // Set index = line % 4; lines 0, 4, 8 all map to set 0 (2 ways).
  const std::uint64_t l0 = 0 * 64, l4 = 4 * 64, l8 = 8 * 64;
  c.access(l0);
  c.access(l4);
  c.access(l0);        // l0 most recent; l4 is LRU
  c.access(l8);        // evicts l4
  EXPECT_TRUE(c.contains(l0));
  EXPECT_FALSE(c.contains(l4));
  EXPECT_TRUE(c.contains(l8));
}

TEST(LruCache, StreamingLargerThanCapacityAlwaysMisses) {
  LruCache c(tiny_cache());
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t a = 0; a < 4096; a += 64) c.access(a);
  }
  // 4 KiB stream through a 512 B cache: every access a capacity miss.
  EXPECT_EQ(c.stats().hits, 0u);
}

TEST(LruCache, ResidentWorkingSetAllHitsAfterWarmup) {
  LruCache c(tiny_cache());
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t a = 0; a < 512; a += 64) c.access(a);
  }
  EXPECT_EQ(c.stats().misses(), 8u);  // cold only
  EXPECT_EQ(c.stats().hits, 24u);
}

TEST(LruCache, ResetClears) {
  LruCache c(tiny_cache());
  c.access(0);
  c.reset();
  EXPECT_FALSE(c.contains(0));
  EXPECT_EQ(c.stats().accesses, 0u);
}

TEST(Hierarchy, MissWalksDownHitStopsEarly) {
  CacheHierarchy h({tiny_cache(),
                    CacheConfig{.capacity_bytes = 2048,
                                .associativity = 2,
                                .line_bytes = 64}});
  h.access(0, 64);  // cold: miss both levels
  EXPECT_EQ(h.level_stats(0).misses(), 1u);
  EXPECT_EQ(h.level_stats(1).misses(), 1u);
  h.access(0, 64);  // L1 hit: L2 untouched
  EXPECT_EQ(h.level_stats(0).hits, 1u);
  EXPECT_EQ(h.level_stats(1).accesses, 1u);
  EXPECT_EQ(h.dram_bytes(), 64u);
}

TEST(Hierarchy, L2CatchesL1CapacityMisses) {
  // Working set of 1 KiB: thrashes the 512 B L1, fits the 2 KiB L2.
  CacheHierarchy h({tiny_cache(),
                    CacheConfig{.capacity_bytes = 2048,
                                .associativity = 2,
                                .line_bytes = 64}});
  for (int pass = 0; pass < 8; ++pass) {
    for (std::uint64_t a = 0; a < 1024; a += 64) h.access(a, 8);
  }
  EXPECT_GT(h.level_stats(0).misses(), 16u);   // L1 keeps missing
  EXPECT_EQ(h.level_stats(1).misses(), 16u);   // L2: cold only
  EXPECT_EQ(h.dram_bytes(), 16u * 64u);
}

TEST(Hierarchy, MultiLineAccessTouchesEveryLine) {
  CacheHierarchy h({tiny_cache()});
  h.access(32, 128);  // spans lines 0, 1, 2
  EXPECT_EQ(h.level_stats(0).accesses, 3u);
  h.access(0, 0);  // no-op
  EXPECT_EQ(h.level_stats(0).accesses, 3u);
}

TEST(Hierarchy, FromMachineMirrorsSpec) {
  const auto m = machine::haswell_e3_1225();
  CacheHierarchy h = CacheHierarchy::from_machine(m);
  EXPECT_EQ(h.level_count(), 3u);
  machine::MachineSpec bare = m;
  bare.caches.clear();
  EXPECT_THROW(CacheHierarchy::from_machine(bare), std::invalid_argument);
}

// ---- Locality-trace validation of the cost models.

const machine::MachineSpec kHaswell = machine::haswell_e3_1225();

TEST(LocalityTrace, LogicalBytesMatchCostModelExactly) {
  // The replay counts with the instrumentation's conventions, so its
  // logical bytes equal the closed-form raw traffic to the byte.
  for (std::size_t n : {128u, 256u, 512u}) {
    strassen::StrassenCostOptions sopts;
    sopts.base_cutoff = 64;
    const auto s = strassen_locality(n, 64, kHaswell);
    EXPECT_EQ(static_cast<double>(s.logical_bytes),
              strassen::strassen_total_traffic_bytes(n, sopts))
        << n;

    capsalg::CapsCostOptions copts;
    copts.base_cutoff = 64;
    copts.bfs_cutoff_depth = 1;
    const auto c = caps_locality(n, 64, 1, kHaswell);
    EXPECT_EQ(static_cast<double>(c.logical_bytes),
              capsalg::caps_total_traffic_bytes(n, copts))
        << n;
  }
}

TEST(LocalityTrace, RejectsPaddedDimensions) {
  // 130 halves to the odd 65 above the cutoff, so it needs padding.
  EXPECT_THROW(strassen_locality(130, 64, kHaswell),
               std::invalid_argument);
  EXPECT_THROW(caps_locality(130, 64, 2, kHaswell), std::invalid_argument);
  EXPECT_THROW(strassen_locality(128, 0, kHaswell), std::invalid_argument);
}

TEST(LocalityTrace, CacheResidentProblemBarelyTouchesDram) {
  // n = 256: everything (operands + deepest live temps) fits the 8 MB
  // LLC. Measured DRAM traffic must stay near the compulsory footprint
  // (inputs + output + first-touch temps), far below the logical
  // traffic — confirming the cost model's "cache-resident" call.
  const auto r = strassen_locality(256, 64, kHaswell);
  EXPECT_LT(r.dram_fraction(), 0.25);
}

TEST(LocalityTrace, OutOfCacheProblemStreamsFromDram) {
  // n = 1024: 3n^2 * 8 = 25 MB against an 8 MB LLC; the top-level adds
  // must stream. Measured DRAM traffic climbs far above the compulsory
  // footprint, while the cache-resident n = 256 case stays near it.
  const auto compulsory = [](std::size_t n) {
    return 3.0 * static_cast<double>(n) * n * sizeof(double);
  };
  const auto big = strassen_locality(1024, 64, kHaswell);
  const auto small = strassen_locality(256, 64, kHaswell);
  EXPECT_GT(static_cast<double>(big.dram_bytes), 3.0 * compulsory(1024));
  EXPECT_LT(static_cast<double>(small.dram_bytes), 3.0 * compulsory(256));

  // ...and the serial cost model's DRAM estimate lands within a factor
  // of three of the simulated ground truth.
  strassen::StrassenCostOptions opts;
  const auto wp = strassen::strassen_profile(1024, kHaswell, 1, opts);
  const double model_dram = wp.total_dram_bytes();
  EXPECT_GT(model_dram, static_cast<double>(big.dram_bytes) / 3.0);
  EXPECT_LT(model_dram, static_cast<double>(big.dram_bytes) * 3.0);
}

TEST(LocalityTrace, CapsSerialMovesMoreLogicalBytesThanStrassen) {
  // 62 vs 54 words per element per level, plus identical base products.
  const auto caps = caps_locality(512, 64, 2, kHaswell);
  const auto strassen_r = strassen_locality(512, 64, kHaswell);
  EXPECT_GT(caps.logical_bytes, strassen_r.logical_bytes);
}

TEST(LocalityTrace, L1MissRatioReflectsBlocking) {
  // The base multiply keeps B L1-resident per row sweep at cutoff 64
  // (32 KB); at cutoff 256 the B panel (512 KB) thrashes L1.
  const auto small_base = strassen_locality(512, 64, kHaswell);
  const auto big_base = strassen_locality(512, 256, kHaswell);
  EXPECT_LT(small_base.levels[0].miss_ratio(),
            big_base.levels[0].miss_ratio());
}

}  // namespace
}  // namespace capow::cachesim
