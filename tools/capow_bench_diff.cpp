// capow-bench-diff — compare two bench-JSONL files with a noise band.
//
// Usage:
//   capow-bench-diff [--tolerance=F] [--metrics=a,b,...] BASELINE CURRENT
//
// BASELINE and CURRENT are files of one-JSON-object-per-line benchmark
// records as written by CAPOW_BENCH_JSONL (bench/bench_common.hpp), or
// a committed snapshot from bench/baselines/. Repeated records of the
// same benchmark merge best-of per metric before comparison.
//
// Exit codes:
//   0  no compared metric regressed beyond tolerance
//   1  at least one regression (current > baseline * (1 + tolerance))
//   2  usage or I/O error
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "capow/core/env.hpp"
#include "capow/harness/bench_diff.hpp"
#include "capow/harness/table.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: capow-bench-diff [options] BASELINE CURRENT\n"
        "  --tolerance=F    fractional noise band (default 0.10 = +10%)\n"
        "  --metrics=a,b    comma-separated metrics to compare\n"
        "                   (default real_time,cpu_time)\n"
        "exit: 0 ok, 1 regression, 2 usage/IO error\n";
}

std::vector<std::string> split_csv(std::string_view s) {
  std::vector<std::string> out;
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    const std::string_view tok = s.substr(0, comma);
    if (!tok.empty()) out.emplace_back(tok);
    if (comma == std::string_view::npos) break;
    s.remove_prefix(comma + 1);
  }
  return out;
}

std::vector<capow::harness::BenchRecord> load(const std::string& path,
                                              bool* ok) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "capow-bench-diff: cannot open " << path << "\n";
    *ok = false;
    return {};
  }
  std::size_t malformed = 0;
  auto records = capow::harness::parse_bench_jsonl(is, &malformed);
  if (malformed > 0) {
    std::cerr << "capow-bench-diff: " << path << ": skipped " << malformed
              << " malformed line(s)\n";
  }
  if (records.empty()) {
    std::cerr << "capow-bench-diff: " << path
              << ": no benchmark records found\n";
    *ok = false;
    return {};
  }
  *ok = true;
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  capow::harness::BenchDiffOptions opts;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (arg.rfind("--tolerance=", 0) == 0) {
      try {
        // Strict shared grammar: "0.1abc" is an error, not 0.1.
        opts.tolerance = capow::core::parse_double_in(
            "--tolerance", std::string(arg.substr(12)), 0.0, 1e9);
      } catch (const std::exception& e) {
        std::cerr << "capow-bench-diff: " << e.what() << "\n";
        return 2;
      }
      continue;
    }
    if (arg.rfind("--metrics=", 0) == 0) {
      opts.metrics = split_csv(arg.substr(10));
      if (opts.metrics.empty()) {
        std::cerr << "capow-bench-diff: --metrics needs at least one name\n";
        return 2;
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "capow-bench-diff: unknown option " << arg << "\n";
      print_usage(std::cerr);
      return 2;
    }
    paths.emplace_back(arg);
  }

  if (paths.size() != 2) {
    print_usage(std::cerr);
    return 2;
  }

  bool ok = false;
  const auto baseline = load(paths[0], &ok);
  if (!ok) return 2;
  const auto current = load(paths[1], &ok);
  if (!ok) return 2;

  const auto report =
      capow::harness::diff_bench_records(baseline, current, opts);

  capow::harness::TextTable table(
      {"benchmark", "metric", "baseline", "current", "ratio", "status"});
  for (const auto& row : report.rows) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", row.ratio);
    table.add_row({row.name, row.metric, capow::harness::fmt(row.baseline, 1),
                   capow::harness::fmt(row.current, 1), buf,
                   row.regression ? "REGRESSION" : "ok"});
  }
  std::cout << "tolerance: +" << opts.tolerance * 100.0 << "% ("
            << paths[0] << " -> " << paths[1] << ")\n"
            << table.str();

  for (const auto& name : report.missing) {
    std::cout << "missing from current: " << name << "\n";
  }
  for (const auto& name : report.added) {
    std::cout << "new in current: " << name << "\n";
  }

  const std::size_t regressions = report.regressions();
  if (regressions > 0) {
    std::cout << regressions << " regression(s) beyond tolerance\n";
    return 1;
  }
  std::cout << "no regressions (" << report.rows.size()
            << " metric comparison(s))\n";
  return 0;
}
