// capow-chaos: deterministic chaos harness for the elastic dist
// runtime. Runs one distributed workload (SUMMA or dist-CAPS) under a
// fault spec — typically a `rank.kill` schedule — with a chosen
// RecoveryPolicy, then prints a report whose every byte is a pure
// function of (workload, policy, faults, seed, n, ranks). CI runs the
// same configuration twice and diffs the stdout: any nondeterminism in
// the recovery path (membership agreement, panel restore, fault draws,
// the final-generation comm matrix) shows up as a text diff, not a
// flaky test.
//
// Wall-clock recovery latency is deliberately kept OUT of the stdout
// report (it varies run to run); pass --jsonl=FILE to append one JSON
// record that includes recovery_ns alongside the deterministic fields.
//
// Usage:
//   capow-chaos [options]
//     --workload=summa|dist_caps   distributed kernel (default summa)
//     --policy=abort|shrink|respawn  recovery policy (default respawn)
//     --faults=SPEC                fault spec, e.g.
//                                  rank.kill=2/4@5,seed=42 (or env
//                                  CAPOW_FAULTS; empty = fault-free)
//     --ranks=N                    world size (default 4)
//     --n=N                        matrix dimension (default 48)
//     --seed=N                     operand fill seed (default 1)
//     --jsonl=FILE                 append the full JSON record
//     --help
//
// Exit status: 0 when the run ended in a well-defined state (clean,
// recovered, or aborted under --policy=abort) AND every verification
// passed (output numerically correct, conservation closed, respawn
// bit-identical to the fault-free baseline); 1 otherwise.
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "capow/blas/gemm_ref.hpp"
#include "capow/core/env.hpp"
#include "capow/dist/comm.hpp"
#include "capow/dist/dist_caps.hpp"
#include "capow/dist/recovery.hpp"
#include "capow/dist/summa.hpp"
#include "capow/fault/fault.hpp"
#include "capow/linalg/matrix.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"

namespace {

using namespace capow;

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --workload=summa|dist_caps   distributed kernel (default summa)\n"
      "  --policy=abort|shrink|respawn  recovery policy (default respawn)\n"
      "  --faults=SPEC                fault spec (or env CAPOW_FAULTS),\n"
      "                               e.g. rank.kill=2/4@5,seed=42\n"
      "  --ranks=N                    world size (default 4)\n"
      "  --n=N                        matrix dimension (default 48)\n"
      "  --seed=N                     operand fill seed (default 1)\n"
      "  --jsonl=FILE                 append full record (incl. wall-\n"
      "                               clock recovery_ns) as one JSON line\n"
      "  --help\n",
      argv0);
}

/// FNV-1a over the raw matrix bytes: bit-identity is the claim the
/// respawn path makes, so the comparison hashes bits, not values.
std::uint64_t matrix_hash(const linalg::Matrix& m) {
  std::uint64_t h = 1469598103934665603ULL;
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(m.data());
  const std::size_t count = m.rows() * m.cols() * sizeof(double);
  for (std::size_t i = 0; i < count; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

struct ChaosConfig {
  std::string workload = "summa";
  dist::RecoveryPolicy policy = dist::RecoveryPolicy::kRespawn;
  std::optional<fault::FaultPlan> faults;
  std::string faults_spec;
  int ranks = 4;
  std::size_t n = 48;
  std::uint64_t seed = 1;
  std::string jsonl_path;
};

struct ChaosOutcome {
  std::string status;             // "clean" | "recovered" | "aborted"
  std::string root_cause;         // aborted only
  int generations = 1;
  int recoveries = 0;
  std::vector<int> failed_ranks;  // physical, sorted
  std::uint64_t output_hash = 0;
  std::uint64_t recovery_ns = 0;
  dist::CommMatrix cumulative;
  dist::CommMatrix final_generation;
};

/// One full workload execution under the current fault scope (the
/// caller decides whether an injector is installed). Both the chaos run
/// and the fault-free baseline go through this exact code path, so the
/// bit-identity comparison never compares across different kernels.
ChaosOutcome execute(const ChaosConfig& cfg, linalg::ConstMatrixView a,
                     linalg::ConstMatrixView b, linalg::Matrix& out) {
  ChaosOutcome r;
  dist::World world(cfg.ranks);
  dist::RecoveryOptions opts;
  opts.policy = cfg.policy;

  dist::PanelCacheSet cache(cfg.ranks);
  cache.enabled = cfg.policy == dist::RecoveryPolicy::kRespawn;

  const auto body = [&](dist::Communicator& comm,
                        const dist::RecoveryContext& ctx) {
    linalg::Matrix empty;
    const bool root = comm.rank() == 0;
    if (cfg.workload == "summa") {
      dist::summa_multiply_resilient(comm, ctx, cache,
                                     root ? a : empty.view(),
                                     root ? b : empty.view(),
                                     root ? out.view() : empty.view());
    } else {
      dist::DistCapsOptions copts;
      copts.local.base_cutoff = 16;
      dist::dist_caps_multiply_resilient(comm, ctx, root ? a : empty.view(),
                                         root ? b : empty.view(),
                                         root ? out.view() : empty.view(),
                                         copts);
    }
  };

  try {
    const dist::RecoveryReport rep = world.run_elastic(opts, body);
    r.status = rep.recovered ? "recovered" : "clean";
    r.generations = rep.recoveries + 1;
    r.recoveries = rep.recoveries;
    r.failed_ranks = rep.failed_ranks;
    r.recovery_ns = rep.recovery_ns;
  } catch (const std::exception& e) {
    r.status = "aborted";
    r.root_cause = e.what();
    r.failed_ranks = world.failed_ranks();
  }
  r.output_hash = matrix_hash(out);
  r.cumulative = world.comm_stats();
  r.final_generation = world.final_generation_stats();
  return r;
}

void print_matrix(const dist::CommMatrix& m) {
  if (m.empty()) {
    std::printf("  (empty)\n");
    return;
  }
  for (int src = 0; src < m.ranks(); ++src) {
    for (int dst = 0; dst < m.ranks(); ++dst) {
      const dist::EdgeStats& e = m.edge(src, dst);
      if (e.messages == 0 && e.recv_messages == 0 &&
          e.discarded_messages == 0) {
        continue;
      }
      std::printf("  %d->%d sent=%llu/%llu recv=%llu/%llu", src, dst,
                  static_cast<unsigned long long>(e.messages),
                  static_cast<unsigned long long>(e.payload_bytes),
                  static_cast<unsigned long long>(e.recv_messages),
                  static_cast<unsigned long long>(e.recv_bytes));
      if (e.discarded_messages > 0) {
        std::printf(" discarded=%llu/%llu",
                    static_cast<unsigned long long>(e.discarded_messages),
                    static_cast<unsigned long long>(e.discarded_bytes));
      }
      std::printf("\n");
    }
  }
}

std::string ranks_json(const std::vector<int>& ranks) {
  std::string out = "[";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(ranks[i]);
  }
  return out + "]";
}

int run(const ChaosConfig& cfg) {
  dist::reset_recovery_counters();

  linalg::Matrix a = linalg::random_matrix(cfg.n, cfg.n, cfg.seed);
  linalg::Matrix b = linalg::random_matrix(cfg.n, cfg.n, cfg.seed + 1);
  linalg::Matrix expect(cfg.n, cfg.n);
  blas::gemm_reference(a.view(), b.view(), expect.view());

  // Fault-free baseline through the identical resilient code path; its
  // hash is what "respawn is bit-identical to the fault-free run" is
  // measured against.
  linalg::Matrix baseline(cfg.n, cfg.n);
  const ChaosOutcome ref = execute(cfg, a.view(), b.view(), baseline);
  if (ref.status != "clean") {
    std::printf("error: fault-free baseline did not run clean (%s: %s)\n",
                ref.status.c_str(), ref.root_cause.c_str());
    return 1;
  }
  dist::reset_recovery_counters();

  // The chaos run: same configuration, injector installed.
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<fault::FaultScope> scope;
  if (cfg.faults) {
    injector = std::make_unique<fault::FaultInjector>(*cfg.faults);
    scope = std::make_unique<fault::FaultScope>(*injector);
  }
  linalg::Matrix got(cfg.n, cfg.n);
  const ChaosOutcome res = execute(cfg, a.view(), b.view(), got);
  scope.reset();

  // --- verification -------------------------------------------------
  const bool bit_identical = res.output_hash == ref.output_hash;
  const bool numerically_correct =
      res.status != "aborted" &&
      linalg::allclose(got.view(), expect.view(), 1e-9, 1e-9);
  const bool conserved =
      res.status == "aborted" || res.cumulative.conserved();

  bool ok = conserved;
  const char* verdict = "MISMATCH";
  if (res.status == "aborted") {
    // Abort is only an acceptable end state when it is the policy; the
    // root cause must be the injected kill, not a secondary CommError.
    verdict = "aborted";
    ok = ok && cfg.policy == dist::RecoveryPolicy::kAbort &&
         res.root_cause.find("rank.kill") != std::string::npos;
  } else if (bit_identical) {
    verdict = "bit-identical";
    ok = ok && numerically_correct;
  } else if (numerically_correct) {
    verdict = "numerically-correct";
    // Respawn restores the original membership, so anything short of
    // bit-identity means the recovery path perturbed the computation.
    ok = ok && cfg.policy != dist::RecoveryPolicy::kRespawn;
  } else {
    ok = false;
  }

  // --- deterministic report ----------------------------------------
  std::printf("capow-chaos report\n");
  std::printf("workload: %s\n", cfg.workload.c_str());
  std::printf("policy: %s\n", dist::recovery_policy_name(cfg.policy));
  std::printf("ranks: %d  n: %zu  seed: %llu\n", cfg.ranks, cfg.n,
              static_cast<unsigned long long>(cfg.seed));
  std::printf("faults: %s\n",
              cfg.faults_spec.empty() ? "(none)" : cfg.faults_spec.c_str());
  std::printf("status: %s\n", res.status.c_str());
  if (!res.root_cause.empty()) {
    std::printf("root_cause: %s\n", res.root_cause.c_str());
  }
  std::printf("generations: %d\n", res.generations);
  std::printf("failed_ranks: %s\n", ranks_json(res.failed_ranks).c_str());
  std::printf("rank_failures_total: %llu\n",
              static_cast<unsigned long long>(dist::rank_failures_total()));
  std::printf("recoveries_total: %llu\n",
              static_cast<unsigned long long>(dist::recoveries_total()));
  std::printf("output_hash: %016llx\n",
              static_cast<unsigned long long>(res.output_hash));
  std::printf("baseline_hash: %016llx\n",
              static_cast<unsigned long long>(ref.output_hash));
  std::printf("output_vs_baseline: %s\n", verdict);
  std::uint64_t delivered = 0, received = 0, discarded = 0;
  for (int src = 0; src < res.cumulative.ranks(); ++src) {
    for (int dst = 0; dst < res.cumulative.ranks(); ++dst) {
      const dist::EdgeStats& e = res.cumulative.edge(src, dst);
      delivered += e.messages;
      received += e.recv_messages;
      discarded += e.discarded_messages;
    }
  }
  std::printf("conservation: %s (delivered=%llu received=%llu "
              "discarded=%llu)\n",
              conserved ? "ok" : "VIOLATED",
              static_cast<unsigned long long>(delivered),
              static_cast<unsigned long long>(received),
              static_cast<unsigned long long>(discarded));
  std::printf("final-generation comm matrix:\n");
  print_matrix(res.final_generation);
  if (res.status == "recovered") {
    std::printf("cumulative comm matrix (with discards):\n");
    print_matrix(res.cumulative);
  }
  std::printf("verdict: %s\n", ok ? "PASS" : "FAIL");

  if (!cfg.jsonl_path.empty()) {
    std::ofstream out(cfg.jsonl_path, std::ios::app);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   cfg.jsonl_path.c_str());
      return 1;
    }
    out << "{\"tool\":\"capow_chaos\",\"workload\":\"" << cfg.workload
        << "\",\"policy\":\"" << dist::recovery_policy_name(cfg.policy)
        << "\",\"ranks\":" << cfg.ranks << ",\"n\":" << cfg.n
        << ",\"seed\":" << cfg.seed << ",\"faults\":\"" << cfg.faults_spec
        << "\",\"status\":\"" << res.status
        << "\",\"generations\":" << res.generations
        << ",\"failed_ranks\":" << ranks_json(res.failed_ranks)
        << ",\"rank_failures_total\":" << dist::rank_failures_total()
        << ",\"recoveries_total\":" << dist::recoveries_total()
        << ",\"bit_identical\":" << (bit_identical ? "true" : "false")
        << ",\"numerically_correct\":"
        << (numerically_correct ? "true" : "false")
        << ",\"conserved\":" << (conserved ? "true" : "false")
        << ",\"recovery_ns\":" << res.recovery_ns
        << ",\"verdict\":\"" << (ok ? "pass" : "fail") << "\"}\n";
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ChaosConfig cfg;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value_of = [&](const char* prefix) -> const char* {
        const std::size_t len = std::strlen(prefix);
        return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
      };
      if (arg == "--help") {
        print_usage(argv[0]);
        return 0;
      } else if (const char* v = value_of("--workload=")) {
        cfg.workload = v;
        if (cfg.workload != "summa" && cfg.workload != "dist_caps") {
          throw std::invalid_argument("unknown workload: " + cfg.workload);
        }
      } else if (const char* v2 = value_of("--policy=")) {
        cfg.policy = dist::parse_recovery_policy(v2);
      } else if (const char* v3 = value_of("--faults=")) {
        cfg.faults_spec = v3;
      } else if (const char* v4 = value_of("--ranks=")) {
        cfg.ranks = static_cast<int>(
            core::parse_integer_in("--ranks", v4, 1, 4096));
      } else if (const char* v5 = value_of("--n=")) {
        cfg.n = static_cast<std::size_t>(
            core::parse_integer_in("--n", v5, 1, 1 << 20));
      } else if (const char* v6 = value_of("--seed=")) {
        cfg.seed = static_cast<std::uint64_t>(core::parse_integer_in(
            "--seed", v6, 0, std::numeric_limits<long long>::max()));
      } else if (const char* v7 = value_of("--jsonl=")) {
        cfg.jsonl_path = v7;
      } else {
        std::fprintf(stderr, "unknown option: %s\n\n", arg.c_str());
        print_usage(argv[0]);
        return 2;
      }
    }
    if (!cfg.faults_spec.empty()) {
      cfg.faults = fault::FaultPlan::parse(cfg.faults_spec);
    } else if (auto env = fault::FaultPlan::from_env()) {
      cfg.faults = *env;
      cfg.faults_spec = env->spec();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n\n", e.what());
    print_usage(argv[0]);
    return 2;
  }

  try {
    return run(cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
