// capow-report: regenerate the paper's full evaluation (Tables II-IV,
// the Fig 7 scaling series) for any machine/problem configuration, as
// text or CSV — the command-line front door to the library.
//
// Usage:
//   capow-report [options]
//     --machine=haswell|quad|compact   platform model (default haswell)
//     --sizes=512,1024,2048,4096       problem sizes
//     --threads=1,2,3,4                thread counts
//     --csv                            emit CSV instead of tables
//     --quiesce=60                     seconds of idle between runs
//     --trace=FILE                     Chrome trace JSON (Perfetto)
//     --jsonl=FILE                     one JSON record per run
//     --metrics=FILE                   Prometheus text metrics
//     --profile=FILE                   per-run energy attribution
//                                      profiles (text)
//     --flamegraph=FILE                collapsed stacks (flamegraph.pl
//                                      / speedscope folded format)
//     --flamegraph-weight=mj|ns        folded weight: millijoules
//                                      (default) or nanoseconds
//     --ep-phases=FILE                 per-phase EP scaling JSONL
//     --faults=SPEC                    fault injection spec (or env
//                                      CAPOW_FAULTS), e.g.
//                                      comm.drop=0.01,rapl.fail=0.05,seed=42
//     --checkpoint=FILE                append each finished run to FILE
//     --resume=FILE                    replay finished runs from FILE,
//                                      run only missing/failed ones
//     --comm                           communication audit mode: run the
//                                      SUMMA / dist-CAPS audit points
//                                      with the CommStats collector and
//                                      print P x P byte matrices, per-
//                                      rank critical paths, and the
//                                      Eq (8) measured-vs-bound table
//                                      (skips the experiment matrix;
//                                      honors --machine, --faults,
//                                      --checkpoint/--resume, --metrics,
//                                      --csv)
//     --comm-trace=FILE                with --comm: Chrome trace with
//                                      one lane per rank and send->recv
//                                      flow arrows (live runs only)
//     --backends                       heterogeneous EP study: dispatch
//                                      every algorithm onto each
//                                      registered backend (cpu,
//                                      sim_accel) through the fallback-
//                                      aware registry and print per-
//                                      backend EP/S rows plus the
//                                      per-device Eq (9) crossover
//                                      comparison (skips the experiment
//                                      matrix; honors --sizes,
//                                      --threads, --csv)
//     --serve                          overload-safety study: run the
//                                      capowd service engine on a
//                                      seeded arrival trace and print
//                                      per-tier outcomes/latencies plus
//                                      the SLO and energy-budget
//                                      verdicts (skips the experiment
//                                      matrix; honors --machine, --csv,
//                                      --metrics, --faults and the
//                                      CAPOW_SERVE_* env knobs)
//     --serve-seed=N                   with --serve: trace seed
//     --serve-duration=S               with --serve: trace horizon
//     --serve-rate=HZ                  with --serve: mean arrival rate
//     --serve-budget-w=W               with --serve: power budget
//                                      (overrides CAPOW_SERVE_BUDGET_W;
//                                      0 = unlimited)
//     --serve-log=FILE                 with --serve: write the decision
//                                      log (the byte-reproducible
//                                      determinism surface CI diffs)
//     --help
//
// Exit status: 0 on success, 1 on runtime failure, 2 on a usage error
// (unknown flag, malformed value).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "capow/abft/abft.hpp"
#include "capow/backend/backend.hpp"
#include "capow/core/env.hpp"
#include "capow/core/ep_model.hpp"
#include "capow/fault/fault.hpp"
#include "capow/harness/backend_study.hpp"
#include "capow/harness/comm_audit.hpp"
#include "capow/harness/experiment.hpp"
#include "capow/harness/table.hpp"
#include "capow/harness/telemetry_export.hpp"
#include "capow/serve/loadgen.hpp"
#include "capow/serve/server.hpp"
#include "capow/telemetry/export.hpp"
#include "capow/telemetry/tracer.hpp"

namespace {

using namespace capow;

std::vector<std::size_t> parse_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    // Reject partial tokens ("12abc") and empty ones, not just zeros:
    // strtoull stops at the first non-digit, so check it consumed the
    // whole token.
    if (v == 0 || end != tok.c_str() + tok.size()) {
      throw std::invalid_argument("bad list element: '" + tok +
                                  "' (expected a positive integer)");
    }
    out.push_back(static_cast<std::size_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("empty list");
  return out;
}

// Opens `path` for writing and runs `fn(stream)`; exits with a message
// on I/O failure.
template <typename Fn>
void write_file(const std::string& path, const char* what, Fn&& fn) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s file '%s'\n", what, path.c_str());
    std::exit(1);
  }
  fn(os);
  if (!os) {
    std::fprintf(stderr, "write failed for %s file '%s'\n", what,
                 path.c_str());
    std::exit(1);
  }
}

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [--machine=haswell|quad|compact] [--sizes=a,b,...]\n"
      "          [--threads=a,b,...] [--csv] [--quiesce=SECONDS]\n"
      "          [--trace=FILE] [--jsonl=FILE] [--metrics=FILE]\n"
      "          [--profile=FILE] [--flamegraph=FILE]\n"
      "          [--flamegraph-weight=mj|ns] [--ep-phases=FILE]\n"
      "          [--faults=SPEC] [--checkpoint=FILE] [--resume=FILE]\n"
      "          [--comm] [--comm-trace=FILE] [--backends]\n"
      "          [--serve] [--serve-seed=N] [--serve-duration=S]\n"
      "          [--serve-rate=HZ] [--serve-budget-w=W]\n"
      "          [--serve-log=FILE]\n",
      argv0);
}

void emit(const harness::TextTable& t, bool csv, const char* title) {
  if (csv) {
    std::printf("# %s\n%s\n", title, t.csv().c_str());
  } else {
    std::printf("\n== %s ==\n%s", title, t.str().c_str());
  }
}

std::string point_label(const harness::CommAuditRecord& r) {
  return r.algorithm + " n=" + std::to_string(r.n) +
         " P=" + std::to_string(r.ranks);
}

/// Communication audit mode (--comm): run or replay the SUMMA and
/// dist-CAPS audit points and print the P x P byte matrices, per-rank
/// critical-path summaries, and the Eq (8) verdict table. Replayed
/// records come verbatim from the checkpoint (every table-visible field
/// is persisted exactly), so a --resume report is bit-identical to the
/// live one.
int run_comm_report(const machine::MachineSpec& spec, bool csv,
                    const std::string& checkpoint_path, bool resume,
                    const std::string& metrics_path,
                    const std::string& comm_trace_path,
                    const fault::FaultInjector* injector) {
  harness::CommAuditOptions opts;
  opts.machine = spec;
  opts.collect_trace = !comm_trace_path.empty();

  std::vector<harness::CommAuditRecord> replayed;
  if (resume) replayed = harness::load_comm_audits(checkpoint_path);

  std::ofstream ckpt;
  if (!checkpoint_path.empty()) {
    ckpt.open(checkpoint_path,
              resume ? std::ios::app : std::ios::trunc | std::ios::out);
    if (!ckpt) {
      std::fprintf(stderr, "cannot open checkpoint file '%s'\n",
                   checkpoint_path.c_str());
      return 1;
    }
  }

  telemetry::ChromeTraceWriter trace_writer;
  std::vector<harness::CommAuditRecord> records;
  std::size_t replayed_count = 0;
  int trace_pid = 0;
  for (const harness::CommAuditPoint& point :
       harness::default_comm_audit_points()) {
    const auto hit = std::find_if(
        replayed.begin(), replayed.end(),
        [&](const harness::CommAuditRecord& r) {
          return r.algorithm == point.algorithm && r.n == point.n &&
                 r.ranks == point.ranks;
        });
    if (hit != replayed.end()) {
      records.push_back(*hit);
      ++replayed_count;
      continue;
    }
    std::vector<telemetry::TraceEvent> events;
    std::uint64_t trace_start = 0;
    harness::CommAuditRecord rec;
    try {
      rec = harness::run_comm_audit(point, opts, &events, &trace_start);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "comm audit %s n=%zu P=%d failed: %s\n",
                   point.algorithm.c_str(), point.n, point.ranks, e.what());
      return 1;
    }
    if (opts.collect_trace) {
      harness::append_comm_trace(trace_writer, point_label(rec), trace_pid++,
                                 events, point.ranks, trace_start);
    }
    if (ckpt.is_open()) {
      ckpt << harness::comm_audit_line(rec) << "\n";
      ckpt.flush();
    }
    records.push_back(std::move(rec));
  }

  if (!comm_trace_path.empty()) {
    if (replayed_count > 0) {
      std::fprintf(stderr,
                   "note: %zu audit point(s) replayed from checkpoint — "
                   "traces cover only the points run live\n",
                   replayed_count);
    }
    write_file(comm_trace_path, "comm-trace", [&](std::ostream& os) {
      trace_writer.write(os);
    });
  }
  if (!metrics_path.empty()) {
    write_file(metrics_path, "metrics", [&](std::ostream& os) {
      telemetry::MetricsRegistry registry;
      harness::export_comm_metrics(registry, records);
      registry.write(os);
    });
  }

  if (!csv) {
    std::printf("capow comm audit — %s (M = %s words/core)\n",
                spec.name.c_str(),
                records.empty() ? "?"
                                : harness::fmt(records.front().m_words, 0)
                                      .c_str());
    if (replayed_count > 0) {
      std::printf("%zu audit point(s) replayed from checkpoint %s\n",
                  replayed_count, checkpoint_path.c_str());
    }
  }
  for (const harness::CommAuditRecord& r : records) {
    const std::string label = point_label(r);
    emit(harness::comm_matrix_table(r), csv,
         ("comm matrix — " + label + " (payload bytes)").c_str());
    emit(harness::comm_critical_path_table(r), csv,
         ("critical path — " + label).c_str());
    if (!r.completed()) {
      std::fprintf(stderr, "warning: %s run was poisoned: %s\n",
                   label.c_str(), r.error.c_str());
    }
  }
  emit(harness::comm_bound_table(records), csv,
       "Eq (8) communication audit (measured vs lower bound)");

  if (injector != nullptr) {
    const fault::FaultCounters counters = injector->counters();
    harness::TextTable t({"fault event", "count"});
    for (std::size_t i = 0; i < fault::kEventCount; ++i) {
      t.add_row({fault::event_name(static_cast<fault::Event>(i)),
                 std::to_string(counters.by_event[i])});
    }
    emit(t, csv,
         ("fault events (spec: " + injector->plan().spec() + ")").c_str());
  }
  return 0;
}

/// Heterogeneous EP study mode (--backends): the paper's Eq (1)/(5)
/// measurements and the Eq (9) crossover, evaluated per registered
/// device class through the fallback-aware BackendRegistry.
int run_backend_report(const harness::BackendStudyConfig& cfg, bool csv) {
  if (!csv) {
    std::printf("capow heterogeneous EP study — %zu backend(s)\n",
                backend::BackendRegistry::instance().all().size());
    for (backend::Backend* b : backend::BackendRegistry::instance().all()) {
      if (b == nullptr) continue;
      const machine::MachineSpec& spec = b->device_spec();
      std::printf("  %-9s %s: peak %.1f GF/s, memory %.1f GB/s\n",
                  b->name(), b->description(), spec.peak_flops() / 1e9,
                  spec.memory.bandwidth_bytes_per_s / 1e9);
    }
  }
  const std::vector<harness::BackendStudyRow> rows =
      harness::run_backend_study(cfg);
  emit(harness::backend_ep_table(rows), csv,
       "per-backend energy performance (Eq 1 / Eq 5)");
  emit(harness::backend_crossover_table(harness::backend_crossover_rows()),
       csv, "per-device Strassen crossover (Eq 9)");
  const std::uint64_t fallbacks =
      backend::BackendRegistry::instance().fallbacks_total();
  if (!csv && fallbacks > 0) {
    std::printf(
        "\n%llu dispatch(es) fell back to the host backend "
        "(capow_backend_fallbacks_total)\n",
        static_cast<unsigned long long>(fallbacks));
  }
  return 0;
}

/// Overload-safety study mode (--serve): generate the seeded arrival
/// trace, run the capowd engine on its virtual clock, and print the
/// per-tier outcome/latency table plus the SLO and energy-budget
/// verdicts. For a fixed (seed, options, fault plan) the decision log
/// written by --serve-log is byte-reproducible — the serve-smoke CI job
/// runs the same configuration twice and diffs the two files.
int run_serve_report(const serve::LoadGenOptions& lg,
                     const serve::ServeOptions& so, bool csv,
                     const std::string& metrics_path,
                     const std::string& serve_log_path,
                     const fault::FaultInjector* injector) {
  std::vector<serve::Request> trace;
  serve::ServeReport report;
  try {
    trace = serve::generate_trace(lg);
    serve::Server server(so);
    report = server.run(trace);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve run failed: %s\n", e.what());
    return 1;
  }

  if (!serve_log_path.empty()) {
    write_file(serve_log_path, "serve-log", [&](std::ostream& os) {
      os << report.decision_log();
    });
  }
  if (!metrics_path.empty()) {
    write_file(metrics_path, "metrics", [&](std::ostream& os) {
      telemetry::MetricsRegistry registry;
      serve::export_serve_metrics(report, registry);
      registry.write(os);
    });
  }

  if (!csv) {
    std::printf("capow serve report — %s\n", so.machine.name.c_str());
    std::printf(
        "trace: seed=%llu duration=%.1fs rate=%.1f/s burst x%.1f over "
        "[%.1fs, %.1fs); %zu arrival(s)\n",
        static_cast<unsigned long long>(lg.seed), lg.duration_s, lg.rate_hz,
        lg.burst_factor, lg.burst_start_s, lg.burst_start_s + lg.burst_len_s,
        trace.size());
    if (so.budget.budget_w > 0.0) {
      const double capacity_j = so.budget.capacity_j > 0.0
                                    ? so.budget.capacity_j
                                    : 2.0 * so.budget.budget_w;
      std::printf("budget: %.2f W (capacity %.1f J, reserve %.0f%%)\n",
                  so.budget.budget_w, capacity_j,
                  so.budget.reserve_fraction * 100.0);
    } else {
      std::printf("budget: unlimited (admission by queue bound only)\n");
    }
  }

  {
    harness::TextTable t({"tier", "submitted", "admitted", "completed",
                          "expired", "cancelled", "rej_queue", "rej_budget",
                          "rej_shed", "rej_size", "p50_s", "p99_s",
                          "joules"});
    for (std::size_t i = 0; i < serve::kTierCount; ++i) {
      const auto tier = static_cast<serve::QosTier>(i);
      const serve::TierStats& ts = report.tier(tier);
      t.add_row({serve::tier_name(tier), std::to_string(ts.submitted),
                 std::to_string(ts.admitted), std::to_string(ts.completed),
                 std::to_string(ts.expired), std::to_string(ts.cancelled),
                 std::to_string(
                     ts.rejected_for(serve::RejectReason::kQueueFull)),
                 std::to_string(
                     ts.rejected_for(serve::RejectReason::kEnergyBudget)),
                 std::to_string(
                     ts.rejected_for(serve::RejectReason::kShedding)),
                 std::to_string(
                     ts.rejected_for(serve::RejectReason::kOversized)),
                 harness::fmt(ts.p50_s, 4), harness::fmt(ts.p99_s, 4),
                 harness::fmt(ts.joules, 3)});
    }
    emit(t, csv, "per-tier outcomes and virtual latency");
  }

  {
    harness::TextTable t({"service metric", "value"});
    t.add_row({"virtual duration (s)", harness::fmt(report.duration_s, 3)});
    t.add_row({"predicted joules", harness::fmt(report.predicted_joules, 3)});
    t.add_row(
        {"measured joules (RAPL)", harness::fmt(report.measured_joules, 3)});
    t.add_row({"achieved watts", harness::fmt(report.achieved_w, 3)});
    t.add_row({"budget watts", report.budget_w > 0.0
                                   ? harness::fmt(report.budget_w, 3)
                                   : std::string("unlimited")});
    t.add_row(
        {"final bucket fill", harness::fmt(report.final_fill_ratio, 3)});
    t.add_row({"degrade transitions",
               std::to_string(report.degrade_transitions)});
    for (std::size_t l = 1; l < serve::kDegradeLevelCount; ++l) {
      t.add_row({std::string("entries into ") +
                     serve::degrade_level_name(
                         static_cast<serve::DegradeLevel>(l)),
                 std::to_string(report.degrade_entries[l])});
    }
    t.add_row({"bursts injected", std::to_string(report.bursts)});
    t.add_row({"stalls injected", std::to_string(report.stalls)});
    t.add_row(
        {"rapl degraded", report.rapl_degraded ? "yes" : "no"});
    emit(t, csv, "service summary");
  }

  if (injector != nullptr) {
    const fault::FaultCounters counters = injector->counters();
    harness::TextTable t({"fault event", "count"});
    for (std::size_t i = 0; i < fault::kEventCount; ++i) {
      t.add_row({fault::event_name(static_cast<fault::Event>(i)),
                 std::to_string(counters.by_event[i])});
    }
    emit(t, csv,
         ("fault events (spec: " + injector->plan().spec() + ")").c_str());
  }

  // The verdict lines CI asserts: plain text in both output modes.
  std::printf("SLO verdict (guaranteed p99 <= %.2fs): %s\n",
              so.guaranteed_p99_slo_s, report.slo_met ? "PASS" : "FAIL");
  std::printf("energy budget verdict: %s\n",
              report.budget_met ? "PASS" : "FAIL");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  harness::ExperimentConfig cfg;
  bool csv = false;
  bool comm_mode = false;
  bool backends_mode = false;
  bool serve_mode = false;
  std::string trace_path, jsonl_path, metrics_path;
  std::string profile_path, flamegraph_path, ep_phases_path;
  std::string comm_trace_path;
  std::string serve_log_path;
  serve::LoadGenOptions load_opts;
  double serve_budget_w = -1.0;  // < 0: flag absent, env/default applies
  profile::FoldedWeight flamegraph_weight =
      profile::FoldedWeight::kMillijoules;
  std::optional<fault::FaultPlan> fault_plan;
  try {
    fault_plan = fault::FaultPlan::from_env();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad CAPOW_FAULTS: %s\n", e.what());
    return 2;
  }
  try {
    backend::env_backend_override();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad CAPOW_BACKEND: %s\n", e.what());
    return 2;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    try {
      if (const char* v = value_of("--machine=")) {
        cfg.machine = machine::preset_by_name(v);
      } else if (const char* v2 = value_of("--sizes=")) {
        cfg.sizes = parse_list(v2);
      } else if (const char* v3 = value_of("--threads=")) {
        cfg.thread_counts.clear();
        for (std::size_t t : parse_list(v3)) {
          cfg.thread_counts.push_back(static_cast<unsigned>(t));
        }
      } else if (const char* v4 = value_of("--quiesce=")) {
        cfg.quiesce_seconds = core::parse_double_in("--quiesce", v4, 0.0,
                                                    86400.0);
      } else if (const char* v5 = value_of("--trace=")) {
        trace_path = v5;
      } else if (const char* v6 = value_of("--jsonl=")) {
        jsonl_path = v6;
      } else if (const char* v7 = value_of("--metrics=")) {
        metrics_path = v7;
      } else if (const char* v11 = value_of("--profile=")) {
        profile_path = v11;
      } else if (const char* v12 = value_of("--flamegraph=")) {
        flamegraph_path = v12;
      } else if (const char* v13 = value_of("--flamegraph-weight=")) {
        const std::string w = v13;
        if (w == "mj") {
          flamegraph_weight = profile::FoldedWeight::kMillijoules;
        } else if (w == "ns") {
          flamegraph_weight = profile::FoldedWeight::kNanoseconds;
        } else {
          throw std::invalid_argument("expected 'mj' or 'ns'");
        }
      } else if (const char* v14 = value_of("--ep-phases=")) {
        ep_phases_path = v14;
      } else if (const char* v8 = value_of("--faults=")) {
        fault_plan = fault::FaultPlan::parse(v8);
      } else if (const char* v9 = value_of("--checkpoint=")) {
        cfg.checkpoint_path = v9;
      } else if (const char* v10 = value_of("--resume=")) {
        cfg.checkpoint_path = v10;
        cfg.resume = true;
      } else if (const char* v15 = value_of("--comm-trace=")) {
        comm_trace_path = v15;
      } else if (const char* v16 = value_of("--serve-seed=")) {
        load_opts.seed = static_cast<std::uint64_t>(
            core::parse_integer_in("--serve-seed", v16, 0,
                                   std::numeric_limits<long long>::max()));
      } else if (const char* v17 = value_of("--serve-duration=")) {
        load_opts.duration_s =
            core::parse_double_in("--serve-duration", v17, 1e-6, 1e9);
      } else if (const char* v18 = value_of("--serve-rate=")) {
        load_opts.rate_hz =
            core::parse_double_in("--serve-rate", v18, 1e-6, 1e9);
      } else if (const char* v19 = value_of("--serve-budget-w=")) {
        serve_budget_w =
            core::parse_double_in("--serve-budget-w", v19, 0.0, 1e9);
      } else if (const char* v20 = value_of("--serve-log=")) {
        serve_log_path = v20;
      } else if (arg == "--serve") {
        serve_mode = true;
      } else if (arg == "--comm") {
        comm_mode = true;
      } else if (arg == "--backends") {
        backends_mode = true;
      } else if (arg == "--csv") {
        csv = true;
      } else if (arg == "--help" || arg == "-h") {
        print_usage(argv[0]);
        return 0;
      } else {
        std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
        print_usage(argv[0]);
        return 2;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad argument '%s': %s\n", arg.c_str(),
                   e.what());
      return 2;
    }
  }

  // Fault runs get a watchdog by default so an injected hang turns into
  // a retried/failed record instead of a hung report.
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<fault::FaultScope> fault_scope;
  if (fault_plan) {
    if (cfg.run_timeout_seconds <= 0.0) cfg.run_timeout_seconds = 30.0;
    injector = std::make_unique<fault::FaultInjector>(*fault_plan);
    fault_scope = std::make_unique<fault::FaultScope>(*injector);
  }

  if (serve_mode) {
    serve::ServeOptions sopts;
    try {
      // Env knobs first, explicit flags override them.
      sopts = serve::ServeOptions::from_env();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    sopts.machine = cfg.machine;
    if (serve_budget_w >= 0.0) sopts.budget.budget_w = serve_budget_w;
    return run_serve_report(load_opts, sopts, csv, metrics_path,
                            serve_log_path, injector.get());
  }
  if (!serve_log_path.empty()) {
    std::fprintf(stderr, "--serve-log requires --serve\n");
    return 2;
  }
  if (comm_mode) {
    return run_comm_report(cfg.machine, csv, cfg.checkpoint_path, cfg.resume,
                           metrics_path, comm_trace_path, injector.get());
  }
  if (backends_mode) {
    harness::BackendStudyConfig bcfg;
    bcfg.sizes = cfg.sizes;
    bcfg.threads = cfg.thread_counts;
    return run_backend_report(bcfg, csv);
  }
  if (!comm_trace_path.empty()) {
    std::fprintf(stderr, "--comm-trace requires --comm\n");
    return 2;
  }

  harness::ExperimentRunner runner(cfg);
  runner.run();

  if (!trace_path.empty()) {
    write_file(trace_path, "trace", [&](std::ostream& os) {
      harness::export_chrome_trace(runner, os);
    });
  }
  if (!jsonl_path.empty()) {
    write_file(jsonl_path, "jsonl", [&](std::ostream& os) {
      harness::export_jsonl(runner, os);
    });
  }
  if (!metrics_path.empty()) {
    write_file(metrics_path, "metrics", [&](std::ostream& os) {
      harness::export_metrics(runner, os);
    });
  }
  if (!profile_path.empty()) {
    write_file(profile_path, "profile", [&](std::ostream& os) {
      harness::export_profile(runner, os);
    });
  }
  if (!flamegraph_path.empty()) {
    write_file(flamegraph_path, "flamegraph", [&](std::ostream& os) {
      harness::export_flamegraph(runner, os, flamegraph_weight);
    });
  }
  if (!ep_phases_path.empty()) {
    write_file(ep_phases_path, "ep-phases", [&](std::ostream& os) {
      harness::export_ep_phases(runner, os);
    });
  }

  // Truncated rings mean truncated traces/profiles: say so loudly
  // rather than presenting a partial picture as a complete one.
  if (const std::uint64_t dropped = telemetry::total_dropped_events();
      dropped > 0) {
    std::fprintf(stderr,
                 "warning: %llu trace event(s) dropped to ring "
                 "wraparound — traces and profiles are truncated; raise "
                 "Tracer ring_capacity\n",
                 static_cast<unsigned long long>(dropped));
  }

  if (!csv) {
    std::printf("capow report — %s\n", cfg.machine.name.c_str());
    std::printf("peak %.1f GF/s, memory %.1f GB/s, LLC %zu KiB\n",
                cfg.machine.peak_flops() / 1e9,
                cfg.machine.memory.bandwidth_bytes_per_s / 1e9,
                cfg.machine.llc_capacity_bytes() / 1024);
  }

  // Raw result matrix. A resume from a damaged checkpoint is reported
  // in the title, not fatal: the skipped configurations simply re-ran.
  {
    harness::TextTable t({"algorithm", "n", "threads", "seconds",
                          "package_w", "pp0_w", "energy_j", "ep_w_per_s",
                          "status", "attempts"});
    for (const auto& r : runner.run()) {
      t.add_row({harness::algorithm_name(r.algorithm),
                 std::to_string(r.n), std::to_string(r.threads),
                 harness::fmt(r.seconds, 6),
                 harness::fmt(r.package_watts, 3),
                 harness::fmt(r.pp0_watts, 3),
                 harness::fmt(r.package_energy_j, 3),
                 harness::fmt(r.ep, 4), harness::to_string(r.status),
                 std::to_string(r.attempts)});
    }
    std::string title = "result matrix";
    if (runner.skipped_checkpoint_lines() > 0) {
      title += " (" + std::to_string(runner.skipped_checkpoint_lines()) +
               " corrupt checkpoint line(s) skipped on resume)";
    }
    emit(t, csv, title.c_str());
  }

  // Fault/recovery event summary (only under fault injection).
  if (injector) {
    const fault::FaultCounters counters = injector->counters();
    harness::TextTable t({"fault event", "count"});
    for (std::size_t i = 0; i < fault::kEventCount; ++i) {
      t.add_row({fault::event_name(static_cast<fault::Event>(i)),
                 std::to_string(counters.by_event[i])});
    }
    emit(t, csv, ("fault events (spec: " + injector->plan().spec() + ")")
                     .c_str());
  }

  // ABFT checksum/recovery summary (only when something was verified).
  if (const abft::AbftCounters ac = abft::counters(); ac.total() > 0) {
    harness::TextTable t({"abft counter", "count"});
    t.add_row({"verifications", std::to_string(ac.verifications)});
    t.add_row({"detected", std::to_string(ac.detected)});
    t.add_row({"corrected", std::to_string(ac.corrected)});
    t.add_row({"recomputed", std::to_string(ac.recomputed)});
    t.add_row({"retried", std::to_string(ac.retried)});
    emit(t, csv, "abft events");
  }

  // Table II analogue.
  {
    std::vector<std::string> head{"avg slowdown"};
    for (std::size_t n : cfg.sizes) head.push_back(std::to_string(n));
    harness::TextTable t(head);
    // Every registered algorithm except the OpenBLAS baseline itself.
    for (const auto& info : core::algorithm_registry()) {
      if (info.id == harness::Algorithm::kOpenBlas) continue;
      std::vector<std::string> row{info.name};
      for (std::size_t n : cfg.sizes) {
        row.push_back(harness::fmt(runner.average_slowdown(info.id, n), 3));
      }
      t.add_row(row);
    }
    emit(t, csv, "average slowdown vs OpenBLAS (Table II)");
  }

  // Table III analogue.
  {
    std::vector<std::string> head{"avg package W"};
    for (unsigned th : cfg.thread_counts) {
      head.push_back(std::to_string(th) + "t");
    }
    harness::TextTable t(head);
    for (auto a : harness::kAllAlgorithms) {
      std::vector<std::string> row{harness::algorithm_name(a)};
      for (unsigned th : cfg.thread_counts) {
        row.push_back(harness::fmt(runner.average_power(a, th), 2));
      }
      t.add_row(row);
    }
    emit(t, csv, "average power by threads (Table III)");
  }

  // Table IV analogue.
  {
    std::vector<std::string> head{"avg EP (W/s)"};
    for (std::size_t n : cfg.sizes) head.push_back(std::to_string(n));
    harness::TextTable t(head);
    for (auto a : harness::kAllAlgorithms) {
      std::vector<std::string> row{harness::algorithm_name(a)};
      for (std::size_t n : cfg.sizes) {
        row.push_back(harness::fmt(runner.average_ep(a, n), 2));
      }
      t.add_row(row);
    }
    emit(t, csv, "average energy performance (Table IV)");
  }

  // Fig 7 analogue (only meaningful when a 1-thread base exists).
  const bool has_base =
      std::find(cfg.thread_counts.begin(), cfg.thread_counts.end(), 1u) !=
      cfg.thread_counts.end();
  if (has_base) {
    std::vector<std::string> head{"S = EP_p/EP_1", "n"};
    for (unsigned th : cfg.thread_counts) {
      head.push_back("S(" + std::to_string(th) + ")");
    }
    head.push_back("class");
    harness::TextTable t(head);
    for (auto a : harness::kAllAlgorithms) {
      for (std::size_t n : cfg.sizes) {
        const auto series = runner.ep_scaling(a, n);
        std::vector<std::string> row{harness::algorithm_name(a),
                                     std::to_string(n)};
        // Failed configurations leave holes in the series; keep the
        // surviving points aligned to their thread-count columns.
        for (unsigned th : cfg.thread_counts) {
          const auto pt = std::find_if(
              series.begin(), series.end(),
              [th](const core::ScalingPoint& p) {
                return p.parallelism == th;
              });
          row.push_back(pt != series.end() ? harness::fmt(pt->s, 3) : "-");
        }
        row.push_back(series.empty()
                          ? "-"
                          : core::to_string(core::classify_scaling(series)));
        t.add_row(row);
      }
    }
    emit(t, csv, "energy performance scaling (Fig 7)");
  }
  return 0;
}
