// capow-report: regenerate the paper's full evaluation (Tables II-IV,
// the Fig 7 scaling series) for any machine/problem configuration, as
// text or CSV — the command-line front door to the library.
//
// Usage:
//   capow-report [options]
//     --machine=haswell|quad|compact   platform model (default haswell)
//     --sizes=512,1024,2048,4096       problem sizes
//     --threads=1,2,3,4                thread counts
//     --csv                            emit CSV instead of tables
//     --quiesce=60                     seconds of idle between runs
//     --trace=FILE                     Chrome trace JSON (Perfetto)
//     --jsonl=FILE                     one JSON record per run
//     --metrics=FILE                   Prometheus text metrics
//     --profile=FILE                   per-run energy attribution
//                                      profiles (text)
//     --flamegraph=FILE                collapsed stacks (flamegraph.pl
//                                      / speedscope folded format)
//     --flamegraph-weight=mj|ns        folded weight: millijoules
//                                      (default) or nanoseconds
//     --ep-phases=FILE                 per-phase EP scaling JSONL
//     --faults=SPEC                    fault injection spec (or env
//                                      CAPOW_FAULTS), e.g.
//                                      comm.drop=0.01,rapl.fail=0.05,seed=42
//     --checkpoint=FILE                append each finished run to FILE
//     --resume=FILE                    replay finished runs from FILE,
//                                      run only missing/failed ones
//     --comm                           communication audit mode: run the
//                                      SUMMA / dist-CAPS audit points
//                                      with the CommStats collector and
//                                      print P x P byte matrices, per-
//                                      rank critical paths, and the
//                                      Eq (8) measured-vs-bound table
//                                      (skips the experiment matrix;
//                                      honors --machine, --faults,
//                                      --checkpoint/--resume, --metrics,
//                                      --csv)
//     --comm-trace=FILE                with --comm: Chrome trace with
//                                      one lane per rank and send->recv
//                                      flow arrows (live runs only)
//     --backends                       heterogeneous EP study: dispatch
//                                      every algorithm onto each
//                                      registered backend (cpu,
//                                      sim_accel) through the fallback-
//                                      aware registry and print per-
//                                      backend EP/S rows plus the
//                                      per-device Eq (9) crossover
//                                      comparison (skips the experiment
//                                      matrix; honors --sizes,
//                                      --threads, --csv)
//     --help
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "capow/abft/abft.hpp"
#include "capow/backend/backend.hpp"
#include "capow/core/ep_model.hpp"
#include "capow/fault/fault.hpp"
#include "capow/harness/backend_study.hpp"
#include "capow/harness/comm_audit.hpp"
#include "capow/harness/experiment.hpp"
#include "capow/harness/table.hpp"
#include "capow/harness/telemetry_export.hpp"
#include "capow/telemetry/export.hpp"
#include "capow/telemetry/tracer.hpp"

namespace {

using namespace capow;

std::vector<std::size_t> parse_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    // Reject partial tokens ("12abc") and empty ones, not just zeros:
    // strtoull stops at the first non-digit, so check it consumed the
    // whole token.
    if (v == 0 || end != tok.c_str() + tok.size()) {
      throw std::invalid_argument("bad list element: '" + tok +
                                  "' (expected a positive integer)");
    }
    out.push_back(static_cast<std::size_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("empty list");
  return out;
}

// Opens `path` for writing and runs `fn(stream)`; exits with a message
// on I/O failure.
template <typename Fn>
void write_file(const std::string& path, const char* what, Fn&& fn) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s file '%s'\n", what, path.c_str());
    std::exit(1);
  }
  fn(os);
  if (!os) {
    std::fprintf(stderr, "write failed for %s file '%s'\n", what,
                 path.c_str());
    std::exit(1);
  }
}

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [--machine=haswell|quad|compact] [--sizes=a,b,...]\n"
      "          [--threads=a,b,...] [--csv] [--quiesce=SECONDS]\n"
      "          [--trace=FILE] [--jsonl=FILE] [--metrics=FILE]\n"
      "          [--profile=FILE] [--flamegraph=FILE]\n"
      "          [--flamegraph-weight=mj|ns] [--ep-phases=FILE]\n"
      "          [--faults=SPEC] [--checkpoint=FILE] [--resume=FILE]\n"
      "          [--comm] [--comm-trace=FILE] [--backends]\n",
      argv0);
}

void emit(const harness::TextTable& t, bool csv, const char* title) {
  if (csv) {
    std::printf("# %s\n%s\n", title, t.csv().c_str());
  } else {
    std::printf("\n== %s ==\n%s", title, t.str().c_str());
  }
}

std::string point_label(const harness::CommAuditRecord& r) {
  return r.algorithm + " n=" + std::to_string(r.n) +
         " P=" + std::to_string(r.ranks);
}

/// Communication audit mode (--comm): run or replay the SUMMA and
/// dist-CAPS audit points and print the P x P byte matrices, per-rank
/// critical-path summaries, and the Eq (8) verdict table. Replayed
/// records come verbatim from the checkpoint (every table-visible field
/// is persisted exactly), so a --resume report is bit-identical to the
/// live one.
int run_comm_report(const machine::MachineSpec& spec, bool csv,
                    const std::string& checkpoint_path, bool resume,
                    const std::string& metrics_path,
                    const std::string& comm_trace_path,
                    const fault::FaultInjector* injector) {
  harness::CommAuditOptions opts;
  opts.machine = spec;
  opts.collect_trace = !comm_trace_path.empty();

  std::vector<harness::CommAuditRecord> replayed;
  if (resume) replayed = harness::load_comm_audits(checkpoint_path);

  std::ofstream ckpt;
  if (!checkpoint_path.empty()) {
    ckpt.open(checkpoint_path,
              resume ? std::ios::app : std::ios::trunc | std::ios::out);
    if (!ckpt) {
      std::fprintf(stderr, "cannot open checkpoint file '%s'\n",
                   checkpoint_path.c_str());
      return 1;
    }
  }

  telemetry::ChromeTraceWriter trace_writer;
  std::vector<harness::CommAuditRecord> records;
  std::size_t replayed_count = 0;
  int trace_pid = 0;
  for (const harness::CommAuditPoint& point :
       harness::default_comm_audit_points()) {
    const auto hit = std::find_if(
        replayed.begin(), replayed.end(),
        [&](const harness::CommAuditRecord& r) {
          return r.algorithm == point.algorithm && r.n == point.n &&
                 r.ranks == point.ranks;
        });
    if (hit != replayed.end()) {
      records.push_back(*hit);
      ++replayed_count;
      continue;
    }
    std::vector<telemetry::TraceEvent> events;
    std::uint64_t trace_start = 0;
    harness::CommAuditRecord rec;
    try {
      rec = harness::run_comm_audit(point, opts, &events, &trace_start);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "comm audit %s n=%zu P=%d failed: %s\n",
                   point.algorithm.c_str(), point.n, point.ranks, e.what());
      return 1;
    }
    if (opts.collect_trace) {
      harness::append_comm_trace(trace_writer, point_label(rec), trace_pid++,
                                 events, point.ranks, trace_start);
    }
    if (ckpt.is_open()) {
      ckpt << harness::comm_audit_line(rec) << "\n";
      ckpt.flush();
    }
    records.push_back(std::move(rec));
  }

  if (!comm_trace_path.empty()) {
    if (replayed_count > 0) {
      std::fprintf(stderr,
                   "note: %zu audit point(s) replayed from checkpoint — "
                   "traces cover only the points run live\n",
                   replayed_count);
    }
    write_file(comm_trace_path, "comm-trace", [&](std::ostream& os) {
      trace_writer.write(os);
    });
  }
  if (!metrics_path.empty()) {
    write_file(metrics_path, "metrics", [&](std::ostream& os) {
      telemetry::MetricsRegistry registry;
      harness::export_comm_metrics(registry, records);
      registry.write(os);
    });
  }

  if (!csv) {
    std::printf("capow comm audit — %s (M = %s words/core)\n",
                spec.name.c_str(),
                records.empty() ? "?"
                                : harness::fmt(records.front().m_words, 0)
                                      .c_str());
    if (replayed_count > 0) {
      std::printf("%zu audit point(s) replayed from checkpoint %s\n",
                  replayed_count, checkpoint_path.c_str());
    }
  }
  for (const harness::CommAuditRecord& r : records) {
    const std::string label = point_label(r);
    emit(harness::comm_matrix_table(r), csv,
         ("comm matrix — " + label + " (payload bytes)").c_str());
    emit(harness::comm_critical_path_table(r), csv,
         ("critical path — " + label).c_str());
    if (!r.completed()) {
      std::fprintf(stderr, "warning: %s run was poisoned: %s\n",
                   label.c_str(), r.error.c_str());
    }
  }
  emit(harness::comm_bound_table(records), csv,
       "Eq (8) communication audit (measured vs lower bound)");

  if (injector != nullptr) {
    const fault::FaultCounters counters = injector->counters();
    harness::TextTable t({"fault event", "count"});
    for (std::size_t i = 0; i < fault::kEventCount; ++i) {
      t.add_row({fault::event_name(static_cast<fault::Event>(i)),
                 std::to_string(counters.by_event[i])});
    }
    emit(t, csv,
         ("fault events (spec: " + injector->plan().spec() + ")").c_str());
  }
  return 0;
}

/// Heterogeneous EP study mode (--backends): the paper's Eq (1)/(5)
/// measurements and the Eq (9) crossover, evaluated per registered
/// device class through the fallback-aware BackendRegistry.
int run_backend_report(const harness::BackendStudyConfig& cfg, bool csv) {
  if (!csv) {
    std::printf("capow heterogeneous EP study — %zu backend(s)\n",
                backend::BackendRegistry::instance().all().size());
    for (backend::Backend* b : backend::BackendRegistry::instance().all()) {
      if (b == nullptr) continue;
      const machine::MachineSpec& spec = b->device_spec();
      std::printf("  %-9s %s: peak %.1f GF/s, memory %.1f GB/s\n",
                  b->name(), b->description(), spec.peak_flops() / 1e9,
                  spec.memory.bandwidth_bytes_per_s / 1e9);
    }
  }
  const std::vector<harness::BackendStudyRow> rows =
      harness::run_backend_study(cfg);
  emit(harness::backend_ep_table(rows), csv,
       "per-backend energy performance (Eq 1 / Eq 5)");
  emit(harness::backend_crossover_table(harness::backend_crossover_rows()),
       csv, "per-device Strassen crossover (Eq 9)");
  const std::uint64_t fallbacks =
      backend::BackendRegistry::instance().fallbacks_total();
  if (!csv && fallbacks > 0) {
    std::printf(
        "\n%llu dispatch(es) fell back to the host backend "
        "(capow_backend_fallbacks_total)\n",
        static_cast<unsigned long long>(fallbacks));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  harness::ExperimentConfig cfg;
  bool csv = false;
  bool comm_mode = false;
  bool backends_mode = false;
  std::string trace_path, jsonl_path, metrics_path;
  std::string profile_path, flamegraph_path, ep_phases_path;
  std::string comm_trace_path;
  profile::FoldedWeight flamegraph_weight =
      profile::FoldedWeight::kMillijoules;
  std::optional<fault::FaultPlan> fault_plan;
  try {
    fault_plan = fault::FaultPlan::from_env();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad CAPOW_FAULTS: %s\n", e.what());
    return 1;
  }
  try {
    backend::env_backend_override();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad CAPOW_BACKEND: %s\n", e.what());
    return 1;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    try {
      if (const char* v = value_of("--machine=")) {
        cfg.machine = machine::preset_by_name(v);
      } else if (const char* v2 = value_of("--sizes=")) {
        cfg.sizes = parse_list(v2);
      } else if (const char* v3 = value_of("--threads=")) {
        cfg.thread_counts.clear();
        for (std::size_t t : parse_list(v3)) {
          cfg.thread_counts.push_back(static_cast<unsigned>(t));
        }
      } else if (const char* v4 = value_of("--quiesce=")) {
        cfg.quiesce_seconds = std::strtod(v4, nullptr);
      } else if (const char* v5 = value_of("--trace=")) {
        trace_path = v5;
      } else if (const char* v6 = value_of("--jsonl=")) {
        jsonl_path = v6;
      } else if (const char* v7 = value_of("--metrics=")) {
        metrics_path = v7;
      } else if (const char* v11 = value_of("--profile=")) {
        profile_path = v11;
      } else if (const char* v12 = value_of("--flamegraph=")) {
        flamegraph_path = v12;
      } else if (const char* v13 = value_of("--flamegraph-weight=")) {
        const std::string w = v13;
        if (w == "mj") {
          flamegraph_weight = profile::FoldedWeight::kMillijoules;
        } else if (w == "ns") {
          flamegraph_weight = profile::FoldedWeight::kNanoseconds;
        } else {
          throw std::invalid_argument("expected 'mj' or 'ns'");
        }
      } else if (const char* v14 = value_of("--ep-phases=")) {
        ep_phases_path = v14;
      } else if (const char* v8 = value_of("--faults=")) {
        fault_plan = fault::FaultPlan::parse(v8);
      } else if (const char* v9 = value_of("--checkpoint=")) {
        cfg.checkpoint_path = v9;
      } else if (const char* v10 = value_of("--resume=")) {
        cfg.checkpoint_path = v10;
        cfg.resume = true;
      } else if (const char* v15 = value_of("--comm-trace=")) {
        comm_trace_path = v15;
      } else if (arg == "--comm") {
        comm_mode = true;
      } else if (arg == "--backends") {
        backends_mode = true;
      } else if (arg == "--csv") {
        csv = true;
      } else if (arg == "--help" || arg == "-h") {
        print_usage(argv[0]);
        return 0;
      } else {
        std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
        print_usage(argv[0]);
        return 1;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad argument '%s': %s\n", arg.c_str(),
                   e.what());
      return 1;
    }
  }

  // Fault runs get a watchdog by default so an injected hang turns into
  // a retried/failed record instead of a hung report.
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<fault::FaultScope> fault_scope;
  if (fault_plan) {
    if (cfg.run_timeout_seconds <= 0.0) cfg.run_timeout_seconds = 30.0;
    injector = std::make_unique<fault::FaultInjector>(*fault_plan);
    fault_scope = std::make_unique<fault::FaultScope>(*injector);
  }

  if (comm_mode) {
    return run_comm_report(cfg.machine, csv, cfg.checkpoint_path, cfg.resume,
                           metrics_path, comm_trace_path, injector.get());
  }
  if (backends_mode) {
    harness::BackendStudyConfig bcfg;
    bcfg.sizes = cfg.sizes;
    bcfg.threads = cfg.thread_counts;
    return run_backend_report(bcfg, csv);
  }
  if (!comm_trace_path.empty()) {
    std::fprintf(stderr, "--comm-trace requires --comm\n");
    return 1;
  }

  harness::ExperimentRunner runner(cfg);
  runner.run();

  if (!trace_path.empty()) {
    write_file(trace_path, "trace", [&](std::ostream& os) {
      harness::export_chrome_trace(runner, os);
    });
  }
  if (!jsonl_path.empty()) {
    write_file(jsonl_path, "jsonl", [&](std::ostream& os) {
      harness::export_jsonl(runner, os);
    });
  }
  if (!metrics_path.empty()) {
    write_file(metrics_path, "metrics", [&](std::ostream& os) {
      harness::export_metrics(runner, os);
    });
  }
  if (!profile_path.empty()) {
    write_file(profile_path, "profile", [&](std::ostream& os) {
      harness::export_profile(runner, os);
    });
  }
  if (!flamegraph_path.empty()) {
    write_file(flamegraph_path, "flamegraph", [&](std::ostream& os) {
      harness::export_flamegraph(runner, os, flamegraph_weight);
    });
  }
  if (!ep_phases_path.empty()) {
    write_file(ep_phases_path, "ep-phases", [&](std::ostream& os) {
      harness::export_ep_phases(runner, os);
    });
  }

  // Truncated rings mean truncated traces/profiles: say so loudly
  // rather than presenting a partial picture as a complete one.
  if (const std::uint64_t dropped = telemetry::total_dropped_events();
      dropped > 0) {
    std::fprintf(stderr,
                 "warning: %llu trace event(s) dropped to ring "
                 "wraparound — traces and profiles are truncated; raise "
                 "Tracer ring_capacity\n",
                 static_cast<unsigned long long>(dropped));
  }

  if (!csv) {
    std::printf("capow report — %s\n", cfg.machine.name.c_str());
    std::printf("peak %.1f GF/s, memory %.1f GB/s, LLC %zu KiB\n",
                cfg.machine.peak_flops() / 1e9,
                cfg.machine.memory.bandwidth_bytes_per_s / 1e9,
                cfg.machine.llc_capacity_bytes() / 1024);
  }

  // Raw result matrix. A resume from a damaged checkpoint is reported
  // in the title, not fatal: the skipped configurations simply re-ran.
  {
    harness::TextTable t({"algorithm", "n", "threads", "seconds",
                          "package_w", "pp0_w", "energy_j", "ep_w_per_s",
                          "status", "attempts"});
    for (const auto& r : runner.run()) {
      t.add_row({harness::algorithm_name(r.algorithm),
                 std::to_string(r.n), std::to_string(r.threads),
                 harness::fmt(r.seconds, 6),
                 harness::fmt(r.package_watts, 3),
                 harness::fmt(r.pp0_watts, 3),
                 harness::fmt(r.package_energy_j, 3),
                 harness::fmt(r.ep, 4), harness::to_string(r.status),
                 std::to_string(r.attempts)});
    }
    std::string title = "result matrix";
    if (runner.skipped_checkpoint_lines() > 0) {
      title += " (" + std::to_string(runner.skipped_checkpoint_lines()) +
               " corrupt checkpoint line(s) skipped on resume)";
    }
    emit(t, csv, title.c_str());
  }

  // Fault/recovery event summary (only under fault injection).
  if (injector) {
    const fault::FaultCounters counters = injector->counters();
    harness::TextTable t({"fault event", "count"});
    for (std::size_t i = 0; i < fault::kEventCount; ++i) {
      t.add_row({fault::event_name(static_cast<fault::Event>(i)),
                 std::to_string(counters.by_event[i])});
    }
    emit(t, csv, ("fault events (spec: " + injector->plan().spec() + ")")
                     .c_str());
  }

  // ABFT checksum/recovery summary (only when something was verified).
  if (const abft::AbftCounters ac = abft::counters(); ac.total() > 0) {
    harness::TextTable t({"abft counter", "count"});
    t.add_row({"verifications", std::to_string(ac.verifications)});
    t.add_row({"detected", std::to_string(ac.detected)});
    t.add_row({"corrected", std::to_string(ac.corrected)});
    t.add_row({"recomputed", std::to_string(ac.recomputed)});
    t.add_row({"retried", std::to_string(ac.retried)});
    emit(t, csv, "abft events");
  }

  // Table II analogue.
  {
    std::vector<std::string> head{"avg slowdown"};
    for (std::size_t n : cfg.sizes) head.push_back(std::to_string(n));
    harness::TextTable t(head);
    // Every registered algorithm except the OpenBLAS baseline itself.
    for (const auto& info : core::algorithm_registry()) {
      if (info.id == harness::Algorithm::kOpenBlas) continue;
      std::vector<std::string> row{info.name};
      for (std::size_t n : cfg.sizes) {
        row.push_back(harness::fmt(runner.average_slowdown(info.id, n), 3));
      }
      t.add_row(row);
    }
    emit(t, csv, "average slowdown vs OpenBLAS (Table II)");
  }

  // Table III analogue.
  {
    std::vector<std::string> head{"avg package W"};
    for (unsigned th : cfg.thread_counts) {
      head.push_back(std::to_string(th) + "t");
    }
    harness::TextTable t(head);
    for (auto a : harness::kAllAlgorithms) {
      std::vector<std::string> row{harness::algorithm_name(a)};
      for (unsigned th : cfg.thread_counts) {
        row.push_back(harness::fmt(runner.average_power(a, th), 2));
      }
      t.add_row(row);
    }
    emit(t, csv, "average power by threads (Table III)");
  }

  // Table IV analogue.
  {
    std::vector<std::string> head{"avg EP (W/s)"};
    for (std::size_t n : cfg.sizes) head.push_back(std::to_string(n));
    harness::TextTable t(head);
    for (auto a : harness::kAllAlgorithms) {
      std::vector<std::string> row{harness::algorithm_name(a)};
      for (std::size_t n : cfg.sizes) {
        row.push_back(harness::fmt(runner.average_ep(a, n), 2));
      }
      t.add_row(row);
    }
    emit(t, csv, "average energy performance (Table IV)");
  }

  // Fig 7 analogue (only meaningful when a 1-thread base exists).
  const bool has_base =
      std::find(cfg.thread_counts.begin(), cfg.thread_counts.end(), 1u) !=
      cfg.thread_counts.end();
  if (has_base) {
    std::vector<std::string> head{"S = EP_p/EP_1", "n"};
    for (unsigned th : cfg.thread_counts) {
      head.push_back("S(" + std::to_string(th) + ")");
    }
    head.push_back("class");
    harness::TextTable t(head);
    for (auto a : harness::kAllAlgorithms) {
      for (std::size_t n : cfg.sizes) {
        const auto series = runner.ep_scaling(a, n);
        std::vector<std::string> row{harness::algorithm_name(a),
                                     std::to_string(n)};
        // Failed configurations leave holes in the series; keep the
        // surviving points aligned to their thread-count columns.
        for (unsigned th : cfg.thread_counts) {
          const auto pt = std::find_if(
              series.begin(), series.end(),
              [th](const core::ScalingPoint& p) {
                return p.parallelism == th;
              });
          row.push_back(pt != series.end() ? harness::fmt(pt->s, 3) : "-");
        }
        row.push_back(series.empty()
                          ? "-"
                          : core::to_string(core::classify_scaling(series)));
        t.add_row(row);
      }
    }
    emit(t, csv, "energy performance scaling (Fig 7)");
  }
  return 0;
}
