// Algorithm explorer: the per-phase anatomy of each algorithm on a
// chosen platform — where the time goes (compute vs memory roofline),
// what each phase draws on the PKG/PP0 planes, where the Eq 9 crossover
// sits, and what the Eq 8 communication bound permits.
//
// Usage: algorithm_explorer [n] [threads] [machine]
//        machine: haswell (default) | quad | compact
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "capow/blas/cost_model.hpp"
#include "capow/capsalg/cost_model.hpp"
#include "capow/core/comm_bounds.hpp"
#include "capow/core/crossover.hpp"
#include "capow/harness/table.hpp"
#include "capow/sim/executor.hpp"
#include "capow/strassen/cost_model.hpp"

namespace {

using namespace capow;

void print_phase_breakdown(const char* name, const sim::WorkProfile& wp,
                           const machine::MachineSpec& m, unsigned threads) {
  const auto run = sim::simulate(m, wp, threads);
  std::printf("\n%s — %.4f s total, %.2f W package, %.2f W PP0\n", name,
              run.seconds, run.avg_power_w(machine::PowerPlane::kPackage),
              run.avg_power_w(machine::PowerPlane::kPP0));
  harness::TextTable table({"phase", "time (s)", "share", "bound", "cores",
                            "util", "pkg W"});
  for (const auto& ph : run.phases) {
    if (ph.seconds < run.seconds * 0.001) continue;  // skip noise rows
    table.add_row(
        {ph.label, harness::fmt(ph.seconds, 4),
         harness::fmt(ph.seconds / run.seconds * 100.0, 1) + "%",
         ph.memory_seconds > ph.compute_seconds ? "memory" : "compute",
         std::to_string(ph.active_cores),
         harness::fmt(ph.utilization * 100.0, 0) + "%",
         harness::fmt(
             ph.power_w[static_cast<int>(machine::PowerPlane::kPackage)],
             1)});
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2048;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
               : 4;
  machine::MachineSpec m = machine::haswell_e3_1225();
  if (argc > 3) {
    if (std::strcmp(argv[3], "quad") == 0) {
      m = machine::haswell_quad_channel();
    } else if (std::strcmp(argv[3], "compact") == 0) {
      m = machine::compact_dual_core();
    }
  }
  if (n == 0 || threads == 0) {
    std::printf("usage: %s [n > 0] [threads > 0] [haswell|quad|compact]\n",
                argv[0]);
    return 1;
  }

  std::printf("algorithm explorer — %s\n", m.name.c_str());
  std::printf(
      "peak %.1f GF/s (%.1f/core), memory %.1f GB/s, balance %.1f "
      "flops/byte\n",
      m.peak_flops() / 1e9, m.per_core_peak_flops() / 1e9,
      m.memory.bandwidth_bytes_per_s / 1e9, m.flops_per_byte());
  std::printf("problem: %zu x %zu, %u thread(s)\n", n, n, threads);

  print_phase_breakdown("blocked DGEMM",
                        blas::blocked_gemm_profile(n, m, threads), m,
                        threads);
  print_phase_breakdown("Strassen",
                        strassen::strassen_profile(n, m, threads), m,
                        threads);
  print_phase_breakdown("CAPS", capsalg::caps_profile(n, m, threads), m,
                        threads);

  const double crossover =
      core::strassen_crossover_dimension(m, blas::kTunedGemmEfficiency);
  std::printf(
      "\nEq 9 crossover for this platform: n ~ %.0f (%s the installed "
      "memory)\n",
      crossover,
      core::crossover_fits_in_memory(m, crossover) ? "fits in"
                                                   : "exceeds");
  const double m_words = core::fast_memory_words_per_core(m);
  std::printf(
      "Eq 8 communication bounds at this n, P = %u, M = %.0f words/core:\n"
      "  Strassen-family lower bound: %s words\n"
      "  classical lower bound:       %s words\n",
      threads, m_words,
      harness::fmt_si(core::caps_communication_bound_words(n, threads,
                                                           m_words),
                      2)
          .c_str(),
      harness::fmt_si(
          core::classical_communication_bound_words(n, threads, m_words), 2)
          .c_str());
  return 0;
}
