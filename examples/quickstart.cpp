// Quickstart: the capow pipeline in one file.
//
//   1. multiply two matrices with all three of the paper's algorithms
//      (blocked DGEMM, Strassen, CAPS) and check they agree,
//   2. capture each run's cost profile with the trace instrumentation,
//   3. project time and power on the paper's Haswell machine model
//      through the simulated RAPL measurement path, and
//   4. rank the algorithms with the paper's energy-performance model.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "capow/api/matmul.hpp"
#include "capow/blas/cost_model.hpp"
#include "capow/core/ep_model.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"
#include "capow/sim/executor.hpp"
#include "capow/strassen/cost_model.hpp"
#include "capow/strassen/strassen.hpp"
#include "capow/trace/counters.hpp"

int main() {
  using namespace capow;
  constexpr std::size_t kN = 256;
  constexpr unsigned kThreads = 4;

  std::printf("capow quickstart: %zux%zu double matrix multiply\n\n", kN,
              kN);

  // 1. Generate a reproducible workload and run all three algorithms.
  const linalg::Matrix a = linalg::random_square(kN, /*seed=*/1);
  const linalg::Matrix b = linalg::random_square(kN, /*seed=*/2);
  linalg::Matrix c_blas(kN, kN), c_strassen(kN, kN), c_caps(kN, kN);

  struct Run {
    const char* name;
    double efficiency;      // kernel efficiency for the machine model
    trace::Recorder rec;    // measured costs
  } runs[3] = {
      {"blocked DGEMM (OpenBLAS-style)", blas::kTunedGemmEfficiency, {}},
      {"Strassen (BOTS-style tasks)",
       strassen::kBotsBaseKernelEfficiency,
       {}},
      {"CAPS (BFS/DFS, cutoff depth 4)",
       strassen::kBotsBaseKernelEfficiency,
       {}},
  };

  // One entry point for all three algorithms: capow::matmul() selects
  // the implementation (and the fastest SIMD microkernel the CPU
  // supports — override with CAPOW_KERNEL=generic|avx2|fma).
  const struct {
    core::AlgorithmId id;
    linalg::Matrix* out;
    trace::Recorder* rec;
  } calls[3] = {{core::AlgorithmId::kOpenBlas, &c_blas, &runs[0].rec},
                {core::AlgorithmId::kStrassen, &c_strassen, &runs[1].rec},
                {core::AlgorithmId::kCaps, &c_caps, &runs[2].rec}};
  for (const auto& call : calls) {
    trace::RecordingScope scope(*call.rec);
    MatmulOptions opts;
    opts.algorithm = call.id;
    matmul(a.view(), b.view(), call.out->view(), opts);
  }

  if (!linalg::allclose(c_strassen.view(), c_blas.view(), 1e-9, 1e-9) ||
      !linalg::allclose(c_caps.view(), c_blas.view(), 1e-9, 1e-9)) {
    std::printf("numerical disagreement — this is a bug\n");
    return 1;
  }
  std::printf("all three algorithms agree numerically (rel tol 1e-9)\n\n");

  // 2-4. Project each measured profile on the paper's platform and rank
  // by the EP model.
  const machine::MachineSpec m = machine::haswell_e3_1225();
  std::printf("projected on: %s, %u threads\n", m.name.c_str(), kThreads);
  std::printf("%-32s %12s %12s %10s %10s\n", "algorithm", "Mflops",
              "MB moved", "pkg W", "EP (W/s)");
  for (auto& run : runs) {
    const auto profile = sim::profile_from_recorder(
        run.rec, run.name, run.efficiency);
    const auto result = sim::simulate(m, profile, kThreads);
    const double watts = result.avg_power_w(machine::PowerPlane::kPackage);
    const double ep = core::energy_performance(watts, result.seconds);
    std::printf("%-32s %12.1f %12.1f %10.2f %10.1f\n", run.name,
                static_cast<double>(run.rec.total().flops) / 1e6,
                static_cast<double>(run.rec.total().dram_bytes()) / 1e6,
                watts, ep);
  }

  std::printf(
      "\nreading the table: the tuned DGEMM does the most useful flops per\n"
      "byte moved and posts the best EP — but the paper's point is about\n"
      "*scaling*: run build/bench/fig7_ep_scaling to see whose power bill\n"
      "grows faster than their speedup.\n");
  return 0;
}
