// Sparse storage-format EP survey (paper Section VIII): run a real
// instrumented SpMV in each format, then rank the formats by projected
// energy performance on the paper's platform.
//
// Usage: sparse_ep_survey [n] [density]
//        defaults: n = 4096, density = 0.01
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "capow/core/ep_model.hpp"
#include "capow/harness/table.hpp"
#include "capow/linalg/random.hpp"
#include "capow/sim/executor.hpp"
#include "capow/sparse/cost_model.hpp"
#include "capow/sparse/spmv.hpp"
#include "capow/trace/counters.hpp"

int main(int argc, char** argv) {
  using namespace capow;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;
  const double density = argc > 2 ? std::strtod(argv[2], nullptr) : 0.01;
  if (n == 0 || density <= 0.0 || density > 1.0) {
    std::printf("usage: %s [n > 0] [density in (0,1]]\n", argv[0]);
    return 1;
  }

  const auto csr = sparse::random_sparse(n, n, density, /*seed=*/11);
  const auto coo = sparse::coo_from_csr(csr);
  const auto ell = sparse::ell_from_csr(csr);
  const auto shape = sparse::shape_of(csr);
  std::printf(
      "sparse EP survey: %zu x %zu, density %.4f -> nnz = %zu, widest row "
      "= %zu\n\n",
      n, n, density, shape.nnz, shape.ell_width);

  // Real instrumented SpMV per format (correctness + measured traffic).
  std::vector<double> x(n);
  linalg::Xoshiro256 rng(3);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<double> y_csr(n), y_coo(n), y_ell(n);

  trace::Recorder rec_csr, rec_coo, rec_ell;
  {
    trace::RecordingScope s(rec_csr);
    sparse::spmv(csr, x, y_csr);
  }
  {
    trace::RecordingScope s(rec_coo);
    sparse::spmv(coo, x, y_coo);
  }
  {
    trace::RecordingScope s(rec_ell);
    sparse::spmv(ell, x, y_ell);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(y_coo[i] - y_csr[i]) > 1e-9 ||
        std::abs(y_ell[i] - y_csr[i]) > 1e-9) {
      std::printf("format disagreement at row %zu — bug!\n", i);
      return 1;
    }
  }
  std::printf("all three formats agree numerically.\n\n");

  const auto m = machine::haswell_e3_1225();
  constexpr std::size_t kIters = 100;
  harness::TextTable table({"format", "storage", "traffic/SpMV", "T@4 (s)",
                            "pkg W", "EP (W/s)"});
  const trace::Recorder* recs[3] = {&rec_csr, &rec_coo, &rec_ell};
  const std::size_t storage[3] = {csr.bytes(), coo.bytes(), ell.bytes()};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto f = sparse::kAllFormats[i];
    const auto run =
        sim::simulate(m, sparse::spmv_profile(f, shape, m, 4, kIters), 4);
    const double w = run.avg_power_w(machine::PowerPlane::kPackage);
    table.add_row(
        {sparse::format_name(f),
         harness::fmt_si(static_cast<double>(storage[i]), 2) + "B",
         harness::fmt_si(
             static_cast<double>(recs[i]->total().dram_bytes()), 2) +
             "B",
         harness::fmt(run.seconds, 4), harness::fmt(w, 2),
         harness::fmt(core::energy_performance(w, run.seconds), 2)});
  }
  std::printf("%zu repeated SpMVs on %s, 4 threads:\n%s", kIters,
              m.name.c_str(), table.str().c_str());
  std::printf(
      "\nreading: traffic per SpMV — not flops — decides both time and\n"
      "energy here; the paper's EP lens applied to storage formats.\n");
  return 0;
}
