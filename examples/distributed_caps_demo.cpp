// Distributed CAPS demo (paper Section VIII): a real multi-rank run on
// the in-process mini-MPI runtime, with measured interconnect traffic
// priced by the cluster energy model.
//
// Usage: distributed_caps_demo [ranks] [n]
//        defaults: ranks = 7 (the natural Strassen fan-out), n = 256
#include <cstdio>
#include <cstdlib>

#include "capow/blas/gemm_ref.hpp"
#include "capow/dist/comm.hpp"
#include "capow/dist/dist_caps.hpp"
#include "capow/dist/energy.hpp"
#include "capow/harness/table.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"
#include "capow/strassen/cost_model.hpp"
#include "capow/trace/counters.hpp"

int main(int argc, char** argv) {
  using namespace capow;
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 7;
  const std::size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256;
  if (ranks <= 0 || n == 0) {
    std::printf("usage: %s [ranks > 0] [n > 0]\n", argv[0]);
    return 1;
  }

  std::printf("distributed CAPS demo: %zu x %zu over %d rank(s)\n\n", n, n,
              ranks);

  const linalg::Matrix a = linalg::random_square(n, 1);
  const linalg::Matrix b = linalg::random_square(n, 2);
  linalg::Matrix c(n, n);

  trace::Recorder rec;
  {
    trace::RecordingScope scope(rec);
    dist::World world(ranks);
    dist::DistCapsOptions opts;
    opts.local.base_cutoff = 32;
    world.run([&](dist::Communicator& comm) {
      linalg::Matrix empty;
      const bool root = comm.rank() == 0;
      dist::dist_caps_multiply(comm, root ? a.view() : empty.view(),
                               root ? b.view() : empty.view(),
                               root ? c.view() : empty.view(), opts);
    });
  }

  // Verify against the reference multiplier.
  linalg::Matrix expect(n, n);
  blas::gemm_reference(a.view(), b.view(), expect.view());
  if (!linalg::allclose(c.view(), expect.view(), 1e-9, 1e-9)) {
    std::printf("distributed result disagrees with reference — bug!\n");
    return 1;
  }
  std::printf("result verified against the reference multiplier.\n\n");

  const auto total = rec.total();
  std::printf("measured communication: %llu message(s), %s on the wire\n",
              static_cast<unsigned long long>(total.messages),
              harness::fmt_si(static_cast<double>(total.message_bytes), 2)
                  .c_str());

  dist::DistMachineSpec cluster;
  const auto est = dist::estimate_distributed_run(
      cluster, static_cast<unsigned>(ranks),
      static_cast<double>(total.flops) / ranks,
      strassen::kBotsBaseKernelEfficiency,
      static_cast<double>(total.message_bytes), total.messages);
  std::printf(
      "\ncluster projection (%d x %s nodes over 10 GbE):\n"
      "  time      %.4f s\n"
      "  node energy %.2f J, link energy %.2f J\n"
      "  average power %.2f W  ->  EP = %.2f W/s (Eq 1)\n",
      ranks, cluster.node.name.c_str(), est.seconds, est.node_energy_j,
      est.link_energy_j, est.avg_power_w(),
      est.avg_power_w() / est.seconds);
  std::printf(
      "\ntry: %s 1 256  vs  %s 7 256 — the interconnect energy line is\n"
      "the term the paper's Section VIII wants added to the EP model.\n",
      argv[0], argv[0]);
  return 0;
}
