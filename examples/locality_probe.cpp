// Cache-locality probe: replay the Strassen and CAPS access structures
// through the LRU hierarchy simulator and see where each algorithm's
// traffic actually lands — the microscope behind the paper's
// communication-avoidance story.
//
// Usage: locality_probe [n] [cutoff] [bfs_depth] [machine]
//        defaults: n = 512, cutoff = 64, bfs_depth = 4, machine haswell
//        (n must be cutoff * 2^k — the replay does not pad)
#include <cstdio>
#include <cstdlib>

#include "capow/cachesim/locality_trace.hpp"
#include "capow/harness/table.hpp"
#include "capow/machine/machine.hpp"

int main(int argc, char** argv) {
  using namespace capow;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;
  const std::size_t cutoff =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const std::size_t bfs_depth =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;
  machine::MachineSpec m = machine::haswell_e3_1225();
  if (argc > 4) {
    try {
      m = machine::preset_by_name(argv[4]);
    } catch (const std::exception& e) {
      std::printf("%s\n", e.what());
      return 1;
    }
  }

  std::printf("locality probe — %s\n", m.name.c_str());
  std::printf("problem: %zu x %zu, base cutoff %zu, CAPS bfs depth %zu\n\n",
              n, n, cutoff, bfs_depth);

  try {
    const auto strassen_r = cachesim::strassen_locality(n, cutoff, m);
    const auto caps_r = cachesim::caps_locality(n, cutoff, bfs_depth, m);

    harness::TextTable table({"algorithm", "logical bytes", "DRAM bytes",
                              "DRAM %", "L1 miss", "L2 miss", "LLC miss"});
    const auto add = [&](const char* name,
                         const cachesim::LocalityReport& r) {
      std::vector<std::string> row{
          name,
          harness::fmt_si(static_cast<double>(r.logical_bytes), 2),
          harness::fmt_si(static_cast<double>(r.dram_bytes), 2),
          harness::fmt(r.dram_fraction() * 100.0, 1) + "%"};
      for (std::size_t l = 0; l < 3; ++l) {
        row.push_back(
            l < r.levels.size()
                ? harness::fmt(r.levels[l].miss_ratio() * 100.0, 1) + "%"
                : "-");
      }
      table.add_row(row);
    };
    add("Strassen", strassen_r);
    add("CAPS", caps_r);
    std::printf("%s", table.str().c_str());

    std::printf(
        "\nwhat to try:\n"
        "  %s 1024          — watch the DRAM column jump once 3n^2 "
        "doubles\n"
        "                     no longer fit the LLC\n"
        "  %s 512 256       — a fat base case thrashes L1 (the blocking\n"
        "                     the paper's cutoff-64 choice avoids)\n"
        "  %s 512 64 0      — pure-DFS CAPS: less buffer, different "
        "reuse\n",
        argv[0], argv[0], argv[0]);
  } catch (const std::exception& e) {
    std::printf("error: %s\n", e.what());
    return 1;
  }
  return 0;
}
