// Power-budget advisor — the paper's motivating use case made concrete.
//
// The introduction promises "system architects, facilities managers and
// users the ability to construct and maintain scalable applications ...
// within the limits of the respective facilities while maintaining the
// highest potential performance." This example is that tool: given a
// problem size and a package-power budget (watts), it searches the
// algorithm x thread-count space and recommends the fastest
// configuration that stays under budget.
//
// Usage: power_budget_advisor [n] [watt_budget]
//        defaults: n = 4096, budget = 35 W
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "capow/harness/experiment.hpp"
#include "capow/harness/table.hpp"

int main(int argc, char** argv) {
  using namespace capow;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;
  const double budget = argc > 2 ? std::strtod(argv[2], nullptr) : 35.0;
  if (n == 0 || budget <= 0.0) {
    std::printf("usage: %s [n > 0] [watt_budget > 0]\n", argv[0]);
    return 1;
  }

  harness::ExperimentConfig cfg;
  cfg.sizes = {n};
  cfg.thread_counts = {1, 2, 3, 4};
  harness::ExperimentRunner runner(cfg);
  runner.run();

  std::printf("power budget advisor — %s\n", cfg.machine.name.c_str());
  std::printf("problem: %zu x %zu doubles, budget: %.1f W (package)\n\n", n,
              n, budget);

  harness::TextTable table({"algorithm", "threads", "time (s)", "pkg W",
                            "EP (W/s)", "within budget"});
  std::optional<harness::ResultRecord> best;
  for (harness::Algorithm a : harness::kAllAlgorithms) {
    for (unsigned t : cfg.thread_counts) {
      const auto& r = runner.find(a, n, t);
      const bool ok = r.package_watts <= budget;
      table.add_row({harness::algorithm_name(a), std::to_string(t),
                     harness::fmt(r.seconds, 3),
                     harness::fmt(r.package_watts, 2),
                     harness::fmt(r.ep, 2), ok ? "yes" : "no"});
      if (ok && (!best || r.seconds < best->seconds)) best = r;
    }
  }
  std::printf("%s\n", table.str().c_str());

  if (best) {
    std::printf(
        "recommendation: %s with %u thread(s) — %.3f s at %.2f W "
        "(%.1f%% of budget)\n",
        harness::algorithm_name(best->algorithm), best->threads,
        best->seconds, best->package_watts,
        best->package_watts / budget * 100.0);
    const auto& unconstrained =
        runner.find(harness::Algorithm::kOpenBlas, n, 4);
    if (unconstrained.package_watts > budget) {
      std::printf(
          "note: the unconstrained fastest option (OpenBLAS, 4 threads, "
          "%.3f s)\nneeds %.2f W — %.1f W over this facility's budget. "
          "This is exactly the\ntrade the paper's EP model exists to "
          "navigate.\n",
          unconstrained.seconds, unconstrained.package_watts,
          unconstrained.package_watts - budget);
    }
  } else {
    std::printf(
        "no configuration fits a %.1f W budget on this machine; the\n"
        "lowest-power option is Strassen or CAPS at 1 thread.\n",
        budget);
  }
  return 0;
}
