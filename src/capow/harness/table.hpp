// Plain-text table and CSV formatting for benches and examples.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace capow::harness {

/// Fixed-width ASCII table builder. Columns auto-size to their widest
/// cell; the first column is left-aligned, the rest right-aligned
/// (numeric convention).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; throws std::invalid_argument when the cell count does
  /// not match the header count.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a header separator line.
  std::string str() const;

  /// Renders as CSV (no padding, comma-separated, quoted when needed).
  std::string csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` fractional digits.
std::string fmt(double value, int precision = 2);

/// Formats a double in engineering style with an SI suffix
/// (e.g. 12.8G, 61.0u) — used for bandwidth/energy readouts.
std::string fmt_si(double value, int precision = 2);

}  // namespace capow::harness
