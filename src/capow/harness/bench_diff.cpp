#include "capow/harness/bench_diff.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>

namespace capow::harness {

namespace {

/// Minimal scanner for the flat JSON objects the bench reporter emits.
/// Collects string and numeric members; true/false/null are consumed
/// and ignored. Returns false on any structural error.
class FlatJsonScanner {
 public:
  explicit FlatJsonScanner(std::string_view s) : s_(s) {}

  bool scan(std::string* name,
            std::vector<std::pair<std::string, double>>* metrics) {
    skip_ws();
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return !name->empty();
    while (true) {
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (peek() == '"') {
        std::string value;
        if (!parse_string(&value)) return false;
        if (key == "name") *name = value;
      } else if (peek() == 't') {
        if (!eat_word("true")) return false;
      } else if (peek() == 'f') {
        if (!eat_word("false")) return false;
      } else if (peek() == 'n') {
        if (!eat_word("null")) return false;
      } else {
        double value = 0.0;
        if (!parse_number(&value)) return false;
        metrics->emplace_back(key, value);
      }
      skip_ws();
      if (eat(',')) {
        skip_ws();
        continue;
      }
      if (eat('}')) break;
      return false;
    }
    skip_ws();
    return pos_ == s_.size() && !name->empty();
  }

 private:
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  bool eat_word(std::string_view w) {
    if (s_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool parse_string(std::string* out) {
    if (!eat('"')) return false;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // \uXXXX: keep the raw escape — bench names are ASCII and
            // diffing only needs equal inputs to stay equal.
            if (pos_ + 4 > s_.size()) return false;
            out->append("\\u").append(s_.substr(pos_, 4));
            pos_ += 4;
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }
  bool parse_number(double* out) {
    const char* begin = s_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return false;
    pos_ += static_cast<std::size_t>(end - begin);
    *out = v;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

double BenchRecord::metric(std::string_view key) const noexcept {
  for (const auto& [k, v] : metrics) {
    if (k == key) return v;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

std::vector<BenchRecord> parse_bench_jsonl(std::istream& is,
                                           std::size_t* malformed) {
  std::vector<BenchRecord> out;
  std::map<std::string, std::size_t> index;
  std::size_t bad = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
    if (!FlatJsonScanner(line).scan(&name, &metrics)) {
      ++bad;
      continue;
    }
    const auto it = index.find(name);
    if (it == index.end()) {
      index.emplace(name, out.size());
      out.push_back(BenchRecord{std::move(name), std::move(metrics)});
      continue;
    }
    // Merge repeated runs of the same benchmark: best-of per metric.
    BenchRecord& rec = out[it->second];
    for (auto& [key, value] : metrics) {
      bool found = false;
      for (auto& [k, v] : rec.metrics) {
        if (k == key) {
          v = std::min(v, value);
          found = true;
          break;
        }
      }
      if (!found) rec.metrics.emplace_back(std::move(key), value);
    }
  }
  if (malformed != nullptr) *malformed = bad;
  return out;
}

std::size_t BenchDiffReport::regressions() const noexcept {
  std::size_t n = 0;
  for (const BenchMetricDiff& r : rows) n += r.regression ? 1 : 0;
  return n;
}

BenchDiffReport diff_bench_records(const std::vector<BenchRecord>& baseline,
                                   const std::vector<BenchRecord>& current,
                                   const BenchDiffOptions& opts) {
  BenchDiffReport report;
  std::map<std::string_view, const BenchRecord*> cur_index;
  for (const BenchRecord& r : current) cur_index.emplace(r.name, &r);

  for (const BenchRecord& base : baseline) {
    const auto it = cur_index.find(base.name);
    if (it == cur_index.end()) {
      report.missing.push_back(base.name);
      continue;
    }
    for (const std::string& metric : opts.metrics) {
      const double b = base.metric(metric);
      const double c = it->second->metric(metric);
      if (!(b > 0.0) || std::isnan(c)) continue;
      BenchMetricDiff row;
      row.name = base.name;
      row.metric = metric;
      row.baseline = b;
      row.current = c;
      row.ratio = c / b;
      row.regression = c > b * (1.0 + opts.tolerance);
      report.rows.push_back(std::move(row));
    }
  }

  std::map<std::string_view, bool> base_names;
  for (const BenchRecord& r : baseline) base_names.emplace(r.name, true);
  for (const BenchRecord& r : current) {
    if (base_names.find(r.name) == base_names.end()) {
      report.added.push_back(r.name);
    }
  }
  return report;
}

}  // namespace capow::harness
