#include "capow/harness/telemetry_export.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "capow/abft/abft.hpp"
#include "capow/backend/backend.hpp"
#include "capow/blas/cost_model.hpp"
#include "capow/blas/microkernel.hpp"
#include "capow/blas/workspace.hpp"
#include "capow/dist/recovery.hpp"
#include "capow/fault/fault.hpp"
#include "capow/profile/ep_phases.hpp"
#include "capow/sim/executor.hpp"
#include "capow/telemetry/export.hpp"

namespace capow::harness {

namespace {

std::string run_label(Algorithm a, std::size_t n, unsigned threads) {
  return std::string(algorithm_name(a)) + " n=" + std::to_string(n) +
         " t=" + std::to_string(threads);
}

// The microkernel this process resolves for `a` under the current
// CAPOW_KERNEL setting — what capow::matmul() with default options runs.
// Deterministic for a given environment, so exports stay byte-stable
// across repeat runs.
const char* resolved_kernel_name(Algorithm a) {
  if (a == Algorithm::kOpenBlas) return blas::select_kernel().name;
  const auto env = blas::env_kernel_override();
  return env ? blas::find_kernel(*env)->name : "bots";
}

// Per-(algorithm, n) sweep of attribution profiles across the
// configured thread counts, with stable addresses for phase_ep_scaling.
std::vector<std::pair<unsigned, profile::Profile>> profile_sweep(
    const ExperimentConfig& cfg, Algorithm a, std::size_t n) {
  std::vector<std::pair<unsigned, profile::Profile>> sweep;
  sweep.reserve(cfg.thread_counts.size());
  for (unsigned threads : cfg.thread_counts) {
    sweep.emplace_back(threads,
                       run_attribution_profile(cfg, a, n, threads));
  }
  return sweep;
}

std::vector<profile::PhaseScaling> sweep_scaling(
    const std::vector<std::pair<unsigned, profile::Profile>>& sweep) {
  std::vector<std::pair<unsigned, const profile::Profile*>> refs;
  refs.reserve(sweep.size());
  for (const auto& [threads, prof] : sweep) {
    refs.emplace_back(threads, &prof);
  }
  return profile::phase_ep_scaling(refs, profile::Plane::kPackage);
}

}  // namespace

sim::WorkProfile work_profile_for(const ExperimentConfig& config,
                                  Algorithm a, std::size_t n,
                                  unsigned threads) {
  switch (a) {
    case Algorithm::kOpenBlas:
      return blas::blocked_gemm_profile(n, config.machine, threads);
    case Algorithm::kStrassen:
      return strassen::strassen_profile(n, config.machine, threads,
                                        config.strassen_options);
    case Algorithm::kCaps:
      return capsalg::caps_profile(n, config.machine, threads,
                                   config.caps_options);
  }
  return {};
}

void export_chrome_trace(ExperimentRunner& runner, std::ostream& os,
                         const TraceExportOptions& opts) {
  runner.run();
  const ExperimentConfig& cfg = runner.config();
  telemetry::ChromeTraceWriter writer;

  int pid = 0;
  for (Algorithm a : kAllAlgorithms) {
    for (std::size_t n : cfg.sizes) {
      for (unsigned threads : cfg.thread_counts) {
        ++pid;
        writer.set_process_name(pid, run_label(a, n, threads));
        writer.set_thread_name(pid, 0, "phases");

        const sim::WorkProfile profile =
            work_profile_for(cfg, a, n, threads);
        // Probe run to size the sampling step, then replay with
        // sampling on the same virtual timeline.
        const sim::RunResult probe =
            sim::simulate(cfg.machine, profile, threads);
        const std::size_t count = std::max<std::size_t>(
            opts.samples_per_run, 1);
        const double dt = probe.seconds > 0.0
                              ? probe.seconds / static_cast<double>(count)
                              : 1e-3;
        sim::RunResult run;
        const auto samples = sim::simulate_with_sampling(
            cfg.machine, profile, threads, dt, &run);

        writer.add_complete(pid, 0, run_label(a, n, threads), "run", 0.0,
                            run.seconds * 1e6);
        double t = 0.0;
        for (const auto& phase : run.phases) {
          writer.add_complete(
              pid, 0, phase.label, "phase", t * 1e6,
              phase.seconds * 1e6,
              {{"utilization", phase.utilization},
               {"active_cores", static_cast<double>(phase.active_cores)},
               {"package_w",
                phase.power_w[static_cast<std::size_t>(
                    machine::PowerPlane::kPackage)]}});
          t += phase.seconds;
        }
        for (const auto& s : samples) {
          writer.add_counter(pid, "power_w", s.t_seconds * 1e6,
                             {{"package", s.package_w},
                              {"pp0", s.pp0_w}});
        }
      }
    }
  }
  writer.write(os);
}

void export_jsonl(ExperimentRunner& runner, std::ostream& os) {
  const auto& records = runner.run();
  const ExperimentConfig& cfg = runner.config();
  for (const auto& r : records) {
    const sim::WorkProfile profile =
        work_profile_for(cfg, r.algorithm, r.n, r.threads);
    telemetry::JsonObject obj;
    obj.field("algorithm", algorithm_name(r.algorithm))
        .field("n", static_cast<std::uint64_t>(r.n))
        .field("threads", static_cast<std::uint64_t>(r.threads))
        .field("seconds", r.seconds)
        .field("package_watts", r.package_watts)
        .field("pp0_watts", r.pp0_watts)
        .field("package_energy_j", r.package_energy_j)
        .field("ep_w_per_s", r.ep)
        .field("status", to_string(r.status))
        .field("attempts", static_cast<std::uint64_t>(
                               r.attempts < 0 ? 0 : r.attempts))
        .field("flops", profile.total_flops())
        .field("dram_bytes", profile.total_dram_bytes())
        .field("syncs", static_cast<std::uint64_t>(profile.total_syncs()))
        .field("kernel", resolved_kernel_name(r.algorithm))
        .field("machine", cfg.machine.name)
        .field("backend",
               backend::backend_name(backend::resolve_backend(std::nullopt)));
    os << obj.str() << '\n';
  }
}

void export_metrics(ExperimentRunner& runner, std::ostream& os) {
  const auto& records = runner.run();
  const ExperimentConfig& cfg = runner.config();
  telemetry::MetricsRegistry reg;

  struct FamilySpec {
    const char* name;
    const char* help;
    const char* type;
  };
  const FamilySpec specs[] = {
      {"capow_run_seconds", "Simulated wall time of one run", "gauge"},
      {"capow_package_watts", "Average RAPL package power", "gauge"},
      {"capow_pp0_watts", "Average RAPL PP0 power", "gauge"},
      {"capow_package_energy_joules", "Package energy of one run",
       "gauge"},
      {"capow_ep_watts_per_second", "Energy-performance ratio (Eq 1)",
       "gauge"},
      {"capow_flops_total", "Cost-model floating point operations",
       "counter"},
      {"capow_dram_bytes_total", "Cost-model DRAM traffic", "counter"},
      {"capow_tasks_spawned_total", "Cost-model tasks spawned",
       "counter"},
      {"capow_syncs_total", "Cost-model synchronization events",
       "counter"},
  };

  for (const auto& spec : specs) {
    reg.family(spec.name, spec.help, spec.type);
    for (const auto& r : records) {
      const telemetry::MetricsRegistry::Labels labels = {
          {"algorithm", algorithm_name(r.algorithm)},
          {"n", std::to_string(r.n)},
          {"threads", std::to_string(r.threads)},
      };
      const std::string_view name = spec.name;
      double value = 0.0;
      if (name == "capow_run_seconds") {
        value = r.seconds;
      } else if (name == "capow_package_watts") {
        value = r.package_watts;
      } else if (name == "capow_pp0_watts") {
        value = r.pp0_watts;
      } else if (name == "capow_package_energy_joules") {
        value = r.package_energy_j;
      } else if (name == "capow_ep_watts_per_second") {
        value = r.ep;
      } else {
        const sim::WorkProfile profile =
            work_profile_for(cfg, r.algorithm, r.n, r.threads);
        if (name == "capow_flops_total") {
          value = profile.total_flops();
        } else if (name == "capow_dram_bytes_total") {
          value = profile.total_dram_bytes();
        } else if (name == "capow_tasks_spawned_total") {
          double spawns = 0.0;
          for (const auto& p : profile.phases) {
            spawns += static_cast<double>(p.spawn_events);
          }
          value = spawns;
        } else if (name == "capow_syncs_total") {
          value = static_cast<double>(profile.total_syncs());
        }
      }
      reg.sample(labels, value);
    }
  }

  // Trace-ring truncation: lifetime records shed to wraparound across
  // all thread buffers. Always exported (0 on clean runs, and the
  // simulated matrix never pushes into the rings, so scrapes stay
  // byte-stable) — truncation must be visible, not merely queryable.
  reg.family("capow_trace_dropped_events_total",
             "Span-tracer ring records lost to wraparound "
             "(process lifetime, all threads)",
             "counter");
  reg.sample({}, static_cast<double>(telemetry::total_dropped_events()));

  // Per-phase attributed energy (Eq 4 discretized): self joules of
  // every top-level phase per plane, plus the <untracked> conservation
  // bucket, for each configuration of the matrix.
  reg.family("capow_phase_energy_joules",
             "Energy attributed to each algorithm phase per power plane",
             "gauge");
  for (const auto& r : records) {
    const profile::Profile prof =
        run_attribution_profile(cfg, r.algorithm, r.n, r.threads);
    const auto phase_labels =
        [&](const std::string& phase,
            profile::Plane plane) -> telemetry::MetricsRegistry::Labels {
      return {{"phase", phase},
              {"plane", profile::plane_name(plane)},
              {"algorithm", algorithm_name(r.algorithm)},
              {"n", std::to_string(r.n)},
              {"threads", std::to_string(r.threads)}};
    };
    for (std::size_t p = 0; p < profile::kPlaneCount; ++p) {
      const auto plane = static_cast<profile::Plane>(p);
      for (const profile::ProfileNode& phase : prof.root.children) {
        reg.sample(phase_labels(phase.name, plane), phase.total_j[p]);
      }
      reg.sample(phase_labels("<untracked>", plane), prof.untracked_j[p]);
    }
  }

  // Per-phase EP scaling (Eq 5 applied to attributed phases). Needs the
  // 1-thread base; without one the family is declared but empty.
  const bool has_thread_base =
      std::find(cfg.thread_counts.begin(), cfg.thread_counts.end(), 1u) !=
      cfg.thread_counts.end();
  reg.family("capow_phase_ep_scaling",
             "Per-phase EP scaling S = EP_p / EP_1 (Eq 5)", "gauge");
  if (has_thread_base) {
    for (Algorithm a : kAllAlgorithms) {
      for (std::size_t n : cfg.sizes) {
        for (const profile::PhaseScaling& ps :
             sweep_scaling(profile_sweep(cfg, a, n))) {
          for (const core::ScalingPoint& pt : ps.series) {
            reg.sample({{"phase", ps.phase},
                        {"algorithm", algorithm_name(a)},
                        {"n", std::to_string(n)},
                        {"threads", std::to_string(pt.parallelism)}},
                       pt.s);
          }
        }
      }
    }
  }

  // Per-run recovery metadata: attempts consumed per configuration,
  // labeled with the final status.
  reg.family("capow_run_attempts_total",
             "Measurement attempts consumed per configuration", "counter");
  for (const auto& r : records) {
    reg.sample({{"algorithm", algorithm_name(r.algorithm)},
                {"n", std::to_string(r.n)},
                {"threads", std::to_string(r.threads)},
                {"status", to_string(r.status)}},
               static_cast<double>(r.attempts));
  }

  // RAPL measurement health, first-class: a degraded power read must be
  // visible on a dashboard, not buried in a run status. The gauge is
  // always exported (0 on clean runs, and the matrix is fixed, so clean
  // scrapes stay byte-stable); the wrap/retry counters follow the
  // conditional-family convention — they appear only once the readers
  // actually wrapped or retried, keeping pre-fault scrapes identical.
  reg.family("capow_rapl_degraded",
             "1 when the configuration's final attempt served stale RAPL "
             "values after exhausting its read retries",
             "gauge");
  std::uint64_t wraps_total = 0;
  std::uint64_t retries_total = 0;
  for (const auto& r : records) {
    reg.sample({{"algorithm", algorithm_name(r.algorithm)},
                {"n", std::to_string(r.n)},
                {"threads", std::to_string(r.threads)}},
               r.status == RunStatus::kDegraded ? 1.0 : 0.0);
    wraps_total += r.rapl_wraps;
    retries_total += r.rapl_retries;
  }
  if (wraps_total > 0) {
    reg.family("capow_rapl_wraps_total",
               "32-bit RAPL counter wraps folded by the readers",
               "counter");
    reg.sample({}, static_cast<double>(wraps_total));
  }
  if (retries_total > 0) {
    reg.family("capow_rapl_retries_total",
               "Transient RAPL read failures absorbed by the retry budget",
               "counter");
    reg.sample({}, static_cast<double>(retries_total));
  }

  // Which microkernel each algorithm resolves under the current
  // CAPOW_KERNEL setting. Info-style gauge (value 1, identity in the
  // label) — deterministic per environment, so clean scrapes stay
  // byte-stable across repeat runs.
  reg.family("capow_selected_kernel_info",
             "Resolved microkernel per algorithm (info gauge)", "gauge");
  for (Algorithm a : kAllAlgorithms) {
    reg.sample({{"algorithm", algorithm_name(a)},
                {"kernel", resolved_kernel_name(a)}},
               1.0);
  }

  // The backend this process resolves under the current CAPOW_BACKEND
  // setting. Info-style gauge, deterministic per environment — the
  // backend-matrix CI leg pins CAPOW_BACKEND and diffs scrapes.
  reg.family("capow_backend_info",
             "Resolved dispatch backend (info gauge)", "gauge");
  reg.sample({{"backend",
               backend::backend_name(backend::resolve_backend(std::nullopt))}},
             1.0);

  // Graceful-degradation dispatches: ops that fell back to the host
  // because the requested backend lacks them. Always exported (0 on
  // clean runs, deterministic for a fixed workload) — a degraded
  // placement must be visible, not merely queryable.
  reg.family("capow_backend_fallbacks_total",
             "Dispatches that fell back to the host CPU backend "
             "(process lifetime)",
             "counter");
  reg.sample({}, static_cast<double>(
                     backend::BackendRegistry::instance().fallbacks_total()));

  // Workspace-arena pooling counters from the process arena. Hit/miss
  // splits depend on worker interleaving, so — like the fault counters
  // below — the family is emitted only when the arena actually saw
  // traffic; scrapes from arena-free runs stay byte-identical.
  const blas::ArenaStats arena =
      blas::WorkspaceArena::process_arena().stats();
  if (arena.acquires > 0) {
    reg.family("capow_arena_acquires_total",
               "Workspace arena checkouts by pool outcome", "counter");
    reg.sample({{"result", "hit"}}, static_cast<double>(arena.hits));
    reg.sample({{"result", "miss"}}, static_cast<double>(arena.misses));
    reg.family("capow_arena_bytes",
               "Workspace arena bytes by state", "gauge");
    reg.sample({{"state", "allocated"}},
               static_cast<double>(arena.allocated_bytes));
    reg.sample({{"state", "pooled"}},
               static_cast<double>(arena.pooled_bytes));
    reg.sample({{"state", "peak_outstanding"}},
               static_cast<double>(arena.peak_outstanding_bytes));
  }

  // Fault/recovery event totals from the installed injector (absent
  // when fault injection is off, so clean scrapes are byte-stable).
  if (const fault::FaultInjector* inj = fault::FaultInjector::active()) {
    const fault::FaultCounters counters = inj->counters();
    reg.family("capow_fault_events_total",
               "Injected fault and recovery events by kind", "counter");
    for (std::size_t i = 0; i < fault::kEventCount; ++i) {
      reg.sample({{"kind", fault::event_name(static_cast<fault::Event>(i))}},
                 static_cast<double>(counters.by_event[i]));
    }
  }

  // Elastic-recovery totals (absent until a rank actually died, so
  // scrapes from failure-free runs stay byte-identical). Deterministic
  // for a fixed kill schedule — the CI chaos-matrix leg diffs them
  // across reruns.
  if (dist::rank_failures_total() > 0 || dist::recoveries_total() > 0) {
    reg.family("capow_dist_rank_failures_total",
               "Dist ranks that died fail-stop during elastic runs",
               "counter");
    reg.sample({}, static_cast<double>(dist::rank_failures_total()));
    reg.family("capow_dist_recoveries_total",
               "Elastic membership recoveries completed", "counter");
    reg.sample({}, static_cast<double>(dist::recoveries_total()));
  }

  // ABFT checksum/recovery totals (absent when no guarded multiply ran,
  // so pre-ABFT scrapes stay byte-identical). Deterministic for a fixed
  // fault seed — the CI fault-matrix leg diffs them across reruns.
  if (const abft::AbftCounters ac = abft::counters(); ac.total() > 0) {
    reg.family("capow_abft_events_total",
               "ABFT checksum verifications and recovery actions by kind",
               "counter");
    reg.sample({{"kind", "verifications"}},
               static_cast<double>(ac.verifications));
    reg.sample({{"kind", "detected"}}, static_cast<double>(ac.detected));
    reg.sample({{"kind", "corrected"}}, static_cast<double>(ac.corrected));
    reg.sample({{"kind", "recomputed"}}, static_cast<double>(ac.recomputed));
    reg.sample({{"kind", "retried"}}, static_cast<double>(ac.retried));
  }
  reg.write(os);
}

profile::Profile run_attribution_profile(const ExperimentConfig& config,
                                         Algorithm a, std::size_t n,
                                         unsigned threads,
                                         std::size_t samples_per_run) {
  const sim::WorkProfile wp = work_profile_for(config, a, n, threads);
  // Probe run to size the sampling step, then replay with sampling —
  // the same reconstruction export_chrome_trace() renders.
  const sim::RunResult probe = sim::simulate(config.machine, wp, threads);
  const std::size_t count = std::max<std::size_t>(samples_per_run, 1);
  const double dt =
      probe.seconds > 0.0 ? probe.seconds / static_cast<double>(count)
                          : 1e-3;
  sim::RunResult run;
  const std::vector<sim::PowerSample> samples =
      sim::simulate_with_sampling(config.machine, wp, threads, dt, &run);

  profile::AttributionInput in;
  std::uint64_t t = 0;
  for (const sim::PhaseResult& phase : run.phases) {
    const std::uint64_t end =
        t + static_cast<std::uint64_t>(std::llround(phase.seconds * 1e9));
    telemetry::TraceEvent ev;
    ev.tid = 0;
    ev.rec.name = telemetry::intern(phase.label);
    ev.rec.category = "phase";
    ev.rec.kind = telemetry::EventKind::kSpan;
    ev.rec.t_begin_ns = t;
    ev.rec.t_end_ns = end;
    in.events.push_back(ev);
    t = end;
  }
  std::vector<profile::TimelinePoint> points;
  points.reserve(samples.size());
  for (const sim::PowerSample& s : samples) {
    points.push_back(
        profile::TimelinePoint{s.t_seconds, s.package_w, s.pp0_w});
  }
  in.slices = profile::slices_from_samples(points);
  return profile::attribute(in);
}

void export_profile(ExperimentRunner& runner, std::ostream& os) {
  runner.run();
  const ExperimentConfig& cfg = runner.config();
  for (Algorithm a : kAllAlgorithms) {
    for (std::size_t n : cfg.sizes) {
      for (unsigned threads : cfg.thread_counts) {
        os << "== " << run_label(a, n, threads) << " ==\n";
        profile::write_text(run_attribution_profile(cfg, a, n, threads),
                            os);
        os << '\n';
      }
    }
  }
}

void export_flamegraph(ExperimentRunner& runner, std::ostream& os,
                       profile::FoldedWeight weight) {
  runner.run();
  const ExperimentConfig& cfg = runner.config();
  for (Algorithm a : kAllAlgorithms) {
    for (std::size_t n : cfg.sizes) {
      for (unsigned threads : cfg.thread_counts) {
        profile::write_folded(run_attribution_profile(cfg, a, n, threads),
                              os, weight, profile::Plane::kPackage,
                              run_label(a, n, threads));
      }
    }
  }
}

void export_ep_phases(ExperimentRunner& runner, std::ostream& os) {
  runner.run();
  const ExperimentConfig& cfg = runner.config();
  for (Algorithm a : kAllAlgorithms) {
    for (std::size_t n : cfg.sizes) {
      const auto sweep = profile_sweep(cfg, a, n);
      for (const profile::PhaseScaling& ps : sweep_scaling(sweep)) {
        for (const core::ScalingPoint& pt : ps.series) {
          telemetry::JsonObject obj;
          obj.field("algorithm", algorithm_name(a))
              .field("n", static_cast<std::uint64_t>(n))
              .field("phase", ps.phase)
              .field("threads", static_cast<std::uint64_t>(pt.parallelism))
              .field("ep_w_per_s", pt.ep)
              .field("s", pt.s)
              .field("class", core::to_string(ps.cls))
              .field("superlinear", ps.superlinear());
          os << obj.str() << '\n';
        }
      }
    }
  }
}

}  // namespace capow::harness
