// Measured-mode experiments: run the real algorithms (laptop-scale
// sizes), capture their instrumented cost profiles, and project them on
// the machine model — then compare against the analytic cost models.
//
// This closes the loop the test suite opens per-module: the analytic
// profiles drive the paper-scale benches; the measured profiles prove
// on every run that the analytic ones describe the code that actually
// executes (identical flops/traffic, matching projected times within a
// modeling band).
#pragma once

#include <cstddef>

#include "capow/harness/experiment.hpp"
#include "capow/sim/executor.hpp"

namespace capow::harness {

/// One real instrumented execution projected on the machine model.
struct MeasuredRecord {
  Algorithm algorithm{};
  std::size_t n = 0;
  unsigned threads = 0;
  double measured_flops = 0.0;       ///< instrumented flop count
  double measured_bytes = 0.0;       ///< instrumented logical traffic
  sim::RunResult projected;          ///< measured profile -> simulator
  sim::RunResult analytic;           ///< analytic profile -> simulator
  bool numerically_verified = false; ///< result checked vs reference

  /// Projected-time agreement: measured-profile seconds over
  /// analytic-profile seconds.
  double time_ratio() const noexcept {
    return analytic.seconds > 0.0 ? projected.seconds / analytic.seconds
                                  : 0.0;
  }
};

/// Runs algorithm `a` for real at dimension n with a `threads`-worker
/// pool (0 => serial), instrumented; verifies the numerics against the
/// reference multiplier; projects both the measured and the analytic
/// profiles on `machine`. Throws std::invalid_argument for n == 0.
///
/// Note: the measured profile treats all logical traffic as DRAM-level
/// (it has no per-level classification), so its projected time is an
/// upper bound that approaches the analytic projection as problems
/// leave the caches.
MeasuredRecord run_measured(Algorithm a, std::size_t n, unsigned threads,
                            const machine::MachineSpec& machine);

}  // namespace capow::harness
