// Experiment harness: the paper's Section VI evaluation methodology.
//
// The paper runs all three algorithms over sizes {512, 1024, 2048, 4096}
// and thread counts {1, 2, 3, 4} — 48 result sets — measuring runtime and
// PAPI/RAPL package+PP0 power per run, with a 60 s quiesce sleep between
// tests. ExperimentRunner reproduces that matrix end to end: each
// configuration's work profile (from the algorithm cost models) is
// executed by the simulator, which deposits energy into a simulated MSR
// device; measurement happens through the PAPI-style EventSet exactly as
// the paper's test driver reads RAPL; the EP model then derives Tables
// II-IV and Figures 3-7.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "capow/capsalg/cost_model.hpp"
#include "capow/core/algorithms.hpp"
#include "capow/core/ep_model.hpp"
#include "capow/machine/machine.hpp"
#include "capow/strassen/cost_model.hpp"

namespace capow::harness {

/// The paper's algorithms — an alias of the shared core registry enum,
/// so the harness matrix, the capow::matmul facade, and capow-report all
/// agree on ids and names by construction.
using Algorithm = core::AlgorithmId;
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kOpenBlas, Algorithm::kStrassen, Algorithm::kCaps};

/// Display name ("OpenBLAS", "Strassen", "CAPS") — the registry's.
using core::algorithm_name;

/// How a configuration's measurement concluded. Order is precedence
/// (failed > degraded > corrected > retried > ok): a run that both
/// retried and finished degraded reports kDegraded.
enum class RunStatus {
  kOk = 0,     ///< first attempt, clean measurement
  kRetried,    ///< succeeded after >= 1 failed attempt
  kCorrected,  ///< succeeded, but ABFT detected (and repaired) silent
               ///< corruption during the surviving attempt
  kDegraded,   ///< succeeded, but RAPL reads degraded (stale samples)
  kRecovered,  ///< succeeded, but one or more dist ranks died and the
               ///< elastic runtime recovered the run online
  kFailed,     ///< every attempt failed; metrics are zero, error is set
};

/// Status name ("ok", "retried", "corrected", "degraded", "recovered",
/// "failed"). Checkpoints store these names, not the enum values, so
/// inserting kRecovered mid-enum does not invalidate old checkpoints.
const char* to_string(RunStatus s) noexcept;

/// Full experiment-matrix configuration.
struct ExperimentConfig {
  std::vector<std::size_t> sizes{512, 1024, 2048, 4096};
  std::vector<unsigned> thread_counts{1, 2, 3, 4};
  machine::MachineSpec machine = machine::haswell_e3_1225();
  /// Quiesce sleep between tests (the paper uses 60 s); modeled as
  /// static-power idle time deposited into the MSR device.
  double quiesce_seconds = 60.0;
  strassen::StrassenCostOptions strassen_options{};
  capsalg::CapsCostOptions caps_options{};

  // --- fault-tolerance policy -------------------------------------
  /// Attempts per configuration before it is recorded as kFailed.
  int max_run_attempts = 3;
  /// Per-attempt watchdog budget; <= 0 disables the watchdog (attempts
  /// then run inline on the calling thread).
  double run_timeout_seconds = 0.0;
  /// Each retry multiplies the quiesce sleep by this factor (machine
  /// settle time after a failure — the measurement analogue of
  /// exponential backoff).
  double retry_quiesce_factor = 2.0;
  /// JSONL checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Replay completed configurations from checkpoint_path and run only
  /// the missing/failed ones.
  bool resume = false;
};

/// One of the 48 result sets.
struct ResultRecord {
  Algorithm algorithm{};
  std::size_t n = 0;
  unsigned threads = 0;
  double seconds = 0.0;
  double package_watts = 0.0;  ///< RAPL PACKAGE energy / wall time
  double pp0_watts = 0.0;      ///< RAPL PP0 energy / wall time
  double package_energy_j = 0.0;
  double ep = 0.0;  ///< Eq (1): package_watts / seconds
  RunStatus status = RunStatus::kOk;
  int attempts = 1;   ///< attempts consumed (1 = clean first try)
  std::string error;  ///< last failure message; non-empty iff kFailed
  /// Physical dist ranks that died during the run (kRecovered only;
  /// empty otherwise). Checkpoint lines carry these fields only when
  /// set, keeping pre-recovery checkpoints byte-compatible.
  std::vector<int> failed_ranks;
  /// Wall time the elastic runtime spent in recovery transitions.
  /// Diagnostic: excluded from deterministic run-to-run comparison.
  std::uint64_t recovery_ns = 0;
  /// RAPL measurement health for this record's final attempt: 32-bit
  /// counter wraps the reader folded and transient-read retries it
  /// absorbed. Nonzero retries with status below kDegraded mean the
  /// retry budget hid every injected rapl.fail. Checkpoint lines carry
  /// these only when nonzero (byte-compatible with older checkpoints).
  std::uint64_t rapl_wraps = 0;
  std::uint64_t rapl_retries = 0;
};

/// Runs the evaluation matrix and answers the paper's table/figure
/// queries.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentConfig config);

  /// Executes every (algorithm, size, threads) configuration (cached;
  /// repeated calls are free). Returns all records.
  const std::vector<ResultRecord>& run();

  const ExperimentConfig& config() const noexcept { return config_; }

  /// Record for one configuration; throws std::out_of_range when the
  /// configuration is not part of the matrix.
  const ResultRecord& find(Algorithm a, std::size_t n,
                           unsigned threads) const;

  /// Table II: average slowdown of `a` vs OpenBLAS at size n, averaged
  /// over thread counts. kFailed configurations are excluded; NaN when
  /// every thread count is excluded.
  double average_slowdown(Algorithm a, std::size_t n) const;

  /// Table III: average power (package watts) of `a` at `threads`,
  /// averaged over problem sizes (kFailed excluded; NaN when empty).
  double average_power(Algorithm a, unsigned threads) const;

  /// Table IV: average EP of `a` at size n, averaged over thread counts
  /// (kFailed excluded; NaN when empty).
  double average_ep(Algorithm a, std::size_t n) const;

  /// Fig 7: the Eq (5) scaling series of `a` at size n across the
  /// configured thread counts. kFailed configurations are dropped from
  /// the series; empty when the 1-thread base itself failed.
  std::vector<core::ScalingPoint> ep_scaling(Algorithm a,
                                             std::size_t n) const;

  /// Fig 1-style classification of a configuration's EP scaling.
  core::ScalingClass scaling_class(Algorithm a, std::size_t n) const;

  /// Truncated/corrupt JSONL lines skipped while loading the resume
  /// checkpoint (0 until run(), or when resume is off). Surfaced so
  /// capow-report can tell the user their checkpoint was damaged
  /// instead of silently re-running the lost configurations.
  std::size_t skipped_checkpoint_lines() const noexcept {
    return skipped_checkpoint_lines_;
  }

 private:
  /// One configuration with the full fault-tolerance envelope: bounded
  /// retries with quiesce backoff, optional watchdog, RunStatus
  /// classification. Never throws for injected faults — a kFailed
  /// record (zeroed metrics + error) is data, not an exception.
  ResultRecord run_one(Algorithm a, std::size_t n, unsigned threads,
                       std::uint64_t run_index);

  ExperimentConfig config_;
  std::vector<ResultRecord> results_;
  std::size_t skipped_checkpoint_lines_ = 0;
  bool ran_ = false;
};

}  // namespace capow::harness
