// Eq (8) communication audits: measured comm matrices vs lower bounds.
//
// The scientific deliverable behind the dist instrumentation: run a
// distributed algorithm at a fixed (algorithm, n, P) point with the
// CommStats collector on, take the merged P x P matrix, and join it
// with core::comm_bounds — the Strassen bound (Eq 8) and its classical
// counterpart — for the machine's per-core fast memory M. The verdict
// is the ratio of the busiest rank's measured traffic (in words) to the
// algorithm's own bound; a correct implementation sits at >= 1.0, and
// how far above quantifies the communication headroom the paper's
// energy argument is about.
//
// Audits are persisted as "kind":"comm_audit" JSONL lines in the same
// checkpoint files the experiment harness uses (the experiment loader
// skips them), with every table-visible quantity serialized exactly
// (%.17g doubles, integer counters) so a --resume replay reproduces the
// report bit for bit without re-running the collectives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "capow/dist/comm_stats.hpp"
#include "capow/harness/table.hpp"
#include "capow/machine/machine.hpp"
#include "capow/telemetry/export.hpp"
#include "capow/telemetry/tracer.hpp"

namespace capow::harness {

/// One audit point. `algorithm` is "summa" (square sqrt(P) x sqrt(P)
/// grid) or "dist_caps" (round-robin CAPS distribution).
struct CommAuditPoint {
  std::string algorithm;
  std::size_t n = 0;
  int ranks = 1;
};

/// The default audit matrix: SUMMA and dist-CAPS at two (n, P) points
/// each — the capow-report --comm coverage the acceptance bar names.
std::vector<CommAuditPoint> default_comm_audit_points();

struct CommAuditOptions {
  /// Machine whose per-core fast memory provides the M term of Eq (8).
  machine::MachineSpec machine;
  /// Collect a rank-lane span trace of the audited run (live runs only;
  /// traces are derived evidence and are not persisted in checkpoints).
  bool collect_trace = false;

  CommAuditOptions();
};

/// One completed audit: the measured matrix plus the bound join.
struct CommAuditRecord {
  std::string algorithm;
  std::size_t n = 0;
  int ranks = 1;
  double m_words = 0.0;  ///< fast memory per core, in doubles

  dist::CommMatrix matrix;

  double strassen_bound_words = 0.0;   ///< Eq (8)
  double classical_bound_words = 0.0;  ///< cubic counterpart
  /// max over ranks of (sent + received) bytes / 8 — the per-processor
  /// traffic term the bounds constrain.
  double measured_max_rank_words = 0.0;
  /// measured_max_rank_words over the algorithm's own bound ("strassen"
  /// for dist_caps, "classical" for summa).
  double ratio_to_bound = 0.0;
  std::string bound_kind;

  /// Empty when the collective completed; otherwise the CommError that
  /// poisoned the world. The matrix still holds everything counted up
  /// to the failure (World::run merges before rethrowing), so partial
  /// audits are reported, not dropped.
  std::string error;
  bool completed() const noexcept { return error.empty(); }
};

/// Runs the collective at `point` with deterministic operands and the
/// CommStats collector enabled, and joins the result with the bounds.
/// When opts.collect_trace is set and `events` is non-null, the span
/// trace of the run (rank-stamped) is returned through it along with
/// the session origin timestamp. Throws std::invalid_argument for an
/// unknown algorithm or an unsupported (n, P) combination.
CommAuditRecord run_comm_audit(const CommAuditPoint& point,
                               const CommAuditOptions& opts,
                               std::vector<telemetry::TraceEvent>* events =
                                   nullptr,
                               std::uint64_t* trace_start_ns = nullptr);

/// One checkpoint JSONL line ("kind":"comm_audit", no trailing newline).
std::string comm_audit_line(const CommAuditRecord& r);

/// Parses a comm_audit line; false for anything else (including torn
/// lines and experiment ResultRecord lines).
bool parse_comm_audit_line(const std::string& line, CommAuditRecord& out);

/// Loads every comm_audit record from a checkpoint file (missing file
/// => empty). Later records for the same (algorithm, n, ranks) win.
std::vector<CommAuditRecord> load_comm_audits(const std::string& path);

/// The P x P payload-byte matrix of one audit (rows = sender).
TextTable comm_matrix_table(const CommAuditRecord& r);

/// The measured-vs-bound verdict table across audits (one row each).
TextTable comm_bound_table(const std::vector<CommAuditRecord>& records);

/// Per-rank critical-path summary of one audit: active wall time split
/// into compute and blocked (recv wait, barrier skew, send backoff)
/// segments; the busiest rank — the chain the run cannot complete
/// faster than — is flagged.
TextTable comm_critical_path_table(const CommAuditRecord& r);

/// Appends the capow_comm_* Prometheus families for `records`. Only
/// seed-deterministic quantities are exported (bytes, messages,
/// retransmits, corruptions, bound ratios — never wall-clock waits), so
/// two runs with the same fault seed scrape identically: the CI
/// determinism gate diffs exactly this output.
void export_comm_metrics(telemetry::MetricsRegistry& registry,
                         const std::vector<CommAuditRecord>& records);

/// Appends one audited run to `writer` as process `pid` with one lane
/// per rank (tid = rank) and flow arrows linking each matched send/recv
/// span pair (joined on the per-channel sequence number both spans
/// carry). Events without a rank stamp are dropped; `base_ns` rebases
/// timestamps (Tracer::start_ns()).
void append_comm_trace(telemetry::ChromeTraceWriter& writer,
                       const std::string& process_name, int pid,
                       const std::vector<telemetry::TraceEvent>& events,
                       int ranks, std::uint64_t base_ns);

/// Single-run convenience over append_comm_trace (pid 0): writes a
/// complete Chrome trace JSON document.
void export_comm_trace(const std::vector<telemetry::TraceEvent>& events,
                       int ranks, std::uint64_t base_ns, std::ostream& os);

}  // namespace capow::harness
