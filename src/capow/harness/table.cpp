#include "capow/harness/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace capow::harness {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: no headers");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument(
        "TextTable: row has " + std::to_string(cells.size()) +
        " cells, expected " + std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      if (c == 0) {
        out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        out << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::csv() const {
  const auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << quote(row[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string fmt_si(double value, int precision) {
  static constexpr struct {
    double scale;
    const char* suffix;
  } kUnits[] = {{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
                {1.0, ""},   {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}};
  const double mag = std::fabs(value);
  if (mag == 0.0) return fmt(0.0, precision);
  for (const auto& u : kUnits) {
    if (mag >= u.scale || (u.scale == 1e-9)) {
      return fmt(value / u.scale, precision) + u.suffix;
    }
  }
  return fmt(value, precision);
}

}  // namespace capow::harness
