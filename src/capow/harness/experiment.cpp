#include "capow/harness/experiment.hpp"

#include <stdexcept>
#include <string>

#include "capow/harness/telemetry_export.hpp"
#include "capow/rapl/papi.hpp"
#include "capow/sim/executor.hpp"

namespace capow::harness {

const char* algorithm_name(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kOpenBlas:
      return "OpenBLAS";
    case Algorithm::kStrassen:
      return "Strassen";
    case Algorithm::kCaps:
      return "CAPS";
  }
  return "?";
}

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(std::move(config)) {
  config_.machine.validate();
  if (config_.sizes.empty() || config_.thread_counts.empty()) {
    throw std::invalid_argument(
        "ExperimentRunner: empty size or thread list");
  }
}

const std::vector<ResultRecord>& ExperimentRunner::run() {
  if (ran_) return results_;
  results_.reserve(3 * config_.sizes.size() * config_.thread_counts.size());
  for (Algorithm a : kAllAlgorithms) {
    for (std::size_t n : config_.sizes) {
      for (unsigned t : config_.thread_counts) {
        results_.push_back(run_one(a, n, t));
      }
    }
  }
  ran_ = true;
  return results_;
}

ResultRecord ExperimentRunner::run_one(Algorithm a, std::size_t n,
                                       unsigned threads) {
  const sim::WorkProfile profile =
      work_profile_for(config_, a, n, threads);

  // Full measurement path: quiesce, latch RAPL baselines through the
  // PAPI-style event set, run, read the deltas — the sequence the
  // paper's instrumented test driver executes.
  rapl::SimulatedMsrDevice msr;
  if (config_.quiesce_seconds > 0.0) {
    sim::simulate_idle(config_.machine, config_.quiesce_seconds, msr);
  }
  rapl::EventSet events(msr);
  events.add_event(rapl::kEventPackageEnergy);
  events.add_event(rapl::kEventPp0Energy);
  events.start();
  const sim::RunResult run = sim::simulate(config_.machine, profile,
                                           threads, &msr);
  const auto nj = events.stop();

  ResultRecord r;
  r.algorithm = a;
  r.n = n;
  r.threads = threads;
  r.seconds = run.seconds;
  r.package_energy_j = static_cast<double>(nj[0]) * 1e-9;
  r.package_watts = r.seconds > 0.0 ? r.package_energy_j / r.seconds : 0.0;
  r.pp0_watts =
      r.seconds > 0.0 ? static_cast<double>(nj[1]) * 1e-9 / r.seconds : 0.0;
  r.ep = core::energy_performance(r.package_watts, r.seconds);
  return r;
}

const ResultRecord& ExperimentRunner::find(Algorithm a, std::size_t n,
                                           unsigned threads) const {
  for (const auto& r : results_) {
    if (r.algorithm == a && r.n == n && r.threads == threads) return r;
  }
  throw std::out_of_range(
      "ExperimentRunner::find: no record for " +
      std::string(algorithm_name(a)) + " n=" + std::to_string(n) +
      " t=" + std::to_string(threads) + " (did you call run()?)");
}

double ExperimentRunner::average_slowdown(Algorithm a, std::size_t n) const {
  double sum = 0.0;
  for (unsigned t : config_.thread_counts) {
    sum += find(a, n, t).seconds /
           find(Algorithm::kOpenBlas, n, t).seconds;
  }
  return sum / static_cast<double>(config_.thread_counts.size());
}

double ExperimentRunner::average_power(Algorithm a, unsigned threads) const {
  double sum = 0.0;
  for (std::size_t n : config_.sizes) {
    sum += find(a, n, threads).package_watts;
  }
  return sum / static_cast<double>(config_.sizes.size());
}

double ExperimentRunner::average_ep(Algorithm a, std::size_t n) const {
  double sum = 0.0;
  for (unsigned t : config_.thread_counts) {
    sum += find(a, n, t).ep;
  }
  return sum / static_cast<double>(config_.thread_counts.size());
}

std::vector<core::ScalingPoint> ExperimentRunner::ep_scaling(
    Algorithm a, std::size_t n) const {
  std::vector<std::pair<unsigned, double>> samples;
  samples.reserve(config_.thread_counts.size());
  for (unsigned t : config_.thread_counts) {
    samples.emplace_back(t, find(a, n, t).ep);
  }
  return core::scaling_series(samples);
}

core::ScalingClass ExperimentRunner::scaling_class(Algorithm a,
                                                   std::size_t n) const {
  const auto series = ep_scaling(a, n);
  return core::classify_scaling(series);
}

}  // namespace capow::harness
