#include "capow/harness/experiment.hpp"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "capow/abft/abft.hpp"
#include "capow/fault/fault.hpp"
#include "capow/harness/checkpoint.hpp"
#include "capow/harness/telemetry_export.hpp"
#include "capow/rapl/papi.hpp"
#include "capow/sim/executor.hpp"
#include "capow/telemetry/telemetry.hpp"

namespace capow::harness {

const char* to_string(RunStatus s) noexcept {
  switch (s) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kRetried:
      return "retried";
    case RunStatus::kCorrected:
      return "corrected";
    case RunStatus::kDegraded:
      return "degraded";
    case RunStatus::kRecovered:
      return "recovered";
    case RunStatus::kFailed:
      return "failed";
  }
  return "?";
}

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(std::move(config)) {
  config_.machine.validate();
  if (config_.sizes.empty() || config_.thread_counts.empty()) {
    throw std::invalid_argument(
        "ExperimentRunner: empty size or thread list");
  }
}

const std::vector<ResultRecord>& ExperimentRunner::run() {
  if (ran_) return results_;

  std::vector<ResultRecord> resumed;
  if (config_.resume && !config_.checkpoint_path.empty()) {
    resumed =
        load_checkpoint(config_.checkpoint_path, &skipped_checkpoint_lines_);
  }
  CheckpointWriter writer;
  if (!config_.checkpoint_path.empty()) {
    // Resume appends (replayed records are already on disk); a fresh
    // run truncates any stale checkpoint.
    writer = CheckpointWriter(config_.checkpoint_path, config_.resume);
  }

  const auto replayable = [&resumed](Algorithm a, std::size_t n,
                                     unsigned t) -> const ResultRecord* {
    for (const auto& r : resumed) {
      if (r.algorithm == a && r.n == n && r.threads == t &&
          r.status != RunStatus::kFailed) {
        return &r;
      }
    }
    return nullptr;
  };

  results_.reserve(3 * config_.sizes.size() * config_.thread_counts.size());
  // run_index follows fixed matrix order so each configuration draws
  // the same fault schedule whether reached fresh or via --resume.
  std::uint64_t run_index = 0;
  for (Algorithm a : kAllAlgorithms) {
    for (std::size_t n : config_.sizes) {
      for (unsigned t : config_.thread_counts) {
        if (const ResultRecord* prior = replayable(a, n, t)) {
          results_.push_back(*prior);
        } else {
          results_.push_back(run_one(a, n, t, run_index));
          writer.append(results_.back());
        }
        ++run_index;
      }
    }
  }
  ran_ = true;
  return results_;
}

namespace {

/// Shared state between a watchdogged attempt and its supervisor. The
/// attempt thread is detached on timeout, so everything it touches
/// lives in this shared block, never in the supervisor's frame.
struct AttemptSlot {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  ResultRecord record;
  bool degraded = false;
  std::exception_ptr error;
  /// Set by the supervisor on timeout. The attempt checks it after the
  /// injected stall and bails out before touching the fault injector
  /// again, so an abandoned attempt cannot perturb the (deterministic)
  /// fault schedule of the retry that replaces it.
  std::atomic<bool> abandoned{false};
};

/// One measurement attempt: quiesce, latch RAPL baselines through the
/// PAPI-style event set, run, read the deltas — the sequence the
/// paper's instrumented test driver executes. Self-contained (config by
/// value, no runner state) so it can outlive an abandoning supervisor.
ResultRecord measure_one(const ExperimentConfig& config, Algorithm a,
                         std::size_t n, unsigned threads,
                         double quiesce_seconds, bool& degraded) {
  const sim::WorkProfile profile = work_profile_for(config, a, n, threads);

  rapl::SimulatedMsrDevice msr;
  if (quiesce_seconds > 0.0) {
    sim::simulate_idle(config.machine, quiesce_seconds, msr);
  }

  fault::FaultInjector* inj = fault::FaultInjector::active();
  if (inj != nullptr && inj->plan().rapl_wrap) {
    // Bias every plane's 32-bit counter to just below wrap so the run
    // measures across a wraparound — the ~262144 J blind spot a naive
    // reader would fold into a bogus delta.
    constexpr std::uint64_t kWrap = 1ull << 32;
    constexpr std::uint64_t kHeadroomCounts = 1000;
    for (auto plane :
         {machine::PowerPlane::kPackage, machine::PowerPlane::kPP0,
          machine::PowerPlane::kDram}) {
      const auto counts = static_cast<std::uint64_t>(
          msr.total_joules(plane) / msr.joules_per_count());
      msr.deposit(plane,
                  static_cast<double>(kWrap - kHeadroomCounts -
                                      counts % kWrap) *
                      msr.joules_per_count());
    }
  }

  rapl::EventSet events(msr);
  events.add_event(rapl::kEventPackageEnergy);
  events.add_event(rapl::kEventPp0Energy);
  events.start();
  const sim::RunResult run =
      sim::simulate(config.machine, profile, threads, &msr);
  const auto nj = events.stop();
  degraded = events.degraded();

  ResultRecord r;
  r.rapl_wraps = events.wraps();
  r.rapl_retries = events.retries();
  r.algorithm = a;
  r.n = n;
  r.threads = threads;
  r.seconds = run.seconds;
  r.package_energy_j = static_cast<double>(nj[0]) * 1e-9;
  r.package_watts = r.seconds > 0.0 ? r.package_energy_j / r.seconds : 0.0;
  r.pp0_watts =
      r.seconds > 0.0 ? static_cast<double>(nj[1]) * 1e-9 / r.seconds : 0.0;
  r.ep = core::energy_performance(r.package_watts, r.seconds);
  return r;
}

/// Runs one attempt under the watchdog (or inline when disabled).
/// Throws on attempt failure or timeout; returns via `slot` otherwise.
void run_attempt(const ExperimentConfig& config, Algorithm a, std::size_t n,
                 unsigned threads, double quiesce_seconds,
                 const std::shared_ptr<AttemptSlot>& slot) {
  const auto body = [config, a, n, threads, quiesce_seconds, slot] {
    try {
      fault::FaultInjector* inj = fault::FaultInjector::active();
      if (inj != nullptr && inj->fire(fault::Site::kRunStall, 0)) {
        CAPOW_TINSTANT("fault.run.stall", "harness");
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            inj->plan().run_stall_ms));
      }
      if (slot->abandoned.load(std::memory_order_acquire)) return;
      if (inj != nullptr && inj->fire(fault::Site::kRunFail, 0)) {
        CAPOW_TINSTANT("fault.run.fail", "harness");
        throw std::runtime_error("injected run failure (run.fail)");
      }
      bool degraded = false;
      ResultRecord rec =
          measure_one(config, a, n, threads, quiesce_seconds, degraded);
      std::lock_guard lock(slot->mutex);
      slot->record = std::move(rec);
      slot->degraded = degraded;
      slot->done = true;
      slot->cv.notify_all();
    } catch (...) {
      std::lock_guard lock(slot->mutex);
      slot->error = std::current_exception();
      slot->done = true;
      slot->cv.notify_all();
    }
  };

  if (config.run_timeout_seconds <= 0.0) {
    body();
  } else {
    std::thread(body).detach();
    std::unique_lock lock(slot->mutex);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(config.run_timeout_seconds));
    if (!slot->cv.wait_until(lock, deadline, [&] { return slot->done; })) {
      slot->abandoned.store(true, std::memory_order_release);
      if (auto* inj = fault::FaultInjector::active()) {
        inj->record(fault::Event::kRunTimeout);
      }
      CAPOW_TINSTANT("fault.run.timeout", "harness");
      throw std::runtime_error(
          "run watchdog: attempt exceeded " +
          std::to_string(config.run_timeout_seconds) + "s");
    }
  }
  std::lock_guard lock(slot->mutex);
  if (slot->error) std::rethrow_exception(slot->error);
}

}  // namespace

ResultRecord ExperimentRunner::run_one(Algorithm a, std::size_t n,
                                       unsigned threads,
                                       std::uint64_t run_index) {
  fault::FaultInjector* inj = fault::FaultInjector::active();
  const int max_attempts =
      config_.max_run_attempts < 1 ? 1 : config_.max_run_attempts;
  std::string last_error = "unknown failure";

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (inj != nullptr) {
      // Namespace every fault draw by (matrix position, attempt): the
      // schedule is a function of where we are, not how we got here —
      // the property that makes --resume reproduce the original run.
      inj->begin_run(
          fault::key(run_index, static_cast<std::uint64_t>(attempt)));
    }
    auto slot = std::make_shared<AttemptSlot>();
    // Retries quiesce longer (machine settle time after a failure).
    const double quiesce =
        config_.quiesce_seconds *
        std::pow(config_.retry_quiesce_factor < 1.0
                     ? 1.0
                     : config_.retry_quiesce_factor,
                 attempt - 1);
    // A detection during the surviving attempt marks the record
    // kCorrected: the numbers are right (ABFT repaired them) but the
    // run was not clean, and downstream should be able to tell.
    const std::uint64_t abft_detected_before = abft::counters().detected;
    try {
      run_attempt(config_, a, n, threads, quiesce, slot);
      ResultRecord rec;
      bool degraded = false;
      {
        std::lock_guard lock(slot->mutex);
        rec = std::move(slot->record);
        degraded = slot->degraded;
      }
      rec.attempts = attempt;
      if (degraded) {
        rec.status = RunStatus::kDegraded;
        if (inj != nullptr) inj->record(fault::Event::kRunDegraded);
      } else if (abft::counters().detected > abft_detected_before) {
        rec.status = RunStatus::kCorrected;
      } else if (attempt > 1) {
        rec.status = RunStatus::kRetried;
      } else {
        rec.status = RunStatus::kOk;
      }
      return rec;
    } catch (const std::exception& e) {
      last_error = e.what();
      if (attempt < max_attempts && inj != nullptr) {
        inj->record(fault::Event::kRunRetry);
      }
    }
  }

  if (inj != nullptr) inj->record(fault::Event::kRunFailure);
  ResultRecord rec;
  rec.algorithm = a;
  rec.n = n;
  rec.threads = threads;
  rec.status = RunStatus::kFailed;
  rec.attempts = max_attempts;
  rec.error = last_error;
  return rec;
}

const ResultRecord& ExperimentRunner::find(Algorithm a, std::size_t n,
                                           unsigned threads) const {
  for (const auto& r : results_) {
    if (r.algorithm == a && r.n == n && r.threads == threads) return r;
  }
  throw std::out_of_range(
      "ExperimentRunner::find: no record for " +
      std::string(algorithm_name(a)) + " n=" + std::to_string(n) +
      " t=" + std::to_string(threads) + " (did you call run()?)");
}

namespace {
/// Failed configurations carry zeroed metrics; averaging them in would
/// corrupt the table, so the aggregation queries skip them. An average
/// with no surviving samples is NaN (rendered as "nan"/"-nan" — visibly
/// not a number, never a plausible-looking zero).
constexpr double kNoSamples = std::numeric_limits<double>::quiet_NaN();
}  // namespace

double ExperimentRunner::average_slowdown(Algorithm a, std::size_t n) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (unsigned t : config_.thread_counts) {
    const ResultRecord& mine = find(a, n, t);
    const ResultRecord& base = find(Algorithm::kOpenBlas, n, t);
    if (mine.status == RunStatus::kFailed ||
        base.status == RunStatus::kFailed || base.seconds <= 0.0) {
      continue;
    }
    sum += mine.seconds / base.seconds;
    ++count;
  }
  if (count == 0) return kNoSamples;
  return sum / static_cast<double>(count);
}

double ExperimentRunner::average_power(Algorithm a, unsigned threads) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t n : config_.sizes) {
    const ResultRecord& r = find(a, n, threads);
    if (r.status == RunStatus::kFailed) continue;
    sum += r.package_watts;
    ++count;
  }
  if (count == 0) return kNoSamples;
  return sum / static_cast<double>(count);
}

double ExperimentRunner::average_ep(Algorithm a, std::size_t n) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (unsigned t : config_.thread_counts) {
    const ResultRecord& r = find(a, n, t);
    if (r.status == RunStatus::kFailed) continue;
    sum += r.ep;
    ++count;
  }
  if (count == 0) return kNoSamples;
  return sum / static_cast<double>(count);
}

std::vector<core::ScalingPoint> ExperimentRunner::ep_scaling(
    Algorithm a, std::size_t n) const {
  std::vector<std::pair<unsigned, double>> samples;
  samples.reserve(config_.thread_counts.size());
  bool has_base = false;
  for (unsigned t : config_.thread_counts) {
    const ResultRecord& r = find(a, n, t);
    if (r.status == RunStatus::kFailed || r.ep <= 0.0) continue;
    if (t == 1) has_base = true;
    samples.emplace_back(t, r.ep);
  }
  // Eq (5) normalizes to the 1-thread EP; without it (the base run
  // failed) there is no series to report.
  if (!has_base) return {};
  return core::scaling_series(samples);
}

core::ScalingClass ExperimentRunner::scaling_class(Algorithm a,
                                                   std::size_t n) const {
  const auto series = ep_scaling(a, n);
  return core::classify_scaling(series);
}

}  // namespace capow::harness
