#include "capow/harness/backend_study.hpp"

#include <map>
#include <string>
#include <tuple>

#include "capow/blas/cost_model.hpp"
#include "capow/capsalg/cost_model.hpp"
#include "capow/core/crossover.hpp"
#include "capow/core/ep_model.hpp"
#include "capow/machine/machine.hpp"
#include "capow/sim/executor.hpp"
#include "capow/strassen/cost_model.hpp"

namespace capow::harness {

namespace {

sim::WorkProfile profile_for(core::AlgorithmId alg, std::size_t n,
                             const machine::MachineSpec& spec,
                             unsigned threads) {
  switch (alg) {
    case core::AlgorithmId::kOpenBlas:
      return blas::blocked_gemm_profile(n, spec, threads);
    case core::AlgorithmId::kStrassen:
      return strassen::strassen_profile(n, spec, threads);
    case core::AlgorithmId::kCaps:
      return capsalg::caps_profile(n, spec, threads);
  }
  return blas::blocked_gemm_profile(n, spec, threads);
}

}  // namespace

std::vector<BackendStudyRow> run_backend_study(
    const BackendStudyConfig& cfg) {
  std::vector<BackendStudyRow> rows;
  backend::BackendRegistry& registry = backend::BackendRegistry::instance();
  constexpr core::AlgorithmId kAlgorithms[] = {core::AlgorithmId::kOpenBlas,
                                               core::AlgorithmId::kStrassen,
                                               core::AlgorithmId::kCaps};
  // EP_1 per (requested backend, algorithm, n) — the Eq (5) base. Keyed
  // on the *requested* backend so a fallback row scales against its own
  // group's 1-thread measurement (also a fallback, same device).
  std::map<std::tuple<int, int, std::size_t>, double> ep1;

  for (backend::Backend* b : registry.all()) {
    if (b == nullptr) continue;
    for (core::AlgorithmId alg : kAlgorithms) {
      // Real dispatch: an accelerator without Strassen/CAPS falls back
      // to the host here, moving capow_backend_fallbacks_total exactly
      // as an execution would.
      const backend::DispatchDecision dec = registry.dispatch(b->id(), alg);
      const machine::MachineSpec& spec = dec.chosen->device_spec();
      const machine::PowerPlane plane = dec.chosen->power_plane();
      for (std::size_t n : cfg.sizes) {
        for (unsigned p : cfg.threads) {
          // The device exposes at most core_count-way parallelism.
          const unsigned threads =
              p <= spec.core_count ? p : spec.core_count;
          const sim::RunResult run =
              sim::simulate(spec, profile_for(alg, n, spec, threads),
                            threads);
          BackendStudyRow row;
          row.requested = b->id();
          row.chosen = dec.chosen->id();
          row.fell_back = dec.fell_back;
          row.algorithm = alg;
          row.n = n;
          row.threads = threads;
          row.seconds = run.seconds;
          row.avg_power_w = run.avg_power_w(plane);
          row.ep = core::energy_performance(row.avg_power_w, row.seconds);
          const auto key = std::make_tuple(static_cast<int>(b->id()),
                                           static_cast<int>(alg), n);
          if (threads == 1) ep1[key] = row.ep;
          const auto base = ep1.find(key);
          row.scaling = base != ep1.end() && base->second > 0.0
                            ? core::scaling_ratio(row.ep, base->second)
                            : 0.0;
          rows.push_back(row);
        }
      }
    }
  }
  return rows;
}

std::vector<BackendCrossoverRow> backend_crossover_rows() {
  std::vector<BackendCrossoverRow> rows;
  for (backend::Backend* b : backend::BackendRegistry::instance().all()) {
    if (b == nullptr) continue;
    const machine::MachineSpec& spec = b->device_spec();
    BackendCrossoverRow row;
    row.id = b->id();
    row.peak_gflops = spec.peak_flops() / 1e9;
    row.gemm_efficiency = b->gemm_efficiency();
    row.y_mflops = spec.peak_flops() * row.gemm_efficiency / 1e6;
    row.z_mbs = spec.memory.bandwidth_bytes_per_s / 1e6;
    row.crossover_n =
        core::strassen_crossover_dimension(spec, row.gemm_efficiency);
    row.fits_in_memory =
        core::crossover_fits_in_memory(spec, row.crossover_n);
    rows.push_back(row);
  }
  return rows;
}

TextTable backend_ep_table(const std::vector<BackendStudyRow>& rows) {
  TextTable t({"backend", "algorithm", "dispatch", "n", "p", "time_s",
               "avg_w", "ep_w_per_s", "s_ep"});
  for (const BackendStudyRow& r : rows) {
    t.add_row({backend::backend_name(r.requested),
               core::algorithm_name(r.algorithm),
               r.fell_back ? std::string("fallback:") +
                                 backend::backend_name(r.chosen)
                           : std::string("native"),
               std::to_string(r.n), std::to_string(r.threads),
               fmt(r.seconds, 4), fmt(r.avg_power_w, 2), fmt(r.ep, 2),
               r.scaling > 0.0 ? fmt(r.scaling, 2) : "-"});
  }
  return t;
}

TextTable backend_crossover_table(
    const std::vector<BackendCrossoverRow>& rows) {
  TextTable t({"backend", "peak_gflops", "gemm_eff", "y_mflops", "z_mbs",
               "eq9_crossover_n", "fits_in_memory"});
  for (const BackendCrossoverRow& r : rows) {
    t.add_row({backend::backend_name(r.id), fmt(r.peak_gflops, 1),
               fmt(r.gemm_efficiency, 2), fmt(r.y_mflops, 0),
               fmt(r.z_mbs, 0), fmt(r.crossover_n, 0),
               r.fits_in_memory ? "yes" : "no"});
  }
  return t;
}

}  // namespace capow::harness
