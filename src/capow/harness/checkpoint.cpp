#include "capow/harness/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace capow::harness {

namespace {

RunStatus status_from_name(const std::string& name, bool& ok) {
  ok = true;
  if (name == "ok") return RunStatus::kOk;
  if (name == "retried") return RunStatus::kRetried;
  if (name == "corrected") return RunStatus::kCorrected;
  if (name == "degraded") return RunStatus::kDegraded;
  if (name == "recovered") return RunStatus::kRecovered;
  if (name == "failed") return RunStatus::kFailed;
  ok = false;
  return RunStatus::kOk;
}

/// %.17g: shortest representation that round-trips an IEEE double, so a
/// resumed table is bit-identical to the uninterrupted one. (The
/// telemetry JSON exporters use %.6g — fine for dashboards, lossy for
/// resume.)
std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'u':
        if (i + 4 < s.size()) {
          out += static_cast<char>(
              std::strtol(s.substr(i + 1, 4).c_str(), nullptr, 16));
          i += 4;
        }
        break;
      default:
        out += s[i];
    }
  }
  return out;
}

/// Extracts the raw value text of `"key":` from a single-line JSON
/// object; false when the key is missing (torn line).
bool find_value(const std::string& line, const std::string& key,
                std::string& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t pos = at + needle.size();
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size()) return false;
  if (line[pos] == '"') {
    // String value: scan to the next unescaped quote.
    std::size_t end = pos + 1;
    while (end < line.size()) {
      if (line[end] == '\\') {
        end += 2;
        continue;
      }
      if (line[end] == '"') break;
      ++end;
    }
    if (end >= line.size()) return false;
    out = line.substr(pos + 1, end - pos - 1);
    return true;
  }
  std::size_t end = pos;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  if (end == pos) return false;
  out = line.substr(pos, end - pos);
  return true;
}

bool parse_double(const std::string& tok, double& out) {
  char* end = nullptr;
  out = std::strtod(tok.c_str(), &end);
  return !tok.empty() && end == tok.c_str() + tok.size();
}

bool parse_u64(const std::string& tok, unsigned long long& out) {
  char* end = nullptr;
  out = std::strtoull(tok.c_str(), &end, 10);
  return !tok.empty() && end == tok.c_str() + tok.size();
}

}  // namespace

std::optional<Algorithm> algorithm_from_name(const std::string& name) {
  const core::AlgorithmInfo* info = core::find_algorithm(name);
  if (info == nullptr) return std::nullopt;
  return info->id;
}

std::string checkpoint_line(const ResultRecord& r) {
  std::string out = "{";
  out += "\"algorithm\":\"" + std::string(algorithm_name(r.algorithm)) + "\"";
  out += ",\"n\":" + std::to_string(r.n);
  out += ",\"threads\":" + std::to_string(r.threads);
  out += ",\"seconds\":" + json_double(r.seconds);
  out += ",\"package_watts\":" + json_double(r.package_watts);
  out += ",\"pp0_watts\":" + json_double(r.pp0_watts);
  out += ",\"package_energy_j\":" + json_double(r.package_energy_j);
  out += ",\"ep\":" + json_double(r.ep);
  out += ",\"status\":\"" + std::string(to_string(r.status)) + "\"";
  out += ",\"attempts\":" + std::to_string(r.attempts);
  out += ",\"error\":\"" + json_escape(r.error) + "\"";
  // Recovery fields appear only when set, so runs that never exercised
  // elastic recovery emit lines byte-identical to the pre-recovery
  // format (resume flows diff checkpoint bytes).
  if (!r.failed_ranks.empty()) {
    out += ",\"failed_ranks\":[";
    for (std::size_t i = 0; i < r.failed_ranks.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(r.failed_ranks[i]);
    }
    out += "]";
  }
  if (r.recovery_ns > 0) {
    out += ",\"recovery_ns\":" + std::to_string(r.recovery_ns);
  }
  // RAPL measurement-health fields follow the same only-when-set rule.
  if (r.rapl_wraps > 0) {
    out += ",\"rapl_wraps\":" + std::to_string(r.rapl_wraps);
  }
  if (r.rapl_retries > 0) {
    out += ",\"rapl_retries\":" + std::to_string(r.rapl_retries);
  }
  out += "}";
  return out;
}

std::optional<ResultRecord> parse_checkpoint_line(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}') {
    return std::nullopt;
  }
  ResultRecord r;
  std::string tok;

  if (!find_value(line, "algorithm", tok)) return std::nullopt;
  const auto algo = algorithm_from_name(tok);
  if (!algo) return std::nullopt;
  r.algorithm = *algo;

  unsigned long long u = 0;
  if (!find_value(line, "n", tok) || !parse_u64(tok, u)) return std::nullopt;
  r.n = static_cast<std::size_t>(u);
  if (!find_value(line, "threads", tok) || !parse_u64(tok, u)) {
    return std::nullopt;
  }
  r.threads = static_cast<unsigned>(u);

  const struct {
    const char* key;
    double* dst;
  } doubles[] = {
      {"seconds", &r.seconds},
      {"package_watts", &r.package_watts},
      {"pp0_watts", &r.pp0_watts},
      {"package_energy_j", &r.package_energy_j},
      {"ep", &r.ep},
  };
  for (const auto& [dkey, dst] : doubles) {
    if (!find_value(line, dkey, tok) || !parse_double(tok, *dst)) {
      return std::nullopt;
    }
  }

  if (!find_value(line, "status", tok)) return std::nullopt;
  bool ok = false;
  r.status = status_from_name(tok, ok);
  if (!ok) return std::nullopt;

  if (!find_value(line, "attempts", tok) || !parse_u64(tok, u)) {
    return std::nullopt;
  }
  r.attempts = static_cast<int>(u);

  if (find_value(line, "error", tok)) r.error = json_unescape(tok);

  // Optional recovery fields (absent on pre-recovery lines).
  // find_value's scalar scan stops at commas, so the rank array is
  // extracted by bracket instead.
  const std::string ranks_needle = "\"failed_ranks\":[";
  const std::size_t ranks_at = line.find(ranks_needle);
  if (ranks_at != std::string::npos) {
    std::size_t pos = ranks_at + ranks_needle.size();
    const std::size_t end = line.find(']', pos);
    if (end == std::string::npos) return std::nullopt;
    while (pos < end) {
      std::size_t stop = line.find(',', pos);
      if (stop == std::string::npos || stop > end) stop = end;
      if (!parse_u64(line.substr(pos, stop - pos), u)) return std::nullopt;
      r.failed_ranks.push_back(static_cast<int>(u));
      pos = stop + 1;
    }
  }
  if (find_value(line, "recovery_ns", tok)) {
    if (!parse_u64(tok, u)) return std::nullopt;
    r.recovery_ns = static_cast<std::uint64_t>(u);
  }
  if (find_value(line, "rapl_wraps", tok)) {
    if (!parse_u64(tok, u)) return std::nullopt;
    r.rapl_wraps = static_cast<std::uint64_t>(u);
  }
  if (find_value(line, "rapl_retries", tok)) {
    if (!parse_u64(tok, u)) return std::nullopt;
    r.rapl_retries = static_cast<std::uint64_t>(u);
  }
  return r;
}

std::vector<ResultRecord> load_checkpoint(const std::string& path,
                                          std::size_t* skipped) {
  std::vector<ResultRecord> out;
  if (skipped != nullptr) *skipped = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  std::string line;
  int c = 0;
  const auto flush_line = [&] {
    if (line.empty()) return;
    // Checkpoint files are shared with the comm-audit records
    // (comm_audit.hpp); those lines are a different kind, not damage.
    if (line.find("\"kind\":\"comm_audit\"") != std::string::npos) {
      line.clear();
      return;
    }
    if (auto rec = parse_checkpoint_line(line)) {
      // Last record for a configuration wins (a resumed run may have
      // re-run a previously failed configuration).
      bool replaced = false;
      for (auto& existing : out) {
        if (existing.algorithm == rec->algorithm && existing.n == rec->n &&
            existing.threads == rec->threads) {
          existing = *rec;
          replaced = true;
          break;
        }
      }
      if (!replaced) out.push_back(*rec);
    } else if (skipped != nullptr) {
      ++*skipped;
    }
    line.clear();
  };
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      flush_line();
    } else {
      line += static_cast<char>(c);
    }
  }
  flush_line();  // a final line without '\n' is torn but may parse
  std::fclose(f);
  return out;
}

CheckpointWriter::CheckpointWriter(const std::string& path, bool append)
    : file_(std::fopen(path.c_str(), append ? "ab" : "wb")) {
  if (file_ == nullptr) {
    throw std::runtime_error("checkpoint: cannot open " + path);
  }
}

CheckpointWriter::~CheckpointWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

CheckpointWriter::CheckpointWriter(CheckpointWriter&& other) noexcept
    : file_(other.file_) {
  other.file_ = nullptr;
}

CheckpointWriter& CheckpointWriter::operator=(
    CheckpointWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

void CheckpointWriter::append(const ResultRecord& r) {
  if (file_ == nullptr) return;
  const std::string line = checkpoint_line(r) + "\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

}  // namespace capow::harness
