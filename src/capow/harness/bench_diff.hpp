// Bench-JSONL comparison: the repo's perf regression gate.
//
// Every bench binary emits one JSON line per microbenchmark run (see
// bench/bench_common.hpp). diff_bench_records() compares two such
// files — a committed baseline (bench/baselines/) or any two captured
// runs — metric by metric with a fractional noise band, so CI can turn
// "the numbers moved" into a nonzero exit only when they moved beyond
// tolerance in the slow direction. Parsing is deliberately tolerant:
// non-JSON lines and unknown fields are skipped (and counted), because
// bench output files are append-mode and may interleave several
// binaries' records.
#pragma once

#include <cstddef>
#include <istream>
#include <string>
#include <string_view>
#include <vector>

namespace capow::harness {

/// One benchmark's numeric metrics, keyed by JSONL field name
/// ("real_time", "cpu_time", user counters...). Repeated records with
/// the same name merge by taking the minimum per metric — best-of-reps
/// is the standard noise reducer for timing data.
struct BenchRecord {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;

  /// Metric value, or NaN when absent.
  double metric(std::string_view key) const noexcept;
};

/// Parses bench JSONL: flat objects with a string "name" field and
/// numeric metric fields. Lines that fail to parse or lack "name" are
/// skipped and counted into *malformed (when non-null). Records are
/// returned in first-appearance order.
std::vector<BenchRecord> parse_bench_jsonl(std::istream& is,
                                           std::size_t* malformed = nullptr);

struct BenchDiffOptions {
  /// Fractional noise band: current > baseline * (1 + tolerance) on a
  /// compared metric is a regression (all compared metrics are
  /// smaller-is-better times).
  double tolerance = 0.10;
  /// Which metrics to compare; metrics absent from either side are
  /// skipped, as are non-positive baselines.
  std::vector<std::string> metrics{"real_time", "cpu_time"};
};

/// One compared (benchmark, metric) pair.
struct BenchMetricDiff {
  std::string name;
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;  ///< current / baseline
  bool regression = false;
};

struct BenchDiffReport {
  std::vector<BenchMetricDiff> rows;      ///< baseline order
  std::vector<std::string> missing;       ///< in baseline, not current
  std::vector<std::string> added;         ///< in current, not baseline

  std::size_t regressions() const noexcept;
  bool has_regression() const noexcept { return regressions() > 0; }
};

/// Compares `current` against `baseline` under `opts`.
BenchDiffReport diff_bench_records(const std::vector<BenchRecord>& baseline,
                                   const std::vector<BenchRecord>& current,
                                   const BenchDiffOptions& opts = {});

}  // namespace capow::harness
