// Structured export of the experiment matrix: Chrome traces, JSONL run
// records, and Prometheus-style metrics.
//
// The ExperimentRunner executes *simulated* runs — no wall-clock time
// passes — so these exporters reconstruct each run's timeline from the
// simulator's own outputs: RunResult.phases gives the span layout and
// simulate_with_sampling() gives the time-aligned package/PP0 power
// samples, exactly the data behind the paper's Figs 4-6. Each (algorithm,
// n, threads) configuration becomes one Chrome trace process whose rows
// are the phase spans and whose counter track is the power timeline.
//
// Live instrumented runs (run_measured, tests, benches) use the span
// tracer in capow/telemetry directly; both paths share the writers in
// capow/telemetry/export.hpp.
#pragma once

#include <cstddef>
#include <ostream>

#include "capow/harness/experiment.hpp"
#include "capow/profile/attribution.hpp"
#include "capow/sim/cost_profile.hpp"

namespace capow::harness {

/// The cost-model work profile the runner executes for one
/// configuration (the switch formerly private to run_one()).
sim::WorkProfile work_profile_for(const ExperimentConfig& config,
                                  Algorithm a, std::size_t n,
                                  unsigned threads);

struct TraceExportOptions {
  /// Power samples per run; the sampling step is run_seconds / count.
  std::size_t samples_per_run = 64;
};

/// Writes a Chrome trace-event JSON file covering every configuration of
/// the runner's matrix: one process per run (named e.g. "OpenBLAS n=512
/// t=2"), phase spans on the main row, and a package/PP0 counter track
/// sampled on the same virtual timeline. Runs the matrix if needed.
void export_chrome_trace(ExperimentRunner& runner, std::ostream& os,
                         const TraceExportOptions& opts = {});

/// Writes one JSON line per ResultRecord (machine-readable analogue of
/// the report tables). Runs the matrix if needed.
void export_jsonl(ExperimentRunner& runner, std::ostream& os);

/// Writes a Prometheus text exposition of the matrix: runtime, power,
/// energy, EP, the cost-model totals (flops, DRAM bytes, tasks,
/// syncs) labeled by {algorithm, n, threads}, trace-ring truncation,
/// and the attributed per-phase energy / EP-scaling families. Runs the
/// matrix if needed.
void export_metrics(ExperimentRunner& runner, std::ostream& os);

/// Attribution profile of one configuration: the simulator's phase
/// layout becomes the span stream (one top-level span per phase, tid
/// 0), and simulate_with_sampling()'s power trace becomes the plane
/// timeline — the same reconstruction export_chrome_trace() renders,
/// joined by profile::attribute(). Deterministic for a fixed config.
profile::Profile run_attribution_profile(const ExperimentConfig& config,
                                         Algorithm a, std::size_t n,
                                         unsigned threads,
                                         std::size_t samples_per_run = 64);

/// Writes the per-configuration attribution profiles as text: one
/// "== <run label> ==" section per run with the conservation ledger
/// and the self/total span table (capow-report --profile).
void export_profile(ExperimentRunner& runner, std::ostream& os);

/// Writes the whole matrix as collapsed stacks, one run label as the
/// root frame of each configuration's stacks — load directly in
/// flamegraph.pl or speedscope (capow-report --flamegraph).
void export_flamegraph(ExperimentRunner& runner, std::ostream& os,
                       profile::FoldedWeight weight);

/// Writes per-phase EP scaling as JSONL: one record per (algorithm, n,
/// phase, threads) point with ep, s = EP_p/EP_1, and the phase's
/// Fig 7-style classification (capow-report --ep-phases). Requires a
/// 1-thread base in the configured thread counts; phases without one
/// are omitted.
void export_ep_phases(ExperimentRunner& runner, std::ostream& os);

}  // namespace capow::harness
