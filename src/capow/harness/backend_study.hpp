// The heterogeneous EP study: the paper's energy-performance model
// evaluated per device class.
//
// The paper measures EP = EAvg/T (Eq 1) and S = EP_p/EP_1 (Eq 5) on one
// homogeneous Haswell box. The backend seam makes the same study run
// *across* registered device classes: for every (backend, algorithm)
// pair the op is dispatched through BackendRegistry (so an accelerator
// that lacks Strassen/CAPS genuinely falls back, pumping the telemetry
// counter), the algorithm's closed-form cost profile is built against
// the device that actually runs it, and sim::simulate derives time and
// per-plane power from that device's machine model — with EP read on
// the backend's own power plane (host: PACKAGE, the paper's
// measurement; sim_accel: PP0, the modeled compute-die rail).
//
// Two tables come out, surfaced by `capow-report --backends`:
//   * per-backend EP rows (time, avg W on the device plane, EP, S vs
//     the same backend's 1-thread base, and how the op was dispatched),
//   * per-device Eq (9) crossover rows — where each machine balance
//     puts the Strassen/blocked break-even, and whether that problem
//     even fits in the device's memory (the paper's platform: no; the
//     bandwidth-rich accelerator: comfortably).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "capow/backend/backend.hpp"
#include "capow/core/algorithms.hpp"
#include "capow/harness/table.hpp"

namespace capow::harness {

/// Sweep configuration for the heterogeneous study.
struct BackendStudyConfig {
  std::vector<std::size_t> sizes = {512, 1024};
  std::vector<unsigned> threads = {1, 2, 4};
};

/// One simulated (backend, algorithm, n, threads) measurement.
struct BackendStudyRow {
  backend::BackendId requested{};  ///< the backend the row targeted
  backend::BackendId chosen{};     ///< where dispatch actually placed it
  bool fell_back = false;
  core::AlgorithmId algorithm{};
  std::size_t n = 0;
  unsigned threads = 0;
  double seconds = 0.0;
  double avg_power_w = 0.0;  ///< on the chosen backend's power plane
  double ep = 0.0;           ///< Eq (1) on that plane
  double scaling = 0.0;      ///< Eq (5) vs the 1-thread row (0 if absent)
};

/// Eq (9) evaluated for one device class.
struct BackendCrossoverRow {
  backend::BackendId id{};
  double peak_gflops = 0.0;
  double gemm_efficiency = 0.0;
  double y_mflops = 0.0;  ///< attained rate: peak * efficiency
  double z_mbs = 0.0;     ///< memory bandwidth
  double crossover_n = 0.0;
  bool fits_in_memory = false;
};

/// Runs the sweep over every registered backend x algorithm. Rows are
/// ordered backend-major, then algorithm, size, threads — so each
/// (backend, algorithm, n) group's 1-thread row precedes the rows whose
/// S it bases. Dispatch goes through BackendRegistry::dispatch, so
/// fallbacks are counted exactly as a real run's would be.
std::vector<BackendStudyRow> run_backend_study(const BackendStudyConfig& cfg);

/// Eq (9) rows for every registered backend.
std::vector<BackendCrossoverRow> backend_crossover_rows();

/// Formats the study as a capow-report Table
/// (backend | algorithm | dispatch | n | p | time | avg W | EP | S).
TextTable backend_ep_table(const std::vector<BackendStudyRow>& rows);

/// Formats the crossover comparison
/// (backend | peak GF/s | eff | y | z | Eq9 n | fits).
TextTable backend_crossover_table(
    const std::vector<BackendCrossoverRow>& rows);

}  // namespace capow::harness
