// Experiment checkpointing: append-only JSONL of completed runs.
//
// A 48-configuration matrix with 60 s quiesce sleeps takes the better
// part of an hour on real hardware; losing the whole table to one crash
// at configuration 47 is the failure mode this file removes. Each
// completed ResultRecord is appended (and flushed) as one JSON object
// per line, so a killed experiment leaves a valid prefix — at worst one
// torn final line, which the loader skips. Resuming re-runs only the
// configurations that are missing or previously kFailed; successful
// records are replayed verbatim, which keeps resumed tables bit
// identical to an uninterrupted run (doubles round-trip via %.17g).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "capow/harness/experiment.hpp"

namespace capow::harness {

/// Parses a display name ("OpenBLAS", "Strassen", "CAPS") back to the
/// enum; nullopt for anything else.
std::optional<Algorithm> algorithm_from_name(const std::string& name);

/// One checkpoint line (no trailing newline) for `r`.
std::string checkpoint_line(const ResultRecord& r);

/// Parses one checkpoint line; nullopt for torn/corrupt lines.
std::optional<ResultRecord> parse_checkpoint_line(const std::string& line);

/// Loads every parseable record from a checkpoint file. Missing file =>
/// empty. Torn or corrupt lines are skipped, not fatal; when `skipped`
/// is non-null it receives how many non-empty lines failed to parse (so
/// the caller can report a damaged checkpoint instead of silently
/// re-running the lost work). When a configuration appears more than
/// once (a resumed run re-ran it) the last record wins.
std::vector<ResultRecord> load_checkpoint(const std::string& path,
                                          std::size_t* skipped = nullptr);

/// Append-mode checkpoint writer. Default-constructed writers are
/// inactive no-ops so call sites need no branching.
class CheckpointWriter {
 public:
  CheckpointWriter() = default;
  /// Opens `path` for writing; `append` preserves existing content
  /// (resume), otherwise the file is truncated. Throws
  /// std::runtime_error when the file cannot be opened.
  CheckpointWriter(const std::string& path, bool append);
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;
  CheckpointWriter(CheckpointWriter&& other) noexcept;
  CheckpointWriter& operator=(CheckpointWriter&& other) noexcept;

  bool active() const noexcept { return file_ != nullptr; }

  /// Appends one record and flushes, so the line survives a crash
  /// immediately after the run it records.
  void append(const ResultRecord& r);

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace capow::harness
