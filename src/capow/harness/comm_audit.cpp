#include "capow/harness/comm_audit.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "capow/abft/abft.hpp"
#include "capow/core/comm_bounds.hpp"
#include "capow/dist/comm.hpp"
#include "capow/dist/dist_caps.hpp"
#include "capow/dist/summa.hpp"
#include "capow/linalg/random.hpp"

namespace capow::harness {

namespace {

constexpr std::uint64_t kSeedA = 80;
constexpr std::uint64_t kSeedB = 81;

/// %.17g, matching the experiment checkpoint's round-trip guarantee.
std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool find_value(const std::string& line, const std::string& key,
                std::string& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t pos = at + needle.size();
  if (pos >= line.size()) return false;
  if (line[pos] == '"') {
    std::size_t end = pos + 1;
    while (end < line.size()) {
      if (line[end] == '\\') {
        end += 2;
        continue;
      }
      if (line[end] == '"') break;
      ++end;
    }
    if (end >= line.size()) return false;
    out = line.substr(pos + 1, end - pos - 1);
    return true;
  }
  std::size_t end = pos;
  while (end < line.size() && line[end] != ',' && line[end] != '}' &&
         line[end] != ']') {
    ++end;
  }
  if (end == pos) return false;
  out = line.substr(pos, end - pos);
  return true;
}

bool parse_double(const std::string& tok, double& out) {
  char* end = nullptr;
  out = std::strtod(tok.c_str(), &end);
  return !tok.empty() && end == tok.c_str() + tok.size();
}

bool parse_u64(const std::string& tok, unsigned long long& out) {
  char* end = nullptr;
  out = std::strtoull(tok.c_str(), &end, 10);
  return !tok.empty() && end == tok.c_str() + tok.size();
}

std::string json_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u':
        if (i + 4 < s.size()) {
          out += static_cast<char>(
              std::strtol(s.substr(i + 1, 4).c_str(), nullptr, 16));
          i += 4;
        }
        break;
      default: out += s[i];
    }
  }
  return out;
}

/// Parses `"key":[[u,u,...],[...],...]` into rows of unsigned values.
bool parse_u64_rows(const std::string& line, const std::string& key,
                    std::vector<std::vector<std::uint64_t>>& rows) {
  rows.clear();
  const std::string needle = "\"" + key + "\":[";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  while (pos < line.size() && line[pos] != ']') {
    if (line[pos] == ',') {
      ++pos;
      continue;
    }
    if (line[pos] != '[') return false;
    ++pos;
    std::vector<std::uint64_t> row;
    std::string tok;
    for (; pos < line.size(); ++pos) {
      const char c = line[pos];
      if (c >= '0' && c <= '9') {
        tok += c;
        continue;
      }
      if (c == ',' || c == ']') {
        unsigned long long u = 0;
        if (!parse_u64(tok, u)) return false;
        row.push_back(static_cast<std::uint64_t>(u));
        tok.clear();
        if (c == ']') {
          ++pos;
          break;
        }
        continue;
      }
      return false;
    }
    rows.push_back(std::move(row));
  }
  return pos < line.size() && line[pos] == ']';
}

bool arg_is(const telemetry::EventRecord& rec, int slot, const char* name) {
  return rec.arg_name[slot] != nullptr &&
         std::strcmp(rec.arg_name[slot], name) == 0;
}

/// Flow id of one delivered message: the (src, dst) channel index
/// scaled past any realistic per-channel sequence count.
std::uint64_t flow_id(int src, int dst, int ranks, std::uint64_t seq) {
  const std::uint64_t channel =
      static_cast<std::uint64_t>(src) * static_cast<std::uint64_t>(ranks) +
      static_cast<std::uint64_t>(dst);
  return (channel << 40) | (seq & ((std::uint64_t{1} << 40) - 1));
}

std::string si_bytes(std::uint64_t bytes) {
  return bytes == 0 ? "." : std::to_string(bytes);
}

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

CommAuditOptions::CommAuditOptions() : machine(machine::haswell_e3_1225()) {}

std::vector<CommAuditPoint> default_comm_audit_points() {
  return {
      {"summa", 64, 4},
      {"summa", 128, 16},
      // dist-CAPS computes locally below its distribute threshold (64),
      // so its audit points start one doubling above it.
      {"dist_caps", 128, 4},
      {"dist_caps", 256, 7},
  };
}

CommAuditRecord run_comm_audit(const CommAuditPoint& point,
                               const CommAuditOptions& opts,
                               std::vector<telemetry::TraceEvent>* events,
                               std::uint64_t* trace_start_ns) {
  if (point.n == 0 || point.ranks < 1) {
    throw std::invalid_argument("comm audit: bad n or ranks");
  }
  const bool is_summa = point.algorithm == "summa";
  const bool is_caps = point.algorithm == "dist_caps";
  if (!is_summa && !is_caps) {
    throw std::invalid_argument("comm audit: unknown algorithm '" +
                                point.algorithm + "'");
  }
  dist::GridSpec grid;
  if (is_summa) {
    const int side = static_cast<int>(std::lround(
        std::sqrt(static_cast<double>(point.ranks))));
    if (side * side != point.ranks ||
        point.n % static_cast<std::size_t>(side) != 0) {
      throw std::invalid_argument(
          "comm audit: summa needs a square rank count whose side divides n");
    }
    grid = dist::GridSpec{side, side, 1};
  }

  // Deterministic operands; ABFT explicitly off so the wire carries raw
  // payloads and the byte matrix is canonical regardless of CAPOW_ABFT.
  linalg::Matrix a = linalg::random_matrix(point.n, point.n, kSeedA);
  linalg::Matrix b = linalg::random_matrix(point.n, point.n, kSeedB);
  linalg::Matrix c(point.n, point.n);
  abft::AbftConfig abft_cfg;
  abft_cfg.mode = abft::AbftMode::kOff;

  dist::World world(point.ranks);
  const auto body = [&](dist::Communicator& comm) {
    linalg::Matrix empty;
    const bool root = comm.rank() == 0;
    if (is_summa) {
      dist::summa_multiply(comm, grid, root ? a.view() : empty.view(),
                           root ? b.view() : empty.view(),
                           root ? c.view() : empty.view(), abft_cfg);
    } else {
      dist::dist_caps_multiply(comm, root ? a.view() : empty.view(),
                               root ? b.view() : empty.view(),
                               root ? c.view() : empty.view());
    }
  };

  // A CommError (injected loss budget exhausted, poisoned world) ends
  // the collective but not the audit: the teardown merge keeps every
  // counter written before the failure, and the record carries the
  // error so the report can flag the partial run.
  std::string error;
  const auto guarded_run = [&] {
    try {
      world.run(body);
    } catch (const dist::CommError& e) {
      error = e.what();
    }
  };
  if (opts.collect_trace && events != nullptr) {
    telemetry::Tracer tracer;
    telemetry::TracingScope scope(tracer);
    guarded_run();
    *events = tracer.collect();
    if (trace_start_ns != nullptr) *trace_start_ns = tracer.start_ns();
  } else {
    guarded_run();
  }

  CommAuditRecord r;
  r.error = std::move(error);
  r.algorithm = point.algorithm;
  r.n = point.n;
  r.ranks = point.ranks;
  r.matrix = world.comm_stats();
  r.m_words = core::fast_memory_words_per_core(opts.machine);
  r.strassen_bound_words = core::caps_communication_bound_words(
      point.n, static_cast<unsigned>(point.ranks), r.m_words);
  r.classical_bound_words = core::classical_communication_bound_words(
      point.n, static_cast<unsigned>(point.ranks), r.m_words);
  r.measured_max_rank_words =
      static_cast<double>(r.matrix.max_rank_bytes()) / sizeof(double);
  r.bound_kind = is_caps ? "strassen" : "classical";
  const double bound =
      is_caps ? r.strassen_bound_words : r.classical_bound_words;
  r.ratio_to_bound = bound > 0.0 ? r.measured_max_rank_words / bound : 0.0;
  return r;
}

std::string comm_audit_line(const CommAuditRecord& r) {
  std::string out = "{\"kind\":\"comm_audit\"";
  out += ",\"algorithm\":\"" + r.algorithm + "\"";
  out += ",\"n\":" + std::to_string(r.n);
  out += ",\"ranks\":" + std::to_string(r.ranks);
  out += ",\"m_words\":" + json_double(r.m_words);
  out += ",\"strassen_bound_words\":" + json_double(r.strassen_bound_words);
  out += ",\"classical_bound_words\":" + json_double(r.classical_bound_words);
  out += ",\"measured_max_rank_words\":" +
         json_double(r.measured_max_rank_words);
  out += ",\"ratio_to_bound\":" + json_double(r.ratio_to_bound);
  out += ",\"bound_kind\":\"" + r.bound_kind + "\"";
  out += ",\"error\":\"" + telemetry::json_escape(r.error) + "\"";
  out += ",\"edges\":[";
  for (int s = 0; s < r.ranks; ++s) {
    for (int d = 0; d < r.ranks; ++d) {
      const dist::EdgeStats& e = r.matrix.edge(s, d);
      if (s != 0 || d != 0) out += ",";
      out += "[" + std::to_string(e.messages) + "," +
             std::to_string(e.payload_bytes) + "," +
             std::to_string(e.retransmits) + "," +
             std::to_string(e.corruptions) + "," +
             std::to_string(e.recv_messages) + "," +
             std::to_string(e.recv_bytes) + "," +
             std::to_string(e.send_block_ns) + "]";
    }
  }
  out += "],\"rank_stats\":[";
  for (int k = 0; k < r.ranks; ++k) {
    const dist::RankStats& s = r.matrix.rank(k);
    if (k != 0) out += ",";
    out += "[" + std::to_string(s.recv_wait_ns) + "," +
           std::to_string(s.barrier_wait_ns) + "," +
           std::to_string(s.barriers) + "," +
           std::to_string(s.send_failures) + "," +
           std::to_string(s.active_ns) + "]";
  }
  out += "]}";
  return out;
}

bool parse_comm_audit_line(const std::string& line, CommAuditRecord& out) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  std::string tok;
  if (!find_value(line, "kind", tok) || tok != "comm_audit") return false;

  CommAuditRecord r;
  if (!find_value(line, "algorithm", tok)) return false;
  r.algorithm = tok;
  unsigned long long u = 0;
  if (!find_value(line, "n", tok) || !parse_u64(tok, u)) return false;
  r.n = static_cast<std::size_t>(u);
  if (!find_value(line, "ranks", tok) || !parse_u64(tok, u)) return false;
  r.ranks = static_cast<int>(u);
  if (r.ranks < 1 || r.ranks > 4096) return false;

  const struct {
    const char* key;
    double* dst;
  } doubles[] = {
      {"m_words", &r.m_words},
      {"strassen_bound_words", &r.strassen_bound_words},
      {"classical_bound_words", &r.classical_bound_words},
      {"measured_max_rank_words", &r.measured_max_rank_words},
      {"ratio_to_bound", &r.ratio_to_bound},
  };
  for (const auto& [key, dst] : doubles) {
    if (!find_value(line, key, tok) || !parse_double(tok, *dst)) return false;
  }
  if (!find_value(line, "bound_kind", tok)) return false;
  r.bound_kind = tok;
  if (find_value(line, "error", tok)) r.error = json_unescape(tok);

  std::vector<std::vector<std::uint64_t>> rows;
  if (!parse_u64_rows(line, "edges", rows)) return false;
  const std::size_t p = static_cast<std::size_t>(r.ranks);
  if (rows.size() != p * p) return false;
  r.matrix = dist::CommMatrix(r.ranks);
  for (int s = 0; s < r.ranks; ++s) {
    for (int d = 0; d < r.ranks; ++d) {
      const auto& row = rows[static_cast<std::size_t>(s) * p +
                             static_cast<std::size_t>(d)];
      if (row.size() != 7) return false;
      dist::EdgeStats& e = r.matrix.edge(s, d);
      e.messages = row[0];
      e.payload_bytes = row[1];
      e.retransmits = row[2];
      e.corruptions = row[3];
      e.recv_messages = row[4];
      e.recv_bytes = row[5];
      e.send_block_ns = row[6];
    }
  }
  if (!parse_u64_rows(line, "rank_stats", rows) || rows.size() != p) {
    return false;
  }
  for (int k = 0; k < r.ranks; ++k) {
    const auto& row = rows[static_cast<std::size_t>(k)];
    if (row.size() != 5) return false;
    dist::RankStats& s = r.matrix.rank(k);
    s.recv_wait_ns = row[0];
    s.barrier_wait_ns = row[1];
    s.barriers = row[2];
    s.send_failures = row[3];
    s.active_ns = row[4];
  }
  out = std::move(r);
  return true;
}

std::vector<CommAuditRecord> load_comm_audits(const std::string& path) {
  std::vector<CommAuditRecord> out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  std::string line;
  int c = 0;
  const auto flush_line = [&] {
    CommAuditRecord rec;
    if (!line.empty() && parse_comm_audit_line(line, rec)) {
      bool replaced = false;
      for (auto& existing : out) {
        if (existing.algorithm == rec.algorithm && existing.n == rec.n &&
            existing.ranks == rec.ranks) {
          existing = rec;
          replaced = true;
          break;
        }
      }
      if (!replaced) out.push_back(std::move(rec));
    }
    line.clear();
  };
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      flush_line();
    } else {
      line += static_cast<char>(c);
    }
  }
  flush_line();
  std::fclose(f);
  return out;
}

TextTable comm_matrix_table(const CommAuditRecord& r) {
  std::vector<std::string> headers{"src\\dst"};
  for (int d = 0; d < r.ranks; ++d) headers.push_back(std::to_string(d));
  headers.push_back("row total");
  TextTable t(std::move(headers));
  for (int s = 0; s < r.ranks; ++s) {
    std::vector<std::string> row{std::to_string(s)};
    for (int d = 0; d < r.ranks; ++d) {
      row.push_back(si_bytes(r.matrix.edge(s, d).payload_bytes));
    }
    row.push_back(std::to_string(r.matrix.bytes_sent_by(s)));
    t.add_row(std::move(row));
  }
  return t;
}

TextTable comm_bound_table(const std::vector<CommAuditRecord>& records) {
  TextTable t({"algorithm", "n", "P", "M words", "measured max words",
               "strassen bound", "classical bound", "bound", "ratio",
               "verdict", "run"});
  for (const CommAuditRecord& r : records) {
    t.add_row({r.algorithm, std::to_string(r.n), std::to_string(r.ranks),
               fmt(r.m_words, 0), fmt(r.measured_max_rank_words, 0),
               fmt(r.strassen_bound_words, 0),
               fmt(r.classical_bound_words, 0), r.bound_kind,
               fmt(r.ratio_to_bound, 2),
               r.ratio_to_bound >= 1.0 ? ">= bound (ok)" : "BELOW BOUND",
               r.completed() ? "ok" : "poisoned"});
  }
  return t;
}

TextTable comm_critical_path_table(const CommAuditRecord& r) {
  TextTable t({"rank", "active ms", "compute ms", "recv wait ms",
               "barrier skew ms", "send block ms", "critical"});
  std::uint64_t max_active = 0;
  for (int k = 0; k < r.ranks; ++k) {
    max_active = std::max(max_active, r.matrix.rank(k).active_ns);
  }
  for (int k = 0; k < r.ranks; ++k) {
    const dist::RankStats& s = r.matrix.rank(k);
    std::uint64_t send_block = 0;
    for (int d = 0; d < r.ranks; ++d) {
      send_block += r.matrix.edge(k, d).send_block_ns;
    }
    const std::uint64_t blocked =
        s.recv_wait_ns + s.barrier_wait_ns + send_block;
    const std::uint64_t compute =
        s.active_ns > blocked ? s.active_ns - blocked : 0;
    t.add_row({std::to_string(k), fmt(ms(s.active_ns), 3),
               fmt(ms(compute), 3), fmt(ms(s.recv_wait_ns), 3),
               fmt(ms(s.barrier_wait_ns), 3), fmt(ms(send_block), 3),
               s.active_ns == max_active ? "*" : ""});
  }
  return t;
}

void export_comm_metrics(telemetry::MetricsRegistry& registry,
                         const std::vector<CommAuditRecord>& records) {
  if (records.empty()) return;
  const auto point_labels = [](const CommAuditRecord& r) {
    return telemetry::MetricsRegistry::Labels{
        {"algorithm", r.algorithm},
        {"n", std::to_string(r.n)},
        {"ranks", std::to_string(r.ranks)},
    };
  };

  registry.family("capow_comm_bytes_total",
                  "Measured payload bytes per (src, dst) rank edge",
                  "counter");
  for (const CommAuditRecord& r : records) {
    for (int s = 0; s < r.ranks; ++s) {
      for (int d = 0; d < r.ranks; ++d) {
        const dist::EdgeStats& e = r.matrix.edge(s, d);
        if (e.payload_bytes == 0) continue;
        auto labels = point_labels(r);
        labels.emplace_back("src", std::to_string(s));
        labels.emplace_back("dst", std::to_string(d));
        registry.sample(labels, static_cast<double>(e.payload_bytes));
      }
    }
  }

  registry.family("capow_comm_messages_total",
                  "Messages delivered per (src, dst) rank edge", "counter");
  for (const CommAuditRecord& r : records) {
    for (int s = 0; s < r.ranks; ++s) {
      for (int d = 0; d < r.ranks; ++d) {
        const dist::EdgeStats& e = r.matrix.edge(s, d);
        if (e.messages == 0) continue;
        auto labels = point_labels(r);
        labels.emplace_back("src", std::to_string(s));
        labels.emplace_back("dst", std::to_string(d));
        registry.sample(labels, static_cast<double>(e.messages));
      }
    }
  }

  registry.family("capow_comm_retransmits_total",
                  "Retransmitted delivery attempts (fault injection)",
                  "counter");
  for (const CommAuditRecord& r : records) {
    registry.sample(point_labels(r),
                    static_cast<double>(r.matrix.total_retransmits()));
  }

  registry.family("capow_comm_corruptions_total",
                  "Link-CRC-detected corrupt frames (fault injection)",
                  "counter");
  for (const CommAuditRecord& r : records) {
    registry.sample(point_labels(r),
                    static_cast<double>(r.matrix.total_corruptions()));
  }

  registry.family(
      "capow_comm_measured_words",
      "Busiest rank's measured traffic in words (max over ranks of "
      "sent + received bytes / 8)",
      "gauge");
  for (const CommAuditRecord& r : records) {
    registry.sample(point_labels(r), r.measured_max_rank_words);
  }

  registry.family("capow_comm_bound_ratio",
                  "Measured max-rank words over the algorithm's "
                  "communication lower bound (>= 1.0 expected)",
                  "gauge");
  for (const CommAuditRecord& r : records) {
    auto labels = point_labels(r);
    labels.emplace_back("bound", r.bound_kind);
    registry.sample(labels, r.ratio_to_bound);
  }
}

void append_comm_trace(telemetry::ChromeTraceWriter& writer,
                       const std::string& process_name, int pid,
                       const std::vector<telemetry::TraceEvent>& events,
                       int ranks, std::uint64_t base_ns) {
  writer.set_process_name(pid, process_name);
  for (int r = 0; r < ranks; ++r) {
    writer.set_thread_name(pid, r, "rank " + std::to_string(r));
  }
  for (const telemetry::TraceEvent& e : events) {
    const telemetry::EventRecord& rec = e.rec;
    if (rec.rank < 0 || rec.rank >= ranks || rec.name == nullptr) continue;
    const int tid = rec.rank;
    const double ts_us =
        rec.t_begin_ns >= base_ns
            ? static_cast<double>(rec.t_begin_ns - base_ns) / 1e3
            : 0.0;
    const double end_us =
        rec.t_end_ns >= base_ns
            ? static_cast<double>(rec.t_end_ns - base_ns) / 1e3
            : ts_us;
    const std::string name = rec.name;
    const std::string cat = rec.category != nullptr ? rec.category : "";
    switch (rec.kind) {
      case telemetry::EventKind::kSpan: {
        telemetry::ChromeTraceWriter::Args args;
        for (int i = 0; i < telemetry::EventRecord::kMaxArgs; ++i) {
          if (rec.arg_name[i] != nullptr) {
            args.emplace_back(rec.arg_name[i],
                              static_cast<double>(rec.arg[i]));
          }
        }
        writer.add_complete(pid, tid, name, cat, ts_us, end_us - ts_us,
                            std::move(args));
        // Matched send/recv pairs share a per-channel sequence number;
        // emit the flow arrow the pair is joined on.
        if (name == "comm.send" && arg_is(rec, 0, "dest") &&
            arg_is(rec, 2, "seq")) {
          const int dst = static_cast<int>(rec.arg[0]);
          if (dst >= 0 && dst < ranks) {
            writer.add_flow_start(
                pid, tid, "comm.msg", "dist", end_us,
                flow_id(tid, dst, ranks,
                        static_cast<std::uint64_t>(rec.arg[2])));
          }
        } else if (name == "comm.recv" && arg_is(rec, 0, "source") &&
                   arg_is(rec, 2, "seq")) {
          const int src = static_cast<int>(rec.arg[0]);
          if (src >= 0 && src < ranks) {
            writer.add_flow_finish(
                pid, tid, "comm.msg", "dist", end_us,
                flow_id(src, tid, ranks,
                        static_cast<std::uint64_t>(rec.arg[2])));
          }
        }
        break;
      }
      case telemetry::EventKind::kInstant:
        writer.add_instant(pid, tid, name, cat, ts_us);
        break;
      case telemetry::EventKind::kCounter:
        writer.add_counter(pid, name, ts_us, {{"value", rec.value}});
        break;
    }
  }
}

void export_comm_trace(const std::vector<telemetry::TraceEvent>& events,
                       int ranks, std::uint64_t base_ns, std::ostream& os) {
  telemetry::ChromeTraceWriter writer;
  append_comm_trace(writer, "capow dist world", 0, events, ranks, base_ns);
  writer.write(os);
}

}  // namespace capow::harness
