#include "capow/harness/measured.hpp"

#include <memory>
#include <stdexcept>

#include "capow/api/matmul.hpp"
#include "capow/blas/cost_model.hpp"
#include "capow/blas/gemm_ref.hpp"
#include "capow/capsalg/caps.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/random.hpp"
#include "capow/strassen/cost_model.hpp"
#include "capow/strassen/strassen.hpp"
#include "capow/tasking/thread_pool.hpp"
#include "capow/telemetry/telemetry.hpp"
#include "capow/trace/counters.hpp"

namespace capow::harness {

MeasuredRecord run_measured(Algorithm a, std::size_t n, unsigned threads,
                            const machine::MachineSpec& machine_spec) {
  if (n == 0) throw std::invalid_argument("run_measured: n == 0");

  const linalg::Matrix ma = linalg::random_square(n, 1);
  const linalg::Matrix mb = linalg::random_square(n, 2);
  linalg::Matrix mc(n, n);

  auto rec = std::make_unique<trace::Recorder>();
  tasking::ThreadPool pool(threads > 1 ? threads : 0);
  double efficiency = 0.0;
  {
    trace::RecordingScope scope(*rec);
    CAPOW_TSPAN_ARGS2(algorithm_name(a), "harness", "n", n, "threads",
                      threads);
    MatmulOptions opts;
    opts.algorithm = a;
    opts.pool = threads > 1 ? &pool : nullptr;
    opts.machine = machine_spec;
    matmul(ma.view(), mb.view(), mc.view(), opts);
    efficiency = a == Algorithm::kOpenBlas
                     ? blas::kTunedGemmEfficiency
                     : strassen::kBotsBaseKernelEfficiency;
  }

  MeasuredRecord out;
  out.algorithm = a;
  out.n = n;
  out.threads = threads;
  const auto totals = rec->total();
  out.measured_flops = static_cast<double>(totals.flops);
  out.measured_bytes = static_cast<double>(totals.dram_bytes());

  // Verify numerics against the reference multiplier (keeps the
  // measured path honest about *what* it measured).
  linalg::Matrix expect(n, n);
  blas::gemm_reference(ma.view(), mb.view(), expect.view());
  out.numerically_verified =
      linalg::allclose(mc.view(), expect.view(), 1e-9, 1e-9);

  const auto measured_profile = sim::profile_from_recorder(
      *rec, std::string(algorithm_name(a)) + "-measured", efficiency);
  out.projected =
      sim::simulate(machine_spec, measured_profile,
                    threads == 0 ? 1 : threads);

  sim::WorkProfile analytic;
  switch (a) {
    case Algorithm::kOpenBlas:
      analytic = blas::blocked_gemm_profile(n, machine_spec,
                                            threads == 0 ? 1 : threads);
      break;
    case Algorithm::kStrassen:
      analytic = strassen::strassen_profile(n, machine_spec,
                                            threads == 0 ? 1 : threads);
      break;
    case Algorithm::kCaps:
      analytic = capsalg::caps_profile(n, machine_spec,
                                       threads == 0 ? 1 : threads);
      break;
  }
  out.analytic = sim::simulate(machine_spec, analytic,
                               threads == 0 ? 1 : threads);
  return out;
}

}  // namespace capow::harness
