// Instrumented wrappers over the linalg elementwise ops.
//
// The Strassen-family algorithms account every O(n^2) add/sub/copy they
// perform: each op of s elements reads its operands and writes its
// result (3 words moved per element for a binary op, 2 for a copy) and
// executes s flops for an add/sub. The cost models replicate these exact
// conventions, which is what lets tests assert instrumented == analytic
// with zero tolerance.
#pragma once

#include "capow/linalg/ops.hpp"
#include "capow/trace/counters.hpp"

namespace capow::strassen {

inline void counted_add(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                        linalg::MatrixView dst) {
  linalg::add(a, b, dst);
  const std::uint64_t s = dst.size();
  trace::count_flops(s);
  trace::count_dram_read(2 * s * sizeof(double));
  trace::count_dram_write(s * sizeof(double));
}

inline void counted_sub(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                        linalg::MatrixView dst) {
  linalg::sub(a, b, dst);
  const std::uint64_t s = dst.size();
  trace::count_flops(s);
  trace::count_dram_read(2 * s * sizeof(double));
  trace::count_dram_write(s * sizeof(double));
}

inline void counted_add_inplace(linalg::MatrixView dst,
                                linalg::ConstMatrixView src) {
  linalg::add_inplace(dst, src);
  const std::uint64_t s = dst.size();
  trace::count_flops(s);
  trace::count_dram_read(2 * s * sizeof(double));
  trace::count_dram_write(s * sizeof(double));
}

inline void counted_sub_inplace(linalg::MatrixView dst,
                                linalg::ConstMatrixView src) {
  linalg::sub_inplace(dst, src);
  const std::uint64_t s = dst.size();
  trace::count_flops(s);
  trace::count_dram_read(2 * s * sizeof(double));
  trace::count_dram_write(s * sizeof(double));
}

inline void counted_copy(linalg::ConstMatrixView src, linalg::MatrixView dst) {
  linalg::copy(src, dst);
  const std::uint64_t s = dst.size();
  trace::count_dram_read(s * sizeof(double));
  trace::count_dram_write(s * sizeof(double));
}

}  // namespace capow::strassen
