#include "capow/strassen/strassen.hpp"

#include <array>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "capow/abft/abft.hpp"
#include "capow/blas/blocked_gemm.hpp"
#include "capow/fault/fault.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/partition.hpp"
#include "capow/strassen/base_kernel.hpp"
#include "capow/strassen/counted_ops.hpp"
#include "capow/tasking/task_group.hpp"
#include "capow/telemetry/telemetry.hpp"
#include "capow/trace/counters.hpp"

namespace capow::strassen {

namespace {

using blas::ArenaMatrix;
using linalg::ConstMatrixView;
using linalg::Matrix;
using linalg::MatrixView;
using linalg::Quadrants;

struct Ctx {
  StrassenOptions opts;
  tasking::ThreadPool* pool;
  blas::WorkspaceArena* arena;               ///< never null
  const blas::MicroKernel* base_kernel;      ///< null = BOTS base kernel
  abft::AbftMode abft_mode = abft::AbftMode::kOff;
  double abft_tolerance = 1e-7;
  int abft_retries = 2;
  /// mem.flip/compute.flip armed by the active fault plan.
  bool flips = false;
  /// Namespaces this attempt's flip draws; the top-level retry loop
  /// advances it so a re-run re-draws its faults deterministically
  /// instead of re-firing the identical flip.
  std::uint64_t flip_salt = 0;
};

void recurse(ConstMatrixView a, ConstMatrixView b, MatrixView c,
             const Ctx& ctx, std::size_t depth);

/// One product's operands: quadrant views when the scheme uses a
/// quadrant directly, arena-backed sum temporaries otherwise.
struct Operands {
  std::optional<ArenaMatrix> ta, tb;
  ConstMatrixView lhs, rhs;
};

// Materializes the operands of product i of the classic scheme
// (corrected Eq 7):
//   M1=(A11+A22)(B11+B22)  M2=(A21+A22)B11   M3=A11(B12-B22)
//   M4=A22(B21-B11)        M5=(A11+A12)B22   M6=(A21-A11)(B11+B12)
//   M7=(A12-A22)(B21+B22)
// Operand-sum temporaries lease arena storage: after the first level
// warms the pool, recursion levels reuse the same L2/LLC-resident
// buffers instead of touching the allocator.
Operands classic_operands(int i, const Quadrants<ConstMatrixView>& qa,
                          const Quadrants<ConstMatrixView>& qb,
                          blas::WorkspaceArena& arena, std::size_t h) {
  Operands ops;
  switch (i) {
    case 0:
      ops.ta.emplace(arena, h, h);
      ops.tb.emplace(arena, h, h);
      counted_add(qa.q11, qa.q22, ops.ta->view());
      counted_add(qb.q11, qb.q22, ops.tb->view());
      ops.lhs = ops.ta->cview();
      ops.rhs = ops.tb->cview();
      break;
    case 1:
      ops.ta.emplace(arena, h, h);
      counted_add(qa.q21, qa.q22, ops.ta->view());
      ops.lhs = ops.ta->cview();
      ops.rhs = qb.q11;
      break;
    case 2:
      ops.tb.emplace(arena, h, h);
      counted_sub(qb.q12, qb.q22, ops.tb->view());
      ops.lhs = qa.q11;
      ops.rhs = ops.tb->cview();
      break;
    case 3:
      ops.tb.emplace(arena, h, h);
      counted_sub(qb.q21, qb.q11, ops.tb->view());
      ops.lhs = qa.q22;
      ops.rhs = ops.tb->cview();
      break;
    case 4:
      ops.ta.emplace(arena, h, h);
      counted_add(qa.q11, qa.q12, ops.ta->view());
      ops.lhs = ops.ta->cview();
      ops.rhs = qb.q22;
      break;
    case 5:
      ops.ta.emplace(arena, h, h);
      ops.tb.emplace(arena, h, h);
      counted_sub(qa.q21, qa.q11, ops.ta->view());
      counted_add(qb.q11, qb.q12, ops.tb->view());
      ops.lhs = ops.ta->cview();
      ops.rhs = ops.tb->cview();
      break;
    case 6:
      ops.ta.emplace(arena, h, h);
      ops.tb.emplace(arena, h, h);
      counted_sub(qa.q12, qa.q22, ops.ta->view());
      counted_add(qb.q21, qb.q22, ops.tb->view());
      ops.lhs = ops.ta->cview();
      ops.rhs = ops.tb->cview();
      break;
    default:
      break;
  }
  return ops;
}

// Computes product i of the classic scheme into `out`.
void classic_product(int i, const Quadrants<ConstMatrixView>& qa,
                     const Quadrants<ConstMatrixView>& qb, MatrixView out,
                     const Ctx& ctx, std::size_t depth) {
  Operands ops = classic_operands(i, qa, qb, *ctx.arena, out.rows());
  recurse(ops.lhs, ops.rhs, out, ctx, depth + 1);
}

// Top-level product with the ABFT ladder: snapshot operand checksums
// (before any injected corruption), run the product, verify, and in
// correct mode repair by re-materializing the operands from the pristine
// parent quadrants and re-running just this product — the finest
// bit-identical recovery unit the recursion offers. Runs only at
// depth 0 so the steady-state cost stays at O(n^2) per product.
void classic_product_guarded(int i, const Quadrants<ConstMatrixView>& qa,
                             const Quadrants<ConstMatrixView>& qb,
                             MatrixView out, const Ctx& ctx) {
  const std::uint64_t site =
      fault::key(0x57a5u, ctx.flip_salt, static_cast<std::uint64_t>(i));
  for (int attempt = 0;; ++attempt) {
    Operands ops = classic_operands(i, qa, qb, *ctx.arena, out.rows());
    std::optional<abft::AbftGuard> guard;
    if (ctx.abft_mode != abft::AbftMode::kOff) {
      guard.emplace(ops.lhs, ops.rhs, *ctx.arena, ctx.abft_tolerance);
    }
    const std::uint64_t akey =
        fault::key(site, static_cast<std::uint64_t>(attempt));
    if (ops.ta) {
      abft::inject_flip(fault::Site::kComputeFlip, fault::key(akey, 1),
                        ops.ta->view());
    }
    if (ops.tb) {
      abft::inject_flip(fault::Site::kComputeFlip, fault::key(akey, 2),
                        ops.tb->view());
    }
    recurse(ops.lhs, ops.rhs, out, ctx, 1);
    abft::inject_flip(fault::Site::kMemFlip, fault::key(akey, 3), out);
    if (!guard) return;
    const abft::VerifyReport rep = guard->verify(out);
    if (rep.ok) return;
    if (ctx.abft_mode == abft::AbftMode::kDetect) {
      throw abft::AbftError(
          "abft: silent corruption detected in strassen product " +
          std::to_string(i + 1));
    }
    if (attempt >= ctx.abft_retries) {
      throw abft::AbftError("abft: strassen product " + std::to_string(i + 1) +
                            " still corrupt after " +
                            std::to_string(attempt + 1) + " attempt(s)");
    }
    abft::record_recomputed();
  }
}

void classic_combine(const std::array<ArenaMatrix, 7>& m,
                     const Quadrants<MatrixView>& qc) {
  // C11 = M1 + M4 - M5 + M7
  counted_add(m[0].view(), m[3].view(), qc.q11);
  counted_sub_inplace(qc.q11, m[4].view());
  counted_add_inplace(qc.q11, m[6].view());
  // C12 = M3 + M5
  counted_add(m[2].view(), m[4].view(), qc.q12);
  // C21 = M2 + M4
  counted_add(m[1].view(), m[3].view(), qc.q21);
  // C22 = M1 - M2 + M3 + M6
  counted_sub(m[0].view(), m[1].view(), qc.q22);
  counted_add_inplace(qc.q22, m[2].view());
  counted_add_inplace(qc.q22, m[5].view());
}

void recurse_classic(const Quadrants<ConstMatrixView>& qa,
                     const Quadrants<ConstMatrixView>& qb,
                     const Quadrants<MatrixView>& qc, std::size_t h,
                     const Ctx& ctx, std::size_t depth) {
  auto m = blas::make_arena_matrices<7>(*ctx.arena, h, h);

  // At the top level each product runs inside its ABFT/fault harness;
  // deeper levels run bare (per-product verification everywhere would
  // turn the O(n^2) overhead into O(n^2 log n) for no extra coverage —
  // a deep flip still fails the depth-0 product's checksums).
  const bool protect =
      depth == 0 && (ctx.abft_mode != abft::AbftMode::kOff || ctx.flips);
  const auto product = [&](int i) {
    if (protect) {
      classic_product_guarded(i, qa, qb, m[i].view(), ctx);
    } else {
      classic_product(i, qa, qb, m[i].view(), ctx, depth);
    }
  };

  const bool spawn = ctx.pool != nullptr && ctx.pool->concurrency() > 1 &&
                     depth < ctx.opts.task_spawn_depth;
  if (spawn) {
    tasking::TaskGroup group(*ctx.pool);
    for (int i = 0; i < 7; ++i) {
      trace::count_task_spawn();
      group.run([&, i] {
        if (group.cancelled()) return;  // a sibling product failed
        product(i);
      });
    }
    group.wait();
    trace::count_sync();
  } else {
    for (int i = 0; i < 7; ++i) {
      product(i);
    }
  }
  classic_combine(m, qc);
}

// Winograd variant (15 additions): S/T operand sums computed up front,
// seven products P1..P7, then the U-chain combine. Buffers are reused in
// the combine exactly as annotated so that the op count stays at 15.
void recurse_winograd(const Quadrants<ConstMatrixView>& qa,
                      const Quadrants<ConstMatrixView>& qb,
                      const Quadrants<MatrixView>& qc, std::size_t h,
                      const Ctx& ctx, std::size_t depth) {
  ArenaMatrix s1(*ctx.arena, h, h), s2(*ctx.arena, h, h),
      s3(*ctx.arena, h, h), s4(*ctx.arena, h, h);
  ArenaMatrix t1(*ctx.arena, h, h), t2(*ctx.arena, h, h),
      t3(*ctx.arena, h, h), t4(*ctx.arena, h, h);
  counted_add(qa.q21, qa.q22, s1.view());  // S1 = A21 + A22
  counted_sub(s1.view(), qa.q11, s2.view());  // S2 = S1 - A11
  counted_sub(qa.q11, qa.q21, s3.view());  // S3 = A11 - A21
  counted_sub(qa.q12, s2.view(), s4.view());  // S4 = A12 - S2
  counted_sub(qb.q12, qb.q11, t1.view());  // T1 = B12 - B11
  counted_sub(qb.q22, t1.view(), t2.view());  // T2 = B22 - T1
  counted_sub(qb.q22, qb.q12, t3.view());  // T3 = B22 - B12
  counted_sub(t2.view(), qb.q21, t4.view());  // T4 = T2 - B21

  auto p = blas::make_arena_matrices<7>(*ctx.arena, h, h);

  const auto operand_views =
      [&](int i) -> std::pair<ConstMatrixView, ConstMatrixView> {
    switch (i) {
      case 0: return {qa.q11, qb.q11};
      case 1: return {qa.q12, qb.q21};
      case 2: return {s4.cview(), qb.q22};
      case 3: return {qa.q22, t4.cview()};
      case 4: return {s1.cview(), t1.cview()};
      case 5: return {s2.cview(), t2.cview()};
      case 6: return {s3.cview(), t3.cview()};
      default: return {qa.q11, qb.q11};
    }
  };

  // The Winograd S/T temporaries are shared across products, so the
  // guarded path injects (and recovers from) result corruption only;
  // operand corruption is exercised through the classic scheme and the
  // packed-panel site in blas::gemm.
  const bool protect =
      depth == 0 && (ctx.abft_mode != abft::AbftMode::kOff || ctx.flips);
  const auto run_product = [&](int i) {
    const auto [lhs, rhs] = operand_views(i);
    if (!protect) {
      recurse(lhs, rhs, p[i].view(), ctx, depth + 1);
      return;
    }
    const std::uint64_t site =
        fault::key(0x57b0u, ctx.flip_salt, static_cast<std::uint64_t>(i));
    for (int attempt = 0;; ++attempt) {
      std::optional<abft::AbftGuard> guard;
      if (ctx.abft_mode != abft::AbftMode::kOff) {
        guard.emplace(lhs, rhs, *ctx.arena, ctx.abft_tolerance);
      }
      recurse(lhs, rhs, p[i].view(), ctx, depth + 1);
      abft::inject_flip(fault::Site::kMemFlip,
                        fault::key(site, static_cast<std::uint64_t>(attempt)),
                        p[i].view());
      if (!guard) return;
      const abft::VerifyReport rep = guard->verify(p[i].cview());
      if (rep.ok) return;
      if (ctx.abft_mode == abft::AbftMode::kDetect) {
        throw abft::AbftError(
            "abft: silent corruption detected in strassen-winograd product " +
            std::to_string(i + 1));
      }
      if (attempt >= ctx.abft_retries) {
        throw abft::AbftError("abft: strassen-winograd product " +
                              std::to_string(i + 1) +
                              " still corrupt after " +
                              std::to_string(attempt + 1) + " attempt(s)");
      }
      abft::record_recomputed();
    }
  };

  const bool spawn = ctx.pool != nullptr && ctx.pool->concurrency() > 1 &&
                     depth < ctx.opts.task_spawn_depth;
  if (spawn) {
    tasking::TaskGroup group(*ctx.pool);
    for (int i = 0; i < 7; ++i) {
      trace::count_task_spawn();
      group.run([&, i] {
        if (group.cancelled()) return;  // a sibling product failed
        run_product(i);
      });
    }
    group.wait();
    trace::count_sync();
  } else {
    for (int i = 0; i < 7; ++i) run_product(i);
  }

  counted_add(p[0].view(), p[1].view(), qc.q11);      // C11 = P1 + P2
  counted_add_inplace(p[5].view(), p[0].view());      // P6 <- U2 = P1 + P6
  counted_add_inplace(p[6].view(), p[5].view());      // P7 <- U3 = U2 + P7
  counted_add(p[6].view(), p[4].view(), qc.q22);      // C22 = U3 + P5
  counted_add_inplace(p[4].view(), p[5].view());      // P5 <- U4 = U2 + P5
  counted_add(p[4].view(), p[2].view(), qc.q12);      // C12 = U4 + P3
  counted_sub(p[6].view(), p[3].view(), qc.q21);      // C21 = U3 - P4
}

void recurse(ConstMatrixView a, ConstMatrixView b, MatrixView c,
             const Ctx& ctx, std::size_t depth) {
  const std::size_t n = a.rows();
  if (n <= ctx.opts.base_cutoff) {
    if (ctx.base_kernel != nullptr) {
      blas::small_gemm(a, b, c, *ctx.base_kernel, *ctx.arena);
    } else {
      base_gemm(a, b, c);
    }
    return;
  }
  CAPOW_TSPAN_ARGS2("strassen.recurse", "strassen", "depth", depth, "n", n);
  const auto qa = linalg::partition(a);
  const auto qb = linalg::partition(b);
  const auto qc = linalg::partition(c);
  const std::size_t h = n / 2;
  if (ctx.opts.winograd) {
    recurse_winograd(qa, qb, qc, h, ctx, depth);
  } else {
    recurse_classic(qa, qb, qc, h, ctx, depth);
  }
}

void validate_square_inputs(ConstMatrixView a, ConstMatrixView b,
                            ConstMatrixView c) {
  if (!a.square() || !b.square() || !c.square() || a.rows() != b.rows() ||
      a.rows() != c.rows()) {
    throw std::invalid_argument(
        "strassen::multiply: operands must be square with equal dimension");
  }
}

}  // namespace

std::size_t recursion_levels(std::size_t n, std::size_t base_cutoff) {
  if (base_cutoff == 0) {
    throw std::invalid_argument("recursion_levels: base_cutoff == 0");
  }
  std::size_t levels = 0;
  std::size_t m = n;
  while (m > base_cutoff) {
    m = (m + 1) / 2;
    ++levels;
  }
  return levels;
}

void multiply(ConstMatrixView a, ConstMatrixView b, MatrixView c,
              const StrassenOptions& opts, tasking::ThreadPool* pool) {
  validate_square_inputs(a, b, c);
  if (opts.base_cutoff == 0) {
    throw std::invalid_argument("strassen::multiply: base_cutoff == 0");
  }
  // Explicit option first, then the CAPOW_KERNEL environment override
  // (applied here so direct callers and the facade agree), else the
  // BOTS loop kernel.
  const std::optional<blas::MicroKernelId> base =
      opts.base_kernel ? opts.base_kernel : blas::env_kernel_override();
  Ctx ctx{opts, pool,
          opts.arena != nullptr ? opts.arena : &blas::active_arena(),
          base ? blas::find_kernel(*base) : nullptr};
  if (base && !ctx.base_kernel->supported()) {
    throw std::runtime_error(
        std::string("strassen::multiply: base kernel '") +
        ctx.base_kernel->name + "' is not supported by this CPU");
  }
  ctx.abft_mode = abft::resolve_mode(opts.abft);
  ctx.abft_tolerance = opts.abft.tolerance;
  ctx.abft_retries = opts.abft.max_retries;
  ctx.flips = abft::flips_armed();

  const std::size_t n = a.rows();
  CAPOW_TSPAN_ARGS2("strassen.multiply", "strassen", "n", n, "winograd",
                    opts.winograd ? 1 : 0);
  if (n == 0) return;

  const auto compute = [&](std::uint64_t salt) {
    Ctx attempt_ctx = ctx;
    attempt_ctx.flip_salt = salt;
    if (n <= opts.base_cutoff) {
      if (ctx.base_kernel != nullptr) {
        blas::small_gemm(a, b, c, *ctx.base_kernel, *ctx.arena);
      } else {
        base_gemm(a, b, c);
      }
    } else {
      const std::size_t padded =
          linalg::pad_dimension_for_recursion(n, opts.base_cutoff);
      if (padded == n) {
        recurse(a, b, c, attempt_ctx, 0);
      } else {
        // Zero-pad to a recursion-friendly dimension; the padded
        // product's top-left n x n block equals A*B.
        ArenaMatrix ap(*ctx.arena, padded, padded);
        ArenaMatrix bp(*ctx.arena, padded, padded);
        ArenaMatrix cp(*ctx.arena, padded, padded);
        linalg::copy_padded(a, ap.view());
        linalg::copy_padded(b, bp.view());
        trace::count_dram_read(2 * n * n * sizeof(double));
        trace::count_dram_write(2 * padded * padded * sizeof(double));
        recurse(ap.view(), bp.view(), cp.view(), attempt_ctx, 0);
        counted_copy(cp.view().block(0, 0, n, n), c);
      }
    }
    // Final-result corruption site, caught only by the end-to-end guard
    // (the per-product checks never see the combine stage's output).
    if (attempt_ctx.flips) {
      abft::inject_flip(fault::Site::kMemFlip, fault::key(0x57ffu, salt), c);
    }
  };

  if (ctx.abft_mode == abft::AbftMode::kOff) {
    compute(0);
    return;
  }

  // End-to-end guard over the user-visible operands: catches whatever
  // the per-product checks cannot (combine-stage damage, final C), and
  // escalates to bounded full re-runs in correct mode.
  const abft::AbftGuard guard(a, b, *ctx.arena, ctx.abft_tolerance);
  for (int attempt = 0;; ++attempt) {
    compute(static_cast<std::uint64_t>(attempt));
    const abft::VerifyReport rep = guard.verify(c);
    if (rep.ok) return;
    if (ctx.abft_mode == abft::AbftMode::kDetect) {
      throw abft::AbftError(
          "abft: silent corruption detected in strassen::multiply result");
    }
    if (attempt >= ctx.abft_retries) {
      throw abft::AbftError(
          "abft: strassen::multiply result still corrupt after " +
          std::to_string(attempt + 1) + " attempt(s)");
    }
    abft::record_retried();
  }
}

}  // namespace capow::strassen
