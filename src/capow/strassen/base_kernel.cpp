#include "capow/strassen/base_kernel.hpp"

#include "capow/blas/gemm_ref.hpp"
#include "capow/trace/counters.hpp"

namespace capow::strassen {

namespace {

void base_gemm_impl(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                    linalg::MatrixView c, bool accumulate) {
  blas::check_gemm_shapes(a, b, c);
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();

  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c.row(i);
    if (!accumulate) {
      for (std::size_t j = 0; j < n; ++j) ci[j] = 0.0;
    }
    const double* ai = a.row(i);
    // 2-way unrolled over the inner dimension: the flavour of manual
    // unrolling the BOTS kernel applies (without asm-level packing).
    std::size_t p = 0;
    for (; p + 1 < k; p += 2) {
      const double a0 = ai[p];
      const double a1 = ai[p + 1];
      const double* b0 = b.row(p);
      const double* b1 = b.row(p + 1);
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] += a0 * b0[j] + a1 * b1[j];
      }
    }
    if (p < k) {
      const double a0 = ai[p];
      const double* b0 = b.row(p);
      for (std::size_t j = 0; j < n; ++j) ci[j] += a0 * b0[j];
    }
  }

  trace::count_flops(2ull * m * n * k);
  trace::count_dram_read((m * k + k * n) * sizeof(double));
  trace::count_dram_write(m * n * sizeof(double));
}

}  // namespace

void base_gemm(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
               linalg::MatrixView c) {
  base_gemm_impl(a, b, c, /*accumulate=*/false);
}

void base_gemm_accumulate(linalg::ConstMatrixView a,
                          linalg::ConstMatrixView b, linalg::MatrixView c) {
  base_gemm_impl(a, b, c, /*accumulate=*/true);
}

}  // namespace capow::strassen
