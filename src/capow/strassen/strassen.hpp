// Task-parallel Strassen matrix multiplication (paper Section IV-B).
//
// Implements the seven-product recursion of the paper's Eq (7) — the
// classic Strassen scheme with 18 quadrant additions per level — plus
// the Winograd variant (15 additions), selectable via options. (Note:
// the paper labels its BOTS-derived code "Strassen-Winograd" but prints
// the classic Strassen product set; Eq (7) as printed also contains two
// well-known typos, Q5 = (A11+B12)*B22 for (A11+A12)*B22 and
// Q6 = (A21-A12)*(B11+B12) for (A21-A11)*(B11+B12). We implement the
// corrected algebra; tests verify both variants against the reference
// multiplier.)
//
// Parallelization follows the BOTS structure: each recursion level spawns
// seven tasks, one per product Q_i; each task forms its own operand sums
// and recurses. Recursion reverts to the dense base kernel when the
// sub-matrix dimension drops to `base_cutoff` (the paper's empirically
// chosen 64).
#pragma once

#include <cstddef>
#include <optional>

#include "capow/abft/abft.hpp"
#include "capow/blas/microkernel.hpp"
#include "capow/blas/workspace.hpp"
#include "capow/linalg/matrix.hpp"
#include "capow/tasking/thread_pool.hpp"

namespace capow::strassen {

/// Tuning knobs for strassen::multiply.
struct StrassenOptions {
  /// Sub-matrix dimension at (or below) which the dense base kernel
  /// runs. The paper's empirical optimum on its platform is 64.
  std::size_t base_cutoff = 64;
  /// Use the Winograd 15-addition variant instead of classic Strassen.
  bool winograd = false;
  /// Recursion depth down to which child products are spawned as tasks;
  /// deeper levels recurse serially inside their owning task. 7^3 = 343
  /// tasks comfortably feeds any SMP-scale pool.
  std::size_t task_spawn_depth = 3;
  /// Pool backing every quadrant temporary (operand sums, the seven
  /// product buffers, padding copies); null leases from
  /// blas::active_arena() (the dispatched backend's device pool, or the
  /// process arena outside any backend scope). After one warm-up
  /// multiply the recursion performs no heap allocation.
  blas::WorkspaceArena* arena = nullptr;
  /// When set, the dense base case runs through the packed registry
  /// microkernel (blas::small_gemm) instead of the BOTS-style unrolled
  /// kernel. Default keeps the paper's BOTS base case — the Strassen /
  /// OpenBLAS efficiency gap is part of what the paper measures.
  std::optional<blas::MicroKernelId> base_kernel;
  /// ABFT protection (abft::resolve_mode semantics: explicit mode, else
  /// CAPOW_ABFT, else off). Detect/correct add per-product checksum
  /// verification at the top recursion level — a flip is caught in the
  /// quadrant where it happened and, in correct mode, repaired by
  /// re-running just that product — plus an end-to-end guard around the
  /// whole multiply that escalates to bounded full retries.
  abft::AbftConfig abft{};
};

/// C = A * B for square matrices via task-parallel Strassen.
///
/// Any n >= 1 is accepted: inputs are padded up to the nearest
/// base * 2^k dimension when necessary (zero-padding preserves the
/// product). `pool` may be null for serial execution. Throws
/// std::invalid_argument for non-square inputs, shape mismatches, or a
/// zero base_cutoff.
void multiply(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
              linalg::MatrixView c, const StrassenOptions& opts = {},
              tasking::ThreadPool* pool = nullptr);

/// Number of recursion levels multiply() executes for dimension n
/// (0 when n <= cutoff): levels until the padded dimension reaches the
/// base case.
std::size_t recursion_levels(std::size_t n, std::size_t base_cutoff);

}  // namespace capow::strassen
