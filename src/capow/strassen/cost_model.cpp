#include "capow/strassen/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "capow/linalg/ops.hpp"
#include "capow/strassen/strassen.hpp"

namespace capow::strassen {

namespace {

constexpr double kWord = sizeof(double);

struct Geometry {
  std::size_t n_input;   ///< caller's dimension
  std::size_t n;         ///< padded dimension actually recursed on
  std::size_t levels;    ///< recursion levels
  std::size_t base_dim;  ///< dimension of base-case products
  bool padded;
};

Geometry geometry(std::size_t n, std::size_t cutoff) {
  Geometry g;
  g.n_input = n;
  g.n = linalg::pad_dimension_for_recursion(n, cutoff);
  g.padded = g.n != n;
  g.levels = recursion_levels(g.n, cutoff);
  g.base_dim = g.n >> g.levels;
  return g;
}

std::size_t operand_ops(bool winograd) { return winograd ? 8u : 10u; }
std::size_t combine_ops(bool winograd) { return winograd ? 7u : 8u; }

double pow7(std::size_t l) {
  double v = 1.0;
  for (std::size_t i = 0; i < l; ++i) v *= 7.0;
  return v;
}

double padding_traffic(const Geometry& g) {
  if (!g.padded) return 0.0;
  const double n2 = static_cast<double>(g.n_input) * g.n_input;
  const double p2 = static_cast<double>(g.n) * g.n;
  // Pad A and B (read n^2 each, write padded^2 each) plus the counted
  // copy-back of the n^2 result block (read + write).
  return (2.0 * n2 + 2.0 * p2 + 2.0 * n2) * kWord;
}

// Worst-per-worker over evenly distributed units: ceil(u/p)*p/u.
double static_imbalance(double units, unsigned p) {
  if (units <= 0.0 || p <= 1) return 1.0;
  const double per = std::ceil(units / p);
  return std::min(per * p / units, 4.0);
}

}  // namespace

double strassen_total_flops(std::size_t n, const StrassenCostOptions& opts) {
  const Geometry g = geometry(n, opts.base_cutoff);
  if (g.n <= opts.base_cutoff) {
    const double d = static_cast<double>(n);
    return 2.0 * d * d * d;
  }
  const std::size_t ops = operand_ops(opts.winograd) + combine_ops(opts.winograd);
  double flops = 0.0;
  for (std::size_t l = 0; l < g.levels; ++l) {
    const double h = static_cast<double>(g.n >> (l + 1));
    flops += pow7(l) * static_cast<double>(ops) * h * h;
  }
  const double b = static_cast<double>(g.base_dim);
  flops += pow7(g.levels) * 2.0 * b * b * b;
  return flops;
}

double strassen_total_traffic_bytes(std::size_t n,
                                    const StrassenCostOptions& opts) {
  const Geometry g = geometry(n, opts.base_cutoff);
  if (g.n <= opts.base_cutoff) {
    const double d = static_cast<double>(n);
    return 3.0 * d * d * kWord;  // base_gemm: read A, B; write C
  }
  const std::size_t ops = operand_ops(opts.winograd) + combine_ops(opts.winograd);
  double bytes = padding_traffic(g);
  for (std::size_t l = 0; l < g.levels; ++l) {
    const double h = static_cast<double>(g.n >> (l + 1));
    bytes += pow7(l) * static_cast<double>(ops) * 3.0 * h * h * kWord;
  }
  const double b = static_cast<double>(g.base_dim);
  bytes += pow7(g.levels) * 3.0 * b * b * kWord;
  return bytes;
}

sim::WorkProfile strassen_profile(std::size_t n,
                                  const machine::MachineSpec& spec,
                                  unsigned threads,
                                  const StrassenCostOptions& opts) {
  const Geometry g = geometry(n, opts.base_cutoff);
  const double llc = static_cast<double>(spec.llc_capacity_bytes());
  const unsigned p_cap = std::min(threads, spec.core_count);

  sim::WorkProfile wp;
  wp.name = opts.winograd ? "strassen-winograd" : "strassen";

  // Number of quadrant working sets competing for the LLC at once:
  // one per worker when execution is pinned, kUntiedLiveWindow per
  // worker under untied-task interleaving. Serial runs traverse
  // depth-first with perfect producer-consumer locality (window 1).
  const unsigned window =
      (threads > 1 && opts.untied_task_interleaving)
          ? kUntiedLiveWindow * p_cap
          : (threads > 1 ? p_cap : 1u);

  const auto add_phase = [&](const std::string& label, double op_count,
                             double h, unsigned concurrency,
                             bool first_level) {
    if (op_count <= 0.0) return;
    const double elems = h * h;
    const double flops = op_count * elems;
    const double traffic = op_count * 3.0 * elems * kWord;
    const unsigned c = std::min<unsigned>(concurrency, p_cap);
    // Addition traffic reaches DRAM when the windowed live quadrant
    // working sets overflow the LLC (always true at the first level when
    // the whole problem does not fit).
    const bool dram =
        (3.0 * elems * kWord * window > llc) ||
        (first_level &&
         3.0 * static_cast<double>(g.n) * g.n * kWord > llc);
    wp.add(sim::PhaseCost{
        .label = label,
        .flops = flops,
        .dram_bytes = dram ? traffic : 0.0,
        .cache_bytes = dram ? 0.0 : traffic,
        .parallelism = c,
        .efficiency = kAddKernelEfficiency,
        .imbalance = static_imbalance(op_count, c),
    });
  };

  if (g.n <= opts.base_cutoff) {
    const double d = static_cast<double>(n);
    wp.add(sim::PhaseCost{
        .label = "base-gemm",
        .flops = 2.0 * d * d * d,
        .dram_bytes = 3.0 * d * d * kWord,
        .parallelism = 1,
        .efficiency = kBotsBaseKernelEfficiency,
    });
    return wp;
  }

  if (g.padded) {
    wp.add(sim::PhaseCost{
        .label = "padding",
        .flops = 0.0,
        .dram_bytes = padding_traffic(g),
        .parallelism = 1,
        .efficiency = 1.0,
    });
  }

  // Operand-sum phases, outermost level first. Classic Strassen computes
  // each product's operands inside the spawned child task (concurrency =
  // children of this level); Winograd forms S/T in the parent node.
  for (std::size_t l = 0; l < g.levels; ++l) {
    const double nodes = pow7(l);
    const double h = static_cast<double>(g.n >> (l + 1));
    const double conc_d = opts.winograd ? nodes : nodes * 7.0;
    const unsigned conc = static_cast<unsigned>(
        std::min<double>(conc_d, spec.core_count));
    add_phase("operands@L" + std::to_string(l),
              nodes * static_cast<double>(operand_ops(opts.winograd)), h,
              std::max(conc, 1u), l == 0);
  }

  // Base products: 7^L multiplies of base_dim^3. Their operands were
  // just written by the deepest operand phase; whether those reads hit
  // DRAM follows the same working-set rule.
  {
    const double nodes = pow7(g.levels);
    const double b = static_cast<double>(g.base_dim);
    const double traffic = nodes * 3.0 * b * b * kWord;
    const unsigned c =
        static_cast<unsigned>(std::min<double>(nodes, p_cap));
    const bool dram = 3.0 * b * b * kWord * window > llc;
    std::uint64_t spawns = 0;
    std::uint64_t syncs = 0;
    if (threads > 1) {
      // Mirror of the implementation: 7 tasks spawned per node down to
      // task_spawn_depth levels (3), one taskgroup join per spawning node.
      const std::size_t spawn_levels = std::min<std::size_t>(3, g.levels);
      for (std::size_t l = 0; l < spawn_levels; ++l) {
        spawns += static_cast<std::uint64_t>(pow7(l)) * 7;
        syncs += static_cast<std::uint64_t>(pow7(l));
      }
    }
    wp.add(sim::PhaseCost{
        .label = "base-products",
        .flops = nodes * 2.0 * b * b * b,
        .dram_bytes = dram ? traffic : 0.0,
        .cache_bytes = dram ? 0.0 : traffic,
        .parallelism = std::max(c, 1u),
        .efficiency = kBotsBaseKernelEfficiency,
        .imbalance = static_imbalance(nodes, std::max(c, 1u)),
        .sync_events = syncs,
        .spawn_events = spawns,
    });
  }

  // Combine phases, innermost level first (the order the recursion
  // unwinds). Executed in the owning node's task: concurrency = nodes.
  for (std::size_t l = g.levels; l-- > 0;) {
    const double nodes = pow7(l);
    const double h = static_cast<double>(g.n >> (l + 1));
    const unsigned conc = static_cast<unsigned>(
        std::min<double>(std::max(nodes, 1.0), spec.core_count));
    add_phase("combine@L" + std::to_string(l),
              nodes * static_cast<double>(combine_ops(opts.winograd)), h,
              std::max(conc, 1u), l == 0);
  }

  return wp;
}

}  // namespace capow::strassen
