// Dense base-case solver for the Strassen family.
//
// Models the BOTS suite's manually-unrolled dense kernel that the
// recursion reverts to "when the sub-matrix Nth dimension is less than or
// equal to 64" (paper, Section IV-B). It is a straightforward
// register-unrolled ikj kernel — deliberately *not* the packed Goto
// kernel, because the whole point of the paper's comparison is that the
// Strassen implementations run on a far less efficient base multiplier
// than the tuned OpenBLAS path (see kBotsBaseKernelEfficiency).
#pragma once

#include "capow/linalg/matrix.hpp"

namespace capow::strassen {

/// C = A * B for small square-ish blocks. Instrumented: counts
/// 2*m*n*k flops, 2 operand reads and one result write of logical
/// traffic. Shapes validated.
void base_gemm(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
               linalg::MatrixView c);

/// C += A * B variant (used by the distributed extension's local stage).
void base_gemm_accumulate(linalg::ConstMatrixView a,
                          linalg::ConstMatrixView b, linalg::MatrixView c);

}  // namespace capow::strassen
