// Closed-form cost model for task-parallel Strassen.
//
// Mirrors strassen.cpp's recursion exactly: per level l (7^l nodes of
// dimension n/2^l), classic Strassen performs 10 operand additions and 8
// combine additions per node on (n/2^(l+1))^2 quadrants (Winograd: 8+7),
// then 7^L base products of the cutoff dimension. Raw flop and traffic
// totals match the instrumentation byte-for-byte (tests assert equality);
// the DRAM-vs-cache split and the phase list feed the simulator.
#pragma once

#include <cstddef>

#include "capow/machine/machine.hpp"
#include "capow/sim/cost_profile.hpp"

namespace capow::strassen {

/// Fraction of per-core peak the BOTS-style base kernel attains. The
/// BOTS dense solver is manually unrolled C (no packing, no FMA
/// intrinsics); ~5 GF/s/core on the paper's part, i.e. ~10% of the
/// 51.2 GF/s machine peak. This single constant (together with the
/// roofline) reproduces the paper's ~2.9x average Strassen slowdown.
inline constexpr double kBotsBaseKernelEfficiency = 0.10;

/// Effective FP efficiency of the O(n^2) addition passes: one flop per
/// three words moved means the adds run at load/store speed, a few
/// GF/s/core even from cache.
inline constexpr double kAddKernelEfficiency = 0.06;

/// Live-window multiplier for the *untied-task* Strassen: with task
/// stealing, each worker interleaves roughly this many generations of
/// sibling subtrees, so the set of quadrant buffers competing for the
/// shared LLC at once is ~kUntiedLiveWindow x threads rather than 1 per
/// worker. Addition traffic whose windowed working set overflows the LLC
/// is re-streamed from DRAM. CAPS's BFS levels pin one subtree per
/// worker (window = threads) — the shared-memory analogue of its
/// communication avoidance.
inline constexpr unsigned kUntiedLiveWindow = 3;

/// Cost-model configuration (mirror of StrassenOptions plus scheduling
/// behaviour flags).
struct StrassenCostOptions {
  std::size_t base_cutoff = 64;
  bool winograd = false;
  /// Classic BOTS scheduling: untied tasks interleave subtrees, widening
  /// the LLC live window by kUntiedLiveWindow per worker in multi-thread
  /// runs. The CAPS cost model reuses this machinery with the flag off.
  bool untied_task_interleaving = true;
};

/// Total flops strassen::multiply() executes for dimension n (including
/// zero-padding effects when n is not base*2^k).
double strassen_total_flops(std::size_t n, const StrassenCostOptions& opts);

/// Total logical traffic (bytes) the instrumentation counts for
/// strassen::multiply() at dimension n, including padding copies.
double strassen_total_traffic_bytes(std::size_t n,
                                    const StrassenCostOptions& opts);

/// Simulator work profile for an n x n Strassen multiply with `threads`
/// workers on `spec`.
sim::WorkProfile strassen_profile(std::size_t n,
                                  const machine::MachineSpec& spec,
                                  unsigned threads,
                                  const StrassenCostOptions& opts = {});

}  // namespace capow::strassen
