// capow::linalg — dense double-precision matrix storage and views.
//
// The paper's three multiplication algorithms (blocked DGEMM, Strassen,
// CAPS) all operate on square double matrices partitioned into sub-blocks.
// `Matrix` owns 64-byte aligned storage; `MatrixView`/`ConstMatrixView`
// are non-owning strided windows used for quadrant recursion so that no
// algorithm ever copies a quadrant merely to address it.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace capow::linalg {

/// Cache-line alignment used for all matrix storage. Matches the 64-byte
/// line size of the paper's Haswell platform.
inline constexpr std::size_t kMatrixAlignment = 64;

namespace detail {

/// Deleter for over-aligned allocations obtained via std::aligned_alloc.
struct AlignedFree {
  void operator()(double* p) const noexcept { std::free(p); }
};

using AlignedBuffer = std::unique_ptr<double[], AlignedFree>;

/// Allocates `count` doubles aligned to kMatrixAlignment.
/// Throws std::bad_alloc on failure. `count == 0` returns an empty buffer.
AlignedBuffer allocate_aligned(std::size_t count);

}  // namespace detail

class MatrixView;
class ConstMatrixView;

/// Owning, row-major, 64-byte aligned dense matrix of doubles.
///
/// Invariants:
///  - data() is aligned to kMatrixAlignment (or null when empty),
///  - leading dimension equals cols() (owned matrices are always packed).
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// Uninitialized rows x cols matrix (values indeterminate; use zero()
  /// or fill() before reading).
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix with every element set to `init`.
  Matrix(std::size_t rows, std::size_t cols, double init);

  Matrix(const Matrix& other);
  Matrix& operator=(const Matrix& other);
  Matrix(Matrix&& other) noexcept = default;
  Matrix& operator=(Matrix&& other) noexcept = default;

  /// Convenience factory: n x n square matrix, zero-initialized.
  static Matrix zeros(std::size_t n) { return Matrix(n, n, 0.0); }
  /// Convenience factory: rows x cols, zero-initialized.
  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols, 0.0);
  }
  /// n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return rows_ * cols_; }
  bool empty() const noexcept { return size() == 0; }
  bool square() const noexcept { return rows_ == cols_; }

  double* data() noexcept { return data_.get(); }
  const double* data() const noexcept { return data_.get(); }

  double& operator()(std::size_t i, std::size_t j) noexcept {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const noexcept {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Sets every element to `value`.
  void fill(double value) noexcept;
  /// Sets every element to zero.
  void zero() noexcept { fill(0.0); }

  /// Whole-matrix mutable view.
  MatrixView view() noexcept;
  /// Whole-matrix const view.
  ConstMatrixView view() const noexcept;
  ConstMatrixView cview() const noexcept;

  /// Mutable sub-block view of `r x c` elements anchored at (i0, j0).
  /// Throws std::out_of_range when the window exceeds the matrix.
  MatrixView block(std::size_t i0, std::size_t j0, std::size_t r,
                   std::size_t c);
  ConstMatrixView block(std::size_t i0, std::size_t j0, std::size_t r,
                        std::size_t c) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  detail::AlignedBuffer data_;
};

/// Non-owning mutable window into a row-major matrix with leading
/// dimension `ld` (elements of row i start at data + i*ld).
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(double* data, std::size_t rows, std::size_t cols,
             std::size_t ld) noexcept
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(ld >= cols || rows == 0);
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t ld() const noexcept { return ld_; }
  std::size_t size() const noexcept { return rows_ * cols_; }
  bool empty() const noexcept { return size() == 0; }
  bool square() const noexcept { return rows_ == cols_; }
  /// True when the view is contiguous (ld == cols).
  bool packed() const noexcept { return ld_ == cols_; }

  double* data() const noexcept { return data_; }
  double* row(std::size_t i) const noexcept {
    assert(i < rows_);
    return data_ + i * ld_;
  }
  double& operator()(std::size_t i, std::size_t j) const noexcept {
    assert(i < rows_ && j < cols_);
    return data_[i * ld_ + j];
  }

  /// Sub-window anchored at (i0, j0) of r x c elements.
  MatrixView block(std::size_t i0, std::size_t j0, std::size_t r,
                   std::size_t c) const;

  void fill(double value) const noexcept;
  void zero() const noexcept { fill(0.0); }

 private:
  double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t ld_ = 0;
};

/// Non-owning read-only window; see MatrixView.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, std::size_t rows, std::size_t cols,
                  std::size_t ld) noexcept
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(ld >= cols || rows == 0);
  }
  /// Implicit widening from a mutable view.
  ConstMatrixView(MatrixView v) noexcept  // NOLINT(google-explicit-constructor)
      : ConstMatrixView(v.data(), v.rows(), v.cols(), v.ld()) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t ld() const noexcept { return ld_; }
  std::size_t size() const noexcept { return rows_ * cols_; }
  bool empty() const noexcept { return size() == 0; }
  bool square() const noexcept { return rows_ == cols_; }
  bool packed() const noexcept { return ld_ == cols_; }

  const double* data() const noexcept { return data_; }
  const double* row(std::size_t i) const noexcept {
    assert(i < rows_);
    return data_ + i * ld_;
  }
  double operator()(std::size_t i, std::size_t j) const noexcept {
    assert(i < rows_ && j < cols_);
    return data_[i * ld_ + j];
  }

  ConstMatrixView block(std::size_t i0, std::size_t j0, std::size_t r,
                        std::size_t c) const;

 private:
  const double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t ld_ = 0;
};

}  // namespace capow::linalg
