// Elementwise and reduction operations on matrix views.
//
// These are the O(n^2) building blocks the Strassen family leans on: the
// seven quadrant products are stitched together from adds/subs, so their
// performance (and, in the paper's framing, their *memory traffic*) is a
// first-class concern. Every routine here works on strided views so that
// quadrants are processed in place.
#pragma once

#include <cstddef>

#include "capow/linalg/matrix.hpp"

namespace capow::linalg {

/// dst = src (shapes must match; throws std::invalid_argument otherwise).
void copy(ConstMatrixView src, MatrixView dst);

/// dst = a + b.
void add(ConstMatrixView a, ConstMatrixView b, MatrixView dst);

/// dst = a - b.
void sub(ConstMatrixView a, ConstMatrixView b, MatrixView dst);

/// dst += src.
void add_inplace(MatrixView dst, ConstMatrixView src);

/// dst -= src.
void sub_inplace(MatrixView dst, ConstMatrixView src);

/// dst = alpha * dst.
void scale(MatrixView dst, double alpha);

/// dst += alpha * src.
void axpy(double alpha, ConstMatrixView src, MatrixView dst);

/// dst = transpose(src); src is r x c, dst must be c x r.
void transpose(ConstMatrixView src, MatrixView dst);

/// Frobenius norm sqrt(sum a_ij^2).
double frobenius_norm(ConstMatrixView a);

/// Max-abs (Chebyshev) norm.
double max_abs(ConstMatrixView a);

/// Max elementwise |a - b| (shapes must match).
double max_abs_diff(ConstMatrixView a, ConstMatrixView b);

/// True when |a_ij - b_ij| <= atol + rtol * |b_ij| for all elements.
bool allclose(ConstMatrixView a, ConstMatrixView b, double rtol = 1e-9,
              double atol = 1e-12);

/// Relative forward error ||a - b||_F / max(||b||_F, tiny). Used by the
/// Strassen stability tests (Higham-style bounds grow with recursion
/// depth, so comparisons are against a depth-aware tolerance).
double relative_error(ConstMatrixView a, ConstMatrixView b);

/// Copies `src` into the top-left corner of `dst` and zero-fills the rest.
/// Used to pad odd-sized problems up to a Strassen-friendly dimension.
void copy_padded(ConstMatrixView src, MatrixView dst);

/// Rounds n up to the next multiple of `multiple` (multiple >= 1).
std::size_t round_up(std::size_t n, std::size_t multiple);

/// Smallest dimension >= n of the form base * 2^k with base <= max_base.
/// Strassen recursion halves until the base case, so inputs are padded to
/// such a dimension; `max_base` is typically the base-case cutoff.
std::size_t pad_dimension_for_recursion(std::size_t n, std::size_t max_base);

}  // namespace capow::linalg
