#include "capow/linalg/random.hpp"

namespace capow::linalg {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Xoshiro256::uniform_u64(std::uint64_t bound) noexcept {
  return next() % bound;
}

void fill_random(MatrixView m, std::uint64_t seed, double lo, double hi) {
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double* p = m.row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) p[j] = rng.uniform(lo, hi);
  }
}

Matrix random_square(std::size_t n, std::uint64_t seed, double lo,
                     double hi) {
  return random_matrix(n, n, seed, lo, hi);
}

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed,
                     double lo, double hi) {
  Matrix m(rows, cols);
  fill_random(m.view(), seed, lo, hi);
  return m;
}

}  // namespace capow::linalg
