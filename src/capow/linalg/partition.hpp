// Quadrant partitioning for divide-and-conquer matrix algorithms.
//
// Strassen and CAPS recurse on the 2x2 quadrant decomposition of Eq (7);
// this header provides the canonical partition of a view into
// {A11, A12, A21, A22}. For odd dimensions the split is handled by
// padding at the algorithm entry point, so partition() requires even
// dimensions and throws otherwise.
#pragma once

#include <array>

#include "capow/linalg/matrix.hpp"

namespace capow::linalg {

/// The four quadrants of an even-dimension matrix view, indexed
/// q[0]=A11, q[1]=A12, q[2]=A21, q[3]=A22.
template <typename View>
struct Quadrants {
  View q11, q12, q21, q22;
};

/// Splits an even x even view into its four quadrants.
/// Throws std::invalid_argument when rows or cols is odd.
Quadrants<MatrixView> partition(MatrixView m);
Quadrants<ConstMatrixView> partition(ConstMatrixView m);

/// True when the dimension can be quadrant-split.
inline bool splittable(ConstMatrixView m) noexcept {
  return m.rows() % 2 == 0 && m.cols() % 2 == 0 && m.rows() >= 2 &&
         m.cols() >= 2;
}

}  // namespace capow::linalg
