#include "capow/linalg/matrix.hpp"

#include <algorithm>
#include <cstring>
#include <new>

namespace capow::linalg {

namespace detail {

AlignedBuffer allocate_aligned(std::size_t count) {
  if (count == 0) return AlignedBuffer{};
  // aligned_alloc requires size to be a multiple of the alignment.
  std::size_t bytes = count * sizeof(double);
  std::size_t rem = bytes % kMatrixAlignment;
  if (rem != 0) bytes += kMatrixAlignment - rem;
  void* p = std::aligned_alloc(kMatrixAlignment, bytes);
  if (p == nullptr) throw std::bad_alloc();
  return AlignedBuffer{static_cast<double*>(p)};
}

}  // namespace detail

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(detail::allocate_aligned(rows * cols)) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double init)
    : Matrix(rows, cols) {
  fill(init);
}

Matrix::Matrix(const Matrix& other) : Matrix(other.rows_, other.cols_) {
  if (!empty()) {
    std::memcpy(data_.get(), other.data_.get(), size() * sizeof(double));
  }
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  Matrix tmp(other);
  *this = std::move(tmp);
  return *this;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m = zeros(n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::fill(double value) noexcept {
  std::fill_n(data_.get(), size(), value);
}

MatrixView Matrix::view() noexcept {
  return MatrixView(data(), rows_, cols_, cols_);
}

ConstMatrixView Matrix::view() const noexcept {
  return ConstMatrixView(data(), rows_, cols_, cols_);
}

ConstMatrixView Matrix::cview() const noexcept { return view(); }

namespace {

void check_window(std::size_t i0, std::size_t j0, std::size_t r,
                  std::size_t c, std::size_t rows, std::size_t cols) {
  if (i0 + r > rows || j0 + c > cols) {
    throw std::out_of_range(
        "matrix block window [" + std::to_string(i0) + "+" +
        std::to_string(r) + ", " + std::to_string(j0) + "+" +
        std::to_string(c) + ") exceeds matrix of " + std::to_string(rows) +
        "x" + std::to_string(cols));
  }
}

}  // namespace

MatrixView Matrix::block(std::size_t i0, std::size_t j0, std::size_t r,
                         std::size_t c) {
  check_window(i0, j0, r, c, rows_, cols_);
  return MatrixView(data() + i0 * cols_ + j0, r, c, cols_);
}

ConstMatrixView Matrix::block(std::size_t i0, std::size_t j0, std::size_t r,
                              std::size_t c) const {
  check_window(i0, j0, r, c, rows_, cols_);
  return ConstMatrixView(data() + i0 * cols_ + j0, r, c, cols_);
}

MatrixView MatrixView::block(std::size_t i0, std::size_t j0, std::size_t r,
                             std::size_t c) const {
  check_window(i0, j0, r, c, rows_, cols_);
  return MatrixView(data_ + i0 * ld_ + j0, r, c, ld_);
}

void MatrixView::fill(double value) const noexcept {
  for (std::size_t i = 0; i < rows_; ++i) {
    std::fill_n(row(i), cols_, value);
  }
}

ConstMatrixView ConstMatrixView::block(std::size_t i0, std::size_t j0,
                                       std::size_t r, std::size_t c) const {
  check_window(i0, j0, r, c, rows_, cols_);
  return ConstMatrixView(data_ + i0 * ld_ + j0, r, c, ld_);
}

}  // namespace capow::linalg
