// Deterministic pseudo-random matrix generation.
//
// The paper's execution matrix uses "randomly generated matrices"; we use a
// seeded xoshiro256** generator so every experiment is reproducible and
// every algorithm sees bit-identical inputs for a given (size, seed) pair.
#pragma once

#include <cstdint>

#include "capow/linalg/matrix.hpp"

namespace capow::linalg {

/// xoshiro256** — small, fast, high-quality PRNG (Blackman & Vigna).
/// Deterministic across platforms; seeded through splitmix64 so that any
/// 64-bit seed produces a well-mixed state.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  /// Next 64 uniform random bits.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound) (bound > 0; slight modulo bias is
  /// acceptable for workload generation).
  std::uint64_t uniform_u64(std::uint64_t bound) noexcept;

 private:
  std::uint64_t s_[4];
};

/// Fills `m` with uniform values in [lo, hi) from a generator seeded with
/// `seed`. Element order is row-major and independent of stride, so a view
/// and an owning matrix of equal shape receive identical values.
void fill_random(MatrixView m, std::uint64_t seed, double lo = -1.0,
                 double hi = 1.0);

/// Allocates and fills an n x n matrix; the standard workload generator
/// used by the harness and benches. (Named distinctly from the
/// rectangular factory so integer-literal calls never silently bind to
/// the wrong overload.)
Matrix random_square(std::size_t n, std::uint64_t seed, double lo = -1.0,
                     double hi = 1.0);

/// Allocates and fills a rows x cols matrix.
Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed,
                     double lo = -1.0, double hi = 1.0);

}  // namespace capow::linalg
