#include "capow/linalg/partition.hpp"

#include <stdexcept>

namespace capow::linalg {

namespace {

void check_even(std::size_t rows, std::size_t cols) {
  if (rows % 2 != 0 || cols % 2 != 0 || rows == 0 || cols == 0) {
    throw std::invalid_argument(
        "partition: dimensions must be even and nonzero");
  }
}

}  // namespace

Quadrants<MatrixView> partition(MatrixView m) {
  check_even(m.rows(), m.cols());
  const std::size_t hr = m.rows() / 2;
  const std::size_t hc = m.cols() / 2;
  return {m.block(0, 0, hr, hc), m.block(0, hc, hr, hc),
          m.block(hr, 0, hr, hc), m.block(hr, hc, hr, hc)};
}

Quadrants<ConstMatrixView> partition(ConstMatrixView m) {
  check_even(m.rows(), m.cols());
  const std::size_t hr = m.rows() / 2;
  const std::size_t hc = m.cols() / 2;
  return {m.block(0, 0, hr, hc), m.block(0, hc, hr, hc),
          m.block(hr, 0, hr, hc), m.block(hr, hc, hr, hc)};
}

}  // namespace capow::linalg
