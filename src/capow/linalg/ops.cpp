#include "capow/linalg/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

namespace capow::linalg {

namespace {

void check_same_shape(ConstMatrixView a, ConstMatrixView b,
                      const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(
        std::string(what) + ": shape mismatch " + std::to_string(a.rows()) +
        "x" + std::to_string(a.cols()) + " vs " + std::to_string(b.rows()) +
        "x" + std::to_string(b.cols()));
  }
}

}  // namespace

void copy(ConstMatrixView src, MatrixView dst) {
  check_same_shape(src, dst, "copy");
  if (src.packed() && dst.packed()) {
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(double));
    return;
  }
  for (std::size_t i = 0; i < src.rows(); ++i) {
    std::memcpy(dst.row(i), src.row(i), src.cols() * sizeof(double));
  }
}

void add(ConstMatrixView a, ConstMatrixView b, MatrixView dst) {
  check_same_shape(a, b, "add");
  check_same_shape(a, dst, "add");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* pa = a.row(i);
    const double* pb = b.row(i);
    double* pd = dst.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) pd[j] = pa[j] + pb[j];
  }
}

void sub(ConstMatrixView a, ConstMatrixView b, MatrixView dst) {
  check_same_shape(a, b, "sub");
  check_same_shape(a, dst, "sub");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* pa = a.row(i);
    const double* pb = b.row(i);
    double* pd = dst.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) pd[j] = pa[j] - pb[j];
  }
}

void add_inplace(MatrixView dst, ConstMatrixView src) {
  check_same_shape(src, dst, "add_inplace");
  for (std::size_t i = 0; i < src.rows(); ++i) {
    const double* ps = src.row(i);
    double* pd = dst.row(i);
    for (std::size_t j = 0; j < src.cols(); ++j) pd[j] += ps[j];
  }
}

void sub_inplace(MatrixView dst, ConstMatrixView src) {
  check_same_shape(src, dst, "sub_inplace");
  for (std::size_t i = 0; i < src.rows(); ++i) {
    const double* ps = src.row(i);
    double* pd = dst.row(i);
    for (std::size_t j = 0; j < src.cols(); ++j) pd[j] -= ps[j];
  }
}

void scale(MatrixView dst, double alpha) {
  for (std::size_t i = 0; i < dst.rows(); ++i) {
    double* pd = dst.row(i);
    for (std::size_t j = 0; j < dst.cols(); ++j) pd[j] *= alpha;
  }
}

void axpy(double alpha, ConstMatrixView src, MatrixView dst) {
  check_same_shape(src, dst, "axpy");
  for (std::size_t i = 0; i < src.rows(); ++i) {
    const double* ps = src.row(i);
    double* pd = dst.row(i);
    for (std::size_t j = 0; j < src.cols(); ++j) pd[j] += alpha * ps[j];
  }
}

void transpose(ConstMatrixView src, MatrixView dst) {
  if (src.rows() != dst.cols() || src.cols() != dst.rows()) {
    throw std::invalid_argument("transpose: dst must be src's shape swapped");
  }
  // Blocked to keep both access streams cache-resident.
  constexpr std::size_t kTile = 32;
  for (std::size_t i0 = 0; i0 < src.rows(); i0 += kTile) {
    const std::size_t imax = std::min(i0 + kTile, src.rows());
    for (std::size_t j0 = 0; j0 < src.cols(); j0 += kTile) {
      const std::size_t jmax = std::min(j0 + kTile, src.cols());
      for (std::size_t i = i0; i < imax; ++i) {
        for (std::size_t j = j0; j < jmax; ++j) {
          dst(j, i) = src(i, j);
        }
      }
    }
  }
}

double frobenius_norm(ConstMatrixView a) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* p = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) sum += p[j] * p[j];
  }
  return std::sqrt(sum);
}

double max_abs(ConstMatrixView a) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* p = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::fabs(p[j]));
    }
  }
  return m;
}

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  check_same_shape(a, b, "max_abs_diff");
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* pa = a.row(i);
    const double* pb = b.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::fabs(pa[j] - pb[j]));
    }
  }
  return m;
}

bool allclose(ConstMatrixView a, ConstMatrixView b, double rtol,
              double atol) {
  check_same_shape(a, b, "allclose");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* pa = a.row(i);
    const double* pb = b.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (std::fabs(pa[j] - pb[j]) > atol + rtol * std::fabs(pb[j])) {
        return false;
      }
    }
  }
  return true;
}

double relative_error(ConstMatrixView a, ConstMatrixView b) {
  check_same_shape(a, b, "relative_error");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* pa = a.row(i);
    const double* pb = b.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double d = pa[j] - pb[j];
      num += d * d;
      den += pb[j] * pb[j];
    }
  }
  const double tiny = 1e-300;
  return std::sqrt(num) / std::max(std::sqrt(den), tiny);
}

void copy_padded(ConstMatrixView src, MatrixView dst) {
  if (dst.rows() < src.rows() || dst.cols() < src.cols()) {
    throw std::invalid_argument("copy_padded: dst smaller than src");
  }
  for (std::size_t i = 0; i < src.rows(); ++i) {
    double* pd = dst.row(i);
    std::memcpy(pd, src.row(i), src.cols() * sizeof(double));
    std::fill(pd + src.cols(), pd + dst.cols(), 0.0);
  }
  for (std::size_t i = src.rows(); i < dst.rows(); ++i) {
    std::fill_n(dst.row(i), dst.cols(), 0.0);
  }
}

std::size_t round_up(std::size_t n, std::size_t multiple) {
  if (multiple == 0) throw std::invalid_argument("round_up: multiple == 0");
  const std::size_t rem = n % multiple;
  return rem == 0 ? n : n + (multiple - rem);
}

std::size_t pad_dimension_for_recursion(std::size_t n, std::size_t max_base) {
  if (max_base == 0) {
    throw std::invalid_argument("pad_dimension_for_recursion: max_base == 0");
  }
  if (n <= max_base) return n;
  // Find the smallest base * 2^k >= n with base <= max_base: halve n
  // (rounding up) until it fits in the base case, then scale back up.
  std::size_t levels = 0;
  std::size_t m = n;
  while (m > max_base) {
    m = (m + 1) / 2;
    ++levels;
  }
  return m << levels;
}

}  // namespace capow::linalg
