// Cost prediction for admission control and algorithm choice.
//
// capowd admits by *predicted joules*, so its predictions must come
// from the models the rest of the repo already validates: the
// per-algorithm closed-form cost profiles (blas/strassen/capsalg
// cost_model.hpp) run through the roofline-with-contention simulator
// (sim::simulate). One prediction per (algorithm, n) is exact,
// deterministic, and cheap — and memoized here because a load trace
// re-uses a small set of shapes thousands of times.
//
// Algorithm choice implements the paper's decision procedure, not a
// heuristic: under normal operation the scheduler picks the minimum
// predicted *time*, considering Strassen/CAPS only at dimensions above
// the Eq (9) crossover n = 480*y/z (below it the recursive algorithms
// lose to blocked GEMM on this machine balance — the paper's Table II
// result). Under the ladder's eco rung the objective flips to minimum
// predicted package *joules* across all three algorithms: degradation
// trades latency for energy using the same model that set the budget.
#pragma once

#include <cstddef>
#include <map>
#include <utility>

#include "capow/core/algorithms.hpp"
#include "capow/machine/machine.hpp"

namespace capow::serve {

/// One memoized model evaluation.
struct Prediction {
  double seconds = 0.0;    ///< predicted wall time
  double package_j = 0.0;  ///< predicted PACKAGE-plane energy
};

/// The scheduler's pick plus the prediction that justified it.
struct AlgorithmChoice {
  core::AlgorithmId algorithm = core::AlgorithmId::kOpenBlas;
  Prediction prediction;
};

/// Memoizing cost predictor for square n x n matmuls with `threads`
/// workers on one machine model. Not thread-safe (engine-thread only).
class CostPredictor {
 public:
  CostPredictor(machine::MachineSpec spec, unsigned threads);

  /// Model evaluation for one algorithm at dimension n (memoized).
  /// Throws std::invalid_argument for n == 0.
  const Prediction& predict(core::AlgorithmId algorithm, std::size_t n);

  /// Scheduler choice: minimum predicted seconds with the Eq (9)
  /// crossover gate when `eco` is false; minimum predicted package
  /// joules over all algorithms when true. Ties break toward the lower
  /// AlgorithmId (registry order) for determinism.
  AlgorithmChoice choose(std::size_t n, bool eco);

  /// The Eq (9) crossover dimension for this machine at the tuned GEMM
  /// efficiency — the gate normal-mode choice applies to Strassen/CAPS.
  double crossover_n() const noexcept { return crossover_n_; }

  const machine::MachineSpec& spec() const noexcept { return spec_; }
  unsigned threads() const noexcept { return threads_; }

 private:
  machine::MachineSpec spec_;
  unsigned threads_;
  double crossover_n_;
  std::map<std::pair<int, std::size_t>, Prediction> cache_;
};

}  // namespace capow::serve
