// capowd: a long-running, overload-safe matmul service over
// capow::matmul().
//
// The paper measures matmuls one at a time; a service has to survive
// *many at once, forever, under a power budget*. capowd composes the
// repo's existing pieces into that shape:
//
//   * admission control — a token bucket denominated in predicted
//     joules (admission.hpp) fed by the validated cost models
//     (predictor.hpp); overload produces typed rejections, never an
//     unbounded queue (queue.hpp),
//   * per-request deadlines — queued requests past their deadline are
//     expired (joules refunded), and a dispatched request that stalls
//     beyond its watchdog grace is cooperatively cancelled
//     (tasking::TaskGroup::cancel), with the cancelled work accounted,
//   * graceful degradation — the bucket's fill ratio drives a ladder:
//     eco algorithm choice (Eq 9 model, minimum predicted joules) ->
//     ABFT correct relaxed to detect -> best-effort traffic shed; every
//     transition is a logged, counted decision.
//
// Determinism contract: the engine runs queueing dynamics on a
// *virtual* clock — arrivals come from a seeded trace (loadgen.hpp),
// service times are model predictions, and fault draws (serve.burst,
// serve.stall) are keyed on request ids. The decision sequence is
// therefore a pure function of (trace, options, fault plan): the
// serve-smoke CI job runs the same seed twice and byte-diffs
// ServeReport::decision_log(). Real matmul execution (execute mode) is
// one-way decoupled: wall-clock behaviour of the worker pool never
// feeds back into a decision. With no load and no degradation the
// service is transparent — serve_one() forwards to capow::matmul()
// with pass-through options, bit-identical to a direct call.
//
// Tie-breaks, documented because byte-diffs depend on them: events at
// equal virtual time process completions before arrivals; queued
// expiry is evaluated at event times (the decision timestamps the
// event, not the exact deadline instant); burst clones of an arrival
// are admitted immediately after their original, in copy order.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "capow/api/matmul.hpp"
#include "capow/rapl/msr.hpp"
#include "capow/serve/admission.hpp"
#include "capow/serve/loadgen.hpp"
#include "capow/serve/predictor.hpp"
#include "capow/serve/queue.hpp"
#include "capow/serve/request.hpp"
#include "capow/tasking/thread_pool.hpp"
#include "capow/telemetry/export.hpp"

namespace capow::serve {

/// Service configuration. Numeric CAPOW_SERVE_* environment overrides
/// are applied by from_env() using the shared strict grammar
/// (core/env.hpp): a malformed value stops the run with an error that
/// names the variable — a service must not start under a typo'd budget.
struct ServeOptions {
  /// Machine model the cost predictor runs against.
  machine::MachineSpec machine = machine::haswell_e3_1225();
  /// Modeled worker threads per executor slot.
  unsigned threads = 4;
  /// Concurrent executor slots (CAPOW_SERVE_SLOTS).
  unsigned slots = 2;
  /// Per-tier queue bound (CAPOW_SERVE_QUEUE_CAP).
  std::size_t queue_capacity = 8;
  /// Requests above this dimension are rejected kOversized.
  std::size_t max_n = 4096;
  /// Energy budget and ladder thresholds; budget.budget_w is the
  /// service's power contract (CAPOW_SERVE_BUDGET_W; <= 0 disables).
  EnergyBudgetOptions budget;
  /// Stall grace: a dispatched request is cancelled once its runtime
  /// exceeds prediction + watchdog_s (CAPOW_SERVE_WATCHDOG_MS; <= 0
  /// disables cancellation).
  double watchdog_s = 0.25;
  /// SLO: guaranteed-tier p99 completion latency target.
  double guaranteed_p99_slo_s = 1.5;
  /// Budget verdict headroom: achieved watts may exceed budget by this
  /// relative tolerance before budget_met flips false.
  double budget_tolerance = 0.10;
  /// When true, dispatched requests also execute real matmuls on
  /// `pool` (results discarded; virtual accounting unaffected), and
  /// virtually-cancelled requests drive the real cooperative-cancel
  /// path through a TaskGroup.
  bool execute = false;
  /// Worker pool for execute mode and serve_one(); null serves inline.
  tasking::ThreadPool* pool = nullptr;

  /// Applies CAPOW_SERVE_BUDGET_W / CAPOW_SERVE_QUEUE_CAP /
  /// CAPOW_SERVE_SLOTS / CAPOW_SERVE_WATCHDOG_MS on top of `base`
  /// (defaults when omitted). Throws std::invalid_argument naming the
  /// offending variable.
  static ServeOptions from_env(ServeOptions base);
  static ServeOptions from_env();
};

/// Per-tier outcome accounting (virtual latencies, predicted joules).
struct TierStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::array<std::uint64_t, 4> rejected{};  ///< by RejectReason
  double joules = 0.0;  ///< predicted joules spent (completed+cancelled)
  double p50_s = 0.0;   ///< completion latency percentiles (virtual)
  double p99_s = 0.0;
  double max_s = 0.0;

  std::uint64_t rejected_total() const noexcept;
  std::uint64_t rejected_for(RejectReason r) const noexcept {
    return rejected[static_cast<std::size_t>(r)];
  }
};

/// Everything one service run produced. The decision log is the
/// determinism surface; the verdicts are what CI asserts.
struct ServeReport {
  std::array<TierStats, kTierCount> tiers{};
  std::vector<Decision> decisions;
  /// Entries into each ladder level (index by DegradeLevel).
  std::array<std::uint64_t, kDegradeLevelCount> degrade_entries{};
  std::uint64_t degrade_transitions = 0;
  std::uint64_t bursts = 0;        ///< serve.burst amplifications
  std::uint64_t stalls = 0;        ///< serve.stall injections
  double duration_s = 0.0;         ///< virtual makespan
  double predicted_joules = 0.0;   ///< spent (completed + cancelled)
  double measured_joules = 0.0;    ///< read back through RaplReader
  double achieved_w = 0.0;         ///< predicted_joules / duration
  double budget_w = 0.0;
  double final_fill_ratio = 1.0;
  bool rapl_degraded = false;      ///< budget reads degraded (rapl.fail)
  std::uint64_t rapl_wraps = 0;
  bool slo_met = false;     ///< guaranteed p99 <= target, none expired
  bool budget_met = false;  ///< achieved_w <= budget * (1 + tolerance)
  /// Execute-mode observability (not part of the determinism surface).
  std::uint64_t executed = 0;       ///< real matmuls run
  std::uint64_t cancel_drills = 0;  ///< real TaskGroup cancels driven

  const TierStats& tier(QosTier t) const noexcept {
    return tiers[static_cast<std::size_t>(t)];
  }
  /// All decision lines joined with '\n' (trailing newline included) —
  /// the exact bytes the serve-smoke job diffs.
  std::string decision_log() const;
};

/// The service engine. Owns the predictor, bucket, queue and the
/// simulated RAPL device its energy accounting reconciles through.
class Server {
 public:
  /// Throws std::invalid_argument for slots/threads/queue_capacity of 0
  /// or inconsistent budget options.
  explicit Server(ServeOptions opts);

  const ServeOptions& options() const noexcept { return opts_; }

  /// Runs the trace to completion (all arrivals processed, queue and
  /// slots drained) and returns the report. Resets all state first, so
  /// a Server can run several traces; decisions restart at t=0.
  ServeReport run(const std::vector<Request>& trace);

  /// Synchronous unloaded path: full admission (oversized check,
  /// energy debit, algorithm choice at the current ladder level), then
  /// the matmul executes inline via capow::matmul() with pass-through
  /// options — bit-identical to a direct call with the same options.
  /// Returns kCompleted or kRejected (c untouched when rejected).
  Outcome serve_one(const Request& req, linalg::ConstMatrixView a,
                    linalg::ConstMatrixView b, linalg::MatrixView c);

  /// Rejection details for the last serve_one() that returned
  /// kRejected.
  RejectReason last_reject_reason() const noexcept { return last_reject_; }

 private:
  struct Running {
    QueuedRequest qr;
    double finish_t_s = 0.0;
    bool cancelled = false;
    bool stalled = false;
  };

  void reset_run_state();
  void sync_level(double t_s, ServeReport& report);
  void admit(const Request& req, double t_s, ServeReport& report);
  void expire_due(double t_s, ServeReport& report);
  void dispatch_ready(double t_s, ServeReport& report);
  void complete(const Running& r, ServeReport& report);
  void execute_request(const Running& r, ServeReport& report);
  core::AlgorithmId choose_algorithm(const Request& req);
  abft::AbftMode effective_abft(const Request& req) const;
  void finalize(ServeReport& report);

  ServeOptions opts_;
  CostPredictor predictor_;
  EnergyBudget bucket_;
  TierQueue queue_;
  std::vector<Running> running_;
  DegradeLevel logged_level_ = DegradeLevel::kNone;
  rapl::SimulatedMsrDevice msr_;
  /// Lives across the whole run: RaplReader latches its baseline at
  /// construction/reset(), so a reader created only at finalize() time
  /// would read an energy delta of zero.
  rapl::RaplReader rapl_reader_;
  RejectReason last_reject_ = RejectReason::kQueueFull;
  double serve_one_clock_s_ = 0.0;
};

/// Exports a report as Prometheus families (capow_serve_*) — the
/// telemetry surface the ISSUE's overload studies scrape: per-tier
/// outcome/rejection counters, shed and degrade totals, per-tier
/// latency quantiles, predicted vs measured joules, budget vs achieved
/// watts, and the RAPL health of the budget read-back path.
void export_serve_metrics(const ServeReport& report,
                          telemetry::MetricsRegistry& registry);

}  // namespace capow::serve
