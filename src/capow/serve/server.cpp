#include "capow/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "capow/core/env.hpp"
#include "capow/fault/fault.hpp"
#include "capow/tasking/task_group.hpp"

namespace capow::serve {

namespace {

/// Burst clones get ids in a disjoint decade above the trace ids
/// (clone k of request r is r + k * kBurstIdStride), keeping log lines
/// readable while staying collision-free for any realistic trace.
constexpr std::uint64_t kBurstIdStride = 1000000;

/// Real-time grace before a cancel drill fires in execute mode. Only
/// pacing for the *real* cooperative-cancel exercise; never consulted
/// by virtual accounting.
constexpr auto kCancelDrillDelay = std::chrono::milliseconds(5);

/// Nearest-rank percentile of an unsorted latency sample.
double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(v.size())));
  return v[std::min(v.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// Deterministic operand fill for execute mode, keyed on the shape so
/// repeated shapes reuse cached operands.
void fill_operand(std::vector<double>& m, std::uint64_t salt) {
  std::uint64_t state = 0x5eedULL + salt;
  for (auto& x : m) {
    x = (static_cast<double>(splitmix64(state) >> 11) * 0x1p-53) * 2.0 - 1.0;
  }
}

}  // namespace

std::uint64_t TierStats::rejected_total() const noexcept {
  std::uint64_t n = 0;
  for (const auto r : rejected) n += r;
  return n;
}

std::string ServeReport::decision_log() const {
  std::string out;
  for (const auto& d : decisions) {
    out += format_decision(d);
    out += '\n';
  }
  return out;
}

ServeOptions ServeOptions::from_env() { return from_env(ServeOptions{}); }

ServeOptions ServeOptions::from_env(ServeOptions base) {
  if (const auto w =
          core::env_double_in("CAPOW_SERVE_BUDGET_W", 0.0, 1e9)) {
    base.budget.budget_w = *w;
  }
  if (const auto cap =
          core::env_integer_in("CAPOW_SERVE_QUEUE_CAP", 1, 1 << 20)) {
    base.queue_capacity = static_cast<std::size_t>(*cap);
  }
  if (const auto slots = core::env_integer_in("CAPOW_SERVE_SLOTS", 1, 4096)) {
    base.slots = static_cast<unsigned>(*slots);
  }
  if (const auto ms =
          core::env_integer_in("CAPOW_SERVE_WATCHDOG_MS", 0, 86400000)) {
    base.watchdog_s = static_cast<double>(*ms) * 1e-3;
  }
  return base;
}

Server::Server(ServeOptions opts)
    : opts_(std::move(opts)),
      predictor_(opts_.machine, opts_.threads),
      bucket_(opts_.budget),
      queue_(opts_.queue_capacity),
      rapl_reader_(msr_) {
  if (opts_.slots == 0) {
    throw std::invalid_argument("Server: slots must be >= 1");
  }
  if (opts_.queue_capacity == 0) {
    throw std::invalid_argument("Server: queue_capacity must be >= 1");
  }
  if (opts_.max_n == 0) {
    throw std::invalid_argument("Server: max_n must be >= 1");
  }
}

void Server::reset_run_state() {
  bucket_ = EnergyBudget(opts_.budget);
  queue_ = TierQueue(opts_.queue_capacity);
  running_.clear();
  logged_level_ = DegradeLevel::kNone;
  msr_.reset();
  rapl_reader_.reset();
  serve_one_clock_s_ = 0.0;
}

void Server::sync_level(double t_s, ServeReport& report) {
  const DegradeLevel level = bucket_.level();
  if (level == logged_level_) return;
  logged_level_ = level;
  Decision d;
  d.kind = Decision::Kind::kDegrade;
  d.t_s = t_s;
  d.level = level;
  report.decisions.push_back(d);
  report.degrade_transitions += 1;
  report.degrade_entries[static_cast<std::size_t>(level)] += 1;
}

core::AlgorithmId Server::choose_algorithm(const Request& req) {
  if (req.algorithm) return *req.algorithm;
  return predictor_.choose(req.n, bucket_.level() >= DegradeLevel::kEco)
      .algorithm;
}

abft::AbftMode Server::effective_abft(const Request& req) const {
  if (bucket_.level() >= DegradeLevel::kAbftRelax &&
      req.abft == abft::AbftMode::kCorrect) {
    return abft::AbftMode::kDetect;
  }
  return req.abft;
}

void Server::admit(const Request& req, double t_s, ServeReport& report) {
  auto& stats = report.tiers[static_cast<std::size_t>(req.tier)];
  stats.submitted += 1;

  const auto reject = [&](RejectReason reason) {
    stats.rejected[static_cast<std::size_t>(reason)] += 1;
    last_reject_ = reason;
    Decision d;
    d.kind = Decision::Kind::kReject;
    d.t_s = t_s;
    d.request_id = req.id;
    d.tier = req.tier;
    d.level = bucket_.level();
    d.reason = reason;
    report.decisions.push_back(d);
  };

  if (req.n == 0 || req.n > opts_.max_n) {
    reject(RejectReason::kOversized);
    return;
  }
  if (bucket_.level() >= DegradeLevel::kShed &&
      req.tier == QosTier::kBestEffort) {
    reject(RejectReason::kShedding);
    return;
  }
  if (queue_.full(req.tier)) {
    reject(RejectReason::kQueueFull);
    return;
  }

  QueuedRequest qr;
  qr.request = req;
  qr.algorithm = choose_algorithm(req);
  qr.abft = effective_abft(req);
  qr.prediction = predictor_.predict(qr.algorithm, req.n);
  qr.admit_t_s = t_s;
  qr.admit_level = bucket_.level();

  if (!bucket_.try_debit(qr.prediction.package_j, req.tier)) {
    reject(RejectReason::kEnergyBudget);
    return;
  }
  sync_level(t_s, report);  // the debit itself may escalate the ladder

  stats.admitted += 1;
  Decision d;
  d.kind = Decision::Kind::kAdmit;
  d.t_s = t_s;
  d.request_id = req.id;
  d.tier = req.tier;
  d.level = qr.admit_level;
  d.algorithm = qr.algorithm;
  d.joules = qr.prediction.package_j;
  report.decisions.push_back(d);
  queue_.push(std::move(qr));  // cannot fail: full() checked above
}

void Server::expire_due(double t_s, ServeReport& report) {
  for (auto& qr : queue_.take_expired(t_s)) {
    bucket_.refund(qr.prediction.package_j);
    auto& stats =
        report.tiers[static_cast<std::size_t>(qr.request.tier)];
    stats.expired += 1;
    Decision d;
    d.kind = Decision::Kind::kExpire;
    d.t_s = t_s;
    d.request_id = qr.request.id;
    d.tier = qr.request.tier;
    d.level = bucket_.level();
    d.joules = qr.prediction.package_j;
    report.decisions.push_back(d);
  }
  sync_level(t_s, report);  // refunds may step the ladder back down
}

void Server::dispatch_ready(double t_s, ServeReport& report) {
  auto* inj = fault::FaultInjector::active();
  while (running_.size() < opts_.slots) {
    auto qr = queue_.pop();
    if (!qr) break;

    Running r;
    r.qr = std::move(*qr);
    double service_s = r.qr.prediction.seconds;
    if (inj != nullptr &&
        inj->fire(fault::Site::kServeStall, fault::key(r.qr.request.id))) {
      inj->record(fault::Event::kServeStall);
      report.stalls += 1;
      r.stalled = true;
      const double stall_s = inj->plan().serve_stall_ms * 1e-3;
      // The watchdog grants prediction + watchdog_s of runtime; a
      // stall that overruns the grace gets the request cancelled at
      // exactly the grace deadline (work up to that point accounted).
      if (opts_.watchdog_s > 0.0 && stall_s > opts_.watchdog_s) {
        r.cancelled = true;
        service_s += opts_.watchdog_s;
      } else {
        service_s += stall_s;
      }
    }
    r.finish_t_s = t_s + service_s;

    Decision d;
    d.kind = Decision::Kind::kDispatch;
    d.t_s = t_s;
    d.request_id = r.qr.request.id;
    d.tier = r.qr.request.tier;
    d.level = bucket_.level();
    d.algorithm = r.qr.algorithm;
    report.decisions.push_back(d);
    running_.push_back(std::move(r));
  }
}

void Server::complete(const Running& r, ServeReport& report) {
  auto& stats =
      report.tiers[static_cast<std::size_t>(r.qr.request.tier)];
  stats.joules += r.qr.prediction.package_j;
  // Predicted energy becomes "measured" energy by depositing into the
  // simulated RAPL device; finalize() reads it back through a
  // RaplReader, so injected rapl.fail faults degrade the budget
  // read-back exactly as they would a real power-capped service.
  msr_.deposit(machine::PowerPlane::kPackage, r.qr.prediction.package_j);

  Decision d;
  d.t_s = r.finish_t_s;
  d.request_id = r.qr.request.id;
  d.tier = r.qr.request.tier;
  d.level = bucket_.level();
  d.algorithm = r.qr.algorithm;
  if (r.cancelled) {
    stats.cancelled += 1;
    d.kind = Decision::Kind::kCancel;
  } else {
    stats.completed += 1;
    d.kind = Decision::Kind::kComplete;
    d.joules = r.qr.prediction.package_j;
  }
  report.decisions.push_back(d);
}

void Server::execute_request(const Running& r, ServeReport& report) {
  const std::size_t n = r.qr.request.n;
  static thread_local std::unordered_map<std::size_t,
                                         std::vector<double>> a_cache;
  auto& a = a_cache[n];
  std::vector<double> b(n * n), c(n * n, 0.0);
  if (a.size() != n * n) {
    a.assign(n * n, 0.0);
    fill_operand(a, n);
  }
  fill_operand(b, n + 1);

  MatmulOptions mo;
  mo.algorithm = r.qr.algorithm;
  mo.pool = opts_.pool;
  mo.abft.mode = r.qr.abft;

  if (r.cancelled && opts_.pool != nullptr &&
      opts_.pool->concurrency() > 0) {
    // Drive the *real* cooperative-cancel path: the worker stalls in
    // small slices polling TaskGroup::cancelled(), the engine thread
    // plays watchdog and cancels it. The matmul never runs — exactly
    // what the virtual accounting already charged as cancelled work.
    tasking::TaskGroup tg(*opts_.pool);
    tg.run([&tg] {
      for (int i = 0; i < 1000 && !tg.cancelled(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    std::this_thread::sleep_for(kCancelDrillDelay);
    tg.cancel();
    tg.wait();
    report.cancel_drills += 1;
    return;
  }
  if (r.cancelled) return;  // no pool to drill against

  linalg::ConstMatrixView av{a.data(), n, n, n};
  linalg::ConstMatrixView bv{b.data(), n, n, n};
  linalg::MatrixView cv{c.data(), n, n, n};
  matmul(av, bv, cv, mo);
  report.executed += 1;
}

ServeReport Server::run(const std::vector<Request>& trace) {
  reset_run_state();
  ServeReport report;
  report.budget_w = opts_.budget.budget_w;

  std::vector<Request> arrivals = trace;
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Request& x, const Request& y) {
                     return x.arrival_s < y.arrival_s ||
                            (x.arrival_s == y.arrival_s && x.id < y.id);
                   });

  auto* inj = fault::FaultInjector::active();
  std::size_t next_arrival = 0;
  double now = 0.0;

  while (next_arrival < arrivals.size() || !running_.empty() ||
         !queue_.empty()) {
    // Earliest completion, if any.
    std::size_t done_idx = running_.size();
    for (std::size_t i = 0; i < running_.size(); ++i) {
      if (done_idx == running_.size() ||
          running_[i].finish_t_s < running_[done_idx].finish_t_s) {
        done_idx = i;
      }
    }
    const bool have_done = done_idx < running_.size();
    const bool have_arrival = next_arrival < arrivals.size();

    // Completions win virtual-time ties against arrivals (documented
    // tie-break: a freed slot is visible to a same-instant arrival).
    if (have_done &&
        (!have_arrival ||
         running_[done_idx].finish_t_s <=
             arrivals[next_arrival].arrival_s)) {
      Running r = std::move(running_[done_idx]);
      running_.erase(running_.begin() +
                     static_cast<std::ptrdiff_t>(done_idx));
      now = r.finish_t_s;
      bucket_.advance(now);
      sync_level(now, report);
      complete(r, report);
      if (opts_.execute) execute_request(r, report);
      expire_due(now, report);
      dispatch_ready(now, report);
      continue;
    }
    if (have_arrival) {
      const Request req = arrivals[next_arrival++];
      now = req.arrival_s;
      bucket_.advance(now);
      sync_level(now, report);
      expire_due(now, report);
      admit(req, now, report);
      if (inj != nullptr &&
          inj->fire(fault::Site::kServeBurst, fault::key(req.id))) {
        inj->record(fault::Event::kServeBurst);
        report.bursts += 1;
        const auto copies = static_cast<std::uint64_t>(
            inj->plan().serve_burst_copies);
        for (std::uint64_t k = 1; k <= copies; ++k) {
          Request clone = req;
          clone.id = req.id + k * kBurstIdStride;
          admit(clone, now, report);
        }
      }
      dispatch_ready(now, report);
      continue;
    }
    // No completions pending and no arrivals left, yet the queue holds
    // work: every slot must be free (dispatch_ready fills them), so
    // this is unreachable unless a deadline blocked dispatch — drain
    // defensively by expiring everything left.
    expire_due(now + 1e9, report);
  }

  report.duration_s = now;
  finalize(report);
  return report;
}

void Server::finalize(ServeReport& report) {
  for (const auto& t : report.tiers) report.predicted_joules += t.joules;

  // Per-tier latency percentiles from the completion decisions (virtual
  // completion time minus virtual arrival).
  std::vector<double> lat[kTierCount];
  std::unordered_map<std::uint64_t, double> arrival_by_id;
  for (const auto& d : report.decisions) {
    if (d.kind == Decision::Kind::kAdmit) {
      // Admission time is not arrival time for burst clones, but both
      // carry the original's arrival instant, so admit t == arrival t.
      arrival_by_id.emplace(d.request_id, d.t_s);
    } else if (d.kind == Decision::Kind::kComplete) {
      const auto it = arrival_by_id.find(d.request_id);
      if (it != arrival_by_id.end()) {
        lat[static_cast<std::size_t>(d.tier)].push_back(d.t_s -
                                                        it->second);
      }
    }
  }
  for (std::size_t i = 0; i < kTierCount; ++i) {
    auto& stats = report.tiers[i];
    stats.p50_s = percentile(lat[i], 0.50);
    stats.p99_s = percentile(lat[i], 0.99);
    stats.max_s =
        lat[i].empty() ? 0.0 : *std::max_element(lat[i].begin(),
                                                 lat[i].end());
  }

  // Reconcile predicted energy against the RAPL read-back path: what a
  // deployed capowd would actually see when it audits its own budget.
  report.measured_joules =
      rapl_reader_.energy_joules(machine::PowerPlane::kPackage);
  report.rapl_degraded = rapl_reader_.degraded();
  report.rapl_wraps = rapl_reader_.wraps();
  report.final_fill_ratio = bucket_.fill_ratio();
  report.achieved_w = report.duration_s > 0.0
                          ? report.predicted_joules / report.duration_s
                          : 0.0;

  const auto& g = report.tier(QosTier::kGuaranteed);
  report.slo_met = g.expired == 0 && g.cancelled == 0 &&
                   g.rejected_for(RejectReason::kShedding) == 0 &&
                   (g.completed == 0 ||
                    g.p99_s <= opts_.guaranteed_p99_slo_s);
  report.budget_met =
      report.budget_w <= 0.0 ||
      report.achieved_w <=
          report.budget_w * (1.0 + opts_.budget_tolerance);
}

Outcome Server::serve_one(const Request& req, linalg::ConstMatrixView a,
                          linalg::ConstMatrixView b, linalg::MatrixView c) {
  // The synchronous path shares admission (oversized gate + energy
  // debit at the running serve_one clock) but executes inline: with an
  // idle service and a full bucket this is a pass-through to
  // capow::matmul() — the unloaded bit-identity contract.
  serve_one_clock_s_ += 1e-6;
  bucket_.advance(serve_one_clock_s_);
  if (req.n == 0 || req.n > opts_.max_n ||
      a.cols() != req.n || a.rows() != req.n) {
    last_reject_ = RejectReason::kOversized;
    return Outcome::kRejected;
  }
  if (bucket_.level() >= DegradeLevel::kShed &&
      req.tier == QosTier::kBestEffort) {
    last_reject_ = RejectReason::kShedding;
    return Outcome::kRejected;
  }
  const core::AlgorithmId algorithm = choose_algorithm(req);
  const Prediction& p = predictor_.predict(algorithm, req.n);
  if (!bucket_.try_debit(p.package_j, req.tier)) {
    last_reject_ = RejectReason::kEnergyBudget;
    return Outcome::kRejected;
  }
  MatmulOptions mo;
  mo.algorithm = algorithm;
  mo.pool = opts_.pool;
  mo.abft.mode = effective_abft(req);
  matmul(a, b, c, mo);
  msr_.deposit(machine::PowerPlane::kPackage, p.package_j);
  return Outcome::kCompleted;
}

void export_serve_metrics(const ServeReport& report,
                          telemetry::MetricsRegistry& registry) {
  registry.family("capow_serve_requests_total",
                  "Requests by tier and terminal outcome", "counter");
  std::uint64_t shed_total = 0;
  for (std::size_t i = 0; i < kTierCount; ++i) {
    const auto tier = static_cast<QosTier>(i);
    const auto& t = report.tiers[i];
    const std::string name = tier_name(tier);
    registry.sample({{"tier", name}, {"outcome", "completed"}},
                    static_cast<double>(t.completed));
    registry.sample({{"tier", name}, {"outcome", "rejected"}},
                    static_cast<double>(t.rejected_total()));
    registry.sample({{"tier", name}, {"outcome", "expired"}},
                    static_cast<double>(t.expired));
    registry.sample({{"tier", name}, {"outcome", "cancelled"}},
                    static_cast<double>(t.cancelled));
    shed_total += t.rejected_for(RejectReason::kShedding);
  }

  bool any_reject = false;
  for (const auto& t : report.tiers) {
    any_reject = any_reject || t.rejected_total() > 0;
  }
  if (any_reject) {
    registry.family("capow_serve_rejected_total",
                    "Admission rejections by tier and reason", "counter");
    for (std::size_t i = 0; i < kTierCount; ++i) {
      const auto& t = report.tiers[i];
      for (std::size_t r = 0; r < t.rejected.size(); ++r) {
        if (t.rejected[r] == 0) continue;
        registry.sample(
            {{"tier", tier_name(static_cast<QosTier>(i))},
             {"reason",
              reject_reason_name(static_cast<RejectReason>(r))}},
            static_cast<double>(t.rejected[r]));
      }
    }
  }

  registry.set("capow_serve_shed_total",
               "Best-effort requests turned away by the shed rung", {},
               static_cast<double>(shed_total), "counter");
  registry.family("capow_serve_degraded_total",
                  "Entries into each degradation ladder level",
                  "counter");
  for (std::size_t l = 1; l < kDegradeLevelCount; ++l) {
    registry.sample(
        {{"level", degrade_level_name(static_cast<DegradeLevel>(l))}},
        static_cast<double>(report.degrade_entries[l]));
  }

  registry.family("capow_serve_latency_seconds",
                  "Virtual completion latency quantiles by tier");
  for (std::size_t i = 0; i < kTierCount; ++i) {
    const auto& t = report.tiers[i];
    const std::string name = tier_name(static_cast<QosTier>(i));
    registry.sample({{"tier", name}, {"quantile", "0.5"}}, t.p50_s);
    registry.sample({{"tier", name}, {"quantile", "0.99"}}, t.p99_s);
  }

  registry.family("capow_serve_energy_joules",
                  "Energy spent serving (predicted vs RAPL read-back)");
  registry.sample({{"kind", "predicted"}}, report.predicted_joules);
  registry.sample({{"kind", "measured"}}, report.measured_joules);
  registry.set("capow_serve_budget_watts",
               "Configured power budget (0 = unlimited)", {},
               report.budget_w);
  registry.set("capow_serve_achieved_watts",
               "Predicted joules per virtual second over the run", {},
               report.achieved_w);
  registry.set("capow_serve_rapl_degraded",
               "1 when the budget's RAPL read-back path degraded", {},
               report.rapl_degraded ? 1.0 : 0.0);
  if (report.rapl_wraps > 0) {
    registry.set("capow_serve_rapl_wraps_total",
                 "Energy-counter wraps folded by the budget reader", {},
                 static_cast<double>(report.rapl_wraps), "counter");
  }
}

}  // namespace capow::serve
