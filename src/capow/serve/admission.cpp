#include "capow/serve/admission.hpp"

#include <algorithm>
#include <stdexcept>

namespace capow::serve {

EnergyBudget::EnergyBudget(const EnergyBudgetOptions& opts)
    : enabled_(opts.budget_w > 0.0),
      budget_w_(opts.budget_w),
      capacity_j_(opts.capacity_j > 0.0 ? opts.capacity_j
                                        : 2.0 * opts.budget_w),
      reserve_j_(0.0),
      opts_(opts),
      fill_j_(0.0) {
  if (enabled_) {
    if (opts.reserve_fraction < 0.0 || opts.reserve_fraction >= 1.0) {
      throw std::invalid_argument(
          "EnergyBudget: reserve_fraction must lie in [0, 1)");
    }
    if (!(opts.shed_below <= opts.abft_relax_below &&
          opts.abft_relax_below <= opts.eco_below)) {
      throw std::invalid_argument(
          "EnergyBudget: ladder thresholds must be ordered "
          "shed <= abft_relax <= eco");
    }
    reserve_j_ = opts.reserve_fraction * capacity_j_;
    fill_j_ = std::clamp(opts.initial_fill, 0.0, 1.0) * capacity_j_;
  }
  update_level();
}

void EnergyBudget::advance(double t_s) noexcept {
  if (t_s <= clock_s_) return;
  if (enabled_) {
    fill_j_ = std::min(capacity_j_, fill_j_ + budget_w_ * (t_s - clock_s_));
  }
  clock_s_ = t_s;
  update_level();
}

bool EnergyBudget::try_debit(double joules, QosTier tier) noexcept {
  if (!enabled_) return true;
  const double floor =
      tier == QosTier::kGuaranteed ? -capacity_j_ : reserve_j_;
  if (fill_j_ - joules < floor) return false;
  fill_j_ -= joules;
  debited_j_ += joules;
  update_level();
  return true;
}

void EnergyBudget::refund(double joules) noexcept {
  if (!enabled_) return;
  fill_j_ = std::min(capacity_j_, fill_j_ + joules);
  refunded_j_ += joules;
  update_level();
}

double EnergyBudget::fill_ratio() const noexcept {
  if (!enabled_) return 1.0;
  return std::clamp(fill_j_ / capacity_j_, 0.0, 1.0);
}

void EnergyBudget::update_level() noexcept {
  if (!enabled_) {
    level_ = DegradeLevel::kNone;
    return;
  }
  const double r = fill_ratio();
  // Escalate immediately at a threshold; de-escalate only past the
  // hysteresis band so a fill ratio oscillating around a threshold
  // does not thrash the ladder (each transition is a logged decision).
  const double h = opts_.hysteresis;
  DegradeLevel target;
  if (r < opts_.shed_below) {
    target = DegradeLevel::kShed;
  } else if (r < opts_.abft_relax_below) {
    target = DegradeLevel::kAbftRelax;
  } else if (r < opts_.eco_below) {
    target = DegradeLevel::kEco;
  } else {
    target = DegradeLevel::kNone;
  }
  if (target >= level_) {
    level_ = target;
    return;
  }
  // Recovery: step down one rung at a time, each gated on clearing its
  // own threshold plus the hysteresis margin.
  while (level_ > target) {
    double gate = 0.0;
    switch (level_) {
      case DegradeLevel::kShed: gate = opts_.shed_below + h; break;
      case DegradeLevel::kAbftRelax: gate = opts_.abft_relax_below + h; break;
      case DegradeLevel::kEco: gate = opts_.eco_below + h; break;
      case DegradeLevel::kNone: return;
    }
    if (r < gate) return;
    level_ = static_cast<DegradeLevel>(static_cast<int>(level_) - 1);
  }
}

}  // namespace capow::serve
