// Admission control for capowd: a token bucket denominated in joules.
//
// The service's power contract is "at most B watts averaged over the
// bucket horizon". A token bucket whose tokens are *predicted joules*
// (from the same cost models the harness trusts, see predictor.hpp)
// turns that contract into an admission decision: the bucket refills at
// B joules per virtual second up to a capacity of a few seconds' worth
// of budget, every admitted request debits its predicted energy up
// front, and a request the bucket cannot cover is rejected with a typed
// RejectReason::kEnergyBudget — overload produces fast, explicit
// rejections instead of an unbounded queue.
//
// Two-tier fairness is built into the debit rule: a reserve share of
// the capacity is readable only by guaranteed traffic, so best-effort
// load can never drain the bucket to the point where a guaranteed
// request bounces. Guaranteed traffic may additionally overdraw into
// bounded debt (down to -capacity): a single request costlier than the
// standing fill admits immediately and amortizes while the bucket
// refills, rather than starving forever behind its own size.
//
// The bucket also drives the graceful-degradation ladder: its fill
// ratio is the service's one pressure signal, and level() maps it
// through fixed thresholds (with a re-arm hysteresis band so the ladder
// does not flap around a threshold). Everything here is pure arithmetic
// on virtual time — no clocks, no atomics — which is what keeps the
// decision log byte-reproducible.
#pragma once

#include <cstdint>

#include "capow/serve/request.hpp"

namespace capow::serve {

/// Token-bucket and ladder configuration.
struct EnergyBudgetOptions {
  /// Refill rate: the service's power budget. <= 0 disables admission
  /// by energy entirely (enabled() == false, every debit succeeds).
  double budget_w = 0.0;
  /// Bucket capacity in joules; <= 0 defaults to 2 s of budget.
  double capacity_j = 0.0;
  /// Share of capacity only guaranteed traffic may draw below.
  double reserve_fraction = 0.25;
  /// Starting fill as a fraction of capacity.
  double initial_fill = 1.0;
  /// Ladder thresholds on the fill ratio, in descending order: below
  /// eco the scheduler switches to minimum-joule algorithm choice,
  /// below abft_relax requested ABFT correct relaxes to detect, below
  /// shed best-effort traffic is turned away.
  double eco_below = 0.60;
  double abft_relax_below = 0.40;
  double shed_below = 0.20;
  /// A level only steps back down once the fill ratio recovers past
  /// threshold + hysteresis (flap damping).
  double hysteresis = 0.05;
};

/// The joules token bucket plus the degradation ladder it drives.
/// Not thread-safe: the serve engine makes all decisions on one thread.
class EnergyBudget {
 public:
  explicit EnergyBudget(const EnergyBudgetOptions& opts);

  bool enabled() const noexcept { return enabled_; }
  double capacity_j() const noexcept { return capacity_j_; }
  double reserve_j() const noexcept { return reserve_j_; }

  /// Refills for virtual time advancing to `t_s` (monotone; earlier
  /// times are ignored) and re-evaluates the ladder level.
  void advance(double t_s) noexcept;

  /// Attempts to debit `joules` under the tier's drawing rights:
  /// best-effort may not take the fill below the reserve, guaranteed
  /// may overdraw to -capacity. False leaves the bucket untouched.
  bool try_debit(double joules, QosTier tier) noexcept;

  /// Returns `joules` to the bucket (a queued request expired before
  /// dispatch; its admission debit is refunded), capped at capacity.
  void refund(double joules) noexcept;

  /// Current fill in joules (may be negative: guaranteed debt).
  double fill_j() const noexcept { return fill_j_; }
  /// fill / capacity, clamped to [0, 1]; 1 when disabled.
  double fill_ratio() const noexcept;

  /// Current degradation level (updated by advance/try_debit/refund).
  DegradeLevel level() const noexcept { return level_; }

  /// Lifetime accounting, for the report.
  double debited_j() const noexcept { return debited_j_; }
  double refunded_j() const noexcept { return refunded_j_; }

 private:
  void update_level() noexcept;

  bool enabled_;
  double budget_w_;
  double capacity_j_;
  double reserve_j_;
  EnergyBudgetOptions opts_;
  double fill_j_;
  double clock_s_ = 0.0;
  DegradeLevel level_ = DegradeLevel::kNone;
  double debited_j_ = 0.0;
  double refunded_j_ = 0.0;
};

}  // namespace capow::serve
