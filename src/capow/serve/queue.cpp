#include "capow/serve/queue.hpp"

#include <utility>

namespace capow::serve {

bool TierQueue::push(QueuedRequest qr) {
  auto& q = lane(qr.request.tier);
  if (q.size() >= capacity_) return false;
  q.push_back(std::move(qr));
  return true;
}

std::optional<QueuedRequest> TierQueue::pop() {
  for (auto& q : lanes_) {
    if (!q.empty()) {
      QueuedRequest qr = std::move(q.front());
      q.pop_front();
      return qr;
    }
  }
  return std::nullopt;
}

std::vector<QueuedRequest> TierQueue::take_expired(double t_s) {
  std::vector<QueuedRequest> expired;
  for (auto& q : lanes_) {
    for (auto it = q.begin(); it != q.end();) {
      if (it->has_deadline() && it->deadline_t_s() <= t_s) {
        expired.push_back(std::move(*it));
        it = q.erase(it);
      } else {
        ++it;
      }
    }
  }
  return expired;
}

}  // namespace capow::serve
