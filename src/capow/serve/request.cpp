#include "capow/serve/request.hpp"

#include <cstdio>

namespace capow::serve {

const char* tier_name(QosTier t) noexcept {
  switch (t) {
    case QosTier::kGuaranteed: return "guaranteed";
    case QosTier::kBestEffort: return "best_effort";
  }
  return "best_effort";
}

const char* reject_reason_name(RejectReason r) noexcept {
  switch (r) {
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kEnergyBudget: return "energy_budget";
    case RejectReason::kShedding: return "shedding";
    case RejectReason::kOversized: return "oversized";
  }
  return "oversized";
}

const char* outcome_name(Outcome o) noexcept {
  switch (o) {
    case Outcome::kCompleted: return "completed";
    case Outcome::kRejected: return "rejected";
    case Outcome::kExpired: return "expired";
    case Outcome::kCancelled: return "cancelled";
  }
  return "cancelled";
}

const char* degrade_level_name(DegradeLevel l) noexcept {
  switch (l) {
    case DegradeLevel::kNone: return "none";
    case DegradeLevel::kEco: return "eco";
    case DegradeLevel::kAbftRelax: return "abft_relax";
    case DegradeLevel::kShed: return "shed";
  }
  return "shed";
}

const char* decision_kind_name(Decision::Kind k) noexcept {
  switch (k) {
    case Decision::Kind::kAdmit: return "admit";
    case Decision::Kind::kReject: return "reject";
    case Decision::Kind::kDispatch: return "dispatch";
    case Decision::Kind::kComplete: return "complete";
    case Decision::Kind::kExpire: return "expire";
    case Decision::Kind::kCancel: return "cancel";
    case Decision::Kind::kDegrade: return "degrade";
  }
  return "degrade";
}

std::string format_decision(const Decision& d) {
  // Fixed-point rendering only: the serve-smoke CI job byte-diffs these
  // lines across runs, so no field may depend on wall time, pointers,
  // or locale. %.6f virtual seconds, %.3f joules.
  char head[96];
  std::snprintf(head, sizeof head, "t=%.6f %s", d.t_s,
                decision_kind_name(d.kind));
  std::string line(head);
  if (d.kind == Decision::Kind::kDegrade) {
    line += " level=";
    line += degrade_level_name(d.level);
    return line;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, " id=%llu tier=%s",
                static_cast<unsigned long long>(d.request_id),
                tier_name(d.tier));
  line += buf;
  line += " level=";
  line += degrade_level_name(d.level);
  if (d.algorithm) {
    line += " alg=";
    line += core::algorithm_info(*d.algorithm).key;
  }
  if (d.reason) {
    line += " reason=";
    line += reject_reason_name(*d.reason);
  }
  if (d.joules > 0.0) {
    std::snprintf(buf, sizeof buf, " j=%.3f", d.joules);
    line += buf;
  }
  return line;
}

}  // namespace capow::serve
