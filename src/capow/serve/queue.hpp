// The bounded two-tier request queue of capowd.
//
// Boundedness is the point: an unbounded queue converts overload into
// unbounded latency (every request eventually "succeeds", long after
// its deadline), while a bounded queue converts it into typed
// kQueueFull rejections at admission time. Capacity is per tier so
// best-effort backlog can never crowd out guaranteed requests, and
// dispatch order is strict priority (guaranteed first, FIFO within a
// tier) — simple, starvation-free for the tier the SLO covers, and
// deterministic.
//
// Entries carry everything admission decided (algorithm, ABFT mode,
// predicted cost, debited joules) so dispatch never re-plans: a request
// admitted under the eco rung keeps its eco algorithm even if the
// ladder has recovered by dispatch time, keeping every decision
// attributable to exactly one logged admission.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "capow/serve/predictor.hpp"
#include "capow/serve/request.hpp"

namespace capow::serve {

/// A request as admission committed it to the queue.
struct QueuedRequest {
  Request request;
  core::AlgorithmId algorithm = core::AlgorithmId::kOpenBlas;
  abft::AbftMode abft = abft::AbftMode::kOff;
  Prediction prediction;       ///< model cost admission debited against
  double admit_t_s = 0.0;      ///< virtual admission time
  DegradeLevel admit_level = DegradeLevel::kNone;

  /// Absolute virtual deadline; +inf semantics via has_deadline().
  bool has_deadline() const noexcept { return request.deadline_s > 0.0; }
  double deadline_t_s() const noexcept {
    return request.arrival_s + request.deadline_s;
  }
};

/// Bounded per-tier FIFO with strict guaranteed-first dispatch.
/// Not thread-safe: owned by the single-threaded serve engine.
class TierQueue {
 public:
  explicit TierQueue(std::size_t capacity_per_tier) noexcept
      : capacity_(capacity_per_tier) {}

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size(QosTier tier) const noexcept {
    return lane(tier).size();
  }
  std::size_t total_size() const noexcept {
    return lanes_[0].size() + lanes_[1].size();
  }
  bool full(QosTier tier) const noexcept {
    return lane(tier).size() >= capacity_;
  }
  bool empty() const noexcept { return total_size() == 0; }

  /// False (request not enqueued) when the tier lane is at capacity.
  bool push(QueuedRequest qr);

  /// Next request in dispatch order: guaranteed lane first, FIFO within
  /// a lane. nullopt when both lanes are empty.
  std::optional<QueuedRequest> pop();

  /// Removes and returns the queued requests whose deadline is at or
  /// before `t_s` (they can no longer be served; the engine logs them
  /// expired and refunds their joules).
  std::vector<QueuedRequest> take_expired(double t_s);

 private:
  std::deque<QueuedRequest>& lane(QosTier t) noexcept {
    return lanes_[static_cast<std::size_t>(t)];
  }
  const std::deque<QueuedRequest>& lane(QosTier t) const noexcept {
    return lanes_[static_cast<std::size_t>(t)];
  }

  std::size_t capacity_;
  std::deque<QueuedRequest> lanes_[kTierCount];
};

}  // namespace capow::serve
