// capow::serve — request vocabulary of the capowd matmul service.
//
// capowd is designed around *overload safety*, not peak throughput:
// every request is admitted, queued, dispatched, completed, expired,
// cancelled, or rejected — never silently dropped — and every one of
// those transitions is a typed, counted decision. This header is the
// shared vocabulary: the request itself (shape, QoS tier, deadline),
// the typed rejection reasons admission control can return, and the
// decision records the engine appends to its deterministic log.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "capow/abft/abft.hpp"
#include "capow/core/algorithms.hpp"

namespace capow::serve {

/// Quality-of-service tiers. Guaranteed traffic is what the SLO is
/// written against: it is never shed by the degradation ladder and may
/// draw on the energy bucket's reserved share. Best-effort traffic is
/// the load-shedding margin.
enum class QosTier { kGuaranteed = 0, kBestEffort = 1 };
inline constexpr std::size_t kTierCount = 2;

/// "guaranteed" / "best_effort".
const char* tier_name(QosTier t) noexcept;

/// Why admission control turned a request away at the door. A typed
/// rejection is the overload-safety contract: the client learns *why*
/// immediately instead of timing out against a collapsing queue.
enum class RejectReason {
  kQueueFull = 0,  ///< the tier's bounded queue is at capacity
  kEnergyBudget,   ///< the joules token bucket cannot cover the request
  kShedding,       ///< ladder at the shed rung; best-effort turned away
  kOversized,      ///< request exceeds the service's configured max n
};

/// "queue_full" / "energy_budget" / "shedding" / "oversized".
const char* reject_reason_name(RejectReason r) noexcept;

/// One matmul request: multiply two seeded n x n operands under a
/// deadline. Arrival/deadline are in *virtual* seconds — the engine
/// runs its queueing dynamics on a deterministic virtual clock so the
/// decision sequence is a pure function of (trace, options, fault
/// seed), which is what makes an overload run a reproducible
/// experiment (see server.hpp).
struct Request {
  std::uint64_t id = 0;
  double arrival_s = 0.0;   ///< virtual arrival time
  std::size_t n = 0;        ///< square problem dimension
  QosTier tier = QosTier::kBestEffort;
  /// Relative deadline: the request must complete by arrival_s +
  /// deadline_s. <= 0 means no deadline.
  double deadline_s = 0.0;
  /// Pinned algorithm; unset lets the scheduler choose per the EP model
  /// (and lets the degradation ladder downgrade the choice).
  std::optional<core::AlgorithmId> algorithm;
  /// Requested ABFT mode. kCorrect may be relaxed to kDetect by the
  /// ladder's second rung under energy pressure.
  abft::AbftMode abft = abft::AbftMode::kOff;
};

/// Terminal state of a request inside the service.
enum class Outcome {
  kCompleted = 0,  ///< finished; latency accounted against the SLO
  kRejected,       ///< turned away at admission (reason recorded)
  kExpired,        ///< deadline passed while still queued; never started
  kCancelled,      ///< started, stalled past the dispatch watchdog, and
                   ///< was cooperatively cancelled (work accounted)
};

/// "completed" / "rejected" / "expired" / "cancelled".
const char* outcome_name(Outcome o) noexcept;

/// The graceful-degradation ladder, in escalation order. Each rung
/// subsumes the previous ones: at kShed the scheduler is also choosing
/// minimum-energy algorithms and relaxing ABFT.
enum class DegradeLevel {
  kNone = 0,   ///< normal operation: fastest predicted algorithm
  kEco,        ///< downgrade algorithm choice to minimum predicted
               ///< joules (the Eq (9) model decides, not a heuristic)
  kAbftRelax,  ///< additionally relax requested ABFT correct -> detect
  kShed,       ///< additionally turn away best-effort traffic
};
inline constexpr std::size_t kDegradeLevelCount = 4;

/// "none" / "eco" / "abft_relax" / "shed".
const char* degrade_level_name(DegradeLevel l) noexcept;

/// One entry of the engine's decision log. The log is the service's
/// deterministic surface: CI runs the same seeded trace twice and
/// byte-diffs the rendered lines, so every field here must be a pure
/// function of (trace, options, fault plan) — virtual times only,
/// never wall clocks.
struct Decision {
  enum class Kind {
    kAdmit = 0,   ///< request passed admission; joules debited
    kReject,      ///< request turned away (reason set)
    kDispatch,    ///< request started on an executor slot
    kComplete,    ///< request finished
    kExpire,      ///< queued request dropped at its deadline
    kCancel,      ///< running request cancelled by the watchdog
    kDegrade,     ///< ladder level changed (level = new level)
  };

  Kind kind = Kind::kAdmit;
  double t_s = 0.0;            ///< virtual time of the decision
  std::uint64_t request_id = 0;  ///< 0 for kDegrade (engine-wide)
  QosTier tier = QosTier::kBestEffort;
  DegradeLevel level = DegradeLevel::kNone;  ///< ladder level in force
  /// kAdmit/kDispatch/kComplete: the algorithm the scheduler chose.
  std::optional<core::AlgorithmId> algorithm;
  std::optional<RejectReason> reason;  ///< kReject only
  double joules = 0.0;  ///< predicted joules debited (kAdmit) or
                        ///< refunded (kExpire)
};

/// "admit" / "reject" / "dispatch" / "complete" / "expire" / "cancel"
/// / "degrade".
const char* decision_kind_name(Decision::Kind k) noexcept;

/// Renders one decision as its canonical log line (no trailing
/// newline): fixed-point virtual time, stable key=value fields. The
/// byte-diff determinism contract of the serve-smoke CI job is defined
/// over exactly this rendering.
std::string format_decision(const Decision& d);

}  // namespace capow::serve
