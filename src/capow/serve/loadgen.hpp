// Deterministic trace-driven load generation for capowd.
//
// An overload experiment is only an experiment if it can be re-run:
// the generator turns (seed, options) into an arrival trace — Poisson
// arrivals via inverse-transform sampling over a splitmix64 stream,
// a weighted shape mix, a guaranteed/best-effort tier split, and an
// optional burst phase that multiplies the arrival rate over a window
// (the open-loop stampede the admission controller exists to survive).
// The same (seed, options) always produces the byte-identical trace,
// which is the first link in the serve-smoke determinism chain:
// identical trace -> identical decisions -> identical decision log.
//
// No std::mt19937, no distribution objects: libstdc++ does not promise
// cross-version distribution stability, and this trace is diffed in CI.
// splitmix64 plus explicit inverse transforms is fully specified here.
#pragma once

#include <cstdint>
#include <vector>

#include "capow/serve/request.hpp"

namespace capow::serve {

/// Trace-generation parameters. Defaults describe a small mixed load
/// that a few-watt budget saturates — the overload study's baseline.
struct LoadGenOptions {
  std::uint64_t seed = 1;
  double duration_s = 20.0;      ///< arrivals drawn until this horizon
  double rate_hz = 4.0;          ///< mean arrival rate outside bursts
  /// Burst phase: within [burst_start_s, burst_start_s + burst_len_s)
  /// the rate is multiplied by burst_factor (1.0 disables).
  double burst_start_s = 8.0;
  double burst_len_s = 4.0;
  double burst_factor = 6.0;
  /// P(request is guaranteed tier).
  double guaranteed_fraction = 0.35;
  /// Shape mix, sampled uniformly.
  std::vector<std::size_t> shapes = {96, 128, 160, 224};
  /// Per-tier relative deadlines (<= 0: none).
  double guaranteed_deadline_s = 2.0;
  double best_effort_deadline_s = 4.0;
  /// Requested ABFT mode for guaranteed requests (best-effort always
  /// runs unprotected); kCorrect gives the ladder's abft_relax rung
  /// something to relax.
  abft::AbftMode guaranteed_abft = abft::AbftMode::kCorrect;
};

/// Generates the arrival trace: requests sorted by arrival time with
/// ids 1..N in arrival order. Throws std::invalid_argument for a
/// non-positive rate/duration, an empty shape mix, or a tier fraction
/// outside [0, 1].
std::vector<Request> generate_trace(const LoadGenOptions& opts);

/// The splitmix64 step (public for tests pinning the stream).
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace capow::serve
