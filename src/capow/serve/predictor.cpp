#include "capow/serve/predictor.hpp"

#include <stdexcept>

#include "capow/blas/cost_model.hpp"
#include "capow/capsalg/cost_model.hpp"
#include "capow/core/crossover.hpp"
#include "capow/sim/executor.hpp"
#include "capow/strassen/cost_model.hpp"

namespace capow::serve {

CostPredictor::CostPredictor(machine::MachineSpec spec, unsigned threads)
    : spec_(std::move(spec)), threads_(threads) {
  if (threads_ == 0) {
    throw std::invalid_argument("CostPredictor: threads must be >= 1");
  }
  spec_.validate();
  crossover_n_ =
      core::strassen_crossover_dimension(spec_, blas::kTunedGemmEfficiency);
}

const Prediction& CostPredictor::predict(core::AlgorithmId algorithm,
                                         std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("CostPredictor: n must be >= 1");
  }
  const auto key = std::make_pair(static_cast<int>(algorithm), n);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    return it->second;
  }
  sim::WorkProfile profile;
  switch (algorithm) {
    case core::AlgorithmId::kOpenBlas:
      profile = blas::blocked_gemm_profile(n, spec_, threads_);
      break;
    case core::AlgorithmId::kStrassen:
      profile = strassen::strassen_profile(n, spec_, threads_);
      break;
    case core::AlgorithmId::kCaps:
      profile = capsalg::caps_profile(n, spec_, threads_);
      break;
  }
  const sim::RunResult run = sim::simulate(spec_, profile, threads_);
  Prediction p;
  p.seconds = run.seconds;
  p.package_j = run.energy(machine::PowerPlane::kPackage);
  return cache_.emplace(key, p).first->second;
}

AlgorithmChoice CostPredictor::choose(std::size_t n, bool eco) {
  AlgorithmChoice best;
  bool have = false;
  for (const auto& info : core::algorithm_registry()) {
    if (!eco && info.id != core::AlgorithmId::kOpenBlas &&
        static_cast<double>(n) < crossover_n_) {
      // Eq (9): below the crossover a Strassen step loses to the
      // classical multiply; CAPS shares the gate (same recursion
      // economics, the paper's Table II shows both slower here).
      continue;
    }
    const Prediction& p = predict(info.id, n);
    const double score = eco ? p.package_j : p.seconds;
    const double best_score =
        eco ? best.prediction.package_j : best.prediction.seconds;
    if (!have || score < best_score) {
      best.algorithm = info.id;
      best.prediction = p;
      have = true;
    }
  }
  return best;
}

}  // namespace capow::serve
