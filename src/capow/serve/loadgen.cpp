#include "capow/serve/loadgen.hpp"

#include <cmath>
#include <stdexcept>

namespace capow::serve {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

/// Uniform in (0, 1]: never 0, so -log(u) is always finite.
double uniform01(std::uint64_t& state) noexcept {
  return (static_cast<double>(splitmix64(state) >> 11) + 1.0) * 0x1p-53;
}

}  // namespace

std::vector<Request> generate_trace(const LoadGenOptions& opts) {
  if (opts.rate_hz <= 0.0 || opts.duration_s <= 0.0) {
    throw std::invalid_argument(
        "generate_trace: rate_hz and duration_s must be positive");
  }
  if (opts.shapes.empty()) {
    throw std::invalid_argument("generate_trace: shape mix is empty");
  }
  if (opts.guaranteed_fraction < 0.0 || opts.guaranteed_fraction > 1.0) {
    throw std::invalid_argument(
        "generate_trace: guaranteed_fraction must lie in [0, 1]");
  }
  if (opts.burst_factor <= 0.0) {
    throw std::invalid_argument(
        "generate_trace: burst_factor must be positive");
  }

  std::uint64_t state = opts.seed;
  std::vector<Request> trace;
  double t = 0.0;
  std::uint64_t next_id = 1;
  const double burst_end = opts.burst_start_s + opts.burst_len_s;
  while (true) {
    // Inverse-transform exponential interarrival at the rate in force
    // at the current time. (The rate change at a burst boundary is
    // applied per-draw, not mid-gap — a deliberate, documented
    // simplification that keeps the trace a pure left-to-right fold.)
    const bool in_burst = opts.burst_factor != 1.0 &&
                          t >= opts.burst_start_s && t < burst_end;
    const double rate =
        in_burst ? opts.rate_hz * opts.burst_factor : opts.rate_hz;
    t += -std::log(uniform01(state)) / rate;
    if (t >= opts.duration_s) break;

    Request r;
    r.id = next_id++;
    r.arrival_s = t;
    r.n = opts.shapes[splitmix64(state) % opts.shapes.size()];
    const bool guaranteed = uniform01(state) <= opts.guaranteed_fraction;
    r.tier = guaranteed ? QosTier::kGuaranteed : QosTier::kBestEffort;
    r.deadline_s = guaranteed ? opts.guaranteed_deadline_s
                              : opts.best_effort_deadline_s;
    r.abft = guaranteed ? opts.guaranteed_abft : abft::AbftMode::kOff;
    trace.push_back(r);
  }
  return trace;
}

}  // namespace capow::serve
