#include "capow/fault/fault.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace capow::fault {

namespace {

// splitmix64 (Steele, Lea, Flood): the standard 64-bit finalizer-style
// mixer — every input bit avalanches, cheap enough for per-message use.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Top 53 bits as a uniform double in [0, 1).
double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::atomic<FaultInjector*> g_active{nullptr};

// Canonical site table: the single source of truth tying each spec key
// to its Site and its FaultPlan probability field. site_name(),
// probability(), spec(), parse(), and the unknown-key error message all
// derive from it, so a site added here is automatically parseable,
// printable, and consistently named everywhere. rank.kill is the one
// site without a probability field (its value is a deterministic
// victim/world/epoch triple, not a draw), so its member pointer is null
// and parse()/spec() handle its value grammar specially.
struct SiteSpec {
  const char* name;
  Site site;
  double FaultPlan::*probability;
};

constexpr SiteSpec kSites[kSiteCount] = {
    {"comm.drop", Site::kCommDrop, &FaultPlan::comm_drop},
    {"comm.delay", Site::kCommDelay, &FaultPlan::comm_delay},
    {"comm.corrupt", Site::kCommCorrupt, &FaultPlan::comm_corrupt},
    {"rapl.fail", Site::kRaplFail, &FaultPlan::rapl_fail},
    {"task.stall", Site::kTaskStall, &FaultPlan::task_stall},
    {"run.fail", Site::kRunFail, &FaultPlan::run_fail},
    {"run.stall", Site::kRunStall, &FaultPlan::run_stall},
    {"mem.flip", Site::kMemFlip, &FaultPlan::mem_flip},
    {"compute.flip", Site::kComputeFlip, &FaultPlan::compute_flip},
    {"rank.kill", Site::kRankKill, nullptr},
    {"serve.burst", Site::kServeBurst, &FaultPlan::serve_burst},
    {"serve.stall", Site::kServeStall, &FaultPlan::serve_stall},
};

constexpr bool sites_in_enum_order() {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (static_cast<std::size_t>(kSites[i].site) != i) return false;
  }
  return true;
}
static_assert(sites_in_enum_order(),
              "kSites must list every Site in enum order");

constexpr const char* kEventNames[kEventCount] = {
    "comm_drops",        "comm_delays",       "comm_corruptions",
    "comm_retries",      "comm_send_failures", "rapl_read_failures",
    "rapl_retries",      "rapl_degraded_reads", "rapl_wraps",
    "task_stalls",       "runs_retried",      "runs_degraded",
    "runs_failed",       "run_timeouts",      "mem_flips",
    "compute_flips",     "rank_kills",        "serve_bursts",
    "serve_stalls",
};

// Non-site spec keys (magnitudes, seed) appended to the unknown-key
// error so the full grammar is discoverable from the message alone.
constexpr const char* kExtraKeys[] = {
    "comm.delay_ms",      "rapl.wrap",      "task.stall_ms",
    "run.stall_ms",       "serve.burst_copies", "serve.stall_ms",
    "seed",
};

std::string valid_keys() {
  std::string out;
  for (const SiteSpec& s : kSites) {
    if (!out.empty()) out += ", ";
    out += s.name;
  }
  for (const char* k : kExtraKeys) {
    out += ", ";
    out += k;
  }
  return out;
}

double parse_number(const std::string& key_name, const std::string& tok) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (tok.empty() || end != tok.c_str() + tok.size()) {
    throw std::invalid_argument("fault spec: bad value '" + tok +
                                "' for key '" + key_name + "'");
  }
  return v;
}

double parse_probability(const std::string& key_name,
                         const std::string& tok) {
  const double v = parse_number(key_name, tok);
  if (v < 0.0 || v > 1.0) {
    throw std::invalid_argument("fault spec: probability '" + key_name +
                                "' must be in [0, 1], got " + tok);
  }
  return v;
}

double parse_duration(const std::string& key_name, const std::string& tok) {
  const double v = parse_number(key_name, tok);
  if (v < 0.0) {
    throw std::invalid_argument("fault spec: duration '" + key_name +
                                "' must be >= 0, got " + tok);
  }
  return v;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

long long parse_integer(const std::string& key_name, const std::string& tok) {
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (tok.empty() || end != tok.c_str() + tok.size()) {
    throw std::invalid_argument("fault spec: bad value '" + tok +
                                "' for key '" + key_name + "'");
  }
  return v;
}

// `rank.kill=V/P[@E]`: victim rank V of a P-rank world, killed at its
// E-th comm operation (default 1). Having P in the grammar is what lets
// V >= P be rejected here, at parse time, instead of silently never
// firing — a chaos spec naming an impossible victim is a typo, not a
// no-op.
RankKillSpec parse_rank_kill(const std::string& value) {
  const std::size_t slash = value.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument(
        "fault spec: rank.kill expects victim/world[@epoch], got '" + value +
        "'");
  }
  const std::size_t at = value.find('@', slash + 1);
  RankKillSpec spec;
  spec.victim = static_cast<int>(
      parse_integer("rank.kill", value.substr(0, slash)));
  spec.world = static_cast<int>(parse_integer(
      "rank.kill",
      value.substr(slash + 1, at == std::string::npos ? std::string::npos
                                                      : at - slash - 1)));
  if (at != std::string::npos) {
    const long long e = parse_integer("rank.kill", value.substr(at + 1));
    if (e < 1) {
      throw std::invalid_argument(
          "fault spec: rank.kill epoch must be >= 1, got '" + value + "'");
    }
    spec.epoch = static_cast<std::uint64_t>(e);
  }
  if (spec.world < 1) {
    throw std::invalid_argument(
        "fault spec: rank.kill world size must be >= 1, got '" + value + "'");
  }
  if (spec.victim < 0 || spec.victim >= spec.world) {
    throw std::invalid_argument(
        "fault spec: rank.kill victim must name a rank < world size, got '" +
        value + "' (victim " + std::to_string(spec.victim) + " of " +
        std::to_string(spec.world) + " ranks)");
  }
  return spec;
}

}  // namespace

const char* site_name(Site s) noexcept {
  return kSites[static_cast<std::size_t>(s)].name;
}

const char* event_name(Event e) noexcept {
  return kEventNames[static_cast<std::size_t>(e)];
}

std::uint64_t FaultCounters::total() const noexcept {
  std::uint64_t sum = 0;
  for (std::uint64_t c : by_event) sum += c;
  return sum;
}

double FaultPlan::probability(Site s) const noexcept {
  const auto member = kSites[static_cast<std::size_t>(s)].probability;
  return member == nullptr ? 0.0 : this->*member;
}

bool FaultPlan::any() const noexcept {
  for (const SiteSpec& s : kSites) {
    if (s.probability != nullptr && this->*s.probability > 0.0) return true;
  }
  return rapl_wrap || !rank_kills.empty();
}

std::string FaultPlan::spec() const {
  std::string out;
  const auto add = [&](const char* k, const std::string& v) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  };
  for (const SiteSpec& s : kSites) {
    if (s.probability != nullptr && this->*s.probability > 0.0) {
      add(s.name, fmt_double(this->*s.probability));
    }
    // Magnitude/flag keys print right after the site they qualify.
    switch (s.site) {
      case Site::kCommDelay:
        if (comm_delay_ms != 1.0) add("comm.delay_ms", fmt_double(comm_delay_ms));
        break;
      case Site::kRaplFail:
        if (rapl_wrap) add("rapl.wrap", "1");
        break;
      case Site::kTaskStall:
        if (task_stall_ms != 1.0) add("task.stall_ms", fmt_double(task_stall_ms));
        break;
      case Site::kRunStall:
        if (run_stall_ms != 1.0) add("run.stall_ms", fmt_double(run_stall_ms));
        break;
      case Site::kServeBurst:
        if (serve_burst_copies != 3.0) {
          add("serve.burst_copies", fmt_double(serve_burst_copies));
        }
        break;
      case Site::kServeStall:
        if (serve_stall_ms != 1.0) {
          add("serve.stall_ms", fmt_double(serve_stall_ms));
        }
        break;
      case Site::kRankKill:
        for (const RankKillSpec& k : rank_kills) {
          std::string v = std::to_string(k.victim) + "/" +
                          std::to_string(k.world);
          if (k.epoch != 1) v += "@" + std::to_string(k.epoch);
          add("rank.kill", v);
        }
        break;
      default:
        break;
    }
  }
  add("seed", std::to_string(seed));
  return out;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string pair = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (pair.empty()) continue;  // tolerate "a=1,,b=2" and trailing commas

    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("fault spec: expected key=value, got '" +
                                  pair + "'");
    }
    const std::string k = pair.substr(0, eq);
    const std::string v = pair.substr(eq + 1);

    if (k == "seed") {
      char* end = nullptr;
      const unsigned long long s = std::strtoull(v.c_str(), &end, 10);
      if (v.empty() || end != v.c_str() + v.size()) {
        throw std::invalid_argument("fault spec: bad seed '" + v + "'");
      }
      plan.seed = s;
    } else if (k == "comm.delay_ms") {
      plan.comm_delay_ms = parse_duration(k, v);
    } else if (k == "rapl.wrap") {
      if (v != "0" && v != "1") {
        throw std::invalid_argument("fault spec: rapl.wrap must be 0 or 1");
      }
      plan.rapl_wrap = v == "1";
    } else if (k == "task.stall_ms") {
      plan.task_stall_ms = parse_duration(k, v);
    } else if (k == "run.stall_ms") {
      plan.run_stall_ms = parse_duration(k, v);
    } else if (k == "serve.burst_copies") {
      const double copies = parse_number(k, v);
      if (copies < 1.0) {
        throw std::invalid_argument(
            "fault spec: serve.burst_copies must be >= 1, got '" + v + "'");
      }
      plan.serve_burst_copies = copies;
    } else if (k == "serve.stall_ms") {
      plan.serve_stall_ms = parse_duration(k, v);
    } else if (k == "rank.kill") {
      // Repeated keys accumulate: a multi-victim chaos schedule is a
      // list of kills, not a single overwritable value.
      plan.rank_kills.push_back(parse_rank_kill(v));
    } else {
      const SiteSpec* match = nullptr;
      for (const SiteSpec& s : kSites) {
        if (k == s.name) {
          match = &s;
          break;
        }
      }
      if (match == nullptr) {
        throw std::invalid_argument("fault spec: unknown key '" + k +
                                    "' (valid keys: " + valid_keys() + ")");
      }
      plan.*match->probability = parse_probability(k, v);
    }
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::from_env() {
  const char* env = std::getenv("CAPOW_FAULTS");
  if (env == nullptr || *env == '\0') return std::nullopt;
  return parse(env);
}

FaultInjector::FaultInjector(FaultPlan plan) noexcept
    : plan_(std::move(plan)) {}

FaultInjector* FaultInjector::active() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

bool FaultInjector::fire(Site site, std::uint64_t draw_key) const noexcept {
  const double p = plan_.probability(site);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::uint64_t h = splitmix64(
      plan_.seed ^ (static_cast<std::uint64_t>(site) * 0x9e3779b97f4a7c15ull));
  h = splitmix64(h ^ run_key_.load(std::memory_order_relaxed));
  h = splitmix64(h ^ draw_key);
  return to_unit(h) < p;
}

bool FaultInjector::fire_next(Site site) noexcept {
  if (plan_.probability(site) <= 0.0) return false;
  const std::uint64_t seq = seq_[static_cast<std::size_t>(site)].fetch_add(
      1, std::memory_order_relaxed);
  return fire(site, seq);
}

void FaultInjector::begin_run(std::uint64_t run_key) noexcept {
  run_key_.store(run_key, std::memory_order_relaxed);
  for (auto& s : seq_) s.store(0, std::memory_order_relaxed);
}

FaultCounters FaultInjector::counters() const noexcept {
  FaultCounters out;
  for (std::size_t i = 0; i < kEventCount; ++i) {
    out.by_event[i] = events_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void FaultInjector::reset_counters() noexcept {
  for (auto& e : events_) e.store(0, std::memory_order_relaxed);
}

FaultScope::FaultScope(FaultInjector& injector) noexcept
    : previous_(g_active.exchange(&injector, std::memory_order_relaxed)) {}

FaultScope::~FaultScope() {
  g_active.store(previous_, std::memory_order_relaxed);
}

std::uint64_t key(std::uint64_t a, std::uint64_t b,
                  std::uint64_t c) noexcept {
  std::uint64_t h = splitmix64(a);
  h = splitmix64(h ^ b);
  h = splitmix64(h ^ c);
  return h;
}

double flip_value(double v) noexcept {
  if (std::fabs(v) >= 1.0) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    bits ^= std::uint64_t{1} << 51;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  return v + 1.0;
}

std::size_t maybe_flip(Site site, std::uint64_t block_key, double* data,
                       std::size_t rows, std::size_t cols,
                       std::size_t ld) noexcept {
  FaultInjector* inj = FaultInjector::active();
  if (inj == nullptr || inj->plan().probability(site) <= 0.0) return 0;
  std::size_t flips = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    double* row = data + i * ld;
    for (std::size_t j = 0; j < cols; ++j) {
      if (inj->fire(site, key(block_key, i, j))) {
        row[j] = flip_value(row[j]);
        ++flips;
      }
    }
  }
  if (flips != 0) {
    inj->record(site == Site::kMemFlip ? Event::kMemFlip : Event::kComputeFlip,
                flips);
  }
  return flips;
}

}  // namespace capow::fault
