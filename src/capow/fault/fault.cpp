#include "capow/fault/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace capow::fault {

namespace {

// splitmix64 (Steele, Lea, Flood): the standard 64-bit finalizer-style
// mixer — every input bit avalanches, cheap enough for per-message use.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Top 53 bits as a uniform double in [0, 1).
double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::atomic<FaultInjector*> g_active{nullptr};

constexpr const char* kSiteNames[kSiteCount] = {
    "comm.drop", "comm.delay", "comm.corrupt", "rapl.fail",
    "task.stall", "run.fail",  "run.stall",
};

constexpr const char* kEventNames[kEventCount] = {
    "comm_drops",        "comm_delays",       "comm_corruptions",
    "comm_retries",      "comm_send_failures", "rapl_read_failures",
    "rapl_retries",      "rapl_degraded_reads", "rapl_wraps",
    "task_stalls",       "runs_retried",      "runs_degraded",
    "runs_failed",       "run_timeouts",
};

double parse_number(const std::string& key_name, const std::string& tok) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (tok.empty() || end != tok.c_str() + tok.size()) {
    throw std::invalid_argument("fault spec: bad value '" + tok +
                                "' for key '" + key_name + "'");
  }
  return v;
}

double parse_probability(const std::string& key_name,
                         const std::string& tok) {
  const double v = parse_number(key_name, tok);
  if (v < 0.0 || v > 1.0) {
    throw std::invalid_argument("fault spec: probability '" + key_name +
                                "' must be in [0, 1], got " + tok);
  }
  return v;
}

double parse_duration(const std::string& key_name, const std::string& tok) {
  const double v = parse_number(key_name, tok);
  if (v < 0.0) {
    throw std::invalid_argument("fault spec: duration '" + key_name +
                                "' must be >= 0, got " + tok);
  }
  return v;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

const char* site_name(Site s) noexcept {
  return kSiteNames[static_cast<std::size_t>(s)];
}

const char* event_name(Event e) noexcept {
  return kEventNames[static_cast<std::size_t>(e)];
}

std::uint64_t FaultCounters::total() const noexcept {
  std::uint64_t sum = 0;
  for (std::uint64_t c : by_event) sum += c;
  return sum;
}

double FaultPlan::probability(Site s) const noexcept {
  switch (s) {
    case Site::kCommDrop:
      return comm_drop;
    case Site::kCommDelay:
      return comm_delay;
    case Site::kCommCorrupt:
      return comm_corrupt;
    case Site::kRaplFail:
      return rapl_fail;
    case Site::kTaskStall:
      return task_stall;
    case Site::kRunFail:
      return run_fail;
    case Site::kRunStall:
      return run_stall;
  }
  return 0.0;
}

bool FaultPlan::any() const noexcept {
  return comm_drop > 0.0 || comm_delay > 0.0 || comm_corrupt > 0.0 ||
         rapl_fail > 0.0 || rapl_wrap || task_stall > 0.0 ||
         run_fail > 0.0 || run_stall > 0.0;
}

std::string FaultPlan::spec() const {
  std::string out;
  const auto add = [&](const char* k, const std::string& v) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  };
  if (comm_drop > 0.0) add("comm.drop", fmt_double(comm_drop));
  if (comm_delay > 0.0) add("comm.delay", fmt_double(comm_delay));
  if (comm_delay_ms != 1.0) add("comm.delay_ms", fmt_double(comm_delay_ms));
  if (comm_corrupt > 0.0) add("comm.corrupt", fmt_double(comm_corrupt));
  if (rapl_fail > 0.0) add("rapl.fail", fmt_double(rapl_fail));
  if (rapl_wrap) add("rapl.wrap", "1");
  if (task_stall > 0.0) add("task.stall", fmt_double(task_stall));
  if (task_stall_ms != 1.0) add("task.stall_ms", fmt_double(task_stall_ms));
  if (run_fail > 0.0) add("run.fail", fmt_double(run_fail));
  if (run_stall > 0.0) add("run.stall", fmt_double(run_stall));
  if (run_stall_ms != 1.0) add("run.stall_ms", fmt_double(run_stall_ms));
  add("seed", std::to_string(seed));
  return out;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string pair = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (pair.empty()) continue;  // tolerate "a=1,,b=2" and trailing commas

    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("fault spec: expected key=value, got '" +
                                  pair + "'");
    }
    const std::string k = pair.substr(0, eq);
    const std::string v = pair.substr(eq + 1);

    if (k == "seed") {
      char* end = nullptr;
      const unsigned long long s = std::strtoull(v.c_str(), &end, 10);
      if (v.empty() || end != v.c_str() + v.size()) {
        throw std::invalid_argument("fault spec: bad seed '" + v + "'");
      }
      plan.seed = s;
    } else if (k == "comm.drop") {
      plan.comm_drop = parse_probability(k, v);
    } else if (k == "comm.delay") {
      plan.comm_delay = parse_probability(k, v);
    } else if (k == "comm.delay_ms") {
      plan.comm_delay_ms = parse_duration(k, v);
    } else if (k == "comm.corrupt") {
      plan.comm_corrupt = parse_probability(k, v);
    } else if (k == "rapl.fail") {
      plan.rapl_fail = parse_probability(k, v);
    } else if (k == "rapl.wrap") {
      if (v != "0" && v != "1") {
        throw std::invalid_argument("fault spec: rapl.wrap must be 0 or 1");
      }
      plan.rapl_wrap = v == "1";
    } else if (k == "task.stall") {
      plan.task_stall = parse_probability(k, v);
    } else if (k == "task.stall_ms") {
      plan.task_stall_ms = parse_duration(k, v);
    } else if (k == "run.fail") {
      plan.run_fail = parse_probability(k, v);
    } else if (k == "run.stall") {
      plan.run_stall = parse_probability(k, v);
    } else if (k == "run.stall_ms") {
      plan.run_stall_ms = parse_duration(k, v);
    } else {
      throw std::invalid_argument("fault spec: unknown key '" + k + "'");
    }
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::from_env() {
  const char* env = std::getenv("CAPOW_FAULTS");
  if (env == nullptr || *env == '\0') return std::nullopt;
  return parse(env);
}

FaultInjector::FaultInjector(FaultPlan plan) noexcept
    : plan_(std::move(plan)) {}

FaultInjector* FaultInjector::active() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

bool FaultInjector::fire(Site site, std::uint64_t draw_key) const noexcept {
  const double p = plan_.probability(site);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::uint64_t h = splitmix64(
      plan_.seed ^ (static_cast<std::uint64_t>(site) * 0x9e3779b97f4a7c15ull));
  h = splitmix64(h ^ run_key_.load(std::memory_order_relaxed));
  h = splitmix64(h ^ draw_key);
  return to_unit(h) < p;
}

bool FaultInjector::fire_next(Site site) noexcept {
  if (plan_.probability(site) <= 0.0) return false;
  const std::uint64_t seq = seq_[static_cast<std::size_t>(site)].fetch_add(
      1, std::memory_order_relaxed);
  return fire(site, seq);
}

void FaultInjector::begin_run(std::uint64_t run_key) noexcept {
  run_key_.store(run_key, std::memory_order_relaxed);
  for (auto& s : seq_) s.store(0, std::memory_order_relaxed);
}

FaultCounters FaultInjector::counters() const noexcept {
  FaultCounters out;
  for (std::size_t i = 0; i < kEventCount; ++i) {
    out.by_event[i] = events_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void FaultInjector::reset_counters() noexcept {
  for (auto& e : events_) e.store(0, std::memory_order_relaxed);
}

FaultScope::FaultScope(FaultInjector& injector) noexcept
    : previous_(g_active.exchange(&injector, std::memory_order_relaxed)) {}

FaultScope::~FaultScope() {
  g_active.store(previous_, std::memory_order_relaxed);
}

std::uint64_t key(std::uint64_t a, std::uint64_t b,
                  std::uint64_t c) noexcept {
  std::uint64_t h = splitmix64(a);
  h = splitmix64(h ^ b);
  h = splitmix64(h ^ c);
  return h;
}

}  // namespace capow::fault
