// capow::fault — deterministic, seeded fault injection.
//
// Real platforms fail in ways the paper's measurement methodology has
// to survive: RAPL energy counters are 32 bits and wrap (~262 s at
// Haswell TDP), MSR reads return transient EIO, interconnects drop,
// delay, and corrupt messages, and a single hung rank can stall a
// 48-configuration experiment matrix. This module makes every one of
// those failures *injectable and reproducible*: a FaultPlan (parsed
// from a spec string such as
//
//   CAPOW_FAULTS="comm.drop=0.01,rapl.fail=0.05,seed=42"
//
// ) names per-site probabilities, and a FaultInjector turns (site, key)
// pairs into deterministic fire/no-fire decisions via a counter-based
// hash of the seed — no RNG state, no ordering sensitivity: the same
// seed and the same logical keys produce the same faults regardless of
// thread interleaving, so a fault-injected run is a reproducible
// experiment, not a flake generator.
//
// Layering: this module depends on nothing above the standard library,
// so every layer that can fail (rapl, tasking, dist, harness) can
// consult it without dependency cycles. The no-fault hot path is one
// relaxed atomic load per site (the Tracer::active() pattern).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace capow::fault {

/// Injection sites: where a fault decision is drawn.
enum class Site {
  kCommDrop = 0,  ///< message lost on the wire (sender retransmits)
  kCommDelay,     ///< message delayed by plan.comm_delay_ms
  kCommCorrupt,   ///< payload corrupted in flight (link CRC catches it)
  kRaplFail,      ///< transient MSR read failure (EIO)
  kTaskStall,     ///< task stalled by plan.task_stall_ms before running
  kRunFail,       ///< whole experiment run aborts (crash analogue)
  kRunStall,      ///< whole experiment run hangs for plan.run_stall_ms
  kMemFlip,       ///< silent bit-flip in a result/operand held in memory
  kComputeFlip,   ///< silent corruption of data feeding a computation
  kRankKill,      ///< a dist rank dies fail-stop at a fixed comm epoch
  kServeBurst,    ///< a capowd arrival is amplified into a request burst
  kServeStall,    ///< a dispatched capowd request stalls in its worker
};
inline constexpr std::size_t kSiteCount = 12;

/// Spec key of a site ("comm.drop", "rapl.fail", ...).
const char* site_name(Site s) noexcept;

/// Countable fault and recovery events. Sites record their injections
/// here; recovery layers (retry loops, watchdogs) record what they did
/// about them. Determinism of these totals for a fixed seed is asserted
/// by tests and is part of the subsystem's contract.
enum class Event {
  kCommDrop = 0,     ///< messages dropped by the injector
  kCommDelay,        ///< messages delayed by the injector
  kCommCorrupt,      ///< messages corrupted (detected + retransmitted)
  kCommRetry,        ///< sender retransmissions
  kCommSendFailure,  ///< sends that exhausted every attempt
  kRaplReadFailure,  ///< injected MSR read failures
  kRaplRetry,        ///< MSR read retries
  kRaplDegradedRead, ///< reads that served a stale value after retries
  kRaplWrap,         ///< 32-bit counter wraps folded by a reader
  kTaskStall,        ///< injected task stalls
  kRunRetry,         ///< experiment runs retried by the harness
  kRunDegraded,      ///< runs completed with degraded measurement
  kRunFailure,       ///< runs that exhausted every attempt
  kRunTimeout,       ///< run attempts killed by the watchdog
  kMemFlip,          ///< injected silent memory bit-flips
  kComputeFlip,      ///< injected silent compute-input corruptions
  kRankKill,         ///< dist ranks terminated fail-stop by the injector
  kServeBurst,       ///< serve arrivals amplified into bursts
  kServeStall,       ///< serve requests stalled inside their worker
};
inline constexpr std::size_t kEventCount = 19;

/// Metric/report name of an event ("comm_drops", "rapl_retries", ...).
const char* event_name(Event e) noexcept;

/// Snapshot of every event counter (see FaultInjector::counters()).
struct FaultCounters {
  std::array<std::uint64_t, kEventCount> by_event{};

  std::uint64_t operator[](Event e) const noexcept {
    return by_event[static_cast<std::size_t>(e)];
  }
  std::uint64_t total() const noexcept;
  bool operator==(const FaultCounters&) const = default;
};

/// One deterministic rank-death order: rank `victim` of a `world`-rank
/// dist::World dies fail-stop at its `epoch`-th communication operation
/// (1-based: send/recv/barrier entries count). Unlike the probability
/// sites this is not a draw — the kill is part of the spec itself, so a
/// chaos run's failure schedule is readable directly from the plan.
/// World size is part of the grammar (`rank.kill=V/P[@E]`) so a victim
/// >= world size is rejected at parse time, and the kill arms only in
/// worlds of exactly `world` ranks.
struct RankKillSpec {
  int victim = 0;
  int world = 0;
  std::uint64_t epoch = 1;

  bool operator==(const RankKillSpec&) const = default;
};

/// A parsed fault specification: per-site probabilities plus the seed
/// and fault magnitudes. Default-constructed plans inject nothing.
struct FaultPlan {
  std::uint64_t seed = 1;

  double comm_drop = 0.0;     ///< P(drop) per delivery attempt
  double comm_delay = 0.0;    ///< P(delay) per message
  double comm_delay_ms = 1.0; ///< injected latency when delayed
  double comm_corrupt = 0.0;  ///< P(corrupt) per delivery attempt

  double rapl_fail = 0.0;     ///< P(transient EIO) per MSR read
  bool rapl_wrap = false;     ///< bias counters to wrap during each run

  double task_stall = 0.0;    ///< P(stall) per executed task
  double task_stall_ms = 1.0; ///< stall duration

  double run_fail = 0.0;      ///< P(abort) per experiment run attempt
  double run_stall = 0.0;     ///< P(hang) per experiment run attempt
  double run_stall_ms = 1.0;  ///< hang duration

  double mem_flip = 0.0;      ///< P(silent flip) per result element
  double compute_flip = 0.0;  ///< P(silent flip) per compute input element

  double serve_burst = 0.0;        ///< P(burst) per capowd arrival
  double serve_burst_copies = 3.0; ///< extra copies injected per burst
  double serve_stall = 0.0;        ///< P(stall) per dispatched request
  double serve_stall_ms = 1.0;     ///< worker stall duration

  /// Deterministic rank deaths (`rank.kill=V/P[@E]`). Repeated
  /// `rank.kill=` keys accumulate, enabling multi-victim chaos runs;
  /// every other key keeps last-one-wins semantics.
  std::vector<RankKillSpec> rank_kills;

  /// Probability configured for `site`.
  double probability(Site s) const noexcept;

  /// True when any fault can fire (any probability > 0 or rapl_wrap).
  bool any() const noexcept;

  /// True when any comm.* fault is configured (dist fast-path gate).
  bool any_comm() const noexcept {
    return comm_drop > 0.0 || comm_delay > 0.0 || comm_corrupt > 0.0;
  }

  /// True when any silent-data-corruption site is armed (ABFT fast-path
  /// gate: clean runs skip flip draws entirely).
  bool any_flip() const noexcept {
    return mem_flip > 0.0 || compute_flip > 0.0;
  }

  /// Canonical spec string ("comm.drop=0.01,...,seed=42"); parse() of
  /// the result reproduces the plan. Only non-default fields appear.
  std::string spec() const;

  /// Parses a spec string. Grammar: comma-separated `key=value` pairs;
  /// keys are the site names plus `comm.delay_ms`, `rapl.wrap`,
  /// `task.stall_ms`, `run.stall_ms`, `serve.burst_copies`,
  /// `serve.stall_ms`, and `seed`. Probabilities must
  /// lie in [0, 1]; durations must be >= 0. `rank.kill` takes `V/P[@E]`
  /// (victim rank, world size, optional 1-based comm epoch) and rejects
  /// V >= P at parse time. Throws std::invalid_argument on unknown keys
  /// or malformed values.
  static FaultPlan parse(const std::string& spec);

  /// Plan from the CAPOW_FAULTS environment variable, or nullopt when
  /// it is unset or empty. Throws like parse() on malformed content.
  static std::optional<FaultPlan> from_env();
};

/// Deterministic fault oracle plus fault/recovery event counters.
///
/// Install with FaultScope to make it visible to the injection sites
/// (rapl reads, the dist wire, the task runtime, the harness). Draws
/// are pure functions of (seed, run context, site, key): no internal
/// RNG stream, so concurrent sites cannot perturb each other's
/// decisions — only the *keys* matter, and callers derive keys from
/// stable logical coordinates (channel sequence numbers, per-run read
/// indices, matrix positions).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) noexcept;

  const FaultPlan& plan() const noexcept { return plan_; }

  /// The installed injector, or nullptr. Sites gate on this (one
  /// relaxed atomic load when fault injection is off).
  static FaultInjector* active() noexcept;

  /// Deterministic draw: true with probability plan().probability(site)
  /// for this exact (run context, site, key) triple.
  bool fire(Site site, std::uint64_t key) const noexcept;

  /// Draw keyed by this site's per-run-context sequence counter — for
  /// sites with no natural logical coordinate (e.g. the Nth MSR read
  /// of a run). The multiset of outcomes between begin_run() calls is
  /// deterministic even when several threads draw concurrently.
  bool fire_next(Site site) noexcept;

  /// Namespaces subsequent draws under `run_key` and resets the
  /// fire_next() sequence counters, so each experiment run sees the
  /// same fault schedule regardless of matrix order — the property
  /// that makes checkpoint/resume reproduce the original tables.
  void begin_run(std::uint64_t run_key) noexcept;

  /// Records `n` occurrences of `e`.
  void record(Event e, std::uint64_t n = 1) noexcept {
    events_[static_cast<std::size_t>(e)].fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t count(Event e) const noexcept {
    return events_[static_cast<std::size_t>(e)].load(
        std::memory_order_relaxed);
  }

  /// Snapshot of every event counter.
  FaultCounters counters() const noexcept;

  /// Zeroes every event counter (counters are cumulative otherwise).
  void reset_counters() noexcept;

 private:
  FaultPlan plan_;
  std::atomic<std::uint64_t> run_key_{0};
  std::array<std::atomic<std::uint64_t>, kSiteCount> seq_{};
  std::array<std::atomic<std::uint64_t>, kEventCount> events_{};
};

/// RAII install/uninstall of the process-wide active injector (mirrors
/// trace::RecordingScope). Nesting restores the previous injector.
class FaultScope {
 public:
  explicit FaultScope(FaultInjector& injector) noexcept;
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultInjector* previous_;
};

/// Mixes up to three 64-bit coordinates into a draw key. Used by sites
/// whose logical coordinates are multi-dimensional (channel, sequence
/// number, attempt).
std::uint64_t key(std::uint64_t a, std::uint64_t b = 0,
                  std::uint64_t c = 0) noexcept;

/// Deterministically corrupts elements of the rows x cols block at
/// `data` (leading dimension `ld`) with the probability configured for
/// `site` (kMemFlip or kComputeFlip). Each element's draw is keyed on
/// (block_key, row, col) only — never on execution order — so the set
/// of flipped elements is a pure function of the plan seed, the run
/// context, and the logical coordinates, regardless of thread
/// interleaving. Recovery layers that re-run damaged work mix a local
/// attempt number into `block_key` so the retry re-draws instead of
/// re-firing the identical fault. Records kMemFlip/kComputeFlip events;
/// returns the number of elements flipped (0 when no injector is
/// active or the site's probability is 0).
std::size_t maybe_flip(Site site, std::uint64_t block_key, double* data,
                       std::size_t rows, std::size_t cols,
                       std::size_t ld) noexcept;

/// The deterministic corruption maybe_flip() applies to one element:
/// values with |v| >= 1 get mantissa bit 51 toggled (a >= 25% relative
/// perturbation), smaller values get +1.0 — always finite, always far
/// above any checksum tolerance, so an injected flip is never masked.
double flip_value(double v) noexcept;

}  // namespace capow::fault
