// Distributed-memory CAPS and a classical distributed baseline
// (paper Section VIII's proposed next step, built on the mini-MPI
// runtime).
//
// dist_caps_multiply executes one distributed BFS level of the CAPS
// tree: the root materializes the fourteen operand combinations and
// ships each of the seven sub-products to its owning rank (round-robin);
// owners solve locally with shared-memory CAPS and return their Q_i,
// which the root combines. Total interconnect traffic is
// ~3 * (n/2)^2 words per remote sub-product — the CAPS communication
// shape of Eq (8) — versus the classical baseline's broadcast-B pattern
// of ~(P-1) * n^2 words.
#pragma once

#include "capow/capsalg/caps.hpp"
#include "capow/dist/comm.hpp"
#include "capow/dist/recovery.hpp"
#include "capow/linalg/matrix.hpp"

namespace capow::dist {

/// Options for the distributed CAPS solve.
struct DistCapsOptions {
  /// Local (per-rank) CAPS options for the sub-product solves.
  capsalg::CapsOptions local;
  /// Below this dimension a group leader solves locally without further
  /// distribution.
  std::size_t distribute_threshold = 64;
  /// Maximum distributed BFS levels. Distribution recurses while the
  /// rank group still holds >= 7 ranks (each level splits the group
  /// into seven sub-groups, mirroring the CAPS tree); groups of 2-6
  /// ranks run one final round-robin level. 49+ ranks therefore get two
  /// genuine tree levels, and so on.
  std::size_t max_distribution_levels = 8;
};

/// Collective: every rank of `comm` must call it. Rank 0 passes A, B and
/// receives C = A * B; other ranks pass empty matrices (their views are
/// ignored). Dimensions must be even above the distribution threshold.
/// Throws std::invalid_argument on rank-0 shape errors.
void dist_caps_multiply(Communicator& comm, linalg::ConstMatrixView a,
                        linalg::ConstMatrixView b, linalg::MatrixView c,
                        const DistCapsOptions& opts = {});

/// Classical distributed baseline: block-row decomposition. Rank 0
/// scatters row blocks of A, broadcasts all of B, ranks compute their C
/// rows with the dense base kernel, root gathers. Collective.
void dist_block_gemm(Communicator& comm, linalg::ConstMatrixView a,
                     linalg::ConstMatrixView b, linalg::MatrixView c);

/// Elastic dist-CAPS: the body to run under World::run_elastic.
/// dist_caps_multiply already adapts to any communicator size (the
/// seven sub-products round-robin over however many ranks exist), so
/// recovery needs no operand reconstruction: a recovered generation is
/// a clean deterministic re-run on the new membership — the CAPS
/// analogue of restarting the BFS level. Because ranks are in-process
/// threads sharing the root's operand views, *any* physical rank can
/// serve as virtual root 0, which is what makes even root death
/// recoverable. Respawn re-runs bit-identically (same rank count, same
/// split schedule); shrink recomputes correctly on the survivors with a
/// different work distribution. The `ctx` is unused beyond the span
/// annotation — the signature exists so call sites treat both resilient
/// kernels uniformly.
void dist_caps_multiply_resilient(Communicator& comm,
                                  const RecoveryContext& ctx,
                                  linalg::ConstMatrixView a,
                                  linalg::ConstMatrixView b,
                                  linalg::MatrixView c,
                                  const DistCapsOptions& opts = {});

}  // namespace capow::dist
