#include "capow/dist/summa.hpp"

#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "capow/abft/checksum.hpp"
#include "capow/blas/gemm_ref.hpp"
#include "capow/fault/fault.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/strassen/base_kernel.hpp"
#include "capow/telemetry/telemetry.hpp"

namespace capow::dist {

namespace {

using linalg::ConstMatrixView;
using linalg::Matrix;
using linalg::MatrixView;

constexpr int kScatterA = 500;
constexpr int kScatterB = 501;
constexpr int kGatherC = 502;
constexpr int kRowBcastBase = 1000;  // + step
constexpr int kColBcastBase = 2000;  // + step
constexpr int kReplicateA = 3000;
constexpr int kReplicateB = 3001;
constexpr int kLayerReduce = 3002;

struct RankCoord {
  int i;      // grid row
  int j;      // grid column
  int layer;  // replication layer
};

RankCoord coord_of(int rank, const GridSpec& g) {
  const int per_layer = g.rows * g.cols;
  return RankCoord{(rank % per_layer) / g.cols, rank % g.cols,
                   rank / per_layer};
}

int rank_of(int i, int j, int layer, const GridSpec& g) {
  return (layer * g.rows + i) * g.cols + j;
}

/// Per-collective ABFT state, fixed before any traffic and identical on
/// every rank (mode/tolerance from the shared config, salt from the
/// collective attempt number) — so all ranks agree on the wire format.
struct AbftState {
  abft::AbftMode mode = abft::AbftMode::kOff;
  bool flips = false;           ///< flip fault sites armed this run
  std::uint64_t salt = 0;       ///< collective attempt number
};

/// Appends the end-to-end checksum word in detect/correct mode. The
/// off-mode payload is byte-identical to the pre-ABFT protocol.
void checked_send(Communicator& comm, const AbftState& st, int dest, int tag,
                  std::vector<double> payload) {
  if (st.mode != abft::AbftMode::kOff) {
    payload.push_back(abft::payload_checksum(payload.data(), payload.size()));
  }
  comm.send(dest, tag, payload);
}

/// Receives a payload, injects any armed mem.flip (keyed on the logical
/// route, not arrival order), then checks the sender's checksum word
/// bitwise. Detect mode throws on mismatch; correct mode records the
/// detection and hands the damaged payload on — the root's end-to-end
/// verdict triggers the collective re-run that actually repairs it (the
/// sender has long moved on, so there is nobody to ask for a resend).
std::vector<double> checked_recv(Communicator& comm, const AbftState& st,
                                 int src, int tag) {
  const Message msg = comm.recv(src, tag);
  std::vector<double> payload(msg.payload.begin(), msg.payload.end());
  if (st.mode == abft::AbftMode::kOff) return payload;
  if (payload.empty()) {
    throw abft::AbftError("abft: checksummed message arrived empty");
  }
  const double sent = payload.back();
  payload.pop_back();
  if (st.flips) {
    fault::maybe_flip(
        fault::Site::kMemFlip,
        fault::key(0x5077u, st.salt,
                   fault::key(static_cast<std::uint64_t>(tag),
                              static_cast<std::uint64_t>(src),
                              static_cast<std::uint64_t>(comm.rank()))),
        payload.data(), 1, payload.size(), payload.size());
  }
  const double got = abft::payload_checksum(payload.data(), payload.size());
  if (std::memcmp(&sent, &got, sizeof(double)) != 0) {
    abft::record_detected();
    if (st.mode == abft::AbftMode::kDetect) {
      throw abft::AbftError(
          "abft: message checksum mismatch (tag " + std::to_string(tag) +
          ", " + std::to_string(src) + " -> " + std::to_string(comm.rank()) +
          ")");
    }
  }
  return payload;
}

std::vector<double> flatten(ConstMatrixView v) {
  std::vector<double> out(v.size());
  for (std::size_t r = 0; r < v.rows(); ++r) {
    std::memcpy(out.data() + r * v.cols(), v.row(r),
                v.cols() * sizeof(double));
  }
  return out;
}

void unflatten(std::span<const double> data, MatrixView v) {
  if (data.size() != v.size()) {
    throw std::invalid_argument("summa: payload size mismatch");
  }
  for (std::size_t r = 0; r < v.rows(); ++r) {
    std::memcpy(v.row(r), data.data() + r * v.cols(),
                v.cols() * sizeof(double));
  }
}

// Root scatters the (i, j) blocks of `m` to layer-0 ranks; returns this
// rank's block. `nb` is the block dimension.
Matrix scatter_blocks(Communicator& comm, const GridSpec& g,
                      const AbftState& st, ConstMatrixView m, std::size_t nb,
                      int tag) {
  CAPOW_TSPAN_ARGS1("summa.scatter", "dist", "nb", nb);
  const RankCoord me = coord_of(comm.rank(), g);
  Matrix mine(nb, nb);
  if (comm.rank() == 0) {
    for (int i = 0; i < g.rows; ++i) {
      for (int j = 0; j < g.cols; ++j) {
        auto block = m.block(i * nb, j * nb, nb, nb);
        const int dest = rank_of(i, j, 0, g);
        if (dest == 0) {
          linalg::copy(block, mine.view());
        } else {
          checked_send(comm, st, dest, tag, flatten(block));
        }
      }
    }
  } else if (me.layer == 0) {
    unflatten(checked_recv(comm, st, 0, tag), mine.view());
  }
  return mine;
}

void gather_blocks(Communicator& comm, const GridSpec& g, const AbftState& st,
                   ConstMatrixView mine, MatrixView out, std::size_t nb) {
  CAPOW_TSPAN_ARGS1("summa.gather", "dist", "nb", nb);
  const RankCoord me = coord_of(comm.rank(), g);
  if (comm.rank() == 0) {
    for (int i = 0; i < g.rows; ++i) {
      for (int j = 0; j < g.cols; ++j) {
        auto block = out.block(i * nb, j * nb, nb, nb);
        const int src = rank_of(i, j, 0, g);
        if (src == 0) {
          linalg::copy(mine, block);
        } else {
          unflatten(checked_recv(comm, st, src, kGatherC), block);
        }
      }
    }
  } else if (me.layer == 0) {
    checked_send(comm, st, 0, kGatherC, flatten(mine));
  }
}

// One SUMMA k-step inside a layer: the step's owner column/row
// broadcasts its A/B block along its grid row/column, everyone
// accumulates.
void summa_step(Communicator& comm, const GridSpec& g, const AbftState& st,
                const RankCoord& me, int step, ConstMatrixView a_own,
                ConstMatrixView b_own, Matrix& a_panel, Matrix& b_panel,
                MatrixView c_acc) {
  CAPOW_TSPAN_ARGS2("summa.step", "dist", "step", step, "layer", me.layer);
  // A broadcast along the row.
  if (me.j == step) {
    for (int j = 0; j < g.cols; ++j) {
      if (j == me.j) continue;
      checked_send(comm, st, rank_of(me.i, j, me.layer, g),
                   kRowBcastBase + step, flatten(a_own));
    }
    linalg::copy(a_own, a_panel.view());
  } else {
    unflatten(checked_recv(comm, st, rank_of(me.i, step, me.layer, g),
                           kRowBcastBase + step),
              a_panel.view());
  }
  // B broadcast along the column.
  if (me.i == step) {
    for (int i = 0; i < g.rows; ++i) {
      if (i == me.i) continue;
      checked_send(comm, st, rank_of(i, me.j, me.layer, g),
                   kColBcastBase + step, flatten(b_own));
    }
    linalg::copy(b_own, b_panel.view());
  } else {
    unflatten(checked_recv(comm, st, rank_of(step, me.j, me.layer, g),
                           kColBcastBase + step),
              b_panel.view());
  }
  strassen::base_gemm_accumulate(a_panel.view(), b_panel.view(), c_acc);
  // Local-accumulator corruption: invisible to the message checksums,
  // caught only by the root's end-to-end verdict.
  if (st.flips) {
    fault::maybe_flip(
        fault::Site::kComputeFlip,
        fault::key(0x50c0u, st.salt,
                   fault::key(static_cast<std::uint64_t>(step),
                              static_cast<std::uint64_t>(me.i),
                              static_cast<std::uint64_t>(me.j))),
        c_acc.data(), c_acc.rows(), c_acc.cols(), c_acc.ld());
  }
}

bool root_operands_valid(ConstMatrixView a, ConstMatrixView b,
                         ConstMatrixView c, const GridSpec& g) {
  return a.square() && b.square() && c.square() && a.rows() == b.rows() &&
         a.rows() == c.rows() && a.rows() > 0 && a.rows() % g.rows == 0;
}

// Rank 0 validates and announces the dimension; 0 means "abort", which
// every rank turns into the same exception. Validating *before* any
// point-to-point traffic is what keeps a bad root call from deadlocking
// the other ranks in recv().
std::size_t negotiate_dim(Communicator& comm, ConstMatrixView a,
                          ConstMatrixView b, ConstMatrixView c,
                          const GridSpec& g) {
  std::vector<double> dims(1, 0.0);
  if (comm.rank() == 0 && root_operands_valid(a, b, c, g)) {
    dims[0] = static_cast<double>(a.rows());
  }
  comm.broadcast(0, dims);
  if (dims[0] == 0.0) {
    throw std::invalid_argument(
        "summa: root operands must be square, equal, nonempty, and "
        "divisible by the grid dimension");
  }
  return static_cast<std::size_t>(dims[0]);
}

}  // namespace

void GridSpec::validate() const {
  if (rows <= 0 || cols <= 0 || layers <= 0) {
    throw std::invalid_argument("GridSpec: non-positive dimension");
  }
  if (rows != cols) {
    throw std::invalid_argument("GridSpec: this implementation requires a "
                                "square in-plane grid");
  }
  if (rows % layers != 0) {
    throw std::invalid_argument(
        "GridSpec: layers must divide the grid dimension");
  }
}

namespace {

// Shared collective driver: run_attempt executes one full scattered
// multiply into c; the root then verifies it end-to-end and broadcasts
// the verdict so every rank takes the same branch (a rank deciding
// alone would desynchronize the collective). Retries re-run from the
// pristine root operands with a fresh flip salt.
template <typename RunAttempt>
void guarded_collective(Communicator& comm, ConstMatrixView a,
                        ConstMatrixView b, MatrixView c,
                        const abft::AbftConfig& cfg, AbftState& st,
                        const char* what, RunAttempt&& run_attempt) {
  st.mode = abft::resolve_mode(cfg);
  st.flips = abft::flips_armed();
  if (st.mode == abft::AbftMode::kOff) {
    st.salt = 0;
    run_attempt();
    return;
  }

  std::optional<abft::AbftGuard> guard;
  if (comm.rank() == 0) {
    guard.emplace(a, b, blas::WorkspaceArena::process_arena(),
                  cfg.tolerance);
  }
  for (int attempt = 0;; ++attempt) {
    st.salt = static_cast<std::uint64_t>(attempt);
    run_attempt();
    std::vector<double> verdict(1, 1.0);
    if (comm.rank() == 0) {
      verdict[0] = guard->verify(c).ok ? 1.0 : 0.0;
    }
    comm.broadcast(0, verdict);
    if (verdict[0] == 1.0) return;
    if (st.mode == abft::AbftMode::kDetect) {
      throw abft::AbftError(std::string("abft: silent corruption detected "
                                        "in ") +
                            what + " result");
    }
    if (attempt >= cfg.max_retries) {
      throw abft::AbftError(std::string("abft: ") + what +
                            " result still corrupt after " +
                            std::to_string(attempt + 1) + " attempt(s)");
    }
    if (comm.rank() == 0) abft::record_retried();
  }
}

}  // namespace

void summa_multiply(Communicator& comm, const GridSpec& grid,
                    ConstMatrixView a, ConstMatrixView b, MatrixView c,
                    const abft::AbftConfig& cfg) {
  grid.validate();
  if (grid.layers != 1) {
    throw std::invalid_argument("summa_multiply: layers must be 1");
  }
  if (comm.size() != grid.ranks()) {
    throw std::invalid_argument("summa_multiply: comm size != grid ranks");
  }
  CAPOW_TSPAN_ARGS1("summa.multiply", "dist", "rank", comm.rank());

  const std::size_t n = negotiate_dim(comm, a, b, c, grid);
  const std::size_t nb = n / grid.rows;
  const RankCoord me = coord_of(comm.rank(), grid);

  AbftState st;
  guarded_collective(comm, a, b, c, cfg, st, "summa", [&] {
    Matrix a_own = scatter_blocks(comm, grid, st, a, nb, kScatterA);
    Matrix b_own = scatter_blocks(comm, grid, st, b, nb, kScatterB);
    Matrix c_acc = Matrix::zeros(nb);
    Matrix a_panel(nb, nb), b_panel(nb, nb);

    for (int step = 0; step < grid.rows; ++step) {
      summa_step(comm, grid, st, me, step, a_own.view(), b_own.view(),
                 a_panel, b_panel, c_acc.view());
    }
    gather_blocks(comm, grid, st, c_acc.view(), c, nb);
  });
}

void summa_multiply(Communicator& comm, const GridSpec& grid,
                    ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  summa_multiply(comm, grid, a, b, c, abft::AbftConfig{});
}

void multiply_25d(Communicator& comm, const GridSpec& grid,
                  ConstMatrixView a, ConstMatrixView b, MatrixView c,
                  const abft::AbftConfig& cfg) {
  grid.validate();
  if (comm.size() != grid.ranks()) {
    throw std::invalid_argument("multiply_25d: comm size != grid ranks");
  }
  CAPOW_TSPAN_ARGS2("summa.multiply_25d", "dist", "rank", comm.rank(),
                    "layers", grid.layers);

  const std::size_t n = negotiate_dim(comm, a, b, c, grid);
  const std::size_t nb = n / grid.rows;
  const RankCoord me = coord_of(comm.rank(), grid);

  AbftState st;
  guarded_collective(comm, a, b, c, cfg, st, "2.5D multiply", [&] {
    // Layer 0 holds the initial distribution...
    Matrix a_own = scatter_blocks(comm, grid, st, a, nb, kScatterA);
    Matrix b_own = scatter_blocks(comm, grid, st, b, nb, kScatterB);

    // ...and replicates it to the other layers (the c-fold memory cost
    // that buys the communication reduction).
    {
      CAPOW_TSPAN_ARGS1("summa.replicate", "dist", "layer", me.layer);
      if (me.layer == 0) {
        for (int l = 1; l < grid.layers; ++l) {
          checked_send(comm, st, rank_of(me.i, me.j, l, grid), kReplicateA,
                       flatten(a_own.view()));
          checked_send(comm, st, rank_of(me.i, me.j, l, grid), kReplicateB,
                       flatten(b_own.view()));
        }
      } else {
        unflatten(checked_recv(comm, st, rank_of(me.i, me.j, 0, grid),
                               kReplicateA),
                  a_own.view());
        unflatten(checked_recv(comm, st, rank_of(me.i, me.j, 0, grid),
                               kReplicateB),
                  b_own.view());
      }
    }

    // Each layer runs its disjoint slice of the k-steps.
    Matrix c_acc = Matrix::zeros(nb);
    Matrix a_panel(nb, nb), b_panel(nb, nb);
    const int steps_per_layer = grid.rows / grid.layers;
    const int first = me.layer * steps_per_layer;
    for (int s = 0; s < steps_per_layer; ++s) {
      summa_step(comm, grid, st, me, first + s, a_own.view(), b_own.view(),
                 a_panel, b_panel, c_acc.view());
    }

    // Sum-reduce partial C blocks onto layer 0.
    {
      CAPOW_TSPAN_ARGS1("summa.layer_reduce", "dist", "layer", me.layer);
      if (me.layer == 0) {
        for (int l = 1; l < grid.layers; ++l) {
          const auto part =
              checked_recv(comm, st, rank_of(me.i, me.j, l, grid),
                           kLayerReduce);
          Matrix tmp(nb, nb);
          unflatten(part, tmp.view());
          linalg::add_inplace(c_acc.view(), tmp.view());
        }
      } else {
        checked_send(comm, st, rank_of(me.i, me.j, 0, grid), kLayerReduce,
                     flatten(c_acc.view()));
      }
    }

    gather_blocks(comm, grid, st, c_acc.view(), c, nb);
  });
}

void multiply_25d(Communicator& comm, const GridSpec& grid,
                  ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  multiply_25d(comm, grid, a, b, c, abft::AbftConfig{});
}

namespace {

constexpr int kPanelReplica = 3100;  // + owner grid rank
constexpr int kPanelRestore = 3200;  // + owner grid rank

/// [a | b | a_sum | b_sum] — the wire form a slot travels in, both for
/// generation-0 replication and for the restore to a replacement rank.
std::vector<double> slot_payload(const PanelSlot& slot) {
  std::vector<double> payload;
  payload.reserve(slot.a.size() + slot.b.size() + 2);
  payload.insert(payload.end(), slot.a.begin(), slot.a.end());
  payload.insert(payload.end(), slot.b.begin(), slot.b.end());
  payload.push_back(slot.a_sum);
  payload.push_back(slot.b_sum);
  return payload;
}

/// Inverse of slot_payload, verifying both checksum words *bitwise*
/// against a fresh recomputation — a reconstruction that is not the
/// exact replicated bytes is rejected, never silently used.
PanelSlot slot_from_payload(std::span<const double> payload, std::size_t nb,
                            const char* what) {
  const std::size_t panel = nb * nb;
  if (payload.size() != 2 * panel + 2) {
    throw abft::AbftError(std::string("abft: ") + what +
                          " panel payload has wrong size");
  }
  PanelSlot slot;
  slot.nb = nb;
  slot.a.assign(payload.begin(), payload.begin() + panel);
  slot.b.assign(payload.begin() + panel, payload.begin() + 2 * panel);
  slot.a_sum = payload[2 * panel];
  slot.b_sum = payload[2 * panel + 1];
  const double a_got = abft::payload_checksum(slot.a.data(), slot.a.size());
  const double b_got = abft::payload_checksum(slot.b.data(), slot.b.size());
  if (std::memcmp(&slot.a_sum, &a_got, sizeof(double)) != 0 ||
      std::memcmp(&slot.b_sum, &b_got, sizeof(double)) != 0) {
    abft::record_detected();
    throw abft::AbftError(std::string("abft: ") + what +
                          " panel checksum mismatch");
  }
  slot.valid = true;
  return slot;
}

PanelSlot make_slot(ConstMatrixView a_own, ConstMatrixView b_own) {
  PanelSlot slot;
  slot.nb = a_own.rows();
  slot.a = flatten(a_own);
  slot.b = flatten(b_own);
  slot.a_sum = abft::payload_checksum(slot.a.data(), slot.a.size());
  slot.b_sum = abft::payload_checksum(slot.b.data(), slot.b.size());
  slot.valid = true;
  return slot;
}

bool contains_rank(const std::vector<int>& ranks, int r) {
  for (int x : ranks) {
    if (x == r) return true;
  }
  return false;
}

/// Can this recovered generation skip the re-scatter and rebuild from
/// the cache? Every input (shared cache state after the generation-0
/// join, the agreed failed set, the grid geometry, the identity of the
/// virtual->physical mapping) is identical on every rank and — because
/// recv outcomes are dataflow-deterministic — identical across
/// identical runs, so all ranks of all runs take the same branch.
bool use_cached_panels(const PanelCacheSet& cache, const RecoveryContext& ctx,
                       bool identity_mapping, int grid_ranks,
                       std::size_t nb) {
  if (!cache.enabled || !ctx.recovered() || ctx.failed_ranks.empty()) {
    return false;
  }
  // Physical-rank-keyed slots only line up with virtual grid positions
  // when the mapping is the identity (respawn); a shrunk world re-maps.
  if (!identity_mapping) return false;
  if (cache.own.size() < static_cast<std::size_t>(grid_ranks) ||
      cache.replica.size() < static_cast<std::size_t>(grid_ranks)) {
    return false;
  }
  for (int r = 0; r < grid_ranks; ++r) {
    if (!contains_rank(ctx.failed_ranks, r)) {
      const PanelSlot& own = cache.own[static_cast<std::size_t>(r)];
      if (!own.valid || own.nb != nb) return false;
    } else {
      // The dead rank's panels live with its buddy — who must itself be
      // alive and must have completed the replication recv in time.
      const int holder = (r + 1) % grid_ranks;
      if (holder == r || contains_rank(ctx.failed_ranks, holder)) {
        return false;
      }
      const PanelSlot& rep = cache.replica[static_cast<std::size_t>(r)];
      if (!rep.valid || rep.nb != nb) return false;
    }
  }
  return true;
}

}  // namespace

void summa_multiply_resilient(Communicator& comm, const RecoveryContext& ctx,
                              PanelCacheSet& cache, ConstMatrixView a,
                              ConstMatrixView b, MatrixView c,
                              const abft::AbftConfig& cfg) {
  // Dimension negotiation runs over the *full* communicator (idle
  // spares included) so a bad root call aborts every rank identically.
  std::vector<double> dims(1, 0.0);
  if (comm.rank() == 0 && a.square() && b.square() && c.square() &&
      a.rows() == b.rows() && a.rows() == c.rows() && a.rows() > 0) {
    dims[0] = static_cast<double>(a.rows());
  }
  comm.broadcast(0, dims);
  if (dims[0] == 0.0) {
    throw std::invalid_argument(
        "summa_multiply_resilient: root operands must be square, equal, "
        "and nonempty");
  }
  const std::size_t n = static_cast<std::size_t>(dims[0]);

  // Largest grid the current membership can field: g*g ranks with n
  // divisible by g (g = 1 always qualifies, so any world size works —
  // which is exactly what lets a shrunk generation re-run the job).
  int g = 1;
  for (int cand = 2; cand * cand <= comm.size(); ++cand) {
    if (n % static_cast<std::size_t>(cand) == 0) g = cand;
  }
  const int grid_ranks = g * g;
  CAPOW_TSPAN_ARGS3("summa.resilient", "dist", "rank", comm.rank(), "grid",
                    g, "generation",
                    static_cast<std::int64_t>(ctx.generation));
  if (comm.rank() >= grid_ranks) return;  // idle spare this generation
  Communicator grid_comm = comm.sub(grid_ranks);

  const GridSpec grid{g, g, 1};
  const std::size_t nb = n / static_cast<std::size_t>(g);
  const RankCoord me = coord_of(grid_comm.rank(), grid);
  const bool identity_mapping = comm.size() == comm.world_size();
  const bool cached =
      use_cached_panels(cache, ctx, identity_mapping, grid_ranks, nb);
  // Replication makes sense only while the cache can be used later:
  // physical-keyed slots from a non-identity generation never match.
  const bool replicate = cache.enabled && identity_mapping &&
                         ctx.generation == 0 && grid_ranks > 1 &&
                         cache.own.size() >= static_cast<std::size_t>(
                                                 grid_ranks) &&
                         cache.replica.size() >= static_cast<std::size_t>(
                                                     grid_ranks);

  // A resilient run that skipped end-to-end verification would be a
  // contradiction; promote an unset mode to correct.
  abft::AbftConfig rcfg = cfg;
  if (abft::resolve_mode(rcfg) == abft::AbftMode::kOff) {
    rcfg.mode = abft::AbftMode::kCorrect;
  }

  AbftState st;
  guarded_collective(grid_comm, a, b, c, rcfg, st, "resilient summa", [&] {
    const int r = grid_comm.rank();
    Matrix a_own(nb, nb), b_own(nb, nb);
    if (!cached) {
      a_own = scatter_blocks(grid_comm, grid, st, a, nb, kScatterA);
      b_own = scatter_blocks(grid_comm, grid, st, b, nb, kScatterB);
      // Buddy replication: each rank ships its checksummed panels one
      // rank clockwise. Only the first ABFT attempt replicates — a
      // retry re-scatters the same operands, so the cache is already
      // exact (and both sides branch on st.salt, staying matched).
      if (replicate && st.salt == 0) {
        CAPOW_TSPAN_ARGS1("summa.replicate_panels", "dist", "rank", r);
        PanelSlot mine = make_slot(a_own.view(), b_own.view());
        const int buddy = (r + 1) % grid_ranks;
        const int owner = (r - 1 + grid_ranks) % grid_ranks;
        grid_comm.send(buddy, kPanelReplica + r, slot_payload(mine));
        const Message m = grid_comm.recv(owner, kPanelReplica + owner);
        cache.replica[static_cast<std::size_t>(owner)] =
            slot_from_payload(m.payload, nb, "replicated");
        cache.own[static_cast<std::size_t>(r)] = std::move(mine);
      }
    } else {
      // Reconstruction: buddies restore the dead ranks' panels over the
      // wire (deterministic order: ascending victim), survivors reload
      // their own cached copies, and nobody re-touches the root
      // operands — the scatter is skipped entirely.
      CAPOW_TSPAN_ARGS2("summa.restore_panels", "dist", "rank", r,
                        "failed", static_cast<std::int64_t>(
                                      ctx.failed_ranks.size()));
      for (int v : ctx.failed_ranks) {
        if (v >= grid_ranks) continue;  // dead idle spare: nothing lost
        const int holder = (v + 1) % grid_ranks;
        if (r == holder) {
          grid_comm.send(
              v, kPanelRestore + v,
              slot_payload(cache.replica[static_cast<std::size_t>(v)]));
        } else if (r == v) {
          const Message m = grid_comm.recv(holder, kPanelRestore + v);
          const PanelSlot got = slot_from_payload(m.payload, nb, "restored");
          unflatten(got.a, a_own.view());
          unflatten(got.b, b_own.view());
        }
      }
      if (!contains_rank(ctx.failed_ranks, r)) {
        const PanelSlot& own = cache.own[static_cast<std::size_t>(r)];
        unflatten(own.a, a_own.view());
        unflatten(own.b, b_own.view());
      }
    }

    Matrix c_acc = Matrix::zeros(nb);
    Matrix a_panel(nb, nb), b_panel(nb, nb);
    for (int step = 0; step < g; ++step) {
      summa_step(grid_comm, grid, st, me, step, a_own.view(), b_own.view(),
                 a_panel, b_panel, c_acc.view());
    }
    gather_blocks(grid_comm, grid, st, c_acc.view(), c, nb);
  });
}

void summa_multiply_resilient(Communicator& comm, const RecoveryContext& ctx,
                              PanelCacheSet& cache, ConstMatrixView a,
                              ConstMatrixView b, MatrixView c) {
  summa_multiply_resilient(comm, ctx, cache, a, b, c, abft::AbftConfig{});
}

}  // namespace capow::dist
