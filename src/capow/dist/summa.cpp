#include "capow/dist/summa.hpp"

#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "capow/abft/checksum.hpp"
#include "capow/blas/gemm_ref.hpp"
#include "capow/fault/fault.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/strassen/base_kernel.hpp"
#include "capow/telemetry/telemetry.hpp"

namespace capow::dist {

namespace {

using linalg::ConstMatrixView;
using linalg::Matrix;
using linalg::MatrixView;

constexpr int kScatterA = 500;
constexpr int kScatterB = 501;
constexpr int kGatherC = 502;
constexpr int kRowBcastBase = 1000;  // + step
constexpr int kColBcastBase = 2000;  // + step
constexpr int kReplicateA = 3000;
constexpr int kReplicateB = 3001;
constexpr int kLayerReduce = 3002;

struct RankCoord {
  int i;      // grid row
  int j;      // grid column
  int layer;  // replication layer
};

RankCoord coord_of(int rank, const GridSpec& g) {
  const int per_layer = g.rows * g.cols;
  return RankCoord{(rank % per_layer) / g.cols, rank % g.cols,
                   rank / per_layer};
}

int rank_of(int i, int j, int layer, const GridSpec& g) {
  return (layer * g.rows + i) * g.cols + j;
}

/// Per-collective ABFT state, fixed before any traffic and identical on
/// every rank (mode/tolerance from the shared config, salt from the
/// collective attempt number) — so all ranks agree on the wire format.
struct AbftState {
  abft::AbftMode mode = abft::AbftMode::kOff;
  bool flips = false;           ///< flip fault sites armed this run
  std::uint64_t salt = 0;       ///< collective attempt number
};

/// Appends the end-to-end checksum word in detect/correct mode. The
/// off-mode payload is byte-identical to the pre-ABFT protocol.
void checked_send(Communicator& comm, const AbftState& st, int dest, int tag,
                  std::vector<double> payload) {
  if (st.mode != abft::AbftMode::kOff) {
    payload.push_back(abft::payload_checksum(payload.data(), payload.size()));
  }
  comm.send(dest, tag, payload);
}

/// Receives a payload, injects any armed mem.flip (keyed on the logical
/// route, not arrival order), then checks the sender's checksum word
/// bitwise. Detect mode throws on mismatch; correct mode records the
/// detection and hands the damaged payload on — the root's end-to-end
/// verdict triggers the collective re-run that actually repairs it (the
/// sender has long moved on, so there is nobody to ask for a resend).
std::vector<double> checked_recv(Communicator& comm, const AbftState& st,
                                 int src, int tag) {
  const Message msg = comm.recv(src, tag);
  std::vector<double> payload(msg.payload.begin(), msg.payload.end());
  if (st.mode == abft::AbftMode::kOff) return payload;
  if (payload.empty()) {
    throw abft::AbftError("abft: checksummed message arrived empty");
  }
  const double sent = payload.back();
  payload.pop_back();
  if (st.flips) {
    fault::maybe_flip(
        fault::Site::kMemFlip,
        fault::key(0x5077u, st.salt,
                   fault::key(static_cast<std::uint64_t>(tag),
                              static_cast<std::uint64_t>(src),
                              static_cast<std::uint64_t>(comm.rank()))),
        payload.data(), 1, payload.size(), payload.size());
  }
  const double got = abft::payload_checksum(payload.data(), payload.size());
  if (std::memcmp(&sent, &got, sizeof(double)) != 0) {
    abft::record_detected();
    if (st.mode == abft::AbftMode::kDetect) {
      throw abft::AbftError(
          "abft: message checksum mismatch (tag " + std::to_string(tag) +
          ", " + std::to_string(src) + " -> " + std::to_string(comm.rank()) +
          ")");
    }
  }
  return payload;
}

std::vector<double> flatten(ConstMatrixView v) {
  std::vector<double> out(v.size());
  for (std::size_t r = 0; r < v.rows(); ++r) {
    std::memcpy(out.data() + r * v.cols(), v.row(r),
                v.cols() * sizeof(double));
  }
  return out;
}

void unflatten(std::span<const double> data, MatrixView v) {
  if (data.size() != v.size()) {
    throw std::invalid_argument("summa: payload size mismatch");
  }
  for (std::size_t r = 0; r < v.rows(); ++r) {
    std::memcpy(v.row(r), data.data() + r * v.cols(),
                v.cols() * sizeof(double));
  }
}

// Root scatters the (i, j) blocks of `m` to layer-0 ranks; returns this
// rank's block. `nb` is the block dimension.
Matrix scatter_blocks(Communicator& comm, const GridSpec& g,
                      const AbftState& st, ConstMatrixView m, std::size_t nb,
                      int tag) {
  CAPOW_TSPAN_ARGS1("summa.scatter", "dist", "nb", nb);
  const RankCoord me = coord_of(comm.rank(), g);
  Matrix mine(nb, nb);
  if (comm.rank() == 0) {
    for (int i = 0; i < g.rows; ++i) {
      for (int j = 0; j < g.cols; ++j) {
        auto block = m.block(i * nb, j * nb, nb, nb);
        const int dest = rank_of(i, j, 0, g);
        if (dest == 0) {
          linalg::copy(block, mine.view());
        } else {
          checked_send(comm, st, dest, tag, flatten(block));
        }
      }
    }
  } else if (me.layer == 0) {
    unflatten(checked_recv(comm, st, 0, tag), mine.view());
  }
  return mine;
}

void gather_blocks(Communicator& comm, const GridSpec& g, const AbftState& st,
                   ConstMatrixView mine, MatrixView out, std::size_t nb) {
  CAPOW_TSPAN_ARGS1("summa.gather", "dist", "nb", nb);
  const RankCoord me = coord_of(comm.rank(), g);
  if (comm.rank() == 0) {
    for (int i = 0; i < g.rows; ++i) {
      for (int j = 0; j < g.cols; ++j) {
        auto block = out.block(i * nb, j * nb, nb, nb);
        const int src = rank_of(i, j, 0, g);
        if (src == 0) {
          linalg::copy(mine, block);
        } else {
          unflatten(checked_recv(comm, st, src, kGatherC), block);
        }
      }
    }
  } else if (me.layer == 0) {
    checked_send(comm, st, 0, kGatherC, flatten(mine));
  }
}

// One SUMMA k-step inside a layer: the step's owner column/row
// broadcasts its A/B block along its grid row/column, everyone
// accumulates.
void summa_step(Communicator& comm, const GridSpec& g, const AbftState& st,
                const RankCoord& me, int step, ConstMatrixView a_own,
                ConstMatrixView b_own, Matrix& a_panel, Matrix& b_panel,
                MatrixView c_acc) {
  CAPOW_TSPAN_ARGS2("summa.step", "dist", "step", step, "layer", me.layer);
  // A broadcast along the row.
  if (me.j == step) {
    for (int j = 0; j < g.cols; ++j) {
      if (j == me.j) continue;
      checked_send(comm, st, rank_of(me.i, j, me.layer, g),
                   kRowBcastBase + step, flatten(a_own));
    }
    linalg::copy(a_own, a_panel.view());
  } else {
    unflatten(checked_recv(comm, st, rank_of(me.i, step, me.layer, g),
                           kRowBcastBase + step),
              a_panel.view());
  }
  // B broadcast along the column.
  if (me.i == step) {
    for (int i = 0; i < g.rows; ++i) {
      if (i == me.i) continue;
      checked_send(comm, st, rank_of(i, me.j, me.layer, g),
                   kColBcastBase + step, flatten(b_own));
    }
    linalg::copy(b_own, b_panel.view());
  } else {
    unflatten(checked_recv(comm, st, rank_of(step, me.j, me.layer, g),
                           kColBcastBase + step),
              b_panel.view());
  }
  strassen::base_gemm_accumulate(a_panel.view(), b_panel.view(), c_acc);
  // Local-accumulator corruption: invisible to the message checksums,
  // caught only by the root's end-to-end verdict.
  if (st.flips) {
    fault::maybe_flip(
        fault::Site::kComputeFlip,
        fault::key(0x50c0u, st.salt,
                   fault::key(static_cast<std::uint64_t>(step),
                              static_cast<std::uint64_t>(me.i),
                              static_cast<std::uint64_t>(me.j))),
        c_acc.data(), c_acc.rows(), c_acc.cols(), c_acc.ld());
  }
}

bool root_operands_valid(ConstMatrixView a, ConstMatrixView b,
                         ConstMatrixView c, const GridSpec& g) {
  return a.square() && b.square() && c.square() && a.rows() == b.rows() &&
         a.rows() == c.rows() && a.rows() > 0 && a.rows() % g.rows == 0;
}

// Rank 0 validates and announces the dimension; 0 means "abort", which
// every rank turns into the same exception. Validating *before* any
// point-to-point traffic is what keeps a bad root call from deadlocking
// the other ranks in recv().
std::size_t negotiate_dim(Communicator& comm, ConstMatrixView a,
                          ConstMatrixView b, ConstMatrixView c,
                          const GridSpec& g) {
  std::vector<double> dims(1, 0.0);
  if (comm.rank() == 0 && root_operands_valid(a, b, c, g)) {
    dims[0] = static_cast<double>(a.rows());
  }
  comm.broadcast(0, dims);
  if (dims[0] == 0.0) {
    throw std::invalid_argument(
        "summa: root operands must be square, equal, nonempty, and "
        "divisible by the grid dimension");
  }
  return static_cast<std::size_t>(dims[0]);
}

}  // namespace

void GridSpec::validate() const {
  if (rows <= 0 || cols <= 0 || layers <= 0) {
    throw std::invalid_argument("GridSpec: non-positive dimension");
  }
  if (rows != cols) {
    throw std::invalid_argument("GridSpec: this implementation requires a "
                                "square in-plane grid");
  }
  if (rows % layers != 0) {
    throw std::invalid_argument(
        "GridSpec: layers must divide the grid dimension");
  }
}

namespace {

// Shared collective driver: run_attempt executes one full scattered
// multiply into c; the root then verifies it end-to-end and broadcasts
// the verdict so every rank takes the same branch (a rank deciding
// alone would desynchronize the collective). Retries re-run from the
// pristine root operands with a fresh flip salt.
template <typename RunAttempt>
void guarded_collective(Communicator& comm, ConstMatrixView a,
                        ConstMatrixView b, MatrixView c,
                        const abft::AbftConfig& cfg, AbftState& st,
                        const char* what, RunAttempt&& run_attempt) {
  st.mode = abft::resolve_mode(cfg);
  st.flips = abft::flips_armed();
  if (st.mode == abft::AbftMode::kOff) {
    st.salt = 0;
    run_attempt();
    return;
  }

  std::optional<abft::AbftGuard> guard;
  if (comm.rank() == 0) {
    guard.emplace(a, b, blas::WorkspaceArena::process_arena(),
                  cfg.tolerance);
  }
  for (int attempt = 0;; ++attempt) {
    st.salt = static_cast<std::uint64_t>(attempt);
    run_attempt();
    std::vector<double> verdict(1, 1.0);
    if (comm.rank() == 0) {
      verdict[0] = guard->verify(c).ok ? 1.0 : 0.0;
    }
    comm.broadcast(0, verdict);
    if (verdict[0] == 1.0) return;
    if (st.mode == abft::AbftMode::kDetect) {
      throw abft::AbftError(std::string("abft: silent corruption detected "
                                        "in ") +
                            what + " result");
    }
    if (attempt >= cfg.max_retries) {
      throw abft::AbftError(std::string("abft: ") + what +
                            " result still corrupt after " +
                            std::to_string(attempt + 1) + " attempt(s)");
    }
    if (comm.rank() == 0) abft::record_retried();
  }
}

}  // namespace

void summa_multiply(Communicator& comm, const GridSpec& grid,
                    ConstMatrixView a, ConstMatrixView b, MatrixView c,
                    const abft::AbftConfig& cfg) {
  grid.validate();
  if (grid.layers != 1) {
    throw std::invalid_argument("summa_multiply: layers must be 1");
  }
  if (comm.size() != grid.ranks()) {
    throw std::invalid_argument("summa_multiply: comm size != grid ranks");
  }
  CAPOW_TSPAN_ARGS1("summa.multiply", "dist", "rank", comm.rank());

  const std::size_t n = negotiate_dim(comm, a, b, c, grid);
  const std::size_t nb = n / grid.rows;
  const RankCoord me = coord_of(comm.rank(), grid);

  AbftState st;
  guarded_collective(comm, a, b, c, cfg, st, "summa", [&] {
    Matrix a_own = scatter_blocks(comm, grid, st, a, nb, kScatterA);
    Matrix b_own = scatter_blocks(comm, grid, st, b, nb, kScatterB);
    Matrix c_acc = Matrix::zeros(nb);
    Matrix a_panel(nb, nb), b_panel(nb, nb);

    for (int step = 0; step < grid.rows; ++step) {
      summa_step(comm, grid, st, me, step, a_own.view(), b_own.view(),
                 a_panel, b_panel, c_acc.view());
    }
    gather_blocks(comm, grid, st, c_acc.view(), c, nb);
  });
}

void summa_multiply(Communicator& comm, const GridSpec& grid,
                    ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  summa_multiply(comm, grid, a, b, c, abft::AbftConfig{});
}

void multiply_25d(Communicator& comm, const GridSpec& grid,
                  ConstMatrixView a, ConstMatrixView b, MatrixView c,
                  const abft::AbftConfig& cfg) {
  grid.validate();
  if (comm.size() != grid.ranks()) {
    throw std::invalid_argument("multiply_25d: comm size != grid ranks");
  }
  CAPOW_TSPAN_ARGS2("summa.multiply_25d", "dist", "rank", comm.rank(),
                    "layers", grid.layers);

  const std::size_t n = negotiate_dim(comm, a, b, c, grid);
  const std::size_t nb = n / grid.rows;
  const RankCoord me = coord_of(comm.rank(), grid);

  AbftState st;
  guarded_collective(comm, a, b, c, cfg, st, "2.5D multiply", [&] {
    // Layer 0 holds the initial distribution...
    Matrix a_own = scatter_blocks(comm, grid, st, a, nb, kScatterA);
    Matrix b_own = scatter_blocks(comm, grid, st, b, nb, kScatterB);

    // ...and replicates it to the other layers (the c-fold memory cost
    // that buys the communication reduction).
    {
      CAPOW_TSPAN_ARGS1("summa.replicate", "dist", "layer", me.layer);
      if (me.layer == 0) {
        for (int l = 1; l < grid.layers; ++l) {
          checked_send(comm, st, rank_of(me.i, me.j, l, grid), kReplicateA,
                       flatten(a_own.view()));
          checked_send(comm, st, rank_of(me.i, me.j, l, grid), kReplicateB,
                       flatten(b_own.view()));
        }
      } else {
        unflatten(checked_recv(comm, st, rank_of(me.i, me.j, 0, grid),
                               kReplicateA),
                  a_own.view());
        unflatten(checked_recv(comm, st, rank_of(me.i, me.j, 0, grid),
                               kReplicateB),
                  b_own.view());
      }
    }

    // Each layer runs its disjoint slice of the k-steps.
    Matrix c_acc = Matrix::zeros(nb);
    Matrix a_panel(nb, nb), b_panel(nb, nb);
    const int steps_per_layer = grid.rows / grid.layers;
    const int first = me.layer * steps_per_layer;
    for (int s = 0; s < steps_per_layer; ++s) {
      summa_step(comm, grid, st, me, first + s, a_own.view(), b_own.view(),
                 a_panel, b_panel, c_acc.view());
    }

    // Sum-reduce partial C blocks onto layer 0.
    {
      CAPOW_TSPAN_ARGS1("summa.layer_reduce", "dist", "layer", me.layer);
      if (me.layer == 0) {
        for (int l = 1; l < grid.layers; ++l) {
          const auto part =
              checked_recv(comm, st, rank_of(me.i, me.j, l, grid),
                           kLayerReduce);
          Matrix tmp(nb, nb);
          unflatten(part, tmp.view());
          linalg::add_inplace(c_acc.view(), tmp.view());
        }
      } else {
        checked_send(comm, st, rank_of(me.i, me.j, 0, grid), kLayerReduce,
                     flatten(c_acc.view()));
      }
    }

    gather_blocks(comm, grid, st, c_acc.view(), c, nb);
  });
}

void multiply_25d(Communicator& comm, const GridSpec& grid,
                  ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  multiply_25d(comm, grid, a, b, c, abft::AbftConfig{});
}

}  // namespace capow::dist
