#include "capow/dist/summa.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "capow/blas/gemm_ref.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/strassen/base_kernel.hpp"
#include "capow/telemetry/telemetry.hpp"

namespace capow::dist {

namespace {

using linalg::ConstMatrixView;
using linalg::Matrix;
using linalg::MatrixView;

constexpr int kScatterA = 500;
constexpr int kScatterB = 501;
constexpr int kGatherC = 502;
constexpr int kRowBcastBase = 1000;  // + step
constexpr int kColBcastBase = 2000;  // + step
constexpr int kReplicateA = 3000;
constexpr int kReplicateB = 3001;
constexpr int kLayerReduce = 3002;

struct RankCoord {
  int i;      // grid row
  int j;      // grid column
  int layer;  // replication layer
};

RankCoord coord_of(int rank, const GridSpec& g) {
  const int per_layer = g.rows * g.cols;
  return RankCoord{(rank % per_layer) / g.cols, rank % g.cols,
                   rank / per_layer};
}

int rank_of(int i, int j, int layer, const GridSpec& g) {
  return (layer * g.rows + i) * g.cols + j;
}

std::vector<double> flatten(ConstMatrixView v) {
  std::vector<double> out(v.size());
  for (std::size_t r = 0; r < v.rows(); ++r) {
    std::memcpy(out.data() + r * v.cols(), v.row(r),
                v.cols() * sizeof(double));
  }
  return out;
}

void unflatten(std::span<const double> data, MatrixView v) {
  if (data.size() != v.size()) {
    throw std::invalid_argument("summa: payload size mismatch");
  }
  for (std::size_t r = 0; r < v.rows(); ++r) {
    std::memcpy(v.row(r), data.data() + r * v.cols(),
                v.cols() * sizeof(double));
  }
}

// Root scatters the (i, j) blocks of `m` to layer-0 ranks; returns this
// rank's block. `nb` is the block dimension.
Matrix scatter_blocks(Communicator& comm, const GridSpec& g,
                      ConstMatrixView m, std::size_t nb, int tag) {
  CAPOW_TSPAN_ARGS1("summa.scatter", "dist", "nb", nb);
  const RankCoord me = coord_of(comm.rank(), g);
  Matrix mine(nb, nb);
  if (comm.rank() == 0) {
    for (int i = 0; i < g.rows; ++i) {
      for (int j = 0; j < g.cols; ++j) {
        auto block = m.block(i * nb, j * nb, nb, nb);
        const int dest = rank_of(i, j, 0, g);
        if (dest == 0) {
          linalg::copy(block, mine.view());
        } else {
          comm.send(dest, tag, flatten(block));
        }
      }
    }
  } else if (me.layer == 0) {
    unflatten(comm.recv(0, tag).payload, mine.view());
  }
  return mine;
}

void gather_blocks(Communicator& comm, const GridSpec& g,
                   ConstMatrixView mine, MatrixView out, std::size_t nb) {
  CAPOW_TSPAN_ARGS1("summa.gather", "dist", "nb", nb);
  const RankCoord me = coord_of(comm.rank(), g);
  if (comm.rank() == 0) {
    for (int i = 0; i < g.rows; ++i) {
      for (int j = 0; j < g.cols; ++j) {
        auto block = out.block(i * nb, j * nb, nb, nb);
        const int src = rank_of(i, j, 0, g);
        if (src == 0) {
          linalg::copy(mine, block);
        } else {
          unflatten(comm.recv(src, kGatherC).payload, block);
        }
      }
    }
  } else if (me.layer == 0) {
    comm.send(0, kGatherC, flatten(mine));
  }
}

// One SUMMA k-step inside a layer: the step's owner column/row
// broadcasts its A/B block along its grid row/column, everyone
// accumulates.
void summa_step(Communicator& comm, const GridSpec& g, const RankCoord& me,
                int step, ConstMatrixView a_own, ConstMatrixView b_own,
                Matrix& a_panel, Matrix& b_panel, MatrixView c_acc) {
  CAPOW_TSPAN_ARGS2("summa.step", "dist", "step", step, "layer", me.layer);
  // A broadcast along the row.
  if (me.j == step) {
    for (int j = 0; j < g.cols; ++j) {
      if (j == me.j) continue;
      comm.send(rank_of(me.i, j, me.layer, g), kRowBcastBase + step,
                flatten(a_own));
    }
    linalg::copy(a_own, a_panel.view());
  } else {
    unflatten(
        comm.recv(rank_of(me.i, step, me.layer, g), kRowBcastBase + step)
            .payload,
        a_panel.view());
  }
  // B broadcast along the column.
  if (me.i == step) {
    for (int i = 0; i < g.rows; ++i) {
      if (i == me.i) continue;
      comm.send(rank_of(i, me.j, me.layer, g), kColBcastBase + step,
                flatten(b_own));
    }
    linalg::copy(b_own, b_panel.view());
  } else {
    unflatten(
        comm.recv(rank_of(step, me.j, me.layer, g), kColBcastBase + step)
            .payload,
        b_panel.view());
  }
  strassen::base_gemm_accumulate(a_panel.view(), b_panel.view(), c_acc);
}

bool root_operands_valid(ConstMatrixView a, ConstMatrixView b,
                         ConstMatrixView c, const GridSpec& g) {
  return a.square() && b.square() && c.square() && a.rows() == b.rows() &&
         a.rows() == c.rows() && a.rows() > 0 && a.rows() % g.rows == 0;
}

// Rank 0 validates and announces the dimension; 0 means "abort", which
// every rank turns into the same exception. Validating *before* any
// point-to-point traffic is what keeps a bad root call from deadlocking
// the other ranks in recv().
std::size_t negotiate_dim(Communicator& comm, ConstMatrixView a,
                          ConstMatrixView b, ConstMatrixView c,
                          const GridSpec& g) {
  std::vector<double> dims(1, 0.0);
  if (comm.rank() == 0 && root_operands_valid(a, b, c, g)) {
    dims[0] = static_cast<double>(a.rows());
  }
  comm.broadcast(0, dims);
  if (dims[0] == 0.0) {
    throw std::invalid_argument(
        "summa: root operands must be square, equal, nonempty, and "
        "divisible by the grid dimension");
  }
  return static_cast<std::size_t>(dims[0]);
}

}  // namespace

void GridSpec::validate() const {
  if (rows <= 0 || cols <= 0 || layers <= 0) {
    throw std::invalid_argument("GridSpec: non-positive dimension");
  }
  if (rows != cols) {
    throw std::invalid_argument("GridSpec: this implementation requires a "
                                "square in-plane grid");
  }
  if (rows % layers != 0) {
    throw std::invalid_argument(
        "GridSpec: layers must divide the grid dimension");
  }
}

void summa_multiply(Communicator& comm, const GridSpec& grid,
                    ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  grid.validate();
  if (grid.layers != 1) {
    throw std::invalid_argument("summa_multiply: layers must be 1");
  }
  if (comm.size() != grid.ranks()) {
    throw std::invalid_argument("summa_multiply: comm size != grid ranks");
  }
  CAPOW_TSPAN_ARGS1("summa.multiply", "dist", "rank", comm.rank());

  const std::size_t n = negotiate_dim(comm, a, b, c, grid);
  const std::size_t nb = n / grid.rows;
  const RankCoord me = coord_of(comm.rank(), grid);

  Matrix a_own = scatter_blocks(comm, grid, a, nb, kScatterA);
  Matrix b_own = scatter_blocks(comm, grid, b, nb, kScatterB);
  Matrix c_acc = Matrix::zeros(nb);
  Matrix a_panel(nb, nb), b_panel(nb, nb);

  for (int step = 0; step < grid.rows; ++step) {
    summa_step(comm, grid, me, step, a_own.view(), b_own.view(), a_panel,
               b_panel, c_acc.view());
  }
  gather_blocks(comm, grid, c_acc.view(), c, nb);
}

void multiply_25d(Communicator& comm, const GridSpec& grid,
                  ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  grid.validate();
  if (comm.size() != grid.ranks()) {
    throw std::invalid_argument("multiply_25d: comm size != grid ranks");
  }
  CAPOW_TSPAN_ARGS2("summa.multiply_25d", "dist", "rank", comm.rank(),
                    "layers", grid.layers);

  const std::size_t n = negotiate_dim(comm, a, b, c, grid);
  const std::size_t nb = n / grid.rows;
  const RankCoord me = coord_of(comm.rank(), grid);

  // Layer 0 holds the initial distribution...
  Matrix a_own = scatter_blocks(comm, grid, a, nb, kScatterA);
  Matrix b_own = scatter_blocks(comm, grid, b, nb, kScatterB);

  // ...and replicates it to the other layers (the c-fold memory cost
  // that buys the communication reduction).
  {
    CAPOW_TSPAN_ARGS1("summa.replicate", "dist", "layer", me.layer);
    if (me.layer == 0) {
      for (int l = 1; l < grid.layers; ++l) {
        comm.send(rank_of(me.i, me.j, l, grid), kReplicateA,
                  flatten(a_own.view()));
        comm.send(rank_of(me.i, me.j, l, grid), kReplicateB,
                  flatten(b_own.view()));
      }
    } else {
      unflatten(
          comm.recv(rank_of(me.i, me.j, 0, grid), kReplicateA).payload,
          a_own.view());
      unflatten(
          comm.recv(rank_of(me.i, me.j, 0, grid), kReplicateB).payload,
          b_own.view());
    }
  }

  // Each layer runs its disjoint slice of the k-steps.
  Matrix c_acc = Matrix::zeros(nb);
  Matrix a_panel(nb, nb), b_panel(nb, nb);
  const int steps_per_layer = grid.rows / grid.layers;
  const int first = me.layer * steps_per_layer;
  for (int s = 0; s < steps_per_layer; ++s) {
    summa_step(comm, grid, me, first + s, a_own.view(), b_own.view(),
               a_panel, b_panel, c_acc.view());
  }

  // Sum-reduce partial C blocks onto layer 0.
  {
    CAPOW_TSPAN_ARGS1("summa.layer_reduce", "dist", "layer", me.layer);
    if (me.layer == 0) {
      for (int l = 1; l < grid.layers; ++l) {
        const auto part =
            comm.recv(rank_of(me.i, me.j, l, grid), kLayerReduce).payload;
        Matrix tmp(nb, nb);
        unflatten(part, tmp.view());
        linalg::add_inplace(c_acc.view(), tmp.view());
      }
    } else {
      comm.send(rank_of(me.i, me.j, 0, grid), kLayerReduce,
                flatten(c_acc.view()));
    }
  }

  gather_blocks(comm, grid, c_acc.view(), c, nb);
}

}  // namespace capow::dist
