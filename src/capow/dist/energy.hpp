// Interconnect-aware energy model for distributed runs (paper §VIII:
// the distributed EP model "shall take into account the power associated
// with transmitting memory blocks across the interconnect as well as
// local communication traffic").
#pragma once

#include <cstdint>

#include "capow/machine/machine.hpp"

namespace capow::dist {

/// A cluster of identical nodes joined by a commodity link.
struct DistMachineSpec {
  machine::MachineSpec node = machine::haswell_e3_1225();
  /// Sustained link bandwidth per node (default: 10 GbE).
  double link_bandwidth_bytes_per_s = 1.25e9;
  /// Per-message latency (software + wire).
  double link_latency_s = 5e-6;
  /// Interconnect energy per byte moved (NIC + switch + serdes).
  double link_energy_per_byte_nj = 5.0;
  /// Always-on NIC/link power per node.
  double nic_static_w = 4.0;

  /// Throws std::invalid_argument on non-positive rates.
  void validate() const;
};

/// Aggregate estimate for one distributed run.
struct DistRunEstimate {
  double seconds = 0.0;
  double node_energy_j = 0.0;  ///< sum over nodes (package plane)
  double link_energy_j = 0.0;  ///< interconnect transfer + NIC static
  double total_energy_j() const noexcept {
    return node_energy_j + link_energy_j;
  }
  double avg_power_w() const noexcept {
    return seconds > 0.0 ? total_energy_j() / seconds : 0.0;
  }
};

/// Models a bulk-synchronous distributed run: per-node compute of
/// `max_rank_flops` at `efficiency` overlapped against serialized root
/// communication of `total_message_bytes` across `messages` messages.
/// One core per node computes (the local solves here are serial);
/// remaining cores idle.
/// Throws std::invalid_argument for ranks == 0, efficiency outside
/// (0,1], or negative costs.
DistRunEstimate estimate_distributed_run(const DistMachineSpec& spec,
                                         unsigned ranks,
                                         double max_rank_flops,
                                         double efficiency,
                                         double total_message_bytes,
                                         std::uint64_t messages);

}  // namespace capow::dist
