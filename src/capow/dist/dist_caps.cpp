#include "capow/dist/dist_caps.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

#include "capow/blas/gemm_ref.hpp"
#include "capow/linalg/ops.hpp"
#include "capow/linalg/partition.hpp"
#include "capow/strassen/base_kernel.hpp"
#include "capow/strassen/counted_ops.hpp"
#include "capow/telemetry/telemetry.hpp"

namespace capow::dist {

namespace {

using linalg::ConstMatrixView;
using linalg::Matrix;
using linalg::MatrixView;

// Tag layout: distributed levels are disambiguated by depth (each
// leader/sub-leader pair exchanges at most one sub-problem per depth).
constexpr int kOperandTagBase = 100;  // + depth * 16 + subproblem
constexpr int kResultTagBase = 4000;  // + depth * 16 + subproblem
constexpr int kScatterTag = 300;
constexpr int kGatherTag = 302;

std::vector<double> flatten(ConstMatrixView v) {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.rows(); ++i) {
    std::memcpy(out.data() + i * v.cols(), v.row(i),
                v.cols() * sizeof(double));
  }
  return out;
}

void unflatten(std::span<const double> data, MatrixView v) {
  if (data.size() != v.size()) {
    throw std::invalid_argument("unflatten: payload size mismatch");
  }
  for (std::size_t i = 0; i < v.rows(); ++i) {
    std::memcpy(v.row(i), data.data() + i * v.cols(),
                v.cols() * sizeof(double));
  }
}

// Leader side: materialize the 14 classic-Strassen operand combinations.
void materialize_operands(ConstMatrixView a, ConstMatrixView b,
                          std::array<Matrix, 7>& la,
                          std::array<Matrix, 7>& lb) {
  const auto qa = linalg::partition(a);
  const auto qb = linalg::partition(b);
  const std::size_t h = a.rows() / 2;
  for (int i = 0; i < 7; ++i) {
    la[i] = Matrix(h, h);
    lb[i] = Matrix(h, h);
  }
  using namespace capow::strassen;
  counted_add(qa.q11, qa.q22, la[0].view());
  counted_add(qa.q21, qa.q22, la[1].view());
  counted_copy(qa.q11, la[2].view());
  counted_copy(qa.q22, la[3].view());
  counted_add(qa.q11, qa.q12, la[4].view());
  counted_sub(qa.q21, qa.q11, la[5].view());
  counted_sub(qa.q12, qa.q22, la[6].view());
  counted_add(qb.q11, qb.q22, lb[0].view());
  counted_copy(qb.q11, lb[1].view());
  counted_sub(qb.q12, qb.q22, lb[2].view());
  counted_sub(qb.q21, qb.q11, lb[3].view());
  counted_copy(qb.q22, lb[4].view());
  counted_add(qb.q11, qb.q12, lb[5].view());
  counted_add(qb.q21, qb.q22, lb[6].view());
}

void combine(const std::array<Matrix, 7>& q, MatrixView c) {
  using namespace capow::strassen;
  const auto qc = linalg::partition(c);
  counted_add(q[0].view(), q[3].view(), qc.q11);
  counted_sub_inplace(qc.q11, q[4].view());
  counted_add_inplace(qc.q11, q[6].view());
  counted_add(q[2].view(), q[4].view(), qc.q12);
  counted_add(q[1].view(), q[3].view(), qc.q21);
  counted_sub(q[0].view(), q[1].view(), qc.q22);
  counted_add_inplace(qc.q22, q[2].view());
  counted_add_inplace(qc.q22, q[5].view());
}

// A contiguous rank group [lo, hi) whose first rank is the leader.
struct Group {
  int lo;
  int hi;

  int size() const noexcept { return hi - lo; }
  int leader() const noexcept { return lo; }
  /// Sub-group i of the 7-way split (sizes balanced by division).
  Group chunk(int i) const noexcept {
    return Group{lo + size() * i / 7, lo + size() * (i + 1) / 7};
  }
  bool contains(int rank) const noexcept {
    return rank >= lo && rank < hi;
  }
};

// Recursive distributed solve over `group`. Only the group leader holds
// meaningful (a, b, c) views; every group member must call this. The
// sub-problem dimension at each depth is deterministic from n, so
// non-leaders size their buffers without extra messages.
void solve_group(Communicator& comm, const Group& group,
                 ConstMatrixView a, ConstMatrixView b, MatrixView c,
                 std::size_t n, const DistCapsOptions& opts,
                 std::size_t depth) {
  CAPOW_TSPAN_ARGS2("dist_caps.solve_group", "dist", "depth", depth,
                    "group_size", group.size());
  const int me = comm.rank();
  const bool leader = me == group.leader();

  // Termination: solve locally on the leader.
  if (group.size() == 1 || n <= opts.distribute_threshold || n % 2 != 0 ||
      depth >= opts.max_distribution_levels) {
    if (leader) capsalg::multiply(a, b, c, opts.local);
    return;
  }

  const std::size_t h = n / 2;
  const int op_tag = kOperandTagBase + static_cast<int>(depth) * 16;
  const int res_tag = kResultTagBase + static_cast<int>(depth) * 16;

  if (group.size() < 7) {
    // Leaf distribution: round-robin the seven sub-products over the
    // group's ranks; owners solve locally.
    const auto owner_of = [&](int i) {
      return group.lo + i % group.size();
    };
    if (leader) {
      std::array<Matrix, 7> la, lb, q;
      materialize_operands(a, b, la, lb);
      for (int i = 0; i < 7; ++i) {
        const int owner = owner_of(i);
        if (owner == me) continue;
        comm.send(owner, op_tag + i, flatten(la[i].view()));
        comm.send(owner, op_tag + i, flatten(lb[i].view()));
      }
      for (int i = 0; i < 7; ++i) {
        q[i] = Matrix(h, h);
        if (owner_of(i) == me) {
          capsalg::multiply(la[i].view(), lb[i].view(), q[i].view(),
                                 opts.local);
        }
      }
      for (int i = 0; i < 7; ++i) {
        const int owner = owner_of(i);
        if (owner == me) continue;
        unflatten(comm.recv(owner, res_tag + i).payload, q[i].view());
      }
      combine(q, c);
    } else {
      for (int i = 0; i < 7; ++i) {
        if (owner_of(i) != me) continue;
        Matrix la(h, h), lb(h, h), q(h, h);
        unflatten(comm.recv(group.leader(), op_tag + i).payload,
                  la.view());
        unflatten(comm.recv(group.leader(), op_tag + i).payload,
                  lb.view());
        capsalg::multiply(la.view(), lb.view(), q.view(), opts.local);
        comm.send(group.leader(), res_tag + i, flatten(q.view()));
      }
    }
    return;
  }

  // Tree distribution: seven sub-groups, one sub-product each.
  int my_chunk = -1;
  for (int i = 0; i < 7; ++i) {
    if (group.chunk(i).contains(me)) {
      my_chunk = i;
      break;
    }
  }

  if (leader) {
    std::array<Matrix, 7> la, lb, q;
    materialize_operands(a, b, la, lb);
    // Ship operands to the other sub-group leaders.
    for (int i = 0; i < 7; ++i) {
      const int sub_leader = group.chunk(i).leader();
      if (sub_leader == me) continue;
      comm.send(sub_leader, op_tag + i, flatten(la[i].view()));
      comm.send(sub_leader, op_tag + i, flatten(lb[i].view()));
    }
    for (int i = 0; i < 7; ++i) q[i] = Matrix(h, h);
    // Recurse into our own sub-group (the leader leads chunk 0).
    solve_group(comm, group.chunk(my_chunk), la[my_chunk].view(),
                lb[my_chunk].view(), q[my_chunk].view(), h, opts,
                depth + 1);
    // Collect the six remote results.
    for (int i = 0; i < 7; ++i) {
      const int sub_leader = group.chunk(i).leader();
      if (sub_leader == me) continue;
      unflatten(comm.recv(sub_leader, res_tag + i).payload, q[i].view());
    }
    combine(q, c);
    return;
  }

  // Non-leader: participate in our sub-group's solve.
  const Group sub = group.chunk(my_chunk);
  Matrix la, lb, q;
  ConstMatrixView la_v, lb_v;
  MatrixView q_v;
  if (me == sub.leader()) {
    la = Matrix(h, h);
    lb = Matrix(h, h);
    q = Matrix(h, h);
    unflatten(comm.recv(group.leader(), op_tag + my_chunk).payload,
              la.view());
    unflatten(comm.recv(group.leader(), op_tag + my_chunk).payload,
              lb.view());
    la_v = la.view();
    lb_v = lb.view();
    q_v = q.view();
  }
  solve_group(comm, sub, la_v, lb_v, q_v, h, opts, depth + 1);
  if (me == sub.leader()) {
    comm.send(group.leader(), res_tag + my_chunk, flatten(q.view()));
  }
}

}  // namespace

void dist_caps_multiply(Communicator& comm, ConstMatrixView a,
                        ConstMatrixView b, MatrixView c,
                        const DistCapsOptions& opts) {
  if (comm.rank() == 0) {
    if (!a.square() || !b.square() || !c.square() ||
        a.rows() != b.rows() || a.rows() != c.rows()) {
      throw std::invalid_argument(
          "dist_caps_multiply: operands must be square, equal dimension");
    }
  }
  // Announce the dimension (deterministic buffer sizing everywhere).
  std::vector<double> shape{0.0};
  if (comm.rank() == 0) {
    shape[0] = static_cast<double>(a.rows());
  }
  comm.broadcast(0, shape);
  const std::size_t n = static_cast<std::size_t>(shape.at(0));
  if (n == 0) return;

  CAPOW_TSPAN_ARGS2("dist_caps.multiply", "dist", "n", n, "rank",
                    comm.rank());
  solve_group(comm, Group{0, comm.size()}, a, b, c, n, opts, 0);
}

void dist_block_gemm(Communicator& comm, ConstMatrixView a,
                     ConstMatrixView b, MatrixView c) {
  const int ranks = comm.size();
  const int rank = comm.rank();

  std::vector<double> dims(3);
  if (rank == 0) {
    blas::check_gemm_shapes(a, b, c);
    dims = {static_cast<double>(a.rows()), static_cast<double>(a.cols()),
            static_cast<double>(b.cols())};
  }
  comm.broadcast(0, dims);
  const auto m = static_cast<std::size_t>(dims[0]);
  const auto k = static_cast<std::size_t>(dims[1]);
  const auto n = static_cast<std::size_t>(dims[2]);

  // Row-block ownership: rank r owns rows [r*m/P, (r+1)*m/P).
  const auto row_lo = [&](int r) { return m * r / ranks; };
  const auto row_hi = [&](int r) { return m * (r + 1) / ranks; };

  // Scatter A row blocks; broadcast B.
  Matrix local_a;
  std::vector<double> bflat;
  if (rank == 0) {
    for (int r = 1; r < ranks; ++r) {
      if (row_hi(r) > row_lo(r)) {
        comm.send(r, kScatterTag,
                  flatten(a.block(row_lo(r), 0, row_hi(r) - row_lo(r), k)));
      }
    }
    local_a = Matrix(row_hi(0), k);
    linalg::copy(a.block(0, 0, row_hi(0), k), local_a.view());
    bflat = flatten(b);
  }
  comm.broadcast(0, bflat);
  Matrix local_b(k, n);
  unflatten(bflat, local_b.view());
  if (rank != 0) {
    const std::size_t rows = row_hi(rank) - row_lo(rank);
    local_a = Matrix(rows, k);
    if (rows > 0) {
      unflatten(comm.recv(0, kScatterTag).payload, local_a.view());
    }
  }

  // Local compute.
  Matrix local_c(local_a.rows(), n);
  if (local_a.rows() > 0) {
    strassen::base_gemm(local_a.view(), local_b.view(), local_c.view());
  }

  // Gather C row blocks.
  if (rank == 0) {
    linalg::copy(local_c.view(), c.block(0, 0, local_c.rows(), n));
    for (int r = 1; r < ranks; ++r) {
      const std::size_t rows = row_hi(r) - row_lo(r);
      if (rows == 0) continue;
      unflatten(comm.recv(r, kGatherTag).payload,
                c.block(row_lo(r), 0, rows, n));
    }
  } else if (local_c.rows() > 0) {
    comm.send(0, kGatherTag, flatten(local_c.view()));
  }
}

void dist_caps_multiply_resilient(Communicator& comm,
                                  const RecoveryContext& ctx,
                                  ConstMatrixView a, ConstMatrixView b,
                                  MatrixView c, const DistCapsOptions& opts) {
  CAPOW_TSPAN_ARGS2("dist_caps.resilient", "dist", "rank", comm.rank(),
                    "generation", static_cast<std::int64_t>(ctx.generation));
  // The round-robin split already adapts to comm.size(), and the root's
  // operand views are process-shared, so a recovered generation — even
  // one whose physical rank 0 died — is simply a fresh deterministic
  // solve on the current membership.
  dist_caps_multiply(comm, a, b, c, opts);
}

}  // namespace capow::dist
