// Elastic recovery for capow::dist — survive rank death.
//
// A fixed-size World treats any rank failure as fatal: the world is
// poisoned, every peer unblocks with CommError, and run() rethrows the
// root cause. That is the right default for logic errors, but the
// paper's target platforms lose *nodes*, not invariants — at scale the
// question is not whether a rank dies mid-run but what the survivors do
// about it. This module makes rank death a recoverable event:
//
//   - `rank.kill=V/P[@E]` (capow::fault) deterministically terminates
//     victim rank V of a P-rank world at its E-th communication
//     operation, so a chaos run's failure schedule is part of the spec.
//   - World::run_elastic re-runs the job over *generations*. When the
//     root cause of a generation is RankKilled (and only then), the
//     driver flushes stale traffic with discard accounting, advances
//     the membership generation, and re-runs the body on the new
//     active set.
//   - RecoveryPolicy picks the new set: kAbort keeps today's poison
//     semantics (default), kShrink drops the dead ranks (survivors get
//     a smaller communicator), kRespawn spawns replacement rank
//     threads on the dead ranks' physical slots.
//   - Recovered generations open with an in-band failure-bitmap
//     agreement round (reduce + broadcast of a P-length bitmap) so
//     every surviving rank derives the identical failed set from
//     traffic, not from shared driver state — the same protocol a real
//     distributed runtime would run.
//
// Determinism contract: the *final* generation is a fresh run of the
// surviving set — channel sequence numbers and op epochs are reset, so
// its fault draws, its comm matrix, and the recomputed output are pure
// functions of (seed, plan, survivor set). The *dying* generation's
// counters are scheduling-dependent (how far each survivor raced before
// observing the death varies), which is why chaos CI diffs
// final_generation_stats() and the output, never the generation-0
// split. Wall-clock recovery_ns is reported but never part of the
// deterministic surface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capow/dist/comm.hpp"

namespace capow::dist {

/// What run_elastic does when a generation's root cause is RankKilled.
enum class RecoveryPolicy {
  kAbort = 0,  ///< rethrow, exactly like World::run (default)
  kShrink,     ///< drop dead ranks; survivors re-form a smaller world
  kRespawn,    ///< spawn replacement threads on the dead physical slots
};

/// Report/metric name of a policy ("abort", "shrink", "respawn").
const char* recovery_policy_name(RecoveryPolicy p) noexcept;

/// Parses "abort" / "shrink" / "respawn"; throws std::invalid_argument
/// otherwise.
RecoveryPolicy parse_recovery_policy(const std::string& name);

struct RecoveryOptions {
  RecoveryPolicy policy = RecoveryPolicy::kAbort;
  /// Recoveries per run_elastic call before the next death aborts
  /// regardless of policy — a runaway backstop, not a tuning knob.
  int max_recoveries = 4;
};

/// What the body learns about the membership it runs under. Generation
/// 0 always has an empty failed set; recovered generations carry the
/// set every rank agreed on in the bitmap round.
struct RecoveryContext {
  std::uint64_t generation = 0;
  std::vector<int> failed_ranks;  ///< agreed, sorted physical ranks

  bool recovered() const noexcept { return generation > 0; }
};

/// What run_elastic hands back on success.
struct RecoveryReport {
  bool recovered = false;  ///< at least one recovery happened
  int recoveries = 0;      ///< membership transitions taken
  std::vector<int> failed_ranks;  ///< cumulative dead set (physical)
  /// Wall time spent in recovery transitions (flush + re-form +
  /// respawn), excluding the re-run itself. Diagnostic only: never
  /// part of the deterministic comparison surface.
  std::uint64_t recovery_ns = 0;
};

/// Process-wide recovery counters (exported as
/// capow_dist_rank_failures_total / capow_dist_recoveries_total).
/// Cumulative across Worlds; reset_recovery_counters() zeroes them.
std::uint64_t rank_failures_total() noexcept;
std::uint64_t recoveries_total() noexcept;
void reset_recovery_counters() noexcept;

}  // namespace capow::dist
