// capow::dist — an in-process message-passing runtime ("mini-MPI").
//
// The paper's future work (Section VIII): "we seek to migrate the
// current implementation to a distributed memory implementation using
// MPI. Measuring the power performance characteristics of a distributed
// memory platform shall take into account the power associated with
// transmitting memory blocks across the interconnect as well as local
// communication traffic."
//
// This module provides that substrate: ranks are threads, messages are
// real buffer hand-offs through per-rank mailboxes, and every byte sent
// is instrumented (trace::count_message) so the interconnect energy
// model can price it. The API follows MPI's shape (rank/size,
// send/recv with tags, barrier/broadcast/reduce/gather) without
// pretending to be a full implementation.
//
// Fault tolerance: the wire between ranks is unreliable when a
// fault::FaultInjector is installed — deliveries can be dropped,
// delayed, or corrupted (detected by the link CRC and retransmitted).
// send() runs an ack/retry loop with exponential backoff and throws
// CommError when a message is lost for good; recv() and barrier() wake
// up and throw CommError instead of deadlocking when a peer exits
// without sending, a rank fails (poisoning every mailbox), or the recv
// timeout expires. One throwing rank therefore unblocks — not hangs —
// the whole world.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

#include "capow/dist/comm_stats.hpp"

namespace capow::dist {

/// Communication failure: peer death, poisoned world, recv timeout, or
/// a message lost after every retransmission attempt.
class CommError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A rank terminated fail-stop by an armed `rank.kill` fault spec.
/// Deliberately NOT a CommError: the kill is the root cause of the
/// secondary CommErrors it triggers in blocked peers, so the
/// root-cause-over-CommError rethrow precedence surfaces it — and the
/// elastic recovery driver recognizes it as the one failure class it
/// may recover from.
class RankKilled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A received message: payload plus envelope.
struct Message {
  int source = -1;
  int tag = 0;
  /// Per-channel (source -> dest) sequence number, assigned at send time.
  /// Matched send/recv trace spans share it, which is what lets the
  /// Chrome exporter draw flow arrows between rank lanes.
  std::uint64_t seq = 0;
  /// Membership generation the message was sent under. Receivers match
  /// only current-generation traffic; stale messages from a dead rank's
  /// generation are flushed (and accounted as discarded) by the
  /// recovery driver before the next generation starts.
  std::uint64_t generation = 0;
  std::vector<double> payload;
};

/// Fault-tolerance policy knobs for a World.
struct WorldOptions {
  /// recv()/barrier() give up with CommError after this long without
  /// progress. Generous by default: timeouts are a backstop — peer-exit
  /// and poison detection unblock the common failure modes immediately.
  double recv_timeout_seconds = 10.0;
  /// Delivery attempts per send() before it throws CommError.
  int max_send_attempts = 12;
  /// First retransmission backoff; doubles per attempt (capped at
  /// 1024x). Kept small: the "wire" is an in-process queue.
  double retry_backoff_us = 50.0;
  /// Collect the per-edge CommStats matrix (see comm_stats.hpp). The
  /// collector is per-rank-local counter writes — cheap enough to leave
  /// on by default; the ext_dist_caps overhead bench holds it to <= 2%.
  bool comm_stats = true;
};

class Communicator;
struct RecoveryOptions;
struct RecoveryContext;
struct RecoveryReport;

/// A set of ranks sharing mailboxes. Create one World per collective
/// job; `run` spawns one thread per rank.
///
/// Elastic membership: run_elastic (recovery.cpp) re-runs the body over
/// *generations*. Each generation spawns threads for the current active
/// set only; a rank killed by an armed `rank.kill` spec joins the failed
/// set, stale traffic from its generation is flushed with discard
/// accounting, and — depending on the RecoveryPolicy — the survivors
/// re-form a smaller communicator (shrink) or a replacement thread takes
/// the dead rank's slot (respawn). Communicators therefore carry a
/// *virtual* rank (index into the active set) distinct from the
/// *physical* rank (mailbox/stats identity), so the P x P comm matrix
/// keeps its shape across membership changes. In generation 0 the two
/// coincide and the wire behavior is byte-identical to a plain run().
class World {
 public:
  /// Creates a world of `ranks` mailboxes. Throws std::invalid_argument
  /// for ranks == 0 or any non-positive WorldOptions policy knob.
  explicit World(int ranks) : World(ranks, WorldOptions{}) {}
  World(int ranks, const WorldOptions& options);

  int size() const noexcept { return ranks_; }
  const WorldOptions& options() const noexcept { return options_; }

  /// Runs `body(comm)` on every rank concurrently (one thread per rank)
  /// and joins. Exceptions from any rank poison the world (waking every
  /// blocked peer with CommError) and are rethrown after all ranks
  /// unblock; a root-cause exception wins over the secondary CommErrors
  /// it triggered. With several concurrent root causes the lowest
  /// physical rank's wins — per-rank exception slots make the pick
  /// deterministic, not first-to-lock.
  void run(const std::function<void(Communicator&)>& body);

  /// Elastic run (defined in recovery.cpp): like run(), but on a rank
  /// death the world recovers per `opts.policy` instead of aborting —
  /// flush stale traffic, agree on the failed set, re-form the active
  /// set, and re-run `body` in a new generation. The body receives a
  /// RecoveryContext naming the generation and the agreed failed set.
  /// Non-recoverable root causes (anything but RankKilled) and the
  /// abort policy preserve run()'s rethrow semantics exactly.
  RecoveryReport run_elastic(
      const RecoveryOptions& opts,
      const std::function<void(Communicator&, const RecoveryContext&)>& body);

  /// True once any rank has thrown; blocked operations observe this and
  /// throw CommError instead of waiting forever.
  bool poisoned() const noexcept {
    return poisoned_.load(std::memory_order_acquire);
  }

  /// True once a rank has been killed in the *current* generation (the
  /// newly-failed set). send()'s retry backoff polls this together with
  /// poisoned() so a sender in a dying world aborts its ladder
  /// immediately instead of sleeping out the full exponential schedule;
  /// ranks that failed in *earlier* generations don't trip it, or every
  /// recovered-generation send would abort on sight.
  bool has_failed_ranks() const noexcept {
    return failed_count_.load(std::memory_order_acquire) >
           failed_baseline_.load(std::memory_order_acquire);
  }

  /// Sorted physical ranks that have failed so far (cumulative across
  /// the generations of the current elastic session).
  std::vector<int> failed_ranks() const;

  /// Current membership generation (0 = initial / plain runs).
  std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  /// Comm matrix of the most recent run (empty when collection is off or
  /// no run has completed). Populated on *every* teardown path — the
  /// per-rank blocks are merged after the joins and before run()
  /// rethrows, so a poisoned world still reports the traffic that led up
  /// to the failure. After run_elastic this is the cumulative matrix
  /// over every generation, including the dead rank's partial row and
  /// the flushed-traffic discard counters, so conserved() still closes.
  const CommMatrix& comm_stats() const noexcept { return last_stats_; }

  /// Comm matrix of the final generation alone (the fault-free recovery
  /// re-run). Unlike the cumulative matrix — whose generation-0 split
  /// depends on how far each survivor raced before observing the death —
  /// this one is a pure function of the seed and the surviving set, so
  /// chaos CI can diff it across identical runs.
  const CommMatrix& final_generation_stats() const noexcept {
    return final_generation_stats_;
  }

 private:
  friend class Communicator;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  void post(int dest, Message msg);
  Message take(int rank, int source, int tag);

  /// Next per-channel sequence number for (source -> dest); the stable
  /// logical coordinate fault draws are keyed on.
  std::uint64_t next_channel_seq(int source, int dest) noexcept;

  /// Marks `rank` done (normally or not) and wakes every waiter so
  /// blocked peers can re-check poison/exit state.
  void mark_exited(int rank, bool failed) noexcept;

  bool rank_exited(int rank) const noexcept {
    return exited_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }

  /// Failure detector, called by the owning thread at the top of every
  /// comm operation: advances the rank's operation epoch and fires any
  /// armed rank.kill spec matching (world size, rank, epoch). Kills fire
  /// in generation 0 only — fail-stop means a rank dies once; its
  /// replacement must not inherit the death sentence.
  void heartbeat(int phys_rank);

  // Barrier support: generation-counted central barrier sized to the
  // active set.
  void barrier_wait();

  /// Rank r's private counter block, or nullptr when collection is off.
  /// Only rank r's thread may write through the pointer while run() is
  /// live (see comm_stats.hpp for the ownership discipline).
  RankCommBlock* comm_block(int rank) noexcept {
    return blocks_.empty() ? nullptr
                           : &blocks_[static_cast<std::size_t>(rank)];
  }

  /// Spawns one thread per *active* rank, runs `body`, joins, merges
  /// stats into last_stats_, and files each rank's exception (if any)
  /// into its per-rank slot. Does not rethrow — callers pick the root
  /// cause deterministically via root_cause().
  void run_generation(const std::function<void(Communicator&)>& body);

  /// Lowest-physical-rank root cause of the last generation: a
  /// non-CommError beats any CommError; nullptr when every rank
  /// completed. Deterministic under concurrent multi-rank failure.
  std::exception_ptr root_cause() const;

  /// Resets the elastic session to generation 0 with every rank active.
  void reset_elastic_state();

  /// Zeroes the per-channel sequence counters and per-rank op epochs so
  /// a recovery generation's fault draws are keyed exactly like a fresh
  /// run of the surviving set — the property that makes the final
  /// generation's comm matrix seed-deterministic even with comm.* fault
  /// sites armed. Never called on the plain run() path: reused Worlds
  /// keep their monotone sequence counters across runs, as before.
  void reset_wire_sequencing() noexcept;

  /// Drains every mailbox, accounting each stale message as discarded
  /// traffic on its (source, dest) edge in `into`. Driver-thread only
  /// (no rank threads may be running).
  void flush_stale_messages(CommMatrix& into);

  int ranks_;
  WorldOptions options_;
  std::vector<Mailbox> mailboxes_;
  std::vector<RankCommBlock> blocks_;
  CommMatrix last_stats_;
  CommMatrix final_generation_stats_;
  std::vector<int> active_;  ///< physical ranks of the current generation
  std::vector<std::exception_ptr> errors_;  ///< per-physical-rank slots
  std::unique_ptr<std::atomic<bool>[]> exited_;
  std::unique_ptr<std::atomic<bool>[]> failed_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> channel_seq_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> op_epoch_;
  std::atomic<bool> poisoned_{false};
  std::atomic<int> exited_count_{0};
  std::atomic<int> failed_count_{0};
  std::atomic<int> failed_baseline_{0};  ///< failed_count_ at gen start
  std::atomic<std::uint64_t> generation_{0};
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

/// Per-rank handle; valid only inside World::run's body.
///
/// Ranks are *virtual*: rank() is this rank's index into the world's
/// active set, which is what algorithms address (send/recv/collectives
/// all take virtual ranks). phys() is the underlying mailbox/stats
/// identity; the two differ only after an elastic shrink. In plain runs
/// and generation 0 they coincide.
class Communicator {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept { return size_; }

  /// Physical rank: the mailbox/comm-matrix row this rank owns. Stable
  /// across generations; what failed_ranks() and rank.kill specs name.
  int phys() const noexcept { return phys_; }

  /// The owning World's full physical rank count (>= size()). Equal to
  /// size() exactly when the virtual->physical mapping is the identity
  /// (plain runs, generation 0, respawn generations) — the predicate
  /// resilient algorithms use to decide whether physically-keyed caches
  /// still line up with virtual grid positions.
  int world_size() const noexcept;

  /// A handle restricted to the first `count` virtual ranks — same
  /// mailboxes, same stats, smaller size(). Lets an algorithm that
  /// needs an exact rank count (e.g. a g x g SUMMA grid) run inside a
  /// larger world: ranks >= count simply never touch the sub handle.
  /// Throws std::invalid_argument unless 0 < count <= size() and this
  /// rank is inside the prefix.
  Communicator sub(int count) const;

  /// Blocking tagged send (buffered: returns once the payload is copied
  /// into the destination mailbox). Counts message bytes via trace.
  /// Under fault injection the delivery may be dropped/corrupted and
  /// retransmitted with exponential backoff; throws CommError when
  /// every attempt is lost or the world is poisoned.
  void send(int dest, int tag, std::span<const double> data);

  /// Blocking tagged receive from a specific source. Messages from the
  /// same (source, tag) arrive in send order. Throws CommError instead
  /// of blocking forever when the source rank has exited without
  /// sending, the world is poisoned, or the recv timeout expires.
  Message recv(int source, int tag);

  /// Collective barrier across all ranks. Throws CommError when the
  /// barrier can never complete (a rank exited or the world is
  /// poisoned) or on timeout.
  void barrier();

  /// Broadcast `data` from root to every rank; on non-root ranks the
  /// vector is resized/overwritten.
  void broadcast(int root, std::vector<double>& data);

  /// Element-wise sum-reduction to root. All ranks pass equally-sized
  /// vectors; root's vector receives the sum.
  void reduce_sum(int root, std::vector<double>& data);

  /// Gathers each rank's vector to root in rank order; non-root ranks'
  /// `out` is left empty.
  void gather(int root, std::span<const double> mine,
              std::vector<std::vector<double>>& out);

 private:
  friend class World;
  Communicator(World& world, int rank, int phys, int size)
      : world_(&world), rank_(rank), phys_(phys), size_(size) {}

  /// Physical rank behind virtual rank `v` in the current generation.
  int phys_of(int v) const;
  /// Virtual rank of physical rank `p` in the current generation.
  int virt_of(int p) const;

  World* world_;
  int rank_;  ///< virtual rank (index into the active set)
  int phys_;  ///< physical rank (mailbox/stats identity)
  int size_;  ///< virtual ranks visible through this handle
};

}  // namespace capow::dist
