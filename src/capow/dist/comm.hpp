// capow::dist — an in-process message-passing runtime ("mini-MPI").
//
// The paper's future work (Section VIII): "we seek to migrate the
// current implementation to a distributed memory implementation using
// MPI. Measuring the power performance characteristics of a distributed
// memory platform shall take into account the power associated with
// transmitting memory blocks across the interconnect as well as local
// communication traffic."
//
// This module provides that substrate: ranks are threads, messages are
// real buffer hand-offs through per-rank mailboxes, and every byte sent
// is instrumented (trace::count_message) so the interconnect energy
// model can price it. The API follows MPI's shape (rank/size,
// send/recv with tags, barrier/broadcast/reduce/gather) without
// pretending to be a full implementation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <vector>

namespace capow::dist {

/// A received message: payload plus envelope.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<double> payload;
};

class Communicator;

/// A set of ranks sharing mailboxes. Create one World per collective
/// job; `run` spawns one thread per rank.
class World {
 public:
  /// Creates a world of `ranks` mailboxes. Throws for ranks == 0.
  explicit World(int ranks);

  int size() const noexcept { return ranks_; }

  /// Runs `body(comm)` on every rank concurrently (one thread per rank)
  /// and joins. Exceptions from any rank are rethrown (first one wins)
  /// after all ranks complete or unblock.
  void run(const std::function<void(Communicator&)>& body);

 private:
  friend class Communicator;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  void post(int dest, Message msg);
  Message take(int rank, int source, int tag);

  // Barrier support: generation-counted central barrier.
  void barrier_wait();

  int ranks_;
  std::vector<Mailbox> mailboxes_;
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

/// Per-rank handle; valid only inside World::run's body.
class Communicator {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept { return world_->size(); }

  /// Blocking tagged send (buffered: returns once the payload is copied
  /// into the destination mailbox). Counts message bytes via trace.
  void send(int dest, int tag, std::span<const double> data);

  /// Blocking tagged receive from a specific source. Messages from the
  /// same (source, tag) arrive in send order.
  Message recv(int source, int tag);

  /// Collective barrier across all ranks.
  void barrier();

  /// Broadcast `data` from root to every rank; on non-root ranks the
  /// vector is resized/overwritten.
  void broadcast(int root, std::vector<double>& data);

  /// Element-wise sum-reduction to root. All ranks pass equally-sized
  /// vectors; root's vector receives the sum.
  void reduce_sum(int root, std::vector<double>& data);

  /// Gathers each rank's vector to root in rank order; non-root ranks'
  /// `out` is left empty.
  void gather(int root, std::span<const double> mine,
              std::vector<std::vector<double>>& out);

 private:
  friend class World;
  Communicator(World& world, int rank) : world_(&world), rank_(rank) {}

  World* world_;
  int rank_;
};

}  // namespace capow::dist
