// capow::dist — an in-process message-passing runtime ("mini-MPI").
//
// The paper's future work (Section VIII): "we seek to migrate the
// current implementation to a distributed memory implementation using
// MPI. Measuring the power performance characteristics of a distributed
// memory platform shall take into account the power associated with
// transmitting memory blocks across the interconnect as well as local
// communication traffic."
//
// This module provides that substrate: ranks are threads, messages are
// real buffer hand-offs through per-rank mailboxes, and every byte sent
// is instrumented (trace::count_message) so the interconnect energy
// model can price it. The API follows MPI's shape (rank/size,
// send/recv with tags, barrier/broadcast/reduce/gather) without
// pretending to be a full implementation.
//
// Fault tolerance: the wire between ranks is unreliable when a
// fault::FaultInjector is installed — deliveries can be dropped,
// delayed, or corrupted (detected by the link CRC and retransmitted).
// send() runs an ack/retry loop with exponential backoff and throws
// CommError when a message is lost for good; recv() and barrier() wake
// up and throw CommError instead of deadlocking when a peer exits
// without sending, a rank fails (poisoning every mailbox), or the recv
// timeout expires. One throwing rank therefore unblocks — not hangs —
// the whole world.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

#include "capow/dist/comm_stats.hpp"

namespace capow::dist {

/// Communication failure: peer death, poisoned world, recv timeout, or
/// a message lost after every retransmission attempt.
class CommError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A received message: payload plus envelope.
struct Message {
  int source = -1;
  int tag = 0;
  /// Per-channel (source -> dest) sequence number, assigned at send time.
  /// Matched send/recv trace spans share it, which is what lets the
  /// Chrome exporter draw flow arrows between rank lanes.
  std::uint64_t seq = 0;
  std::vector<double> payload;
};

/// Fault-tolerance policy knobs for a World.
struct WorldOptions {
  /// recv()/barrier() give up with CommError after this long without
  /// progress. Generous by default: timeouts are a backstop — peer-exit
  /// and poison detection unblock the common failure modes immediately.
  double recv_timeout_seconds = 10.0;
  /// Delivery attempts per send() before it throws CommError.
  int max_send_attempts = 12;
  /// First retransmission backoff; doubles per attempt (capped at
  /// 1024x). Kept small: the "wire" is an in-process queue.
  double retry_backoff_us = 50.0;
  /// Collect the per-edge CommStats matrix (see comm_stats.hpp). The
  /// collector is per-rank-local counter writes — cheap enough to leave
  /// on by default; the ext_dist_caps overhead bench holds it to <= 2%.
  bool comm_stats = true;
};

class Communicator;

/// A set of ranks sharing mailboxes. Create one World per collective
/// job; `run` spawns one thread per rank.
class World {
 public:
  /// Creates a world of `ranks` mailboxes. Throws for ranks == 0.
  explicit World(int ranks) : World(ranks, WorldOptions{}) {}
  World(int ranks, const WorldOptions& options);

  int size() const noexcept { return ranks_; }
  const WorldOptions& options() const noexcept { return options_; }

  /// Runs `body(comm)` on every rank concurrently (one thread per rank)
  /// and joins. Exceptions from any rank poison the world (waking every
  /// blocked peer with CommError) and are rethrown after all ranks
  /// unblock; a root-cause exception wins over the secondary CommErrors
  /// it triggered.
  void run(const std::function<void(Communicator&)>& body);

  /// True once any rank has thrown; blocked operations observe this and
  /// throw CommError instead of waiting forever.
  bool poisoned() const noexcept {
    return poisoned_.load(std::memory_order_acquire);
  }

  /// Comm matrix of the most recent run (empty when collection is off or
  /// no run has completed). Populated on *every* teardown path — the
  /// per-rank blocks are merged after the joins and before run()
  /// rethrows, so a poisoned world still reports the traffic that led up
  /// to the failure.
  const CommMatrix& comm_stats() const noexcept { return last_stats_; }

 private:
  friend class Communicator;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  void post(int dest, Message msg);
  Message take(int rank, int source, int tag);

  /// Next per-channel sequence number for (source -> dest); the stable
  /// logical coordinate fault draws are keyed on.
  std::uint64_t next_channel_seq(int source, int dest) noexcept;

  /// Marks `rank` done (normally or not) and wakes every waiter so
  /// blocked peers can re-check poison/exit state.
  void mark_exited(int rank, bool failed) noexcept;

  bool rank_exited(int rank) const noexcept {
    return exited_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }

  // Barrier support: generation-counted central barrier.
  void barrier_wait();

  /// Rank r's private counter block, or nullptr when collection is off.
  /// Only rank r's thread may write through the pointer while run() is
  /// live (see comm_stats.hpp for the ownership discipline).
  RankCommBlock* comm_block(int rank) noexcept {
    return blocks_.empty() ? nullptr
                           : &blocks_[static_cast<std::size_t>(rank)];
  }

  int ranks_;
  WorldOptions options_;
  std::vector<Mailbox> mailboxes_;
  std::vector<RankCommBlock> blocks_;
  CommMatrix last_stats_;
  std::unique_ptr<std::atomic<bool>[]> exited_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> channel_seq_;
  std::atomic<bool> poisoned_{false};
  std::atomic<int> exited_count_{0};
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

/// Per-rank handle; valid only inside World::run's body.
class Communicator {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept { return world_->size(); }

  /// Blocking tagged send (buffered: returns once the payload is copied
  /// into the destination mailbox). Counts message bytes via trace.
  /// Under fault injection the delivery may be dropped/corrupted and
  /// retransmitted with exponential backoff; throws CommError when
  /// every attempt is lost or the world is poisoned.
  void send(int dest, int tag, std::span<const double> data);

  /// Blocking tagged receive from a specific source. Messages from the
  /// same (source, tag) arrive in send order. Throws CommError instead
  /// of blocking forever when the source rank has exited without
  /// sending, the world is poisoned, or the recv timeout expires.
  Message recv(int source, int tag);

  /// Collective barrier across all ranks. Throws CommError when the
  /// barrier can never complete (a rank exited or the world is
  /// poisoned) or on timeout.
  void barrier();

  /// Broadcast `data` from root to every rank; on non-root ranks the
  /// vector is resized/overwritten.
  void broadcast(int root, std::vector<double>& data);

  /// Element-wise sum-reduction to root. All ranks pass equally-sized
  /// vectors; root's vector receives the sum.
  void reduce_sum(int root, std::vector<double>& data);

  /// Gathers each rank's vector to root in rank order; non-root ranks'
  /// `out` is left empty.
  void gather(int root, std::span<const double> mine,
              std::vector<std::vector<double>>& out);

 private:
  friend class World;
  Communicator(World& world, int rank) : world_(&world), rank_(rank) {}

  World* world_;
  int rank_;
};

}  // namespace capow::dist
