#include "capow/dist/comm_stats.hpp"

#include <stdexcept>

namespace capow::dist {

EdgeStats& EdgeStats::operator+=(const EdgeStats& o) noexcept {
  messages += o.messages;
  payload_bytes += o.payload_bytes;
  retransmits += o.retransmits;
  corruptions += o.corruptions;
  recv_messages += o.recv_messages;
  recv_bytes += o.recv_bytes;
  send_block_ns += o.send_block_ns;
  discarded_messages += o.discarded_messages;
  discarded_bytes += o.discarded_bytes;
  return *this;
}

bool EdgeStats::deterministic_equal(const EdgeStats& o) const noexcept {
  return messages == o.messages && payload_bytes == o.payload_bytes &&
         retransmits == o.retransmits && corruptions == o.corruptions &&
         recv_messages == o.recv_messages && recv_bytes == o.recv_bytes;
}

RankStats& RankStats::operator+=(const RankStats& o) noexcept {
  recv_wait_ns += o.recv_wait_ns;
  barrier_wait_ns += o.barrier_wait_ns;
  barriers += o.barriers;
  send_failures += o.send_failures;
  active_ns += o.active_ns;
  return *this;
}

CommMatrix::CommMatrix(int ranks) : ranks_(ranks) {
  if (ranks < 0) throw std::invalid_argument("CommMatrix: ranks < 0");
  const std::size_t n = static_cast<std::size_t>(ranks);
  edges_.resize(n * n);
  rank_stats_.resize(n);
}

std::size_t CommMatrix::index(int src, int dst) const {
  if (src < 0 || src >= ranks_ || dst < 0 || dst >= ranks_) {
    throw std::out_of_range("CommMatrix::edge: rank out of range");
  }
  return static_cast<std::size_t>(src) * static_cast<std::size_t>(ranks_) +
         static_cast<std::size_t>(dst);
}

EdgeStats& CommMatrix::edge(int src, int dst) {
  return edges_[index(src, dst)];
}
const EdgeStats& CommMatrix::edge(int src, int dst) const {
  return edges_[index(src, dst)];
}

RankStats& CommMatrix::rank(int r) {
  if (r < 0 || r >= ranks_) {
    throw std::out_of_range("CommMatrix::rank: out of range");
  }
  return rank_stats_[static_cast<std::size_t>(r)];
}
const RankStats& CommMatrix::rank(int r) const {
  return const_cast<CommMatrix*>(this)->rank(r);
}

std::uint64_t CommMatrix::total_messages() const noexcept {
  std::uint64_t n = 0;
  for (const EdgeStats& e : edges_) n += e.messages;
  return n;
}
std::uint64_t CommMatrix::total_payload_bytes() const noexcept {
  std::uint64_t n = 0;
  for (const EdgeStats& e : edges_) n += e.payload_bytes;
  return n;
}
std::uint64_t CommMatrix::total_retransmits() const noexcept {
  std::uint64_t n = 0;
  for (const EdgeStats& e : edges_) n += e.retransmits;
  return n;
}
std::uint64_t CommMatrix::total_corruptions() const noexcept {
  std::uint64_t n = 0;
  for (const EdgeStats& e : edges_) n += e.corruptions;
  return n;
}

std::uint64_t CommMatrix::bytes_sent_by(int r) const {
  std::uint64_t n = 0;
  for (int d = 0; d < ranks_; ++d) n += edge(r, d).payload_bytes;
  return n;
}

std::uint64_t CommMatrix::bytes_received_by(int r) const {
  std::uint64_t n = 0;
  for (int s = 0; s < ranks_; ++s) n += edge(s, r).recv_bytes;
  return n;
}

std::uint64_t CommMatrix::max_rank_bytes() const noexcept {
  std::uint64_t best = 0;
  for (int r = 0; r < ranks_; ++r) {
    const std::uint64_t total = bytes_sent_by(r) + bytes_received_by(r);
    if (total > best) best = total;
  }
  return best;
}

bool CommMatrix::conserved() const noexcept {
  for (const EdgeStats& e : edges_) {
    if (e.messages != e.recv_messages + e.discarded_messages ||
        e.payload_bytes != e.recv_bytes + e.discarded_bytes) {
      return false;
    }
  }
  return true;
}

CommMatrix& CommMatrix::operator+=(const CommMatrix& o) {
  if (empty()) {
    *this = o;
    return *this;
  }
  if (o.empty()) return *this;
  if (o.ranks_ != ranks_) {
    throw std::invalid_argument("CommMatrix +=: rank count mismatch");
  }
  for (std::size_t i = 0; i < edges_.size(); ++i) edges_[i] += o.edges_[i];
  for (std::size_t i = 0; i < rank_stats_.size(); ++i) {
    rank_stats_[i] += o.rank_stats_[i];
  }
  return *this;
}

bool CommMatrix::deterministic_equal(const CommMatrix& o) const noexcept {
  if (ranks_ != o.ranks_) return false;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (!edges_[i].deterministic_equal(o.edges_[i])) return false;
  }
  return true;
}

void RankCommBlock::reset(int ranks) {
  out.assign(static_cast<std::size_t>(ranks), EdgeStats{});
  in.assign(static_cast<std::size_t>(ranks), EdgeStats{});
  self = RankStats{};
}

CommMatrix merge_comm_blocks(const std::vector<RankCommBlock>& blocks) {
  const int p = static_cast<int>(blocks.size());
  CommMatrix m(p);
  for (int r = 0; r < p; ++r) {
    const RankCommBlock& b = blocks[static_cast<std::size_t>(r)];
    for (int peer = 0; peer < p; ++peer) {
      const EdgeStats& o = b.out[static_cast<std::size_t>(peer)];
      EdgeStats& out_edge = m.edge(r, peer);
      out_edge.messages = o.messages;
      out_edge.payload_bytes = o.payload_bytes;
      out_edge.retransmits = o.retransmits;
      out_edge.corruptions = o.corruptions;
      out_edge.send_block_ns = o.send_block_ns;
      const EdgeStats& i = b.in[static_cast<std::size_t>(peer)];
      EdgeStats& in_edge = m.edge(peer, r);
      in_edge.recv_messages = i.recv_messages;
      in_edge.recv_bytes = i.recv_bytes;
    }
    m.rank(r) = b.self;
  }
  return m;
}

}  // namespace capow::dist
